// Package gopim is a Go reproduction of "Google Workloads for Consumer
// Devices: Mitigating Data Movement Bottlenecks" (Boroumand et al.,
// ASPLOS 2018). It models a Chromebook-class SoC with LPDDR3/3D-stacked
// memory, profiles instrumented implementations of the paper's four
// consumer workloads (Chrome, TensorFlow Mobile, VP9 playback and capture),
// and evaluates offloading the paper's PIM target functions to in-memory
// logic — a general-purpose PIM core or fixed-function PIM accelerators.
//
// The package is a facade over the internal machinery:
//
//   - Targets() lists every PIM target the paper evaluates, each backed by
//     a real instrumented kernel.
//   - Evaluate() runs one target under CPU-only, PIM-core and
//     PIM-accelerator execution and reports energy and runtime.
//   - The experiments subpackage regenerates every table and figure of the
//     paper's evaluation.
package gopim

import (
	"sync"

	"gopim/internal/browser"
	"gopim/internal/core"
	"gopim/internal/dram"
	"gopim/internal/energy"
	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
	"gopim/internal/qgemm"
	"gopim/internal/vp9"
)

// Mode selects where a PIM target executes.
type Mode = core.Mode

// Execution modes (paper §10).
const (
	CPUOnly = core.CPUOnly
	PIMCore = core.PIMCore
	PIMAcc  = core.PIMAcc
)

// Modes lists all execution modes in presentation order.
var Modes = core.Modes

// Target is one PIM target function with its accelerator properties.
type Target = core.Target

// Result groups a target's evaluations across execution modes.
type Result = core.Result

// Evaluation is one (target, mode) outcome.
type Evaluation = core.Evaluation

// Breakdown is a per-hardware-component energy total.
type Breakdown = energy.Breakdown

// EnergyParams is the per-event energy cost table (§3.1 methodology).
type EnergyParams = energy.Params

// DefaultEnergyParams returns the calibrated parameter set used by the
// experiments.
func DefaultEnergyParams() EnergyParams { return energy.Default() }

// Evaluator models energy and runtime from kernel profiles.
type Evaluator = core.Evaluator

// Candidate is a workload function assessed against the paper's PIM target
// criteria (§3.2).
type Candidate = core.Candidate

// Criteria parameterizes PIM candidate selection.
type Criteria = core.Criteria

// DefaultCriteria mirrors the paper's selection thresholds.
func DefaultCriteria() Criteria { return core.DefaultCriteria() }

// NewEvaluator returns an evaluator with default parameters.
func NewEvaluator() *Evaluator { return core.NewEvaluator() }

// Evaluate runs target on the modelled SoC and PIM hardware with default
// parameters, returning per-mode energy and runtime.
func Evaluate(t Target) Result {
	return NewEvaluator().Evaluate(t)
}

// AreaFeasible reports whether PIM logic of the given area (mm²) fits the
// per-vault logic-layer budget of the modelled 3D-stacked memory, and the
// fraction of the budget it uses.
func AreaFeasible(areaMM2 float64) (fraction float64, ok bool) {
	return core.AreaFeasible(areaMM2)
}

// VaultAreaBudget is the logic-layer area available per vault, mm² (§3.3).
const VaultAreaBudget = dram.VaultAreaBudget

// PIMCoreArea is the area of one PIM core, mm² (§3.3).
const PIMCoreArea = core.PIMCoreArea

// Scale selects how large the default experiment inputs are. The paper's
// native inputs (4K video, full-resolution networks) are hours of pure-Go
// simulation; Quick and Standard shrink them while preserving the
// cache-relative behaviour that drives every reported shape.
type Scale int

// Experiment scales.
const (
	// Quick targets unit-test latency (seconds).
	Quick Scale = iota
	// Standard targets bench latency (a few minutes) with working sets
	// that exceed the LLC the way the paper's inputs do.
	Standard
)

// EvalClip returns the shared synthetic evaluation clip for the given
// scale, real-encoded once and cached (encoding large clips is the
// dominant setup cost of the video experiments). Even Quick working sets
// exceed the 2 MiB LLC, as the paper's inputs do.
func EvalClip(s Scale) *vp9.CodedClip {
	clipOnce.Lock()
	defer clipOnce.Unlock()
	if c, ok := clipCache[s]; ok {
		return c
	}
	w, h, frames := 1280, 704, 3
	if s == Standard {
		w, h, frames = 1920, 1088, 4
	}
	clip, err := vp9.CodeClip(w, h, frames, 28, 77)
	if err != nil {
		panic("gopim: building evaluation clip: " + err.Error())
	}
	clipCache[s] = clip
	return clip
}

var (
	clipOnce  sync.Mutex
	clipCache = map[Scale]*vp9.CodedClip{}
)

// Targets returns the paper's PIM targets (§§4–7), instrumented and
// parameterized for the given scale, with the per-target accelerator areas
// the paper reports. All working sets exceed the LLC, as the paper's
// native inputs do.
func Targets(s Scale) []Target {
	big := s == Standard
	pick := func(q, std int) int {
		if big {
			return std
		}
		return q
	}
	texSize := pick(1024, 1536)
	blitOps := pick(24, 48)
	pages := pick(1024, 4096)
	gemmDim := pick(768, 1024)

	clip := EvalClip(s)

	return []Target{
		{
			Name: "Texture Tiling", Workload: "Chrome",
			Kernel: texture.Kernel(texSize, texSize, 2), Phases: []string{"texture tiling"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Color Blitting", Workload: "Chrome",
			Kernel: blit.Kernel(texSize, blitOps, 1), Phases: []string{"color blitting"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Compression", Workload: "Chrome",
			Kernel: browser.CompressKernel(pages, 9), Phases: []string{"compression"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Decompression", Workload: "Chrome",
			Kernel: browser.DecompressKernel(pages, 9), Phases: []string{"decompression"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Packing", Workload: "TensorFlow",
			Kernel: qgemm.PackKernel(gemmDim, gemmDim, gemmDim, 2), Phases: []string{"packing"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Quantization", Workload: "TensorFlow",
			Kernel: qgemm.QuantizeKernel(gemmDim, gemmDim, gemmDim, 2), Phases: []string{"quantization"},
			AccArea: 0.25, AccUnits: 4,
		},
		{
			Name: "Sub-Pixel Interpolation", Workload: "Video Playback",
			Kernel: vp9.SubPelKernel(clip), Phases: []string{"sub-pixel interpolation"},
			AccArea: 0.21, AccUnits: 4,
		},
		{
			Name: "Deblocking Filter", Workload: "Video Playback",
			Kernel: vp9.DeblockKernel(clip), Phases: []string{"deblocking filter"},
			AccArea: 0.12, AccUnits: 4,
		},
		{
			Name: "Motion Estimation", Workload: "Video Capture",
			Kernel: vp9.MEKernel(clip), Phases: []string{"motion estimation"},
			AccArea: 1.24, AccUnits: 2,
		},
	}
}

// Hardware aliases for callers that want to profile their own kernels.
type (
	// Kernel is an instrumented unit of work.
	Kernel = profile.Kernel
	// KernelFunc adapts a function to Kernel.
	KernelFunc = profile.KernelFunc
	// Ctx is the instrumentation context passed to kernels.
	Ctx = profile.Ctx
	// Profile holds the counters collected for a kernel.
	Profile = profile.Profile
	// Hardware describes a memory system to profile against.
	Hardware = profile.Hardware
)

// SoC returns the baseline SoC hardware description (paper Table 1).
func SoC() Hardware { return profile.SoC() }

// PIMCoreHW returns the PIM core hardware description.
func PIMCoreHW() Hardware { return profile.PIMCore() }

// PIMAccHW returns the PIM accelerator hardware description.
func PIMAccHW() Hardware { return profile.PIMAcc() }

// RunKernel profiles a kernel on the given hardware.
func RunKernel(hw Hardware, k Kernel) (Profile, map[string]Profile) {
	return profile.Run(hw, k)
}
