// Video pipeline: encode synthetic video with the VP9-class codec, decode
// it back, verify bit-exact reconstruction and quality, then evaluate the
// playback/capture PIM targets the paper offloads to memory.
package main

import (
	"bytes"
	"fmt"
	"log"

	"gopim"
	"gopim/workloads"
)

func main() {
	const (
		width, height = 320, 192
		frames        = 6
	)
	cfg := workloads.CodecConfig{Width: width, Height: height, QIndex: 24}
	enc, err := workloads.NewEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := workloads.NewDecoder(cfg)
	if err != nil {
		log.Fatal(err)
	}

	synth := workloads.NewSynth(width, height, 3, 99)
	raw := width * height * 3 / 2
	var total int
	fmt.Printf("encoding %d frames of %dx%d video:\n", frames, width, height)
	for i := 0; i < frames; i++ {
		src := synth.Frame(i)
		data, recon, err := enc.Encode(src)
		if err != nil {
			log.Fatal(err)
		}
		decoded, err := dec.Decode(data)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(decoded.Y, recon.Y) {
			log.Fatalf("frame %d: decoder disagrees with encoder reconstruction", i)
		}
		total += len(data)
		fmt.Printf("  frame %d: %5d B (%.1fx smaller), PSNR %.1f dB\n",
			i, len(data), float64(raw)/float64(len(data)), workloads.PSNR(src, recon))
	}
	st := enc.Stats
	fmt.Printf("\ncodec work: %d SADs searched, %d/%d blocks sub-pel interpolated, %d edges deblocked\n",
		st.ME.SADs, st.MC.SubPelBlocks, st.MC.Blocks, st.Deblock.EdgesFiltered)
	fmt.Printf("reference amplification: %.2f reference pixels fetched per pixel predicted\n",
		float64(st.MC.RefPixelsRead)/float64(st.MC.PixelsProduced+1))

	fmt.Println("\nPIM evaluation of the video targets (paper Figure 20):")
	for _, t := range gopim.Targets(gopim.Quick) {
		if t.Workload != "Video Playback" && t.Workload != "Video Capture" {
			continue
		}
		res := gopim.Evaluate(t)
		fmt.Printf("  %-24s PIM-Core: -%4.1f%% energy %.2fx | PIM-Acc: -%4.1f%% energy %.2fx\n",
			t.Name,
			res.EnergyReduction(gopim.PIMCore)*100, res.Speedup(gopim.PIMCore),
			res.EnergyReduction(gopim.PIMAcc)*100, res.Speedup(gopim.PIMAcc))
	}
}
