// Quickstart: evaluate one PIM target — texture tiling, the Chrome
// graphics-driver kernel — under CPU-only, PIM-core and PIM-accelerator
// execution, and print the modelled energy and runtime, reproducing one
// group of bars from the paper's Figure 18.
package main

import (
	"fmt"

	"gopim"
)

func main() {
	// Every paper target comes pre-instrumented; pick texture tiling.
	var target gopim.Target
	for _, t := range gopim.Targets(gopim.Quick) {
		if t.Name == "Texture Tiling" {
			target = t
			break
		}
	}

	fmt.Printf("evaluating %q (%s workload)\n", target.Name, target.Workload)
	fmt.Printf("accelerator area: %.2f mm²", target.AccArea)
	if frac, ok := gopim.AreaFeasible(target.AccArea); ok {
		fmt.Printf(" — fits the per-vault budget (%.1f%% of %.1f mm²)\n", frac*100, gopim.VaultAreaBudget)
	} else {
		fmt.Println(" — does NOT fit the vault budget")
	}

	result := gopim.Evaluate(target)
	base := result.ByMode[gopim.CPUOnly]
	fmt.Printf("\n%-10s %14s %14s %12s\n", "mode", "energy (µJ)", "runtime (µs)", "data moved")
	for _, mode := range gopim.Modes {
		e := result.ByMode[mode]
		fmt.Printf("%-10s %14.1f %14.1f %9.1f MB\n",
			mode.String(), e.Energy.Total()/1e6, e.Seconds*1e6, float64(e.Profile.Mem.Total())/1e6)
	}
	fmt.Printf("\nvs CPU-only: PIM-Core saves %.1f%% energy at %.2fx speed; PIM-Acc %.1f%% at %.2fx\n",
		result.EnergyReduction(gopim.PIMCore)*100, result.Speedup(gopim.PIMCore),
		result.EnergyReduction(gopim.PIMAcc)*100, result.Speedup(gopim.PIMAcc))
	fmt.Printf("data movement share of CPU-only energy: %.1f%% (the paper's core observation)\n",
		base.Energy.DataMovementFraction()*100)
}
