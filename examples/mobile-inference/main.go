// Mobile inference: run a real quantized convolution pipeline end-to-end
// (quantize → im2col → packed uint8 GEMM → requantize), verify the math,
// then evaluate the paper's TensorFlow Mobile PIM targets — packing and
// quantization — under PIM offloading.
package main

import (
	"fmt"
	"math/rand"

	"gopim"
	"gopim/workloads"
)

func main() {
	// --- 1. A real quantized convolution on real data ---
	const (
		h, w, c = 32, 32, 16
		filter  = 3
		outC    = 32
	)
	rng := rand.New(rand.NewSource(42))

	// Float input, quantized the way TensorFlow Mobile does.
	input := make([]float32, h*w*c)
	for i := range input {
		input[i] = rng.Float32()*4 - 2
	}
	qInput, qp := workloads.Quantize(input)
	fmt.Printf("quantized %d activations: scale %.4f, min %.2f\n", len(qInput), qp.Scale, qp.Min)

	weights := workloads.NewQuantMatrix(filter*filter*c, outC)
	rng.Read(weights.Data)

	acc := workloads.Conv2D(qInput, h, w, c, weights, filter, 1, 128, 128)
	qOut, rp := workloads.Requantize(acc)
	fmt.Printf("conv output: %d accumulators requantized at scale %.1f\n", len(qOut), rp.Scale)

	// --- 2. The paper's network tables ---
	fmt.Println("\nevaluated networks (paper §3.1):")
	for _, net := range []workloads.Network{
		workloads.VGG19(), workloads.ResNetV2152(),
		workloads.InceptionResNetV2(), workloads.ResidualGRU(),
	} {
		fmt.Printf("  %-18s %3d Conv2D invocations, %5.1f G MACs/inference\n",
			net.Name, net.Convs(), float64(net.MACs(1))/1e9)
	}

	// --- 3. PIM offloading of packing and quantization (Figure 19) ---
	fmt.Println("\nPIM evaluation of the TensorFlow targets:")
	for _, t := range gopim.Targets(gopim.Quick) {
		if t.Workload != "TensorFlow" {
			continue
		}
		res := gopim.Evaluate(t)
		fmt.Printf("  %-14s PIM-Core: -%4.1f%% energy %.2fx | PIM-Acc: -%4.1f%% energy %.2fx\n",
			t.Name,
			res.EnergyReduction(gopim.PIMCore)*100, res.Speedup(gopim.PIMCore),
			res.EnergyReduction(gopim.PIMAcc)*100, res.Speedup(gopim.PIMAcc))
	}
	fmt.Println("\n(while PIM logic packs and quantizes, the CPU runs the GEMM kernels")
	fmt.Println(" of the next chunk in parallel — the paper's Figure 19 pipeline)")
}
