// Browser scrolling: profile a custom instrumented kernel with the public
// API and run the paper's PIM-target identification methodology (§3.2)
// over its functions, then check what ZRAM tab compression does to a
// real tab memory image.
package main

import (
	"fmt"
	"sort"

	"gopim"
	"gopim/workloads"
)

func main() {
	// A custom kernel: stream a "page layer" bitmap, then reorganize it —
	// the same structure as Chrome's rasterize→tile pipeline, written
	// against the public instrumentation API.
	const size = 1024 * 1024 * 4 // one 1024x1024 RGBA layer
	kernel := gopim.KernelFunc{
		KernelName: "custom raster pipeline",
		Fn: func(ctx *gopim.Ctx) {
			layer := ctx.Alloc("layer", size)
			tiles := ctx.Alloc("tiles", size)

			ctx.SetPhase("paint")
			for off := 0; off < size; off += 4096 {
				ctx.StoreV(layer, off, 4096)
			}
			ctx.SIMD(size / 16)

			ctx.SetPhase("tile")
			for off := 0; off < size; off += 128 {
				ctx.LoadV(layer, off, 128)
				ctx.StoreV(tiles, (off*7)%size&^127, 128) // reorganizing writes
				ctx.Ops(4)
			}
		},
	}

	profile, phases := gopim.RunKernel(gopim.SoC(), kernel)
	fmt.Printf("profiled %q: %d instructions, %.1f MB moved, LLC MPKI %.1f\n",
		kernel.KernelName, profile.Instructions(), float64(profile.Mem.Total())/1e6, profile.LLCMPKI())

	// Apply the paper's candidate criteria to each function.
	ev := gopim.NewEvaluator()
	cands := ev.IdentifyCandidates(phases, gopim.DefaultCriteria())
	fmt.Println("\nPIM target candidates (paper §3.2 criteria):")
	for _, c := range cands {
		fmt.Printf("  %-8s energy %5.1f%%  movement %5.1f%% of own  MPKI %6.1f  qualifies=%v\n",
			c.Function, c.EnergyFraction*100, c.OwnMovementFraction*100, c.MPKI, c.Qualifies())
	}

	// The six pages of Figure 1 and their ZRAM behaviour.
	fmt.Println("\ntab compression (LZO, as ZRAM does):")
	pages := workloads.ScrollPages()
	sort.Slice(pages, func(i, j int) bool { return pages[i].Name < pages[j].Name })
	for _, p := range pages {
		mem := workloads.TabMemory(p.TabFootprint, int64(len(p.Name)))
		comp := workloads.LZOCompress(mem)
		fmt.Printf("  %-16s %4.1f MiB tab -> %4.1f MiB compressed (%.0f%%)\n",
			p.Name, float64(len(mem))/(1<<20), float64(len(comp))/(1<<20),
			float64(len(comp))/float64(len(mem))*100)
	}
}
