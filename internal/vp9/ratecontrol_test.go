package vp9

import (
	"bytes"
	"testing"

	"gopim/internal/video"
)

func TestRateControlConverges(t *testing.T) {
	cfg := Config{Width: 192, Height: 128, QIndex: 30}
	frames := video.NewSynth(cfg.Width, cfg.Height, 3, 17).Clip(16)
	const target = 20000.0 // bits per frame
	streams, qs, err := EncodeClipCBR(cfg, frames, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 16 || len(qs) != 16 {
		t.Fatalf("got %d streams, %d qs", len(streams), len(qs))
	}
	// Steady-state frames (skip the keyframe and settling) must land near
	// the target.
	var bits float64
	n := 0
	for i := 6; i < len(streams); i++ {
		bits += float64(len(streams[i])) * 8
		n++
	}
	avg := bits / float64(n)
	if avg < target*0.5 || avg > target*1.6 {
		t.Errorf("steady-state rate %.0f bits/frame, target %.0f (+/-60%%)", avg, target)
	}
}

func TestRateControlReactsToTarget(t *testing.T) {
	cfg := Config{Width: 192, Height: 128, QIndex: 30}
	frames := video.NewSynth(cfg.Width, cfg.Height, 3, 17).Clip(10)
	lowStreams, lowQs, err := EncodeClipCBR(cfg, frames, 6000)
	if err != nil {
		t.Fatal(err)
	}
	highStreams, highQs, err := EncodeClipCBR(cfg, frames, 60000)
	if err != nil {
		t.Fatal(err)
	}
	lowBits, highBits := 0, 0
	for i := range lowStreams {
		lowBits += len(lowStreams[i])
		highBits += len(highStreams[i])
	}
	if lowBits >= highBits {
		t.Errorf("low-rate total %d >= high-rate total %d", lowBits, highBits)
	}
	// Lower targets must push the quantizer up.
	if lowQs[len(lowQs)-1] <= highQs[len(highQs)-1] {
		t.Errorf("final Q: low-rate %d <= high-rate %d", lowQs[len(lowQs)-1], highQs[len(highQs)-1])
	}
}

func TestRateControlledStreamDecodes(t *testing.T) {
	cfg := Config{Width: 96, Height: 64, QIndex: 30}
	frames := video.NewSynth(cfg.Width, cfg.Height, 2, 23).Clip(6)
	streams, _, err := EncodeClipCBR(cfg, frames, 8000)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range streams {
		if _, err := dec.Decode(s); err != nil {
			t.Fatalf("frame %d with in-band quantizer failed to decode: %v", i, err)
		}
	}
}

func TestRateControlClamps(t *testing.T) {
	rc := NewRateControl(1000, 99) // out-of-range start Q
	if rc.QIndex() != MaxQIndex {
		t.Errorf("start Q = %d, want clamp to %d", rc.QIndex(), MaxQIndex)
	}
	rc = NewRateControl(1000, -5)
	if rc.QIndex() != 0 {
		t.Errorf("start Q = %d, want clamp to 0", rc.QIndex())
	}
	// Massive overshoot cannot push Q past the limits.
	for i := 0; i < 10; i++ {
		rc.Update(1 << 20)
	}
	if rc.QIndex() > MaxQIndex {
		t.Error("Q escaped above MaxQIndex")
	}
	for i := 0; i < 50; i++ {
		rc.Update(0)
	}
	if rc.QIndex() < 0 {
		t.Error("Q escaped below zero")
	}
}

func TestFrameCompressRoundTrip(t *testing.T) {
	f := video.NewSynth(128, 96, 3, 31).Frame(2)
	comp := CompressFrame(f)
	got, err := DecompressFrame(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Y, f.Y) || !bytes.Equal(got.U, f.U) || !bytes.Equal(got.V, f.V) {
		t.Fatal("frame compression round trip corrupted planes")
	}
	raw := len(f.Y) + len(f.U) + len(f.V)
	if len(comp) >= raw {
		t.Errorf("synthetic frame did not compress: %d >= %d", len(comp), raw)
	}
	if sz := CompressFrameSize(f); sz != len(comp)-16 {
		t.Errorf("CompressFrameSize = %d, want %d", sz, len(comp)-16)
	}
}

func TestDecompressFrameCorrupt(t *testing.T) {
	f := video.NewSynth(64, 64, 1, 1).Frame(0)
	comp := CompressFrame(f)
	cases := map[string][]byte{
		"empty":           {},
		"short header":    comp[:3],
		"truncated plane": comp[:len(comp)/2],
		"odd dimensions":  {3, 0, 3, 0},
	}
	for name, in := range cases {
		if _, err := DecompressFrame(in); err == nil {
			t.Errorf("%s: accepted corrupt input", name)
		}
	}
}
