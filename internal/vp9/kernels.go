package vp9

import (
	"fmt"
	"hash/fnv"

	"gopim/internal/mem"
	"gopim/internal/profile"
	"gopim/internal/video"
)

// Instrumented kernels for the paper's video PIM targets. Each kernel
// replays real codec work — the motion vectors, mode decisions and
// reconstructions of an actual encode of a synthetic clip — against
// simulated memory, so the cache/DRAM models see the true access pattern
// of sub-pixel interpolation, deblocking and motion estimation.

// CodedClip bundles a synthetic clip with its real encode artifacts.
type CodedClip struct {
	Cfg       Config
	Frames    []*video.Frame
	Recons    []*video.Frame
	Streams   [][]byte
	Decisions [][]Decision // per frame, raster macro-block order
	EncStats  Stats

	fingerprint string // content hash, set by CodeClip; keys the trace cache
}

// Fingerprint returns a string identifying the clip's content for
// memoization: configuration, frame count, and a hash of the coded
// bitstreams (which pin down the frames and decisions that produced them).
// Clips built outside CodeClip hash on demand.
func (c *CodedClip) Fingerprint() string {
	if c.fingerprint == "" {
		return c.computeFingerprint()
	}
	return c.fingerprint
}

func (c *CodedClip) computeFingerprint() string {
	h := fnv.New64a()
	for _, s := range c.Streams {
		h.Write(s)
	}
	return fmt.Sprintf("%dx%d q%d f%d h%016x",
		c.Cfg.Width, c.Cfg.Height, c.Cfg.QIndex, len(c.Frames), h.Sum64())
}

// CodeClip encodes nFrames of synthetic w x h video and collects the
// decisions the instrumented kernels replay.
func CodeClip(w, h, nFrames, qIndex int, seed uint32) (*CodedClip, error) {
	cfg := Config{Width: w, Height: h, QIndex: qIndex}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	clip := &CodedClip{Cfg: cfg.withDefaults()}
	var current []Decision
	enc.OnMB = func(mbx, mby int, d Decision) { current = append(current, d) }
	synth := video.NewSynth(w, h, 4, seed)
	for i := 0; i < nFrames; i++ {
		src := synth.Frame(i)
		current = nil
		data, recon, err := enc.Encode(src)
		if err != nil {
			return nil, err
		}
		clip.Frames = append(clip.Frames, src)
		clip.Recons = append(clip.Recons, recon)
		clip.Streams = append(clip.Streams, data)
		clip.Decisions = append(clip.Decisions, append([]Decision(nil), current...))
	}
	clip.EncStats = enc.Stats
	clip.fingerprint = clip.computeFingerprint()
	return clip, nil
}

// refFor returns the reference frame the decoder would use for frame n,
// reference slot ri (recons are post-deblock, most recent first).
func (c *CodedClip) refFor(n, ri int) *video.Frame {
	idx := n - 1 - ri
	if idx < 0 {
		idx = 0
	}
	return c.Recons[idx]
}

// frameBuffers holds one frame's planes in simulated memory.
type frameBuffers struct {
	y, u, v *mem.Buffer
	w, h    int
}

func allocFrame(ctx *profile.Ctx, name string, f *video.Frame) frameBuffers {
	fb := frameBuffers{w: f.W, h: f.H}
	fb.y = ctx.Alloc(name+".Y", len(f.Y))
	fb.u = ctx.Alloc(name+".U", len(f.U))
	fb.v = ctx.Alloc(name+".V", len(f.V))
	copy(fb.y.Data, f.Y)
	copy(fb.u.Data, f.U)
	copy(fb.v.Data, f.V)
	return fb
}

const mcApron = 7 // 8-tap filter support around a block

// traceSubPelMB traces the reference fetch, filtering and prediction write
// of one 16x16 sub-pel interpolated block at (bx, by) with motion mv.
func traceSubPelMB(ctx *profile.Ctx, ref frameBuffers, pred *mem.Buffer, bx, by int, mv MV) {
	traceSubPelBlock(ctx, ref, pred, bx, by, mv, MBSize)
}

// traceSubPelBlock traces a bs x bs sub-pel interpolated block; smaller
// blocks pay relatively more for the filter apron, the amplification the
// paper's "11x11 pixels for a 4x4 sub-block" describes.
func traceSubPelBlock(ctx *profile.Ctx, ref frameBuffers, pred *mem.Buffer, bx, by int, mv MV, bs int) {
	intX, _ := floorDiv(mv.X, MVPrecision)
	intY, _ := floorDiv(mv.Y, MVPrecision)
	w := bs + mcApron
	h := bs + mcApron
	x := clampInt(bx+intX-mcApron/2, 0, ref.w-1)
	n := w
	if x+n > ref.w {
		n = ref.w - x
	}
	if y0 := by + intY - mcApron/2; y0 >= 0 && y0+h <= ref.h {
		// Interior block: rows are uniform, one span covers the window.
		ctx.LoadSpanV(ref.y, y0*ref.w+x, n, h, ref.w)
	} else {
		// Frame edge: vertical clamping repeats boundary rows.
		for r := 0; r < h; r++ {
			y := clampInt(by+intY+r-mcApron/2, 0, ref.h-1)
			ctx.LoadV(ref.y, y*ref.w+x, n)
		}
	}
	// Horizontal + vertical 8-tap passes.
	ctx.SIMD(bs*h*8/4 + bs*bs*8/4)
	ctx.Ops(bs * 2) // per-row setup
	ctx.StoreV(pred, 0, bs*bs)
}

// traceFullPelMB traces a whole-pel copy block.
func traceFullPelMB(ctx *profile.Ctx, ref frameBuffers, pred *mem.Buffer, bx, by int, mv MV) {
	traceFullPelBlock(ctx, ref, pred, bx, by, mv, MBSize)
}

func traceFullPelBlock(ctx *profile.Ctx, ref frameBuffers, pred *mem.Buffer, bx, by int, mv MV, bs int) {
	intX, _ := floorDiv(mv.X, MVPrecision)
	intY, _ := floorDiv(mv.Y, MVPrecision)
	x := clampInt(bx+intX, 0, ref.w-1)
	n := bs
	if x+n > ref.w {
		n = ref.w - x
	}
	if y0 := by + intY; y0 >= 0 && y0+bs <= ref.h {
		ctx.LoadSpanV(ref.y, y0*ref.w+x, n, bs, ref.w)
	} else {
		for r := 0; r < bs; r++ {
			y := clampInt(by+intY+r, 0, ref.h-1)
			ctx.LoadV(ref.y, y*ref.w+x, n)
		}
	}
	ctx.StoreV(pred, 0, bs*bs)
	ctx.Ops(bs)
}

// traceInterMB dispatches one inter macro-block's prediction trace across
// its partition, classifying each (sub-)block as sub-pel or whole-pel.
// It returns whether any sub-block needed interpolation.
func traceInterMB(ctx *profile.Ctx, ref frameBuffers, pred *mem.Buffer, bx, by int, d Decision, subPelPhase, fullPelPhase string) {
	if !d.Split {
		if isSubPel(d.MV) {
			ctx.SetPhase(subPelPhase)
			traceSubPelBlock(ctx, ref, pred, bx, by, d.MV, MBSize)
		} else {
			ctx.SetPhase(fullPelPhase)
			traceFullPelBlock(ctx, ref, pred, bx, by, d.MV, MBSize)
		}
		return
	}
	for q := 0; q < 4; q++ {
		qx, qy := bx+(q%2)*8, by+(q/2)*8
		if isSubPel(d.SubMVs[q]) {
			ctx.SetPhase(subPelPhase)
			traceSubPelBlock(ctx, ref, pred, qx, qy, d.SubMVs[q], 8)
		} else {
			ctx.SetPhase(fullPelPhase)
			traceFullPelBlock(ctx, ref, pred, qx, qy, d.SubMVs[q], 8)
		}
	}
}

func isSubPel(mv MV) bool {
	return mv.X%MVPrecision != 0 || mv.Y%MVPrecision != 0
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SubPelKernel returns the sub-pixel interpolation PIM target: replaying
// every sub-pel motion-compensated block of the clip (paper §6.2.2).
func SubPelKernel(clip *CodedClip) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("sub-pixel interpolation %dx%d", clip.Cfg.Width, clip.Cfg.Height),
		Key:        "vp9-subpel " + clip.Fingerprint(),
		Fn: func(ctx *profile.Ctx) {
			pred := ctx.Alloc("prediction", MBSize*MBSize)
			mbCols := clip.Cfg.Width / MBSize
			for n := 1; n < len(clip.Frames); n++ {
				refs := [3]frameBuffers{}
				for ri := 0; ri < 3; ri++ {
					refs[ri] = allocFrame(ctx, fmt.Sprintf("ref%d-%d", n, ri), clip.refFor(n, ri))
				}
				ctx.SetPhase("sub-pixel interpolation")
				var scratch [MBSize * MBSize]uint8
				var st MCStats
				for i, d := range clip.Decisions[n] {
					if !d.Inter {
						continue
					}
					bx, by := (i%mbCols)*MBSize, (i/mbCols)*MBSize
					switch {
					case d.Split:
						for q := 0; q < 4; q++ {
							if isSubPel(d.SubMVs[q]) {
								traceSubPelBlock(ctx, refs[d.Ref], pred, bx+(q%2)*8, by+(q/2)*8, d.SubMVs[q], 8)
							}
						}
						PredictLuma(scratch[:], MBSize, clip.refFor(n, d.Ref), bx, by, MBSize, MBSize, d.SubMVs[0], &st)
					case isSubPel(d.MV):
						traceSubPelBlock(ctx, refs[d.Ref], pred, bx, by, d.MV, MBSize)
						PredictLuma(scratch[:], MBSize, clip.refFor(n, d.Ref), bx, by, MBSize, MBSize, d.MV, &st)
					}
				}
			}
		},
	}
}

// DeblockKernel returns the deblocking filter PIM target: filtering every
// reconstructed frame of the clip (paper §6.2.2).
func DeblockKernel(clip *CodedClip) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("deblocking filter %dx%d", clip.Cfg.Width, clip.Cfg.Height),
		Key:        "vp9-deblock " + clip.Fingerprint(),
		Fn: func(ctx *profile.Ctx) {
			for n := 0; n < len(clip.Recons); n++ {
				fb := allocFrame(ctx, fmt.Sprintf("recon%d", n), clip.Recons[n])
				ctx.SetPhase("deblocking filter")
				traceDeblockPlane(ctx, fb.y, fb.w, fb.h)
				traceDeblockPlane(ctx, fb.u, fb.w/2, fb.h/2)
				traceDeblockPlane(ctx, fb.v, fb.w/2, fb.h/2)
				var st DeblockStats
				DeblockPlane(fb.y.Data, fb.w, fb.h, clip.Cfg.QIndex, &st)
			}
		},
	}
}

// traceDeblockPlane traces the filter's sweep over one plane. The filter
// walks the frame in raster band order (one 4-row band at a time, as the
// superblock raster scan does): each band streams in from memory once, all
// vertical- and horizontal-edge taps within the band hit the band's
// resident rows, and the modified rows stream back out. The per-edge tap
// work is accounted as cache-resident references and ALU operations.
func traceDeblockPlane(ctx *profile.Ctx, plane *mem.Buffer, w, h int) {
	for y0 := 0; y0 < h; y0 += 4 {
		rows := 4
		if h-y0 < rows {
			rows = h - y0
		}
		ctx.LoadV(plane, y0*w, rows*w)
		ctx.StoreV(plane, y0*w, rows*w)
		// Vertical edges: one 4-tap check per row per 4-pixel boundary.
		vEdges := (w / 4) * rows
		// Horizontal edges: one per pixel on the band's top boundary.
		hEdges := w
		ctx.Refs(vEdges + hEdges)
		ctx.SIMD((vEdges + hEdges) * 6 / 4) // vectorized filter taps
	}
}

// MEKernel returns the motion estimation PIM target: re-running diamond
// search plus sub-pel refinement over the clip's frames against up to
// three reference frames (paper §7.2.2).
func MEKernel(clip *CodedClip) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("motion estimation %dx%d", clip.Cfg.Width, clip.Cfg.Height),
		Key:        "vp9-me " + clip.Fingerprint(),
		Fn: func(ctx *profile.Ctx) {
			mbCols := clip.Cfg.Width / MBSize
			mbRows := clip.Cfg.Height / MBSize
			for n := 1; n < len(clip.Frames); n++ {
				cur := allocFrame(ctx, fmt.Sprintf("cur%d", n), clip.Frames[n])
				refs := [3]frameBuffers{}
				realRefs := [3]*video.Frame{}
				for ri := 0; ri < 3; ri++ {
					refs[ri] = allocFrame(ctx, fmt.Sprintf("ref%d-%d", n, ri), clip.refFor(n, ri))
					realRefs[ri] = clip.refFor(n, ri)
				}
				ctx.SetPhase("motion estimation")
				var st MEStats
				for mby := 0; mby < mbRows; mby++ {
					for mbx := 0; mbx < mbCols; mbx++ {
						bx, by := mbx*MBSize, mby*MBSize
						// Current block is read once and stays resident.
						ctx.LoadSpanV(cur.y, by*cur.w+bx, MBSize, MBSize, cur.w)
						for ri := 0; ri < 3; ri++ {
							before := st.SADs
							whole, _ := DiamondSearch(clip.Frames[n], realRefs[ri], bx, by, [2]int{0, 0}, clip.Cfg.SearchRange, &st)
							SubPelRefine(clip.Frames[n], realRefs[ri], bx, by, whole, &st)
							sads := st.SADs - before
							// Each candidate fetches a 16x16 window around
							// the evolving search center.
							for s := uint64(0); s < sads+8; s++ {
								dy := int(s%5) - 2
								y := clampInt(by+whole[1]+dy*3, 0, refs[ri].h-MBSize)
								x := clampInt(bx+whole[0]+int(s%3)-1, 0, refs[ri].w-MBSize)
								ctx.LoadSpanV(refs[ri].y, y*refs[ri].w+x, MBSize, MBSize/4, 4*refs[ri].w)
								ctx.SIMD(MBSize * MBSize / 4 / 4) // SAD rows sampled
							}
							ctx.SIMD(int(sads) * MBSize * MBSize / 4)
							ctx.Ops(int(sads) * 8)
						}
					}
				}
			}
		},
	}
}
