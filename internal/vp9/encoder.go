package vp9

import (
	"fmt"

	"gopim/internal/video"
)

// Encoder compresses frames (paper Figure 14). It owns the reference frame
// ring and mirrors the decoder's reconstruction exactly, so that
// Decode(Encode(f)) equals the encoder's reconstructed output bit-for-bit.
type Encoder struct {
	cfg    Config
	refs   []*video.Frame // most recent first, post-deblock
	frameN int

	coeffY coeffProbs
	coeffC coeffProbs
	mvp    mvProbs

	countsY coeffCounts
	countsC coeffCounts
	countMV mvCounts

	// Stats accumulates work counters across Encode calls.
	Stats Stats

	// OnMB, when non-nil, observes every macro-block coding decision (used
	// by the instrumented replay kernels and by analysis tools).
	OnMB func(mbx, mby int, d Decision)
}

// Decision records how one macro-block was coded.
type Decision struct {
	Inter  bool
	Ref    int
	MV     MV
	Mode   IntraMode
	Split  bool
	SubMVs [4]MV
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg Config) (*Encoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Encoder{
		cfg:    cfg,
		coeffY: defaultCoeffProbs(),
		coeffC: defaultCoeffProbs(),
		mvp:    defaultMVProbs(),
	}, nil
}

// Encode compresses one frame, returning the bitstream and the encoder's
// reconstruction (which the decoder will reproduce exactly).
func (e *Encoder) Encode(src *video.Frame) ([]byte, *video.Frame, error) {
	if src.W != e.cfg.Width || src.H != e.cfg.Height {
		return nil, nil, fmt.Errorf("vp9: frame %dx%d does not match configured %dx%d", src.W, src.H, e.cfg.Width, e.cfg.Height)
	}
	keyframe := e.frameN%e.cfg.KeyInterval == 0 || len(e.refs) == 0
	if keyframe {
		// Keyframes reset the adaptive entropy state (both sides do the
		// same, so streams stay seekable at keyframes).
		e.coeffY = defaultCoeffProbs()
		e.coeffC = defaultCoeffProbs()
		e.mvp = defaultMVProbs()
		e.countsY = coeffCounts{}
		e.countsC = coeffCounts{}
		e.countMV = mvCounts{}
	}
	w := NewBoolWriter()
	w.Bool(keyframe, 128)
	w.Literal(uint32(e.cfg.QIndex), 6)

	recon := video.NewFrame(src.W, src.H)
	mbCols := src.W / MBSize
	mbRows := src.H / MBSize
	for mby := 0; mby < mbRows; mby++ {
		predMV := MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			e.encodeMB(w, src, recon, mbx, mby, keyframe, &predMV)
		}
	}

	var dst DeblockStats
	DeblockPlane(recon.Y, recon.W, recon.H, e.cfg.QIndex, &dst)
	DeblockPlane(recon.U, recon.W/2, recon.H/2, e.cfg.QIndex, &dst)
	DeblockPlane(recon.V, recon.W/2, recon.H/2, e.cfg.QIndex, &dst)
	e.Stats.Deblock.EdgesChecked += dst.EdgesChecked
	e.Stats.Deblock.EdgesFiltered += dst.EdgesFiltered
	e.Stats.Deblock.PixelsRead += dst.PixelsRead
	e.Stats.Deblock.PixelsWritten += dst.PixelsWritten

	// Backward adaptation: fold this frame's symbol counts into the
	// probabilities used for the next frame.
	e.coeffY.adapt(&e.countsY)
	e.coeffC.adapt(&e.countsC)
	e.mvp.adapt(&e.countMV)

	e.pushRef(recon, keyframe)
	e.frameN++

	data := w.Flush()
	e.Stats.BitstreamBytes += uint64(len(data))
	e.Stats.FramesCoded++
	return data, recon.Clone(), nil
}

func (e *Encoder) pushRef(recon *video.Frame, keyframe bool) {
	if keyframe {
		e.refs = e.refs[:0]
	}
	e.refs = append([]*video.Frame{recon}, e.refs...)
	if len(e.refs) > e.cfg.MaxRefs {
		e.refs = e.refs[:e.cfg.MaxRefs]
	}
}

func (e *Encoder) encodeMB(w *BoolWriter, src, recon *video.Frame, mbx, mby int, keyframe bool, predMV *MV) {
	bx, by := mbx*MBSize, mby*MBSize
	var p mbPrediction

	intraMode, intraCost := BestIntraMode(src, recon.Y, recon.W, recon.H, bx, by, MBSize)

	bestRef, bestCost := -1, 1<<30
	var bestMV MV
	if !keyframe && len(e.refs) > 0 {
		start := [2]int{predMV.X / MVPrecision, predMV.Y / MVPrecision}
		// Whole-pel diamond search on every reference; sub-pel refinement
		// only on the winner (as libvpx does).
		bestWhole := [2]int{}
		for ri, ref := range e.refs {
			whole, sad := DiamondSearch(src, ref, bx, by, start, e.cfg.SearchRange, &e.Stats.ME)
			if sad < bestCost {
				bestCost = sad
				bestRef = ri
				bestWhole = whole
			}
		}
		bestMV, bestCost = SubPelRefine(src, e.refs[bestRef], bx, by, bestWhole, &e.Stats.ME)
		e.Stats.ME.Blocks++ // one macro-block fully searched
	}

	const interBias = 100 // signaling cost of ref+mv
	p.inter = bestRef >= 0 && bestCost+interBias < intraCost
	if p.inter {
		p.ref = bestRef
		p.mv = bestMV
		// Consider splitting into four 8x8 sub-blocks, each refined
		// around the 16x16 winner (one level of VP9's partitioning).
		ref := e.refs[p.ref]
		whole := [2]int{bestMV.X / MVPrecision, bestMV.Y / MVPrecision}
		splitCost := 0
		var subMVs [4]MV
		for q := 0; q < 4; q++ {
			qx, qy := bx+(q%2)*8, by+(q/2)*8
			mv, cost := SubPelRefineBlock(src, ref, qx, qy, whole, 8, &e.Stats.ME)
			subMVs[q] = mv
			splitCost += cost
		}
		const splitBias = 96 // signaling cost of three extra vectors
		if splitCost+splitBias < bestCost {
			p.split = true
			p.subMV = subMVs
		}
		e.Stats.InterMBs++
	} else {
		p.mode = intraMode
		e.Stats.IntraMBs++
	}
	if e.OnMB != nil {
		e.OnMB(mbx, mby, Decision{Inter: p.inter, Ref: p.ref, MV: p.mv, Mode: p.mode, Split: p.split, SubMVs: p.subMV})
	}

	// Syntax.
	if !keyframe {
		w.Bool(p.inter, probInter)
	}
	if p.inter {
		w.Bool(p.ref != 0, probRef0)
		if p.ref != 0 {
			w.Bool(p.ref == 2, probRef2)
		}
		w.Bool(p.split, probSplit)
		if p.split {
			prev := *predMV
			for q := 0; q < 4; q++ {
				writeMVComponent(w, p.subMV[q].X-prev.X, &e.mvp, &e.countMV)
				writeMVComponent(w, p.subMV[q].Y-prev.Y, &e.mvp, &e.countMV)
				prev = p.subMV[q]
			}
			*predMV = prev
		} else {
			writeMVComponent(w, p.mv.X-predMV.X, &e.mvp, &e.countMV)
			writeMVComponent(w, p.mv.Y-predMV.Y, &e.mvp, &e.countMV)
			*predMV = p.mv
		}
	} else {
		w.Literal(uint32(p.mode), 2)
	}

	// Prediction.
	var ref *video.Frame
	if p.inter {
		ref = e.refs[p.ref]
		p.predictInterLuma(ref, bx, by, &e.Stats.MC)
	} else {
		PredictIntra(p.predY[:], MBSize, recon.Y, recon.W, recon.H, bx, by, MBSize, p.mode)
	}
	p.predictChroma(recon, ref, mbx, mby)

	// Luma residual: 16 4x4 blocks.
	var levels [16]int32
	for blk := 0; blk < 16; blk++ {
		ox, oy := (blk%4)*4, (blk/4)*4
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				sv := int32(src.Y[(by+oy+r)*src.W+bx+ox+c])
				pv := int32(p.predY[(oy+r)*MBSize+ox+c])
				levels[r*4+c] = sv - pv
			}
		}
		FwdTransform4x4(levels[:])
		QuantizeBlock(levels[:], e.cfg.QIndex)
		writeCoeffs(w, &levels, &e.coeffY, &e.countsY)
		dequantInverse(&levels, e.cfg.QIndex)
		reconstruct4x4(recon.Y, recon.W, bx+ox, by+oy, p.predY[(oy)*MBSize+ox:], MBSize, &levels)
	}

	// Chroma residual: 4 blocks per plane.
	cw := recon.W / 2
	cbx, cby := mbx*8, mby*8
	for pi, plane := range [2]struct {
		src, rec []uint8
		pred     []uint8
	}{{src.U, recon.U, p.predU[:]}, {src.V, recon.V, p.predV[:]}} {
		_ = pi
		for blk := 0; blk < 4; blk++ {
			ox, oy := (blk%2)*4, (blk/2)*4
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					sv := int32(plane.src[(cby+oy+r)*cw+cbx+ox+c])
					pv := int32(plane.pred[(oy+r)*8+ox+c])
					levels[r*4+c] = sv - pv
				}
			}
			FwdTransform4x4(levels[:])
			QuantizeBlock(levels[:], e.cfg.QIndex)
			writeCoeffs(w, &levels, &e.coeffC, &e.countsC)
			dequantInverse(&levels, e.cfg.QIndex)
			reconstruct4x4(plane.rec, cw, cbx+ox, cby+oy, plane.pred[oy*8+ox:], 8, &levels)
		}
	}
}
