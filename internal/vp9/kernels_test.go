package vp9

import (
	"testing"

	"gopim/internal/energy"
	"gopim/internal/profile"
)

func testClip(t *testing.T) *CodedClip {
	t.Helper()
	clip, err := CodeClip(192, 128, 4, 28, 5)
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

func TestCodeClipCollectsDecisions(t *testing.T) {
	clip := testClip(t)
	if len(clip.Decisions) != 4 {
		t.Fatalf("decisions for %d frames, want 4", len(clip.Decisions))
	}
	mbs := (192 / 16) * (128 / 16)
	for i, d := range clip.Decisions {
		if len(d) != mbs {
			t.Errorf("frame %d: %d decisions, want %d", i, len(d), mbs)
		}
	}
	// Frame 0 is a keyframe: all intra.
	for _, d := range clip.Decisions[0] {
		if d.Inter {
			t.Fatal("keyframe contains inter blocks")
		}
	}
	// Later frames of panning video should be mostly inter.
	inter := 0
	for _, d := range clip.Decisions[2] {
		if d.Inter {
			inter++
		}
	}
	if inter < mbs/2 {
		t.Errorf("frame 2: only %d/%d inter blocks on panning content", inter, mbs)
	}
}

func TestSubPelKernelProfile(t *testing.T) {
	clip := testClip(t)
	_, phases := profile.Run(profile.SoC(), SubPelKernel(clip))
	p, ok := phases["sub-pixel interpolation"]
	if !ok {
		t.Fatal("missing sub-pixel interpolation phase")
	}
	if p.Mem.BytesRead == 0 || p.SIMDOps == 0 {
		t.Errorf("sub-pel kernel: reads=%d simd=%d; both must be nonzero", p.Mem.BytesRead, p.SIMDOps)
	}
}

func TestDeblockKernelProfile(t *testing.T) {
	clip := testClip(t)
	_, phases := profile.Run(profile.SoC(), DeblockKernel(clip))
	p := phases["deblocking filter"]
	// The filter reads more than it writes (paper: "produces strictly less
	// output than input").
	if p.Mem.BytesRead <= p.Mem.BytesWritten {
		t.Errorf("deblock reads %d <= writes %d; filter must read more than it writes",
			p.Mem.BytesRead, p.Mem.BytesWritten)
	}
}

func TestMEKernelProfile(t *testing.T) {
	clip := testClip(t)
	total, phases := profile.Run(profile.SoC(), MEKernel(clip))
	p := phases["motion estimation"]
	if p.SIMDOps == 0 {
		t.Fatal("ME recorded no SAD work")
	}
	// ME is the most compute-intensive video kernel: its SIMD density per
	// byte moved should exceed the sub-pel kernel's.
	_, spPhases := profile.Run(profile.SoC(), SubPelKernel(clip))
	sp := spPhases["sub-pixel interpolation"]
	meDensity := float64(p.SIMDOps) / float64(p.Mem.Total()+1)
	spDensity := float64(sp.SIMDOps) / float64(sp.Mem.Total()+1)
	if meDensity <= spDensity {
		t.Errorf("ME compute density %.3f <= sub-pel %.3f; ME should be more compute-heavy", meDensity, spDensity)
	}
	if total.Instructions() == 0 {
		t.Error("no instructions")
	}
}

func TestDecodeKernelPhaseShape(t *testing.T) {
	clip := testClip(t)
	_, phases := profile.Run(profile.SoC(), DecodeKernel(clip))
	for _, name := range DecoderPhases {
		if _, ok := phases[name]; !ok {
			t.Errorf("missing decoder phase %q", name)
		}
	}
	// Paper Figure 10: MC (sub-pel) and the deblocking filter dominate;
	// entropy decoding and inverse transform are minor.
	subPel := phases[PhaseSubPel].Mem.Total()
	deblock := phases[PhaseDeblock].Mem.Total()
	inv := phases[PhaseInvXfrm].Mem.Total()
	if subPel <= inv {
		t.Errorf("sub-pel traffic %d <= inverse transform %d; expected sub-pel to dominate", subPel, inv)
	}
	if deblock <= inv {
		t.Errorf("deblock traffic %d <= inverse transform %d", deblock, inv)
	}
}

func TestEncodeKernelPhaseShape(t *testing.T) {
	clip := testClip(t)
	_, phases := profile.Run(profile.SoC(), EncodeKernel(clip))
	for _, name := range EncoderPhases {
		if _, ok := phases[name]; !ok {
			t.Errorf("missing encoder phase %q", name)
		}
	}
	// Paper Figure 15: motion estimation is the largest single consumer.
	me := phases[PhaseME]
	for _, name := range []string{PhaseIntraPred, PhaseTransform, PhaseQuant} {
		if phases[name].Mem.Total() > me.Mem.Total() {
			t.Errorf("%s traffic exceeds motion estimation", name)
		}
	}
}

func TestMeasureHWParams(t *testing.T) {
	clip := testClip(t)
	p := MeasureHWParams(clip)
	// Paper §6.3.1: the decoder reads ~2.9 reference pixels per pixel.
	if p.RefPxPerPx < 1.0 || p.RefPxPerPx > 6 {
		t.Errorf("RefPxPerPx = %.2f, want ~2.9 (1..6)", p.RefPxPerPx)
	}
	if p.BitsPerPixel <= 0 || p.BitsPerPixel > 8 {
		t.Errorf("BitsPerPixel = %.2f out of range", p.BitsPerPixel)
	}
	if p.CompressionRatio <= 0.2 || p.CompressionRatio >= 1.0 {
		t.Errorf("CompressionRatio = %.2f; lossless frame compression should land in (0.2,1)", p.CompressionRatio)
	}
	if p.MEWindowPxPerPx <= 0 {
		t.Error("MEWindowPxPerPx must be positive")
	}
}

func TestHWDecodeTrafficShape(t *testing.T) {
	clip := testClip(t)
	p := MeasureHWParams(clip)

	hd := HWDecodeTraffic(1280, 720, false, p)
	k4 := HWDecodeTraffic(3840, 2160, false, p)
	// Paper: reference frame dominates the traffic.
	if hd[0].Name != CatReferenceFrame || hd[0].Bytes < 0.4*TotalTraffic(hd) {
		t.Errorf("reference frame is %.1f%% of HD decode traffic; expected the dominant share",
			100*hd[0].Bytes/TotalTraffic(hd))
	}
	// Paper: one 4K frame needs ~4.6x the movement of one HD frame.
	ratio := TotalTraffic(k4) / TotalTraffic(hd)
	if ratio < 3.5 || ratio > 6.5 {
		t.Errorf("4K/HD traffic ratio = %.1f, want ~4.6", ratio)
	}
	// Compression reduces reference traffic but not bitstream traffic.
	hdc := HWDecodeTraffic(1280, 720, true, p)
	if !(hdc[0].Bytes < hd[0].Bytes) {
		t.Error("compression did not reduce reference frame traffic")
	}
	if TotalTraffic(hdc) >= TotalTraffic(hd) {
		t.Error("compression did not reduce total traffic")
	}
}

func TestHWEncodeTrafficShape(t *testing.T) {
	clip := testClip(t)
	p := MeasureHWParams(clip)
	hd := HWEncodeTraffic(1280, 720, false, p)
	total := TotalTraffic(hd)
	var ref float64
	for _, it := range hd {
		if it.Name == CatReferenceFrame {
			ref = it.Bytes
		}
	}
	// Paper §7.3.1: reference pixels are ~65% of encoder traffic.
	if frac := ref / total; frac < 0.35 || frac > 0.85 {
		t.Errorf("reference share of encode traffic = %.1f%%, want ~65%%", frac*100)
	}
	// 4K ~4.3x HD.
	k4 := HWEncodeTraffic(3840, 2160, false, p)
	if r := TotalTraffic(k4) / total; r < 3.5 || r > 6 {
		t.Errorf("4K/HD encode traffic ratio = %.1f, want ~4.3", r)
	}
}

func TestHWEnergyFigure21Shape(t *testing.T) {
	clip := testClip(t)
	p := MeasureHWParams(clip)
	params := energy.Default()
	const opsPerPixel = 12

	for _, compressed := range []bool{false, true} {
		items := HWDecodeTraffic(1280, 720, compressed, p)
		base := HWEnergy(items, 1280, 720, HWBaseline, params, opsPerPixel).Total()
		core := HWEnergy(items, 1280, 720, HWPIMCore, params, opsPerPixel).Total()
		acc := HWEnergy(items, 1280, 720, HWPIMAcc, params, opsPerPixel).Total()
		// Paper Figure 21: PIM-Acc always beats the baseline; PIM-Core is
		// worse than PIM-Acc because its computation is an order of
		// magnitude less efficient than dedicated hardware.
		if acc >= base {
			t.Errorf("compressed=%v: PIM-Acc energy %.2g >= baseline %.2g", compressed, acc, base)
		}
		if core <= acc {
			t.Errorf("compressed=%v: PIM-Core %.2g <= PIM-Acc %.2g", compressed, core, acc)
		}
	}
	// Paper: PIM-Acc *without* compression still beats VP9 *with*
	// compression (PIM removes more movement than compression does).
	accNo := HWEnergy(HWDecodeTraffic(1280, 720, false, p), 1280, 720, HWPIMAcc, params, opsPerPixel).Total()
	baseComp := HWEnergy(HWDecodeTraffic(1280, 720, true, p), 1280, 720, HWBaseline, params, opsPerPixel).Total()
	if accNo >= baseComp {
		t.Errorf("PIM-Acc w/o compression (%.3g) should beat baseline with compression (%.3g)", accNo, baseComp)
	}
}
