package vp9

import (
	"math/rand"
	"testing"

	"gopim/internal/video"
)

// sadBlockRef is the byte-wise reference the SWAR path must match exactly.
func sadBlockRef(cur, ref *video.Frame, bx, by, dx, dy, bs int) int {
	var sad int
	for y := 0; y < bs; y++ {
		for x := 0; x < bs; x++ {
			d := int(cur.YAt(bx+x, by+y)) - int(ref.YAt(bx+x+dx, by+dy+y))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

func noiseFrame(w, h int, seed int64) *video.Frame {
	f := video.NewFrame(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Y {
		f.Y[i] = uint8(rng.Intn(256))
	}
	return f
}

// TestSAD8 exercises the packed-word primitive against a byte loop,
// including the extreme values where biased subtraction could overflow a
// lane.
func TestSAD8(t *testing.T) {
	cases := [][2]uint64{
		{0, 0},
		{^uint64(0), 0},
		{0, ^uint64(0)},
		{^uint64(0), ^uint64(0)},
		{0x00ff00ff00ff00ff, 0xff00ff00ff00ff00},
		{0x0102030405060708, 0x0807060504030201},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		cases = append(cases, [2]uint64{rng.Uint64(), rng.Uint64()})
	}
	for _, c := range cases {
		var want uint64
		for b := 0; b < 8; b++ {
			x := (c[0] >> (8 * b)) & 0xff
			y := (c[1] >> (8 * b)) & 0xff
			if x >= y {
				want += x - y
			} else {
				want += y - x
			}
		}
		if got := sad8(c[0], c[1]); got != want {
			t.Fatalf("sad8(%#x, %#x) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

// TestSADBlockMatchesReference sweeps block positions and displacements —
// interior, straddling every frame edge, and fully outside — for the block
// sizes motion estimation uses, and requires exact agreement with the
// byte-wise reference.
func TestSADBlockMatchesReference(t *testing.T) {
	cur := noiseFrame(64, 48, 2)
	ref := noiseFrame(64, 48, 3)
	for _, bs := range []int{8, 16} {
		for _, bx := range []int{0, 1, 7, 24, 64 - bs, 64 - bs + 3} {
			for _, by := range []int{0, 5, 48 - bs, 48 - bs + 2} {
				for _, d := range [][2]int{{0, 0}, {3, -2}, {-bx - 1, 0}, {0, -by - 4}, {64, 0}, {-7, 5}, {17, 48}} {
					got := SADBlock(cur, ref, bx, by, d[0], d[1], bs)
					want := sadBlockRef(cur, ref, bx, by, d[0], d[1], bs)
					if got != want {
						t.Fatalf("SADBlock bs=%d at (%d,%d) disp (%d,%d) = %d, want %d",
							bs, bx, by, d[0], d[1], got, want)
					}
				}
			}
		}
	}
}

// TestSADBlockOddSize: non-multiple-of-8 block sizes must still work via the
// scalar path.
func TestSADBlockOddSize(t *testing.T) {
	cur := noiseFrame(32, 32, 4)
	ref := noiseFrame(32, 32, 5)
	for _, bs := range []int{4, 12} {
		got := SADBlock(cur, ref, 8, 8, 1, -1, bs)
		want := sadBlockRef(cur, ref, 8, 8, 1, -1, bs)
		if got != want {
			t.Fatalf("SADBlock bs=%d = %d, want %d", bs, got, want)
		}
	}
}

// TestSadPredMatchesScalar checks the prediction-compare fast path inside
// sub-pel refinement against a direct byte loop over the same prediction.
func TestSadPredMatchesScalar(t *testing.T) {
	cur := noiseFrame(64, 64, 6)
	ref := noiseFrame(64, 64, 7)
	const bs = 16
	pred := make([]uint8, bs*bs)
	var st MCStats
	for _, pos := range [][2]int{{0, 0}, {16, 16}, {64 - bs, 64 - bs}, {3, 64 - bs}} {
		for _, mv := range []MV{{X: 0, Y: 0}, {X: 3, Y: -5}, {X: -17, Y: 9}} {
			got := sadPred(cur, ref, pos[0], pos[1], mv, pred, bs, &st)
			PredictLuma(pred, bs, ref, pos[0], pos[1], bs, bs, mv, &st)
			var want int
			for y := 0; y < bs; y++ {
				for x := 0; x < bs; x++ {
					d := int(cur.YAt(pos[0]+x, pos[1]+y)) - int(pred[y*bs+x])
					if d < 0 {
						d = -d
					}
					want += d
				}
			}
			if got != want {
				t.Fatalf("sadPred at (%d,%d) mv %+v = %d, want %d", pos[0], pos[1], mv, got, want)
			}
		}
	}
}

// BenchmarkSWARSAD measures the word-parallel 16x16 SAD on interior blocks.
func BenchmarkSWARSAD(b *testing.B) {
	cur := noiseFrame(1280, 720, 8)
	ref := noiseFrame(1280, 720, 9)
	b.SetBytes(2 * 16 * 16)
	for i := 0; i < b.N; i++ {
		SADBlock(cur, ref, 640, 360, 3, -2, 16)
	}
}

// BenchmarkScalarSAD is the byte-wise loop the SWAR path replaces.
func BenchmarkScalarSAD(b *testing.B) {
	cur := noiseFrame(1280, 720, 8)
	ref := noiseFrame(1280, 720, 9)
	b.SetBytes(2 * 16 * 16)
	for i := 0; i < b.N; i++ {
		sadBlockRef(cur, ref, 640, 360, 3, -2, 16)
	}
}
