package vp9

import (
	"testing"

	"gopim/internal/video"
)

func benchClip(b *testing.B, w, h, frames int) []*video.Frame {
	b.Helper()
	return video.NewSynth(w, h, 3, 7).Clip(frames)
}

func BenchmarkEncode360p(b *testing.B) {
	frames := benchClip(b, 640, 368, 4)
	cfg := Config{Width: 640, Height: 368, QIndex: 28}
	pixels := int64(640 * 368 * len(frames))
	b.SetBytes(pixels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewEncoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range frames {
			if _, _, err := enc.Encode(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDecode360p(b *testing.B) {
	frames := benchClip(b, 640, 368, 4)
	cfg := Config{Width: 640, Height: 368, QIndex: 28}
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var streams [][]byte
	for _, f := range frames {
		data, _, err := enc.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		streams = append(streams, data)
	}
	b.SetBytes(int64(640 * 368 * len(frames)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range streams {
			if _, err := dec.Decode(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSubPelInterpolation(b *testing.B) {
	ref := video.NewSynth(640, 368, 3, 7).Frame(0)
	var dst [16 * 16]uint8
	var st MCStats
	b.SetBytes(16 * 16)
	for i := 0; i < b.N; i++ {
		PredictLuma(dst[:], 16, ref, (i*16)%(640-32), (i*7)%(368-32), 16, 16, MV{X: 5, Y: 3}, &st)
	}
}

func BenchmarkDiamondSearch(b *testing.B) {
	s := video.NewSynth(640, 368, 3, 7)
	ref, cur := s.Frame(0), s.Frame(1)
	var st MEStats
	for i := 0; i < b.N; i++ {
		DiamondSearch(cur, ref, (i*16)%(640-32), (i*16)%(368-32), [2]int{0, 0}, 16, &st)
	}
}

func BenchmarkDeblockPlane(b *testing.B) {
	f := video.NewSynth(640, 368, 3, 7).Frame(0)
	plane := make([]uint8, len(f.Y))
	var st DeblockStats
	b.SetBytes(int64(len(plane)))
	for i := 0; i < b.N; i++ {
		copy(plane, f.Y)
		DeblockPlane(plane, 640, 368, 28, &st)
	}
}

func BenchmarkBoolCoder(b *testing.B) {
	b.SetBytes(1)
	w := NewBoolWriter()
	for i := 0; i < b.N; i++ {
		w.Bool(i&3 == 0, 192)
	}
	_ = w.Flush()
}

func BenchmarkFrameCompress(b *testing.B) {
	f := video.NewSynth(640, 368, 3, 7).Frame(0)
	b.SetBytes(int64(len(f.Y) + len(f.U) + len(f.V)))
	for i := 0; i < b.N; i++ {
		CompressFrame(f)
	}
}
