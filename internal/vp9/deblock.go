package vp9

// In-loop deblocking filter (paper Figure 9, block 8): for every 4x4 block
// edge, edge pixels that are discontinuous with their neighbors — but not
// so discontinuous that the edge is real image content — get a low-pass
// adjustment, in the style of VP8/VP9's normal loop filter.

// DeblockStats counts filter work for the instrumented kernels and the
// hardware traffic model.
type DeblockStats struct {
	EdgesChecked  uint64
	EdgesFiltered uint64
	PixelsRead    uint64
	PixelsWritten uint64
}

// filterLevelFor derives the filter strength from the frame's quantizer.
func filterLevelFor(qIndex int) int32 {
	lvl := int32(6 + qIndex/2)
	if lvl > 40 {
		lvl = 40
	}
	return lvl
}

// DeblockPlane filters all interior 4x4 edges of a plane in place.
func DeblockPlane(plane []uint8, w, h, qIndex int, st *DeblockStats) {
	level := filterLevelFor(qIndex)
	limit := level
	thresh := level / 4

	// Vertical edges (filter across columns), then horizontal edges.
	for x := 4; x < w; x += 4 {
		for y := 0; y < h; y++ {
			st.EdgesChecked++
			i := y*w + x
			filterEdge(plane, i, 1, limit, thresh, st)
		}
	}
	for y := 4; y < h; y += 4 {
		for x := 0; x < w; x++ {
			st.EdgesChecked++
			i := y*w + x
			filterEdge(plane, i, w, limit, thresh, st)
		}
	}
}

// filterEdge examines samples p1 p0 | q0 q1 around the edge at index i
// (stride step between samples perpendicular to the edge) and applies the
// 4-tap adjustment when the discontinuity is small enough to be a blocking
// artifact.
func filterEdge(plane []uint8, i, step int, limit, thresh int32, st *DeblockStats) {
	if i-2*step < 0 || i+2*step > len(plane) {
		return
	}
	p1 := int32(plane[i-2*step])
	p0 := int32(plane[i-step])
	q0 := int32(plane[i])
	q1 := int32(plane[i+step])
	st.PixelsRead += 4

	if abs32(p0-q0)*2+abs32(p1-q1)/2 > limit {
		return // real edge: leave it alone
	}
	st.EdgesFiltered++

	// VP8-style filter: a = clamp(3*(q0-p0) + clamp(p1-q1))
	a := clamp128(3*(q0-p0) + clamp128(p1-q1))
	f1 := (a + 4) >> 3
	if a+4 > 127 {
		f1 = 15
	}
	f2 := (a + 3) >> 3
	if a+3 > 127 {
		f2 = 15
	}
	plane[i] = clampPel(q0 - f1)
	plane[i-step] = clampPel(p0 + f2)
	st.PixelsWritten += 2

	// High-variance edges skip the outer taps.
	if abs32(p1-p0) > thresh || abs32(q1-q0) > thresh {
		return
	}
	outer := (f1 + 1) >> 1
	plane[i+step] = clampPel(q1 - outer)
	plane[i-2*step] = clampPel(p1 + outer)
	st.PixelsWritten += 2
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp128(v int32) int32 {
	if v < -128 {
		return -128
	}
	if v > 127 {
		return 127
	}
	return v
}
