package vp9

// Block transforms. VP9 proper uses a family of DCT/ADST transforms; this
// codec uses 4x4 and 8x8 Walsh–Hadamard transforms instead (VP9 itself uses
// the 4x4 WHT for its lossless mode). They are exactly invertible in
// integer arithmetic, which lets the encoder's reconstruction and the
// decoder agree bit-for-bit, and they have the same blocked data-movement
// pattern as the DCT family — which is what the paper's analysis depends
// on. DESIGN.md records the substitution.

// BlockSize is the transform block edge length.
const BlockSize = 4

// FwdTransform4x4 applies the forward 4x4 WHT to a residual block (row-
// major, 16 int32s), in place.
func FwdTransform4x4(b []int32) {
	hadamard4Rows(b)
	hadamard4Cols(b)
}

// InvTransform4x4 inverts FwdTransform4x4 exactly: WHT is self-inverse up
// to a scale of 16.
func InvTransform4x4(b []int32) {
	hadamard4Rows(b)
	hadamard4Cols(b)
	for i := range b[:16] {
		b[i] >>= 4
	}
}

func hadamard4Rows(b []int32) {
	for r := 0; r < 4; r++ {
		i := r * 4
		a0, a1, a2, a3 := b[i], b[i+1], b[i+2], b[i+3]
		s0 := a0 + a2
		s1 := a1 + a3
		d0 := a0 - a2
		d1 := a1 - a3
		b[i] = s0 + s1
		b[i+1] = s0 - s1
		b[i+2] = d0 + d1
		b[i+3] = d0 - d1
	}
}

func hadamard4Cols(b []int32) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := b[c], b[c+4], b[c+8], b[c+12]
		s0 := a0 + a2
		s1 := a1 + a3
		d0 := a0 - a2
		d1 := a1 - a3
		b[c] = s0 + s1
		b[c+4] = s0 - s1
		b[c+8] = d0 + d1
		b[c+12] = d0 - d1
	}
}

// FwdTransform8x8 applies an 8x8 Hadamard transform in place (64 int32s).
func FwdTransform8x8(b []int32) {
	for r := 0; r < 8; r++ {
		hadamard8(b[r*8:r*8+8], 1)
	}
	var col [8]int32
	for c := 0; c < 8; c++ {
		for r := 0; r < 8; r++ {
			col[r] = b[r*8+c]
		}
		hadamard8(col[:], 1)
		for r := 0; r < 8; r++ {
			b[r*8+c] = col[r]
		}
	}
}

// InvTransform8x8 inverts FwdTransform8x8 exactly (scale 64).
func InvTransform8x8(b []int32) {
	FwdTransform8x8(b)
	for i := range b[:64] {
		b[i] >>= 6
	}
}

func hadamard8(v []int32, stride int) {
	// Three butterfly stages.
	for span := 1; span < 8; span <<= 1 {
		for i := 0; i < 8; i += span * 2 {
			for j := i; j < i+span; j++ {
				a, b2 := v[j*stride], v[(j+span)*stride]
				v[j*stride] = a + b2
				v[(j+span)*stride] = a - b2
			}
		}
	}
}

// ZigZag4 is the coefficient scan order for 4x4 blocks (low frequencies
// first).
var ZigZag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
