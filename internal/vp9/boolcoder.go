// Package vp9 is a from-scratch simplified VP9-class video codec built for
// the paper's data-movement analysis (§§6–7). It implements the pipeline of
// Figure 9/14 with real algorithms — boolean range entropy coding, integer
// block transforms, quantization, intra prediction, diamond-search motion
// estimation over three reference frames, 8-tap sub-pixel motion
// compensation, and an in-loop deblocking filter — without claiming
// bitstream compatibility with VP9 (DESIGN.md records the substitutions).
package vp9

// The boolean coder is the arithmetic coder VP8/VP9 build all entropy
// coding on (RFC 6386 §7): each bool is coded against an 8-bit probability.

// BoolWriter encodes bools into a byte stream.
type BoolWriter struct {
	out      []byte
	bottom   uint32
	rng      uint32
	bitCount int
}

// NewBoolWriter returns a ready encoder.
func NewBoolWriter() *BoolWriter {
	return &BoolWriter{rng: 255, bitCount: 24}
}

// Bool encodes one bool; prob (1..255) is the probability, in 1/256ths,
// that the bool is false.
func (w *BoolWriter) Bool(bit bool, prob uint8) {
	split := 1 + (((w.rng - 1) * uint32(prob)) >> 8)
	if bit {
		w.bottom += split
		if w.bottom < split { // carry out of the 32-bit accumulator
			w.carry()
		}
		w.rng -= split
	} else {
		w.rng = split
	}
	for w.rng < 128 {
		w.rng <<= 1
		if w.bottom&(1<<31) != 0 {
			w.carry()
		}
		w.bottom <<= 1
		w.bitCount--
		if w.bitCount == 0 {
			w.out = append(w.out, byte(w.bottom>>24))
			w.bottom &= (1 << 24) - 1
			w.bitCount = 8
		}
	}
}

// carry propagates +1 through any trailing 0xFF bytes of the output.
func (w *BoolWriter) carry() {
	i := len(w.out) - 1
	for i >= 0 && w.out[i] == 0xFF {
		w.out[i] = 0
		i--
	}
	if i >= 0 {
		w.out[i]++
	}
}

// Literal encodes an n-bit unsigned value, MSB first, at even probability.
func (w *BoolWriter) Literal(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.Bool(v&(1<<uint(i)) != 0, 128)
	}
}

// Flush terminates the stream and returns the encoded bytes. The writer
// must not be used afterwards.
func (w *BoolWriter) Flush() []byte {
	c := w.bitCount
	v := w.bottom
	if v&(1<<uint(32-c)) != 0 {
		w.carry()
	}
	v <<= uint(c & 7)
	c >>= 3
	for ; c > 0; c-- {
		v <<= 8
	}
	for i := 0; i < 4; i++ {
		w.out = append(w.out, byte(v>>24))
		v <<= 8
	}
	return w.out
}

// BoolReader decodes a stream produced by BoolWriter.
type BoolReader struct {
	in       []byte
	pos      int
	value    uint32
	rng      uint32
	bitCount int
}

// NewBoolReader returns a decoder positioned at the start of in.
func NewBoolReader(in []byte) *BoolReader {
	r := &BoolReader{in: in, rng: 255}
	r.value = uint32(r.nextByte())<<8 | uint32(r.nextByte())
	return r
}

func (r *BoolReader) nextByte() byte {
	if r.pos < len(r.in) {
		b := r.in[r.pos]
		r.pos++
		return b
	}
	r.pos++
	return 0
}

// Exhausted reports whether the reader has consumed past the end of its
// input (i.e. the stream was truncated or over-read).
func (r *BoolReader) Exhausted() bool { return r.pos > len(r.in)+4 }

// Bool decodes one bool against prob.
func (r *BoolReader) Bool(prob uint8) bool {
	split := 1 + (((r.rng - 1) * uint32(prob)) >> 8)
	bigSplit := split << 8
	var bit bool
	if r.value >= bigSplit {
		bit = true
		r.rng -= split
		r.value -= bigSplit
	} else {
		r.rng = split
	}
	for r.rng < 128 {
		r.value <<= 1
		r.rng <<= 1
		r.bitCount++
		if r.bitCount == 8 {
			r.bitCount = 0
			r.value |= uint32(r.nextByte())
		}
	}
	return bit
}

// Literal decodes an n-bit unsigned value written by BoolWriter.Literal.
func (r *BoolReader) Literal(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		v <<= 1
		if r.Bool(128) {
			v |= 1
		}
	}
	return v
}
