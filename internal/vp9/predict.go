package vp9

import "gopim/internal/video"

// Intra prediction over 16x16 luma macro-blocks (and 8x8 chroma blocks),
// using the four classic VP8/VP9 full-block modes.

// IntraMode selects an intra predictor.
type IntraMode int

// Intra prediction modes.
const (
	PredDC IntraMode = iota // average of left and above samples
	PredV                   // copy the row above downward
	PredH                   // copy the left column rightward
	PredTM                  // "true motion": left + above - aboveleft
	numIntraModes
)

// PredictIntra writes an n x n intra prediction for the block at (bx, by)
// into dst (row-major, given stride), reading already-reconstructed
// neighbor samples from plane (width w, height h). Missing neighbors
// (frame edges) use 128/129 defaults, as VP8/VP9 do.
func PredictIntra(dst []uint8, stride int, plane []uint8, w, h, bx, by, n int, mode IntraMode) {
	sample := func(x, y int) (uint8, bool) {
		if x < 0 || y < 0 || x >= w || y >= h {
			return 0, false
		}
		return plane[y*w+x], true
	}
	// Neighbor rows fit fixed stack buffers for every block size in use
	// (n <= MBSize); this runs once per predicted block.
	var aboveArr, leftArr [MBSize]int32
	above, left := aboveArr[:], leftArr[:]
	if n > MBSize {
		above = make([]int32, n)
		left = make([]int32, n)
	} else {
		above, left = aboveArr[:n], leftArr[:n]
	}
	haveAbove, haveLeft := by > 0, bx > 0
	for i := 0; i < n; i++ {
		if v, ok := sample(bx+i, by-1); ok {
			above[i] = int32(v)
		} else if haveAbove {
			// Right of the frame edge on the top row: repeat last valid.
			above[i] = above[maxInt(i-1, 0)]
		} else {
			above[i] = 127
		}
		if v, ok := sample(bx-1, by+i); ok {
			left[i] = int32(v)
		} else if haveLeft {
			left[i] = left[maxInt(i-1, 0)]
		} else {
			left[i] = 129
		}
	}
	var aboveLeft int32 = 128
	if v, ok := sample(bx-1, by-1); ok {
		aboveLeft = int32(v)
	}

	switch mode {
	case PredDC:
		var sum, count int32
		if haveAbove {
			for _, v := range above {
				sum += v
			}
			count += int32(n)
		}
		if haveLeft {
			for _, v := range left {
				sum += v
			}
			count += int32(n)
		}
		dc := int32(128)
		if count > 0 {
			dc = (sum + count/2) / count
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dst[y*stride+x] = uint8(dc)
			}
		}
	case PredV:
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dst[y*stride+x] = uint8(above[x])
			}
		}
	case PredH:
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dst[y*stride+x] = uint8(left[y])
			}
		}
	case PredTM:
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dst[y*stride+x] = clampPel(left[y] + above[x] - aboveLeft)
			}
		}
	default:
		panic("vp9: unknown intra mode")
	}
}

// BestIntraMode picks the mode whose prediction has the lowest SAD against
// the source block.
func BestIntraMode(src *video.Frame, recon []uint8, w, h, bx, by, n int) (IntraMode, int) {
	// Stack scratch for the candidate predictions (n <= MBSize in all
	// callers); this runs once per macro-block per mode decision.
	var predArr [MBSize * MBSize]uint8
	pred := predArr[:]
	if n*n > len(predArr) {
		pred = make([]uint8, n*n)
	} else {
		pred = predArr[:n*n]
	}
	bestMode := PredDC
	bestSAD := 1 << 30
	for mode := PredDC; mode < numIntraModes; mode++ {
		PredictIntra(pred, n, recon, w, h, bx, by, n, mode)
		var sad int
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				d := int(src.YAt(bx+x, by+y)) - int(pred[y*n+x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestSAD = sad
			bestMode = mode
		}
	}
	return bestMode, bestSAD
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
