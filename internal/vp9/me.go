package vp9

import "gopim/internal/video"

// Motion estimation (paper Figure 14, block 4): diamond search over up to
// three reference frames with sum-of-absolute-differences matching, then
// sub-pixel refinement, as in libvpx's encoder.

// MEStats counts motion estimation work for the hardware traffic model and
// the instrumented kernels.
type MEStats struct {
	Blocks        uint64 // macro-blocks searched
	SADs          uint64 // block comparisons performed
	RefPixelsRead uint64 // candidate reference pixels fetched
	SubPelProbes  uint64 // sub-pel refinement comparisons
}

// SAD16 returns the sum of absolute differences between the 16x16 block of
// cur at (bx, by) and ref displaced by (dx, dy) whole pixels.
func SAD16(cur, ref *video.Frame, bx, by, dx, dy int) int {
	return SADBlock(cur, ref, bx, by, dx, dy, 16)
}

// SADBlock is SAD16 for an arbitrary square block size. Fully in-bounds
// blocks take the word-parallel SWAR path (swar.go), which is exactly
// equivalent to the byte loop below; edge blocks fall back to YAt's
// coordinate clamping.
func SADBlock(cur, ref *video.Frame, bx, by, dx, dy, bs int) int {
	if bs%8 == 0 && swarInBounds(cur, bx, by, bs) && swarInBounds(ref, bx+dx, by+dy, bs) {
		return sadBlockSWAR(cur, ref, bx, by, dx, dy, bs)
	}
	var sad int
	for y := 0; y < bs; y++ {
		cy := by + y
		for x := 0; x < bs; x++ {
			c := int(cur.YAt(bx+x, cy))
			r := int(ref.YAt(bx+x+dx, cy+dy))
			d := c - r
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// diamond patterns: a large step-halving diamond followed by the small
// one-pel diamond (Zhu & Ma's diamond search, which libvpx uses).
var largeDiamond = [8][2]int{{0, -2}, {1, -1}, {2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}}
var smallDiamond = [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}

// DiamondSearch finds the best whole-pel displacement of the 16x16 block at
// (bx, by) in ref, starting from the predictor pred (whole-pel units).
// It returns the displacement and its SAD.
func DiamondSearch(cur, ref *video.Frame, bx, by int, pred [2]int, maxRange int, st *MEStats) ([2]int, int) {
	best := pred
	clampDisp(&best, maxRange)
	bestSAD := SAD16(cur, ref, bx, by, best[0], best[1])
	st.SADs++
	st.RefPixelsRead += 256

	// Large diamond with step halving.
	for step := 4; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range largeDiamond {
				cand := [2]int{best[0] + d[0]*step, best[1] + d[1]*step}
				if cand[0] < -maxRange || cand[0] > maxRange || cand[1] < -maxRange || cand[1] > maxRange {
					continue
				}
				sad := SAD16(cur, ref, bx, by, cand[0], cand[1])
				st.SADs++
				st.RefPixelsRead += 256
				if sad < bestSAD {
					bestSAD = sad
					best = cand
					improved = true
				}
			}
		}
	}
	// Small diamond polish.
	improved := true
	for improved {
		improved = false
		for _, d := range smallDiamond {
			cand := [2]int{best[0] + d[0], best[1] + d[1]}
			if cand[0] < -maxRange || cand[0] > maxRange || cand[1] < -maxRange || cand[1] > maxRange {
				continue
			}
			sad := SAD16(cur, ref, bx, by, cand[0], cand[1])
			st.SADs++
			st.RefPixelsRead += 256
			if sad < bestSAD {
				bestSAD = sad
				best = cand
				improved = true
			}
		}
	}
	st.Blocks++
	return best, bestSAD
}

func clampDisp(d *[2]int, maxRange int) {
	for i := 0; i < 2; i++ {
		if d[i] < -maxRange {
			d[i] = -maxRange
		}
		if d[i] > maxRange {
			d[i] = maxRange
		}
	}
}

// SubPelRefine refines a whole-pel displacement to 1/8-pel resolution by
// hierarchical probing at half, quarter, and eighth steps, comparing the
// interpolated prediction against the source block.
func SubPelRefine(cur, ref *video.Frame, bx, by int, whole [2]int, st *MEStats) (MV, int) {
	return SubPelRefineBlock(cur, ref, bx, by, whole, 16, st)
}

// SubPelRefineBlock is SubPelRefine for an arbitrary square block size.
func SubPelRefineBlock(cur, ref *video.Frame, bx, by int, whole [2]int, bs int, st *MEStats) (MV, int) {
	best := MV{X: whole[0] * MVPrecision, Y: whole[1] * MVPrecision}
	// The prediction scratch lives on the stack for the block sizes motion
	// estimation uses (bs <= MBSize); this is called per candidate block.
	var predArr [MBSize * MBSize]uint8
	pred := predArr[:]
	if bs*bs > len(predArr) {
		pred = make([]uint8, bs*bs)
	} else {
		pred = predArr[:bs*bs]
	}
	var mcStats MCStats
	bestCost := sadPred(cur, ref, bx, by, best, pred, bs, &mcStats)
	for step := 4; step >= 1; step /= 2 {
		improved := true
		for improved {
			improved = false
			for _, d := range smallDiamond {
				cand := MV{X: best.X + d[0]*step, Y: best.Y + d[1]*step}
				cost := sadPred(cur, ref, bx, by, cand, pred, bs, &mcStats)
				st.SubPelProbes++
				if cost < bestCost {
					bestCost = cost
					best = cand
					improved = true
				}
			}
		}
	}
	st.RefPixelsRead += mcStats.RefPixelsRead
	return best, bestCost
}

func sadPred(cur, ref *video.Frame, bx, by int, mv MV, pred []uint8, bs int, mcStats *MCStats) int {
	PredictLuma(pred, bs, ref, bx, by, bs, bs, mv, mcStats)
	if bs%8 == 0 && swarInBounds(cur, bx, by, bs) {
		return sadPredSWAR(cur, bx, by, pred, bs)
	}
	var sad int
	for y := 0; y < bs; y++ {
		for x := 0; x < bs; x++ {
			d := int(cur.YAt(bx+x, by+y)) - int(pred[y*bs+x])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}
