package vp9

import (
	"fmt"

	"gopim/internal/profile"
)

// Software decoder/encoder composite kernels: the full pipelines of
// Figures 9 and 14, replayed from a real encode with per-function phase
// attribution matching the paper's Figure 10/11 and Figure 15 breakdowns.

// Decoder phase labels (Figure 10).
const (
	PhaseSubPel  = "MC: Sub-Pixel Interpolation"
	PhaseOtherMC = "Other MC Functions"
	PhaseDeblock = "Deblocking Filter"
	PhaseEntropy = "Entropy Decoder"
	PhaseInvXfrm = "Inverse Transform"
	PhaseOther   = "Other"
)

// DecoderPhases lists Figure 10's categories in presentation order.
var DecoderPhases = []string{PhaseSubPel, PhaseOtherMC, PhaseDeblock, PhaseEntropy, PhaseInvXfrm, PhaseOther}

// Encoder phase labels (Figure 15).
const (
	PhaseME        = "Motion Estimation"
	PhaseIntraPred = "Intra-Prediction"
	PhaseTransform = "Transform"
	PhaseQuant     = "Quantization"
)

// EncoderPhases lists Figure 15's categories in presentation order.
var EncoderPhases = []string{PhaseME, PhaseIntraPred, PhaseTransform, PhaseQuant, PhaseDeblock, PhaseOther}

// DecodeKernel returns the instrumented software decoder: entropy decode,
// inverse transform, motion compensation (sub-pel and whole-pel), intra
// prediction, reconstruction, and the in-loop deblocking filter, replayed
// from the clip's real coding decisions.
func DecodeKernel(clip *CodedClip) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("VP9 software decode %dx%d", clip.Cfg.Width, clip.Cfg.Height),
		Key:        "vp9-decode " + clip.Fingerprint(),
		Fn: func(ctx *profile.Ctx) {
			mbCols := clip.Cfg.Width / MBSize
			pred := ctx.Alloc("prediction", MBSize*MBSize)
			for n := 0; n < len(clip.Frames); n++ {
				bits := ctx.Alloc(fmt.Sprintf("bitstream%d", n), len(clip.Streams[n]))
				copy(bits.Data, clip.Streams[n])
				recon := allocFrame(ctx, fmt.Sprintf("recon%d", n), clip.Recons[n])
				var refs [3]frameBuffers
				if n > 0 {
					for ri := 0; ri < 3; ri++ {
						refs[ri] = allocFrame(ctx, fmt.Sprintf("ref%d-%d", n, ri), clip.refFor(n, ri))
					}
				}

				// Entropy decoding streams the compressed bits; its working
				// set (probability tables, coder state) is cache-resident.
				ctx.SetPhase(PhaseEntropy)
				ctx.LoadV(bits, 0, len(bits.Data))
				ctx.Ops(len(bits.Data) * 8 * 2) // ~2 ops per bool decoded

				for i, d := range clip.Decisions[n] {
					bx, by := (i%mbCols)*MBSize, (i/mbCols)*MBSize
					// Prediction, residual combine, and the write of the
					// reconstructed block all belong to the block's
					// prediction path (Figure 9's MC output feeds the "+"
					// node directly).
					switch {
					case d.Inter:
						traceInterMB(ctx, refs[d.Ref], pred, bx, by, d, PhaseSubPel, PhaseOtherMC)
					default:
						// Intra prediction reads reconstructed neighbors.
						ctx.SetPhase(PhaseOther)
						ctx.Load(recon.y, clampInt((by-1)*recon.w+bx, 0, recon.h*recon.w-MBSize), MBSize)
						ctx.StoreV(pred, 0, MBSize*MBSize)
						ctx.SIMD(MBSize * MBSize / 4)
					}
					ctx.StoreSpanV(recon.y, by*recon.w+bx, MBSize, MBSize, recon.w)
					ctx.SIMD(MBSize * MBSize / 4) // residual add + clamp

					// Inverse transform: 16 luma + 8 chroma 4x4 blocks per
					// macro-block, all on a cache-resident scratch buffer
					// (the coefficients just came out of the entropy
					// decoder).
					// Most blocks are EOB-empty at this quantizer and skip
					// their inverse transform; ~30% carry coefficients.
					ctx.SetPhase(PhaseInvXfrm)
					ctx.Refs(24 * 8 * 3 / 10)
					ctx.SIMD(24 * 16 * 3 / 10)
					ctx.Ops(24 * 8 * 3 / 10)

				}

				ctx.SetPhase(PhaseDeblock)
				traceDeblockPlane(ctx, recon.y, recon.w, recon.h)
				traceDeblockPlane(ctx, recon.u, recon.w/2, recon.h/2)
				traceDeblockPlane(ctx, recon.v, recon.w/2, recon.h/2)
			}
		},
	}
}

// EncodeKernel returns the instrumented software encoder: motion
// estimation, intra prediction, transform, quantization, reconstruction and
// deblocking, replayed from the clip's real coding decisions.
func EncodeKernel(clip *CodedClip) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("VP9 software encode %dx%d", clip.Cfg.Width, clip.Cfg.Height),
		Key:        "vp9-encode " + clip.Fingerprint(),
		Fn: func(ctx *profile.Ctx) {
			mbCols := clip.Cfg.Width / MBSize
			pred := ctx.Alloc("prediction", MBSize*MBSize)
			for n := 0; n < len(clip.Frames); n++ {
				cur := allocFrame(ctx, fmt.Sprintf("cur%d", n), clip.Frames[n])
				recon := allocFrame(ctx, fmt.Sprintf("recon%d", n), clip.Recons[n])
				var refs [3]frameBuffers
				if n > 0 {
					for ri := 0; ri < 3; ri++ {
						refs[ri] = allocFrame(ctx, fmt.Sprintf("ref%d-%d", n, ri), clip.refFor(n, ri))
					}
				}

				for i, d := range clip.Decisions[n] {
					bx, by := (i%mbCols)*MBSize, (i/mbCols)*MBSize

					// The encoder always reads the source block.
					ctx.SetPhase(PhaseOther)
					ctx.LoadSpanV(cur.y, by*cur.w+bx, MBSize, MBSize, cur.w)

					if n > 0 {
						ctx.SetPhase(PhaseME)
						traceMESearch(ctx, refs, bx, by)
					}

					ctx.SetPhase(PhaseIntraPred)
					// Four candidate modes, each predicting then comparing
					// against the source block.
					ctx.Load(recon.y, clampInt((by-1)*recon.w+bx, 0, recon.h*recon.w-MBSize), MBSize)
					ctx.SIMD(4 * 2 * MBSize * MBSize / 4)
					ctx.StoreV(pred, 0, MBSize*MBSize)

					// Residual transform: 24 4x4 blocks on resident scratch.
					ctx.SetPhase(PhaseTransform)
					ctx.Refs(24 * 8)
					ctx.SIMD(24 * 32) // row+column butterfly stages
					ctx.Ops(24 * 8)

					ctx.SetPhase(PhaseQuant)
					ctx.Refs(24 * 8)
					ctx.SIMD(24 * 20) // scale, round, clamp, zero-run scan

					// Reconstruction (in-loop decode) + entropy coding.
					ctx.SetPhase(PhaseOther)
					if d.Inter {
						traceFullPelMB(ctx, refs[d.Ref], pred, bx, by, d.MV)
					}
					ctx.StoreSpanV(recon.y, by*recon.w+bx, MBSize, MBSize, recon.w)
					ctx.Ops(len(clip.Streams[n]) * 8 * 2 / len(clip.Decisions[n]))
				}

				ctx.SetPhase(PhaseDeblock)
				traceDeblockPlane(ctx, recon.y, recon.w, recon.h)
				traceDeblockPlane(ctx, recon.u, recon.w/2, recon.h/2)
				traceDeblockPlane(ctx, recon.v, recon.w/2, recon.h/2)
			}
		},
	}
}

// traceMESearch traces a representative diamond search over three
// references for one macro-block: ~24 SAD candidates per reference, each
// reading a 16x16 window, plus sub-pel refinement probes.
func traceMESearch(ctx *profile.Ctx, refs [3]frameBuffers, bx, by int) {
	const sadsPerRef = 16
	for ri := 0; ri < 3; ri++ {
		ref := refs[ri]
		if ref.y == nil {
			continue
		}
		for s := 0; s < sadsPerRef; s++ {
			dy := (s%7 - 3) * 2
			dx := (s/7 - 1) * 3
			y := clampInt(by+dy, 0, ref.h-MBSize)
			x := clampInt(bx+dx, 0, ref.w-MBSize)
			// Every other row of the 16x16 SAD window.
			ctx.LoadSpanV(ref.y, y*ref.w+x, MBSize, MBSize/2, 2*ref.w)
			ctx.SIMD(MBSize * MBSize / 4)
			ctx.Ops(8)
		}
	}
	// Sub-pel refinement on the winning reference: ~8 interpolated probes.
	ctx.SIMD(8 * MBSize * MBSize * 8 / 4)
}
