package vp9

import (
	"fmt"

	"gopim/internal/video"
)

// Decoder decompresses bitstreams produced by Encoder (paper Figure 9),
// mirroring its reconstruction exactly.
type Decoder struct {
	cfg  Config
	refs []*video.Frame

	coeffY coeffProbs
	coeffC coeffProbs
	mvp    mvProbs

	countsY coeffCounts
	countsC coeffCounts
	countMV mvCounts

	// Stats accumulates work counters across Decode calls.
	Stats Stats
}

// NewDecoder returns a decoder for the given configuration (Width/Height
// must match the encoder's; other fields are taken from the bitstream or
// defaults).
func NewDecoder(cfg Config) (*Decoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Decoder{
		cfg:    cfg,
		coeffY: defaultCoeffProbs(),
		coeffC: defaultCoeffProbs(),
		mvp:    defaultMVProbs(),
	}, nil
}

// Decode reconstructs one frame from data.
func (d *Decoder) Decode(data []byte) (*video.Frame, error) {
	r := NewBoolReader(data)
	keyframe := r.Bool(128)
	qIndex := int(r.Literal(6))
	if qIndex > MaxQIndex {
		return nil, fmt.Errorf("%w: qindex %d", errBadBitstream, qIndex)
	}
	if !keyframe && len(d.refs) == 0 {
		return nil, fmt.Errorf("%w: inter frame with no references", errBadBitstream)
	}
	if keyframe {
		d.coeffY = defaultCoeffProbs()
		d.coeffC = defaultCoeffProbs()
		d.mvp = defaultMVProbs()
		d.countsY = coeffCounts{}
		d.countsC = coeffCounts{}
		d.countMV = mvCounts{}
	}

	recon := video.NewFrame(d.cfg.Width, d.cfg.Height)
	mbCols := d.cfg.Width / MBSize
	mbRows := d.cfg.Height / MBSize
	for mby := 0; mby < mbRows; mby++ {
		predMV := MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			if err := d.decodeMB(r, recon, mbx, mby, keyframe, qIndex, &predMV); err != nil {
				return nil, err
			}
		}
	}
	if r.Exhausted() {
		return nil, fmt.Errorf("%w: truncated stream", errBadBitstream)
	}

	var dst DeblockStats
	DeblockPlane(recon.Y, recon.W, recon.H, qIndex, &dst)
	DeblockPlane(recon.U, recon.W/2, recon.H/2, qIndex, &dst)
	DeblockPlane(recon.V, recon.W/2, recon.H/2, qIndex, &dst)
	d.Stats.Deblock.EdgesChecked += dst.EdgesChecked
	d.Stats.Deblock.EdgesFiltered += dst.EdgesFiltered
	d.Stats.Deblock.PixelsRead += dst.PixelsRead
	d.Stats.Deblock.PixelsWritten += dst.PixelsWritten

	// Mirror the encoder's backward adaptation.
	d.coeffY.adapt(&d.countsY)
	d.coeffC.adapt(&d.countsC)
	d.mvp.adapt(&d.countMV)

	if keyframe {
		d.refs = d.refs[:0]
	}
	d.refs = append([]*video.Frame{recon}, d.refs...)
	if len(d.refs) > d.cfg.MaxRefs {
		d.refs = d.refs[:d.cfg.MaxRefs]
	}
	d.Stats.BitstreamBytes += uint64(len(data))
	d.Stats.FramesCoded++
	return recon.Clone(), nil
}

func (d *Decoder) decodeMB(r *BoolReader, recon *video.Frame, mbx, mby int, keyframe bool, qIndex int, predMV *MV) error {
	bx, by := mbx*MBSize, mby*MBSize
	var p mbPrediction

	if !keyframe {
		p.inter = r.Bool(probInter)
	}
	if p.inter {
		if r.Bool(probRef0) {
			p.ref = 1
			if r.Bool(probRef2) {
				p.ref = 2
			}
		}
		if p.ref >= len(d.refs) {
			return fmt.Errorf("%w: reference %d of %d", errBadBitstream, p.ref, len(d.refs))
		}
		p.split = r.Bool(probSplit)
		if p.split {
			prev := *predMV
			for q := 0; q < 4; q++ {
				p.subMV[q].X = prev.X + readMVComponent(r, &d.mvp, &d.countMV)
				p.subMV[q].Y = prev.Y + readMVComponent(r, &d.mvp, &d.countMV)
				prev = p.subMV[q]
			}
			*predMV = prev
		} else {
			p.mv.X = predMV.X + readMVComponent(r, &d.mvp, &d.countMV)
			p.mv.Y = predMV.Y + readMVComponent(r, &d.mvp, &d.countMV)
			*predMV = p.mv
		}
		d.Stats.InterMBs++
	} else {
		p.mode = IntraMode(r.Literal(2))
		d.Stats.IntraMBs++
	}

	var ref *video.Frame
	if p.inter {
		ref = d.refs[p.ref]
		p.predictInterLuma(ref, bx, by, &d.Stats.MC)
	} else {
		PredictIntra(p.predY[:], MBSize, recon.Y, recon.W, recon.H, bx, by, MBSize, p.mode)
	}
	p.predictChroma(recon, ref, mbx, mby)

	var levels [16]int32
	for blk := 0; blk < 16; blk++ {
		ox, oy := (blk%4)*4, (blk/4)*4
		readCoeffs(r, &levels, &d.coeffY, &d.countsY)
		dequantInverse(&levels, qIndex)
		reconstruct4x4(recon.Y, recon.W, bx+ox, by+oy, p.predY[oy*MBSize+ox:], MBSize, &levels)
	}

	cw := recon.W / 2
	cbx, cby := mbx*8, mby*8
	for _, plane := range [2]struct {
		rec  []uint8
		pred []uint8
	}{{recon.U, p.predU[:]}, {recon.V, p.predV[:]}} {
		for blk := 0; blk < 4; blk++ {
			ox, oy := (blk%2)*4, (blk/2)*4
			readCoeffs(r, &levels, &d.coeffC, &d.countsC)
			dequantInverse(&levels, qIndex)
			reconstruct4x4(plane.rec, cw, cbx+ox, cby+oy, plane.pred[oy*8+ox:], 8, &levels)
		}
	}
	return nil
}
