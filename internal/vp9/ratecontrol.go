package vp9

import "gopim/internal/video"

// Rate control: pick a per-frame quantizer to track a target bitrate, in
// the style of libvpx's one-pass CBR controller — a virtual buffer that
// fills with produced bits and drains at the target rate, steering QIndex
// up when the buffer runs ahead and down when there is headroom.

// RateControl tracks the encoder's bit budget.
type RateControl struct {
	targetBits float64 // per frame
	buffer     float64 // bits ahead (+) or behind (-) of schedule
	qIndex     int
}

// NewRateControl returns a controller for the given target, in bits per
// frame (bitrate / framerate). startQ seeds the quantizer.
func NewRateControl(targetBitsPerFrame float64, startQ int) *RateControl {
	if startQ < 0 {
		startQ = 0
	}
	if startQ > MaxQIndex {
		startQ = MaxQIndex
	}
	return &RateControl{targetBits: targetBitsPerFrame, qIndex: startQ}
}

// QIndex returns the quantizer to use for the next frame.
func (rc *RateControl) QIndex() int { return rc.qIndex }

// Update feeds back the size of the frame just coded and adapts the
// quantizer for the next one.
func (rc *RateControl) Update(frameBytes int) {
	produced := float64(frameBytes) * 8
	rc.buffer += produced - rc.targetBits

	// Proportional step on the log-ish scale of QIndex: one target-frame's
	// worth of surplus moves Q by ~8 steps.
	step := int(rc.buffer / rc.targetBits * 8)
	if step > 12 {
		step = 12
	}
	if step < -12 {
		step = -12
	}
	rc.qIndex += step
	if rc.qIndex < 0 {
		rc.qIndex = 0
	}
	if rc.qIndex > MaxQIndex {
		rc.qIndex = MaxQIndex
	}
	// Leak the buffer so ancient history does not dominate.
	rc.buffer *= 0.5
}

// EncodeClipCBR encodes frames at an approximately constant bitrate,
// returning the per-frame streams and the QIndex trajectory. The quantizer
// travels in each frame's header, so a standard Decoder reads the stream
// without out-of-band state.
func EncodeClipCBR(cfg Config, frames []*video.Frame, targetBitsPerFrame float64) ([][]byte, []int, error) {
	rc := NewRateControl(targetBitsPerFrame, cfg.QIndex)
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, nil, err
	}
	var streams [][]byte
	var qs []int
	for _, f := range frames {
		enc.cfg.QIndex = rc.QIndex()
		data, _, err := enc.Encode(f)
		if err != nil {
			return nil, nil, err
		}
		qs = append(qs, rc.QIndex())
		rc.Update(len(data))
		streams = append(streams, data)
	}
	return streams, qs, nil
}
