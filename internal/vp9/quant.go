package vp9

// Quantization. QIndex selects the step size; larger indices mean coarser
// quantization and smaller bitstreams.

// MaxQIndex is the coarsest quantizer.
const MaxQIndex = 63

// StepFor returns the quantizer step for a QIndex. DC (coefficient 0) uses
// a slightly finer step than AC, as in VP9's dc/ac quantizer split. The
// steps apply to WHT coefficients, which carry a transform gain of 16 for
// 4x4 blocks; the table is scaled accordingly.
func StepFor(qIndex, coeff int) int32 {
	if qIndex < 0 {
		qIndex = 0
	}
	if qIndex > MaxQIndex {
		qIndex = MaxQIndex
	}
	step := int32(16 + qIndex*6)
	if coeff == 0 {
		step = step * 3 / 4
		if step < 8 {
			step = 8
		}
	}
	return step
}

// QuantizeBlock quantizes 16 transform coefficients in place, returning the
// number of nonzero quantized levels. Rounding is to nearest.
func QuantizeBlock(coeffs []int32, qIndex int) int {
	nz := 0
	for i := 0; i < 16; i++ {
		step := StepFor(qIndex, i)
		c := coeffs[i]
		var q int32
		if c >= 0 {
			q = (c + step/2) / step
		} else {
			q = -((-c + step/2) / step)
		}
		coeffs[i] = q
		if q != 0 {
			nz++
		}
	}
	return nz
}

// DequantizeBlock expands quantized levels back to coefficient magnitudes
// in place.
func DequantizeBlock(levels []int32, qIndex int) {
	for i := 0; i < 16; i++ {
		levels[i] *= StepFor(qIndex, i)
	}
}
