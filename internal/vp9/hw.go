package vp9

import (
	"math"
	"sync"

	"gopim/internal/energy"
	"gopim/internal/lzo"
	"gopim/internal/video"
)

// deltaPool recycles the plane-sized delta-filter scratch across
// CompressFrame calls (one per plane per frame on the hardware-codec
// measurement path).
var deltaPool sync.Pool

// Hardware codec model (paper §6.3, §7.3): Google's VP9 hardware fetches
// reference windows in batches, keeps deblocking working sets in SRAM, and
// optionally compresses reference/reconstructed frames losslessly. Its
// off-chip traffic therefore decomposes into the categories of Figures 12
// and 16, which this model reproduces from parameters measured on a real
// encode of a synthetic clip.

// TrafficItem is one category of per-frame off-chip traffic.
type TrafficItem struct {
	Name  string
	Bytes float64
}

// HWParams holds the measured per-pixel constants that drive the model.
type HWParams struct {
	// RefPxPerPx is reference-frame pixels fetched per current-frame luma
	// pixel during motion compensation (the paper reports 2.9).
	RefPxPerPx float64
	// MEWindowPxPerPx is reference pixels fetched per pixel by hardware
	// motion estimation after SRAM window reuse.
	MEWindowPxPerPx float64
	// BitsPerPixel is the compressed bitstream density.
	BitsPerPixel float64
	// CompressionRatio is the measured lossless frame compression ratio
	// (compressed/original, lower is better).
	CompressionRatio float64
}

// MeasureHWParams derives model parameters from a real coded clip. The
// hardware ME reuses its search window across adjacent macro-blocks in
// SRAM; reuse leaves roughly one window-row of new pixels per macro-block
// column step per reference, which the windowReuse factor models.
func MeasureHWParams(clip *CodedClip) HWParams {
	st := clip.EncStats
	var p HWParams
	if st.MC.PixelsProduced > 0 {
		p.RefPxPerPx = float64(st.MC.RefPixelsRead) / float64(st.MC.PixelsProduced)
	}
	pixels := float64(clip.Cfg.Width*clip.Cfg.Height) * float64(len(clip.Frames))
	p.BitsPerPixel = float64(st.BitstreamBytes) * 8 / pixels
	// Hardware ME holds the whole search window in SRAM and reuses it
	// across candidates; stepping one macro-block rightward fetches only
	// the new window column: MBSize x (MBSize + 2*SearchRange) fresh
	// pixels per block (further references mostly hit the same window).
	r := clip.Cfg.SearchRange
	p.MEWindowPxPerPx = float64(MBSize+2*r) / MBSize
	var raw, comp int
	for _, f := range clip.Recons {
		raw += len(f.Y) + len(f.U) + len(f.V)
		comp += CompressFrameSize(f)
	}
	if raw > 0 {
		p.CompressionRatio = float64(comp) / float64(raw)
	}
	return p
}

// CompressFrame losslessly compresses a frame — per-plane left-neighbor
// delta filtering followed by LZO — a real implementation of the "lossless
// frame compression" the hardware codec applies to reference frame
// traffic. DecompressFrame inverts it exactly.
func CompressFrame(f *video.Frame) []byte {
	out := []byte{
		byte(f.W), byte(f.W >> 8),
		byte(f.H), byte(f.H >> 8),
	}
	for _, plane := range [][]uint8{f.Y, f.U, f.V} {
		// The Get/Put pair stays inside this loop body so the pooled
		// buffer provably never outlives one plane's compression.
		dp, _ := deltaPool.Get().(*[]uint8)
		if dp == nil || cap(*dp) < len(plane) {
			s := make([]uint8, len(plane))
			dp = &s
		}
		delta := (*dp)[:len(plane)]
		prev := uint8(0)
		for i, v := range plane {
			delta[i] = v - prev
			prev = v
		}
		c := lzo.Compress(delta)
		*dp = delta
		deltaPool.Put(dp)
		out = append(out, byte(len(c)), byte(len(c)>>8), byte(len(c)>>16), byte(len(c)>>24))
		out = append(out, c...)
	}
	return out
}

// DecompressFrame inverts CompressFrame.
func DecompressFrame(data []byte) (*video.Frame, error) {
	if len(data) < 4 {
		return nil, errBadBitstream
	}
	w := int(data[0]) | int(data[1])<<8
	h := int(data[2]) | int(data[3])<<8
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		return nil, errBadBitstream
	}
	f := video.NewFrame(w, h)
	pos := 4
	for _, plane := range [][]uint8{f.Y, f.U, f.V} {
		if pos+4 > len(data) {
			return nil, errBadBitstream
		}
		n := int(data[pos]) | int(data[pos+1])<<8 | int(data[pos+2])<<16 | int(data[pos+3])<<24
		pos += 4
		if n < 0 || pos+n > len(data) {
			return nil, errBadBitstream
		}
		delta, err := lzo.Decompress(data[pos:pos+n], len(plane))
		if err != nil {
			return nil, err
		}
		if len(delta) != len(plane) {
			return nil, errBadBitstream
		}
		prev := uint8(0)
		for i, d := range delta {
			prev += d
			plane[i] = prev
		}
		pos += n
	}
	return f, nil
}

// CompressFrameSize returns the compressed size of f in bytes (the
// quantity the hardware traffic model needs).
func CompressFrameSize(f *video.Frame) int {
	// Skip the 16 bytes of container framing: the hardware compresses
	// blocks in place and keeps sizes in its own metadata stream, which
	// the traffic model accounts separately as "Compression Info".
	return len(CompressFrame(f)) - 16
}

// Figure 12/16 category names.
const (
	CatReferenceFrame  = "Reference Frame"
	CatCompressionInfo = "Compression Info"
	CatDecoderData     = "Decoder Data"
	CatReconMetadata   = "Reconst. Frame Metadata"
	CatDeblockFilter   = "Deblocking Filter"
	CatReconFrame      = "Reconstructed Frame"
	CatCurrentFrame    = "Current Frame"
	CatEncodedStream   = "Encoded Bitstream"
	CatOtherTraffic    = "Other"
)

// refResolutionScale models how per-pixel reference traffic varies with
// resolution: lower resolutions use smaller prediction blocks (larger
// relative filter aprons) and get less SRAM window reuse, so they fetch
// more reference pixels per pixel. The exponent is fitted to the paper's
// observation that one 4K frame moves ~4.6x the data of one HD frame
// despite having 9x the pixels (Figure 12), i.e. HD reference traffic per
// pixel is ~2.4x the 4K value.
func refResolutionScale(w, h int) float64 {
	base := float64(video.K4Width * video.K4Height)
	scale := math.Pow(base/float64(w*h), 0.4)
	if scale < 1 {
		return 1
	}
	if scale > 3 {
		return 3
	}
	return scale
}

// HWDecodeTraffic returns the modelled per-frame off-chip traffic of the
// hardware decoder at w x h, with or without lossless frame compression
// (Figure 12).
func HWDecodeTraffic(w, h int, compressed bool, p HWParams) []TrafficItem {
	luma := float64(w * h)
	yuv := luma * 1.5
	ratio := 1.0
	compInfo := 0.0
	if compressed {
		ratio = p.CompressionRatio
		compInfo = yuv * 0.02 // per-block compression metadata
	}
	mbs := luma / (MBSize * MBSize)
	ref := p.RefPxPerPx * 1.25 * luma * refResolutionScale(w, h) // luma + chroma MC
	return []TrafficItem{
		{CatReferenceFrame, ref * ratio},
		{CatCompressionInfo, compInfo},
		{CatDecoderData, p.BitsPerPixel * luma / 8},
		{CatReconMetadata, mbs * 24}, // MVs, modes, filter strengths
		{CatDeblockFilter, yuv * 0.10},
		{CatReconFrame, yuv * ratio},
	}
}

// HWEncodeTraffic returns the modelled per-frame off-chip traffic of the
// hardware encoder (Figure 16).
func HWEncodeTraffic(w, h int, compressed bool, p HWParams) []TrafficItem {
	luma := float64(w * h)
	yuv := luma * 1.5
	ratio := 1.0
	compInfo := 0.0
	if compressed {
		ratio = p.CompressionRatio
		compInfo = yuv * 0.02
	}
	return []TrafficItem{
		// The raw current frame is read for ME/mode decision; its encoded
		// form cannot be frame-compressed.
		{CatCurrentFrame, yuv},
		{CatReferenceFrame, p.MEWindowPxPerPx * luma * refResolutionScale(w, h) * ratio},
		{CatDeblockFilter, yuv * 0.08},
		{CatCompressionInfo, compInfo},
		{CatReconFrame, yuv * ratio},
		{CatEncodedStream, p.BitsPerPixel * luma / 8},
		{CatOtherTraffic, yuv * 0.05},
	}
}

// TotalTraffic sums a category list.
func TotalTraffic(items []TrafficItem) float64 {
	var t float64
	for _, it := range items {
		t += it.Bytes
	}
	return t
}

// HWEnergyMode selects the Figure 21 configuration.
type HWEnergyMode int

// Figure 21 configurations.
const (
	HWBaseline HWEnergyMode = iota // VP9 hardware only
	HWPIMCore                      // MC (+ME) and deblocking on PIM cores
	HWPIMAcc                       // MC (+ME) and deblocking as PIM accelerators
)

// inMemoryCategory reports whether a traffic category is eliminated from
// the off-chip channel when MC/ME and the deblocking filter move into
// memory (Figures 13 and 17): reference fetches and reconstructed-frame
// round trips stay inside the stack.
func inMemoryCategory(name string) bool {
	switch name {
	case CatReferenceFrame, CatReconFrame, CatDeblockFilter, CatCompressionInfo:
		return true
	}
	return false
}

// HWEnergy models the per-frame energy (pJ) of a hardware codec
// configuration given its traffic breakdown. opsPerPixel is the datapath
// work of the offloaded units (MC/ME + deblock); the remaining pipeline
// stays in the on-chip hardware in all configurations and is excluded, as
// in Figure 21 which compares data movement plus offloaded-unit
// computation.
func HWEnergy(items []TrafficItem, w, h int, mode HWEnergyMode, params energy.Params, opsPerPixel float64) energy.Breakdown {
	luma := float64(w * h)
	offloadOps := luma * opsPerPixel

	var b energy.Breakdown
	for _, it := range items {
		if mode != HWBaseline && inMemoryCategory(it.Name) {
			// Served inside the stack.
			b.DRAM += it.Bytes * params.StackDRAMByte
			b.Interconnect += it.Bytes * params.StackLinkByte
			continue
		}
		b.DRAM += it.Bytes * params.DRAMByte
		b.MemCtrl += it.Bytes * params.MemCtrlByte
		b.Interconnect += it.Bytes * params.InterconnectByte
	}
	switch mode {
	case HWBaseline:
		// Fixed-function on-chip hardware: accelerator-class efficiency.
		b.PIM += offloadOps * params.PIMAccOp
	case HWPIMCore:
		// A general-purpose PIM core runs the offloaded units an order of
		// magnitude less efficiently than dedicated hardware.
		b.PIM += offloadOps * params.PIMCoreInstr
	case HWPIMAcc:
		// The same RTL moved into the logic layer.
		b.PIM += offloadOps * params.PIMAccOp
	}
	return b
}
