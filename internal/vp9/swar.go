package vp9

// SWAR (SIMD-within-a-register) sum-of-absolute-differences: eight luma
// samples are processed per uint64, splitting the packed bytes into even and
// odd 16-bit lanes so the absolute difference can be formed branch-free with
// biased subtraction. The fast path is exact — it returns the same integer
// SAD as the byte-wise loop — so motion-search decisions and coded output
// are unchanged. Callers fall back to the scalar loop whenever a block
// touches the frame edge, where Frame.YAt's coordinate clamping applies.

import (
	"encoding/binary"

	"gopim/internal/video"
)

const (
	swarLo16 = 0x00ff00ff00ff00ff // even-byte extraction into 16-bit lanes
	swarBias = 0x0100010001000100 // per-lane bias keeping subtraction borrow-free
	swarOnes = 0x0001000100010001 // lane-sum multiplier
)

// sad8 returns the sum of absolute differences of the eight byte pairs
// packed in x and y.
func sad8(x, y uint64) uint64 {
	e := absLanes(x&swarLo16, y&swarLo16)
	o := absLanes((x>>8)&swarLo16, (y>>8)&swarLo16)
	// Each of the four 16-bit lanes of e+o is at most 510, so multiplying
	// by swarOnes accumulates the exact lane sum into the top 16 bits.
	return ((e + o) * swarOnes) >> 48
}

// absLanes computes |x-y| in each of four 16-bit lanes holding byte values.
// Both biased differences stay within their lane (range [0x001, 0x1ff]), so
// no carries cross lanes; the lane's sign bit at position 8 selects which
// difference is the non-negative one.
func absLanes(x, y uint64) uint64 {
	d1 := x + swarBias - y
	d2 := y + swarBias - x
	i1 := (d1 >> 8) & swarOnes // 1 where x >= y
	i2 := (d2 >> 8) & swarOnes // 1 where y >= x
	m1 := (i1 << 9) - i1       // 0x1ff where selected, 0 elsewhere
	m2 := (i2 << 9) - i2
	return ((d1 & m1) | (d2 & m2)) - swarBias
}

// swarInBounds reports whether the bs x bs block at (x, y) lies entirely
// inside the frame, so raw row slices can bypass YAt's clamping.
func swarInBounds(f *video.Frame, x, y, bs int) bool {
	return x >= 0 && y >= 0 && x+bs <= f.W && y+bs <= f.H
}

// sadBlockSWAR is the word-parallel body of SADBlock for fully in-bounds
// blocks with bs a multiple of 8.
func sadBlockSWAR(cur, ref *video.Frame, bx, by, dx, dy, bs int) int {
	var sad uint64
	for y := 0; y < bs; y++ {
		c := cur.Y[(by+y)*cur.W+bx:]
		r := ref.Y[(by+dy+y)*ref.W+bx+dx:]
		for x := 0; x+8 <= bs; x += 8 {
			sad += sad8(binary.LittleEndian.Uint64(c[x:]), binary.LittleEndian.Uint64(r[x:]))
		}
	}
	return int(sad)
}

// sadPredSWAR compares an in-bounds source block against a packed bs x bs
// prediction eight samples at a time.
func sadPredSWAR(cur *video.Frame, bx, by int, pred []uint8, bs int) int {
	var sad uint64
	for y := 0; y < bs; y++ {
		c := cur.Y[(by+y)*cur.W+bx:]
		p := pred[y*bs:]
		for x := 0; x+8 <= bs; x += 8 {
			sad += sad8(binary.LittleEndian.Uint64(c[x:]), binary.LittleEndian.Uint64(p[x:]))
		}
	}
	return int(sad)
}
