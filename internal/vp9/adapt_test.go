package vp9

import (
	"bytes"
	"testing"

	"gopim/internal/video"
)

func TestAdaptationStaysInSync(t *testing.T) {
	// Long clip with a mid-stream keyframe: encoder and decoder must adapt
	// their probabilities identically and reset together at the keyframe.
	cfg := Config{Width: 128, Height: 96, QIndex: 26, KeyInterval: 6}
	frames := video.NewSynth(cfg.Width, cfg.Height, 3, 13).Clip(14)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		data, recon, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Y, recon.Y) || !bytes.Equal(got.U, recon.U) || !bytes.Equal(got.V, recon.V) {
			t.Fatalf("frame %d: adaptation desynchronized encoder and decoder", i)
		}
	}
	// The adaptive probabilities must have actually moved off defaults.
	if enc.coeffY == defaultCoeffProbs() {
		t.Error("luma coefficient probabilities never adapted")
	}
	if enc.coeffY != dec.coeffY || enc.coeffC != dec.coeffC || enc.mvp != dec.mvp {
		t.Error("encoder and decoder hold different adapted probabilities")
	}
}

func TestAdaptationImprovesLaterFrames(t *testing.T) {
	// After adaptation warms up, inter frames of stationary-statistics
	// content should not be larger on average than the first inter frame.
	cfg := Config{Width: 192, Height: 128, QIndex: 26, KeyInterval: 100}
	frames := video.NewSynth(cfg.Width, cfg.Height, 3, 29).Clip(10)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, f := range frames {
		data, _, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(data))
	}
	first := sizes[1] // sizes[0] is the keyframe
	var late int
	for _, s := range sizes[6:] {
		late += s
	}
	lateAvg := late / len(sizes[6:])
	if lateAvg > first*11/10 {
		t.Errorf("late inter frames avg %d B vs first inter %d B; adaptation should not regress", lateAvg, first)
	}
	t.Logf("first inter frame %d B, adapted average %d B", first, lateAvg)
}

func TestAdaptProbBounds(t *testing.T) {
	// Few samples: unchanged.
	if got := adaptProb(128, boolCount{f: 3, t: 2}); got != 128 {
		t.Errorf("adaptProb with 5 samples = %d, want unchanged 128", got)
	}
	// All-false observations pull the probability up, clamped inside (0,255).
	p := uint8(128)
	for i := 0; i < 20; i++ {
		p = adaptProb(p, boolCount{f: 1000})
	}
	if p < 200 || p > 254 {
		t.Errorf("all-false adaptation converged to %d, want near 254", p)
	}
	// All-true observations pull it down.
	p = 128
	for i := 0; i < 20; i++ {
		p = adaptProb(p, boolCount{t: 1000})
	}
	if p > 60 || p < 1 {
		t.Errorf("all-true adaptation converged to %d, want near 1", p)
	}
}
