package vp9

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/video"
)

func TestTransform4x4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var b, orig [16]int32
		for i := range b {
			b[i] = int32(rng.Intn(511) - 255) // residual range
			orig[i] = b[i]
		}
		FwdTransform4x4(b[:])
		InvTransform4x4(b[:])
		if b != orig {
			t.Fatalf("trial %d: WHT round trip failed:\n%v\n%v", trial, orig, b)
		}
	}
}

func TestTransform8x8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var b, orig [64]int32
	for i := range b {
		b[i] = int32(rng.Intn(511) - 255)
		orig[i] = b[i]
	}
	FwdTransform8x8(b[:])
	InvTransform8x8(b[:])
	if b != orig {
		t.Fatal("8x8 Hadamard round trip failed")
	}
}

// Property: the transform pair is exact for any int16-range block.
func TestQuickTransformRoundTrip(t *testing.T) {
	f := func(vals [16]int16) bool {
		var b, orig [16]int32
		for i := range vals {
			b[i] = int32(vals[i])
			orig[i] = b[i]
		}
		FwdTransform4x4(b[:])
		InvTransform4x4(b[:])
		return b == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeDequantizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		qi := rng.Intn(MaxQIndex + 1)
		var c, orig [16]int32
		for i := range c {
			c[i] = int32(rng.Intn(8001) - 4000)
			orig[i] = c[i]
		}
		QuantizeBlock(c[:], qi)
		DequantizeBlock(c[:], qi)
		for i := range c {
			step := StepFor(qi, i)
			if d := c[i] - orig[i]; d > step/2+1 || d < -step/2-1 {
				t.Fatalf("qi %d coeff %d: error %d exceeds step/2 (%d)", qi, i, d, step/2)
			}
		}
	}
}

func TestZigZagIsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range ZigZag4 {
		if v < 0 || v > 15 || seen[v] {
			t.Fatalf("zigzag is not a permutation: %v", ZigZag4)
		}
		seen[v] = true
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	p := defaultCoeffProbs()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		var levels [16]int32
		n := rng.Intn(17)
		for i := 0; i < n; i++ {
			levels[rng.Intn(16)] = int32(rng.Intn(801) - 400)
		}
		w := NewBoolWriter()
		writeCoeffs(w, &levels, &p, nil)
		r := NewBoolReader(w.Flush())
		var got [16]int32
		readCoeffs(r, &got, &p, nil)
		if got != levels {
			t.Fatalf("trial %d: coeffs %v decoded as %v", trial, levels, got)
		}
	}
}

func TestMVComponentRoundTrip(t *testing.T) {
	p := defaultMVProbs()
	w := NewBoolWriter()
	vals := []int{0, 1, -1, 7, -7, 128, -128, 500, -4000}
	for _, v := range vals {
		writeMVComponent(w, v, &p, nil)
	}
	r := NewBoolReader(w.Flush())
	for i, want := range vals {
		if got := readMVComponent(r, &p, nil); got != want {
			t.Fatalf("mv %d = %d, want %d", i, got, want)
		}
	}
}

func TestMagnitudeRoundTrip(t *testing.T) {
	p := defaultMagProbs()
	w := NewBoolWriter()
	var vals []int
	for m := 0; m < 40; m++ {
		vals = append(vals, m)
	}
	vals = append(vals, 100, 1000, 4000, 31+4095)
	for _, v := range vals {
		writeMag(w, v, &p)
	}
	r := NewBoolReader(w.Flush())
	for i, want := range vals {
		if got := readMag(r, &p); got != want {
			t.Fatalf("mag %d = %d, want %d", i, got, want)
		}
	}
}

func TestPredictLumaFullPelIsCopy(t *testing.T) {
	ref := video.NewSynth(64, 64, 2, 7).Frame(0)
	var dst [16 * 16]uint8
	var st MCStats
	PredictLuma(dst[:], 16, ref, 16, 16, 16, 16, MV{X: 3 * MVPrecision, Y: -2 * MVPrecision}, &st)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if dst[y*16+x] != ref.YAt(16+x+3, 16+y-2) {
				t.Fatalf("full-pel MC is not a copy at (%d,%d)", x, y)
			}
		}
	}
	if st.SubPelBlocks != 0 {
		t.Error("full-pel block counted as sub-pel")
	}
}

func TestPredictLumaSubPelBetweenNeighbors(t *testing.T) {
	// On a horizontal ramp, a half-pel shift must land between the two
	// neighboring samples.
	ref := video.NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			ref.Y[y*64+x] = uint8(x * 4)
		}
	}
	var dst [16 * 16]uint8
	var st MCStats
	PredictLuma(dst[:], 16, ref, 24, 24, 16, 16, MV{X: 4, Y: 0}, &st) // +0.5 px
	for y := 2; y < 14; y++ {
		for x := 2; x < 14; x++ {
			lo := ref.YAt(24+x, 24+y)
			hi := ref.YAt(24+x+1, 24+y)
			v := dst[y*16+x]
			if v < lo || v > hi {
				t.Fatalf("half-pel sample %d at (%d,%d) outside [%d,%d]", v, x, y, lo, hi)
			}
		}
	}
	if st.SubPelBlocks != 1 {
		t.Errorf("sub-pel blocks = %d, want 1", st.SubPelBlocks)
	}
	if st.RefPixelsRead <= 256 {
		t.Error("sub-pel interpolation must fetch the filter apron (>256 pixels for 16x16)")
	}
}

func TestSubPelFilterTapsSumTo128(t *testing.T) {
	for i, f := range subPelFilters {
		var sum int32
		for _, tap := range f {
			sum += tap
		}
		if sum != 128 {
			t.Errorf("phase %d taps sum to %d, want 128", i, sum)
		}
	}
}

func TestDiamondSearchFindsPlantedMotion(t *testing.T) {
	s := video.NewSynth(128, 128, 0, 3)
	ref := s.Frame(0)
	// Current frame: reference shifted by (+5, -3).
	cur := video.NewFrame(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			cur.Y[y*128+x] = ref.YAt(x+5, y-3)
		}
	}
	var st MEStats
	disp, sad := DiamondSearch(cur, ref, 48, 48, [2]int{0, 0}, 16, &st)
	if disp != [2]int{5, -3} {
		t.Errorf("found displacement %v (SAD %d), want [5 -3]", disp, sad)
	}
	if sad != 0 {
		t.Errorf("SAD at true motion = %d, want 0", sad)
	}
}

func TestSubPelRefineImproves(t *testing.T) {
	s := video.NewSynth(128, 128, 0, 9)
	ref := s.Frame(0)
	cur := s.Frame(1) // global pan of (1.25, 0.5) px: true motion is fractional
	var st MEStats
	whole, wholeSAD := DiamondSearch(cur, ref, 48, 48, [2]int{0, 0}, 16, &st)
	_, subSAD := SubPelRefine(cur, ref, 48, 48, whole, &st)
	if subSAD > wholeSAD {
		t.Errorf("sub-pel refinement worsened SAD: %d -> %d", wholeSAD, subSAD)
	}
	if st.SubPelProbes == 0 {
		t.Error("no sub-pel probes recorded")
	}
}

func TestDeblockSmoothsBlockEdge(t *testing.T) {
	// A small step across a 4x4 boundary must shrink; a large (real) edge
	// must survive.
	w, h := 16, 16
	plane := make([]uint8, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= 4 {
				plane[y*w+x] = 104 // +4 step at x=4 boundary
			} else {
				plane[y*w+x] = 100
			}
			if x >= 8 {
				plane[y*w+x] = 220 // big real edge at x=8
			}
		}
	}
	var st DeblockStats
	DeblockPlane(plane, w, h, 20, &st)
	stepAfter := int(plane[5*w+4]) - int(plane[5*w+3])
	if stepAfter >= 4 {
		t.Errorf("blocking step not reduced: still %d", stepAfter)
	}
	bigAfter := int(plane[5*w+8]) - int(plane[5*w+7])
	if bigAfter < 100 {
		t.Errorf("real edge was destroyed: step now %d", bigAfter)
	}
	if st.EdgesFiltered == 0 || st.EdgesFiltered >= st.EdgesChecked {
		t.Errorf("filtered %d of %d edges; expected some but not all", st.EdgesFiltered, st.EdgesChecked)
	}
}

func TestIntraPredictionModes(t *testing.T) {
	w, h := 16, 16
	plane := make([]uint8, w*h)
	for i := range plane {
		plane[i] = uint8(i)
	}
	var pred [16]uint8
	PredictIntra(pred[:], 4, plane, w, h, 4, 4, 4, PredV)
	for x := 0; x < 4; x++ {
		want := plane[3*w+4+x]
		for y := 0; y < 4; y++ {
			if pred[y*4+x] != want {
				t.Fatalf("V mode column %d not constant", x)
			}
		}
	}
	PredictIntra(pred[:], 4, plane, w, h, 4, 4, 4, PredH)
	for y := 0; y < 4; y++ {
		want := plane[(4+y)*w+3]
		for x := 0; x < 4; x++ {
			if pred[y*4+x] != want {
				t.Fatalf("H mode row %d not constant", y)
			}
		}
	}
	// DC with no neighbors is the fixed default.
	PredictIntra(pred[:], 4, plane, w, h, 0, 0, 4, PredDC)
	// top-left has no above/left: average defaults to 128.
	if pred[0] != 128 {
		t.Errorf("cornerless DC = %d, want 128", pred[0])
	}
}

// --- full codec round trips ---

func encodeClip(t *testing.T, frames []*video.Frame, cfg Config) (*Encoder, [][]byte, []*video.Frame) {
	t.Helper()
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streams [][]byte
	var recons []*video.Frame
	for _, f := range frames {
		data, recon, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, data)
		recons = append(recons, recon)
	}
	return enc, streams, recons
}

func TestCodecRoundTripExact(t *testing.T) {
	cfg := Config{Width: 128, Height: 96, QIndex: 24}
	frames := video.NewSynth(cfg.Width, cfg.Height, 3, 11).Clip(6)
	enc, streams, recons := encodeClip(t, frames, cfg)

	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range streams {
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Y, recons[i].Y) || !bytes.Equal(got.U, recons[i].U) || !bytes.Equal(got.V, recons[i].V) {
			t.Fatalf("frame %d: decoder does not match encoder reconstruction", i)
		}
	}
	if enc.Stats.InterMBs == 0 {
		t.Error("no inter macro-blocks coded across 6 frames of panning video")
	}
	if enc.Stats.MC.SubPelBlocks == 0 {
		t.Error("no sub-pel blocks: the synthetic pan should need interpolation")
	}
}

func TestCodecQuality(t *testing.T) {
	cfg := Config{Width: 128, Height: 96, QIndex: 8}
	frames := video.NewSynth(cfg.Width, cfg.Height, 2, 21).Clip(4)
	_, streams, recons := encodeClip(t, frames, cfg)
	for i := range frames {
		if p := video.PSNR(frames[i], recons[i]); p < 28 {
			t.Errorf("frame %d PSNR %.1f dB < 28 dB at fine quantization", i, p)
		}
	}
	// Compression must actually compress vs raw YUV.
	raw := cfg.Width * cfg.Height * 3 / 2
	for i, s := range streams {
		if len(s) >= raw {
			t.Errorf("frame %d: %d bytes >= raw %d", i, len(s), raw)
		}
	}
}

func TestCoarserQuantizerSmallerStream(t *testing.T) {
	frames := video.NewSynth(128, 96, 2, 5).Clip(2)
	_, fine, _ := encodeClip(t, frames, Config{Width: 128, Height: 96, QIndex: 4})
	_, coarse, _ := encodeClip(t, frames, Config{Width: 128, Height: 96, QIndex: 55})
	fineBytes, coarseBytes := 0, 0
	for i := range fine {
		fineBytes += len(fine[i])
		coarseBytes += len(coarse[i])
	}
	if coarseBytes >= fineBytes {
		t.Errorf("coarse quantizer stream (%d) not smaller than fine (%d)", coarseBytes, fineBytes)
	}
}

func TestInterFramesSmallerThanKeyframes(t *testing.T) {
	frames := video.NewSynth(128, 96, 2, 31).Clip(4)
	_, streams, _ := encodeClip(t, frames, Config{Width: 128, Height: 96, QIndex: 24})
	key := len(streams[0])
	for i := 1; i < len(streams); i++ {
		if len(streams[i]) >= key {
			t.Errorf("inter frame %d (%dB) not smaller than keyframe (%dB)", i, len(streams[i]), key)
		}
	}
}

func TestDecoderErrors(t *testing.T) {
	cfg := Config{Width: 64, Height: 64, QIndex: 24}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An inter frame before any keyframe must be rejected.
	w := NewBoolWriter()
	w.Bool(false, 128) // not a keyframe
	w.Literal(24, 6)
	if _, err := dec.Decode(w.Flush()); err == nil {
		t.Error("inter frame with no references accepted")
	}
	// Truncated stream: decoding must error, not panic.
	frames := video.NewSynth(64, 64, 1, 2).Clip(1)
	enc, _ := NewEncoder(cfg)
	data, _, _ := enc.Encode(frames[0])
	if _, err := dec.Decode(data[:len(data)/4]); err == nil {
		t.Error("truncated keyframe accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 64},
		{Width: 65, Height: 64},
		{Width: 64, Height: 64, QIndex: 99},
	}
	for _, cfg := range bad {
		if _, err := NewEncoder(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := NewDecoder(cfg); err == nil {
			t.Errorf("decoder config %+v accepted", cfg)
		}
	}
}

func TestEncodeRejectsWrongSize(t *testing.T) {
	enc, _ := NewEncoder(Config{Width: 64, Height: 64, QIndex: 24})
	if _, _, err := enc.Encode(video.NewFrame(128, 128)); err == nil {
		t.Error("mismatched frame size accepted")
	}
}

func TestPSNRHelpers(t *testing.T) {
	a := video.NewFrame(16, 16)
	b := a.Clone()
	if !math.IsInf(video.PSNR(a, b), 1) {
		t.Error("identical frames should have infinite PSNR")
	}
	b.Y[0] = 255
	if p := video.PSNR(a, b); math.IsInf(p, 1) || p < 0 {
		t.Errorf("PSNR = %v", p)
	}
}
