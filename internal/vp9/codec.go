package vp9

import (
	"errors"
	"fmt"

	"gopim/internal/video"
)

// Config parameterizes an encoder/decoder pair. Width and Height must be
// multiples of 16 (the macro-block size).
type Config struct {
	Width, Height int
	QIndex        int // 0 (finest) .. MaxQIndex
	KeyInterval   int // force a keyframe every N frames; 0 means 32
	SearchRange   int // motion search range in whole pels; 0 means 16
	MaxRefs       int // reference frames to search; 0 means 3
}

func (c Config) withDefaults() Config {
	if c.KeyInterval == 0 {
		c.KeyInterval = 32
	}
	if c.SearchRange == 0 {
		c.SearchRange = 16
	}
	if c.MaxRefs == 0 {
		c.MaxRefs = 3
	}
	return c
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Width%16 != 0 || c.Height%16 != 0 {
		return fmt.Errorf("vp9: frame size %dx%d must be positive multiples of 16", c.Width, c.Height)
	}
	if c.QIndex < 0 || c.QIndex > MaxQIndex {
		return fmt.Errorf("vp9: qindex %d out of range [0,%d]", c.QIndex, MaxQIndex)
	}
	return nil
}

// MBSize is the macro-block size used for mode decisions and motion.
const MBSize = 16

// Stats aggregates the codec-side work counters used by the instrumented
// kernels and the hardware traffic model.
type Stats struct {
	ME             MEStats
	MC             MCStats
	Deblock        DeblockStats
	IntraMBs       uint64
	InterMBs       uint64
	BitstreamBytes uint64
	FramesCoded    uint64
}

// probabilities for mode/reference syntax (P(false) each).
const (
	probInter = 80  // inter blocks are likely on inter frames
	probRef0  = 100 // LAST is the most used reference
	probRef2  = 128
	probSplit = 200 // most blocks keep the single 16x16 vector
)

// mbPrediction is the luma/chroma prediction of one macro-block plus its
// coding decisions, shared between encode and decode reconstruction.
type mbPrediction struct {
	inter bool
	mode  IntraMode
	ref   int
	mv    MV
	// split selects four 8x8 sub-blocks with independent motion vectors
	// instead of one 16x16 vector (VP9's variable partitioning, reduced to
	// one split level).
	split bool
	subMV [4]MV
	predY [MBSize * MBSize]uint8
	predU [8 * 8]uint8
	predV [8 * 8]uint8
}

// chromaMV returns the whole-pel chroma displacement for the block: the
// (sub-)vector average, halved for 4:2:0.
func (p *mbPrediction) chromaMV() (dx, dy int) {
	mv := p.mv
	if p.split {
		var sx, sy int
		for _, m := range p.subMV {
			sx += m.X
			sy += m.Y
		}
		mv = MV{X: sx / 4, Y: sy / 4}
	}
	dx, _ = floorDiv(mv.X+8, 16)
	dy, _ = floorDiv(mv.Y+8, 16)
	return dx, dy
}

// predictInterLuma fills predY from ref using the block's vector(s).
func (p *mbPrediction) predictInterLuma(ref *video.Frame, bx, by int, st *MCStats) {
	if !p.split {
		PredictLuma(p.predY[:], MBSize, ref, bx, by, MBSize, MBSize, p.mv, st)
		return
	}
	for q := 0; q < 4; q++ {
		qx, qy := (q%2)*8, (q/2)*8
		PredictLuma(p.predY[qy*MBSize+qx:], MBSize, ref, bx+qx, by+qy, 8, 8, p.subMV[q], st)
	}
}

// predictChroma fills predU/predV: motion-compensated at full-pel chroma
// resolution for inter blocks, DC intra otherwise.
func (p *mbPrediction) predictChroma(recon, ref *video.Frame, mbx, mby int) {
	cw, ch := recon.W/2, recon.H/2
	cbx, cby := mbx*8, mby*8
	if p.inter && ref != nil {
		dx, dy := p.chromaMV() // luma 1/8-pel -> chroma whole-pel
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				p.predU[y*8+x] = planeAt(ref.U, cw, ch, cbx+x+dx, cby+y+dy)
				p.predV[y*8+x] = planeAt(ref.V, cw, ch, cbx+x+dx, cby+y+dy)
			}
		}
		return
	}
	PredictIntra(p.predU[:], 8, recon.U, cw, ch, cbx, cby, 8, PredDC)
	PredictIntra(p.predV[:], 8, recon.V, cw, ch, cbx, cby, 8, PredDC)
}

func planeAt(plane []uint8, w, h, x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= w {
		x = w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= h {
		y = h - 1
	}
	return plane[y*w+x]
}

// reconstruct4x4 applies a dequantized, inverse-transformed residual to a
// 4x4 block of plane at (x, y), using pred (row-major, predStride).
func reconstruct4x4(plane []uint8, w int, x, y int, pred []uint8, predStride int, res *[16]int32) {
	for r := 0; r < 4; r++ {
		row := (y+r)*w + x
		for c := 0; c < 4; c++ {
			v := int32(pred[r*predStride+c]) + res[r*4+c]
			plane[row+c] = clampPel(v)
		}
	}
}

// codeUnit is the per-4x4 residual pipeline shared by both directions.
// Encoding: residual -> transform -> quantize -> levels; returns dequantized
// inverse for reconstruction. Decoding only runs the second half.
func dequantInverse(levels *[16]int32, qIndex int) {
	DequantizeBlock(levels[:], qIndex)
	InvTransform4x4(levels[:])
}

var errBadBitstream = errors.New("vp9: corrupt bitstream")
