package vp9

import (
	"math"

	"gopim/internal/video"
)

// Motion compensation (paper Figure 9, block 3). Motion vectors have
// 1/8-pixel resolution; fractional positions are interpolated with the
// 8-tap filter bank below (the even phases of libvpx's eighttap-regular
// filter), exactly the operation the paper identifies as the dominant
// source of decoder data movement.

// MVPrecision is the denominator of motion vector units: 8 units per pixel.
const MVPrecision = 8

// subPelFilters holds one 8-tap filter per 1/8-pel phase, taps summing to
// 128. The bank is a Lanczos-windowed sinc (a=4), the same family as
// libvpx's eighttap filters; phase p interpolates at p/8 of a pixel, so
// phase 4 is the symmetric half-pel filter.
var subPelFilters = buildSubPelFilters()

func buildSubPelFilters() [MVPrecision][8]int32 {
	var out [MVPrecision][8]int32
	out[0][3] = 128
	for p := 1; p < MVPrecision; p++ {
		frac := float64(p) / MVPrecision
		var w [8]float64
		var sum float64
		for t := 0; t < 8; t++ {
			x := float64(t) - 3 - frac
			w[t] = sinc(x) * sinc(x/4) // Lanczos window, a = 4
			sum += w[t]
		}
		// Quantize to integers summing to exactly 128.
		total := int32(0)
		maxIdx := 0
		for t := 0; t < 8; t++ {
			out[p][t] = int32(math.Round(w[t] / sum * 128))
			total += out[p][t]
			if out[p][t] > out[p][maxIdx] {
				maxIdx = t
			}
		}
		out[p][maxIdx] += 128 - total
	}
	return out
}

func sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// MV is a motion vector in 1/8-pel units.
type MV struct {
	X, Y int
}

// MCStats counts the work motion compensation performs, for the hardware
// traffic model and the instrumented kernels.
type MCStats struct {
	Blocks         uint64 // blocks predicted
	SubPelBlocks   uint64 // blocks needing interpolation
	RefPixelsRead  uint64 // reference pixels fetched (including filter apron)
	PixelsProduced uint64 // predicted pixels written
	FilterTapMults uint64 // multiply-accumulates spent in filters
}

// PredictLuma writes the w x h luma prediction for the block at (bx, by)
// displaced by mv, reading from ref. dst is row-major with the given
// stride. Out-of-frame reference samples clamp to the edge.
func PredictLuma(dst []uint8, stride int, ref *video.Frame, bx, by, w, h int, mv MV, st *MCStats) {
	intX, fracX := floorDiv(mv.X, MVPrecision)
	intY, fracY := floorDiv(mv.Y, MVPrecision)
	srcX := bx + intX
	srcY := by + intY

	st.Blocks++
	st.PixelsProduced += uint64(w * h)

	if fracX == 0 && fracY == 0 {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dst[y*stride+x] = ref.YAt(srcX+x, srcY+y)
			}
		}
		st.RefPixelsRead += uint64(w * h)
		return
	}

	st.SubPelBlocks++
	// Horizontal pass into an intermediate buffer tall enough for the
	// vertical filter's apron (h + 7 rows). In the worst case the decoder
	// fetches (w+7) x (h+7) reference pixels for a w x h block — the
	// paper's "11x11 pixels for a 4x4 sub-block".
	const apron = 7
	tmpH := h + apron
	// Block dimensions are at most MBSize, so the intermediate fits a
	// fixed stack buffer; larger callers (none today) fall back to the
	// heap. This runs per predicted block, so avoiding the allocation
	// matters.
	var tmpArr [MBSize * (MBSize + apron)]int32
	tmp := tmpArr[:]
	if w*tmpH > len(tmpArr) {
		tmp = make([]int32, w*tmpH)
	} else {
		tmp = tmpArr[:w*tmpH]
	}
	fx := subPelFilters[fracX]
	for y := 0; y < tmpH; y++ {
		ry := srcY + y - apron/2 - 1
		for x := 0; x < w; x++ {
			var acc int32
			for t := 0; t < 8; t++ {
				acc += fx[t] * int32(ref.YAt(srcX+x+t-3, ry))
			}
			tmp[y*w+x] = acc
		}
	}
	st.RefPixelsRead += uint64((w + apron) * tmpH)
	st.FilterTapMults += uint64(w * tmpH * 8)

	fy := subPelFilters[fracY]
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc int32
			for t := 0; t < 8; t++ {
				acc += fy[t] * tmp[(y+t)*w+x]
			}
			// Two filter passes: divide by 128*128 with rounding.
			dst[y*stride+x] = clampPel((acc + 8192) >> 14)
		}
	}
	st.FilterTapMults += uint64(w * h * 8)
}

func floorDiv(v, d int) (q, r int) {
	q = v / d
	r = v % d
	if r < 0 {
		q--
		r += d
	}
	return q, r
}

func clampPel(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
