package vp9

import (
	"bytes"
	"testing"

	"gopim/internal/video"
)

// splitClip builds content with small objects moving differently from the
// background, which favors 8x8 partitioning.
func splitClip(w, h, frames int) []*video.Frame {
	return video.NewSynth(w, h, 8, 41).Clip(frames)
}

func TestSplitPartitionsAreUsedAndDecode(t *testing.T) {
	cfg := Config{Width: 192, Height: 128, QIndex: 24}
	frames := splitClip(cfg.Width, cfg.Height, 5)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	splits := 0
	enc.OnMB = func(_, _ int, d Decision) {
		if d.Split {
			splits++
		}
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		data, recon, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Y, recon.Y) || !bytes.Equal(got.U, recon.U) {
			t.Fatalf("frame %d: split-coded stream does not round trip", i)
		}
	}
	if splits == 0 {
		t.Error("no macro-blocks chose the 8x8 split on object-rich content")
	}
	t.Logf("split macro-blocks: %d", splits)
}

func TestSplitImprovesQualityOnObjectContent(t *testing.T) {
	// With independently moving objects, per-quadrant vectors should not
	// hurt, and typically help, the bits-at-quality tradeoff. Compare total
	// residual energy proxy: stream size at the same quantizer.
	cfg := Config{Width: 192, Height: 128, QIndex: 24}
	frames := splitClip(cfg.Width, cfg.Height, 4)

	enc, _ := NewEncoder(cfg)
	var withSplit int
	var psnrSplit float64
	for _, f := range frames {
		data, recon, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		withSplit += len(data)
		psnrSplit += video.PSNR(f, recon)
	}
	if psnrSplit/float64(len(frames)) < 25 {
		t.Errorf("split-enabled PSNR %.1f too low", psnrSplit/float64(len(frames)))
	}
	t.Logf("split-enabled total stream: %d bytes, mean PSNR %.1f dB", withSplit, psnrSplit/float64(len(frames)))
}

func TestSplitRaisesReferenceAmplification(t *testing.T) {
	// Each 8x8 sub-pel block fetches (8+7)^2 reference pixels for 64
	// produced — 3.5x vs 2.1x for 16x16 blocks. The measured amplification
	// must sit in that range (paper: ~2.9 at 4K with mixed block sizes).
	clip, err := CodeClip(320, 192, 5, 24, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := MeasureHWParams(clip)
	if p.RefPxPerPx < 1.2 || p.RefPxPerPx > 3.6 {
		t.Errorf("reference amplification %.2f px/px outside [1.2, 3.6] (paper: 2.9)", p.RefPxPerPx)
	}
	t.Logf("reference amplification: %.2f px/px", p.RefPxPerPx)
}

func TestChromaMVAveraging(t *testing.T) {
	p := &mbPrediction{inter: true, split: true,
		subMV: [4]MV{{X: 8, Y: 0}, {X: 8, Y: 0}, {X: 24, Y: 16}, {X: 24, Y: 16}}}
	dx, dy := p.chromaMV()
	// Average luma MV = (16, 8)/8 = (2, 1) px -> chroma (1, 1) px (rounded).
	if dx != 1 || dy != 1 {
		t.Errorf("chroma MV = (%d,%d), want (1,1)", dx, dy)
	}
	p2 := &mbPrediction{inter: true, mv: MV{X: -16, Y: 8}}
	dx, dy = p2.chromaMV()
	if dx != -1 || dy != 1 {
		t.Errorf("unsplit chroma MV = (%d,%d), want (-1,1)", dx, dy)
	}
}
