package vp9

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoolRoundTripFixedProb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]bool, 5000)
	for i := range bits {
		bits[i] = rng.Intn(4) == 0
	}
	w := NewBoolWriter()
	for _, b := range bits {
		w.Bool(b, 192) // p(false) = 192/256, matching the 1-in-4 bias
	}
	data := w.Flush()
	r := NewBoolReader(data)
	for i, want := range bits {
		if got := r.Bool(192); got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
	// A biased stream must compress below one bit per symbol.
	if len(data)*8 >= len(bits) {
		t.Errorf("5000 biased bools took %d bits; expected < 1 bit/symbol", len(data)*8)
	}
}

func TestBoolRoundTripVaryingProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	bits := make([]bool, n)
	probs := make([]uint8, n)
	for i := range bits {
		bits[i] = rng.Intn(2) == 0
		probs[i] = uint8(rng.Intn(254) + 1)
	}
	w := NewBoolWriter()
	for i := range bits {
		w.Bool(bits[i], probs[i])
	}
	r := NewBoolReader(w.Flush())
	for i := range bits {
		if got := r.Bool(probs[i]); got != bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestLiteralRoundTrip(t *testing.T) {
	w := NewBoolWriter()
	vals := []struct {
		v uint32
		n int
	}{{0, 1}, {1, 1}, {255, 8}, {0xABC, 12}, {0, 8}, {7, 3}, {1 << 15, 16}}
	for _, c := range vals {
		w.Literal(c.v, c.n)
	}
	r := NewBoolReader(w.Flush())
	for i, c := range vals {
		if got := r.Literal(c.n); got != c.v {
			t.Fatalf("literal %d = %#x, want %#x", i, got, c.v)
		}
	}
}

func TestCarryPropagation(t *testing.T) {
	// Encoding long runs of the improbable symbol forces carries through
	// 0xFF byte runs; the decoder must still agree bit-for-bit.
	w := NewBoolWriter()
	for i := 0; i < 2000; i++ {
		w.Bool(true, 255) // p(false)=255/256: "true" is the rare branch
	}
	r := NewBoolReader(w.Flush())
	for i := 0; i < 2000; i++ {
		if !r.Bool(255) {
			t.Fatalf("bit %d lost after carry", i)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	w := NewBoolWriter()
	data := w.Flush()
	if len(data) == 0 {
		t.Fatal("flush produced no bytes")
	}
	r := NewBoolReader(data)
	_ = r.Bool(128) // decoding from an empty logical stream must not panic
}

// Property: any bool sequence with any probability sequence round-trips.
func TestQuickBoolRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%2000 + 1
		bits := make([]bool, count)
		probs := make([]uint8, count)
		for i := range bits {
			bits[i] = rng.Intn(2) == 0
			probs[i] = uint8(rng.Intn(255) + 1)
		}
		w := NewBoolWriter()
		for i := range bits {
			w.Bool(bits[i], probs[i])
		}
		r := NewBoolReader(w.Flush())
		for i := range bits {
			if r.Bool(probs[i]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
