package vp9

// Entropy layer: how quantized coefficients, motion vectors and mode
// decisions are expressed as bools for the range coder. The scheme follows
// VP8/VP9's shape — band-dependent probabilities, EOB-first coefficient
// coding, and category-based magnitude coding with literal extra bits — with
// a fixed default probability set.

// magProbs parameterizes magnitude coding: a unary walk through size
// categories (each Bool's probability is P(stop here)) followed by literal
// bits.
type magProbs struct {
	cat [5]uint8
}

func defaultMagProbs() magProbs {
	return magProbs{cat: [5]uint8{120, 150, 170, 190, 210}}
}

// Category boundaries: category j covers m in [catBase[j], catBase[j+1]).
var catBase = [6]int{0, 1, 3, 7, 15, 31}
var catBits = [5]int{0, 1, 2, 3, 4}

const escapeBits = 12 // category-5 escape literal width

// writeMag encodes a non-negative magnitude m.
func writeMag(w *BoolWriter, m int, p *magProbs) {
	for j := 0; j < 5; j++ {
		inCat := m < catBase[j+1]
		w.Bool(!inCat, p.cat[j])
		if inCat {
			if catBits[j] > 0 {
				w.Literal(uint32(m-catBase[j]), catBits[j])
			}
			return
		}
	}
	w.Literal(uint32(m-catBase[5]), escapeBits)
}

// readMag decodes a magnitude written by writeMag.
func readMag(r *BoolReader, p *magProbs) int {
	for j := 0; j < 5; j++ {
		if !r.Bool(p.cat[j]) {
			if catBits[j] == 0 {
				return catBase[j]
			}
			return catBase[j] + int(r.Literal(catBits[j]))
		}
	}
	return catBase[5] + int(r.Literal(escapeBits))
}

// coeffProbs parameterizes 4x4 coefficient coding, banded by scan position.
type coeffProbs struct {
	more [4]uint8 // P(no more coefficients) per band
	nz   [4]uint8 // P(this position is zero) per band
	mag  magProbs
}

func defaultCoeffProbs() coeffProbs {
	return coeffProbs{
		more: [4]uint8{60, 100, 140, 180},
		nz:   [4]uint8{100, 128, 150, 170},
		mag:  defaultMagProbs(),
	}
}

func band(k int) int {
	switch {
	case k == 0:
		return 0
	case k == 1:
		return 1
	case k < 4:
		return 2
	default:
		return 3
	}
}

// writeCoeffs encodes 16 quantized levels (natural raster order) in zigzag
// order with EOB-first semantics. An all-zero block costs one bool. When
// counts is non-nil, every adaptive decision is tallied for backward
// adaptation.
func writeCoeffs(w *BoolWriter, levels *[16]int32, p *coeffProbs, counts *coeffCounts) {
	last := -1
	for k := 15; k >= 0; k-- {
		if levels[ZigZag4[k]] != 0 {
			last = k
			break
		}
	}
	for k := 0; k <= last; k++ {
		w.Bool(true, p.more[band(k)])
		level := levels[ZigZag4[k]]
		nz := level != 0
		if counts != nil {
			counts.more[band(k)].add(true)
			counts.nz[band(k)].add(nz)
		}
		if !nz {
			w.Bool(false, p.nz[band(k)])
			continue
		}
		w.Bool(true, p.nz[band(k)])
		w.Bool(level < 0, 128)
		mag := level
		if mag < 0 {
			mag = -mag
		}
		writeMag(w, int(mag-1), &p.mag)
	}
	if last < 15 {
		w.Bool(false, p.more[band(last+1)])
		if counts != nil {
			counts.more[band(last+1)].add(false)
		}
	}
}

// readCoeffs decodes what writeCoeffs produced, filling levels (natural
// order) and tallying the same adaptive contexts.
func readCoeffs(r *BoolReader, levels *[16]int32, p *coeffProbs, counts *coeffCounts) {
	for i := range levels {
		levels[i] = 0
	}
	for k := 0; k < 16; k++ {
		more := r.Bool(p.more[band(k)])
		if counts != nil {
			counts.more[band(k)].add(more)
		}
		if !more {
			return
		}
		nz := r.Bool(p.nz[band(k)])
		if counts != nil {
			counts.nz[band(k)].add(nz)
		}
		if !nz {
			continue
		}
		neg := r.Bool(128)
		mag := int32(readMag(r, &p.mag)) + 1
		if neg {
			mag = -mag
		}
		levels[ZigZag4[k]] = mag
	}
}

// boolCount tallies coded bool outcomes for backward adaptation.
type boolCount struct {
	f, t uint32
}

func (c *boolCount) add(b bool) {
	if b {
		c.t++
	} else {
		c.f++
	}
}

// adaptProb blends an old probability toward the observed frequency of
// false outcomes (VP9-style backward adaptation: both sides count the
// symbols they coded and update identically for the next frame).
func adaptProb(old uint8, c boolCount) uint8 {
	total := c.f + c.t
	if total < 16 {
		return old // too few samples to trust
	}
	obs := (c.f*255 + total/2) / total
	if obs < 1 {
		obs = 1
	}
	if obs > 254 {
		obs = 254
	}
	return uint8((3*uint32(old) + obs) / 4)
}

// coeffCounts tallies the adaptive contexts of coefficient coding.
type coeffCounts struct {
	more [4]boolCount
	nz   [4]boolCount
}

// adapt folds one frame's counts into the probabilities and resets them.
func (p *coeffProbs) adapt(c *coeffCounts) {
	for i := range p.more {
		p.more[i] = adaptProb(p.more[i], c.more[i])
		p.nz[i] = adaptProb(p.nz[i], c.nz[i])
	}
	*c = coeffCounts{}
}

// mvCounts tallies the adaptive context of MV coding.
type mvCounts struct {
	zero boolCount
}

// adapt folds one frame's counts into the probabilities and resets them.
func (p *mvProbs) adapt(c *mvCounts) {
	p.zero = adaptProb(p.zero, c.zero)
	*c = mvCounts{}
}

// mvProbs parameterizes motion vector difference coding.
type mvProbs struct {
	zero uint8 // P(component diff == 0)
	mag  magProbs
}

func defaultMVProbs() mvProbs {
	return mvProbs{zero: 100, mag: defaultMagProbs()}
}

// writeMVComponent encodes one MV component difference (1/8-pel units).
func writeMVComponent(w *BoolWriter, d int, p *mvProbs, counts *mvCounts) {
	if counts != nil {
		counts.zero.add(d != 0)
	}
	if d == 0 {
		w.Bool(false, p.zero)
		return
	}
	w.Bool(true, p.zero)
	w.Bool(d < 0, 128)
	if d < 0 {
		d = -d
	}
	writeMag(w, d-1, &p.mag)
}

// readMVComponent decodes one MV component difference.
func readMVComponent(r *BoolReader, p *mvProbs, counts *mvCounts) int {
	nonzero := r.Bool(p.zero)
	if counts != nil {
		counts.zero.add(nonzero)
	}
	if !nonzero {
		return 0
	}
	neg := r.Bool(128)
	d := readMag(r, &p.mag) + 1
	if neg {
		return -d
	}
	return d
}
