package timing

import (
	"testing"

	"gopim/internal/dram"
	"gopim/internal/profile"
)

func computeHeavy() profile.Profile {
	var p profile.Profile
	p.Ops = 500_000_000 // no memory traffic at all
	return p
}

func memoryHeavy() profile.Profile {
	var p profile.Profile
	p.Ops = 1000
	p.Mem.BytesRead = 256 << 20
	return p
}

func TestEffectiveBandwidthCapped(t *testing.T) {
	// The SoC core's MLP-limited bandwidth is below the channel peak.
	soc := SoC()
	if bw := soc.EffectiveBandwidth(); bw > dram.ChannelBandwidth {
		t.Errorf("SoC effective bandwidth %.1f GB/s exceeds the channel", bw/1e9)
	}
	// A hypothetical engine with enormous MLP is capped by the channel.
	e := SoC()
	e.MLP = 1e6
	if bw := e.EffectiveBandwidth(); bw != dram.ChannelBandwidth {
		t.Errorf("bandwidth not capped at the channel: %.1f GB/s", bw/1e9)
	}
}

func TestPIMBandwidthExceedsCPU(t *testing.T) {
	if PIMCore(4).EffectiveBandwidth() <= SoC().EffectiveBandwidth() {
		t.Error("PIM logic must see more memory bandwidth than the off-chip CPU")
	}
	if PIMAcc(4).EffectiveBandwidth() <= SoC().EffectiveBandwidth() {
		t.Error("PIM accelerator must see more bandwidth than the CPU")
	}
}

func TestComputeBoundClassification(t *testing.T) {
	if !SoC().ComputeBound(computeHeavy()) {
		t.Error("pure-compute profile classified as memory bound")
	}
	if SoC().ComputeBound(memoryHeavy()) {
		t.Error("pure-traffic profile classified as compute bound")
	}
}

func TestMemoryBoundKernelFasterOnPIM(t *testing.T) {
	p := memoryHeavy()
	cpu := SoC().Seconds(p)
	pim := PIMCore(4).Seconds(p)
	if pim >= cpu {
		t.Errorf("memory-bound kernel: PIM %.2g s not faster than CPU %.2g s", pim, cpu)
	}
}

func TestComputeBoundKernelSlowerOnOnePIMCore(t *testing.T) {
	p := computeHeavy()
	cpu := SoC().Seconds(p)
	pim := PIMCore(1).Seconds(p)
	// One 1-wide 1 GHz core against a 2-wide 2 GHz core: ~4x slower.
	if pim <= cpu {
		t.Errorf("compute-bound kernel should be slower on one PIM core (CPU %.2g, PIM %.2g)", cpu, pim)
	}
	if ratio := pim / cpu; ratio < 3 || ratio > 5 {
		t.Errorf("compute slowdown ratio %.1f, want ~4", ratio)
	}
}

func TestVaultScalingHelpsCompute(t *testing.T) {
	p := computeHeavy()
	one := PIMCore(1).Seconds(p)
	four := PIMCore(4).Seconds(p)
	if four >= one {
		t.Error("more vaults should reduce compute time")
	}
	if ratio := one / four; ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4-vault compute scaling = %.1fx, want ~4x", ratio)
	}
}

func TestAcceleratorFastestOnCompute(t *testing.T) {
	p := computeHeavy()
	if PIMAcc(4).Seconds(p) >= PIMCore(4).Seconds(p) {
		t.Error("the accelerator should beat equal-width PIM cores on compute")
	}
}

func TestZeroUnitsDefaultsToOne(t *testing.T) {
	e := PIMCore(0)
	if e.Units != 1 {
		t.Errorf("PIMCore(0).Units = %d, want 1", e.Units)
	}
	e = PIMAcc(-3)
	if e.Units != 1 {
		t.Errorf("PIMAcc(-3).Units = %d, want 1", e.Units)
	}
	var p profile.Profile
	p.Ops = 100
	z := Engine{FreqHz: 1e9, IPC: 1, MemLatency: 1e-8, MLP: 1, Bandwidth: 1e9}
	if z.Seconds(p) <= 0 {
		t.Error("zero-unit engine must still produce positive time")
	}
}

func TestOverlapReducesTime(t *testing.T) {
	var p profile.Profile
	p.Ops = 1_000_000
	p.Mem.BytesRead = 10 << 20
	noOverlap := SoC()
	noOverlap.Overlap = 0
	fullOverlap := SoC()
	fullOverlap.Overlap = 1
	if fullOverlap.Seconds(p) >= noOverlap.Seconds(p) {
		t.Error("full compute/memory overlap should be faster than none")
	}
}
