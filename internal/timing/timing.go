// Package timing provides the analytic runtime model used in place of the
// paper's gem5 full-system simulation. A kernel's execution time on an
// engine is the combination of a compute term (instructions over issue
// throughput across the engine's parallel units) and a memory term (traffic
// over the engine's *effective* bandwidth, which is the smaller of the
// channel bandwidth and what the engine's memory-level parallelism can
// sustain at its access latency), with an overlap factor describing how much
// of the shorter term hides under the longer one (out-of-order cores overlap
// well; the in-order PIM core less; pipelined fixed-function accelerators
// almost completely).
package timing

import (
	"gopim/internal/dram"
	"gopim/internal/mem"
	"gopim/internal/profile"
)

// Engine describes the execution resources of one compute engine.
type Engine struct {
	Name       string
	FreqHz     float64
	IPC        float64 // sustained instructions per cycle per unit
	Units      int     // parallel units (vault cores, accelerator lanes)
	MemLatency float64 // seconds per line fetch from this engine's memory
	MLP        float64 // outstanding misses per unit
	Bandwidth  float64 // bytes/s ceiling of the memory channel
	Overlap    float64 // 0..1: fraction of min(compute,memory) hidden
}

// SoC returns the timing model of one baseline SoC core (paper Table 1:
// out-of-order, nominally 8-wide; mobile Celeron-class cores sustain far
// less, and a single thread drives the LPDDR3 channel well below its peak).
func SoC() Engine {
	return Engine{
		Name:       "CPU-Only",
		FreqHz:     2.0e9,
		IPC:        2.0,
		Units:      1,
		MemLatency: dram.OffChipLatency,
		MLP:        20,
		Bandwidth:  dram.ChannelBandwidth,
		Overlap:    0.7,
	}
}

// PIMCore returns the timing model of vaults PIM cores working on a
// data-parallel PIM target (1-wide in-order, 4-wide SIMD, 1 GHz, logic-layer
// latency and bandwidth). The paper places one core per vault; a target's
// data parallelism determines how many vaults it spreads over.
func PIMCore(vaults int) Engine {
	if vaults <= 0 {
		vaults = 1
	}
	return Engine{
		Name:       "PIM-Core",
		FreqHz:     1.0e9,
		IPC:        1.0,
		Units:      vaults,
		MemLatency: dram.InternalLatency,
		MLP:        6,
		Bandwidth:  dram.InternalBandwidth,
		Overlap:    0.35,
	}
}

// PIMAcc returns the timing model of a fixed-function PIM accelerator with
// the given number of in-memory logic units (the paper uses four for the
// browser and TensorFlow targets). Each unit is a short pipeline retiring
// several operations per cycle with deeply prefetched operands.
func PIMAcc(units int) Engine {
	if units <= 0 {
		units = 1
	}
	return Engine{
		Name:       "PIM-Acc",
		FreqHz:     1.0e9,
		IPC:        4.0,
		Units:      units,
		MemLatency: dram.InternalLatency,
		MLP:        6,
		Bandwidth:  dram.InternalBandwidth,
		Overlap:    0.9,
	}
}

// EffectiveBandwidth returns the memory bandwidth the engine can actually
// sustain: the channel ceiling, or the latency-MLP product across units,
// whichever is smaller.
func (e Engine) EffectiveBandwidth() float64 {
	sustained := float64(e.Units) * e.MLP * mem.LineSize / e.MemLatency
	if sustained < e.Bandwidth {
		return sustained
	}
	return e.Bandwidth
}

// Seconds returns the modelled execution time of a kernel with profile p.
func (e Engine) Seconds(p profile.Profile) float64 {
	units := e.Units
	if units <= 0 {
		units = 1
	}
	compute := float64(p.Instructions()) / (e.IPC * e.FreqHz * float64(units))
	memory := float64(p.Mem.Total()) / e.EffectiveBandwidth()

	longer, shorter := compute, memory
	if memory > longer {
		longer, shorter = memory, compute
	}
	return longer + (1-e.Overlap)*shorter
}

// ComputeBound reports whether p would be limited by compute rather than
// memory on e (useful for explaining accelerator-vs-core gaps).
func (e Engine) ComputeBound(p profile.Profile) bool {
	units := e.Units
	if units <= 0 {
		units = 1
	}
	compute := float64(p.Instructions()) / (e.IPC * e.FreqHz * float64(units))
	memory := float64(p.Mem.Total()) / e.EffectiveBandwidth()
	return compute > memory
}
