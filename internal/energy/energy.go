// Package energy implements the system energy model of the paper (§3.1):
// total system energy is the sum of per-event energies of the CPU cores, the
// L1 and L2 caches, the off-chip interconnect, the memory controller, and
// DRAM, with separate parameters for the baseline LPDDR3 path and for
// accesses served inside the 3D-stacked cube (as seen by PIM logic), plus
// per-operation energies for the PIM core and PIM accelerators.
//
// All parameters are in picojoules. The absolute values are ballparks
// assembled from the paper's cited sources (CACTI at 22 nm for caches,
// LPDDR3/HMC per-bit estimates for memory, ARM Cortex-class per-instruction
// estimates for cores, and a 20x-over-CPU efficiency assumption for
// fixed-function accelerators, all per §3.1); the experiments reproduce the
// paper's *relative* breakdowns, which depend on ratios between these costs.
package energy

// Params holds every per-event energy cost, in pJ, plus static power terms
// in watts (the paper's counter-driven CPU energy includes the energy of
// stall cycles, which a purely per-instruction cost would miss).
type Params struct {
	// Compute.
	CPUInstr     float64 // OoO SoC core, per instruction (core only)
	PIMCoreInstr float64 // PIM core, per instruction
	PIMAccOp     float64 // PIM accelerator, per scalar-equivalent operation

	// Static/stall power of the active engine, in watts; multiplied by the
	// kernel's modelled runtime.
	CPUStaticW     float64
	PIMCoreStaticW float64
	PIMAccStaticW  float64

	// On-chip SRAM.
	L1Ref     float64 // per load/store reference (CPU or PIM-core L1)
	L2Access  float64 // per line-granularity LLC access
	PIMBufRef float64 // per reference to a PIM accelerator's scratchpad

	// Off-chip path (SoC <-> DRAM), per byte moved.
	InterconnectByte float64
	MemCtrlByte      float64
	DRAMByte         float64 // LPDDR3 array + I/O

	// Inside the 3D stack (logic layer <-> DRAM layers), per byte moved.
	StackDRAMByte float64 // TSV + array access
	StackLinkByte float64 // vault-internal routing

	// Per-row-activation costs: a DRAM access that misses the open row
	// pays an activate/precharge, which scattered access patterns (motion
	// compensation's reference fetches) incur far more often than
	// streaming ones (texture tiling's tile writes).
	RowActivate      float64 // off-chip LPDDR3 row
	StackRowActivate float64 // in-stack row (smaller arrays)
}

// Default returns the parameter set used by all experiments.
func Default() Params {
	return Params{
		CPUInstr:     75,
		PIMCoreInstr: 25,
		PIMAccOp:     75.0 / 20, // paper §3.1: accelerator 20x more efficient than CPU

		CPUStaticW:     0.15,
		PIMCoreStaticW: 0.04,
		PIMAccStaticW:  0.015,
		L1Ref:          10,
		L2Access:       90,
		PIMBufRef:      4,

		InterconnectByte: 20,
		MemCtrlByte:      10,
		DRAMByte:         60,

		StackDRAMByte: 38,
		StackLinkByte: 6,

		RowActivate:      1500,
		StackRowActivate: 900,
	}
}

// Breakdown is a per-component energy total in pJ, mirroring the component
// axes of the paper's Figures 2, 11, 18, 19 and 20.
type Breakdown struct {
	CPU          float64 // SoC core compute (or zero for PIM runs)
	PIM          float64 // PIM core / accelerator compute
	L1           float64 // L1 (or PIM scratchpad) references
	LLC          float64
	Interconnect float64
	MemCtrl      float64
	DRAM         float64
}

// Total returns the sum over all components.
func (b Breakdown) Total() float64 {
	return b.CPU + b.PIM + b.L1 + b.LLC + b.Interconnect + b.MemCtrl + b.DRAM
}

// DataMovement returns the energy spent moving data: caches, interconnect,
// memory controller and DRAM (the paper's definition in §4.2.1).
func (b Breakdown) DataMovement() float64 {
	return b.L1 + b.LLC + b.Interconnect + b.MemCtrl + b.DRAM
}

// DataMovementFraction returns DataMovement()/Total(), or 0 when empty.
func (b Breakdown) DataMovementFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.DataMovement() / t
}

// Add returns the component-wise sum of b and other.
func (b Breakdown) Add(other Breakdown) Breakdown {
	return Breakdown{
		CPU:          b.CPU + other.CPU,
		PIM:          b.PIM + other.PIM,
		L1:           b.L1 + other.L1,
		LLC:          b.LLC + other.LLC,
		Interconnect: b.Interconnect + other.Interconnect,
		MemCtrl:      b.MemCtrl + other.MemCtrl,
		DRAM:         b.DRAM + other.DRAM,
	}
}

// Scale returns b with every component multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		CPU:          b.CPU * k,
		PIM:          b.PIM * k,
		L1:           b.L1 * k,
		LLC:          b.LLC * k,
		Interconnect: b.Interconnect * k,
		MemCtrl:      b.MemCtrl * k,
		DRAM:         b.DRAM * k,
	}
}
