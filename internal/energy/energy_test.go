package energy

import (
	"testing"
	"testing/quick"
)

func TestDefaultParamsSane(t *testing.T) {
	p := Default()
	// The accelerator is 20x more efficient than the CPU (paper §3.1).
	if got := p.CPUInstr / p.PIMAccOp; got < 19.9 || got > 20.1 {
		t.Errorf("CPU/accelerator efficiency ratio = %.1f, want 20", got)
	}
	// The PIM core is cheaper per instruction than the OoO SoC core.
	if p.PIMCoreInstr >= p.CPUInstr {
		t.Error("PIM core must be cheaper per instruction than the SoC core")
	}
	// Moving a byte inside the stack must cost less than over the off-chip
	// path (the paper's entire premise).
	offChip := p.InterconnectByte + p.MemCtrlByte + p.DRAMByte
	inStack := p.StackDRAMByte + p.StackLinkByte
	if inStack >= offChip {
		t.Errorf("in-stack byte (%.0f pJ) not cheaper than off-chip (%.0f pJ)", inStack, offChip)
	}
	if inStack*3 > offChip*2 {
		t.Errorf("in-stack/off-chip ratio %.2f too close to 1 to reproduce the paper's savings", inStack/offChip)
	}
	// Cache access energies ordered by structure size.
	if !(p.PIMBufRef < p.L1Ref && p.L1Ref < p.L2Access) {
		t.Error("SRAM energies must order buffer < L1 < L2")
	}
}

func TestBreakdownTotals(t *testing.T) {
	b := Breakdown{CPU: 1, PIM: 2, L1: 3, LLC: 4, Interconnect: 5, MemCtrl: 6, DRAM: 7}
	if b.Total() != 28 {
		t.Errorf("Total = %v, want 28", b.Total())
	}
	if b.DataMovement() != 25 {
		t.Errorf("DataMovement = %v, want 25 (everything except CPU+PIM)", b.DataMovement())
	}
	if got := b.DataMovementFraction(); got != 25.0/28 {
		t.Errorf("DataMovementFraction = %v", got)
	}
	var zero Breakdown
	if zero.DataMovementFraction() != 0 {
		t.Error("zero breakdown fraction should be 0")
	}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{CPU: 1, L1: 2, DRAM: 3}
	b := Breakdown{CPU: 10, LLC: 5}
	sum := a.Add(b)
	if sum.CPU != 11 || sum.L1 != 2 || sum.LLC != 5 || sum.DRAM != 3 {
		t.Errorf("Add = %+v", sum)
	}
	s := a.Scale(2)
	if s.CPU != 2 || s.L1 != 4 || s.DRAM != 6 {
		t.Errorf("Scale = %+v", s)
	}
}

// Property: Add is commutative and Total distributes over Add (energies
// are non-negative and bounded in practice, so inputs are mapped into a
// physical range).
func TestQuickBreakdownAlgebra(t *testing.T) {
	f := func(a, b [7]uint32) bool {
		x := Breakdown{float64(a[0]), float64(a[1]), float64(a[2]), float64(a[3]), float64(a[4]), float64(a[5]), float64(a[6])}
		y := Breakdown{float64(b[0]), float64(b[1]), float64(b[2]), float64(b[3]), float64(b[4]), float64(b[5]), float64(b[6])}
		lhs := x.Add(y)
		rhs := y.Add(x)
		if lhs != rhs {
			return false
		}
		return almostEqual(lhs.Total(), x.Total()+y.Total())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
