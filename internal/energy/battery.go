package energy

// Battery-life projection. The paper's motivation (§1) is that lithium-ion
// capacity has only doubled in twenty years while workload demands grow,
// making system energy the binding constraint; this model turns the
// evaluated energy reductions into the quantity a consumer device vendor
// actually ships: hours of use.

// Battery describes a consumer device battery.
type Battery struct {
	// CapacityWh is the usable capacity in watt-hours. A Chromebook-class
	// device carries ~40 Wh; a phone ~12 Wh.
	CapacityWh float64
}

// ChromebookBattery returns the battery of the paper's test device class.
func ChromebookBattery() Battery { return Battery{CapacityWh: 40} }

// PhoneBattery returns a phone-class battery.
func PhoneBattery() Battery { return Battery{CapacityWh: 12} }

// Hours returns how long the battery sustains the given average system
// power draw in watts.
func (b Battery) Hours(watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return b.CapacityWh / watts
}

// LifeExtension returns the battery-life multiplier obtained by reducing
// the energy of a workload that accounts for `share` of the device's total
// power draw by `reduction` (both in 0..1). The rest of the system (display,
// radios, sensors) is unaffected — which is why a 55% compute-energy
// reduction does not double battery life.
func LifeExtension(share, reduction float64) float64 {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	if reduction < 0 {
		reduction = 0
	}
	if reduction > 1 {
		reduction = 1
	}
	remaining := 1 - share*reduction
	if remaining <= 0 {
		return 0
	}
	return 1 / remaining
}
