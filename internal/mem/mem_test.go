package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 100)
	b := s.Alloc("b", PageSize+1)
	c := s.Alloc("c", 0)

	for _, buf := range []*Buffer{a, b, c} {
		if buf.Base%PageSize != 0 {
			t.Errorf("%s base %#x not page aligned", buf.Name, buf.Base)
		}
	}
	if a.Base == 0 {
		t.Error("first allocation at address zero")
	}
	if a.Base+uint64(len(a.Data)) > b.Base {
		t.Errorf("a [%#x,+%d) overlaps b at %#x", a.Base, len(a.Data), b.Base)
	}
	if b.Base+uint64(len(b.Data)) > c.Base {
		t.Errorf("b [%#x,+%d) overlaps c at %#x", b.Base, len(b.Data), c.Base)
	}
	if got := s.Footprint(); got != uint64(100+PageSize+1) {
		t.Errorf("Footprint = %d, want %d", got, 100+PageSize+1)
	}
	if len(s.Buffers()) != 3 {
		t.Errorf("Buffers() returned %d entries, want 3", len(s.Buffers()))
	}
}

func TestAllocNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(-1) did not panic")
		}
	}()
	NewSpace().Alloc("bad", -1)
}

func TestBufferAddr(t *testing.T) {
	s := NewSpace()
	b := s.Alloc("b", 128)
	if b.Addr(0) != b.Base {
		t.Errorf("Addr(0) = %#x, want %#x", b.Addr(0), b.Base)
	}
	if b.Addr(100) != b.Base+100 {
		t.Errorf("Addr(100) = %#x, want %#x", b.Addr(100), b.Base+100)
	}
	if b.Len() != 128 {
		t.Errorf("Len = %d, want 128", b.Len())
	}
}

func TestLines(t *testing.T) {
	cases := []struct {
		addr uint64
		n    int
		want int
	}{
		{0, 0, 0},
		{0, -5, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{64, 64, 1},
		{10, 128, 3},
	}
	for _, c := range cases {
		if got := Lines(c.addr, c.n); got != c.want {
			t.Errorf("Lines(%d, %d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestLineAddr(t *testing.T) {
	if got := LineAddr(0); got != 0 {
		t.Errorf("LineAddr(0) = %d", got)
	}
	if got := LineAddr(63); got != 0 {
		t.Errorf("LineAddr(63) = %d, want 0", got)
	}
	if got := LineAddr(64); got != 64 {
		t.Errorf("LineAddr(64) = %d, want 64", got)
	}
	if got := LineAddr(130); got != 128 {
		t.Errorf("LineAddr(130) = %d, want 128", got)
	}
}

// Property: Lines always matches a direct enumeration of line addresses.
func TestLinesMatchesEnumeration(t *testing.T) {
	f := func(addr uint32, n uint16) bool {
		a := uint64(addr)
		count := 0
		for off := 0; off < int(n); off++ {
			if (a+uint64(off))%LineSize == 0 || off == 0 {
				count++
			}
		}
		return Lines(a, int(n)) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: allocations never overlap, for arbitrary size sequences.
func TestAllocNeverOverlaps(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace()
		var prevEnd uint64
		for i, sz := range sizes {
			b := s.Alloc("buf", int(sz))
			if b.Base < prevEnd {
				return false
			}
			if b.Base%PageSize != 0 {
				return false
			}
			prevEnd = b.Base + uint64(len(b.Data))
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
