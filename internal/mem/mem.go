// Package mem provides the simulated physical address space used by the
// workload characterization pipeline.
//
// Workload kernels operate on real host memory (the Data slice of a Buffer)
// while reporting the addresses they touch to a Tracer. Addresses live in a
// flat simulated physical address space managed by a Space, so that the cache
// and DRAM models see realistic conflict and locality behaviour (distinct
// buffers never alias, allocations are page aligned, and large buffers span
// many cache sets and DRAM rows).
package mem

import "fmt"

// LineSize is the cache line size, in bytes, used throughout the system
// model. The paper's platform (Intel Celeron N3060 SoC) uses 64-byte lines.
const LineSize = 64

// PageSize is the allocation granularity of a Space. 4 KiB matches both the
// OS page size and the texture tile size used by the graphics driver.
const PageSize = 4096

// Tracer receives memory accesses performed by an instrumented kernel.
// Implementations must tolerate spans that cross cache-line boundaries;
// splitting into line-sized events is the tracer's job.
type Tracer interface {
	// Load records a read of n bytes starting at addr.
	Load(addr uint64, n int)
	// Store records a write of n bytes starting at addr.
	Store(addr uint64, n int)
}

// SpanTracer extends Tracer with strided-rectangle entry points: one call
// covering `rows` spans of rowBytes each, stride bytes apart. The contract
// is strict equivalence — LoadSpan(addr, rowBytes, rows, stride) must
// record exactly the events of rows successive Load calls, in the same
// order — so implementations may use it purely as a batching fast lane
// (fewer dispatches, hoisted per-call work) without changing any modeled
// statistic. cache.Hierarchy implements it.
type SpanTracer interface {
	Tracer
	// LoadSpan records rows reads of rowBytes each, stride bytes apart.
	LoadSpan(addr uint64, rowBytes, rows int, stride uint64)
	// StoreSpan records rows writes of rowBytes each, stride bytes apart.
	StoreSpan(addr uint64, rowBytes, rows int, stride uint64)
}

// NopTracer discards all accesses. It is useful for running a kernel purely
// for its functional result.
type NopTracer struct{}

// Load implements Tracer.
func (NopTracer) Load(addr uint64, n int) {}

// Store implements Tracer.
func (NopTracer) Store(addr uint64, n int) {}

// LoadSpan implements SpanTracer.
func (NopTracer) LoadSpan(addr uint64, rowBytes, rows int, stride uint64) {}

// StoreSpan implements SpanTracer.
func (NopTracer) StoreSpan(addr uint64, rowBytes, rows int, stride uint64) {}

// Space is a simulated physical address space. The zero value is not usable;
// call NewSpace. Space is not safe for concurrent use.
type Space struct {
	next    uint64
	buffers []*Buffer
}

// NewSpace returns an empty address space. The first allocation is placed
// above address zero so that a zero address can be treated as invalid.
func NewSpace() *Space {
	return &Space{next: PageSize}
}

// Alloc reserves size bytes of page-aligned simulated memory backed by a
// fresh host slice. The name is used only for diagnostics.
func (s *Space) Alloc(name string, size int) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative allocation %q (%d bytes)", name, size))
	}
	b := &Buffer{
		Name: name,
		Base: s.next,
		Data: make([]byte, size),
	}
	pages := (uint64(size) + PageSize - 1) / PageSize
	if pages == 0 {
		pages = 1
	}
	s.next += pages * PageSize
	s.buffers = append(s.buffers, b)
	return b
}

// Footprint returns the total number of simulated bytes allocated so far.
func (s *Space) Footprint() uint64 {
	var total uint64
	for _, b := range s.buffers {
		total += uint64(len(b.Data))
	}
	return total
}

// Buffers returns the allocations made so far, in allocation order. The
// returned slice is shared; callers must not modify it.
func (s *Space) Buffers() []*Buffer { return s.buffers }

// Buffer is a named, page-aligned region of simulated memory backed by host
// memory. Kernels compute on Data and report accesses via the owning
// machine's Tracer using Addr to translate offsets.
type Buffer struct {
	Name string
	Base uint64
	Data []byte
}

// Addr returns the simulated address of byte offset off within the buffer.
func (b *Buffer) Addr(off int) uint64 {
	return b.Base + uint64(off)
}

// BufferAt returns a detached buffer handle at a fixed base address with no
// backing data. Trace replay re-issues recorded accesses through such
// handles: the cache models only consume addresses, so the original data
// never needs to be materialized.
func BufferAt(name string, base uint64) *Buffer {
	return &Buffer{Name: name, Base: base}
}

// Len returns the buffer length in bytes.
func (b *Buffer) Len() int { return len(b.Data) }

// Lines returns the number of cache lines a span of n bytes starting at addr
// touches.
func Lines(addr uint64, n int) int {
	if n <= 0 {
		return 0
	}
	first := addr / LineSize
	last := (addr + uint64(n) - 1) / LineSize
	return int(last - first + 1)
}

// LineAddr returns the address of the cache line containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }
