package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ReportVersion is the run report's schema version. Bump it on any
// incompatible change to Report's shape so downstream consumers (the bench
// harness, CI's checkreport gate) can reject reports they do not
// understand instead of misreading them.
const ReportVersion = 1

// Source prefixes under which the trace-layer components export their
// counters (see Registry.AddSource); the derived metrics below and every
// report consumer key on these.
const (
	PrefixTraceCache = "trace.cache."
	PrefixTraceStore = "trace.store."
)

// ExperimentTime is one experiment's wall time within a run.
type ExperimentTime struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
}

// RunMeta identifies the run a report describes.
type RunMeta struct {
	Command      string `json:"command"` // "run", "explore", "trace pack", ...
	Scale        string `json:"scale"`
	ReplayEngine string `json:"replay_engine"`
	Workers      int    `json:"workers"` // resolved worker count
	Configs      int    `json:"configs,omitempty"`
}

// Derived is the report's headline ratios, precomputed from the raw
// counters so consumers (CI gates, the bench harness) do not each re-derive
// them — and so the derivations are defined in exactly one place.
type Derived struct {
	// TraceCacheHitRate is memoized-result hits / all profile requests.
	TraceCacheHitRate float64 `json:"trace_cache_hit_rate"`
	// StoreHitRate is store loads served from disk / all store loads.
	StoreHitRate float64 `json:"store_hit_rate"`
	// WorkerUtilization is pool busy time / (busy + idle) across workers.
	WorkerUtilization float64 `json:"worker_utilization"`
	// KernelExecutions counts kernels that actually ran (trace recordings
	// plus unkeyed direct executions) — 0 on a fully warm run, which CI
	// asserts to keep PR 6's "cold ≈ warm" claim continuously true.
	KernelExecutions int64 `json:"kernel_executions"`
}

// Report is the versioned, machine-readable end-of-run record: run
// identity, total and per-experiment wall time, every metric the registry
// holds (including phase-timing histograms and source-exported cache/store
// counters), and the derived headline ratios.
type Report struct {
	Version     int              `json:"version"`
	Meta        RunMeta          `json:"meta"`
	WallNS      int64            `json:"wall_ns"`
	Experiments []ExperimentTime `json:"experiments,omitempty"`
	Metrics     Snapshot         `json:"metrics"`
	Derived     Derived          `json:"derived"`
}

// ratio returns num/den, 0 when den is 0.
func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// BuildReport assembles a report from the registry's current state.
func BuildReport(r *Registry, meta RunMeta, wallNS int64, experiments []ExperimentTime) *Report {
	snap := r.Snapshot()
	c := snap.Counters
	cache := func(name string) int64 { return c[PrefixTraceCache+name] }
	store := func(name string) int64 { return c[PrefixTraceStore+name] }
	return &Report{
		Version:     ReportVersion,
		Meta:        meta,
		WallNS:      wallNS,
		Experiments: experiments,
		Metrics:     snap,
		Derived: Derived{
			TraceCacheHitRate: ratio(cache("hits"), cache("requests")),
			StoreHitRate:      ratio(store("hits"), store("hits")+store("misses")+store("corrupt")),
			WorkerUtilization: ratio(c["par.worker.busy_ns"], c["par.worker.busy_ns"]+c["par.worker.idle_ns"]),
			KernelExecutions:  cache("records") + cache("misses"),
		},
	}
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report as JSON to path.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: writing report: %w", err)
	}
	err = rep.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ms renders nanoseconds as milliseconds with sub-ms precision.
func ms(ns int64) string { return fmt.Sprintf("%.1f ms", float64(ns)/1e6) }

// pct renders a ratio as a percentage.
func pct(r float64) string { return fmt.Sprintf("%.1f%%", r*100) }

// WriteText writes the human-readable -stats breakdown. It must never be
// pointed at os.Stdout (experiment output is byte-gated); the obsout
// analyzer enforces that at every call site.
func (rep *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== pimsim run report (v%d) ==\n", rep.Version)
	fmt.Fprintf(w, "command: %s  scale: %s  replay: %s  workers: %d",
		rep.Meta.Command, rep.Meta.Scale, rep.Meta.ReplayEngine, rep.Meta.Workers)
	if rep.Meta.Configs > 0 {
		fmt.Fprintf(w, "  configs: %d", rep.Meta.Configs)
	}
	fmt.Fprintf(w, "\nwall time: %s\n", ms(rep.WallNS))

	c := rep.Metrics.Counters
	cache := func(name string) int64 { return c[PrefixTraceCache+name] }
	store := func(name string) int64 { return c[PrefixTraceStore+name] }

	if n := len(rep.Metrics.Histograms); n > 0 {
		fmt.Fprintf(w, "phases (%d):\n", n)
		for _, name := range sortedNames(rep.Metrics.Histograms) {
			h := rep.Metrics.Histograms[name]
			fmt.Fprintf(w, "  %-24s n=%-6d total=%-12s mean=%s\n",
				name, h.Count, ms(h.Sum), ms(int64(h.Mean())))
		}
	}
	if cache("requests") > 0 {
		fmt.Fprintf(w, "trace cache: %s hit rate (%d hits / %d requests), %d records, %d replays, %d store hits, %d evictions, %d bytes resident\n",
			pct(rep.Derived.TraceCacheHitRate), cache("hits"), cache("requests"),
			cache("records"), cache("replays"), cache("store_hits"), cache("evictions"),
			cache("mem_bytes"))
	}
	if loads := store("hits") + store("misses") + store("corrupt"); loads > 0 || store("saves") > 0 {
		fmt.Fprintf(w, "trace store: %s hit rate (%d hits, %d misses, %d corrupt), %d saves, %d save errors\n",
			pct(rep.Derived.StoreHitRate), store("hits"), store("misses"), store("corrupt"),
			store("saves"), store("save_errors"))
	}
	if busy := c["par.worker.busy_ns"]; busy > 0 {
		fmt.Fprintf(w, "workers: %s busy (busy %s, idle %s)\n",
			pct(rep.Derived.WorkerUtilization), ms(busy), ms(c["par.worker.idle_ns"]))
	}
	if len(rep.Experiments) > 0 {
		byTime := append([]ExperimentTime(nil), rep.Experiments...)
		sort.Slice(byTime, func(i, j int) bool {
			if byTime[i].WallNS != byTime[j].WallNS {
				return byTime[i].WallNS > byTime[j].WallNS
			}
			return byTime[i].Name < byTime[j].Name
		})
		top := byTime
		if len(top) > 5 {
			top = top[:5]
		}
		parts := make([]string, len(top))
		for i, e := range top {
			parts[i] = fmt.Sprintf("%s %s", e.Name, ms(e.WallNS))
		}
		fmt.Fprintf(w, "experiments: %d computed; slowest: %s\n", len(rep.Experiments), strings.Join(parts, ", "))
	}
	fmt.Fprintf(w, "kernel executions: %d\n", rep.Derived.KernelExecutions)
}
