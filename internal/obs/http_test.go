package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServeHealthz(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	var status map[string]string
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if status["status"] != "ok" {
		t.Fatalf("healthz = %+v", status)
	}
}

// TestServeMetricsMidRun polls /metrics while goroutines are actively
// mutating the registry — the live-monitoring scenario — and validates the
// response parses into the Snapshot schema with coherent values.
func TestServeMetricsMidRun(t *testing.T) {
	reg := NewRegistry()
	reg.AddSource(PrefixTraceCache, sourceFunc(func(emit func(string, int64)) {
		emit("hits", 42)
	}))
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); !stop.Load(); i++ {
				reg.Counter("explore.batch_walks_done").Add(1)
				reg.Gauge("explore.configs").Set(128)
				reg.Histogram("phase.replay.batch").Observe(i % 4096)
			}
		}()
	}

	url := "http://" + s.Addr() + "/metrics"
	for poll := 0; poll < 5; poll++ {
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("metrics status = %d", code)
		}
		var snap Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("metrics response is not a Snapshot: %v\n%s", err, body)
		}
		if snap.Counters == nil || snap.Gauges == nil {
			t.Fatalf("snapshot missing maps: %s", body)
		}
		if snap.Counters[PrefixTraceCache+"hits"] != 42 {
			t.Fatalf("source counter missing from live snapshot: %+v", snap.Counters)
		}
		// Mid-run the snapshot tears (count and buckets are separate
		// atomics), so only structural checks here; the exact sum
		// invariant is asserted below once the writers quiesce.
		if h, ok := snap.Histograms["phase.replay.batch"]; ok {
			if h.Count <= 0 || h.Sum < 0 {
				t.Fatalf("implausible live histogram: %+v", h)
			}
			for _, b := range h.Buckets {
				if b.Count <= 0 {
					t.Fatalf("empty bucket serialized: %+v", h.Buckets)
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// After the writers stop, progress must be visible and monotone.
	_, body := get(t, url)
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["explore.batch_walks_done"] <= 0 {
		t.Fatalf("no progress recorded: %+v", snap.Counters)
	}
	if snap.Gauges["explore.configs"] != 128 {
		t.Fatalf("gauge = %d, want 128", snap.Gauges["explore.configs"])
	}
	if h, ok := snap.Histograms["phase.replay.batch"]; ok {
		var bucketSum int64
		for _, b := range h.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != h.Count {
			t.Fatalf("quiesced bucket sum %d != count %d", bucketSum, h.Count)
		}
	}
}

func TestServeRejectsNonGet(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Post("http://"+s.Addr()+"/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d, want 405", resp.StatusCode)
	}
}

func TestServeCloseIdempotent(t *testing.T) {
	s, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	if got := nilSrv.Addr(); got != "" {
		t.Fatalf("nil Addr = %q", got)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewRegistry()); err == nil {
		t.Fatal("expected error for unusable address")
	}
}
