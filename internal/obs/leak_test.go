package obs

import (
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the process goroutine count drops back to
// at most base, failing after a generous deadline. Polling (rather than a
// single read) absorbs scheduler lag between a join returning and the
// joined goroutine's stack actually retiring.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeCloseLeaksNoGoroutines pins the Server shutdown contract: after
// Close returns, the serve goroutine and every request handler have
// exited. Runs in -short mode — it is the cheap gate for the leak class
// the race job cannot see.
func TestServeCloseLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s, err := Serve("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			get(t, "http://"+s.Addr()+"/metrics")
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	settleGoroutines(t, base)
}
