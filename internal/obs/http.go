package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Server serves live registry snapshots over HTTP:
//
//	GET /metrics  -> Snapshot as JSON (counters incl. Source-exported,
//	                 gauges, histograms)
//	GET /healthz  -> {"status":"ok"}
//
// It is the seed of the pimsimd service surface: a background goroutine
// that can be polled mid-run without perturbing the simulation.
type Server struct {
	reg      *Registry
	addr     net.Addr
	listener net.Listener
	srv      *http.Server
	done     chan struct{}

	// handlers counts in-flight request handlers. net/http runs each one
	// on its own goroutine and Server.Close does not wait for them, so
	// without this Close could return while a snapshot encode still runs —
	// a goroutine leak per straggling request once pimsimd keeps the
	// process alive.
	handlers sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	serveErr error
}

// Serve starts serving snapshots of reg on addr (host:port; port 0 picks a
// free port — read the resolved address from Addr). The listener is bound
// synchronously, so a non-error return means /metrics is reachable.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{
		reg:      reg,
		addr:     ln.Addr(),
		listener: ln,
		done:     make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: s.tracked(mux)}
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the server's resolved listen address.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr.String()
}

// tracked wraps the mux so every in-flight handler is counted, giving
// Close a join for the goroutines net/http spawns per request.
func (s *Server) tracked(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.handlers.Add(1)
		defer s.handlers.Done()
		h.ServeHTTP(w, r)
	})
}

// Close stops the listener, waits for the serve goroutine to exit, and
// drains in-flight request handlers. Safe on nil and safe to call twice.
// The drain is bounded: srv.Close has already torn down every connection,
// so a handler mid-write fails fast instead of hanging on a stuck client.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.srv.Close()
	<-s.done
	s.handlers.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.serveErr
	}
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Headers are already out; an encode/write error here means the client
	// went away, which a metrics endpoint does not care about.
	_ = enc.Encode(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.reg.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}
