// Package obs is the simulator's observability layer: a concurrency-safe
// metrics registry (counters, gauges, log-bucketed histograms), lightweight
// timing spans wrapped around the pipeline's phases, a versioned
// machine-readable run report, and a live HTTP snapshot endpoint — the seed
// of the pimsimd service surface.
//
// Two rules govern everything here:
//
//   - Observation never changes results. All output goes to stderr, files,
//     or the HTTP listener; `pimsim run all` stdout is byte-identical with
//     instrumentation on or off (gated in scripts/check.sh), and the obsout
//     lint analyzer statically forbids os.Stdout in this package and in
//     -stats/report code paths.
//   - Observation is cheap enough to stay on. The hot-path primitives are
//     atomic adds with no allocation, and every entry point is nil-safe: a
//     nil *Registry (the default — no -stats/-report/-metrics-addr flag)
//     degrades to branch-predictable no-ops, so instrumented call sites cost
//     a nil check when observability is off.
//
// This package is also the one place in the simulator allowed to read the
// wall clock: spans measure the simulator, they never feed it, so no
// profile, trace, or rendered figure can depend on these reads (the
// nondeterm analyzer enforces the rest of the tree; the single suppression
// lives on nowNanos).
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nowNanos is the observability clock, the package's only wall-clock read.
func nowNanos() int64 {
	//lint:ignore nondeterm observability measures wall time; it never feeds simulator results
	return time.Now().UnixNano()
}

// Now returns the observability clock in nanoseconds. Instrumented
// packages (par, experiments) use it for interval arithmetic that would be
// too fine-grained for a Span, keeping every wall-clock read behind this
// package's single suppression point.
func Now() int64 { return nowNanos() }

// Since returns the nanoseconds elapsed since a Now() reading.
func Since(start int64) int64 { return nowNanos() - start }

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil Counter ignores adds, so call sites resolved from a nil
// Registry cost one branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric (queue depths, totals known up
// front). Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// values <= 0 and bucket i (1..64) holds values v with 2^(i-1) <= v < 2^i,
// so the index is simply bits.Len64(v). Fixed log-scale buckets make
// Observe a pair of atomic adds with no comparisons and give nanosecond
// spans ~2x resolution from 1 ns to ~580 years — plenty for phase timings.
const histBuckets = 65

// Histogram counts observations in fixed log2-scale buckets, tracking the
// exact count and sum alongside (so means are exact even though bucket
// boundaries are coarse). The zero value is ready to use; nil ignores
// observations.
type Histogram struct {
	count, sum atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

// bucketIndex returns the bucket for value v.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns bucket i's inclusive upper bound (its `le`).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return 1<<63 - 1
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Span is one in-flight timed region. It is a value: starting a span
// allocates nothing, and the zero Span (from a nil Registry) is a no-op.
type Span struct {
	h     *Histogram
	start int64
}

// End closes the span, recording its duration. Every Span begin must meet
// an End on all control-flow paths — the obsout analyzer enforces this
// statically, mirroring phasebalance: a leaked span records nothing and
// silently under-reports its phase.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(nowNanos() - s.start)
	}
}

// Source exports a component's internal counters into a snapshot. It is
// the bridge for subsystems that already keep their own atomics
// (trace.Cache, trace.Store): instead of double-counting on the hot path —
// or forcing the registry's map lookups into code that predates it — the
// registry pulls their values at snapshot time through this interface.
type Source interface {
	// MetricsInto emits every metric as a (name, value) pair. Values are
	// read with the component's own synchronization; emit must not be
	// retained.
	MetricsInto(emit func(name string, value int64))
}

// Registry is a concurrency-safe metrics namespace. Counters, gauges and
// histograms are created on first use and live for the registry's
// lifetime; attached Sources are polled at snapshot time. A nil *Registry
// is fully functional as a no-op: every method returns a nil-safe handle.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sources  []sourceEntry
}

type sourceEntry struct {
	prefix string
	src    Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) when r is nil; hot paths should resolve once and hold
// the handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for nil r).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil for
// nil r).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Span begins a timed region recorded into the named histogram on End. A
// nil registry returns the zero Span, whose End is a no-op, so the pattern
//
//	sp := reg.Span("phase.record")
//	...
//	sp.End()
//
// costs two nil checks when observability is off.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), start: nowNanos()}
}

// AddSource attaches a snapshot source; every metric it emits appears in
// snapshots under prefix+name. No-op on a nil registry.
func (r *Registry) AddSource(prefix string, src Source) {
	if r == nil || src == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, sourceEntry{prefix: prefix, src: src})
}

// Bucket is one non-empty histogram bucket: Count observations with values
// <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot reads the histogram's current state; only non-empty buckets are
// materialized (bucket index order, so the slice is always sorted by Le).
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{Le: BucketBound(i), Count: n})
		}
	}
	return hs
}

// Mean returns the exact mean observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a consistent-enough view of a registry: each value is read
// atomically (the set is not a transaction — fine for monitoring).
// Source-exported metrics land in Counters under their prefix.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state, polling every attached
// Source. A nil registry snapshots empty (never nil) maps.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	sources := append([]sourceEntry(nil), r.sources...)
	r.mu.RUnlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.snapshot()
	}
	for _, se := range sources {
		se.src.MetricsInto(func(name string, value int64) {
			snap.Counters[se.prefix+name] = value
		})
	}
	return snap
}

// sortedNames returns m's keys in sorted order — the blessed deterministic
// map iteration pattern, local to obs (which cannot import experiments).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		//lint:ignore nondeterm keys are fully sorted before any use
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
