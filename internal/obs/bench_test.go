package obs

import "testing"

// The hot-path budget: instrumentation must stay within 2% of any phase it
// wraps. The benchmarks below put numbers on the primitives — a counter add
// and a full span are each tens of nanoseconds, against phase durations of
// milliseconds — and on the off switch (nil receivers), which must cost no
// more than a branch.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkSpan times a full begin/end pair against a live registry with
// the handle pre-resolved the way instrumented call sites do it.
func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("bench.span").End()
	}
}

// BenchmarkSpanNil is the instrumentation-off cost: a span begun on a nil
// registry must degrade to a pair of predictable branches.
func BenchmarkSpanNil(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Span("bench.span").End()
	}
}
