package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp locks in the no-op path: every handle from a nil
// registry must be usable without panicking and observe nothing.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %d, want 0", got)
	}
	r.Histogram("h").Observe(42)
	sp := r.Span("phase.x")
	sp.End()
	r.AddSource("p.", sourceFunc(func(emit func(string, int64)) { emit("x", 1) }))
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

type sourceFunc func(emit func(string, int64))

func (f sourceFunc) MetricsInto(emit func(string, int64)) { f(emit) }

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("Counter did not return the same handle for the same name")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the log2 bucket layout: bucket 0
// holds v <= 0 and bucket i holds 2^(i-1) <= v < 2^i, with Le = 2^i - 1.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v   int64
		idx int
		le  int64 // BucketBound(idx)
	}{
		{-5, 0, 0},
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 3, 7},
		{7, 3, 7},
		{8, 4, 15},
		{1023, 10, 1023},
		{1024, 11, 2047},
		{1<<62 - 1, 62, 1<<62 - 1},
		{1 << 62, 63, 1<<63 - 1},
		{1<<63 - 1, 63, 1<<63 - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.idx)
		}
		if got := BucketBound(tc.idx); got != tc.le {
			t.Errorf("BucketBound(%d) = %d, want %d", tc.idx, got, tc.le)
		}
		if tc.v > tc.le {
			t.Errorf("value %d exceeds its bucket bound %d", tc.v, tc.le)
		}
	}
	// Every value must land in a bucket whose bound contains it and whose
	// predecessor's bound does not.
	for _, v := range []int64{1, 2, 5, 100, 999, 1e6, 1e12, 1<<63 - 1} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("v=%d above bound of its bucket %d", v, i)
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("v=%d also fits bucket %d", v, i-1)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("phase.test")
	for _, v := range []int64{1, 1, 3, 100, -2} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs, ok := snap.Histograms["phase.test"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 5 || hs.Sum != 103 {
		t.Fatalf("count/sum = %d/%d, want 5/103", hs.Count, hs.Sum)
	}
	if got, want := hs.Mean(), 103.0/5; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	// Buckets: -2 -> le 0; 1,1 -> le 1; 3 -> le 3; 100 -> le 127.
	want := []Bucket{{0, 1}, {1, 2}, {3, 1}, {127, 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range want {
		if hs.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, hs.Buckets[i], b)
		}
	}
}

func TestSpanRecordsNonNegativeDuration(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("phase.unit")
	sp.End()
	hs := r.Snapshot().Histograms["phase.unit"]
	if hs.Count != 1 {
		t.Fatalf("span count = %d, want 1", hs.Count)
	}
	if hs.Sum < 0 {
		t.Fatalf("span recorded negative duration %d", hs.Sum)
	}
}

func TestSnapshotPollsSources(t *testing.T) {
	r := NewRegistry()
	r.AddSource("trace.cache.", sourceFunc(func(emit func(string, int64)) {
		emit("hits", 9)
		emit("misses", 1)
	}))
	snap := r.Snapshot()
	if snap.Counters["trace.cache.hits"] != 9 || snap.Counters["trace.cache.misses"] != 1 {
		t.Fatalf("source metrics missing: %+v", snap.Counters)
	}
}

// TestRegistryConcurrency hammers every registry surface from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.AddSource("src.", sourceFunc(func(emit func(string, int64)) { emit("v", 1) }))
	const goroutines = 16
	const iters = 2000
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(g+i)%len(names)]
				r.Counter(name).Add(1)
				r.Gauge(name).Set(int64(i))
				r.Histogram(name).Observe(int64(i % 1000))
				sp := r.Span("phase." + name)
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, n := range names {
		total += snap.Counters[n]
	}
	if want := int64(goroutines * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	for _, n := range names {
		h := snap.Histograms[n]
		var bucketSum int64
		for _, b := range h.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != h.Count {
			t.Fatalf("histogram %q bucket sum %d != count %d", n, bucketSum, h.Count)
		}
	}
}

func TestBuildReportDerived(t *testing.T) {
	r := NewRegistry()
	r.AddSource(PrefixTraceCache, sourceFunc(func(emit func(string, int64)) {
		emit("requests", 100)
		emit("hits", 80)
		emit("misses", 5)
		emit("records", 15)
	}))
	r.AddSource(PrefixTraceStore, sourceFunc(func(emit func(string, int64)) {
		emit("hits", 6)
		emit("misses", 2)
		emit("corrupt", 0)
	}))
	r.Counter("par.worker.busy_ns").Add(900)
	r.Counter("par.worker.idle_ns").Add(100)
	rep := BuildReport(r, RunMeta{Command: "run", Scale: "quick", ReplayEngine: "compiled", Workers: 4}, 1234,
		[]ExperimentTime{{Name: "fig5", WallNS: 10}})
	if rep.Version != ReportVersion {
		t.Fatalf("version = %d, want %d", rep.Version, ReportVersion)
	}
	if got := rep.Derived.TraceCacheHitRate; got != 0.8 {
		t.Fatalf("cache hit rate = %v, want 0.8", got)
	}
	if got := rep.Derived.StoreHitRate; got != 0.75 {
		t.Fatalf("store hit rate = %v, want 0.75", got)
	}
	if got := rep.Derived.WorkerUtilization; got != 0.9 {
		t.Fatalf("worker utilization = %v, want 0.9", got)
	}
	if got := rep.Derived.KernelExecutions; got != 20 {
		t.Fatalf("kernel executions = %d, want 20", got)
	}
}

func TestBuildReportEmptyRegistryNoNaN(t *testing.T) {
	rep := BuildReport(NewRegistry(), RunMeta{Command: "run"}, 0, nil)
	d := rep.Derived
	for _, v := range []float64{d.TraceCacheHitRate, d.StoreHitRate, d.WorkerUtilization} {
		if v != 0 {
			t.Fatalf("empty-registry derived metric = %v, want 0", v)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	r.Histogram("phase.p").Observe(5)
	rep := BuildReport(r, RunMeta{Command: "explore", Configs: 3}, 99, nil)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Version != ReportVersion || back.Meta.Configs != 3 || back.WallNS != 99 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.Metrics.Counters["x"] != 1 {
		t.Fatalf("counters lost in round-trip: %+v", back.Metrics.Counters)
	}
}

func TestReportWriteTextMentionsKeySections(t *testing.T) {
	r := NewRegistry()
	r.AddSource(PrefixTraceCache, sourceFunc(func(emit func(string, int64)) {
		emit("requests", 10)
		emit("hits", 10)
	}))
	r.Histogram("phase.replay.compiled").Observe(1000)
	rep := BuildReport(r, RunMeta{Command: "run", Scale: "quick", ReplayEngine: "compiled", Workers: 2}, 5e6,
		[]ExperimentTime{{Name: "fig5", WallNS: 2e6}, {Name: "fig9", WallNS: 3e6}})
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"pimsim run report",
		"phase.replay.compiled",
		"trace cache: 100.0% hit rate",
		"kernel executions: 0",
		"fig9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats text missing %q:\n%s", want, out)
		}
	}
}
