package lint

import "testing"

// loadGraph builds the call graph over the callgraph fixture.
func loadGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkg := loadFixture(t, "callgraph")
	return BuildCallGraph([]*Package{pkg})
}

// findNode locates a node by its diagnostic name (pkg.Func or
// pkg.Recv.Method).
func findNode(t *testing.T, g *CallGraph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s in graph (have %v)", name, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) []string {
	var out []string
	for _, n := range g.Nodes() {
		out = append(out, n.Name())
	}
	return out
}

// edgesTo returns the kinds of from's edges into to.
func edgesTo(from, to *Node) []EdgeKind {
	var kinds []EdgeKind
	for _, e := range from.Out {
		if e.To == to {
			kinds = append(kinds, e.Kind)
		}
	}
	return kinds
}

func hasEdge(from, to *Node, kind EdgeKind) bool {
	for _, k := range edgesTo(from, to) {
		if k == kind {
			return true
		}
	}
	return false
}

func TestCallGraphDirectCall(t *testing.T) {
	g := loadGraph(t)
	direct := findNode(t, g, "callgraph.direct")
	leaf := findNode(t, g, "callgraph.leaf")
	if !hasEdge(direct, leaf, EdgeCall) {
		t.Errorf("direct -> leaf: want an EdgeCall, got %v", edgesTo(direct, leaf))
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadGraph(t)
	via := findNode(t, g, "callgraph.viaInterface")
	doA := findNode(t, g, "callgraph.impA.Do")
	doB := findNode(t, g, "callgraph.impB.Do")
	// The d.Do() call must fan out to both implementations — impA by value
	// receiver, impB by pointer receiver.
	if !hasEdge(via, doA, EdgeInterface) {
		t.Errorf("viaInterface -> impA.Do: want an EdgeInterface, got %v", edgesTo(via, doA))
	}
	if !hasEdge(via, doB, EdgeInterface) {
		t.Errorf("viaInterface -> impB.Do: want an EdgeInterface, got %v", edgesTo(via, doB))
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g := loadGraph(t)
	mv := findNode(t, g, "callgraph.methodValue")
	get := findNode(t, g, "callgraph.box.get")
	// f := b.get references the method; f() resolves dynamically back to it
	// (the receiver moves out of the value signature, so func() int matches).
	if !hasEdge(mv, get, EdgeRef) {
		t.Errorf("methodValue -> box.get: want an EdgeRef for the bound-method value, got %v", edgesTo(mv, get))
	}
	if !hasEdge(mv, get, EdgeDynamic) {
		t.Errorf("methodValue -> box.get: want an EdgeDynamic for the f() call, got %v", edgesTo(mv, get))
	}
}

func TestCallGraphDeferredCall(t *testing.T) {
	g := loadGraph(t)
	def := findNode(t, g, "callgraph.deferred")
	cleanup := findNode(t, g, "callgraph.cleanup")
	if !hasEdge(def, cleanup, EdgeCall) {
		t.Errorf("deferred -> cleanup: want an EdgeCall for the defer site, got %v", edgesTo(def, cleanup))
	}
}

func TestCallGraphReachAndChain(t *testing.T) {
	g := loadGraph(t)
	via := findNode(t, g, "callgraph.viaInterface")
	doA := findNode(t, g, "callgraph.impA.Do")
	leaf := findNode(t, g, "callgraph.leaf")

	w := g.Reach([]*Node{via}, nil)
	if !w.Reachable(doA) {
		t.Fatal("impA.Do should be reachable from viaInterface")
	}
	if w.Reachable(leaf) {
		t.Error("leaf must not be reachable from viaInterface")
	}
	got := ChainString(w.Chain(doA))
	want := "callgraph.viaInterface [calls via interface] -> callgraph.impA.Do"
	if got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}

	// Restricting the walk to direct-call edges prunes the interface hop.
	direct := g.Reach([]*Node{via}, func(k EdgeKind) bool { return k == EdgeCall })
	if direct.Reachable(doA) {
		t.Error("impA.Do must not be reachable over EdgeCall only")
	}
}
