package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path ("gopim/internal/vp9")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages on stdlib machinery
// alone: module packages are compiled from source by the loader itself and
// everything else (the standard library) is resolved by go/importer's
// "source" importer, so no export data or external tooling is needed.
type Loader struct {
	ModRoot string
	ModPath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	// loading guards against import cycles while recursing.
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module packages load from source,
// everything else goes to the standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package with the given import
// path (and, transitively, its module dependencies), memoizing results.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.loadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir type-checks the package in dir under the given import path. It
// exists for fixture packages (testdata) that must be analyzed as if they
// lived at an in-scope module path.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFilesIn lists the buildable, non-test Go files of dir, sorted. Test
// files are excluded: the analyzers encode invariants of the simulator
// itself, and loading external (_test package) files would require a
// second type-checking universe for no coverage gain.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll loads every package of the module (skipping testdata and hidden
// directories), returning them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// FileCount returns how many files the loaded packages span.
func FileCount(pkgs []*Package) int {
	n := 0
	for _, p := range pkgs {
		n += len(p.Files)
	}
	return n
}
