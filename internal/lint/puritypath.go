package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PuritypathAnalyzer is the interprocedural closure of nondeterm: any
// function transitively reachable from a determinism-critical entry point —
// Trace.Replay* (the replay engines), kernel Run bodies, or the
// experiments.RunAll renderers — must not reach wall-clock reads, the
// global math/rand source, environment lookups, or order-sensitive map
// iteration. nondeterm flags those primitives wherever they occur in
// simulator packages; puritypath proves the transitive property the
// byte-identity gates depend on, across package boundaries and dynamic
// calls, and prints the full call chain from entry point to violation so
// a finding two frames below a replay path is diagnosable at a glance.
//
// gopim/internal/obs is a sanctioned boundary: it is the one package
// allowed to read the wall clock (observation measures the simulator, it
// never feeds it — enforced separately by obsout and the byte-identity
// gate), so sinks inside it are not reported.
var PuritypathAnalyzer = &Analyzer{
	Name:   "puritypath",
	Doc:    "forbids wall-clock, global rand, env reads, and unsorted map iteration anywhere reachable from replay/kernel/render entry points, with the full call chain in the diagnostic",
	Run:    runPuritypath,
	Module: true,
}

// obsPkgPath is the sanctioned wall-clock boundary package.
const obsPkgPath = "gopim/internal/obs"

// determinismEntries returns the call-graph roots whose transitive
// closure must stay deterministic:
//
//   - methods named Replay* in gopim/internal/trace (the replay engines);
//   - kernel Run bodies: methods named Run taking a single *Ctx parameter
//     (the profile.Kernel shape);
//   - the experiments.RunAll render column: address-taken functions in
//     gopim/experiments with the Runner.Render signature
//     func(io.Writer, any) error.
func determinismEntries(g *CallGraph) []*Node {
	var roots []*Node
	for _, n := range g.Nodes() {
		if isDeterminismEntry(n) {
			roots = append(roots, n)
		}
	}
	return roots
}

func isDeterminismEntry(n *Node) bool {
	fn := n.Func
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	// Replay engines: Replay* methods in the trace package.
	if sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Replay") &&
		strings.HasPrefix(pkgPath, "gopim/internal/trace") {
		return true
	}
	// Kernel bodies: method Run(ctx *Ctx) — the profile.Kernel shape.
	if sig.Recv() != nil && fn.Name() == "Run" && sig.Params().Len() == 1 {
		if ptr, ok := sig.Params().At(0).Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Ctx" {
				return true
			}
		}
	}
	// RunAll renderers: Runner.Render-shaped functions in experiments.
	if pkgPath == "gopim/experiments" && sig.Recv() == nil && isRenderSig(sig) {
		return true
	}
	return false
}

// isRenderSig reports whether sig is func(io.Writer, any) error.
func isRenderSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || p0.Obj().Pkg() == nil || p0.Obj().Pkg().Path() != "io" || p0.Obj().Name() != "Writer" {
		return false
	}
	if iface, ok := sig.Params().At(1).Type().(*types.Interface); !ok || !iface.Empty() {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error"
}

// puritySink is one nondeterministic primitive found in a function body.
type puritySink struct {
	pos  token.Pos
	desc string
}

func runPuritypath(pass *Pass) {
	roots := determinismEntries(pass.Graph)
	if len(roots) == 0 {
		return
	}
	walk := pass.Graph.Reach(roots, nil) // all edge kinds: conservative closure

	// nondetermIgnored marks file:line positions whose map-iteration sink
	// already carries a nondeterm suppression: the justification ("keys
	// fully sorted before use") neutralizes the nondeterminism itself, so
	// puritypath accepts it too. Wall-clock/env/rand suppressions are NOT
	// honored transitively — a claim that a clock read doesn't feed results
	// needs its own puritypath justification when it sits on a replay path.
	nondetermIgnored := map[string]map[int]bool{}
	for _, pkg := range pass.AllPkgs {
		for _, f := range pkg.Files {
			dirs, _ := parseDirectives(pkg.Fset, f)
			for _, d := range dirs {
				if d.analyzer != NondetermAnalyzer.Name {
					continue
				}
				if nondetermIgnored[d.file] == nil {
					nondetermIgnored[d.file] = map[int]bool{}
				}
				nondetermIgnored[d.file][d.line] = true
				nondetermIgnored[d.file][d.line+1] = true
			}
		}
	}

	for _, n := range walk.Visited() {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		if n.Func.Pkg() != nil && n.Func.Pkg().Path() == obsPkgPath {
			continue // sanctioned wall-clock boundary
		}
		chain := ChainString(walk.Chain(n))
		for _, sink := range puritySinksIn(n, nondetermIgnored) {
			pass.Reportf(sink.pos, "%s on a determinism-critical path: %s", sink.desc, chain)
		}
	}
}

// puritySinksIn scans one function body for nondeterministic primitives,
// in source order.
func puritySinksIn(n *Node, nondetermIgnored map[string]map[int]bool) []puritySink {
	var sinks []puritySink
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			obj := calleeOf(info, nd)
			if obj == nil {
				return true
			}
			switch {
			case isPkgFunc(obj, "time", "Now") || isPkgFunc(obj, "time", "Since"):
				sinks = append(sinks, puritySink{nd.Pos(), "time." + obj.Name() + " reads the wall clock"})
			case isPkgFunc(obj, "os", "Getenv") || isPkgFunc(obj, "os", "LookupEnv") || isPkgFunc(obj, "os", "Environ"):
				sinks = append(sinks, puritySink{nd.Pos(), "os." + obj.Name() + " reads the process environment"})
			case isGlobalRandFunc(obj):
				sinks = append(sinks, puritySink{nd.Pos(), "global math/rand." + obj.Name() + " draws from the shared process-wide source"})
			}
		case *ast.RangeStmt:
			t := info.TypeOf(nd.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			for _, pos := range orderSensitiveMapUses(info, nd) {
				p := n.Pkg.Fset.Position(pos)
				if lines := nondetermIgnored[p.Filename]; lines != nil && lines[p.Line] {
					continue
				}
				sinks = append(sinks, puritySink{pos, "order-sensitive use of map iteration"})
			}
		}
		return true
	})
	return sinks
}

// orderSensitiveMapUses returns the positions inside a range-over-map body
// where iteration order escapes (the nondeterm pattern: append or output).
func orderSensitiveMapUses(info *types.Info, rng *ast.RangeStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(rng.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				out = append(out, call.Pos())
				return true
			}
		}
		if obj := calleeOf(info, call); obj != nil {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}
