// Package lint is a small stdlib-only static-analysis framework enforcing
// the simulator's cross-cutting invariants: results must be bit-identical
// across serial/parallel runs and trace-cache on/off (nondeterm,
// tracekey), batched span entry points must be used for row-structured
// accesses (spanaccess), profile phase push/pop pairs must balance on
// every control-flow path (phasebalance), sync.Pool values must not
// leak (poolescape), the persistent trace store's format version must
// gate both the encoder and the decoder (storever), and observability must
// stay off stdout with every timing span closed on every path (obsout). The compiler cannot see any of these rules; the
// 45-minute end-to-end sweeps in scripts/check.sh can — but a static pass
// catches violations in seconds, at the call site.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer, Pass, Reportf) without importing it, keeping go.mod
// dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the driver's file:line: [analyzer]
// message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer encodes.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondetermAnalyzer,
		TracekeyAnalyzer,
		SpanaccessAnalyzer,
		PhasebalanceAnalyzer,
		PoolescapeAnalyzer,
		StoreverAnalyzer,
		ObsoutAnalyzer,
	}
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info
	Files    []*ast.File

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
}

const ignorePrefix = "//lint:ignore"

// parseDirectives collects //lint:ignore directives from a file. Malformed
// directives (missing analyzer or reason) are reported as diagnostics of
// the pseudo-analyzer "lint" so they fail the gate instead of silently
// suppressing nothing.
func parseDirectives(fset *token.FileSet, f *ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignoreX — not a directive
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{
					Analyzer: "lint",
					Pos:      pos,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				file:     pos.Filename,
				line:     pos.Line,
			})
		}
	}
	return dirs, bad
}

// suppressed reports whether d is covered by a directive. A directive
// suppresses matching diagnostics on its own line (trailing comment) and on
// the following line (directive on its own line above the statement).
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every package, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted
// by position. Malformed directives are returned as diagnostics too.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		var dirs []ignoreDirective
		for _, f := range pkg.Files {
			ds, bad := parseDirectives(pkg.Fset, f)
			dirs = append(dirs, ds...)
			out = append(out, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Files:    pkg.Files,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				if !suppressed(d, dirs) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// ---- shared scope and type helpers ----

// simScope reports whether a package holds simulator code covered by the
// determinism invariants: everything under internal/, plus the experiments
// and workloads surfaces. cmd/, examples/ and scripts/ are driver code.
func simScope(path string) bool {
	return strings.HasPrefix(path, "gopim/internal/") ||
		path == "gopim/experiments" ||
		path == "gopim/workloads"
}

// isPkgFunc reports whether obj is the package-level function pkg.name.
func isPkgFunc(obj types.Object, pkg, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkg || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodOn reports whether obj is a method named name whose receiver's
// named type is pkg.typeName (through any number of pointers).
func methodOn(obj types.Object, pkg, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkg && named.Obj().Name() == typeName
}

// calleeOf resolves a call expression's callee object, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.Ident:
		return info.Uses[fun]
	}
	return nil
}

// identsIn collects every identifier used inside an expression.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// usesObject reports whether expression e references obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	for _, id := range identsIn(e) {
		if info.Uses[id] == obj {
			return true
		}
	}
	return false
}
