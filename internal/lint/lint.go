// Package lint is a small stdlib-only static-analysis framework enforcing
// the simulator's cross-cutting invariants: results must be bit-identical
// across serial/parallel runs and trace-cache on/off (nondeterm,
// tracekey), batched span entry points must be used for row-structured
// accesses (spanaccess), profile phase push/pop pairs must balance on
// every control-flow path (phasebalance), sync.Pool values must not
// leak (poolescape), the persistent trace store's format version must
// gate both the encoder and the decoder (storever), and observability
// must stay off stdout with every timing span closed on every path
// (obsout). On top of those local checks sit four interprocedural
// analyzers backed by a module-wide call graph (callgraph.go): nothing
// reachable from a replay/kernel/render entry point may touch a
// nondeterministic primitive (puritypath), every go statement needs a
// visible join (goroleak), received contexts must be threaded and
// observed on sweep paths (ctxflow), and no blocking work may run while
// a mutex is held (lockheld). The compiler cannot see any of these
// rules; the 45-minute end-to-end sweeps in scripts/check.sh can — but a
// static pass catches violations in seconds, at the call site.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis in
// miniature (Analyzer, Pass, Reportf) without importing it, keeping go.mod
// dependency-free.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"gopim/internal/par"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the driver's file:line: [analyzer]
// message format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer encodes.
	Doc string
	// Run inspects one package (or, for Module analyzers, the whole run)
	// and reports findings through the pass.
	Run func(*Pass)
	// Module marks an interprocedural analyzer: it runs once per
	// RunAnalyzers call over Pass.AllPkgs and Pass.Graph instead of once
	// per package (Pass.Pkg/Files/Path are unset for it).
	Module bool
}

// Analyzers returns every registered analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondetermAnalyzer,
		TracekeyAnalyzer,
		SpanaccessAnalyzer,
		PhasebalanceAnalyzer,
		PoolescapeAnalyzer,
		StoreverAnalyzer,
		ObsoutAnalyzer,
		PuritypathAnalyzer,
		GoroleakAnalyzer,
		CtxflowAnalyzer,
		LockheldAnalyzer,
	}
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info
	Files    []*ast.File

	// Graph is the module-wide call graph over every package of the run —
	// the interprocedural fact layer. Built once per RunAnalyzers call and
	// shared read-only by all analyzers; local analyzers may ignore it.
	Graph *CallGraph
	// AllPkgs is the full package set of the run (the graph's universe),
	// for analyzers whose facts span packages.
	AllPkgs []*Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
}

const ignorePrefix = "//lint:ignore"

// parseDirectives collects //lint:ignore directives from a file. Malformed
// directives (missing analyzer or reason) are reported as diagnostics of
// the pseudo-analyzer "lint" so they fail the gate instead of silently
// suppressing nothing.
func parseDirectives(fset *token.FileSet, f *ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignoreX — not a directive
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				bad = append(bad, Diagnostic{
					Analyzer: "lint",
					Pos:      pos,
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				file:     pos.Filename,
				line:     pos.Line,
			})
		}
	}
	return dirs, bad
}

// suppressed reports whether d is covered by a directive. A directive
// suppresses matching diagnostics on its own line (trailing comment) and on
// the following line (directive on its own line above the statement).
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
			continue
		}
		if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every package, applies
// //lint:ignore suppression, and returns the surviving diagnostics sorted
// by position. Malformed directives are returned as diagnostics too.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunAnalyzersParallel(pkgs, analyzers, 1)
}

// RunAnalyzersParallel is RunAnalyzers on a bounded worker pool: the
// packages are type-checked and the call graph built once (serially, up
// front), then the per-package analyzer passes and the module-wide passes
// run concurrently via internal/par, each writing into its own result
// slot. The final sort makes output identical for every worker count.
func RunAnalyzersParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Diagnostic {
	graph := BuildCallGraph(pkgs)

	// Suppression directives are collected module-wide up front: an
	// interprocedural diagnostic lands at its sink, which may be in a
	// different package than the one whose pass reported it.
	var dirs []ignoreDirective
	var out []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		for _, f := range pkg.Files {
			ds, bad := parseDirectives(pkg.Fset, f)
			dirs = append(dirs, ds...)
			out = append(out, bad...)
		}
	}

	// One work cell per (package, local analyzer) pair plus one per
	// module-wide analyzer.
	type cell struct {
		pkg *Package // nil for module-wide analyzers
		a   *Analyzer
	}
	var cells []cell
	for _, a := range analyzers {
		if a.Module {
			cells = append(cells, cell{a: a})
			continue
		}
		for _, pkg := range pkgs {
			cells = append(cells, cell{pkg: pkg, a: a})
		}
	}
	diags := par.Map(workers, len(cells), func(i int) []Diagnostic {
		c := cells[i]
		pass := &Pass{Analyzer: c.a, Fset: fset, Graph: graph, AllPkgs: pkgs}
		if c.pkg != nil {
			pass.Fset = c.pkg.Fset
			pass.Path = c.pkg.Path
			pass.Pkg = c.pkg.Pkg
			pass.Info = c.pkg.Info
			pass.Files = c.pkg.Files
		}
		c.a.Run(pass)
		return pass.diags
	})
	for _, ds := range diags {
		for _, d := range ds {
			if !suppressed(d, dirs) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// jsonDiag is the wire shape of one diagnostic in a -json report.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as a machine-readable JSON array —
// `gopimlint -json` output, consumed by CI to emit GitHub annotations.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a report produced by WriteJSON back into diagnostics —
// the `gopimlint -annotate` input path.
func ReadJSON(r io.Reader) ([]Diagnostic, error) {
	var in []jsonDiag
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("lint: parsing JSON report: %w", err)
	}
	diags := make([]Diagnostic, len(in))
	for i, d := range in {
		diags[i] = Diagnostic{
			Analyzer: d.Analyzer,
			Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
			Message:  d.Message,
		}
	}
	return diags, nil
}

// WriteGitHub renders diagnostics as GitHub Actions workflow commands
// (::error annotations) so findings surface inline on pull requests. File
// paths are rewritten relative to root (the checkout directory); paths
// outside root pass through unchanged.
func WriteGitHub(w io.Writer, diags []Diagnostic, root string) error {
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=%s::%s\n",
			escapeGitHubProperty(file), d.Pos.Line, d.Pos.Column,
			escapeGitHubProperty(d.Analyzer), escapeGitHubData(d.Message))
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeGitHubData escapes the message part of a workflow command.
func escapeGitHubData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeGitHubProperty escapes a property value of a workflow command.
func escapeGitHubProperty(s string) string {
	s = escapeGitHubData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// ---- shared scope and type helpers ----

// simScope reports whether a package holds simulator code covered by the
// determinism invariants: everything under internal/, plus the experiments
// and workloads surfaces. cmd/, examples/ and scripts/ are driver code.
func simScope(path string) bool {
	return strings.HasPrefix(path, "gopim/internal/") ||
		path == "gopim/experiments" ||
		path == "gopim/workloads"
}

// isPkgFunc reports whether obj is the package-level function pkg.name.
func isPkgFunc(obj types.Object, pkg, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkg || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodOn reports whether obj is a method named name whose receiver's
// named type is pkg.typeName (through any number of pointers).
func methodOn(obj types.Object, pkg, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkg && named.Obj().Name() == typeName
}

// calleeOf resolves a call expression's callee object, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.Ident:
		return info.Uses[fun]
	}
	return nil
}

// identsIn collects every identifier used inside an expression.
func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// usesObject reports whether expression e references obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	for _, id := range identsIn(e) {
		if info.Uses[id] == obj {
			return true
		}
	}
	return false
}
