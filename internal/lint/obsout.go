package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsoutAnalyzer enforces the observability layer's ground rule that
// observation never changes what the simulator prints: `pimsim run all`
// stdout must stay byte-identical with -stats/-report/-metrics-addr on or
// off. Three checks encode it:
//
//   - package gopim/internal/obs may not reference os.Stdout at all — its
//     output goes to stderr, files, or the HTTP listener;
//   - nowhere in the module may a Report writer (WriteText, WriteJSON) be
//     handed os.Stdout — the report is exactly the stats/-report surface,
//     so routing it to stdout breaks the byte-identity gate in
//     scripts/check.sh;
//   - every Registry.Span begin must meet a Span.End on every control-flow
//     path (mirroring phasebalance): a leaked span records nothing and
//     silently under-reports its phase in every breakdown.
var ObsoutAnalyzer = &Analyzer{
	Name: "obsout",
	Doc:  "observability output must avoid os.Stdout, and obs span begin/end must balance on every control-flow path",
	Run:  runObsout,
}

// obsPath is the observability package the analyzer guards.
const obsPath = "gopim/internal/obs"

func runObsout(pass *Pass) {
	checkObsStdout(pass)
	checkSpanBalance(pass)
}

// forEachOSStdout reports the position of every os.Stdout reference under
// root (an expression or a whole file) through report.
func forEachOSStdout(info *types.Info, root ast.Node, report func(pos token.Pos)) {
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Stdout" {
			return true
		}
		obj := info.Uses[sel.Sel]
		v, ok := obj.(*types.Var)
		if ok && v.Pkg() != nil && v.Pkg().Path() == "os" {
			report(sel.Pos())
		}
		return true
	})
}

// checkObsStdout implements the stdout rules: a blanket ban inside package
// obs, and a module-wide ban on pointing the run report's writers at
// os.Stdout.
func checkObsStdout(pass *Pass) {
	if pass.Path == obsPath {
		for _, f := range pass.Files {
			forEachOSStdout(pass.Info, f, func(pos token.Pos) {
				pass.Reportf(pos, "os.Stdout referenced in package obs: observability writes to stderr, files, or the HTTP listener only")
			})
		}
		// The report-writer rule below would double-report the same
		// selectors inside package obs; the blanket ban already covers them.
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeOf(pass.Info, call)
			if obj == nil {
				return true
			}
			if !methodOn(obj, obsPath, "Report", "WriteText") &&
				!methodOn(obj, obsPath, "Report", "WriteJSON") {
				return true
			}
			for _, a := range call.Args {
				forEachOSStdout(pass.Info, a, func(pos token.Pos) {
					pass.Reportf(pos, "obs run report written to os.Stdout: -stats/-report output must not break stdout byte-identity")
				})
			}
			return true
		})
	}
}

// checkSpanBalance verifies Registry.Span / Span.End pairing on every
// structured control-flow path, exactly as phasebalance does for profile
// phases. The one-liner `defer r.Span("x").End()` balances: the deferred
// call's receiver is evaluated at the defer statement (opening the span
// there) and the End is credited as a deferred close.
func checkSpanBalance(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	isSpanCall := func(call *ast.CallExpr, typeName, name string) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return false
		}
		obj := pass.Info.Uses[sel.Sel]
		return obj != nil && methodOn(obj, obsPath, typeName, name)
	}
	forEachFuncBody(pass.Files, func(name string, body *ast.BlockStmt, end token.Pos) {
		b := &balanceChecker{
			pass:    pass,
			isOpen:  func(c *ast.CallExpr) bool { return isSpanCall(c, "Registry", "Span") },
			isClose: func(c *ast.CallExpr) bool { return isSpanCall(c, "Span", "End") },
			what:    "Span/End",
		}
		b.check(body, end)
	})
}
