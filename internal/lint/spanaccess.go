package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanaccessAnalyzer flags per-row instrumentation loops that should use
// the batched span entry points (Ctx.LoadSpan/StoreSpan/LoadSpanV/
// StoreSpanV/CopySpanV/BlendSpanV). The span calls are defined as exactly
// equivalent to the per-row loop they replace — same instruction counts,
// same cache-line events in the same order — but cut per-call overhead by
// the row count, which PR 1 measured at ~1.5x on row-structured kernels.
// A loop is flagged when its body is nothing but 1–2 per-row accesses
// whose offsets are affine in the loop variable; anything data-dependent
// (clamped rows, hash-probe offsets, accesses guarded by computed state)
// does not match and is left alone.
var SpanaccessAnalyzer = &Analyzer{
	Name: "spanaccess",
	Doc:  "per-row Ctx access loops over contiguous buffers must use the batched span entry points",
	Run:  runSpanaccess,
}

// spanScope limits the check to the instrumented kernel packages; the
// profile package itself defines the entry points (its span
// implementations loop by design), and trace replay re-drives raw events.
func spanScope(path string) bool {
	if !simScope(path) {
		return false
	}
	switch path {
	case "gopim/internal/profile", "gopim/internal/trace":
		return false
	}
	return true
}

var ctxAccessMethods = map[string]string{
	"Load":   "LoadSpan",
	"Store":  "StoreSpan",
	"LoadV":  "LoadSpanV",
	"StoreV": "StoreSpanV",
}

func runSpanaccess(pass *Pass) {
	if !spanScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkSpanLoop(pass, loop)
			return true
		})
	}
}

// checkSpanLoop flags loop when every statement in its body is a per-row
// Ctx access (or plain arithmetic feeding one) whose offset is affine in
// the loop's induction variable.
func checkSpanLoop(pass *Pass, loop *ast.ForStmt) {
	indVar := inductionVar(pass, loop)
	if indVar == nil {
		return
	}
	// locals assigned in the body from induction-var arithmetic also count
	// as induction-dependent offsets (srcOff := row*stride + base).
	affine := map[string]bool{indVar.Name: true}

	var accesses []*ast.CallExpr
	ok := true
	var scan func(stmts []ast.Stmt)
	scan = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if !ok {
				return
			}
			switch s := s.(type) {
			case *ast.AssignStmt:
				// Allow pure arithmetic over the induction variable and
				// constants; any call (clampInt, Len) makes the offset
				// data-dependent and disqualifies the loop.
				if s.Tok != token.DEFINE && s.Tok != token.ASSIGN {
					ok = false
					return
				}
				for _, r := range s.Rhs {
					if containsCall(r) {
						ok = false
						return
					}
				}
				for i, l := range s.Lhs {
					id, isIdent := l.(*ast.Ident)
					if !isIdent || i >= len(s.Rhs) {
						ok = false
						return
					}
					if referencesAny(s.Rhs[i], affine) {
						affine[id.Name] = true
					}
				}
			case *ast.ExprStmt:
				call, isCall := s.X.(*ast.CallExpr)
				if !isCall {
					ok = false
					return
				}
				switch classifyCtxCall(pass, call) {
				case ctxCallAccess:
					accesses = append(accesses, call)
				case ctxCallCounter:
					// Ops/SIMD/Refs inside the loop hoist trivially.
				default:
					ok = false
					return
				}
			case *ast.IfStmt:
				// A guard on the induction variable (partial last row) still
				// converts: compute the row count first. Any other guard is
				// data-dependent.
				if s.Init != nil || s.Else != nil || containsCall(s.Cond) || !referencesAny(s.Cond, affine) {
					ok = false
					return
				}
				scan(s.Body.List)
			default:
				ok = false
				return
			}
		}
	}
	scan(loop.Body.List)
	if !ok || len(accesses) == 0 || len(accesses) > 2 {
		return
	}
	var names, lengths []string
	for _, call := range accesses {
		sel := call.Fun.(*ast.SelectorExpr)
		if len(call.Args) < 3 || !referencesAny(call.Args[1], affine) {
			return // offset not driven by the loop variable
		}
		if referencesAny(call.Args[2], affine) {
			return // row size varies per iteration; not one rectangle
		}
		names = append(names, sel.Sel.Name)
		lengths = append(lengths, types.ExprString(call.Args[2]))
	}
	switch {
	case len(accesses) == 1:
		pass.Reportf(loop.Pos(),
			"per-row %s loop: the offset advances with %s each iteration; batch the rectangle with one %s call (defined exactly equivalent, ~rows x fewer calls)",
			names[0], indVar.Name, ctxAccessMethods[names[0]])
	case names[0] == "LoadV" && names[1] == "StoreV" && lengths[0] == lengths[1]:
		pass.Reportf(loop.Pos(),
			"per-row LoadV+StoreV copy loop: batch the rectangle with one CopySpanV call (defined exactly equivalent, preserves per-row event order)")
	}
}

type ctxCallKind int

const (
	ctxCallOther ctxCallKind = iota
	ctxCallAccess
	ctxCallCounter
	ctxCallSpan
)

// classifyCtxCall identifies calls to the instrumentation context's access
// and counter methods.
func classifyCtxCall(pass *Pass, call *ast.CallExpr) ctxCallKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ctxCallOther
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil {
		return ctxCallOther
	}
	name := sel.Sel.Name
	if _, isAccess := ctxAccessMethods[name]; isAccess && methodOn(obj, "gopim/internal/profile", "Ctx", name) {
		return ctxCallAccess
	}
	switch name {
	case "Ops", "SIMD", "Refs":
		if methodOn(obj, "gopim/internal/profile", "Ctx", name) {
			return ctxCallCounter
		}
	}
	if strings.Contains(name, "Span") && methodOn(obj, "gopim/internal/profile", "Ctx", name) {
		return ctxCallSpan
	}
	return ctxCallOther
}

// inductionVar returns the loop variable of a canonical counting loop
// (for i := e; i < n; i++ / i += step), or nil.
func inductionVar(pass *Pass, loop *ast.ForStmt) *ast.Ident {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return nil
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if postID, ok := post.X.(*ast.Ident); ok && postID.Name == id.Name && post.Tok == token.INC {
			return id
		}
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 {
			if postID, ok := post.Lhs[0].(*ast.Ident); ok && postID.Name == id.Name && post.Tok == token.ADD_ASSIGN {
				return id
			}
		}
	}
	return nil
}

// containsCall reports whether e contains any call expression (conversions
// to basic types excluded: int(x) is still affine arithmetic).
func containsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "int", "int64", "uint64", "uint32", "int32", "uint8", "uint16":
					return true
				}
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// referencesAny reports whether e mentions any of the named variables.
func referencesAny(e ast.Expr, names map[string]bool) bool {
	for _, id := range identsIn(e) {
		if names[id.Name] {
			return true
		}
	}
	return false
}
