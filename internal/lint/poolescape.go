package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolescapeAnalyzer enforces the sync.Pool lifecycle on pooled scratch
// buffers (cf. internal/vp9/hw.go): within one function, every Get must
// be matched by a Put on all control-flow paths, and the pooled value
// must not outlive the call — no returning it, no storing it into a
// struct field, slice element, map, or package-level variable. A leaked
// Get drains the pool (reallocating every frame, which is exactly the
// overhead the pool removes); a value that escapes and is also Put is
// worse: the next Get hands the same buffer to a second owner and the
// two silently corrupt each other's data.
var PoolescapeAnalyzer = &Analyzer{
	Name: "poolescape",
	Doc:  "sync.Pool values must be Put back on all paths and must not escape the function",
	Run:  runPoolescape,
}

func runPoolescape(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	isPoolCall := func(call *ast.CallExpr, name string) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return false
		}
		obj := pass.Info.Uses[sel.Sel]
		return obj != nil && methodOn(obj, "sync", "Pool", name)
	}
	forEachFuncBody(pass.Files, func(name string, body *ast.BlockStmt, end token.Pos) {
		b := &balanceChecker{
			pass:    pass,
			isOpen:  func(c *ast.CallExpr) bool { return isPoolCall(c, "Get") },
			isClose: func(c *ast.CallExpr) bool { return isPoolCall(c, "Put") },
			what:    "Pool.Get/Put",
		}
		b.check(body, end)
		checkPoolEscapes(pass, body, func(c *ast.CallExpr) bool { return isPoolCall(c, "Get") })
	})
}

// checkPoolEscapes taints every variable holding a pool.Get result (or an
// alias derived from one) and reports stores that let the pooled value
// outlive the function: returns, writes into fields, elements, or
// package-level variables whose base is not itself pooled memory.
func checkPoolEscapes(pass *Pass, body *ast.BlockStmt, isGet func(*ast.CallExpr) bool) {
	tainted := map[types.Object]bool{}
	objOf := func(id *ast.Ident) types.Object {
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	// taintsFrom reports whether evaluating e can yield (an alias of) a
	// pooled value: the Get call itself, a tainted variable, or reference
	// machinery (slices, derefs, address-of, composite literals) over one.
	// Ordinary calls are trusted to copy, and element reads of a pooled
	// slice copy the element.
	var taintsFrom func(e ast.Expr) bool
	taintsFrom = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return tainted[objOf(e)]
		case *ast.ParenExpr:
			return taintsFrom(e.X)
		case *ast.CallExpr:
			return isGet(e)
		case *ast.TypeAssertExpr:
			return taintsFrom(e.X)
		case *ast.StarExpr:
			return taintsFrom(e.X)
		case *ast.UnaryExpr:
			return e.Op == token.AND && taintsFrom(e.X)
		case *ast.SliceExpr:
			return taintsFrom(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if taintsFrom(el) {
					return true
				}
			}
		}
		return false
	}
	// baseIdent unwraps an assignment target to the variable it writes
	// through: delta[i], s.field, *dp all resolve to delta, s, dp.
	var baseIdent func(e ast.Expr) *ast.Ident
	baseIdent = func(e ast.Expr) *ast.Ident {
		switch e := e.(type) {
		case *ast.Ident:
			return e
		case *ast.ParenExpr:
			return baseIdent(e.X)
		case *ast.IndexExpr:
			return baseIdent(e.X)
		case *ast.SelectorExpr:
			return baseIdent(e.X)
		case *ast.StarExpr:
			return baseIdent(e.X)
		}
		return nil
	}

	// Propagate taint through local assignments to a fixpoint: aliases can
	// be introduced before this walk reaches the Get in source order.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				// Comma-ok forms (p, ok := pool.Get().(*T)) have one RHS
				// tainting every LHS.
				rhs := as.Rhs[0]
				if len(as.Lhs) == len(as.Rhs) {
					rhs = as.Rhs[i]
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || !taintsFrom(rhs) {
					continue
				}
				if obj := objOf(id); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}

	isLocal := func(obj types.Object) bool {
		return obj != nil && obj.Parent() != obj.Pkg().Scope()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure capturing the pooled value can outlive the call;
			// flagging captures is out of scope — the balance check still
			// covers the common case.
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if taintsFrom(res) {
					pass.Reportf(res.Pos(),
						"pooled value escapes via return: the caller's reference outlives the Put, so the next Get aliases live data")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !taintsFrom(n.Rhs[i]) {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					// Writing to a package-level variable pins the pooled
					// value for the life of the process.
					if obj := objOf(target); obj != nil && !isLocal(obj) {
						pass.Reportf(lhs.Pos(),
							"pooled value stored in package-level variable %s outlives the call", target.Name)
					}
				case *ast.SelectorExpr, *ast.IndexExpr:
					// Storing into a field or element escapes unless the
					// container is itself pooled scratch memory.
					base := baseIdent(lhs)
					if base == nil || !tainted[objOf(base)] {
						pass.Reportf(lhs.Pos(),
							"pooled value stored into a location that outlives the call; copy the data out instead")
					}
				}
			}
		}
		return true
	})
}
