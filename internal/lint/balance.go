package lint

import (
	"go/ast"
	"go/token"
)

// balanceChecker verifies that two kinds of paired calls — an "open" (phase
// push, pool Get) and a "close" (phase pop, pool Put) — balance on every
// structured control-flow path of a function body, including early
// returns. It is a conservative structural walk rather than a full CFG:
// branches of an if/switch must agree on their net effect, loop bodies
// must be net-zero (a loop may run any number of times), and every return
// must see a net depth of zero after accounting for deferred closes.
// goto/labeled-branch control flow is out of scope; none of the simulator
// code uses it across a push/pop region.
type balanceChecker struct {
	pass *Pass
	// isOpen/isClose classify a call expression.
	isOpen  func(*ast.CallExpr) bool
	isClose func(*ast.CallExpr) bool
	// what names the pair in diagnostics, e.g. "PushPhase/PopPhase".
	what string

	// deferredCloses counts defer'd close calls seen so far; they cover
	// that many levels at every subsequent exit.
	deferredCloses int
}

// terminatedDepth is the sentinel for a path that always leaves the
// function (its return already checked its own depth), so join points
// don't also report it as a branch mismatch.
const terminatedDepth = -1 << 30

// check walks a function body and reports imbalances.
func (b *balanceChecker) check(body *ast.BlockStmt, funcEnd token.Pos) {
	if body == nil {
		return
	}
	depth := b.stmts(body.List, 0)
	if depth != terminatedDepth && depth != b.deferredCloses {
		b.pass.Reportf(funcEnd, "%s imbalance: function exits at depth %+d", b.what, depth-b.deferredCloses)
	}
}

// stmts walks a statement list, returning the net depth change.
func (b *balanceChecker) stmts(list []ast.Stmt, depth int) int {
	for _, s := range list {
		if depth == terminatedDepth {
			return depth // dead code after a return
		}
		depth = b.stmt(s, depth)
	}
	return depth
}

func (b *balanceChecker) stmt(s ast.Stmt, depth int) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return b.expr(s.X, depth)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			depth = b.expr(r, depth)
		}
		return depth
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						depth = b.expr(v, depth)
					}
				}
			}
		}
		return depth
	case *ast.DeferStmt:
		// A defer's receiver chain and arguments are evaluated now, at the
		// defer statement — only the final call is postponed. An open that
		// appears there (the one-liner `defer r.Span("x").End()`) takes
		// effect immediately, so scan both before crediting the close.
		if fun, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			depth = b.expr(fun.X, depth)
		}
		for _, a := range s.Call.Args {
			depth = b.expr(a, depth)
		}
		if b.isClose(s.Call) {
			b.deferredCloses++
		}
		return depth
	case *ast.GoStmt:
		return depth
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			depth = b.expr(r, depth)
		}
		if depth != b.deferredCloses {
			b.pass.Reportf(s.Pos(), "%s imbalance: return at depth %+d", b.what, depth-b.deferredCloses)
		}
		return terminatedDepth
	case *ast.BlockStmt:
		return b.stmts(s.List, depth)
	case *ast.IfStmt:
		if s.Init != nil {
			depth = b.stmt(s.Init, depth)
		}
		depth = b.expr(s.Cond, depth)
		thenDepth := b.stmts(s.Body.List, depth)
		elseDepth := depth
		if s.Else != nil {
			elseDepth = b.stmt(s.Else, depth)
		}
		// A branch that always returns imposes no constraint at the join.
		switch {
		case thenDepth == terminatedDepth:
			return elseDepth
		case elseDepth == terminatedDepth:
			return thenDepth
		}
		if thenDepth != elseDepth {
			b.pass.Reportf(s.Pos(), "%s imbalance: branches of if end at different depths (%+d vs %+d)",
				b.what, thenDepth-depth, elseDepth-depth)
		}
		return thenDepth
	case *ast.ForStmt:
		if s.Init != nil {
			depth = b.stmt(s.Init, depth)
		}
		if s.Cond != nil {
			depth = b.expr(s.Cond, depth)
		}
		bodyDepth := b.stmts(s.Body.List, depth)
		if s.Post != nil && bodyDepth != terminatedDepth {
			bodyDepth = b.stmt(s.Post, bodyDepth)
		}
		if bodyDepth != terminatedDepth && bodyDepth != depth {
			b.pass.Reportf(s.Pos(), "%s imbalance: loop body has net depth %+d", b.what, bodyDepth-depth)
		}
		return depth
	case *ast.RangeStmt:
		depth = b.expr(s.X, depth)
		bodyDepth := b.stmts(s.Body.List, depth)
		if bodyDepth != terminatedDepth && bodyDepth != depth {
			b.pass.Reportf(s.Pos(), "%s imbalance: loop body has net depth %+d", b.what, bodyDepth-depth)
		}
		return depth
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.cases(s, depth)
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, depth)
	default:
		return depth
	}
}

// cases handles switch/type-switch/select: every case body must reach the
// same depth, and without a default case that depth must be the entry
// depth (the whole statement may be skipped).
func (b *balanceChecker) cases(s ast.Stmt, depth int) int {
	var bodies [][]ast.Stmt
	hasDefault := false
	add := func(clauses []ast.Stmt) {
		for _, c := range clauses {
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, c.Body)
			case *ast.CommClause:
				if c.Comm == nil {
					hasDefault = true
				}
				bodies = append(bodies, c.Body)
			}
		}
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			depth = b.stmt(s.Init, depth)
		}
		if s.Tag != nil {
			depth = b.expr(s.Tag, depth)
		}
		add(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			depth = b.stmt(s.Init, depth)
		}
		add(s.Body.List)
	case *ast.SelectStmt:
		add(s.Body.List)
	}
	if len(bodies) == 0 {
		return depth
	}
	// Case bodies that always return impose no constraint at the join.
	first := terminatedDepth
	agree := true
	for _, body := range bodies {
		d := b.stmts(body, depth)
		if d == terminatedDepth {
			continue
		}
		if first == terminatedDepth {
			first = d
		} else if d != first {
			agree = false
		}
	}
	if first == terminatedDepth {
		if hasDefault {
			return terminatedDepth
		}
		return depth
	}
	if !agree || (!hasDefault && first != depth) {
		b.pass.Reportf(s.Pos(), "%s imbalance: switch cases end at different depths", b.what)
	}
	return first
}

// expr scans an expression for open/close calls, in evaluation order.
// Function literals are separate functions and are skipped here; the
// analyzers walk them independently.
func (b *balanceChecker) expr(e ast.Expr, depth int) int {
	if e == nil {
		return depth
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if b.isOpen(n) {
				depth++
			} else if b.isClose(n) {
				depth--
				if depth < 0 {
					b.pass.Reportf(n.Pos(), "%s imbalance: close without matching open", b.what)
					depth = 0
				}
			}
		}
		return true
	})
	return depth
}

// forEachFuncBody visits every function body in the package, including
// function literals, each as an independent unit.
func forEachFuncBody(files []*ast.File, fn func(name string, body *ast.BlockStmt, end token.Pos)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Name.Name, n.Body, n.Body.Rbrace)
				}
			case *ast.FuncLit:
				fn("func literal", n.Body, n.Body.Rbrace)
			}
			return true
		})
	}
}
