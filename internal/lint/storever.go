package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StoreverAnalyzer guards the persistent trace store's format versioning.
// Store entries carry a format-version field (the constant named
// storeFormatVersion in internal/trace) that must gate both sides of the
// serialization: the encoder stamps it into every entry's header and the
// decoder rejects entries that do not match. The failure mode it exists to
// prevent is a half-bumped format change — an encoder writing version N+1
// while the decoder still accepts (or hardcodes) version N, or vice versa
// — which would either silently accept stale entries or reject every fresh
// one. The analyzer therefore requires that in any package declaring the
// constant, at least one encode* function and at least one decode*
// function reference it; a side that stops referencing the constant (for
// example by comparing against an integer literal) is reported at the
// constant's declaration.
var StoreverAnalyzer = &Analyzer{
	Name: "storever",
	Doc:  "the store format-version constant must be referenced by both the encoder and the decoder",
	Run:  runStorever,
}

// storeVersionConstName is the constant the invariant is anchored on.
const storeVersionConstName = "storeFormatVersion"

func runStorever(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	obj, pos := findVersionConst(pass)
	if obj == nil {
		return
	}
	encRefs, decRefs := false, false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := strings.ToLower(fd.Name.Name)
			switch {
			case strings.HasPrefix(name, "encode"):
				encRefs = encRefs || funcUses(pass, fd, obj)
			case strings.HasPrefix(name, "decode"):
				decRefs = decRefs || funcUses(pass, fd, obj)
			}
		}
	}
	if !encRefs {
		pass.Reportf(pos,
			"store format-version constant %s is not referenced by any encoder (encode* function): entries would be stamped with a hardcoded or missing version and a format bump ships half-done",
			storeVersionConstName)
	}
	if !decRefs {
		pass.Reportf(pos,
			"store format-version constant %s is not referenced by any decoder (decode* function): stale entries would not be rejected after a format bump",
			storeVersionConstName)
	}
}

// findVersionConst locates the package-level storeFormatVersion constant.
func findVersionConst(pass *Pass) (types.Object, token.Pos) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == storeVersionConstName {
						return pass.Info.Defs[name], name.Pos()
					}
				}
			}
		}
	}
	return nil, token.NoPos
}

// funcUses reports whether fd's body references obj.
func funcUses(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
