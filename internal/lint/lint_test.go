package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks testdata/src/<name> as if it lived at an
// in-scope module path, so the analyzers' scope filters apply to it.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	return loadFixtureAt(t, name, "gopim/internal/fixture/"+name)
}

// loadFixtureAt type-checks testdata/src/<name> under an explicit import
// path, for analyzers whose rules key on a specific package (obsout's
// stdout ban inside gopim/internal/obs).
func loadFixtureAt(t *testing.T, name, asPath string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

type wantSpec struct {
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("^// want (?:\"(.*)\"|`(.*)`)$")

// wantsIn extracts the fixture's // want "regex" comments.
func wantsIn(t *testing.T, pkg *Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern := m[1]
				if pattern == "" {
					pattern = m[2]
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pattern, err)
				}
				wants = append(wants, &wantSpec{
					line:    pkg.Fset.Position(c.Pos()).Line,
					pattern: pattern,
					re:      re,
				})
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture and matches the
// resulting diagnostics one-to-one against its // want comments.
func checkFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	checkPkg(t, name, loadFixture(t, name), analyzers...)
}

// checkPkg matches a loaded fixture package's diagnostics against its
// // want comments.
func checkPkg(t *testing.T, name string, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	checkPkgs(t, name, []*Package{pkg}, analyzers...)
}

// checkPkgs runs the analyzers over several fixture packages at once (for
// interprocedural analyzers whose entry point and sink live in different
// packages) and matches diagnostics against the combined // want set.
func checkPkgs(t *testing.T, name string, pkgs []*Package, analyzers ...*Analyzer) {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range pkgs {
		wants = append(wants, wantsIn(t, pkg)...)
	}
	diags := RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s.go:%d matching %q", name, w.line, w.pattern)
		}
	}
}

func TestNondetermFixture(t *testing.T)    { checkFixture(t, "nondeterm", NondetermAnalyzer) }
func TestTracekeyFixture(t *testing.T)     { checkFixture(t, "tracekey", TracekeyAnalyzer) }
func TestSpanaccessFixture(t *testing.T)   { checkFixture(t, "spanaccess", SpanaccessAnalyzer) }
func TestPhasebalanceFixture(t *testing.T) { checkFixture(t, "phasebalance", PhasebalanceAnalyzer) }
func TestPoolescapeFixture(t *testing.T)   { checkFixture(t, "poolescape", PoolescapeAnalyzer) }
func TestStoreverFixture(t *testing.T)     { checkFixture(t, "storever", StoreverAnalyzer) }
func TestObsoutFixture(t *testing.T)       { checkFixture(t, "obsout", ObsoutAnalyzer) }

// TestObsoutObsPackageFixture type-checks the obspkg fixture under the real
// obs import path, where obsout bans every os.Stdout reference outright.
func TestObsoutObsPackageFixture(t *testing.T) {
	checkPkg(t, "obspkg", loadFixtureAt(t, "obspkg", "gopim/internal/obs"), ObsoutAnalyzer)
}

// TestPuritypathFixture loads the fixture under gopim/internal/trace/...
// so its Replay* methods count as determinism entry points.
func TestPuritypathFixture(t *testing.T) {
	checkPkg(t, "puritypath", loadFixtureAt(t, "puritypath", "gopim/internal/trace/fixture"), PuritypathAnalyzer)
}

// TestPuritypathCrossPackage proves reachability crosses package
// boundaries: the entry point lives in puritypathx (loaded as a trace
// package), the wall-clock sink in puritypathdep, and the diagnostic
// lands at the sink with the cross-package chain. The dep package is
// loaded first so the entry package's import resolves to the fixture.
func TestPuritypathCrossPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := l.LoadDir(filepath.Join("testdata", "src", "puritypathdep"), "gopim/internal/fixture/puritypathdep")
	if err != nil {
		t.Fatal(err)
	}
	entry, err := l.LoadDir(filepath.Join("testdata", "src", "puritypathx"), "gopim/internal/trace/puritypathx")
	if err != nil {
		t.Fatal(err)
	}
	checkPkgs(t, "puritypathx", []*Package{dep, entry}, PuritypathAnalyzer)
}

func TestGoroleakFixture(t *testing.T) { checkFixture(t, "goroleak", GoroleakAnalyzer) }
func TestCtxflowFixture(t *testing.T)  { checkFixture(t, "ctxflow", CtxflowAnalyzer) }
func TestLockheldFixture(t *testing.T) { checkFixture(t, "lockheld", LockheldAnalyzer) }

// TestCleanFixture runs every analyzer over the clean fixture; any
// finding is a false positive.
func TestCleanFixture(t *testing.T) { checkFixture(t, "clean", Analyzers()...) }

// TestSuppressedFixture holds real violations, each annotated with a
// //lint:ignore directive and a reason; nothing may survive.
func TestSuppressedFixture(t *testing.T) { checkFixture(t, "suppressed", Analyzers()...) }

// TestMalformedDirective verifies a //lint:ignore without a reason is
// itself reported and suppresses nothing.
func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "badignore")
	diags := RunAnalyzers([]*Package{pkg}, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed directive + unsuppressed finding):\n%s",
			len(diags), diagLines(diags))
	}
	if diags[0].Analyzer != "lint" || !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first diagnostic should report the malformed directive, got: %s", diags[0])
	}
	if diags[1].Analyzer != "nondeterm" {
		t.Errorf("the malformed directive must not suppress the finding under it, got: %s", diags[1])
	}
}

func diagLines(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
