package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TracekeyAnalyzer enforces the trace-cache memoization contract on kernel
// constructors. internal/trace.Cache memoizes kernel profiles by
// profile.KeyOf: an empty key silently bypasses memoization (the kernel
// re-executes on every request), and — far worse — a key that omits a
// constructor parameter can alias two different kernels and return a
// wrong cached profile for one of them. Every function returning a
// profile.Kernel must therefore populate KernelFunc.Key, and the key
// expression must (transitively) reference every constructor parameter.
var TracekeyAnalyzer = &Analyzer{
	Name: "tracekey",
	Doc:  "kernel constructors must set a trace cache key referencing every constructor parameter",
	Run:  runTracekey,
}

func runTracekey(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsKernel(pass, fd) {
				continue
			}
			checkConstructor(pass, fd)
		}
	}
}

// returnsKernel reports whether fd's results include profile.Kernel (or
// profile.KernelFunc directly).
func returnsKernel(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "gopim/internal/profile" &&
				(obj.Name() == "Kernel" || obj.Name() == "KernelFunc") {
				return true
			}
		}
	}
	return false
}

// checkConstructor inspects every KernelFunc composite literal returned by
// the constructor.
func checkConstructor(pass *Pass, fd *ast.FuncDecl) {
	params := constructorParams(pass, fd)
	assigns := localAssignments(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			// Constructors that delegate (return OtherKernel(...)) are the
			// callee's responsibility; only literals are checked here.
			if lit := kernelFuncLit(pass, res, assigns); lit != nil {
				checkKeyField(pass, fd, lit, params, assigns)
			}
		}
		return true
	})
}

// constructorParams returns the named, non-blank parameter objects of fd.
func constructorParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// localAssignments maps each local variable object to the expressions
// assigned to it anywhere in the body, so key expressions built through
// intermediates (m, k, n := l.GEMMShape(scale)) resolve to the parameters
// behind them.
func localAssignments(pass *Pass, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	out := map[types.Object][]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			// Multi-value assignments (x, y := f(z)) taint every LHS with
			// the single RHS; one-to-one assignments map directly.
			if len(as.Rhs) == len(as.Lhs) {
				out[obj] = append(out[obj], as.Rhs[i])
			} else if len(as.Rhs) == 1 {
				out[obj] = append(out[obj], as.Rhs[0])
			}
		}
		return true
	})
	return out
}

// kernelFuncLit unwraps res to a profile.KernelFunc composite literal:
// directly, through an address-of, or through a single local variable.
func kernelFuncLit(pass *Pass, res ast.Expr, assigns map[types.Object][]ast.Expr) *ast.CompositeLit {
	res = ast.Unparen(res)
	if un, ok := res.(*ast.UnaryExpr); ok {
		res = ast.Unparen(un.X)
	}
	if id, ok := res.(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if exprs := assigns[obj]; len(exprs) == 1 {
			return kernelFuncLit(pass, exprs[0], nil)
		}
		return nil
	}
	lit, ok := res.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	t := pass.Info.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() != "gopim/internal/profile" || named.Obj().Name() != "KernelFunc" {
		return nil
	}
	return lit
}

// checkKeyField verifies the literal's Key field exists, is non-empty, and
// references every constructor parameter.
func checkKeyField(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit, params []types.Object, assigns map[types.Object][]ast.Expr) {
	var keyExpr ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
			keyExpr = kv.Value
		}
	}
	if keyExpr == nil {
		pass.Reportf(lit.Pos(),
			"kernel constructor %s returns a KernelFunc without a Key: the trace cache silently falls back to direct execution (internal/trace/cache.go)",
			fd.Name.Name)
		return
	}
	if tv, ok := pass.Info.Types[keyExpr]; ok && tv.Value != nil && tv.Value.String() == `""` {
		pass.Reportf(keyExpr.Pos(),
			"kernel constructor %s sets an empty Key: the trace cache silently falls back to direct execution", fd.Name.Name)
		return
	}
	reached := reachableObjects(pass, keyExpr, assigns)
	var missing []string
	for _, p := range params {
		if !reached[p] {
			missing = append(missing, p.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(keyExpr.Pos(),
			"kernel cache key of %s omits constructor parameter(s) %s: two kernels differing only in them would alias one cache entry and return a wrong memoized profile",
			fd.Name.Name, strings.Join(missing, ", "))
	}
}

// reachableObjects returns every object referenced by e, transitively
// expanding local variables through their assignments.
func reachableObjects(pass *Pass, e ast.Expr, assigns map[types.Object][]ast.Expr) map[types.Object]bool {
	reached := map[types.Object]bool{}
	var visit func(ast.Expr)
	visit = func(e ast.Expr) {
		for _, id := range identsIn(e) {
			obj := pass.Info.Uses[id]
			if obj == nil || reached[obj] {
				continue
			}
			reached[obj] = true
			for _, rhs := range assigns[obj] {
				visit(rhs)
			}
		}
	}
	visit(e)
	return reached
}
