package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroleakAnalyzer requires every `go` statement to have a statically
// visible join, so no goroutine outlives the work that spawned it — the
// difference between a clean `pimsim` exit and a per-request leak once
// pimsimd keeps the process alive for millions of requests. Accepted
// join evidence, searched through the spawned body and its transitive
// callees (the WaitGroup may balance interprocedurally):
//
//   - a sync.WaitGroup Done whose WaitGroup object also has an Add and a
//     Wait somewhere in the module (the Add/Done/Wait triple);
//   - a send on, or close of, a channel that the module also receives
//     from (a drained completion channel);
//   - an explicit daemon annotation: //lint:ignore goroleak <reason> at
//     the go statement (the obs HTTP server pattern — its join is the
//     Close/<-done handshake).
//
// Object identity is the declared variable or field (s.wg matches across
// methods of one type); a WaitGroup passed by pointer into a helper gets
// distinct parameter identity and needs the triple visible on one object
// or an annotation.
var GoroleakAnalyzer = &Analyzer{
	Name:   "goroleak",
	Doc:    "every go statement needs a matching join: a balanced WaitGroup Add/Done/Wait triple, a drained channel, or a //lint:ignore goroleak daemon annotation",
	Run:    runGoroleak,
	Module: true,
}

// joinFacts is the module-wide evidence base goroutine joins are checked
// against.
type joinFacts struct {
	wgAdds    map[types.Object]bool // objects with a WaitGroup.Add call
	wgWaits   map[types.Object]bool // objects with a WaitGroup.Wait call
	chanRecvs map[types.Object]bool // channels received from (<-, range, select)
}

func runGoroleak(pass *Pass) {
	facts := collectJoinFacts(pass.AllPkgs)
	for _, pkg := range pass.AllPkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				gs, ok := nd.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineJoins(pass, pkg, gs, facts) {
					pass.Reportf(gs.Pos(), "goroutine has no visible join: add a WaitGroup Add/Done/Wait triple or a drained channel, "+
						"or annotate a true daemon with //lint:ignore goroleak <reason>")
				}
				return true
			})
		}
	}
}

// collectJoinFacts scans every package for WaitGroup Add/Wait calls and
// channel receives, keyed by object identity.
func collectJoinFacts(pkgs []*Package) *joinFacts {
	facts := &joinFacts{
		wgAdds:    map[types.Object]bool{},
		wgWaits:   map[types.Object]bool{},
		chanRecvs: map[types.Object]bool{},
	}
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				switch nd := nd.(type) {
				case *ast.CallExpr:
					sel, ok := ast.Unparen(nd.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := info.Uses[sel.Sel]
					switch {
					case methodOn(obj, "sync", "WaitGroup", "Add"):
						if o := leafObj(info, sel.X); o != nil {
							facts.wgAdds[o] = true
						}
					case methodOn(obj, "sync", "WaitGroup", "Wait"):
						if o := leafObj(info, sel.X); o != nil {
							facts.wgWaits[o] = true
						}
					}
				case *ast.UnaryExpr:
					if nd.Op == token.ARROW {
						if o := leafObj(info, nd.X); o != nil {
							facts.chanRecvs[o] = true
						}
					}
				case *ast.RangeStmt:
					if t := info.TypeOf(nd.X); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							if o := leafObj(info, nd.X); o != nil {
								facts.chanRecvs[o] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return facts
}

// leafObj resolves the object a selector or identifier expression names:
// the field for s.wg (stable across every method of the type), the
// variable for a local or parameter.
func leafObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// goroutineJoins reports whether the goroutine spawned by gs carries join
// evidence in its body or any function it transitively calls.
func goroutineJoins(pass *Pass, pkg *Package, gs *ast.GoStmt, facts *joinFacts) bool {
	// Resolve the spawned body: a function literal's own body, or the
	// declaration of a named function/method. A dynamic spawn (go fn() on
	// a func value) has no statically known body and needs an annotation.
	var bodies []*ast.BlockStmt
	var pkgs []*Package
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		bodies = append(bodies, fun.Body)
		pkgs = append(pkgs, pkg)
	default:
		if obj, ok := calleeOf(pkg.Info, gs.Call).(*types.Func); ok {
			if n := pass.Graph.NodeOf(obj); n != nil && n.Decl != nil {
				bodies = append(bodies, n.Decl.Body)
				pkgs = append(pkgs, n.Pkg)
			}
		}
	}
	if len(bodies) == 0 {
		return false
	}

	visited := map[*ast.BlockStmt]bool{}
	var search func(body *ast.BlockStmt, p *Package) bool
	search = func(body *ast.BlockStmt, p *Package) bool {
		if body == nil || visited[body] {
			return false
		}
		visited[body] = true
		found := false
		ast.Inspect(body, func(nd ast.Node) bool {
			if found {
				return false
			}
			switch nd := nd.(type) {
			case *ast.CallExpr:
				if joinEvidenceCall(p.Info, nd, facts) {
					found = true
					return false
				}
				// Recurse into statically resolved module callees: the
				// Done/send may live in a helper the goroutine calls.
				if obj, ok := calleeOf(p.Info, nd).(*types.Func); ok {
					if n := pass.Graph.NodeOf(obj); n != nil && n.Decl != nil {
						if search(n.Decl.Body, n.Pkg) {
							found = true
							return false
						}
					}
				}
			case *ast.SendStmt:
				if o := leafObj(p.Info, nd.Chan); o != nil && facts.chanRecvs[o] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	for i, body := range bodies {
		if search(body, pkgs[i]) {
			return true
		}
	}
	return false
}

// joinEvidenceCall reports whether one call is join evidence: a Done on a
// fully tripled WaitGroup, or a close of a drained channel.
func joinEvidenceCall(info *types.Info, call *ast.CallExpr, facts *joinFacts) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if methodOn(info.Uses[fun.Sel], "sync", "WaitGroup", "Done") {
			if o := leafObj(info, fun.X); o != nil && facts.wgAdds[o] && facts.wgWaits[o] {
				return true
			}
		}
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" && len(call.Args) == 1 {
			if o := leafObj(info, call.Args[0]); o != nil && facts.chanRecvs[o] {
				return true
			}
		}
	}
	return false
}
