package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockheldAnalyzer forbids slow or blocking work while a sync.Mutex or
// sync.RWMutex is held: channel operations, file or network I/O, and obs
// span boundaries. Every mutex in the simulator guards in-memory state on
// a hot path (trace cache admission, metrics registry maps); one blocking
// call under such a lock turns into a convoy the moment pimsimd puts
// concurrent requests behind it, and a span boundary under a lock times
// the lock instead of the phase. The check is interprocedural: the lock
// may be taken here and the blocking call three frames down — calls into
// module functions are checked against their transitive closure (direct
// and interface edges), and the diagnostic prints the chain from the call
// site to the sink.
var LockheldAnalyzer = &Analyzer{
	Name:   "lockheld",
	Doc:    "no channel ops, file/network I/O, or obs span boundaries while a sync.Mutex/RWMutex is held, transitively through callees",
	Run:    runLockheld,
	Module: true,
}

// lockSink is one blocking primitive found directly in a function body.
type lockSink struct {
	pos  token.Pos
	desc string
}

// ioPkgs are the stdlib packages whose calls count as file/network I/O.
var ioPkgs = map[string]bool{"os": true, "net": true, "net/http": true}

// ioExempt lists os functions that only read process state, never touch
// the filesystem or block.
var ioExempt = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Getpid": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
}

func runLockheld(pass *Pass) {
	// Per-node direct sinks, then a reverse BFS from sink-bearing nodes so
	// each node knows its next step toward the nearest sink (for chains).
	direct := map[*Node]lockSink{}
	for _, n := range pass.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		if s, ok := firstDirectSink(n); ok {
			direct[n] = s
		}
	}
	toward, sinkOf := reverseReach(pass.Graph, direct)

	for _, n := range pass.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		lc := &lockChecker{pass: pass, node: n, direct: direct, toward: toward, sinkOf: sinkOf}
		lc.stmts(n.Decl.Body.List, map[types.Object]string{})
	}
}

// firstDirectSink scans one body for its first blocking primitive
// (function literals excluded — they run later, under whatever locks
// their caller holds then).
func firstDirectSink(n *Node) (lockSink, bool) {
	info := n.Pkg.Info
	var sink lockSink
	found := false
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			sink, found = lockSink{nd.Pos(), "channel send"}, true
		case *ast.SelectStmt:
			sink, found = lockSink{nd.Pos(), "select"}, true
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				sink, found = lockSink{nd.Pos(), "channel receive"}, true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nd.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					sink, found = lockSink{nd.Pos(), "range over channel"}, true
				}
			}
		case *ast.CallExpr:
			if desc, ok := directSinkCall(info, nd); ok {
				sink, found = lockSink{nd.Pos(), desc}, true
			}
		}
		return !found
	})
	return sink, found
}

// directSinkCall classifies one call as I/O or a span boundary.
func directSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeOf(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if ioPkgs[path] && !ioExempt[fn.Name()] {
		return path + "." + fn.Name() + " (file/network I/O)", true
	}
	if methodOn(obj, obsPkgPath, "Registry", "Span") || methodOn(obj, obsPkgPath, "Span", "End") {
		return "obs span boundary (" + fn.Name() + ")", true
	}
	return "", false
}

// reverseReach runs a multi-source BFS over reversed EdgeCall/EdgeInterface
// edges from every sink-bearing node. toward[n] is n's first call edge on
// the (shortest) path to a sink; sinkOf[n] is that path's sink node.
func reverseReach(g *CallGraph, direct map[*Node]lockSink) (toward map[*Node]Edge, sinkOf map[*Node]*Node) {
	rev := map[*Node][]Edge{} // callee -> edges whose To is the CALLER
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			if e.Kind != EdgeCall && e.Kind != EdgeInterface {
				continue
			}
			rev[e.To] = append(rev[e.To], Edge{Kind: e.Kind, To: n, Pos: e.Pos})
		}
	}
	toward = map[*Node]Edge{}
	sinkOf = map[*Node]*Node{}
	var queue []*Node
	for _, n := range g.Nodes() { // deterministic seeding order
		if _, ok := direct[n]; ok {
			sinkOf[n] = n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range rev[n] {
			caller := e.To
			if _, ok := sinkOf[caller]; ok {
				continue
			}
			toward[caller] = Edge{Kind: e.Kind, To: n, Pos: e.Pos}
			sinkOf[caller] = sinkOf[n]
			queue = append(queue, caller)
		}
	}
	return toward, sinkOf
}

// sinkChain renders the call path from node n to its nearest sink.
func sinkChain(n *Node, toward map[*Node]Edge) string {
	var b strings.Builder
	b.WriteString(n.Name())
	for {
		e, ok := toward[n]
		if !ok {
			break
		}
		b.WriteString(" -> ")
		b.WriteString(e.To.Name())
		n = e.To
	}
	return b.String()
}

// lockChecker walks one function body tracking which mutexes are held.
// The walk is structural: branch bodies see a copy of the held set (their
// lock/unlock effects don't leak out), matching how the simulator's lock
// regions are written (linear lock..unlock, or lock + defer unlock).
type lockChecker struct {
	pass   *Pass
	node   *Node
	direct map[*Node]lockSink
	toward map[*Node]Edge
	sinkOf map[*Node]*Node
}

func copyHeld(held map[types.Object]string) map[types.Object]string {
	out := make(map[types.Object]string, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (lc *lockChecker) stmts(list []ast.Stmt, held map[types.Object]string) {
	for _, s := range list {
		lc.stmt(s, held)
	}
}

func (lc *lockChecker) stmt(s ast.Stmt, held map[types.Object]string) {
	info := lc.node.Pkg.Info
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj, recv, ok := mutexOp(info, call); ok {
				switch obj {
				case "Lock", "RLock":
					if o := leafObj(info, recv); o != nil {
						held[o] = mutexName(recv)
					}
				case "Unlock", "RUnlock":
					if o := leafObj(info, recv); o != nil {
						delete(held, o)
					}
				}
				return
			}
		}
		lc.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end — the held
		// set simply stays as-is. Other deferred calls run at exit, still
		// under any lock deferred-unlocked here; check them against the
		// current held set (conservative, and exactly right for the
		// lock-then-defer-unlock idiom).
		if _, _, ok := mutexOp(info, s.Call); ok {
			return
		}
		lc.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lc.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lc.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			lc.report(s.Pos(), "channel send", held)
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			lc.report(s.Pos(), "select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lc.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		lc.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.stmt(s.Init, held)
		}
		lc.checkExpr(s.Cond, held)
		lc.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lc.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lc.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lc.checkExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		lc.stmts(s.Body.List, inner)
		if s.Post != nil {
			lc.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(s.X); t != nil && len(held) > 0 {
			if _, ok := t.Underlying().(*types.Chan); ok {
				lc.report(s.Pos(), "range over channel", held)
			}
		}
		lc.checkExpr(s.X, held)
		lc.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lc.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs later, not under these locks; its
		// argument expressions are evaluated now.
		for _, a := range s.Call.Args {
			lc.checkExpr(a, held)
		}
	case *ast.LabeledStmt:
		lc.stmt(s.Stmt, held)
	}
}

// checkExpr scans an expression subtree for sinks while any lock is held.
// Function literals are skipped: they execute later.
func (lc *lockChecker) checkExpr(e ast.Expr, held map[types.Object]string) {
	if e == nil || len(held) == 0 {
		return
	}
	info := lc.node.Pkg.Info
	ast.Inspect(e, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				lc.report(nd.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := directSinkCall(info, nd); ok {
				lc.report(nd.Pos(), desc, held)
				return true
			}
			// A call into a module function whose closure reaches a sink.
			if obj, ok := calleeOf(info, nd).(*types.Func); ok {
				if callee := lc.pass.Graph.NodeOf(obj); callee != nil {
					if sink, ok := lc.sinkOf[callee]; ok {
						lc.report(nd.Pos(), lc.direct[sink].desc+" via "+sinkChain(callee, lc.toward), held)
					}
				}
			}
		}
		return true
	})
}

// report emits one lockheld diagnostic naming the held mutexes.
func (lc *lockChecker) report(pos token.Pos, what string, held map[types.Object]string) {
	names := make([]string, 0, len(held))
	for _, name := range held {
		//lint:ignore nondeterm names are fully sorted before use
		names = append(names, name)
	}
	sortStrings(names)
	lc.pass.Reportf(pos, "%s while mutex %s is held (in %s); release the lock first or move the blocking work out of the critical section",
		what, strings.Join(names, ", "), lc.node.Name())
}

// mutexOp matches a call as a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// and returns the method name and receiver expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	obj := info.Uses[sel.Sel]
	for _, m := range []string{"Lock", "Unlock", "RLock", "RUnlock"} {
		if methodOn(obj, "sync", "Mutex", m) || methodOn(obj, "sync", "RWMutex", m) {
			return m, sel.X, true
		}
	}
	return "", nil, false
}

// mutexName renders the receiver expression of a lock call for
// diagnostics (s.mu, clipOnce, ...).
func mutexName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return mutexName(e.X) + "." + e.Sel.Name
	}
	return "mutex"
}

// sortStrings is a tiny insertion sort, avoiding a sort import collision
// with the rest of the file set.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
