package lint

import (
	"go/ast"
	"go/token"
)

// PhasebalanceAnalyzer verifies that profile phase pushes and pops pair up
// on every control-flow path. Ctx.PushPhase/PopPhase maintain a phase
// stack; an unmatched push leaks its phase label onto every subsequent
// event of the kernel (misattributing energy and traffic in the per-phase
// breakdowns), and an unmatched pop silently restores a stale outer
// phase. Both corrupt figures without failing any test, so the pairing is
// enforced structurally here: branches must agree, loops must be
// net-zero, and every return — including early ones — must exit at the
// depth its deferred pops cover.
var PhasebalanceAnalyzer = &Analyzer{
	Name: "phasebalance",
	Doc:  "profile phase push/pop pairs must balance on every control-flow path",
	Run:  runPhasebalance,
}

func runPhasebalance(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	isPhaseCall := func(call *ast.CallExpr, name string) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != name {
			return false
		}
		obj := pass.Info.Uses[sel.Sel]
		return obj != nil && methodOn(obj, "gopim/internal/profile", "Ctx", name)
	}
	forEachFuncBody(pass.Files, func(name string, body *ast.BlockStmt, end token.Pos) {
		b := &balanceChecker{
			pass:    pass,
			isOpen:  func(c *ast.CallExpr) bool { return isPhaseCall(c, "PushPhase") },
			isClose: func(c *ast.CallExpr) bool { return isPhaseCall(c, "PopPhase") },
			what:    "PushPhase/PopPhase",
		}
		b.check(body, end)
	})
}
