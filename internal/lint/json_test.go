package lint

import (
	"bytes"
	"go/token"
	"reflect"
	"runtime"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	in := []Diagnostic{
		{Analyzer: "nondeterm", Pos: token.Position{Filename: "/m/a.go", Line: 3, Column: 7}, Message: "wall clock"},
		{Analyzer: "lockheld", Pos: token.Position{Filename: "/m/b.go", Line: 14, Column: 2}, Message: "channel send while mutex mu is held"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, in)
	}
}

func TestJSONEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty report decoded to %d diagnostics", len(got))
	}
}

func TestWriteGitHub(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "puritypath",
			Pos:      token.Position{Filename: "/m/src/internal/x.go", Line: 9, Column: 5},
			Message:  "50% off\nline2",
		},
		{
			// A file outside the root passes through unrewritten.
			Analyzer: "goroleak",
			Pos:      token.Position{Filename: "/elsewhere/y.go", Line: 1, Column: 1},
			Message:  "no join",
		},
	}
	var buf bytes.Buffer
	if err := WriteGitHub(&buf, diags, "/m/src"); err != nil {
		t.Fatal(err)
	}
	want := "::error file=internal/x.go,line=9,col=5,title=puritypath::50%25 off%0Aline2\n" +
		"::error file=/elsewhere/y.go,line=1,col=1,title=goroleak::no join\n"
	if buf.String() != want {
		t.Errorf("annotations:\n got %q\nwant %q", buf.String(), want)
	}
}

// BenchmarkGopimlint measures one full analysis pass (all analyzers,
// call-graph build included) over the already-loaded module — the
// recurring cost a developer pays per gopimlint run, minus the one-time
// parse/type-check. Guarded by the <30s wall gate in scripts/check.sh.
func BenchmarkGopimlint(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		b.Fatal(err)
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := RunAnalyzersParallel(pkgs, analyzers, runtime.GOMAXPROCS(0))
		_ = diags
	}
}
