// Package ctxflow exercises the context-threading analyzer. A function
// that accepts a context.Context must not mint context.Background/TODO
// (that detaches callees from the caller's cancellation), and on
// sweep/replay paths — here, everything reachable from kern.Run — its
// loops that do real work must observe ctx somewhere: a ctx.Err() check,
// a select on ctx.Done(), or passing ctx into the loop body.
package ctxflow

import "context"

// Ctx gives Run the kernel entry shape, putting everything it calls on a
// sweep/replay path.
type Ctx struct{ N int }

type kern struct{}

// Run takes no context itself, so the TODO mint here is not flagged; it
// exists only to root the sweep path.
func (kern) Run(c *Ctx) {
	ctx := context.TODO()
	sweep(ctx, c.N)
	sweepChecked(ctx, c.N)
	sweepThreads(ctx, c.N)
	localOnly(ctx, c.N)
	nested(ctx, nil)
}

// sweep loops on a sweep path without ever observing ctx.
func sweep(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "never observes its context"
		step(i)
	}
}

// sweepChecked observes ctx.Err() in the loop condition.
func sweepChecked(ctx context.Context, n int) {
	for i := 0; i < n && ctx.Err() == nil; i++ {
		step(i)
	}
}

// sweepThreads passes ctx into the loop body callee.
func sweepThreads(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		stepCtx(ctx, i)
	}
}

// localOnly's loop performs no calls: it is not a cancellation point.
func localOnly(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// nested reports only the outer loop; the inner one is covered by it.
func nested(ctx context.Context, grid [][]int) {
	for _, row := range grid { // want "never observes its context"
		for _, v := range row {
			step(v)
		}
	}
}

// detach mints a fresh context despite receiving one. Flagged on every
// function, sweep path or not.
func detach(ctx context.Context, n int) {
	bg := context.Background() // want "mints context.Background"
	stepCtx(bg, n)
}

// todoDetach is the context.TODO variant.
func todoDetach(ctx context.Context, n int) {
	stepCtx(context.TODO(), n) // want "mints context.TODO"
}

// offPath is reachable from no entry, so its ctx-blind loop is tolerated
// (the mint ban would still apply).
func offPath(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		step(i)
	}
}

func step(i int) { _ = i }

func stepCtx(ctx context.Context, i int) {
	_ = ctx
	_ = i
}
