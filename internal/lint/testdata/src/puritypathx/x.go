// Package puritypathx is the entry-point half of the cross-package
// puritypath fixtures: loaded under gopim/internal/trace/..., its
// ReplayStream method is a determinism entry whose closure crosses into
// the puritypathdep package.
package puritypathx

import "gopim/internal/fixture/puritypathdep"

// Stream stands in for a trace.
type Stream struct{}

func (s *Stream) ReplayStream() int64 {
	return puritypathdep.Stamp()
}
