// Package goroleak exercises the goroutine-join analyzer: every go
// statement needs a statically visible join — a WaitGroup Add/Done/Wait
// triple (possibly spread across functions, matched by object identity),
// a drained channel (send or close met by a receive somewhere in the
// module), or an explicit daemon annotation. Joinless spawns and spawns
// of unknown func values are flagged.
package goroleak

import "sync"

// leak spawns with no join of any kind.
func leak() {
	go func() { // want "goroutine has no visible join"
		_ = 1 + 1
	}()
}

// tripled balances a local WaitGroup in one function.
func tripled(items []int) int {
	var wg sync.WaitGroup
	total := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total++
		}()
	}
	wg.Wait()
	return total
}

// halfTriple has Add and Done but nothing ever Waits: not a join.
func halfTriple() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine has no visible join"
		defer wg.Done()
	}()
}

// pool spreads its triple across three methods: Add at spawn, Done inside
// the worker, Wait in drain. The identity that ties them together is the
// wg field, stable across every method of the type.
type pool struct {
	wg sync.WaitGroup
	n  int
}

func (p *pool) spawn() {
	p.wg.Add(1)
	go p.work()
}

func (p *pool) work() {
	defer p.wg.Done()
	p.n++
}

func (p *pool) drain() {
	p.wg.Wait()
}

// helper reaches its Done through a callee of the spawned body.
type helper struct{ wg sync.WaitGroup }

func (h *helper) run() {
	h.wg.Add(1)
	go func() {
		h.finish()
	}()
	h.wg.Wait()
}

func (h *helper) finish() { h.wg.Done() }

// drained signals completion by closing a channel the caller receives.
func drained() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// sends delivers its result on a channel the caller drains.
func sends() int {
	ch := make(chan int)
	go func() { ch <- 42 }()
	return <-ch
}

// undrained sends on a channel nothing receives from: not a join.
func undrained() {
	ch := make(chan int, 1)
	go func() { // want "goroutine has no visible join"
		ch <- 1
	}()
}

// dynamic spawns an unknown func value: no statically known body, so it
// needs an annotation.
func dynamic(fn func()) {
	go fn() // want "goroutine has no visible join"
}

// daemon is a process-lifetime goroutine, annotated as such.
func daemon() {
	//lint:ignore goroleak fixture: metrics pump lives for the process lifetime
	go func() {
		for {
			_ = 1
		}
	}()
}
