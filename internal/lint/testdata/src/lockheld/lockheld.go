// Package lockheld exercises the held-mutex analyzer: no channel
// operation, file/network I/O, or obs span boundary may happen while a
// sync.Mutex or RWMutex is held, including through callees (the lock may
// be taken here and the blocking call frames below). Releasing before
// the blocking work, unlocking on an early-out branch, and deferring
// work into a closure that runs after the unlock are all clean.
package lockheld

import (
	"os"
	"sync"

	"gopim/internal/obs"
)

type guarded struct {
	mu sync.Mutex
	ch chan int
	m  map[string]int
}

// recvHeld receives on a channel while mu is held.
func (g *guarded) recvHeld() int {
	g.mu.Lock()
	v := <-g.ch // want `channel receive while mutex g.mu is held`
	g.mu.Unlock()
	return v
}

// sendHeld holds the lock to function end through a defer.
func (g *guarded) sendHeld(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ch <- v // want `channel send while mutex g.mu is held`
}

// ioHeld does file I/O under the lock.
func (g *guarded) ioHeld(path string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return os.ReadFile(path) // want `os.ReadFile .file/network I/O. while mutex g.mu is held`
}

// selectHeld blocks in a select while holding the lock.
func (g *guarded) selectHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select while mutex g.mu is held`
	case v := <-g.ch:
		g.m["v"] = v
	default:
	}
}

// spanHeld opens and closes an obs span under the lock: the span would
// time the lock, not the phase.
func (g *guarded) spanHeld(reg *obs.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sp := reg.Span("phase") // want `obs span boundary .Span. while mutex g.mu is held`
	sp.End()                // want `obs span boundary .End. while mutex g.mu is held`
}

// released unlocks before the blocking work: clean.
func (g *guarded) released(path string) ([]byte, error) {
	g.mu.Lock()
	n := len(g.m)
	g.mu.Unlock()
	if n == 0 {
		return nil, nil
	}
	return os.ReadFile(path)
}

// earlyOut unlocks inside a branch and returns; the fall-through path
// also unlocks before the I/O (the double-checked close shape): clean.
func (g *guarded) earlyOut(path string) error {
	g.mu.Lock()
	if g.m == nil {
		g.mu.Unlock()
		return nil
	}
	g.m["hits"]++
	g.mu.Unlock()
	_, err := os.ReadFile(path)
	return err
}

// deferredWork builds a closure under the lock but the closure runs after
// release: clean.
func (g *guarded) deferredWork(path string) func() ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() ([]byte, error) { return os.ReadFile(path) }
}

// slowHelper hides file I/O one frame down.
func slowHelper(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// relay adds a second frame between the lock and the I/O.
func relay(path string) ([]byte, error) {
	return slowHelper(path)
}

// callsHelperHeld reaches the I/O through one callee while locked.
func (g *guarded) callsHelperHeld(path string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return slowHelper(path) // want `os.ReadFile .file/network I/O. via lockheld.slowHelper while mutex g.mu is held`
}

// deepHeld reaches it through two callees; the chain names both frames.
func (g *guarded) deepHeld(path string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return relay(path) // want `os.ReadFile .file/network I/O. via lockheld.relay -> lockheld.slowHelper while mutex g.mu is held`
}

// callsHelperReleased makes the same calls with the lock released: clean.
func (g *guarded) callsHelperReleased(path string) ([]byte, error) {
	g.mu.Lock()
	g.m["calls"]++
	g.mu.Unlock()
	return relay(path)
}

type rguard struct {
	rw sync.RWMutex
}

// readHeld does I/O under a read lock: readers block writers all the same.
func (r *rguard) readHeld(path string) ([]byte, error) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return os.ReadFile(path) // want `os.ReadFile .file/network I/O. while mutex r.rw is held`
}
