// Package puritypath exercises the interprocedural determinism closure.
// The fixture loads under gopim/internal/trace/..., so its Replay*
// methods are determinism entry points; sinks one or more frames below
// them are flagged with the full call chain, sinks off every entry path
// are not (they are nondeterm's business, at the site). A nondeterm
// suppression neutralizes a map-iteration sink (the justification — keys
// sorted before use — removes the nondeterminism itself) but does NOT
// excuse a wall-clock read on a replay path.
package puritypath

import (
	"math/rand"
	"os"
	"time"
)

// Stream stands in for a trace; its Replay* methods are entry points.
type Stream struct{ n int }

func (s *Stream) ReplayAll() int {
	return helper() + dispatch()
}

// helper sits one frame below the replay path.
func helper() int {
	t := time.Now() // want `time.Now reads the wall clock on a determinism-critical path: puritypath.Stream.ReplayAll -> puritypath.helper`
	return int(t.Unix())
}

// hooks makes impl address-taken: dispatch's h() call resolves to it as a
// dynamic (func value) edge.
var hooks = []func() int{impl}

func dispatch() int {
	total := 0
	for _, h := range hooks {
		total += h()
	}
	return total
}

func impl() int {
	return rand.Intn(10) // want `global math/rand.Intn draws from the shared process-wide source on a determinism-critical path: puritypath.Stream.ReplayAll -> puritypath.dispatch \[calls via func value\] -> puritypath.impl`
}

// Ctx and kern give Run the kernel entry shape: method Run with a single
// *Ctx parameter.
type Ctx struct{ V int }

type kern struct{}

func (kern) Run(c *Ctx) {
	c.V = readEnv()
}

func readEnv() int {
	if os.Getenv("GOPIM_FIXTURE") != "" { // want `os.Getenv reads the process environment on a determinism-critical path: puritypath.kern.Run -> puritypath.readEnv`
		return 1
	}
	return 0
}

// ReplayOrder leaks map iteration order into a slice with no suppression.
func (s *Stream) ReplayOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `order-sensitive use of map iteration on a determinism-critical path: puritypath.Stream.ReplayOrder`
	}
	return keys
}

// ReplayMap carries a nondeterm suppression whose justification (keys
// sorted before use) neutralizes the map-order sink; puritypath honors it.
func (s *Stream) ReplayMap(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore nondeterm keys are fully sorted by the caller before use
		keys = append(keys, k)
	}
	return keys
}

// ReplayTimed shows a nondeterm suppression does NOT excuse a clock read
// on a replay path: the wall clock stays nondeterministic no matter the
// justification, so puritypath needs its own directive.
func (s *Stream) ReplayTimed() int64 {
	//lint:ignore nondeterm fixture: suppressing nondeterm must not silence puritypath
	return time.Now().Unix() // want `time.Now reads the wall clock on a determinism-critical path: puritypath.Stream.ReplayTimed`
}

// offPath is reachable from no entry point; its clock read is out of
// puritypath's scope.
func offPath() int64 {
	return time.Now().Unix()
}
