// Package clean is a fixture that must produce zero findings from every
// analyzer: keyed constructor, seeded local generator, span-batched
// accesses, balanced phases, and order-insensitive map iteration.
package clean

import (
	"fmt"
	"math/rand"

	"gopim/internal/profile"
)

func Kernel(m, n int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("clean %dx%d", m, n),
		Key:        fmt.Sprintf("clean %dx%d", m, n),
		Fn: func(ctx *profile.Ctx) {
			rng := rand.New(rand.NewSource(int64(m*31 + n)))
			buf := ctx.Alloc("buf", m*n)
			ctx.PushPhase("stream")
			ctx.LoadSpanV(buf, 0, n, m, n)
			ctx.Ops(m * (1 + rng.Intn(8)))
			ctx.PopPhase()
		},
	}
}

func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// The store format-version constant referenced by both the encoder and
// the decoder satisfies the storever invariant.
const storeFormatVersion = 1

func encodeEntry(payload []byte) []byte {
	return append([]byte{storeFormatVersion}, payload...)
}

func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) == 0 || data[0] != storeFormatVersion {
		return nil, false
	}
	return data[1:], true
}
