// Package badignore holds a malformed suppression directive (missing
// reason): the driver must report the directive itself and must not let
// it suppress the finding on the next line.
package badignore

import "time"

func now() time.Time {
	//lint:ignore nondeterm
	return time.Now()
}
