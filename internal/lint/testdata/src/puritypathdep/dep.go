// Package puritypathdep is the cross-package half of the puritypath
// fixtures: a helper package whose clock read is flagged only because a
// replay entry point in the puritypathx fixture reaches it across the
// package boundary. The diagnostic lands here, at the sink.
package puritypathdep

import "time"

// Stamp reads the wall clock; puritypathx.Stream.ReplayStream reaches it.
func Stamp() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock on a determinism-critical path: puritypathx.Stream.ReplayStream -> puritypathdep.Stamp`
}
