// Package storever exercises the storever analyzer: the store
// format-version constant must be referenced by both the encoder and the
// decoder. Here the encoder stamps the constant but the decoder checks a
// hardcoded literal — the half-bumped-format hazard — so the constant is
// reported once, for the missing decoder reference.
package storever

const storeFormatVersion = 2 // want `not referenced by any decoder`

const headerLen = 4

func encodeEntry(payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, 'S', 'T', 'O', byte(storeFormatVersion))
	return append(out, payload...)
}

func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < headerLen || data[3] != 2 { // literal 2: rots on the next bump
		return nil, false
	}
	return data[headerLen:], true
}

// decodeLegacy referencing nothing must not satisfy the invariant either.
func decodeLegacy(data []byte) []byte { return data }
