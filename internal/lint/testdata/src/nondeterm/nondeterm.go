// Package nondeterm exercises the nondeterm analyzer: wall-clock reads,
// environment lookups, the global math/rand source, and order-sensitive
// map iteration are flagged; the seeded local generator and
// order-insensitive map use pass.
package nondeterm

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func clock() int64 {
	t := time.Now() // want "wall clock"
	return t.Unix()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

func env() string {
	return os.Getenv("HOME") // want "process environment"
}

func globalRand() int {
	return rand.Intn(10) // want "shared process-wide source"
}

func localRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors build the blessed local generator
	return rng.Intn(10)
}

func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "iteration order is random"
	}
	return out
}

func mapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "rendered output varies"
	}
}

func mapSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // order-insensitive accumulation is fine
	}
	return total
}

func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // slices iterate in order
	}
	return out
}
