// Package callgraph is the unit-test fixture for the call-graph builder:
// direct calls, interface dispatch, method values, dynamic func-value
// calls, and deferred calls.
package callgraph

type doer interface{ Do() int }

type impA struct{}

func (impA) Do() int { return 1 }

type impB struct{}

func (b *impB) Do() int { return 2 }

// viaInterface dispatches through the interface: the call fans out to
// every implementing module method.
func viaInterface(d doer) int { return d.Do() }

func direct() int { return leaf() }

func leaf() int { return 7 }

type box struct{ v int }

func (b *box) get() int { return b.v }

// methodValue takes a bound method as a value (a reference edge) and
// calls it through the variable (a dynamic edge back to the method).
func methodValue(b *box) int {
	f := b.get
	return f()
}

// deferred calls cleanup at function exit; defer sites are ordinary call
// edges.
func deferred() {
	defer cleanup()
}

func cleanup() {}
