// Package spanaccess exercises the spanaccess analyzer: per-row access
// loops with offsets affine in the loop variable must use the batched
// span entry points; data-dependent loops are left alone.
package spanaccess

import "gopim/internal/profile"

const rows, rowBytes, stride = 16, 64, 256

func perRowLoadV(ctx *profile.Ctx) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r++ { // want "one LoadSpanV call"
		ctx.LoadV(buf, r*stride, rowBytes)
	}
}

func perRowScalarStore(ctx *profile.Ctx) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r++ { // want "one StoreSpan call"
		ctx.Store(buf, r*stride, rowBytes)
		ctx.Ops(4)
	}
}

func copyLoop(ctx *profile.Ctx) {
	src := ctx.Alloc("src", rows*stride)
	dst := ctx.Alloc("dst", rows*rowBytes)
	for r := 0; r < rows; r++ { // want "one CopySpanV call"
		srcOff := r * stride
		dstOff := r * rowBytes
		ctx.LoadV(src, srcOff, rowBytes)
		ctx.StoreV(dst, dstOff, rowBytes)
	}
}

func strideTwo(ctx *profile.Ctx) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r += 2 { // want "one LoadSpanV call"
		ctx.LoadV(buf, r*stride, rowBytes)
	}
}

func guardedTail(ctx *profile.Ctx, m int) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r++ { // want "one LoadSpanV call"
		if r < m {
			ctx.LoadV(buf, r*stride, rowBytes)
		}
	}
}

func dataDependentOffset(ctx *profile.Ctx, clamp func(int) int) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r++ {
		off := clamp(r * stride) // computed through a call: not affine
		ctx.LoadV(buf, off, rowBytes)
	}
}

func variableRowSize(ctx *profile.Ctx) {
	buf := ctx.Alloc("buf", rows*stride)
	for r := 0; r < rows; r++ {
		ctx.LoadV(buf, r*stride, rowBytes-r) // row size varies: not one rectangle
	}
}

func alreadyBatched(ctx *profile.Ctx) {
	buf := ctx.Alloc("buf", rows*stride)
	ctx.LoadSpanV(buf, 0, rowBytes, rows, stride)
}

func asymmetricCopy(ctx *profile.Ctx) {
	src := ctx.Alloc("src", rows*stride)
	dst := ctx.Alloc("dst", rows*rowBytes/4)
	for r := 0; r < rows; r++ {
		ctx.LoadV(src, r*stride, rowBytes)
		ctx.StoreV(dst, r*rowBytes/4, rowBytes/4) // rows differ in size: no span covers it
	}
}
