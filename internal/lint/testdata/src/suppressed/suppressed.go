// Package suppressed verifies //lint:ignore handling: every violation
// below is intentional and annotated with a reason, so the package must
// lint clean. Both directive placements are covered — on the line above
// the finding and trailing on the same line.
package suppressed

import (
	"sort"
	"time"
)

func uptime() time.Time {
	//lint:ignore nondeterm fixture exercises directive-above-line suppression
	return time.Now()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) //lint:ignore nondeterm keys are fully sorted before use
	}
	sort.Strings(out)
	return out
}
