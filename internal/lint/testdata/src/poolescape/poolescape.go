// Package poolescape exercises the poolescape analyzer: sync.Pool values
// must be Put back on every path and must not outlive the call.
package poolescape

import "sync"

var pool sync.Pool

var leakedGlobal *[]byte

type holder struct{ buf *[]byte }

func balanced(n int) int {
	bp, _ := pool.Get().(*[]byte)
	if bp == nil || cap(*bp) < n {
		s := make([]byte, n)
		bp = &s
	}
	work := (*bp)[:n]
	total := 0
	for i := range work {
		work[i] = byte(i)
		total += int(work[i])
	}
	pool.Put(bp)
	return total
}

func deferredPut(n int) int {
	bp, _ := pool.Get().(*[]byte)
	if bp == nil {
		s := make([]byte, n)
		bp = &s
	}
	defer pool.Put(bp)
	return cap(*bp)
}

func missingPut() {
	bp := pool.Get()
	_ = bp
} // want `function exits at depth \+1`

func putOnOnePathOnly(ok bool) {
	bp := pool.Get()
	if ok { // want "branches of if end at different depths"
		pool.Put(bp)
	}
}

func escapesViaReturn() *[]byte {
	bp, _ := pool.Get().(*[]byte)
	pool.Put(bp)
	return bp // want "escapes via return"
}

func escapesToGlobal() {
	bp, _ := pool.Get().(*[]byte)
	leakedGlobal = bp // want "package-level variable"
	pool.Put(bp)
}

func escapesToField(h *holder) {
	bp, _ := pool.Get().(*[]byte)
	h.buf = bp // want "outlives the call"
	pool.Put(bp)
}

func putWithoutGet(bp *[]byte) {
	pool.Put(bp) // want "close without matching open"
}
