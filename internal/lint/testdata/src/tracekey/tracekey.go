// Package tracekey exercises the tracekey analyzer: every kernel
// constructor must set a non-empty cache key that (transitively)
// references every constructor parameter.
package tracekey

import (
	"fmt"

	"gopim/internal/profile"
)

func NoKey(n int) profile.Kernel {
	return profile.KernelFunc{ // want "without a Key"
		KernelName: fmt.Sprintf("nokey %d", n),
		Fn:         func(ctx *profile.Ctx) { ctx.Ops(n) },
	}
}

func EmptyKey(n int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: "empty",
		Key:        "", // want "empty Key"
		Fn:         func(ctx *profile.Ctx) { ctx.Ops(n) },
	}
}

func MissingParam(m, n int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: "missing",
		Key:        fmt.Sprintf("missing %d", m), // want `omits constructor parameter\(s\) n`
		Fn:         func(ctx *profile.Ctx) { ctx.Ops(m * n) },
	}
}

func Good(m, n int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: "good",
		Key:        fmt.Sprintf("good %dx%d", m, n),
		Fn:         func(ctx *profile.Ctx) { ctx.Ops(m * n) },
	}
}

// Transitive covers parameters reaching the key through intermediate
// locals (the nn.LayerKernel pattern: m, k, n := l.GEMMShape(scale)).
func Transitive(m, n int) profile.Kernel {
	shape := fmt.Sprintf("%dx%d", m, n)
	k := profile.KernelFunc{
		KernelName: "transitive",
		Key:        "transitive " + shape,
		Fn:         func(ctx *profile.Ctx) { ctx.Ops(m * n) },
	}
	return k
}

// Delegating constructors are the callee's responsibility.
func Delegating(m, n int) profile.Kernel {
	return Good(m, n)
}
