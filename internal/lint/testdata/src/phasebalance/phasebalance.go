// Package phasebalance exercises the phasebalance analyzer: every
// PushPhase must meet a PopPhase on every control-flow path.
package phasebalance

import "gopim/internal/profile"

func balanced(ctx *profile.Ctx) {
	ctx.PushPhase("sub")
	ctx.Ops(1)
	ctx.PopPhase()
}

func balancedEarlyReturn(ctx *profile.Ctx, skip bool) {
	ctx.PushPhase("sub")
	if skip {
		ctx.PopPhase()
		return
	}
	ctx.Ops(1)
	ctx.PopPhase()
}

func deferredPop(ctx *profile.Ctx, skip bool) {
	ctx.PushPhase("sub")
	defer ctx.PopPhase()
	if skip {
		return
	}
	ctx.Ops(1)
}

func balancedLoop(ctx *profile.Ctx) {
	for i := 0; i < 4; i++ {
		ctx.PushPhase("iter")
		ctx.Ops(1)
		ctx.PopPhase()
	}
}

func leakedPush(ctx *profile.Ctx) {
	ctx.PushPhase("sub")
	ctx.Ops(1)
} // want `function exits at depth \+1`

func earlyReturnLeak(ctx *profile.Ctx, skip bool) {
	ctx.PushPhase("sub")
	if skip {
		return // want `return at depth \+1`
	}
	ctx.Ops(1)
	ctx.PopPhase()
}

func unbalancedBranches(ctx *profile.Ctx, deep bool) {
	if deep { // want "branches of if end at different depths"
		ctx.PushPhase("deep")
	}
	ctx.Ops(1)
	ctx.PopPhase()
}

func loopNetPush(ctx *profile.Ctx) {
	for i := 0; i < 4; i++ { // want `loop body has net depth \+1`
		ctx.PushPhase("iter")
		ctx.Ops(1)
	}
}

func extraPop(ctx *profile.Ctx) {
	ctx.PopPhase() // want "close without matching open"
}
