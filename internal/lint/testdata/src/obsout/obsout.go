// Package obsout exercises the obsout analyzer: obs spans must balance on
// every control-flow path, and the run report must never target os.Stdout.
package obsout

import (
	"os"

	"gopim/internal/obs"
)

func balanced(r *obs.Registry) {
	sp := r.Span("phase.record")
	work()
	sp.End()
}

func balancedEarlyReturn(r *obs.Registry, skip bool) {
	sp := r.Span("phase.record")
	if skip {
		sp.End()
		return
	}
	work()
	sp.End()
}

func deferredEnd(r *obs.Registry, skip bool) {
	sp := r.Span("phase.compile")
	defer sp.End()
	if skip {
		return
	}
	work()
}

func deferredOneLiner(r *obs.Registry, skip bool) {
	defer r.Span("phase.replay.batch").End()
	if skip {
		return
	}
	work()
}

func balancedLoop(r *obs.Registry) {
	for i := 0; i < 4; i++ {
		sp := r.Span("phase.price")
		work()
		sp.End()
	}
}

func leakedSpan(r *obs.Registry) {
	sp := r.Span("phase.record")
	work()
	_ = sp
} // want `function exits at depth \+1`

func earlyReturnLeak(r *obs.Registry, skip bool) {
	sp := r.Span("phase.record")
	if skip {
		return // want `return at depth \+1`
	}
	work()
	sp.End()
}

func unbalancedBranches(r *obs.Registry, deep bool) {
	var sp obs.Span
	if deep { // want "branches of if end at different depths"
		sp = r.Span("phase.price")
	}
	work()
	sp.End()
}

func loopNetOpen(r *obs.Registry) {
	var last obs.Span
	for i := 0; i < 4; i++ { // want `loop body has net depth \+1`
		last = r.Span("phase.price")
		work()
	}
	_ = last
}

func extraEnd(sp obs.Span) {
	sp.End() // want "close without matching open"
}

func reportToStdout(rep *obs.Report) {
	rep.WriteText(os.Stdout) // want "obs run report written to os.Stdout"
}

func reportToStderrOK(rep *obs.Report) error {
	rep.WriteText(os.Stderr)
	return rep.WriteJSON(os.Stderr)
}

func work() {}
