// Package obs is a fixture type-checked under the import path
// gopim/internal/obs (see TestObsoutObsPackageFixture), exercising the
// obsout rule that the observability package itself may never reference
// os.Stdout. It must not import the real obs package: it occupies its
// import path in the loader.
package obs

import (
	"fmt"
	"os"
)

var stdoutAlias = os.Stdout // want "os.Stdout referenced in package obs"

func writeToStderrOK() {
	fmt.Fprintln(os.Stderr, "stats")
}

func writeToStdout() {
	fmt.Fprintln(os.Stdout, "stats") // want "os.Stdout referenced in package obs"
}
