package lint

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer enforces the cancellation plumbing pimsimd (ROADMAP
// item 1) depends on: once a function accepts a context.Context it must
// actually thread it —
//
//   - it must not mint a fresh context.Background()/context.TODO() (that
//     silently detaches every callee from the caller's cancellation), and
//   - on sweep/replay paths (functions reachable from the determinism
//     entry points plus the experiment sweep drivers), loops that do real
//     work must observe the context — reference ctx somewhere in the loop
//     (ctx.Err() check, select on ctx.Done(), or passing ctx into a
//     callee) — so a cancelled job stops in bounded time instead of
//     finishing a multi-second sweep it no longer owns.
//
// The tree has no context plumbing yet; this analyzer is the rail it
// grows along.
var CtxflowAnalyzer = &Analyzer{
	Name:   "ctxflow",
	Doc:    "a ctx-receiving function must not mint context.Background/TODO, and its long-running loops on sweep/replay paths must observe ctx",
	Run:    runCtxflow,
	Module: true,
}

func runCtxflow(pass *Pass) {
	// Sweep/replay closure: the determinism entries plus the experiment
	// sweep drivers (RunAll/RunNamed/Warm and the explore surface).
	var roots []*Node
	for _, n := range pass.Graph.Nodes() {
		if isDeterminismEntry(n) || isSweepDriver(n) {
			roots = append(roots, n)
		}
	}
	onSweepPath := pass.Graph.Reach(roots, nil)

	for _, n := range pass.Graph.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		ctxParams := contextParams(n)
		if len(ctxParams) == 0 {
			continue
		}
		checkCtxBody(pass, n, ctxParams, onSweepPath.Reachable(n))
	}
}

// isSweepDriver matches the experiment sweep entry points by name in the
// experiments package (RunAll, RunNamed, Warm, Explore*).
func isSweepDriver(n *Node) bool {
	fn := n.Func
	if fn.Pkg() == nil || fn.Pkg().Path() != "gopim/experiments" {
		return false
	}
	switch name := fn.Name(); {
	case name == "RunAll" || name == "RunNamed" || name == "Warm":
		return true
	case len(name) >= 7 && name[:7] == "Explore":
		return true
	}
	return false
}

// contextParams returns the objects of n's context.Context parameters.
func contextParams(n *Node) []types.Object {
	sig, ok := n.Func.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Object
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			out = append(out, p)
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// checkCtxBody walks one ctx-receiving function.
func checkCtxBody(pass *Pass, n *Node, ctxParams []types.Object, onSweepPath bool) {
	info := n.Pkg.Info

	usesCtx := func(sub ast.Node) bool {
		found := false
		ast.Inspect(sub, func(nd ast.Node) bool {
			if id, ok := nd.(*ast.Ident); ok {
				for _, p := range ctxParams {
					if info.Uses[id] == p {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}

	// flagged tracks loops already reported (or covered), so a nested loop
	// under an already-reported one is not re-reported.
	flagged := map[ast.Node]bool{}

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			obj := calleeOf(info, nd)
			if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
				pass.Reportf(nd.Pos(),
					"%s receives a context.Context but mints context.%s here, detaching callees from the caller's cancellation; thread the incoming ctx instead",
					n.Name(), obj.Name())
			}
		case *ast.ForStmt, *ast.RangeStmt:
			if !onSweepPath || flagged[nd] {
				return true
			}
			// A loop that references ctx anywhere in its subtree observes
			// cancellation (directly or by passing ctx down). One that does
			// real work (contains calls) without any ctx reference cannot be
			// cancelled.
			if usesCtx(nd) || !loopHasCall(loopBody(nd)) {
				return true
			}
			pass.Reportf(nd.Pos(),
				"loop in %s (on a sweep/replay path) never observes its context: check ctx.Err() or select on ctx.Done() per iteration, or pass ctx into the loop body",
				n.Name())
			// Suppress nested duplicates.
			ast.Inspect(loopBody(nd), func(inner ast.Node) bool {
				switch inner.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					flagged[inner] = true
				}
				return true
			})
		}
		return true
	})
}

// loopBody returns the body block of a for or range statement.
func loopBody(nd ast.Node) *ast.BlockStmt {
	switch nd := nd.(type) {
	case *ast.ForStmt:
		return nd.Body
	case *ast.RangeStmt:
		return nd.Body
	}
	return nil
}

// loopHasCall reports whether the subtree performs any call (loops that
// only shuffle locals are not cancellation points).
func loopHasCall(sub ast.Node) bool {
	found := false
	ast.Inspect(sub, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
