package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the lint framework: a
// module-wide static call graph computed once per run and shared by every
// analyzer through Pass.Graph. Local analyzers (nondeterm, spanaccess, ...)
// inspect one function at a time; the graph lets the interprocedural
// analyzers (puritypath, goroleak, ctxflow, lockheld) reason about what a
// function *transitively* does — a helper that reads the wall clock two
// frames below a replay path is exactly as much a violation as the replay
// path doing it directly.
//
// The graph is conservative (over-approximating) in the directions the
// invariants care about:
//
//   - Direct calls and concrete method calls resolve through go/types to
//     their single static target (EdgeCall).
//   - A call through an interface method fans out to every module method
//     that implements the interface, resolved via go/types method sets
//     (EdgeInterface).
//   - A call of a function *value* (a func-typed variable, struct field,
//     parameter, or call result) fans out to every module function whose
//     value is taken somewhere and whose signature matches the call site
//     (EdgeDynamic) — this is how the experiment registry's Compute/Render
//     columns and profile.KernelFunc.Fn resolve.
//   - A function that merely *references* another function as a value
//     (passes it, stores it, assigns it) gets an EdgeRef to it: the callee
//     may run it, so for reachability purposes the referencer can reach it.
//
// Function literals are attributed to their enclosing declared function:
// the closure's body is treated as part of the encloser, which
// over-approximates (the encloser "reaches" the closure's effects even if
// the closure is never invoked) but never misses a real path. Calls inside
// package-level variable initializers are not graph edges (there is no
// enclosing function); address-taken detection still sees them, which is
// what makes registry tables like experiments.registry resolve.

// EdgeKind classifies how a call-graph edge was resolved.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call (function or concrete method).
	EdgeCall EdgeKind = iota
	// EdgeInterface is a call through an interface method, fanned out to
	// every implementing module method.
	EdgeInterface
	// EdgeDynamic is a call of a func-typed value, fanned out to every
	// address-taken module function with an identical signature.
	EdgeDynamic
	// EdgeRef records that a function takes another function's value
	// without calling it; the value's eventual caller is unknown, so
	// reachability treats the reference as a possible call.
	EdgeRef
)

// String names the edge kind for diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "calls"
	case EdgeInterface:
		return "calls via interface"
	case EdgeDynamic:
		return "calls via func value"
	case EdgeRef:
		return "references"
	}
	return "?"
}

// Edge is one resolved call (or reference) from a node.
type Edge struct {
	Kind EdgeKind
	To   *Node
	Pos  token.Pos // call or reference site in the caller
}

// Node is one declared module function or method in the call graph.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []Edge
}

// Name returns the node's diagnostic name: pkg.Func or pkg.Recv.Method.
func (n *Node) Name() string {
	fn := n.Func
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// methodInfo is one concrete module method, a candidate target for
// interface dispatch.
type methodInfo struct {
	node *Node
	recv types.Type // receiver type as declared (pointer kept)
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	nodes map[*types.Func]*Node
	// order lists nodes sorted by source position, for deterministic
	// iteration (map order would make diagnostics flap between runs).
	order []*Node
}

// NodeOf returns the graph node for fn, or nil if fn is not a declared
// module function.
func (g *CallGraph) NodeOf(fn *types.Func) *Node {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node in deterministic (source position) order.
func (g *CallGraph) Nodes() []*Node {
	if g == nil {
		return nil
	}
	return g.order
}

// valueSig returns the signature a function has when used as a value: for
// methods, the receiver moves out of the parameter list, so a method value
// t.M and a plain function with M's remaining parameters compare equal.
func valueSig(fn *types.Func) *types.Signature {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// BuildCallGraph constructs the call graph over pkgs. It is pure analysis
// state: build once, then share read-only across analyzers and goroutines.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*Node{}}

	// Pass 1: one node per declared function/method, plus the set of
	// concrete methods (candidate targets for interface dispatch).
	var methods []methodInfo
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.order = append(g.order, n)
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
					methods = append(methods, methodInfo{node: n, recv: sig.Recv().Type()})
				}
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		pi := g.order[i].Pkg.Fset.Position(g.order[i].Func.Pos())
		pj := g.order[j].Pkg.Fset.Position(g.order[j].Func.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	// Pass 2: the address-taken set — functions whose value escapes into a
	// variable, field, argument, or composite literal anywhere in the
	// module (including package-level initializers like the experiments
	// registry). These are the candidate targets of dynamic calls.
	var taken []*Node
	seenTaken := map[*Node]bool{}
	for _, pkg := range pkgs {
		callees := calleeIdents(pkg.Files)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				id, ok := nd.(*ast.Ident)
				if !ok || callees[id] {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if n := g.nodes[fn.Origin()]; n != nil && !seenTaken[n] {
					seenTaken[n] = true
					taken = append(taken, n)
				}
				return true
			})
		}
	}

	// Pass 3: edges. Each declared function's body — including any function
	// literals it encloses — is scanned for calls and references.
	for _, pkg := range pkgs {
		callees := calleeIdents(pkg.Files)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				from := g.nodes[fn]
				if from == nil {
					continue
				}
				b := &edgeBuilder{
					g: g, pkg: pkg, from: from,
					methods: methods, taken: taken, callees: callees,
				}
				ast.Inspect(fd.Body, b.visit)
				from.Out = b.out
			}
		}
	}
	return g
}

// calleeIdents marks every identifier appearing in call position (f(...)
// or x.f(...)); any other identifier resolving to a module function is an
// address-taken use of its value.
func calleeIdents(files []*ast.File) map[*ast.Ident]bool {
	callees := map[*ast.Ident]bool{}
	for _, f := range files {
		ast.Inspect(f, func(nd ast.Node) bool {
			call, ok := nd.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callees[fun] = true
			case *ast.SelectorExpr:
				callees[fun.Sel] = true
			}
			return true
		})
	}
	return callees
}

// edgeBuilder accumulates one function's outgoing edges.
type edgeBuilder struct {
	g       *CallGraph
	pkg     *Package
	from    *Node
	methods []methodInfo
	taken   []*Node
	callees map[*ast.Ident]bool

	out  []Edge
	seen map[edgeKey]bool
}

type edgeKey struct {
	kind EdgeKind
	to   *Node
}

func (b *edgeBuilder) add(kind EdgeKind, to *Node, pos token.Pos) {
	if to == nil || to == b.from {
		return
	}
	if b.seen == nil {
		b.seen = map[edgeKey]bool{}
	}
	k := edgeKey{kind, to}
	if b.seen[k] {
		return
	}
	b.seen[k] = true
	b.out = append(b.out, Edge{Kind: kind, To: to, Pos: pos})
}

func (b *edgeBuilder) visit(nd ast.Node) bool {
	switch nd := nd.(type) {
	case *ast.CallExpr:
		b.call(nd)
	case *ast.Ident:
		// A module function referenced outside call position: its value
		// escapes here, so the enclosing function may cause it to run.
		if !b.callees[nd] {
			if fn, ok := b.pkg.Info.Uses[nd].(*types.Func); ok {
				b.add(EdgeRef, b.g.nodes[fn.Origin()], nd.Pos())
			}
		}
	}
	return true
}

// call resolves one call expression into edges.
func (b *edgeBuilder) call(call *ast.CallExpr) {
	// Type conversions are not calls.
	if tv, ok := b.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := b.pkg.Info.Uses[fun].(type) {
		case *types.Func:
			b.add(EdgeCall, b.g.nodes[obj.Origin()], call.Pos())
			return
		case *types.Builtin, *types.TypeName:
			return
		default:
			_ = obj // func-typed variable or unresolved: dynamic call below
		}
	case *ast.SelectorExpr:
		if obj, ok := b.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if sel, ok := b.pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				if recv := sel.Recv(); recv != nil {
					if iface, ok := recv.Underlying().(*types.Interface); ok {
						b.interfaceCall(obj.Name(), iface, call.Pos())
						return
					}
				}
			}
			b.add(EdgeCall, b.g.nodes[obj.Origin()], call.Pos())
			return
		}
	}

	// Anything else with a function type is a dynamic call: a func-typed
	// variable, field, parameter, map element, or call result.
	if tv, ok := b.pkg.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			b.dynamicCall(sig, call.Pos())
		}
	}
}

// interfaceCall fans an interface method call out to every module method
// implementing the interface.
func (b *edgeBuilder) interfaceCall(name string, iface *types.Interface, pos token.Pos) {
	for _, m := range b.methods {
		if m.node.Func.Name() != name {
			continue
		}
		if types.Implements(m.recv, iface) || types.Implements(types.NewPointer(m.recv), iface) {
			b.add(EdgeInterface, m.node, pos)
		}
	}
}

// dynamicCall fans a func-value call out to every address-taken module
// function whose value signature matches the call site.
func (b *edgeBuilder) dynamicCall(sig *types.Signature, pos token.Pos) {
	for _, n := range b.taken {
		if vs := valueSig(n.Func); vs != nil && types.Identical(vs, sig) {
			b.add(EdgeDynamic, n, pos)
		}
	}
}

// ---- reachability ----

// Walk is one reachability computation over the graph: a BFS from a root
// set across a caller-selected set of edge kinds, retaining parent
// pointers so diagnostics can print the full call chain from an entry
// point to a violation.
type Walk struct {
	parent map[*Node]Edge // discovered node -> edge whose To is the CALLER
	root   map[*Node]bool
	order  []*Node // visit order (deterministic)
}

// Reach computes reachability from roots across edges whose kind passes
// follow (nil follows every kind). Roots are visited in the given order
// and edges in declaration order, so chains are deterministic: the chain
// reported for a node is the first (shortest, then earliest) one found.
func (g *CallGraph) Reach(roots []*Node, follow func(EdgeKind) bool) *Walk {
	w := &Walk{parent: map[*Node]Edge{}, root: map[*Node]bool{}}
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil || w.root[r] {
			continue
		}
		w.root[r] = true
		queue = append(queue, r)
		w.order = append(w.order, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if follow != nil && !follow(e.Kind) {
				continue
			}
			if w.root[e.To] {
				continue
			}
			if _, ok := w.parent[e.To]; ok {
				continue
			}
			w.parent[e.To] = Edge{Kind: e.Kind, To: n, Pos: e.Pos}
			queue = append(queue, e.To)
			w.order = append(w.order, e.To)
		}
	}
	return w
}

// Reachable reports whether n was reached (roots count as reached).
func (w *Walk) Reachable(n *Node) bool {
	if n == nil {
		return false
	}
	if w.root[n] {
		return true
	}
	_, ok := w.parent[n]
	return ok
}

// Visited returns every reached node in deterministic visit order.
func (w *Walk) Visited() []*Node { return w.order }

// ChainStep is one frame of a printed call chain. Kind labels the edge
// from this step to the next (meaningless on the final step).
type ChainStep struct {
	Node *Node
	Kind EdgeKind
}

// Chain returns the call chain from a root to n: [root, ..., n]. Nil if n
// was not reached.
func (w *Walk) Chain(n *Node) []ChainStep {
	if !w.Reachable(n) {
		return nil
	}
	// Walk parent pointers from n up to a root; rev[i].Kind labels the
	// edge from rev[i]'s caller into rev[i].
	var rev []ChainStep
	cur, kind := n, EdgeCall
	for {
		rev = append(rev, ChainStep{Node: cur, Kind: kind})
		if w.root[cur] {
			break
		}
		e := w.parent[cur]
		kind = e.Kind
		cur = e.To
	}
	// Reverse into root-first order. rev[i].Kind labels the edge from
	// rev[i] into rev[i-1], so after reversal out[j].Kind is exactly "how
	// out[j] reaches out[j+1]".
	out := make([]ChainStep, len(rev))
	for i, st := range rev {
		out[len(rev)-1-i] = st
	}
	return out
}

// ChainString renders a chain as "a -> b -> c" with edge-kind annotations
// on non-direct links.
func ChainString(chain []ChainStep) string {
	var b strings.Builder
	for i, st := range chain {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(st.Node.Name())
		if i+1 < len(chain) && st.Kind != EdgeCall {
			b.WriteString(" [" + st.Kind.String() + "]")
		}
	}
	return b.String()
}
