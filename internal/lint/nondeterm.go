package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NondetermAnalyzer flags sources of run-to-run nondeterminism in
// simulator code. Every profile, trace and rendered figure must be
// bit-identical across serial/parallel runs, trace-cache on/off and
// record/replay; wall-clock reads, the process-global math/rand source,
// environment lookups, and map iteration that feeds slices or output all
// break that silently.
var NondetermAnalyzer = &Analyzer{
	Name: "nondeterm",
	Doc:  "flags wall-clock, global rand, env reads, and ordered use of map iteration in simulator packages",
	Run:  runNondeterm,
}

// randConstructors are the math/rand package functions that build a local,
// seedable generator — the blessed pattern rand.New(rand.NewSource(seed)).
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runNondeterm(pass *Pass) {
	if !simScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetermCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

func checkNondetermCall(pass *Pass, call *ast.CallExpr) {
	obj := calleeOf(pass.Info, call)
	if obj == nil {
		return
	}
	switch {
	case isPkgFunc(obj, "time", "Now") || isPkgFunc(obj, "time", "Since"):
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock; simulator results must not depend on real time (derive timing from the timing model)",
			obj.Name())
	case isPkgFunc(obj, "os", "Getenv") || isPkgFunc(obj, "os", "LookupEnv") || isPkgFunc(obj, "os", "Environ"):
		pass.Reportf(call.Pos(),
			"os.%s makes results depend on the process environment; thread configuration through parameters instead",
			obj.Name())
	case isGlobalRandFunc(obj):
		pass.Reportf(call.Pos(),
			"global math/rand.%s draws from the shared process-wide source; construct a local generator with rand.New(rand.NewSource(seed)) from a parameter-derived seed",
			obj.Name())
	}
}

// isGlobalRandFunc reports whether obj is a package-level math/rand
// function drawing from the global source (rand.Intn, rand.Read, ...).
// Constructors (rand.New, rand.NewSource) and methods on a locally
// constructed *rand.Rand are the deterministic alternative and pass.
func isGlobalRandFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return !randConstructors[fn.Name()]
}

// checkMapRange flags range-over-map loops whose body appends to a slice
// or writes output: iteration order varies between runs, so anything
// order-sensitive built inside the loop is nondeterministic. Collect the
// keys, sort them, and iterate the sorted slice instead (or suppress with
// a reason when a total sort follows).
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				pass.Reportf(call.Pos(),
					"append inside range over map: iteration order is random, so the slice order varies between runs; iterate sorted keys")
				return true
			}
		}
		if obj := calleeOf(pass.Info, call); obj != nil {
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				pass.Reportf(call.Pos(),
					"output written inside range over map: iteration order is random, so rendered output varies between runs; iterate sorted keys")
			}
		}
		return true
	})
}
