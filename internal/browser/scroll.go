package browser

import (
	"fmt"
	"math/rand"

	"gopim/internal/gfx"
	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

// Scrolling (paper §4.2): each scrolled frame triggers layout,
// rasterization of newly exposed content (through the color blitter),
// texture tiling of the fresh bitmaps, and compositing.

// Phase labels matching Figure 1's breakdown.
const (
	PhaseTiling   = "Texture Tiling"
	PhaseBlitting = "Color Blitting"
	PhaseOther    = "Other"
)

// ScrollPhases lists Figure 1's categories in presentation order.
var ScrollPhases = []string{PhaseTiling, PhaseBlitting, PhaseOther}

// Viewport geometry: a Chromebook-class screen drawn as two 1024x512
// texture layers per frame region.
const (
	ViewportW = 1024
	ViewportH = 512
)

// ScrollKernel returns the instrumented scrolling kernel: scrolling the
// given page for frames frames at one viewport-quarter per frame.
func ScrollKernel(page PageSpec, frames int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("scroll %s", page.Name),
		Key:        fmt.Sprintf("scroll %+v f%d", page, frames),
		Fn:         func(ctx *profile.Ctx) { runScroll(ctx, page, frames) },
	}
}

func runScroll(ctx *profile.Ctx, page PageSpec, frames int) {
	rng := rand.New(rand.NewSource(int64(len(page.Name)) * 7919))

	layerBuf := ctx.Alloc("layer bitmap", ViewportW*ViewportH*gfx.BytesPerPixel)
	srcBuf := ctx.Alloc("decoded images", ViewportW*ViewportH*gfx.BytesPerPixel)
	tileBuf := ctx.Alloc("texture tiles", texture.TiledSize(ViewportW, ViewportH))
	layer := gfx.FromPix(ViewportW, ViewportH, layerBuf.Data)
	srcImg := gfx.FromPix(ViewportW, ViewportH, srcBuf.Data)
	srcImg.FillPattern(99)

	// The DOM/render tree and style data walked by layout and script.
	domBuf := ctx.Alloc("render tree", page.DOMNodes*128)

	scrollStep := ViewportH / 4
	for f := 0; f < frames; f++ {
		// Layout, style recalculation, JavaScript scroll handlers, event
		// dispatch: the long tail the paper folds into "Other" (each
		// individual function is <1% of energy).
		ctx.SetPhase(PhaseOther)
		ctx.LoadV(domBuf, 0, domBuf.Len())
		ctx.StoreV(domBuf, 0, domBuf.Len()/4)
		ctx.Ops(page.DOMNodes * 280)
		ctx.Refs(page.DOMNodes * 40)

		// Rasterize the newly exposed strip plus animated regions.
		ctx.SetPhase(PhaseBlitting)
		exposed := scrollStep + int(float64(ViewportH)*page.AnimatedFraction)
		if exposed > ViewportH {
			exposed = ViewportH
		}
		// Newly exposed content plus continuously animated objects, which
		// repaint every frame.
		nObjects := page.ObjectsPerScreen*scrollStep/ViewportH +
			int(float64(page.ObjectsPerScreen)*page.AnimatedFraction*2)
		if nObjects < 1 {
			nObjects = 1
		}
		for i := 0; i < nObjects; i++ {
			w := 48 + rng.Intn(ViewportW/3)
			h := 8 + rng.Intn(56)
			x := rng.Intn(ViewportW - w + 1)
			y := rng.Intn(maxInt(ViewportH-h, 1))
			r := gfx.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			roll := rng.Float64()
			switch {
			case roll < page.TextFraction:
				// Text runs: alpha-blended glyphs.
				blit.TraceBlend(ctx, layerBuf, layer, srcBuf, srcImg, r)
			case roll < page.TextFraction+page.ImageFraction:
				// Images: decoded-bitmap copies.
				blit.TraceCopy(ctx, layerBuf, layer, srcBuf, srcImg, r)
			default:
				// Backgrounds, borders: solid fills.
				blit.TraceFill(ctx, layerBuf, layer, r, gfx.Color{R: byte(i), G: 0x66, B: 0x99, A: 0xFF})
			}
		}

		// Texture tiling: the strip's layers are re-tiled for the GPU.
		ctx.SetPhase(PhaseTiling)
		tileRows := (exposed + texture.TileH - 1) / texture.TileH
		tx, _ := texture.TilesFor(ViewportW, ViewportH)
		startRow := rng.Intn(maxInt(ViewportH/texture.TileH-tileRows, 1))
		for ty := startRow; ty < startRow+tileRows; ty++ {
			for txi := 0; txi < tx; txi++ {
				srcOff := (ty*texture.TileH)*layer.Stride + txi*texture.TileRowB
				dstOff := (ty*tx + txi) * texture.TileBytes
				ctx.CopySpanV(layerBuf, srcOff, tileBuf, dstOff,
					texture.TileRowB, texture.TileH, layer.Stride, texture.TileRowB)
				ctx.Ops(4 * texture.TileH)
				for row := 0; row < texture.TileH; row++ {
					s, d := srcOff+row*layer.Stride, dstOff+row*texture.TileRowB
					copy(tileBuf.Data[d:d+texture.TileRowB], layerBuf.Data[s:s+texture.TileRowB])
				}
			}
		}

		// Compositing: the GPU reads the fresh tiles (modelled as traffic
		// attributed to Other; the GPU's own datapath is out of scope).
		ctx.SetPhase(PhaseOther)
		ctx.LoadV(tileBuf, 0, tileRows*tx*texture.TileBytes)
		ctx.SIMD(tileRows * tx * texture.TileBytes / 64)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
