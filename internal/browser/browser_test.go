package browser

import (
	"bytes"
	"testing"

	"gopim/internal/lzo"
	"gopim/internal/profile"
)

func TestScrollPagesSet(t *testing.T) {
	pages := ScrollPages()
	if len(pages) != 6 {
		t.Fatalf("got %d pages, want 6 (Figure 1)", len(pages))
	}
	seen := map[string]bool{}
	for _, p := range pages {
		if seen[p.Name] {
			t.Errorf("duplicate page %q", p.Name)
		}
		seen[p.Name] = true
		if p.TextFraction+p.ImageFraction > 1 {
			t.Errorf("%s: content fractions exceed 1", p.Name)
		}
		if p.DOMNodes <= 0 || p.ObjectsPerScreen <= 0 || p.TabFootprint <= 0 {
			t.Errorf("%s: non-positive parameters", p.Name)
		}
	}
}

func TestScrollKernelPhases(t *testing.T) {
	_, phases := profile.Run(profile.SoC(), ScrollKernel(GoogleDocs(), 4))
	for _, want := range ScrollPhases {
		if _, ok := phases[want]; !ok {
			t.Errorf("missing phase %q", want)
		}
	}
	// Figure 2: texture tiling and color blitting dominate the data
	// movement of scrolling.
	tiling := phases[PhaseTiling]
	blitting := phases[PhaseBlitting]
	other := phases[PhaseOther]
	if tiling.Mem.Total() == 0 || blitting.Mem.Total() == 0 {
		t.Fatal("tiling/blitting moved no data")
	}
	if tiling.Mem.Total()+blitting.Mem.Total() < other.Mem.Total() {
		t.Errorf("tiling+blitting traffic (%d) below Other (%d); they should dominate",
			tiling.Mem.Total()+blitting.Mem.Total(), other.Mem.Total())
	}
}

func TestScrollKernelDeterministic(t *testing.T) {
	a, _ := profile.Run(profile.SoC(), ScrollKernel(Twitter(), 2))
	b, _ := profile.Run(profile.SoC(), ScrollKernel(Twitter(), 2))
	if a != b {
		t.Error("scroll kernel not deterministic")
	}
}

func TestAnimationPageBlitsMore(t *testing.T) {
	_, docs := profile.Run(profile.SoC(), ScrollKernel(GoogleDocs(), 4))
	_, anim := profile.Run(profile.SoC(), ScrollKernel(Animation(), 4))
	// The animation page repaints most of the viewport every frame, so its
	// per-frame blitting traffic must exceed Docs'.
	if anim[PhaseBlitting].Mem.Total() <= docs[PhaseBlitting].Mem.Total() {
		t.Errorf("animation blit traffic %d <= docs %d", anim[PhaseBlitting].Mem.Total(), docs[PhaseBlitting].Mem.Total())
	}
}

func TestTabMemoryCompressible(t *testing.T) {
	m := TabMemory(1<<20, 42)
	if len(m) != 1<<20 {
		t.Fatalf("footprint %d, want %d", len(m), 1<<20)
	}
	c := lzo.Compress(m)
	ratio := float64(len(c)) / float64(len(m))
	// Real tab memory compresses to roughly 30-70% with LZO-class
	// algorithms; the generator should land in that band.
	if ratio < 0.15 || ratio > 0.8 {
		t.Errorf("compression ratio %.2f outside [0.15, 0.8]", ratio)
	}
	// Deterministic.
	m2 := TabMemory(1<<20, 42)
	if !bytes.Equal(m, m2) {
		t.Error("TabMemory not deterministic")
	}
}

func TestZRAMPoolRoundTrip(t *testing.T) {
	pool := NewZRAMPool()
	m := TabMemory(256<<10, 7)
	csize := pool.SwapOut(3, m)
	if csize <= 0 || csize >= len(m) {
		t.Errorf("compressed size %d out of range", csize)
	}
	if pool.PoolBytes() != csize {
		t.Errorf("pool bytes %d != %d", pool.PoolBytes(), csize)
	}
	got, err := pool.SwapIn(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, m) {
		t.Error("swap round trip corrupted tab memory")
	}
	if _, err := pool.SwapIn(3); err == nil {
		t.Error("double swap-in succeeded")
	}
	if pool.PoolBytes() != 0 {
		t.Error("pool not empty after swap-in")
	}
}

func TestRunSwitchSession(t *testing.T) {
	const nTabs, budget = 12, 4
	res, err := RunSwitchSession(nTabs, budget, 256<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOut == 0 || res.TotalIn == 0 {
		t.Fatalf("no swap traffic: out=%d in=%d", res.TotalOut, res.TotalIn)
	}
	// Everything swapped in was previously swapped out.
	if res.TotalIn > res.TotalOut {
		t.Errorf("swapped in %d > swapped out %d", res.TotalIn, res.TotalOut)
	}
	if res.CompressRatio <= 0 || res.CompressRatio >= 1 {
		t.Errorf("compression ratio %.2f out of (0,1)", res.CompressRatio)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no timeline samples")
	}
	// The timeline must contain both quiet and busy seconds.
	busy := 0
	for _, s := range res.Samples {
		if s.OutBytes > 0 || s.InBytes > 0 {
			busy++
		}
	}
	if busy == 0 || busy == len(res.Samples) {
		t.Errorf("timeline has %d/%d busy seconds; expected a mix", busy, len(res.Samples))
	}
}

func TestCompressKernelProfile(t *testing.T) {
	_, phases := profile.Run(profile.SoC(), CompressKernel(256, 5))
	p, ok := phases["compression"]
	if !ok {
		t.Fatal("missing compression phase")
	}
	raw := uint64(256 * 4096)
	if p.Mem.BytesRead < raw/2 {
		t.Errorf("compression read %d bytes from memory, want >= %d (streams the pages)", p.Mem.BytesRead, raw/2)
	}
	if p.Ops == 0 {
		t.Error("compression recorded no compute")
	}
}

func TestDecompressKernelProfile(t *testing.T) {
	// 1024 pages (4 MiB) exceed the LLC, so the decompressed output must
	// spill to DRAM; smaller batches legitimately stay cache-resident.
	_, phases := profile.Run(profile.SoC(), DecompressKernel(1024, 5))
	p, ok := phases["decompression"]
	if !ok {
		t.Fatal("missing decompression phase")
	}
	raw := uint64(1024 * 4096)
	if p.Mem.BytesWritten < raw/2 {
		t.Errorf("decompression wrote %d bytes, want >= %d (materializes the pages)", p.Mem.BytesWritten, raw/2)
	}
}

func TestCompressionIsComputeHeavierThanTiling(t *testing.T) {
	// Paper §10.1: compression/decompression are more compute-intensive
	// than texture tiling/color blitting, which is why they benefit more
	// from PIM-Acc over PIM-Core.
	_, comp := profile.Run(profile.SoC(), CompressKernel(128, 3))
	c := comp["compression"]
	density := float64(c.Ops+c.SIMDOps) / float64(c.Mem.Total()+1)
	if density < 0.05 {
		t.Errorf("compression compute density %.3f too low to be 'more compute-intensive'", density)
	}
}
