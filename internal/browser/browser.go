// Package browser models the Chrome workload of the paper (§4): a
// Blink-lite rendering pipeline — layout over a DOM-sized node set,
// Skia-style rasterization through the color blitter, texture tiling for
// the GPU, and compositing — driven by synthetic page specifications, plus
// the multi-process tab model whose inactive tabs are compressed into a
// ZRAM swap pool with the LZO algorithm.
package browser

// PageSpec describes the content mix of a synthetic web page. The values
// steer how much rasterization, tiling and animation work scrolling
// produces, standing in for the real pages (Google Docs, Gmail, ...) the
// paper measures.
type PageSpec struct {
	Name string

	// DOMNodes scales layout cost.
	DOMNodes int
	// TextFraction is the share of render objects drawn as text runs
	// (blend-heavy blitting).
	TextFraction float64
	// ImageFraction is the share drawn as images (copy-heavy blitting).
	ImageFraction float64
	// AnimatedFraction of the viewport repaints every frame even without
	// scrolling.
	AnimatedFraction float64
	// ObjectsPerScreen is the render object density.
	ObjectsPerScreen int
	// ScreensTall is the scrollable page length in viewport heights.
	ScreensTall int
	// TabFootprint is the page's process memory footprint in bytes, for
	// the tab switching model.
	TabFootprint int
}

// The paper's six scrolling test pages (§3.1). Densities are tuned so the
// resulting energy mix matches Figure 1's spread.
func GoogleDocs() PageSpec {
	return PageSpec{
		Name: "Google Docs", DOMNodes: 4500, TextFraction: 0.75, ImageFraction: 0.05,
		AnimatedFraction: 0.02, ObjectsPerScreen: 90, ScreensTall: 12, TabFootprint: 6 << 20,
	}
}

// Gmail returns the Gmail-like page spec.
func Gmail() PageSpec {
	return PageSpec{
		Name: "Gmail", DOMNodes: 3800, TextFraction: 0.6, ImageFraction: 0.15,
		AnimatedFraction: 0.03, ObjectsPerScreen: 70, ScreensTall: 8, TabFootprint: 7 << 20,
	}
}

// GoogleCalendar returns the Calendar-like page spec.
func GoogleCalendar() PageSpec {
	return PageSpec{
		Name: "Google Calendar", DOMNodes: 3000, TextFraction: 0.5, ImageFraction: 0.1,
		AnimatedFraction: 0.05, ObjectsPerScreen: 60, ScreensTall: 4, TabFootprint: 5 << 20,
	}
}

// WordPress returns the WordPress-like page spec.
func WordPress() PageSpec {
	return PageSpec{
		Name: "WordPress", DOMNodes: 2200, TextFraction: 0.55, ImageFraction: 0.3,
		AnimatedFraction: 0.04, ObjectsPerScreen: 50, ScreensTall: 10, TabFootprint: 5 << 20,
	}
}

// Twitter returns the Twitter-like page spec.
func Twitter() PageSpec {
	return PageSpec{
		Name: "Twitter", DOMNodes: 5200, TextFraction: 0.5, ImageFraction: 0.35,
		AnimatedFraction: 0.08, ObjectsPerScreen: 110, ScreensTall: 15, TabFootprint: 8 << 20,
	}
}

// Animation returns the animation-heavy page spec (the Telemetry
// animation benchmark page).
func Animation() PageSpec {
	return PageSpec{
		Name: "Animation", DOMNodes: 900, TextFraction: 0.15, ImageFraction: 0.25,
		AnimatedFraction: 0.6, ObjectsPerScreen: 45, ScreensTall: 3, TabFootprint: 4 << 20,
	}
}

// ScrollPages returns the paper's six-page scrolling set (Figure 1's
// x-axis).
func ScrollPages() []PageSpec {
	return []PageSpec{GoogleDocs(), Gmail(), GoogleCalendar(), WordPress(), Twitter(), Animation()}
}
