package browser

import (
	"fmt"
	"math/rand"

	"gopim/internal/gfx"
	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

// Page loading (paper §4: every interaction includes a page load): parse
// the document, build the DOM and style it, lay out, rasterize the first
// viewport, tile the textures and composite.

// Page load phase labels.
const (
	PhaseParse  = "Parse + DOM"
	PhaseLayout = "Style + Layout"
)

// LoadPhases lists the page-load phases in pipeline order.
var LoadPhases = []string{PhaseParse, PhaseLayout, PhaseBlitting, PhaseTiling, PhaseOther}

// LoadKernel returns the instrumented page-load kernel: fetching and
// parsing the page's markup, building the render tree, then producing the
// first full viewport through the raster pipeline.
func LoadKernel(page PageSpec) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("load %s", page.Name),
		Key:        fmt.Sprintf("load %+v", page),
		Fn:         func(ctx *profile.Ctx) { runLoad(ctx, page) },
	}
}

func runLoad(ctx *profile.Ctx, page PageSpec) {
	rng := rand.New(rand.NewSource(int64(len(page.Name)) * 104729))

	// Markup: ~160 bytes of HTML/CSS per DOM node.
	markup := ctx.Alloc("markup", page.DOMNodes*160)
	dom := ctx.Alloc("DOM + render tree", page.DOMNodes*256)
	layerBuf := ctx.Alloc("layer bitmap", ViewportW*ViewportH*gfx.BytesPerPixel)
	srcBuf := ctx.Alloc("decoded images", ViewportW*ViewportH*gfx.BytesPerPixel)
	tileBuf := ctx.Alloc("texture tiles", texture.TiledSize(ViewportW, ViewportH))
	layer := gfx.FromPix(ViewportW, ViewportH, layerBuf.Data)
	srcImg := gfx.FromPix(ViewportW, ViewportH, srcBuf.Data)
	srcImg.FillPattern(3)

	// Parsing: stream the markup, emit DOM nodes (pointer-rich stores).
	ctx.SetPhase(PhaseParse)
	ctx.LoadV(markup, 0, markup.Len())
	ctx.Store(dom, 0, dom.Len())
	ctx.Ops(markup.Len() * 4) // tokenizer state machine

	// Style resolution and layout: repeated traversals of the node tree.
	ctx.SetPhase(PhaseLayout)
	for pass := 0; pass < 3; pass++ {
		ctx.LoadV(dom, 0, dom.Len())
		ctx.Ops(page.DOMNodes * 120)
		ctx.Refs(page.DOMNodes * 16)
	}

	// First-viewport rasterization: every visible object paints.
	ctx.SetPhase(PhaseBlitting)
	for i := 0; i < page.ObjectsPerScreen; i++ {
		w := 48 + rng.Intn(ViewportW/3)
		h := 8 + rng.Intn(56)
		x := rng.Intn(ViewportW - w + 1)
		y := rng.Intn(ViewportH - h)
		r := gfx.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		roll := rng.Float64()
		switch {
		case roll < page.TextFraction:
			blit.TraceBlend(ctx, layerBuf, layer, srcBuf, srcImg, r)
		case roll < page.TextFraction+page.ImageFraction:
			blit.TraceCopy(ctx, layerBuf, layer, srcBuf, srcImg, r)
		default:
			blit.TraceFill(ctx, layerBuf, layer, r, gfx.Color{R: byte(i), G: 0x44, B: 0x77, A: 0xFF})
		}
	}

	// The whole viewport is tiled for the GPU.
	ctx.SetPhase(PhaseTiling)
	tx, ty := texture.TilesFor(ViewportW, ViewportH)
	for tyi := 0; tyi < ty; tyi++ {
		for txi := 0; txi < tx; txi++ {
			srcOff := tyi*texture.TileH*layer.Stride + txi*texture.TileRowB
			dstOff := (tyi*tx + txi) * texture.TileBytes
			ctx.CopySpanV(layerBuf, srcOff, tileBuf, dstOff,
				texture.TileRowB, texture.TileH, layer.Stride, texture.TileRowB)
			ctx.Ops(4 * texture.TileH)
		}
	}

	// Compositing reads the tiles once.
	ctx.SetPhase(PhaseOther)
	ctx.LoadV(tileBuf, 0, tileBuf.Len())
	ctx.SIMD(tileBuf.Len() / 64)
}

// GPURasterEstimate models rasterizing the first viewport on the GPU
// instead of the CPU (paper §4.2.2): large fills map well onto the GPU's
// parallel units, but each small primitive pays a fixed launch/setup cost,
// which is why Chrome keeps CPU rasterization for text-heavy pages — the
// paper measured up to 24.9% longer page loads with GPU rasterization.
// The returned value is the raster stage's wall time in seconds.
func GPURasterEstimate(page PageSpec) float64 {
	const (
		launch   = 4e-6 // per-batch driver/setup cost
		pixRate  = 4e9  // fill rate, pixels/s
		avgPixel = 150 * 36
	)
	perObject := launch + avgPixel/pixRate
	// Text runs decompose into several glyph batches, each too small to
	// fill the GPU but each paying the launch cost.
	textBatches := float64(page.ObjectsPerScreen) * page.TextFraction * 4
	otherObjects := float64(page.ObjectsPerScreen) * (1 - page.TextFraction)
	return textBatches*(launch+400/pixRate) + otherObjects*perObject
}
