package browser

import (
	"fmt"
	"math/rand"

	"gopim/internal/lzo"
	"gopim/internal/mem"
	"gopim/internal/profile"
)

// Tab switching (paper §4.3): Chrome compresses inactive tabs' pages into
// a DRAM-backed ZRAM pool with LZO when memory runs low, and decompresses
// them on switch-back.

// TabMemory generates a tab's process memory: a deterministic mix of
// zero pages, text-like structured data, and high-entropy pages (decoded
// images, JIT code), matching the compressibility profile of real tab
// dumps.
func TabMemory(footprint int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, footprint)
	structured := []byte(`{"node":"div","class":"content-section","style":{"margin":"0 auto","display":"flex"},"children":[`)
	for len(out) < footprint {
		switch rng.Intn(10) {
		case 0, 1, 2: // zero pages
			out = append(out, make([]byte, mem.PageSize)...)
		case 3, 4, 5, 6: // text/DOM-like pages
			target := len(out) + mem.PageSize
			for len(out) < target && len(out) < footprint {
				n := 1 + rng.Intn(len(structured))
				out = append(out, structured[:n]...)
			}
		default: // high-entropy pages
			page := make([]byte, mem.PageSize)
			rng.Read(page)
			out = append(out, page...)
		}
	}
	return out[:footprint]
}

// ZRAMPool is the compressed swap space.
type ZRAMPool struct {
	compressed map[int][]byte // tab id -> compressed image
	rawSize    map[int]int
}

// NewZRAMPool returns an empty pool.
func NewZRAMPool() *ZRAMPool {
	return &ZRAMPool{compressed: map[int][]byte{}, rawSize: map[int]int{}}
}

// SwapOut compresses a tab's memory into the pool, returning the
// compressed size.
func (z *ZRAMPool) SwapOut(tab int, memory []byte) int {
	c := lzo.Compress(memory)
	z.compressed[tab] = c
	z.rawSize[tab] = len(memory)
	return len(c)
}

// SwapIn decompresses a tab out of the pool, returning its memory.
func (z *ZRAMPool) SwapIn(tab int) ([]byte, error) {
	c, ok := z.compressed[tab]
	if !ok {
		return nil, fmt.Errorf("browser: tab %d not in ZRAM", tab)
	}
	out, err := lzo.Decompress(c, z.rawSize[tab])
	if err != nil {
		return nil, err
	}
	delete(z.compressed, tab)
	delete(z.rawSize, tab)
	return out, nil
}

// PoolBytes returns the pool's current compressed footprint.
func (z *ZRAMPool) PoolBytes() int {
	total := 0
	for _, c := range z.compressed {
		total += len(c)
	}
	return total
}

// SwitchSample is one simulated second of the Figure 4 timeline.
type SwitchSample struct {
	Second   int
	OutBytes int // swapped out to ZRAM during this second
	InBytes  int // swapped in from ZRAM during this second
}

// SwitchResult is the outcome of a tab-switching session.
type SwitchResult struct {
	Samples       []SwitchSample
	TotalOut      int64
	TotalIn       int64
	CompressRatio float64 // aggregate compressed/raw
}

// RunSwitchSession simulates the paper's experiment: open nTabs tabs,
// scroll each for a few seconds, then switch on. Tabs beyond the resident
// budget are compressed to ZRAM; switching to a compressed tab swaps it
// in (and evicts the least-recent resident tab). Time advances one second
// per scroll interval and per switch.
func RunSwitchSession(nTabs, residentBudget int, footprint int, seed int64) (SwitchResult, error) {
	var res SwitchResult
	pool := NewZRAMPool()
	memories := map[int][]byte{}
	var residents []int // LRU order: oldest first
	second := 0
	var rawTotal, compTotal int64

	record := func(out, in int) {
		res.Samples = append(res.Samples, SwitchSample{Second: second, OutBytes: out, InBytes: in})
		res.TotalOut += int64(out)
		res.TotalIn += int64(in)
		second++
	}

	evictIfNeeded := func() int {
		out := 0
		for len(residents) > residentBudget {
			victim := residents[0]
			residents = residents[1:]
			c := pool.SwapOut(victim, memories[victim])
			rawTotal += int64(len(memories[victim]))
			compTotal += int64(c)
			out += len(memories[victim])
			delete(memories, victim)
		}
		return out
	}

	// Phase 1: open all tabs in order, scrolling each for 2 seconds.
	for tab := 0; tab < nTabs; tab++ {
		memories[tab] = TabMemory(footprint, seed+int64(tab))
		residents = append(residents, tab)
		out := evictIfNeeded()
		record(out, 0)
		record(0, 0) // scroll second: no swap traffic
	}

	// Phase 2: switch through all tabs again.
	for tab := 0; tab < nTabs; tab++ {
		in := 0
		if _, resident := memories[tab]; !resident {
			m, err := pool.SwapIn(tab)
			if err != nil {
				return res, err
			}
			memories[tab] = m
			in = len(m)
			residents = append(residents, tab)
		} else {
			residents = moveToBack(residents, tab)
		}
		out := evictIfNeeded()
		record(out, in)
	}
	if rawTotal > 0 {
		res.CompressRatio = float64(compTotal) / float64(rawTotal)
	}
	return res, nil
}

func moveToBack(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			s = append(append(s[:i:i], s[i+1:]...), v)
			return s
		}
	}
	return append(s, v)
}

// CompressKernel returns the instrumented ZRAM compression PIM target:
// LZO-compressing nPages 4 KiB pages of tab memory (paper §4.3.2).
func CompressKernel(nPages int, seed int64) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("compression %d pages", nPages),
		Key:        fmt.Sprintf("lzo-compress %d s%d", nPages, seed),
		Fn:         func(ctx *profile.Ctx) { runCompress(ctx, nPages, seed) },
	}
}

func runCompress(ctx *profile.Ctx, nPages int, seed int64) {
	memory := TabMemory(nPages*mem.PageSize, seed)
	src := ctx.Alloc("uncompressed pages", len(memory))
	copy(src.Data, memory)
	dst := ctx.Alloc("zram", len(memory)+len(memory)/8)
	hashTab := ctx.Alloc("match table", 16<<10) // LZO1X-1 class table: fits any L1

	ctx.SetPhase("compression")
	outOff := 0
	for p := 0; p < nPages; p++ {
		off := p * mem.PageSize
		comp, st := lzo.CompressWithStats(src.Data[off : off+mem.PageSize])

		// The compressor streams the page in and the compressed page out.
		ctx.LoadV(src, off, mem.PageSize)
		ctx.StoreV(dst, outOff, len(comp))
		// Hash probes hit the match table at data-dependent offsets.
		for i := uint64(0); i < st.HashProbes; i += 4 {
			h := (uint64(off) + i*2654435761) % uint64(hashTab.Len()-8)
			ctx.Load(hashTab, int(h), 4)
			ctx.Store(hashTab, int(h), 4)
		}
		// Match verification re-reads the window (cache-resident).
		ctx.Refs(int(st.MatchBytes) / 8)
		ctx.Ops(int(st.HashProbes)*3 + int(st.LiteralBytes)/8)
		copy(dst.Data[outOff:], comp)
		outOff += len(comp)
	}
}

// DecompressKernel returns the instrumented ZRAM decompression PIM target.
func DecompressKernel(nPages int, seed int64) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("decompression %d pages", nPages),
		Key:        fmt.Sprintf("lzo-decompress %d s%d", nPages, seed),
		Fn:         func(ctx *profile.Ctx) { runDecompress(ctx, nPages, seed) },
	}
}

func runDecompress(ctx *profile.Ctx, nPages int, seed int64) {
	memory := TabMemory(nPages*mem.PageSize, seed)
	// Compress up front (not part of the measured kernel).
	var blobs [][]byte
	for p := 0; p < nPages; p++ {
		blobs = append(blobs, lzo.Compress(memory[p*mem.PageSize:(p+1)*mem.PageSize]))
	}
	total := 0
	for _, b := range blobs {
		total += len(b)
	}
	src := ctx.Alloc("zram", total)
	dst := ctx.Alloc("decompressed pages", nPages*mem.PageSize)

	ctx.SetPhase("decompression")
	inOff := 0
	for p, b := range blobs {
		copy(src.Data[inOff:], b)
		out, st, err := lzo.DecompressWithStats(b, mem.PageSize)
		if err != nil {
			panic(fmt.Sprintf("browser: round-trip decompression failed: %v", err))
		}
		ctx.LoadV(src, inOff, len(b))
		ctx.StoreV(dst, p*mem.PageSize, len(out))
		// Back-reference copies read recent output (mostly cache-resident).
		ctx.Refs(int(st.MatchBytes) / 8)
		ctx.Ops(int(st.Matches)*4 + int(st.LiteralBytes)/8)
		copy(dst.Data[p*mem.PageSize:], out)
		inOff += len(b)
	}
}
