// Package nn models TensorFlow Mobile inference (paper §5): neural networks
// described as tables of quantized GEMM shapes (2-D convolutions lowered via
// im2col, and fully-connected/recurrent layers as direct matrix multiplies),
// executed through the qgemm pipeline — quantize, pack, GEMM, re-quantize,
// unpack — with every stage's data movement profiled.
//
// The four networks match the paper's evaluation set: VGG-19,
// ResNet-v2-152, Inception-ResNet-v2, and Residual-GRU. Layer shapes follow
// the published architectures; weights are random (breakdowns depend on
// shapes and invocation counts, not weight values), and spatial resolution
// is divided by a configurable scale so inference fits a laptop-class test
// run — DESIGN.md records this substitution.
package nn

import "fmt"

// Kind distinguishes how a layer maps onto GEMM.
type Kind int

// Layer kinds.
const (
	KindConv   Kind = iota // convolution lowered with im2col
	KindMatMul             // fully-connected or recurrent-cell matrix multiply
)

// Layer is one GEMM-shaped unit of inference work.
type Layer struct {
	Name   string
	Kind   Kind
	Repeat int // times this exact shape runs in one inference

	// Convolution geometry (Conv2D only), at full resolution.
	H, W, InC, OutC, Filter, Stride int

	// Direct GEMM shape (MatMul only).
	M, K, N int
}

// GEMMShape returns the (M, K, N) of the layer's quantized GEMM at the
// given reduction scale (scale >= 1; 1 is the published architecture).
//
// Scaling down only the spatial resolution would leave deep layers with
// M=1 GEMMs whose energy is all weight streaming, distorting the
// packing/quantization/GEMM ratios the experiments reproduce. The scale
// factor is therefore split between the spatial dimensions and the channel
// widths (channels shrink by up to 4x), which shrinks M, K and N together
// and preserves the ratios (DESIGN.md records this substitution).
func (l Layer) GEMMShape(scale int) (m, k, n int) {
	if scale < 1 {
		scale = 1
	}
	chanDiv := 1
	if scale >= 16 {
		chanDiv = 4
	} else if scale >= 4 {
		chanDiv = 2
	}
	spatial := scale / chanDiv
	switch l.Kind {
	case KindConv:
		// Deep layers are small already; never scale a feature map below
		// ~7x7 or the network's MAC mass shifts to its early layers.
		if spatial > 1 && l.H/spatial < 7 {
			spatial = max1(l.H / 7)
		}
		h := max1(l.H / spatial)
		w := max1(l.W / spatial)
		outH := max1(h / l.Stride)
		outW := max1(w / l.Stride)
		// Channels never shrink below 8 (or their original width): halving
		// a 3-channel stem would distort the K/N ratios the breakdowns
		// depend on.
		in := l.InC / chanDiv
		if floor := minInt(l.InC, 8); in < floor {
			in = floor
		}
		out := l.OutC / chanDiv
		if floor := minInt(l.OutC, 8); out < floor {
			out = floor
		}
		return outH * outW, l.Filter * l.Filter * in, out
	case KindMatMul:
		// Fully-connected inputs shrink with the feature map they flatten.
		return l.M, max1(l.K / scale), max1(l.N / scale)
	default:
		panic(fmt.Sprintf("nn: unknown layer kind %d", l.Kind))
	}
}

// MACs returns the multiply-accumulate count of the layer at the given
// scale, including repeats.
func (l Layer) MACs(scale int) uint64 {
	m, k, n := l.GEMMShape(scale)
	return uint64(m) * uint64(k) * uint64(n) * uint64(l.Repeat)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Network is a named stack of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Convs returns the total number of Conv2D invocations (the paper ties
// quantization overhead to this count: VGG has 19, ResNet 156).
func (n Network) Convs() int {
	total := 0
	for _, l := range n.Layers {
		if l.Kind == KindConv {
			total += l.Repeat
		}
	}
	return total
}

// MACs returns the network's total multiply-accumulates at the given scale.
func (n Network) MACs(scale int) uint64 {
	var total uint64
	for _, l := range n.Layers {
		total += l.MACs(scale)
	}
	return total
}

func conv(name string, h, w, inC, outC, filter, stride, repeat int) Layer {
	return Layer{Name: name, Kind: KindConv, Repeat: repeat,
		H: h, W: w, InC: inC, OutC: outC, Filter: filter, Stride: stride}
}

func matmul(name string, m, k, n, repeat int) Layer {
	return Layer{Name: name, Kind: KindMatMul, Repeat: repeat, M: m, K: k, N: n}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
