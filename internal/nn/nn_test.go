package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/profile"
	"gopim/internal/qgemm"
)

func TestGEMMShapeConv(t *testing.T) {
	l := conv("c", 224, 224, 3, 64, 3, 1, 1)
	m, k, n := l.GEMMShape(1)
	if m != 224*224 || k != 27 || n != 64 {
		t.Errorf("shape = %d,%d,%d, want 50176,27,64", m, k, n)
	}
	// Scale 4 splits into spatial/2 and channels/2; the 3-channel stem
	// input floors at its original width.
	m, k, n = l.GEMMShape(4)
	if m != 112*112 || k != 27 || n != 32 {
		t.Errorf("scaled shape = %d,%d,%d, want 12544,27,32", m, k, n)
	}
}

func TestGEMMShapeStride(t *testing.T) {
	l := conv("c", 224, 224, 3, 64, 7, 2, 1)
	m, _, _ := l.GEMMShape(1)
	if m != 112*112 {
		t.Errorf("stride-2 M = %d, want 12544", m)
	}
}

func TestGEMMShapeMatMul(t *testing.T) {
	l := matmul("fc", 1, 4096, 1000, 1)
	m, k, n := l.GEMMShape(1)
	if m != 1 || k != 4096 || n != 1000 {
		t.Errorf("matmul shape = %d,%d,%d", m, k, n)
	}
	m, k, n = l.GEMMShape(8) // depth scales with the flattened feature map
	if m != 1 || k != 512 || n != 125 {
		t.Errorf("scaled matmul shape = %d,%d,%d, want 1,512,125", m, k, n)
	}
}

func TestNetworkTables(t *testing.T) {
	nets := Evaluated()
	if len(nets) != 4 {
		t.Fatalf("expected 4 evaluated networks, got %d", len(nets))
	}
	// Paper §5.3: VGG needs only 19 Conv2D operations, ResNet 156.
	if got := VGG19().Convs(); got != 16 {
		t.Errorf("VGG-19 conv count = %d, want 16 (19 including the 3 FC layers)", got)
	}
	if got := ResNetV2152().Convs(); got < 140 || got > 170 {
		t.Errorf("ResNet-152 conv count = %d, want ~156", got)
	}
	// VGG is by far the heaviest network per inference.
	if VGG19().MACs(1) < ResNetV2152().MACs(1) {
		t.Error("VGG-19 should have more MACs than ResNet-152")
	}
	// Full-resolution MAC counts should be in the published ballpark:
	// VGG-19 ~19.6G, ResNet-152 ~11G.
	if g := VGG19().MACs(1); g < 15e9 || g > 25e9 {
		t.Errorf("VGG-19 MACs = %.1fG, want ~19.6G", float64(g)/1e9)
	}
	if g := ResNetV2152().MACs(1); g < 7e9 || g > 16e9 {
		t.Errorf("ResNet-152 MACs = %.1fG, want ~11G", float64(g)/1e9)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	cases := []struct{ h, w, c, f, s, outC int }{
		{8, 8, 3, 3, 1, 4},
		{7, 9, 2, 3, 2, 3},
		{6, 6, 1, 1, 1, 5},
		{10, 10, 4, 5, 2, 2},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.h * tc.w)))
		input := make([]uint8, tc.h*tc.w*tc.c)
		rng.Read(input)
		weights := qgemm.NewMatrix(tc.f*tc.f*tc.c, tc.outC)
		rng.Read(weights.Data)
		got := Conv2D(input, tc.h, tc.w, tc.c, weights, tc.f, tc.s, 10, 7)
		want := Conv2DReference(input, tc.h, tc.w, tc.c, weights, tc.f, tc.s, 10, 7)
		if len(got) != len(want) {
			t.Fatalf("%+v: length %d vs %d", tc, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: element %d = %d, want %d", tc, i, got[i], want[i])
			}
		}
	}
}

// Property: im2col rows contain exactly the patch bytes of the input.
func TestQuickIm2colPatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w, c := 5+rng.Intn(6), 5+rng.Intn(6), 1+rng.Intn(3)
		input := make([]uint8, h*w*c)
		rng.Read(input)
		m := Im2col(input, h, w, c, 3, 1, 0)
		// Check a center output position: row oy*w+ox should hold the 3x3
		// neighborhood around (oy, ox).
		oy, ox := h/2, w/2
		row := oy*w + ox
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				for ch := 0; ch < c; ch++ {
					want := input[((oy+ky-1)*w+(ox+kx-1))*c+ch]
					got := m.Data[row*m.Cols+((ky*3+kx)*c+ch)]
					if got != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLayerKernelPhases(t *testing.T) {
	l := conv("test", 64, 64, 32, 64, 3, 1, 1)
	_, phases := profile.Run(profile.SoC(), LayerKernel(l, 1))
	for _, want := range Phases {
		if _, ok := phases[want]; !ok {
			t.Errorf("missing phase %q; got %v", want, names(phases))
		}
	}
	if phases[PhaseGEMM].SIMDOps == 0 {
		t.Error("GEMM phase recorded no SIMD MACs")
	}
	if phases[PhasePacking].Mem.Total() == 0 {
		t.Error("packing phase moved no memory")
	}
}

func TestNetworkProfileBreakdownShape(t *testing.T) {
	// At scale 16 the test runs quickly; the shape claims still hold:
	// packing+quantization are a significant minority of inference energy.
	total, phases := NetworkProfile(VGG19(), profile.SoC(), 16)
	if total.Instructions() == 0 {
		t.Fatal("empty network profile")
	}
	var sum profile.Profile
	for _, name := range Phases {
		sum = sum.Add(phases[name])
	}
	if sum != total {
		t.Error("phase sum != total")
	}
	if phases[PhaseGEMM].SIMDOps < phases[PhasePacking].SIMDOps {
		t.Error("GEMM should dominate SIMD work")
	}
}

func TestResNetQuantizationScalesWithConvCount(t *testing.T) {
	// Paper §5.3: more Conv2D invocations -> more quantization overhead.
	// ResNet (156 convs) must spend relatively more traffic on quantization
	// than VGG (16 convs).
	_, vggPhases := NetworkProfile(VGG19(), profile.SoC(), 16)
	_, resPhases := NetworkProfile(ResNetV2152(), profile.SoC(), 16)
	// Normalize quantization work by GEMM compute (proportional to MAC
	// count): ResNet pays more quantization per unit of useful work.
	vggFrac := ratio(vggPhases[PhaseQuant].Instructions(), vggPhases[PhaseGEMM].SIMDOps)
	resFrac := ratio(resPhases[PhaseQuant].Instructions(), resPhases[PhaseGEMM].SIMDOps)
	if resFrac <= vggFrac {
		t.Errorf("quant instructions per MAC: ResNet %.3f <= VGG %.3f; expected ResNet higher", resFrac, vggFrac)
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func names(m map[string]profile.Profile) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestIm2colTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short input did not panic")
		}
	}()
	Im2col(make([]uint8, 5), 4, 4, 1, 3, 1, 0)
}
