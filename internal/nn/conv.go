package nn

import (
	"fmt"

	"gopim/internal/qgemm"
)

// Im2col lowers an NHWC uint8 feature map (h x w x c) into the GEMM LHS
// matrix for an f x f convolution with the given stride and SAME zero
// padding: each output position becomes a row of f*f*c patch values.
// padValue is the quantized level representing real zero.
func Im2col(input []uint8, h, w, c, f, stride int, padValue uint8) qgemm.Matrix {
	if len(input) < h*w*c {
		panic(fmt.Sprintf("nn: input %d too small for %dx%dx%d", len(input), h, w, c))
	}
	outH := (h + stride - 1) / stride
	outW := (w + stride - 1) / stride
	pad := f / 2
	m := qgemm.NewMatrix(outH*outW, f*f*c)
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			base := row * m.Cols
			col := 0
			for ky := 0; ky < f; ky++ {
				iy := oy*stride + ky - pad
				for kx := 0; kx < f; kx++ {
					ix := ox*stride + kx - pad
					if iy < 0 || iy >= h || ix < 0 || ix >= w {
						for ch := 0; ch < c; ch++ {
							m.Data[base+col] = padValue
							col++
						}
						continue
					}
					src := (iy*w + ix) * c
					copy(m.Data[base+col:base+col+c], input[src:src+c])
					col += c
				}
			}
			row++
		}
	}
	return m
}

// Conv2D performs a quantized 2-D convolution by lowering the input with
// Im2col and multiplying against the weight matrix (f*f*c rows x outC
// columns, i.e. HWIO flattened). It returns the int32 accumulator map of
// outH*outW rows x outC columns.
func Conv2D(input []uint8, h, w, c int, weights qgemm.Matrix, f, stride int, inZero, wZero int32) []int32 {
	if weights.Rows != f*f*c {
		panic(fmt.Sprintf("nn: weights %dx%d incompatible with %dx%dx%d filter %d", weights.Rows, weights.Cols, h, w, c, f))
	}
	lowered := Im2col(input, h, w, c, f, stride, uint8(inZero))
	return qgemm.GEMM(qgemm.PackLHS(lowered), qgemm.PackRHS(weights), inZero, wZero)
}

// Conv2DReference computes the same convolution directly (no lowering),
// for correctness tests.
func Conv2DReference(input []uint8, h, w, c int, weights qgemm.Matrix, f, stride int, inZero, wZero int32) []int32 {
	outH := (h + stride - 1) / stride
	outW := (w + stride - 1) / stride
	pad := f / 2
	outC := weights.Cols
	out := make([]int32, outH*outW*outC)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for oc := 0; oc < outC; oc++ {
				var acc int32
				for ky := 0; ky < f; ky++ {
					iy := oy*stride + ky - pad
					for kx := 0; kx < f; kx++ {
						ix := ox*stride + kx - pad
						for ch := 0; ch < c; ch++ {
							var in int32
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								in = int32(input[(iy*w+ix)*c+ch])
							} else {
								in = inZero
							}
							wv := int32(weights.At((ky*f+kx)*c+ch, oc))
							acc += (in - inZero) * (wv - wZero)
						}
					}
				}
				out[(oy*outW+ox)*outC+oc] = acc
			}
		}
	}
	return out
}
