package nn

// VGG19 returns the VGG-19 architecture (Simonyan & Zisserman): 16
// convolutions in five blocks plus three fully-connected layers. The paper
// notes VGG needs only 19 Conv2D/MatMul operations, so its quantization
// overhead is small.
func VGG19() Network {
	return Network{
		Name: "VGG-19",
		Layers: []Layer{
			conv("conv1_1", 224, 224, 3, 64, 3, 1, 1),
			conv("conv1_2", 224, 224, 64, 64, 3, 1, 1),
			conv("conv2_1", 112, 112, 64, 128, 3, 1, 1),
			conv("conv2_2", 112, 112, 128, 128, 3, 1, 1),
			conv("conv3_1", 56, 56, 128, 256, 3, 1, 1),
			conv("conv3_x", 56, 56, 256, 256, 3, 1, 3),
			conv("conv4_1", 28, 28, 256, 512, 3, 1, 1),
			conv("conv4_x", 28, 28, 512, 512, 3, 1, 3),
			conv("conv5_x", 14, 14, 512, 512, 3, 1, 4),
			matmul("fc6", 1, 25088, 4096, 1),
			matmul("fc7", 1, 4096, 4096, 1),
			matmul("fc8", 1, 4096, 1000, 1),
		},
	}
}

// ResNetV2152 returns ResNet-v2-152 (He et al.): a 7x7 stem plus bottleneck
// stages of [3, 8, 36, 3] blocks (each 1x1 → 3x3 → 1x1). The paper notes
// ResNet's 156 Conv2D operations make quantization 16.1% of system energy.
func ResNetV2152() Network {
	var layers []Layer
	layers = append(layers, conv("stem 7x7", 224, 224, 3, 64, 7, 2, 1))
	stage := func(name string, h, w, in, width, blocks int) {
		// Projection shortcut for the first block of the stage.
		layers = append(layers,
			conv(name+" proj 1x1", h, w, in, width*4, 1, 1, 1),
			conv(name+" a 1x1", h, w, in, width, 1, 1, 1),
			conv(name+" b 3x3", h, w, width, width, 3, 1, blocks),
			conv(name+" c 1x1", h, w, width, width*4, 1, 1, blocks),
		)
		if blocks > 1 {
			layers = append(layers, conv(name+" a' 1x1", h, w, width*4, width, 1, 1, blocks-1))
		}
	}
	stage("stage2", 56, 56, 64, 64, 3)
	stage("stage3", 28, 28, 256, 128, 8)
	stage("stage4", 14, 14, 512, 256, 36)
	stage("stage5", 7, 7, 1024, 512, 3)
	layers = append(layers, matmul("fc", 1, 2048, 1001, 1))
	return Network{Name: "ResNet-V2-152", Layers: layers}
}

// InceptionResNetV2 returns a representative Inception-ResNet-v2 (Szegedy
// et al.): stem convolutions plus 10 A blocks (35x35), 20 B blocks (17x17)
// and 10 C blocks (8x8) with reductions between. Asymmetric 1x7/7x1
// convolutions are folded into equivalent-MAC square shapes; DESIGN.md
// records the approximation.
func InceptionResNetV2() Network {
	var layers []Layer
	layers = append(layers,
		conv("stem 3x3/2", 299, 299, 3, 32, 3, 2, 1),
		conv("stem 3x3", 149, 149, 32, 32, 3, 1, 1),
		conv("stem 3x3b", 147, 147, 32, 64, 3, 1, 1),
		conv("stem 1x1", 73, 73, 64, 80, 1, 1, 1),
		conv("stem 3x3c", 73, 73, 80, 192, 3, 1, 1),
		conv("stem mixed", 35, 35, 192, 320, 3, 1, 1),
	)
	// 10x block A: three branches (1x1x32; 1x1+3x3x32; 1x1+3x3+3x3x48/64)
	// plus the 1x1 residual projection back to 320 channels.
	layers = append(layers,
		conv("A 1x1", 35, 35, 320, 32, 1, 1, 30),
		conv("A 3x3", 35, 35, 32, 48, 3, 1, 20),
		conv("A proj", 35, 35, 128, 320, 1, 1, 10),
	)
	layers = append(layers, conv("reduction A", 35, 35, 320, 1088, 3, 2, 1))
	// 20x block B: 1x1x192 branches and a folded 1x7+7x1 pair, plus proj.
	layers = append(layers,
		conv("B 1x1", 17, 17, 1088, 192, 1, 1, 40),
		conv("B 7tap", 17, 17, 160, 192, 3, 1, 40), // 1x7 and 7x1 folded
		conv("B proj", 17, 17, 384, 1088, 1, 1, 20),
	)
	layers = append(layers, conv("reduction B", 17, 17, 1088, 2080, 3, 2, 1))
	// 10x block C: 1x1x192 and folded 1x3/3x1, plus proj.
	layers = append(layers,
		conv("C 1x1", 8, 8, 2080, 192, 1, 1, 30),
		conv("C 3tap", 8, 8, 192, 256, 3, 1, 20),
		conv("C proj", 8, 8, 448, 2080, 1, 1, 10),
	)
	layers = append(layers, matmul("fc", 1, 1536, 1001, 1))
	return Network{Name: "Inception-ResNet", Layers: layers}
}

// ResidualGRU returns the Residual-GRU image compression network (Toderici
// et al.): a convolutional encoder, three stacked GRU layers whose cells
// are matrix multiplies over [input, hidden] at each spatial position, and
// a decoder, unrolled for 8 residual iterations on a 64x64 patch grid.
func ResidualGRU() Network {
	const iters = 8
	return Network{
		Name: "Residual-GRU",
		Layers: []Layer{
			conv("encoder conv", 64, 64, 3, 64, 3, 2, iters),
			conv("encoder conv2", 32, 32, 64, 256, 3, 2, iters),
			conv("encoder conv3", 16, 16, 256, 512, 3, 2, iters),
			// GRU cell: gates (update, reset, candidate) over concatenated
			// input+hidden, at each of 8x8 positions.
			matmul("gru1 gates", 64, 1024, 1536, iters),
			matmul("gru2 gates", 64, 1024, 1536, iters),
			matmul("gru3 gates", 64, 1024, 1536, iters),
			conv("decoder conv", 16, 16, 512, 256, 3, 1, iters),
			conv("decoder conv2", 32, 32, 128, 64, 3, 1, iters),
			conv("decoder out", 64, 64, 32, 3, 3, 1, iters),
		},
	}
}

// Evaluated returns the paper's four-network evaluation set.
func Evaluated() []Network {
	return []Network{ResNetV2152(), VGG19(), ResidualGRU(), InceptionResNetV2()}
}
