package nn

import (
	"fmt"
	"math/rand"

	"gopim/internal/profile"
	"gopim/internal/qgemm"
)

// Phase labels matching the paper's Figure 6/7 breakdown.
const (
	PhasePacking  = "Packing"
	PhaseQuant    = "Quantization"
	PhaseGEMM     = "Conv2D + MatMul"
	PhaseOther    = "Other"
	phaseGenerate = "generate"
)

// Phases lists the presentation order of the inference breakdown.
var Phases = []string{PhasePacking, PhaseQuant, PhaseGEMM, PhaseOther}

// quantInvocationOps is the fixed per-invocation cost of each quantization
// pass (parameter recomputation, multiplier rescaling, dispatch).
const quantInvocationOps = 40000

// LayerKernel returns an instrumented kernel running one invocation of the
// layer through the full TensorFlow Mobile pipeline: quantize the float
// input, pack both operands, run the quantized GEMM, unpack the result, and
// re-quantize it; activation work lands in the Other phase.
func LayerKernel(l Layer, scale int) profile.Kernel {
	m, k, n := l.GEMMShape(scale)
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("%s (%dx%dx%d)", l.Name, m, k, n),
		Key:        fmt.Sprintf("nn-layer %dx%dx%d", m, k, n),
		Fn:         func(ctx *profile.Ctx) { runLayer(ctx, m, k, n) },
	}
}

func runLayer(ctx *profile.Ctx, m, k, n int) {
	rng := rand.New(rand.NewSource(int64(m*31 + k*7 + n)))

	inF := ctx.Alloc("input f32", m*k*4)
	inQ := ctx.Alloc("input u8", m*k)
	weights := ctx.Alloc("weights u8", k*n)
	lhsPacked := ctx.Alloc("lhs packed", qgemm.PackedLHSSize(m, k))
	rhsPacked := ctx.Alloc("rhs packed", qgemm.PackedRHSSize(k, n))
	rowPanels := (m + qgemm.MR - 1) / qgemm.MR
	colPanels := (n + qgemm.NR - 1) / qgemm.NR
	resPanels := ctx.Alloc("result panels", rowPanels*colPanels*qgemm.MR*qgemm.NR*4)
	resFlat := ctx.Alloc("result i32", m*n*4)
	resQ := ctx.Alloc("result u8", m*n)

	// Input arrives from the previous layer; generating it is not part of
	// the inference breakdown.
	ctx.SetPhase(phaseGenerate)
	src := make([]float32, m*k)
	for i := range src {
		src[i] = rng.Float32()*8 - 4
	}
	rng.Read(weights.Data)
	ctx.StoreV(inF, 0, m*k*4)

	// Quantize the input matrix (Figure 8 steps 1-2). Every Conv2D
	// invocation also pays a fixed quantization overhead — recomputing
	// quantization parameters, rescaling the requantization multipliers,
	// and dispatching the two scan passes — which is why networks with
	// many Conv2D invocations (ResNet: 156) spend more energy here than
	// shallow-but-wide ones (VGG: 19), per §5.3.
	ctx.SetPhase(PhaseQuant)
	ctx.Ops(quantInvocationOps)
	qgemm.TraceQuantScans(ctx, inF, inQ, m*k, 4)
	qgemm.QuantizeInto(inQ.Data, src)

	// Pack both operands into panel layout.
	ctx.SetPhase(PhasePacking)
	lhs := qgemm.Matrix{Rows: m, Cols: k, Data: inQ.Data}
	qgemm.PackLHSInto(lhsPacked.Data, lhs)
	for panel := 0; panel < rowPanels; panel++ {
		rows := qgemm.MR
		if panel*qgemm.MR+rows > m {
			rows = m - panel*qgemm.MR
		}
		ctx.LoadSpanV(inQ, panel*qgemm.MR*k, k, rows, k)
		ctx.StoreV(lhsPacked, panel*k*qgemm.MR, k*qgemm.MR)
		ctx.Ops(k)
	}
	rhs := qgemm.Matrix{Rows: k, Cols: n, Data: weights.Data}
	qgemm.PackRHSInto(rhsPacked.Data, rhs)
	qgemm.TraceRHSPack(ctx, weights, rhsPacked, k, n)

	// The quantized GEMM itself. DRAM-visible traffic is each packed
	// operand streamed once (gemmlowp blocks chunks into the LLC); the
	// per-panel re-reads inside the blocked loop stay cache-resident and
	// are accounted as L1 references.
	ctx.SetPhase(PhaseGEMM)
	packedL := qgemm.PackedLHS{Rows: m, Depth: k, Panels: rowPanels, Data: lhsPacked.Data}
	packedR := qgemm.PackedRHS{Depth: k, Cols: n, Panels: colPanels, Data: rhsPacked.Data}
	panelled := qgemm.GEMMPanels(packedL, packedR, 12, 9)
	ctx.LoadV(lhsPacked, 0, len(lhsPacked.Data))
	ctx.LoadV(rhsPacked, 0, len(rhsPacked.Data))
	ctx.StoreV(resPanels, 0, len(resPanels.Data))
	pairs := rowPanels * colPanels
	ctx.Refs(pairs * k / 4) // cache-resident operand re-reads
	ctx.SIMD(m * n * k / 4) // 4-lane MACs
	ctx.Ops(pairs * 8)      // loop control per panel pair
	copyInt32(resPanels.Data, panelled)

	// Unpack the result to row-major order.
	ctx.SetPhase(PhasePacking)
	flat := make([]int32, m*n)
	qgemm.UnpackResultInto(flat, panelled, m, n)
	for rp := 0; rp < rowPanels; rp++ {
		rows := qgemm.MR
		if rp*qgemm.MR+rows > m {
			rows = m - rp*qgemm.MR
		}
		for cp := 0; cp < colPanels; cp++ {
			ctx.LoadV(resPanels, (rp*colPanels+cp)*qgemm.MR*qgemm.NR*4, qgemm.MR*qgemm.NR*4)
			ctx.StoreSpan(resFlat, (rp*qgemm.MR*n+cp*qgemm.NR)*4, qgemm.NR*4, rows, n*4)
			ctx.Ops(qgemm.MR)
		}
	}
	copyInt32(resFlat.Data, flat)

	// Re-quantize the result matrix (Figure 8 steps 3-4).
	ctx.SetPhase(PhaseQuant)
	ctx.Ops(quantInvocationOps)
	qgemm.TraceQuantScans(ctx, resFlat, resQ, m*n, 4)
	qgemm.RequantizeInto(resQ.Data, flat)

	// Activation (ReLU-like pass over the quantized result).
	ctx.SetPhase(PhaseOther)
	ctx.LoadV(resQ, 0, m*n)
	ctx.StoreV(resQ, 0, m*n)
	ctx.SIMD(m * n / 4)
	zero := resQ.Data[0]
	for i, v := range resQ.Data {
		if v < zero {
			resQ.Data[i] = zero
		}
	}
}

func copyInt32(dst []byte, src []int32) {
	n := len(dst) / 4
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		v := src[i]
		dst[i*4] = byte(v)
		dst[i*4+1] = byte(v >> 8)
		dst[i*4+2] = byte(v >> 16)
		dst[i*4+3] = byte(v >> 24)
	}
}

// NetworkProfile profiles one inference of net on hw at the given spatial
// scale divisor, returning the total and the per-phase breakdown. Each
// unique layer shape is profiled once and scaled by its repeat count.
func NetworkProfile(net Network, hw profile.Hardware, scale int) (profile.Profile, map[string]profile.Profile) {
	return NetworkProfileWith(profile.Run, net, hw, scale)
}

// NetworkProfileWith is NetworkProfile with the per-layer kernel execution
// routed through run (e.g. a trace-cache-backed runner, so layer shapes
// shared between networks profile once per process).
func NetworkProfileWith(run profile.Runner, net Network, hw profile.Hardware, scale int) (profile.Profile, map[string]profile.Profile) {
	if scale < 1 {
		scale = 1
	}
	phases := map[string]profile.Profile{}
	var total profile.Profile
	for _, l := range net.Layers {
		_, layerPhases := run(hw, LayerKernel(l, scale))
		for name, p := range layerPhases {
			if name == phaseGenerate {
				continue
			}
			scaled := p.ScaleInt(uint64(l.Repeat))
			phases[name] = phases[name].Add(scaled)
			total = total.Add(scaled)
		}
	}
	return total, phases
}
