package lzo

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(src)
	out, err := Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: in %d bytes, out %d bytes", len(src), len(out))
	}
	return comp
}

func TestRoundTripEmpty(t *testing.T) {
	comp := roundTrip(t, nil)
	if len(comp) != 0 {
		t.Errorf("empty input compressed to %d bytes, want 0", len(comp))
	}
}

func TestRoundTripShort(t *testing.T) {
	for n := 1; n < 40; n++ {
		src := bytes.Repeat([]byte{'x'}, n)
		roundTrip(t, src)
	}
}

func TestRoundTripText(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200))
	comp := roundTrip(t, src)
	if len(comp) >= len(src)/4 {
		t.Errorf("repetitive text compressed to %d/%d bytes; expected at least 4x", len(comp), len(src))
	}
}

func TestRoundTripAllZero(t *testing.T) {
	src := make([]byte, 64<<10)
	comp := roundTrip(t, src)
	if len(comp) > 600 {
		t.Errorf("64 KiB of zeros compressed to %d bytes; expected RLE-like behaviour", len(comp))
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 32<<10)
	rng.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > len(src)+len(src)/8 {
		t.Errorf("random data expanded to %d/%d; framing overhead too large", len(comp), len(src))
	}
}

func TestRoundTripMixed(t *testing.T) {
	// Page-like content: runs of zeros, text, pointer-ish values.
	rng := rand.New(rand.NewSource(11))
	var src []byte
	for i := 0; i < 100; i++ {
		switch rng.Intn(3) {
		case 0:
			src = append(src, make([]byte, rng.Intn(500))...)
		case 1:
			src = append(src, []byte(strings.Repeat("field:value;", rng.Intn(20)+1))...)
		case 2:
			chunk := make([]byte, rng.Intn(200))
			rng.Read(chunk)
			src = append(src, chunk...)
		}
	}
	roundTrip(t, src)
}

func TestLongMatchExtension(t *testing.T) {
	// A single very long match exercises the 0xFF length extension path.
	src := bytes.Repeat([]byte("ab"), 50000)
	roundTrip(t, src)
}

func TestLongLiteralExtension(t *testing.T) {
	// Incompressible run longer than 31 bytes exercises literal extension.
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 5000)
	rng.Read(src)
	roundTrip(t, src)
}

func TestMatchAtMaxOffset(t *testing.T) {
	var src []byte
	src = append(src, []byte("UNIQUEPREFIX0123456789")...)
	filler := make([]byte, MaxOffset-len(src))
	rng := rand.New(rand.NewSource(5))
	rng.Read(filler)
	src = append(src, filler...)
	src = append(src, []byte("UNIQUEPREFIX0123456789")...)
	roundTrip(t, src)
}

func TestDecompressCorruptInputs(t *testing.T) {
	cases := map[string][]byte{
		"truncated literal run":   {0x05, 'a'},
		"truncated match offset":  {matchTokenBase, 0x01},
		"offset beyond output":    {0x00, 'a', matchTokenBase, 0xFF, 0xFF},
		"unterminated extension":  {maxLiteralToken, 0xFF, 0xFF},
		"match with empty output": {matchTokenBase, 0x00, 0x00},
	}
	for name, in := range cases {
		if _, err := Decompress(in, 1<<20); err == nil {
			t.Errorf("%s: Decompress accepted corrupt input", name)
		}
	}
}

func TestDecompressRespectsMaxLen(t *testing.T) {
	src := bytes.Repeat([]byte{'z'}, 4096)
	comp := Compress(src)
	if _, err := Decompress(comp, 100); err != ErrTooLarge {
		t.Errorf("Decompress with small maxLen: err = %v, want ErrTooLarge", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	src := []byte(strings.Repeat("abcabcabc", 100))
	comp, cst := CompressWithStats(src)
	if cst.Matches == 0 {
		t.Error("no matches found in highly repetitive input")
	}
	if cst.LiteralBytes+cst.MatchBytes != uint64(len(src)) {
		t.Errorf("literal(%d)+match(%d) bytes != input %d", cst.LiteralBytes, cst.MatchBytes, len(src))
	}
	out, dst, err := DecompressWithStats(comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(src) {
		t.Fatalf("decompressed %d bytes, want %d", len(out), len(src))
	}
	if dst.LiteralBytes+dst.MatchBytes != uint64(len(src)) {
		t.Errorf("decoder literal(%d)+match(%d) != %d", dst.LiteralBytes, dst.MatchBytes, len(src))
	}
}

func TestRatioHelper(t *testing.T) {
	if Ratio(0, 10) != 1 {
		t.Error("Ratio with zero original should be 1")
	}
	if got := Ratio(100, 25); got != 0.25 {
		t.Errorf("Ratio = %v, want 0.25", got)
	}
}

// Property: Decompress(Compress(x)) == x for arbitrary inputs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(src)
		out, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: compression never expands by more than the framing bound.
func TestQuickExpansionBound(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(src)
		return len(comp) <= len(src)+len(src)/16+8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decompressor never panics on arbitrary (usually corrupt) input.
func TestQuickDecompressRobust(t *testing.T) {
	f := func(junk []byte) bool {
		_, err := Decompress(junk, 1<<16)
		_ = err // any error (or none) is fine; no panic is the property
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressText(b *testing.B) {
	src := []byte(strings.Repeat("consumer devices move too much data around. ", 2000))
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompressText(b *testing.B) {
	src := []byte(strings.Repeat("consumer devices move too much data around. ", 2000))
	comp := Compress(src)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}
