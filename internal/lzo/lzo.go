// Package lzo implements a fast byte-oriented LZ77 compressor in the style
// of LZO1X, the algorithm Chrome's ZRAM swap uses for tab compression
// (paper §4.3). Like LZO, it favours speed over ratio: greedy parsing, a
// small hash table of 4-byte sequences, byte-aligned output, and a
// copy-dominated decompressor. The on-wire format is this package's own
// (bitstream compatibility with LZO is not required by the paper's
// analysis; the data movement behaviour — sequential input/output streams,
// random hash-table probes, and backward match copies — is what matters).
//
// Format:
//
//	token 0x00..0x1F: literal run of token+1 bytes follows; a token of 0x1F
//	                  is followed by a length extension (see below) adding
//	                  to the run length.
//	token 0x20..0xFF: match; length = (token-0x20) + MinMatch, with token
//	                  0xFF followed by a length extension; then a 2-byte
//	                  little-endian offset (1..MaxOffset) pointing backward.
//
//	length extension: zero or more 0xFF bytes, each adding 255, terminated
//	                  by one byte < 0xFF adding its value.
package lzo

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	// MinMatch is the shortest encodable match.
	MinMatch = 3
	// MaxOffset is the farthest backward reference.
	MaxOffset = 1 << 16

	maxLiteralToken = 0x1F // literal runs of 1..31 fit in the token
	matchTokenBase  = 0x20
	maxMatchToken   = 0xFF

	hashBits = 15
	hashSize = 1 << hashBits
)

// Stats summarizes the work a compression or decompression performed, for
// driving the instrumented ZRAM kernel.
type Stats struct {
	LiteralRuns  uint64
	LiteralBytes uint64
	Matches      uint64
	MatchBytes   uint64
	HashProbes   uint64
}

// Compress returns src compressed. The result is never nil; incompressible
// input expands by the literal-run framing overhead.
func Compress(src []byte) []byte {
	out, _ := CompressWithStats(src)
	return out
}

// CompressWithStats is Compress plus work statistics.
func CompressWithStats(src []byte) ([]byte, Stats) {
	var st Stats
	dst := make([]byte, 0, len(src)+len(src)/16+16)
	if len(src) == 0 {
		return dst, st
	}

	var table [hashSize]int32 // position+1 of the last occurrence; 0 = empty

	litStart := 0
	i := 0
	for i+4 <= len(src) {
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		st.HashProbes++
		if cand >= 0 && i-cand <= MaxOffset && match4(src, cand, i) {
			// Extend the match forward.
			length := 4
			for i+length < len(src) && src[cand+length] == src[i+length] {
				length++
			}
			dst = emitLiterals(dst, src[litStart:i], &st)
			dst = emitMatch(dst, length, i-cand, &st)
			// Index a couple of positions inside the match so later data
			// can still find it, then skip past it.
			end := i + length
			for j := i + 1; j < end && j+4 <= len(src); j += length/4 + 1 {
				table[hash4(binary.LittleEndian.Uint32(src[j:]))] = int32(j) + 1
			}
			i = end
			litStart = i
			continue
		}
		i++
	}
	dst = emitLiterals(dst, src[litStart:], &st)
	return dst, st
}

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashBits)
}

func match4(src []byte, a, b int) bool {
	return src[a] == src[b] && src[a+1] == src[b+1] && src[a+2] == src[b+2] && src[a+3] == src[b+3]
}

func emitLiterals(dst, lit []byte, st *Stats) []byte {
	for len(lit) > 0 {
		st.LiteralRuns++
		run := len(lit)
		if run <= maxLiteralToken { // 1..31 in-token
			dst = append(dst, byte(run-1))
			dst = append(dst, lit[:run]...)
			st.LiteralBytes += uint64(run)
			return dst
		}
		dst = append(dst, maxLiteralToken)
		extra := run - 1 - maxLiteralToken
		dst = appendExtension(dst, extra)
		dst = append(dst, lit...)
		st.LiteralBytes += uint64(run)
		return dst
	}
	return dst
}

func emitMatch(dst []byte, length, offset int, st *Stats) []byte {
	st.Matches++
	st.MatchBytes += uint64(length)
	code := length - MinMatch
	if code < maxMatchToken-matchTokenBase {
		dst = append(dst, byte(matchTokenBase+code))
	} else {
		dst = append(dst, maxMatchToken)
		dst = appendExtension(dst, code-(maxMatchToken-matchTokenBase))
	}
	return append(dst, byte(offset-1), byte((offset-1)>>8))
}

func appendExtension(dst []byte, v int) []byte {
	for v >= 0xFF {
		dst = append(dst, 0xFF)
		v -= 0xFF
	}
	return append(dst, byte(v))
}

// Errors returned by Decompress.
var (
	ErrCorrupt  = errors.New("lzo: corrupt input")
	ErrTooLarge = errors.New("lzo: output exceeds declared size")
)

// Decompress expands a block produced by Compress. maxLen bounds the output
// size (a real swap system knows the page size).
func Decompress(src []byte, maxLen int) ([]byte, error) {
	out, _, err := DecompressWithStats(src, maxLen)
	return out, err
}

// DecompressWithStats is Decompress plus work statistics.
func DecompressWithStats(src []byte, maxLen int) ([]byte, Stats, error) {
	var st Stats
	dst := make([]byte, 0, maxLen)
	i := 0
	for i < len(src) {
		tok := src[i]
		i++
		if tok <= maxLiteralToken {
			run := int(tok) + 1
			if tok == maxLiteralToken {
				ext, n, err := readExtension(src[i:])
				if err != nil {
					return nil, st, err
				}
				i += n
				run += ext
			}
			if i+run > len(src) {
				return nil, st, fmt.Errorf("%w: literal run of %d exceeds input", ErrCorrupt, run)
			}
			if len(dst)+run > maxLen {
				return nil, st, ErrTooLarge
			}
			dst = append(dst, src[i:i+run]...)
			i += run
			st.LiteralRuns++
			st.LiteralBytes += uint64(run)
			continue
		}
		length := int(tok-matchTokenBase) + MinMatch
		if tok == maxMatchToken {
			ext, n, err := readExtension(src[i:])
			if err != nil {
				return nil, st, err
			}
			i += n
			length += ext
		}
		if i+2 > len(src) {
			return nil, st, fmt.Errorf("%w: truncated match offset", ErrCorrupt)
		}
		offset := int(src[i]) | int(src[i+1])<<8
		offset++
		i += 2
		if offset > len(dst) {
			return nil, st, fmt.Errorf("%w: match offset %d beyond output (%d)", ErrCorrupt, offset, len(dst))
		}
		if len(dst)+length > maxLen {
			return nil, st, ErrTooLarge
		}
		// Byte-wise copy: matches may overlap themselves (RLE-style).
		pos := len(dst) - offset
		for k := 0; k < length; k++ {
			dst = append(dst, dst[pos+k])
		}
		st.Matches++
		st.MatchBytes += uint64(length)
	}
	return dst, st, nil
}

func readExtension(src []byte) (value, n int, err error) {
	for n < len(src) {
		b := src[n]
		n++
		value += int(b)
		if b != 0xFF {
			return value, n, nil
		}
	}
	return 0, n, fmt.Errorf("%w: unterminated length extension", ErrCorrupt)
}

// Ratio returns compressed/original size (lower is better), or 1 for empty
// input.
func Ratio(original, compressed int) float64 {
	if original == 0 {
		return 1
	}
	return float64(compressed) / float64(original)
}
