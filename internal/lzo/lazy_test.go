package lzo

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLazyRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte("a"),
		[]byte(strings.Repeat("the quick brown fox ", 300)),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("abcde"), 4000),
	}
	rng := rand.New(rand.NewSource(9))
	noise := make([]byte, 8000)
	rng.Read(noise)
	inputs = append(inputs, noise)

	for i, src := range inputs {
		comp := CompressWithLevel(src, Best)
		out, err := Decompress(comp, len(src))
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("input %d: lazy round trip mismatch", i)
		}
	}
}

func TestLazyNeverWorseMuch(t *testing.T) {
	// On structured data, the lazy parser should compress at least as well
	// as the greedy one (allowing a tiny slack for parse-order effects).
	corpus := [][]byte{
		[]byte(strings.Repeat(`{"key":"value","list":[1,2,3]},`, 400)),
		bytes.Repeat([]byte("abcabcabdabc"), 800),
	}
	for i, src := range corpus {
		fast := len(Compress(src))
		best := len(CompressWithLevel(src, Best))
		// Allow small absolute slack: the lazy parser's higher minimum
		// match length can cost a few bytes on tiny outputs.
		if best > fast+fast/10+4 {
			t.Errorf("input %d: Best (%d) much worse than Fast (%d)", i, best, fast)
		}
	}
}

func TestLazyBeatsGreedyOnAdversarialInput(t *testing.T) {
	// Pattern engineered so the greedy parser takes a short match that a
	// lazy parser defers: the classic case is a short match hiding a longer
	// one starting one byte later.
	var src []byte
	long := []byte("0123456789ABCDEFGHIJKLMNOP")
	shortPrefix := []byte("xx01")
	for i := 0; i < 200; i++ {
		src = append(src, shortPrefix...)
		src = append(src, long...)
		src = append(src, byte('a'+i%3))
	}
	fast := len(Compress(src))
	best := len(CompressWithLevel(src, Best))
	if best > fast {
		t.Errorf("lazy (%d bytes) should not lose to greedy (%d) on deferral-friendly input", best, fast)
	}
}

func TestLevelFastMatchesCompress(t *testing.T) {
	src := []byte(strings.Repeat("same bytes ", 100))
	if !bytes.Equal(CompressWithLevel(src, Fast), Compress(src)) {
		t.Error("Fast level must be identical to Compress")
	}
}

// Property: lazy output always decodes back to the input.
func TestQuickLazyRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := CompressWithLevel(src, Best)
		out, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(out, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
