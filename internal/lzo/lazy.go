package lzo

import "encoding/binary"

// CompressLevel selects a speed/ratio tradeoff, like LZO's 1x/999 variants.
type CompressLevel int

// Compression levels.
const (
	// Fast is the greedy single-probe parser used by ZRAM (the default
	// Compress).
	Fast CompressLevel = iota
	// Best adds lazy matching with chained probes: noticeably better
	// ratios at a few times the cost, like LZO1X-999. Output remains
	// decodable by the same Decompress.
	Best
)

// CompressWithLevel compresses src at the chosen level. Both levels emit
// the same format.
func CompressWithLevel(src []byte, level CompressLevel) []byte {
	if level == Fast {
		return Compress(src)
	}
	return compressLazy(src)
}

// compressLazy is a lazy-match parser: at each position it finds the best
// match among a small chain of hash candidates, then checks whether
// deferring by one byte yields a strictly longer match before committing.
func compressLazy(src []byte) []byte {
	var st Stats
	dst := make([]byte, 0, len(src)/2+16)
	if len(src) == 0 {
		return dst
	}

	const chainLen = 8
	// chained hash table: head per bucket + prev links.
	var table [hashSize]int32
	prev := make([]int32, len(src))

	insert := func(i int) {
		if i+4 > len(src) {
			return
		}
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		prev[i] = table[h] - 1
		table[h] = int32(i) + 1
	}

	bestMatch := func(i int) (length, offset int) {
		if i+4 > len(src) {
			return 0, 0
		}
		h := hash4(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h]) - 1
		for probe := 0; probe < chainLen && cand >= 0 && i-cand <= MaxOffset; probe++ {
			if match4(src, cand, i) {
				l := 4
				for i+l < len(src) && src[cand+l] == src[i+l] {
					l++
				}
				if l > length {
					length, offset = l, i-cand
				}
			}
			cand = int(prev[cand]) - 1
		}
		return length, offset
	}

	litStart := 0
	i := 0
	for i+4 <= len(src) {
		length, offset := bestMatch(i)
		if length < MinMatch+1 { // lazy parser skips marginal matches
			insert(i)
			i++
			continue
		}
		// Lazy evaluation: would starting one byte later be better?
		insert(i)
		if i+5 <= len(src) {
			nextLen, _ := bestMatch(i + 1)
			if nextLen > length+1 {
				i++
				continue // emit this byte as a literal, match at i+1
			}
		}
		dst = emitLiterals(dst, src[litStart:i], &st)
		dst = emitMatch(dst, length, offset, &st)
		end := i + length
		step := length/8 + 1
		for j := i + 1; j < end && j+4 <= len(src); j += step {
			insert(j)
		}
		i = end
		litStart = i
	}
	return emitLiterals(dst, src[litStart:], &st)
}
