package video

// Synth generates deterministic synthetic video: a smoothly textured
// background panning globally, with moving textured rectangles on top and a
// little per-frame noise. Objects move at sub-pixel effective rates (their
// velocities are not multiples of the pan), so inter prediction needs
// sub-pixel interpolation to track them well.
type Synth struct {
	W, H    int
	seed    uint32
	objects []object
}

type object struct {
	x, y   float64 // position at frame 0
	vx, vy float64 // velocity in pixels/frame
	w, h   int
	tex    uint32
}

// NewSynth returns a generator for w x h video with nObjects moving
// rectangles. The same (w, h, seed, nObjects) always produces the same
// clip.
func NewSynth(w, h int, nObjects int, seed uint32) *Synth {
	s := &Synth{W: w, H: h, seed: seed}
	rng := seed*2654435761 + 1
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
	for i := 0; i < nObjects; i++ {
		s.objects = append(s.objects, object{
			x:   float64(next() % uint32(w)),
			y:   float64(next() % uint32(h)),
			vx:  float64(int(next()%25)-12) / 4.0, // -3.0 .. +3.0 in 0.25 steps
			vy:  float64(int(next()%25)-12) / 4.0,
			w:   32 + int(next()%96),
			h:   32 + int(next()%96),
			tex: next(),
		})
	}
	return s
}

// Frame renders frame number n.
func (s *Synth) Frame(n int) *Frame {
	f := NewFrame(s.W, s.H)
	// Global pan: 1.25 px/frame horizontally, 0.5 px/frame vertically.
	panX := float64(n) * 1.25
	panY := float64(n) * 0.5

	for y := 0; y < s.H; y++ {
		row := f.Y[y*s.W:]
		fy := float64(y) + panY
		for x := 0; x < s.W; x++ {
			fx := float64(x) + panX
			row[x] = background(fx, fy, s.seed)
		}
	}
	// Objects (luma only; chroma stays smooth).
	for _, o := range s.objects {
		ox := int(o.x + o.vx*float64(n))
		oy := int(o.y + o.vy*float64(n))
		ox = ((ox % s.W) + s.W) % s.W
		oy = ((oy % s.H) + s.H) % s.H
		for dy := 0; dy < o.h; dy++ {
			y := oy + dy
			if y >= s.H {
				break
			}
			row := f.Y[y*s.W:]
			for dx := 0; dx < o.w; dx++ {
				x := ox + dx
				if x >= s.W {
					break
				}
				row[x] = texture(uint32(dx), uint32(dy), o.tex)
			}
		}
	}
	// Mild deterministic noise so frames are never trivially identical.
	h := s.seed ^ uint32(n)*0x9E3779B1
	for i := 0; i < len(f.Y); i += 211 {
		h ^= h << 13
		h ^= h >> 17
		h ^= h << 5
		f.Y[i] = clamp8(int(f.Y[i]) + int(h%3) - 1)
	}
	// Chroma: slow gradients following the pan.
	cw, ch := s.W/2, s.H/2
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			f.U[y*cw+x] = uint8(128 + int(panX/4)%8 + x%16)
			f.V[y*cw+x] = uint8(128 + int(panY/4)%8 + y%16)
		}
	}
	return f
}

// Clip renders frames [0, n).
func (s *Synth) Clip(n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.Frame(i)
	}
	return out
}

// background samples a smooth multi-octave texture at a (possibly
// fractional) position; bilinear blending of the hash lattice keeps it
// band-limited so sub-pixel motion is representable.
func background(fx, fy float64, seed uint32) uint8 {
	v := 0.0
	amp := 1.0
	freq := 1.0 / 16
	for oct := 0; oct < 4; oct++ {
		v += amp * lattice(fx*freq, fy*freq, seed+uint32(oct))
		amp *= 0.55
		freq *= 2
	}
	return clamp8(96 + int(v*56))
}

func lattice(x, y float64, seed uint32) float64 {
	x0, y0 := int(x), int(y)
	tx, ty := x-float64(x0), y-float64(y0)
	v00 := hash01(uint32(x0), uint32(y0), seed)
	v10 := hash01(uint32(x0+1), uint32(y0), seed)
	v01 := hash01(uint32(x0), uint32(y0+1), seed)
	v11 := hash01(uint32(x0+1), uint32(y0+1), seed)
	a := v00 + (v10-v00)*tx
	b := v01 + (v11-v01)*tx
	return a + (b-a)*ty
}

func hash01(x, y, seed uint32) float64 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ seed*0xC2B2AE3D
	h ^= h >> 15
	h *= 0x27D4EB2F
	h ^= h >> 13
	return float64(h%1024)/512 - 1
}

func texture(x, y, seed uint32) uint8 {
	h := x/4*0x9E3779B1 ^ y/4*0x85EBCA77 ^ seed
	h ^= h >> 15
	h *= 0x27D4EB2F
	return uint8(64 + h%128)
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
