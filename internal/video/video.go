// Package video provides YUV 4:2:0 frame types and a deterministic
// synthetic video generator used in place of the paper's Netflix/Derf test
// clips (DESIGN.md records the substitution). The generator produces
// textured content with global pan and independently moving objects, so the
// codec's motion estimation, sub-pixel interpolation and deblocking paths
// are exercised the way natural video exercises them.
package video

import (
	"fmt"
	"math"
)

// Standard resolutions used by the paper's evaluation.
const (
	HDWidth  = 1280
	HDHeight = 720
	K4Width  = 3840
	K4Height = 2160
)

// Frame is a YUV 4:2:0 picture: full-resolution luma and half-resolution
// chroma planes.
type Frame struct {
	W, H int
	Y    []uint8 // W*H
	U    []uint8 // (W/2)*(H/2)
	V    []uint8 // (W/2)*(H/2)
}

// NewFrame allocates a zeroed frame. Dimensions must be even.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: bad frame size %dx%d", w, h))
	}
	return &Frame{
		W: w, H: h,
		Y: make([]uint8, w*h),
		U: make([]uint8, w/2*h/2),
		V: make([]uint8, w/2*h/2),
	}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H)
	copy(g.Y, f.Y)
	copy(g.U, f.U)
	copy(g.V, f.V)
	return g
}

// YAt returns the luma sample at (x, y), clamping coordinates to the frame
// edges (the codec's out-of-bounds convention).
func (f *Frame) YAt(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.H {
		y = f.H - 1
	}
	return f.Y[y*f.W+x]
}

// PSNR returns the luma peak signal-to-noise ratio of got vs want, in dB.
// Identical frames return +Inf.
func PSNR(want, got *Frame) float64 {
	if want.W != got.W || want.H != got.H {
		panic("video: PSNR of mismatched frames")
	}
	var sse float64
	for i := range want.Y {
		d := float64(want.Y[i]) - float64(got.Y[i])
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1)
	}
	mse := sse / float64(len(want.Y))
	return 10 * math.Log10(255*255/mse)
}
