package video

import (
	"bytes"
	"math"
	"testing"
)

func TestNewFrameValidation(t *testing.T) {
	f := NewFrame(64, 48)
	if len(f.Y) != 64*48 || len(f.U) != 32*24 || len(f.V) != 32*24 {
		t.Error("plane sizes wrong for 4:2:0")
	}
	for _, bad := range [][2]int{{0, 16}, {16, 0}, {15, 16}, {16, 15}, {-2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrame(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewFrame(bad[0], bad[1])
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewFrame(16, 16)
	f.Y[0] = 42
	g := f.Clone()
	g.Y[0] = 7
	if f.Y[0] != 42 {
		t.Error("Clone shares luma storage")
	}
	g.U[0] = 9
	if f.U[0] != 0 {
		t.Error("Clone shares chroma storage")
	}
}

func TestYAtClamps(t *testing.T) {
	f := NewFrame(4, 4)
	f.Y[0] = 11  // (0,0)
	f.Y[3] = 22  // (3,0)
	f.Y[12] = 33 // (0,3)
	f.Y[15] = 44 // (3,3)
	cases := []struct {
		x, y int
		want uint8
	}{
		{-5, -5, 11}, {10, -1, 22}, {-1, 10, 33}, {9, 9, 44}, {1, 0, f.Y[1]},
	}
	for _, c := range cases {
		if got := f.YAt(c.x, c.y); got != c.want {
			t.Errorf("YAt(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestPSNR(t *testing.T) {
	a := NewFrame(16, 16)
	b := a.Clone()
	if !math.IsInf(PSNR(a, b), 1) {
		t.Error("identical frames: PSNR should be +Inf")
	}
	for i := range b.Y {
		b.Y[i] = a.Y[i] + 1
	}
	if p := PSNR(a, b); p < 45 || p > 50 {
		t.Errorf("uniform +1 error: PSNR = %.1f, want ~48.1 dB", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched sizes did not panic")
		}
	}()
	PSNR(a, NewFrame(32, 32))
}

func TestSynthDeterministic(t *testing.T) {
	a := NewSynth(64, 64, 3, 5).Frame(2)
	b := NewSynth(64, 64, 3, 5).Frame(2)
	if !bytes.Equal(a.Y, b.Y) || !bytes.Equal(a.U, b.U) {
		t.Fatal("same parameters produced different frames")
	}
	c := NewSynth(64, 64, 3, 6).Frame(2)
	if bytes.Equal(a.Y, c.Y) {
		t.Error("different seeds produced identical luma")
	}
}

func TestSynthFramesDiffer(t *testing.T) {
	s := NewSynth(64, 64, 2, 9)
	f0, f1 := s.Frame(0), s.Frame(1)
	diff := 0
	for i := range f0.Y {
		if f0.Y[i] != f1.Y[i] {
			diff++
		}
	}
	// Panning content: most pixels change between frames, but the frames
	// remain correlated (it is video, not noise).
	if diff < len(f0.Y)/4 {
		t.Errorf("only %d/%d pixels changed; pan should move most of the frame", diff, len(f0.Y))
	}
	var sad int
	for i := range f0.Y {
		d := int(f0.Y[i]) - int(f1.Y[i])
		if d < 0 {
			d = -d
		}
		sad += d
	}
	if avg := float64(sad) / float64(len(f0.Y)); avg > 40 {
		t.Errorf("mean absolute frame difference %.1f too high; frames should be correlated", avg)
	}
}

func TestSynthHasTexture(t *testing.T) {
	f := NewSynth(128, 128, 0, 3).Frame(0)
	// Local contrast: neighboring pixels must differ somewhere (the codec's
	// sub-pel behaviour depends on band-limited but non-flat content).
	var grad int
	for y := 0; y < 128; y++ {
		for x := 1; x < 128; x++ {
			d := int(f.Y[y*128+x]) - int(f.Y[y*128+x-1])
			if d < 0 {
				d = -d
			}
			grad += d
		}
	}
	if avg := float64(grad) / (128 * 127); avg < 1 {
		t.Errorf("mean horizontal gradient %.2f; content is too flat", avg)
	}
}

func TestClip(t *testing.T) {
	frames := NewSynth(32, 32, 1, 1).Clip(3)
	if len(frames) != 3 {
		t.Fatalf("Clip(3) returned %d frames", len(frames))
	}
	for i, f := range frames {
		if f.W != 32 || f.H != 32 {
			t.Errorf("frame %d has size %dx%d", i, f.W, f.H)
		}
	}
}
