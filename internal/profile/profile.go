// Package profile implements the paper's workload characterization
// methodology (§3.1): kernels do real work on simulated buffers while
// reporting operation counts and memory accesses; the accesses flow through
// a cache hierarchy into a DRAM traffic meter, yielding the counter values
// (instructions, MPKI, off-chip traffic) that drive the energy and timing
// models.
package profile

import (
	"sort"

	"gopim/internal/cache"
	"gopim/internal/dram"
	"gopim/internal/mem"
)

// Profile is the set of hardware-counter-like values collected for one
// kernel execution (or one phase of it).
type Profile struct {
	Ops     uint64 // scalar ALU/branch instructions
	SIMDOps uint64 // vector ALU instructions
	MemRefs uint64 // load/store instructions

	L1  cache.Stats
	LLC cache.Stats
	Mem dram.Traffic
	// Rows tracks DRAM row-buffer behaviour of the memory traffic.
	Rows dram.RowStats
}

// Instructions returns the total dynamic instruction count.
func (p Profile) Instructions() uint64 { return p.Ops + p.SIMDOps + p.MemRefs }

// LLCMPKI returns last-level-cache misses per kilo-instruction, the paper's
// memory-intensity criterion (PIM candidates have MPKI > 10).
func (p Profile) LLCMPKI() float64 { return p.LLC.MPKI(p.Instructions()) }

// Add returns the field-wise sum of p and other.
func (p Profile) Add(other Profile) Profile {
	return Profile{
		Ops:     p.Ops + other.Ops,
		SIMDOps: p.SIMDOps + other.SIMDOps,
		MemRefs: p.MemRefs + other.MemRefs,
		L1:      addStats(p.L1, other.L1),
		LLC:     addStats(p.LLC, other.LLC),
		Mem:     dram.Traffic{BytesRead: p.Mem.BytesRead + other.Mem.BytesRead, BytesWritten: p.Mem.BytesWritten + other.Mem.BytesWritten},
		Rows: dram.RowStats{
			Accesses: p.Rows.Accesses + other.Rows.Accesses,
			RowHits:  p.Rows.RowHits + other.Rows.RowHits,
			RowOpens: p.Rows.RowOpens + other.Rows.RowOpens,
		},
	}
}

// ScaleInt returns p with every counter multiplied by n, for extrapolating
// a profiled unit of work (e.g. one network layer) that repeats n times.
func (p Profile) ScaleInt(n uint64) Profile {
	return Profile{
		Ops:     p.Ops * n,
		SIMDOps: p.SIMDOps * n,
		MemRefs: p.MemRefs * n,
		L1:      scaleStats(p.L1, n),
		LLC:     scaleStats(p.LLC, n),
		Mem: dram.Traffic{
			BytesRead:    p.Mem.BytesRead * n,
			BytesWritten: p.Mem.BytesWritten * n,
		},
		Rows: dram.RowStats{
			Accesses: p.Rows.Accesses * n,
			RowHits:  p.Rows.RowHits * n,
			RowOpens: p.Rows.RowOpens * n,
		},
	}
}

func scaleStats(s cache.Stats, n uint64) cache.Stats {
	return cache.Stats{
		Accesses:   s.Accesses * n,
		Hits:       s.Hits * n,
		Misses:     s.Misses * n,
		Writebacks: s.Writebacks * n,
		Reads:      s.Reads * n,
		Writes:     s.Writes * n,
	}
}

func addStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   a.Accesses + b.Accesses,
		Hits:       a.Hits + b.Hits,
		Misses:     a.Misses + b.Misses,
		Writebacks: a.Writebacks + b.Writebacks,
		Reads:      a.Reads + b.Reads,
		Writes:     a.Writes + b.Writes,
	}
}

func subStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:   a.Accesses - b.Accesses,
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Writebacks: a.Writebacks - b.Writebacks,
		Reads:      a.Reads - b.Reads,
		Writes:     a.Writes - b.Writes,
	}
}

func sub(a, b Profile) Profile {
	return Profile{
		Ops:     a.Ops - b.Ops,
		SIMDOps: a.SIMDOps - b.SIMDOps,
		MemRefs: a.MemRefs - b.MemRefs,
		L1:      subStats(a.L1, b.L1),
		LLC:     subStats(a.LLC, b.LLC),
		Mem: dram.Traffic{
			BytesRead:    a.Mem.BytesRead - b.Mem.BytesRead,
			BytesWritten: a.Mem.BytesWritten - b.Mem.BytesWritten,
		},
		Rows: dram.RowStats{
			Accesses: a.Rows.Accesses - b.Rows.Accesses,
			RowHits:  a.Rows.RowHits - b.Rows.RowHits,
			RowOpens: a.Rows.RowOpens - b.Rows.RowOpens,
		},
	}
}

// Hardware describes the memory system a kernel is profiled against.
type Hardware struct {
	Name string
	L1   cache.Config
	L2   *cache.Config // nil when the engine has no shared LLC (PIM logic)

	// ScalarRef and VectorRef are the widths, in bytes, of one scalar and
	// one vector memory reference. Zero values default to 8 and 16.
	ScalarRef int
	VectorRef int
}

// SoC returns the baseline SoC core configuration (paper Table 1: 64 kB
// 4-way private L1, 2 MB 8-way shared L2, 64 B lines).
func SoC() Hardware {
	l2 := cache.Config{Name: "LLC", Size: 2 << 20, Ways: 8}
	return Hardware{
		Name: "CPU-Only",
		L1:   cache.Config{Name: "L1D", Size: 64 << 10, Ways: 4},
		L2:   &l2,
	}
}

// PIMCore returns the PIM core configuration (paper Table 1: 32 kB 4-way L1,
// no LLC, 16-byte (4x32-bit) SIMD references).
func PIMCore() Hardware {
	return Hardware{
		Name: "PIM-Core",
		L1:   cache.Config{Name: "PIM-L1", Size: 32 << 10, Ways: 4},
	}
}

// PIMAcc returns the PIM accelerator configuration: a 32 kB scratchpad
// buffer, modelled as a small fully-streaming cache, no LLC.
func PIMAcc() Hardware {
	return Hardware{
		Name: "PIM-Acc",
		L1:   cache.Config{Name: "PIM-Buf", Size: 32 << 10, Ways: 8},
	}
}

// Kernel is a unit of instrumented work.
type Kernel interface {
	// Name identifies the kernel in reports.
	Name() string
	// Run performs the kernel's real computation, reporting operations and
	// memory accesses through ctx.
	Run(ctx *Ctx)
}

// KernelFunc adapts a function to the Kernel interface.
type KernelFunc struct {
	KernelName string
	// Key, when non-empty, uniquely identifies the kernel's work: the name
	// plus every parameter that affects the instrumentation stream it emits
	// (sizes, iteration counts, input content). The trace cache memoizes on
	// it; kernels with an empty Key always execute directly.
	Key string
	Fn  func(*Ctx)
}

// Name implements Kernel.
func (k KernelFunc) Name() string { return k.KernelName }

// Run implements Kernel.
func (k KernelFunc) Run(ctx *Ctx) { k.Fn(ctx) }

// CacheKey implements Keyed.
func (k KernelFunc) CacheKey() string { return k.Key }

// Keyed is implemented by kernels whose instrumentation stream is a pure
// function of a stable identity string, making them safe to memoize.
type Keyed interface {
	CacheKey() string
}

// KeyOf returns the kernel's cache key, or "" if the kernel does not
// declare one (and must therefore run directly every time).
func KeyOf(k Kernel) string {
	if kk, ok := k.(Keyed); ok {
		return kk.CacheKey()
	}
	return ""
}

// Runner is the signature shared by Run and trace-cache-backed variants,
// letting instrumentation consumers (e.g. per-layer network profiling) be
// parameterized over how kernels execute.
type Runner func(hw Hardware, kernel Kernel) (Profile, map[string]Profile)

// Run profiles kernel on hw and returns the total profile together with
// per-phase profiles (keyed by the phase labels the kernel set; kernels that
// never call SetPhase produce a single phase named "" in the map).
func Run(hw Hardware, kernel Kernel) (Profile, map[string]Profile) {
	ctx := NewCtx(hw)
	kernel.Run(ctx)
	return ctx.Finish()
}

// AccessOp classifies one recorded memory event for trace capture.
type AccessOp uint8

// Access operations recorded through TraceSink. The scalar/vector split
// must be preserved in the trace because the replay hardware's reference
// widths, not the recording hardware's, determine MemRefs on replay.
const (
	OpLoad   AccessOp = iota // scalar-width read (Load / LoadSpan)
	OpStore                  // scalar-width write (Store / StoreSpan)
	OpLoadV                  // vector-width read (LoadV / LoadSpanV)
	OpStoreV                 // vector-width write (StoreV / StoreSpanV)
	OpCopyV                  // CopySpanV: per-row read src, write dst
	OpBlendV                 // BlendSpanV: per-row read src, read dst, write dst
)

// TraceSink receives the instrumentation stream of one kernel execution.
// Events arrive in program order, after the Ctx guard conditions (so a
// recorded event always had an effect), and carry raw byte geometry —
// never derived reference counts, which are hardware-dependent.
type TraceSink interface {
	// Phase marks a phase transition (only called when the phase changes).
	Phase(name string)
	// Count records Ops/SIMD/Refs counter increments.
	Count(ops, simd, refs uint64)
	// Span records a strided access rectangle: rows of rowBytes each,
	// stride bytes apart, starting at off in b. Single accesses are
	// recorded as rows=1, stride=0.
	Span(op AccessOp, b *mem.Buffer, off, rowBytes, rows, stride int)
	// Span2 records a two-buffer rectangle (copy or blend).
	Span2(op AccessOp, src *mem.Buffer, srcOff int, dst *mem.Buffer, dstOff int, rowBytes, rows, srcStride, dstStride int)
}

// Record profiles kernel on hw exactly like Run while streaming every
// instrumentation event into sink.
func Record(hw Hardware, kernel Kernel, sink TraceSink) (Profile, map[string]Profile) {
	ctx := NewCtx(hw)
	ctx.sink = sink
	kernel.Run(ctx)
	return ctx.Finish()
}

// Ctx is the instrumentation context handed to kernels. It owns the
// simulated address space, the cache hierarchy, and the operation counters.
type Ctx struct {
	Space *mem.Space

	hier  *cache.Hierarchy
	meter *dram.RowMeter

	scalarRef uint64
	vectorRef uint64

	ops, simd, refs uint64

	phase      string
	phaseStack []string
	phaseOrder []string
	phases     map[string]Profile
	lastSnap   Profile

	// sink, when non-nil, receives every instrumentation event (set by
	// Record; nil for Run and for replays).
	sink TraceSink
}

// NewCtx builds a fresh context for hw.
func NewCtx(hw Hardware) *Ctx {
	// The meter's byte accounting follows the hierarchy's line size (one
	// fill or writeback moves one line); identical to the historical
	// accounting for every 64 B-line config.
	meter := dram.NewRowMeterLine(hw.L1.LineSize)
	l1 := cache.New(hw.L1)
	var l2 *cache.Cache
	if hw.L2 != nil {
		l2 = cache.New(*hw.L2)
	}
	scalar := hw.ScalarRef
	if scalar == 0 {
		scalar = 8
	}
	vector := hw.VectorRef
	if vector == 0 {
		vector = 16
	}
	return &Ctx{
		Space:     mem.NewSpace(),
		hier:      cache.NewHierarchy(l1, l2, meter),
		meter:     meter,
		scalarRef: uint64(scalar),
		vectorRef: uint64(vector),
		phases:    map[string]Profile{},
	}
}

// Alloc reserves a named buffer in the simulated address space.
func (c *Ctx) Alloc(name string, n int) *mem.Buffer { return c.Space.Alloc(name, n) }

// SetPhase attributes subsequent counters to the named phase (e.g. a
// function name such as "texture tiling"). Phases may be revisited; their
// counters accumulate.
func (c *Ctx) SetPhase(name string) {
	if name == c.phase {
		return
	}
	if c.sink != nil {
		c.sink.Phase(name)
	}
	c.flushPhase()
	c.phase = name
}

// PushPhase enters a nested phase, remembering the active one so the
// matching PopPhase can restore it — for helpers that attribute part of
// their work to a sub-phase without knowing (or clobbering) the caller's
// phase. Push/pop pairs must balance on every control-flow path,
// including early returns; the phasebalance analyzer enforces this
// statically, because a leaked push misattributes every subsequent
// counter and an extra pop resurrects a stale outer phase, corrupting
// per-phase breakdowns without failing any test.
func (c *Ctx) PushPhase(name string) {
	c.phaseStack = append(c.phaseStack, c.phase)
	c.SetPhase(name)
}

// PopPhase leaves the phase entered by the matching PushPhase and
// resumes attributing counters to the phase active before it. Popping
// an empty stack is a no-op.
func (c *Ctx) PopPhase() {
	if len(c.phaseStack) == 0 {
		return
	}
	prev := c.phaseStack[len(c.phaseStack)-1]
	c.phaseStack = c.phaseStack[:len(c.phaseStack)-1]
	c.SetPhase(prev)
}

func (c *Ctx) flushPhase() {
	now := c.snapshot()
	delta := sub(now, c.lastSnap)
	c.lastSnap = now
	if _, seen := c.phases[c.phase]; !seen {
		if delta == (Profile{}) {
			// Don't materialize phases that never saw activity (e.g. the
			// implicit "" phase of kernels that set a phase immediately).
			return
		}
		c.phaseOrder = append(c.phaseOrder, c.phase)
	}
	c.phases[c.phase] = c.phases[c.phase].Add(delta)
}

func (c *Ctx) snapshot() Profile {
	p := Profile{
		Ops:     c.ops,
		SIMDOps: c.simd,
		MemRefs: c.refs,
		L1:      c.hier.L1.Stats(),
		Mem:     c.meter.Traffic(),
		Rows:    c.meter.RowStats(),
	}
	if c.hier.L2 != nil {
		p.LLC = c.hier.L2.Stats()
	}
	return p
}

// Finish closes the current phase and returns the total profile plus the
// per-phase map.
func (c *Ctx) Finish() (Profile, map[string]Profile) {
	c.flushPhase()
	total := Profile{}
	for _, p := range c.phases {
		total = total.Add(p)
	}
	return total, c.phases
}

// PhaseOrder returns phase labels in first-use order.
func (c *Ctx) PhaseOrder() []string {
	out := append([]string(nil), c.phaseOrder...)
	return out
}

// SortedPhases returns the phase labels sorted alphabetically (for stable
// test output when order does not matter).
func (c *Ctx) SortedPhases() []string {
	out := append([]string(nil), c.phaseOrder...)
	sort.Strings(out)
	return out
}

// Ops records n scalar ALU/branch operations.
func (c *Ctx) Ops(n int) {
	c.ops += uint64(n)
	if c.sink != nil {
		c.sink.Count(uint64(n), 0, 0)
	}
}

// Refs records n load/store instructions that are known to stay
// cache-resident (e.g. re-reads of a blocked operand panel inside a GEMM
// inner loop). They contribute to instruction count and L1 energy but do
// not traverse the cache model.
func (c *Ctx) Refs(n int) {
	c.refs += uint64(n)
	if c.sink != nil {
		c.sink.Count(0, 0, uint64(n))
	}
}

// SIMD records n vector ALU operations.
func (c *Ctx) SIMD(n int) {
	c.simd += uint64(n)
	if c.sink != nil {
		c.sink.Count(0, uint64(n), 0)
	}
}

// AddCounters bulk-adds pre-aggregated counter values. It is the replay
// entry point for coalesced Count events; kernels use Ops/SIMD/Refs.
func (c *Ctx) AddCounters(ops, simd, refs uint64) {
	c.ops += ops
	c.simd += simd
	c.refs += refs
}

// AddSpanRefs adds the memory-reference count of rows spans of rowBytes
// each at this hardware's scalar or vector reference width — exactly the
// MemRefs contribution the corresponding live span entry point computes.
// It is the compiled-replay hook for the hardware-dependent half of the
// counters: traces store raw span geometry, and the compiler aggregates
// it per (rowBytes, width-class) group so replay prices it against the
// replaying hardware's widths in O(groups) instead of O(events).
func (c *Ctx) AddSpanRefs(rowBytes, rows uint64, vector bool) {
	w := c.scalarRef
	if vector {
		w = c.vectorRef
	}
	c.refs += rows * ((rowBytes + w - 1) / w)
}

// ReplayLines drives a compiled line stream through the context's cache
// hierarchy and row meter (see cache.Hierarchy.ReplayStream). Counters are
// unaffected; pair with AddCounters/AddSpanRefs to replay a full trace
// segment.
func (c *Ctx) ReplayLines(s *cache.LineStream) {
	c.hier.ReplayStream(s)
}

// Load records a scalar-width read of n bytes at offset off in b.
func (c *Ctx) Load(b *mem.Buffer, off, n int) {
	if n <= 0 {
		return
	}
	c.refs += (uint64(n) + c.scalarRef - 1) / c.scalarRef
	c.hier.Load(b.Addr(off), n)
	if c.sink != nil {
		c.sink.Span(OpLoad, b, off, n, 1, 0)
	}
}

// Store records a scalar-width write of n bytes at offset off in b.
func (c *Ctx) Store(b *mem.Buffer, off, n int) {
	if n <= 0 {
		return
	}
	c.refs += (uint64(n) + c.scalarRef - 1) / c.scalarRef
	c.hier.Store(b.Addr(off), n)
	if c.sink != nil {
		c.sink.Span(OpStore, b, off, n, 1, 0)
	}
}

// LoadV records a vector-width (bulk) read of n bytes, as a SIMD memcopy
// would issue.
func (c *Ctx) LoadV(b *mem.Buffer, off, n int) {
	if n <= 0 {
		return
	}
	c.refs += (uint64(n) + c.vectorRef - 1) / c.vectorRef
	c.hier.Load(b.Addr(off), n)
	if c.sink != nil {
		c.sink.Span(OpLoadV, b, off, n, 1, 0)
	}
}

// StoreV records a vector-width (bulk) write of n bytes.
func (c *Ctx) StoreV(b *mem.Buffer, off, n int) {
	if n <= 0 {
		return
	}
	c.refs += (uint64(n) + c.vectorRef - 1) / c.vectorRef
	c.hier.Store(b.Addr(off), n)
	if c.sink != nil {
		c.sink.Span(OpStoreV, b, off, n, 1, 0)
	}
}

// Span-coalescing entry points. Each batches a whole strided rectangle —
// `rows` spans of rowBytes each, stride bytes apart — into one call, and is
// defined as exactly equivalent to the corresponding per-row loop: same
// instruction counting, same cache-line events in the same order. They
// exist purely to cut per-call overhead in row-structured kernels (blit
// rectangles, texture tiles, packed GEMM panels, MC reference windows).

// LoadSpan records rows scalar-width reads of rowBytes each, stride bytes
// apart — equivalent to rows Load calls.
func (c *Ctx) LoadSpan(b *mem.Buffer, off, rowBytes, rows, stride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * ((uint64(rowBytes) + c.scalarRef - 1) / c.scalarRef)
	c.hier.LoadSpan(b.Addr(off), rowBytes, rows, uint64(stride))
	if c.sink != nil {
		c.sink.Span(OpLoad, b, off, rowBytes, rows, stride)
	}
}

// StoreSpan records rows scalar-width writes of rowBytes each, stride
// bytes apart — equivalent to rows Store calls.
func (c *Ctx) StoreSpan(b *mem.Buffer, off, rowBytes, rows, stride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * ((uint64(rowBytes) + c.scalarRef - 1) / c.scalarRef)
	c.hier.StoreSpan(b.Addr(off), rowBytes, rows, uint64(stride))
	if c.sink != nil {
		c.sink.Span(OpStore, b, off, rowBytes, rows, stride)
	}
}

// LoadSpanV records rows vector-width reads of rowBytes each, stride bytes
// apart — equivalent to rows LoadV calls.
func (c *Ctx) LoadSpanV(b *mem.Buffer, off, rowBytes, rows, stride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * ((uint64(rowBytes) + c.vectorRef - 1) / c.vectorRef)
	c.hier.LoadSpan(b.Addr(off), rowBytes, rows, uint64(stride))
	if c.sink != nil {
		c.sink.Span(OpLoadV, b, off, rowBytes, rows, stride)
	}
}

// StoreSpanV records rows vector-width writes of rowBytes each, stride
// bytes apart — equivalent to rows StoreV calls.
func (c *Ctx) StoreSpanV(b *mem.Buffer, off, rowBytes, rows, stride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * ((uint64(rowBytes) + c.vectorRef - 1) / c.vectorRef)
	c.hier.StoreSpan(b.Addr(off), rowBytes, rows, uint64(stride))
	if c.sink != nil {
		c.sink.Span(OpStoreV, b, off, rowBytes, rows, stride)
	}
}

// CopySpanV records a rectangle copy: per row, a vector-width read of
// rowBytes at src/srcOff and a vector-width write at dst/dstOff, the
// offsets advancing by their strides. The read/write interleaving per row
// is preserved (it determines eviction order), so the call is equivalent
// to the per-row LoadV+StoreV loop it replaces.
func (c *Ctx) CopySpanV(src *mem.Buffer, srcOff int, dst *mem.Buffer, dstOff int, rowBytes, rows, srcStride, dstStride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * 2 * ((uint64(rowBytes) + c.vectorRef - 1) / c.vectorRef)
	sa, da := src.Addr(srcOff), dst.Addr(dstOff)
	for r := 0; r < rows; r++ {
		c.hier.Load(sa, rowBytes)
		c.hier.Store(da, rowBytes)
		sa += uint64(srcStride)
		da += uint64(dstStride)
	}
	if c.sink != nil {
		c.sink.Span2(OpCopyV, src, srcOff, dst, dstOff, rowBytes, rows, srcStride, dstStride)
	}
}

// BlendSpanV records a read-modify-write rectangle: per row, vector-width
// reads of the src and dst rows followed by a write of the dst row — the
// access pattern of source-over alpha blending.
func (c *Ctx) BlendSpanV(src *mem.Buffer, srcOff int, dst *mem.Buffer, dstOff int, rowBytes, rows, srcStride, dstStride int) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	c.refs += uint64(rows) * 3 * ((uint64(rowBytes) + c.vectorRef - 1) / c.vectorRef)
	sa, da := src.Addr(srcOff), dst.Addr(dstOff)
	for r := 0; r < rows; r++ {
		c.hier.Load(sa, rowBytes)
		c.hier.Load(da, rowBytes)
		c.hier.Store(da, rowBytes)
		sa += uint64(srcStride)
		da += uint64(dstStride)
	}
	if c.sink != nil {
		c.sink.Span2(OpBlendV, src, srcOff, dst, dstOff, rowBytes, rows, srcStride, dstStride)
	}
}
