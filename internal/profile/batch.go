package profile

import (
	"gopim/internal/cache"
)

// CtxBatch drives K replay contexts — one per hardware config — through one
// compiled trace walk. The counter entry points fan out to every context
// (each prices span refs at its own scalar/vector widths), and ReplayLines
// walks the shared line stream once via cache.HierarchySet instead of once
// per config. All configs must share one line size: compiled line streams
// are per-line-size, so callers group configs by line size first.
//
// Every member context is left exactly as a serial replay would leave it,
// so Finish returns the same (Profile, phase map) per config as K
// independent replays.
type CtxBatch struct {
	ctxs []*Ctx
	set  *cache.HierarchySet
}

// NewCtxBatch builds fresh contexts for hws and groups their hierarchies
// for batched stream replay. It panics if the configs do not share one line
// size (config sets are assembled programmatically; cache.NewHierarchySet
// enforces the invariant).
func NewCtxBatch(hws []Hardware) *CtxBatch {
	ctxs := make([]*Ctx, len(hws))
	hiers := make([]*cache.Hierarchy, len(hws))
	for i, hw := range hws {
		ctxs[i] = NewCtx(hw)
		hiers[i] = ctxs[i].hier
	}
	return &CtxBatch{ctxs: ctxs, set: cache.NewHierarchySet(hiers)}
}

// SetPhase starts a phase on every context (snapshotting per-config stats
// at the boundary, exactly as serial replay does).
func (b *CtxBatch) SetPhase(name string) {
	for _, c := range b.ctxs {
		c.SetPhase(name)
	}
}

// AddCounters bulk-adds hardware-independent counters to every context.
func (b *CtxBatch) AddCounters(ops, simd, refs uint64) {
	for _, c := range b.ctxs {
		c.AddCounters(ops, simd, refs)
	}
}

// AddSpanRefs prices one span-ref group on every context at that context's
// own scalar or vector reference width.
func (b *CtxBatch) AddSpanRefs(rowBytes, rows uint64, vector bool) {
	for _, c := range b.ctxs {
		c.AddSpanRefs(rowBytes, rows, vector)
	}
}

// ReplayLines walks the compiled line stream once, driving every context's
// hierarchy and row meter (see cache.HierarchySet.ReplayStreamBatch).
func (b *CtxBatch) ReplayLines(s *cache.LineStream) {
	b.set.ReplayStreamBatch(s)
}

// Finish closes every context and returns the per-config totals and phase
// maps, index-aligned with the hws given to NewCtxBatch.
func (b *CtxBatch) Finish() ([]Profile, []map[string]Profile) {
	profs := make([]Profile, len(b.ctxs))
	phases := make([]map[string]Profile, len(b.ctxs))
	for i, c := range b.ctxs {
		profs[i], phases[i] = c.Finish()
	}
	return profs, phases
}
