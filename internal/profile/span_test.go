package profile

import (
	"math/rand"
	"testing"
)

// TestCtxSpanMethodsMatchPerRowLoops checks the contract the span entry
// points document: each one is exactly equivalent — same ref counting, same
// cache/DRAM events in the same order — to the per-row loop it replaces.
func TestCtxSpanMethodsMatchPerRowLoops(t *testing.T) {
	for _, hw := range []Hardware{SoC(), PIMCore(), PIMAcc()} {
		span := NewCtx(hw)
		loop := NewCtx(hw)
		const size = 1 << 16
		sa, sb := span.Alloc("a", size), span.Alloc("b", size)
		la, lb := loop.Alloc("a", size), loop.Alloc("b", size)

		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 300; i++ {
			rowBytes := 1 + rng.Intn(256)
			rows := 1 + rng.Intn(8)
			stride := rowBytes + rng.Intn(512)
			off := rng.Intn(size - (rows-1)*stride - rowBytes)
			off2 := rng.Intn(size - (rows-1)*stride - rowBytes)

			switch rng.Intn(6) {
			case 0:
				span.LoadSpan(sa, off, rowBytes, rows, stride)
				for r := 0; r < rows; r++ {
					loop.Load(la, off+r*stride, rowBytes)
				}
			case 1:
				span.StoreSpan(sa, off, rowBytes, rows, stride)
				for r := 0; r < rows; r++ {
					loop.Store(la, off+r*stride, rowBytes)
				}
			case 2:
				span.LoadSpanV(sa, off, rowBytes, rows, stride)
				for r := 0; r < rows; r++ {
					loop.LoadV(la, off+r*stride, rowBytes)
				}
			case 3:
				span.StoreSpanV(sb, off, rowBytes, rows, stride)
				for r := 0; r < rows; r++ {
					loop.StoreV(lb, off+r*stride, rowBytes)
				}
			case 4:
				span.CopySpanV(sa, off, sb, off2, rowBytes, rows, stride, stride)
				for r := 0; r < rows; r++ {
					loop.LoadV(la, off+r*stride, rowBytes)
					loop.StoreV(lb, off2+r*stride, rowBytes)
				}
			case 5:
				span.BlendSpanV(sa, off, sb, off2, rowBytes, rows, stride, stride)
				for r := 0; r < rows; r++ {
					loop.LoadV(la, off+r*stride, rowBytes)
					loop.LoadV(lb, off2+r*stride, rowBytes)
					loop.StoreV(lb, off2+r*stride, rowBytes)
				}
			}
		}

		spanTotal, _ := span.Finish()
		loopTotal, _ := loop.Finish()
		if spanTotal != loopTotal {
			t.Errorf("%s: span profile %+v != per-row profile %+v", hw.Name, spanTotal, loopTotal)
		}
	}
}

// TestSpanZeroAndNegativeSizesAreNoOps mirrors the guards in the scalar
// entry points.
func TestSpanZeroAndNegativeSizesAreNoOps(t *testing.T) {
	ctx := NewCtx(SoC())
	b := ctx.Alloc("b", 4096)
	ctx.LoadSpan(b, 0, 0, 4, 64)
	ctx.StoreSpan(b, 0, 16, 0, 64)
	ctx.LoadSpanV(b, 0, -1, 4, 64)
	ctx.CopySpanV(b, 0, b, 2048, 16, -2, 64, 64)
	ctx.BlendSpanV(b, 0, b, 2048, 0, 3, 64, 64)
	total, _ := ctx.Finish()
	if total != (Profile{}) {
		t.Errorf("degenerate spans produced activity: %+v", total)
	}
}
