package profile

import (
	"testing"

	"gopim/internal/mem"
)

func TestCountersAndPhases(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		buf := ctx.Alloc("buf", 4096)
		ctx.SetPhase("read")
		ctx.Load(buf, 0, 1024) // 128 scalar refs, 16 lines
		ctx.Ops(100)
		ctx.SetPhase("write")
		ctx.StoreV(buf, 0, 1024) // 64 vector refs
		ctx.SIMD(10)
	}}
	total, phases := Run(SoC(), k)

	if got := total.MemRefs; got != 128+64 {
		t.Errorf("MemRefs = %d, want 192", got)
	}
	if total.Ops != 100 || total.SIMDOps != 10 {
		t.Errorf("Ops/SIMD = %d/%d, want 100/10", total.Ops, total.SIMDOps)
	}
	if got := total.Instructions(); got != 100+10+192 {
		t.Errorf("Instructions = %d, want 302", got)
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %v", len(phases), phases)
	}
	r := phases["read"]
	w := phases["write"]
	if r.Ops != 100 || w.SIMDOps != 10 {
		t.Errorf("phase attribution wrong: read=%+v write=%+v", r, w)
	}
	if r.L1.Misses == 0 {
		t.Error("cold reads produced no L1 misses")
	}
	if w.L1.Misses != 0 {
		t.Errorf("writes to just-read lines missed L1 %d times", w.L1.Misses)
	}
	// Totals must equal the sum of phases.
	sum := Profile{}
	for _, p := range phases {
		sum = sum.Add(p)
	}
	if sum != total {
		t.Errorf("phase sum %+v != total %+v", sum, total)
	}
}

func TestPhaseRevisitAccumulates(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		ctx.SetPhase("a")
		ctx.Ops(1)
		ctx.SetPhase("b")
		ctx.Ops(10)
		ctx.SetPhase("a")
		ctx.Ops(2)
	}}
	total, phases := Run(SoC(), k)
	if phases["a"].Ops != 3 {
		t.Errorf(`phase "a" ops = %d, want 3`, phases["a"].Ops)
	}
	if phases["b"].Ops != 10 {
		t.Errorf(`phase "b" ops = %d, want 10`, phases["b"].Ops)
	}
	if total.Ops != 13 {
		t.Errorf("total ops = %d, want 13", total.Ops)
	}
}

func TestSoCHitsInLLCAfterL1Eviction(t *testing.T) {
	// Working set: 256 KiB — exceeds the 64 KiB L1, fits the 2 MiB LLC.
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		buf := ctx.Alloc("buf", 256<<10)
		for pass := 0; pass < 2; pass++ {
			for off := 0; off < buf.Len(); off += mem.LineSize {
				ctx.Load(buf, off, mem.LineSize)
			}
		}
	}}
	total, _ := Run(SoC(), k)
	wantCold := uint64(256 << 10)
	if total.Mem.BytesRead != wantCold {
		t.Errorf("memory reads = %d bytes, want %d (only cold misses)", total.Mem.BytesRead, wantCold)
	}
	if total.LLC.Misses >= total.LLC.Accesses {
		t.Error("LLC absorbed nothing on the second pass")
	}
}

func TestPIMCoreHasNoLLC(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		buf := ctx.Alloc("buf", 128<<10)
		for off := 0; off < buf.Len(); off += mem.LineSize {
			ctx.Load(buf, off, mem.LineSize)
		}
	}}
	total, _ := Run(PIMCore(), k)
	if total.LLC.Accesses != 0 {
		t.Errorf("PIM core recorded %d LLC accesses; it has none", total.LLC.Accesses)
	}
	if total.Mem.BytesRead != 128<<10 {
		t.Errorf("memory reads = %d, want %d", total.Mem.BytesRead, 128<<10)
	}
}

func TestLLCMPKI(t *testing.T) {
	p := Profile{Ops: 500, MemRefs: 500}
	p.LLC.Misses = 25
	if got := p.LLCMPKI(); got != 25 {
		t.Errorf("LLCMPKI = %v, want 25", got)
	}
	var zero Profile
	if zero.LLCMPKI() != 0 {
		t.Error("zero profile MPKI should be 0")
	}
}

func TestScalarVsVectorRefWidths(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		buf := ctx.Alloc("buf", 4096)
		ctx.Load(buf, 0, 64)  // 8 scalar refs
		ctx.LoadV(buf, 0, 64) // 4 vector refs
		ctx.Load(buf, 0, 3)   // 1 ref (partial)
		ctx.LoadV(buf, 0, 17) // 2 refs (partial)
	}}
	total, _ := Run(SoC(), k)
	if total.MemRefs != 8+4+1+2 {
		t.Errorf("MemRefs = %d, want 15", total.MemRefs)
	}
}

func TestNoPhaseKernelGetsDefaultPhase(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) { ctx.Ops(5) }}
	total, phases := Run(SoC(), k)
	if total.Ops != 5 {
		t.Errorf("total ops = %d, want 5", total.Ops)
	}
	if _, ok := phases[""]; !ok || len(phases) != 1 {
		t.Errorf("expected single default phase, got %v", phases)
	}
}
