package profile

import "testing"

func TestPushPopPhaseRestoresOuterPhase(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		ctx.SetPhase("outer")
		ctx.Ops(1)
		ctx.PushPhase("inner")
		ctx.Ops(10)
		ctx.PushPhase("innermost")
		ctx.Ops(100)
		ctx.PopPhase()
		ctx.Ops(20) // back in "inner"
		ctx.PopPhase()
		ctx.Ops(2) // back in "outer"
	}}
	total, phases := Run(SoC(), k)
	if got := phases["outer"].Ops; got != 3 {
		t.Errorf(`phase "outer" ops = %d, want 3`, got)
	}
	if got := phases["inner"].Ops; got != 30 {
		t.Errorf(`phase "inner" ops = %d, want 30`, got)
	}
	if got := phases["innermost"].Ops; got != 100 {
		t.Errorf(`phase "innermost" ops = %d, want 100`, got)
	}
	if total.Ops != 133 {
		t.Errorf("total ops = %d, want 133", total.Ops)
	}
}

func TestPushPhaseAccumulatesOnRevisit(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		ctx.SetPhase("main")
		for i := 0; i < 3; i++ {
			ctx.PushPhase("sub")
			ctx.Ops(5)
			ctx.PopPhase()
			ctx.Ops(1)
		}
	}}
	_, phases := Run(SoC(), k)
	if got := phases["sub"].Ops; got != 15 {
		t.Errorf(`phase "sub" ops = %d, want 15`, got)
	}
	if got := phases["main"].Ops; got != 3 {
		t.Errorf(`phase "main" ops = %d, want 3`, got)
	}
}

func TestPopPhaseOnEmptyStackIsNoOp(t *testing.T) {
	k := KernelFunc{KernelName: "k", Fn: func(ctx *Ctx) {
		ctx.SetPhase("only")
		ctx.PopPhase() // nothing pushed: must not clobber the phase
		ctx.Ops(7)
	}}
	_, phases := Run(SoC(), k)
	if got := phases["only"].Ops; got != 7 {
		t.Errorf(`phase "only" ops = %d, want 7`, got)
	}
}
