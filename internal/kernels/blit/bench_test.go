package blit

import (
	"testing"

	"gopim/internal/gfx"
)

func BenchmarkFill(b *testing.B) {
	dst := gfx.NewBitmap(1024, 1024)
	r := gfx.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 256}
	b.SetBytes(int64(r.Dx() * r.Dy() * gfx.BytesPerPixel))
	for i := 0; i < b.N; i++ {
		Fill(dst, r, gfx.Color{R: byte(i), A: 0xFF})
	}
}

func BenchmarkCopyRect(b *testing.B) {
	dst := gfx.NewBitmap(1024, 1024)
	src := gfx.NewBitmap(1024, 1024)
	src.FillPattern(1)
	b.SetBytes(int64(1024 * 256 * gfx.BytesPerPixel))
	for i := 0; i < b.N; i++ {
		CopyRect(dst, 0, 0, src, 0, 0, 1024, 256)
	}
}

func BenchmarkBlendSrcOver(b *testing.B) {
	dst := gfx.NewBitmap(1024, 1024)
	src := gfx.NewBitmap(1024, 1024)
	src.FillPattern(2)
	b.SetBytes(int64(1024 * 256 * gfx.BytesPerPixel))
	for i := 0; i < b.N; i++ {
		BlendSrcOver(dst, 0, 0, src, 0, 0, 1024, 256)
	}
}
