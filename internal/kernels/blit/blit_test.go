package blit

import (
	"testing"
	"testing/quick"

	"gopim/internal/gfx"
	"gopim/internal/profile"
)

func TestFill(t *testing.T) {
	b := gfx.NewBitmap(8, 8)
	c := gfx.Color{R: 10, G: 20, B: 30, A: 255}
	Fill(b, gfx.Rect{MinX: 2, MinY: 2, MaxX: 5, MaxY: 4}, c)
	if b.At(2, 2) != c || b.At(4, 3) != c {
		t.Error("fill did not cover interior")
	}
	if b.At(5, 2) != (gfx.Color{}) || b.At(2, 4) != (gfx.Color{}) {
		t.Error("fill leaked outside rect (Max is exclusive)")
	}
}

func TestFillClips(t *testing.T) {
	b := gfx.NewBitmap(4, 4)
	Fill(b, gfx.Rect{MinX: -10, MinY: -10, MaxX: 100, MaxY: 100}, gfx.Color{R: 1})
	if b.At(0, 0).R != 1 || b.At(3, 3).R != 1 {
		t.Error("clipped fill missed corners")
	}
	// Fully outside: must be a no-op, not a panic.
	Fill(b, gfx.Rect{MinX: 50, MinY: 50, MaxX: 60, MaxY: 60}, gfx.Color{R: 2})
}

func TestCopyRect(t *testing.T) {
	src := gfx.NewBitmap(8, 8)
	src.FillPattern(1)
	dst := gfx.NewBitmap(8, 8)
	CopyRect(dst, 1, 2, src, 3, 4, 4, 3)
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if dst.At(1+x, 2+y) != src.At(3+x, 4+y) {
				t.Fatalf("pixel (%d,%d) not copied", x, y)
			}
		}
	}
	if dst.At(0, 0) != (gfx.Color{}) {
		t.Error("copy touched pixels outside the block")
	}
}

func TestCopyRectOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds CopyRect did not panic")
		}
	}()
	CopyRect(gfx.NewBitmap(4, 4), 2, 2, gfx.NewBitmap(4, 4), 0, 0, 4, 4)
}

func TestBlendOpaqueReplaces(t *testing.T) {
	src := gfx.NewBitmap(2, 2)
	src.Set(0, 0, gfx.Color{R: 200, G: 100, B: 50, A: 255})
	dst := gfx.NewBitmap(2, 2)
	dst.Set(0, 0, gfx.Color{R: 1, G: 2, B: 3, A: 255})
	BlendSrcOver(dst, 0, 0, src, 0, 0, 1, 1)
	if got := dst.At(0, 0); got != (gfx.Color{R: 200, G: 100, B: 50, A: 255}) {
		t.Errorf("opaque blend = %+v, want source color", got)
	}
}

func TestBlendTransparentKeepsDst(t *testing.T) {
	src := gfx.NewBitmap(1, 1) // alpha 0
	dst := gfx.NewBitmap(1, 1)
	want := gfx.Color{R: 7, G: 8, B: 9, A: 255}
	dst.Set(0, 0, want)
	BlendSrcOver(dst, 0, 0, src, 0, 0, 1, 1)
	if got := dst.At(0, 0); got != want {
		t.Errorf("transparent blend = %+v, want untouched %+v", got, want)
	}
}

func TestBlendHalfAlpha(t *testing.T) {
	src := gfx.NewBitmap(1, 1)
	src.Set(0, 0, gfx.Color{R: 255, A: 128})
	dst := gfx.NewBitmap(1, 1)
	dst.Set(0, 0, gfx.Color{B: 255, A: 255})
	BlendSrcOver(dst, 0, 0, src, 0, 0, 1, 1)
	got := dst.At(0, 0)
	if got.R < 126 || got.R > 130 {
		t.Errorf("half-alpha red = %d, want ~128", got.R)
	}
	if got.B < 125 || got.B > 129 {
		t.Errorf("half-alpha blue = %d, want ~127", got.B)
	}
	if got.A != 255 {
		t.Errorf("alpha = %d, want 255 (opaque dst stays opaque)", got.A)
	}
}

// Property: blending is bounded — output channels never exceed
// max(src, dst) + 1 and never go below min(src, dst) - 1 per channel when
// both are opaque-weighted endpoints of the lerp.
func TestQuickBlendIsLerp(t *testing.T) {
	f := func(s, d [4]byte) bool {
		src := gfx.NewBitmap(1, 1)
		src.Set(0, 0, gfx.Color{R: s[0], G: s[1], B: s[2], A: s[3]})
		dst := gfx.NewBitmap(1, 1)
		dst.Set(0, 0, gfx.Color{R: d[0], G: d[1], B: d[2], A: 255})
		BlendSrcOver(dst, 0, 0, src, 0, 0, 1, 1)
		got := dst.At(0, 0)
		within := func(out, a, b byte) bool {
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			return out >= lo-min8(lo, 1) && out <= hi+min8(255-hi, 1)
		}
		return within(got.R, s[0], d[0]) && within(got.G, s[1], d[1]) && within(got.B, s[2], d[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func min8(a, b byte) byte {
	if a < b {
		return a
	}
	return b
}

func TestKernelProfile(t *testing.T) {
	total, phases := profile.Run(profile.SoC(), Kernel(512, 30, 1))
	p, ok := phases["color blitting"]
	if !ok {
		t.Fatal("no color blitting phase recorded")
	}
	if p.Mem.Total() == 0 {
		t.Error("blitting produced no memory traffic")
	}
	if p.SIMDOps == 0 {
		t.Error("blitting recorded no SIMD work")
	}
	if total.Instructions() == 0 {
		t.Error("no instructions recorded")
	}
}

func TestKernelDeterministic(t *testing.T) {
	a, _ := profile.Run(profile.SoC(), Kernel(256, 12, 9))
	b, _ := profile.Run(profile.SoC(), Kernel(256, 12, 9))
	if a != b {
		t.Errorf("same seed produced different profiles:\n%+v\n%+v", a, b)
	}
}
