// Package blit implements the color blitting PIM target (paper §4.2.2):
// the Skia-style blitter invoked during rasterization. A blitter's primary
// operation is copying blocks of pixels; the package provides solid fills
// (memset-like), rectangle copies (memcopy-like, used for double
// buffering), and source-over alpha blending (the core of alpha
// compositing), plus an instrumented kernel mixing them the way
// rasterization of a web page does.
package blit

import (
	"fmt"
	"math/rand"

	"gopim/internal/gfx"
	"gopim/internal/mem"
	"gopim/internal/profile"
)

// Fill writes the solid color c over r (clipped to dst).
func Fill(dst *gfx.Bitmap, r gfx.Rect, c gfx.Color) {
	r = r.Clip(dst)
	if r.Empty() {
		return
	}
	for y := r.MinY; y < r.MaxY; y++ {
		row := dst.Pix[y*dst.Stride:]
		for x := r.MinX; x < r.MaxX; x++ {
			i := x * gfx.BytesPerPixel
			row[i], row[i+1], row[i+2], row[i+3] = c.R, c.G, c.B, c.A
		}
	}
}

// CopyRect copies the w x h block at (sx, sy) in src to (dx, dy) in dst.
// The block must lie fully inside both bitmaps.
func CopyRect(dst *gfx.Bitmap, dx, dy int, src *gfx.Bitmap, sx, sy, w, h int) {
	checkBlock(dst, dx, dy, w, h)
	checkBlock(src, sx, sy, w, h)
	for row := 0; row < h; row++ {
		d := dst.Pix[(dy+row)*dst.Stride+dx*gfx.BytesPerPixel:]
		s := src.Pix[(sy+row)*src.Stride+sx*gfx.BytesPerPixel:]
		copy(d[:w*gfx.BytesPerPixel], s[:w*gfx.BytesPerPixel])
	}
}

// BlendSrcOver composites the w x h block of src at (sx, sy) over dst at
// (dx, dy) using non-premultiplied source-over blending:
//
//	out = src*alpha + dst*(1-alpha)
func BlendSrcOver(dst *gfx.Bitmap, dx, dy int, src *gfx.Bitmap, sx, sy, w, h int) {
	checkBlock(dst, dx, dy, w, h)
	checkBlock(src, sx, sy, w, h)
	for row := 0; row < h; row++ {
		d := dst.Pix[(dy+row)*dst.Stride+dx*gfx.BytesPerPixel:]
		s := src.Pix[(sy+row)*src.Stride+sx*gfx.BytesPerPixel:]
		for x := 0; x < w; x++ {
			i := x * gfx.BytesPerPixel
			a := uint32(s[i+3])
			na := 255 - a
			d[i] = blendByte(s[i], d[i], a, na)
			d[i+1] = blendByte(s[i+1], d[i+1], a, na)
			d[i+2] = blendByte(s[i+2], d[i+2], a, na)
			d[i+3] = satAdd8(s[i+3], mul255(d[i+3], byte(na)))
		}
	}
}

func blendByte(s, d byte, a, na uint32) byte {
	return byte((uint32(s)*a + uint32(d)*na + 127) / 255)
}

func mul255(v, m byte) byte { return byte((uint32(v)*uint32(m) + 127) / 255) }

func satAdd8(a, b byte) byte {
	s := uint16(a) + uint16(b)
	if s > 255 {
		return 255
	}
	return byte(s)
}

func checkBlock(b *gfx.Bitmap, x, y, w, h int) {
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > b.W || y+h > b.H {
		panic(fmt.Sprintf("blit: block (%d,%d %dx%d) outside %dx%d bitmap", x, y, w, h, b.W, b.H))
	}
}

// Kernel returns the instrumented color blitting kernel: rasterizing nOps
// primitives into a size x size destination bitmap, with the mix of fills,
// copies and alpha blends that drawing a web page's render objects
// produces. Bitmaps live in simulated memory; sizes of 1024 and up exceed
// the LLC, giving the streaming behaviour the paper reports.
func Kernel(size, nOps int, seed int64) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("color blitting %dx%d", size, size),
		Key:        fmt.Sprintf("blit %d n%d s%d", size, nOps, seed),
		Fn: func(ctx *profile.Ctx) {
			run(ctx, size, nOps, seed)
		},
	}
}

func run(ctx *profile.Ctx, size, nOps int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dstBuf := ctx.Alloc("destination bitmap", size*size*gfx.BytesPerPixel)
	srcBuf := ctx.Alloc("source bitmap", size*size*gfx.BytesPerPixel)
	dst := gfx.FromPix(size, size, dstBuf.Data)
	src := gfx.FromPix(size, size, srcBuf.Data)
	src.FillPattern(uint32(seed))

	ctx.SetPhase("color blitting")
	for op := 0; op < nOps; op++ {
		w := 64 + rng.Intn(size-64)
		h := 16 + rng.Intn(size/4)
		x := rng.Intn(size - w)
		y := rng.Intn(size - h)
		r := gfx.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		switch op % 3 {
		case 0:
			TraceFill(ctx, dstBuf, dst, r, gfx.Color{R: byte(op), G: byte(op >> 8), B: 0x80, A: 0xFF})
		case 1:
			TraceCopy(ctx, dstBuf, dst, srcBuf, src, r)
		case 2:
			TraceBlend(ctx, dstBuf, dst, srcBuf, src, r)
		}
	}
}

// TraceFill performs a solid fill (streaming stores) on a simulated-memory
// bitmap, recording its accesses and arithmetic.
func TraceFill(ctx *profile.Ctx, dstBuf *mem.Buffer, dst *gfx.Bitmap, r gfx.Rect, c gfx.Color) {
	r = r.Clip(dst)
	if r.Empty() {
		return
	}
	Fill(dst, r, c)
	rowB := r.Dx() * gfx.BytesPerPixel
	ctx.StoreSpanV(dstBuf, r.MinY*dst.Stride+r.MinX*gfx.BytesPerPixel, rowB, r.Dy(), dst.Stride)
	ctx.SIMD(r.Dx() * r.Dy() / 4)
}

// TraceCopy performs a rectangle copy (stream in, stream out).
func TraceCopy(ctx *profile.Ctx, dstBuf *mem.Buffer, dst *gfx.Bitmap, srcBuf *mem.Buffer, src *gfx.Bitmap, r gfx.Rect) {
	r = r.Clip(dst).Clip(src)
	if r.Empty() {
		return
	}
	CopyRect(dst, r.MinX, r.MinY, src, r.MinX, r.MinY, r.Dx(), r.Dy())
	rowB := r.Dx() * gfx.BytesPerPixel
	off := r.MinY*dst.Stride + r.MinX*gfx.BytesPerPixel
	ctx.CopySpanV(srcBuf, off, dstBuf, off, rowB, r.Dy(), dst.Stride, dst.Stride)
	ctx.SIMD(r.Dx() * r.Dy() / 8)
}

// TraceBlend performs a source-over alpha blend (read-modify-write plus
// per-pixel arithmetic).
func TraceBlend(ctx *profile.Ctx, dstBuf *mem.Buffer, dst *gfx.Bitmap, srcBuf *mem.Buffer, src *gfx.Bitmap, r gfx.Rect) {
	r = r.Clip(dst).Clip(src)
	if r.Empty() {
		return
	}
	BlendSrcOver(dst, r.MinX, r.MinY, src, r.MinX, r.MinY, r.Dx(), r.Dy())
	rowB := r.Dx() * gfx.BytesPerPixel
	off := r.MinY*dst.Stride + r.MinX*gfx.BytesPerPixel
	ctx.BlendSpanV(srcBuf, off, dstBuf, off, rowB, r.Dy(), dst.Stride, dst.Stride)
	ctx.SIMD(r.Dx() * r.Dy() * 5 / 2) // unpack, multiply, add, shift, repack
}
