package texture

import (
	"testing"

	"gopim/internal/gfx"
)

func BenchmarkTile1024(b *testing.B) {
	src := gfx.NewBitmap(1024, 1024)
	src.FillPattern(1)
	dst := make([]byte, TiledSize(1024, 1024))
	b.SetBytes(int64(len(src.Pix)))
	for i := 0; i < b.N; i++ {
		TileInto(dst, src)
	}
}

func BenchmarkUntile1024(b *testing.B) {
	src := gfx.NewBitmap(1024, 1024)
	src.FillPattern(2)
	tiled := Tile(src)
	b.SetBytes(int64(len(src.Pix)))
	for i := 0; i < b.N; i++ {
		Untile(tiled, 1024, 1024)
	}
}
