// Package texture implements the texture tiling PIM target (paper §4.2.2):
// the graphics driver's conversion of a linear rasterized bitmap into 4 KiB
// texture tiles ahead of GPU compositing, modelled after the Intel i965
// driver's glTexImage2D path. Tiling is pure data reorganization — memcopy,
// address arithmetic, and bitwise operations — over a bitmap that typically
// exceeds the LLC, which is what makes it a PIM target.
package texture

import (
	"fmt"

	"gopim/internal/gfx"
	"gopim/internal/profile"
)

// Tile geometry: a 4 KiB tile covers 32x32 RGBA pixels (32 px * 4 B = 128 B
// per tile row, 32 rows), matching the driver's 4 KiB tile size quoted in
// the paper.
const (
	TileW     = 32
	TileH     = 32
	TileRowB  = TileW * gfx.BytesPerPixel
	TileBytes = TileRowB * TileH
)

// TilesFor returns how many tiles cover a w x h bitmap.
func TilesFor(w, h int) (tx, ty int) {
	return (w + TileW - 1) / TileW, (h + TileH - 1) / TileH
}

// TiledSize returns the byte size of the tiled representation of a w x h
// bitmap (edges are padded to whole tiles, as the driver does).
func TiledSize(w, h int) int {
	tx, ty := TilesFor(w, h)
	return tx * ty * TileBytes
}

// Tile converts a linear bitmap into the tiled layout. The returned slice
// has TiledSize(src.W, src.H) bytes; tiles are stored row-major, each tile's
// 32 rows contiguous.
func Tile(src *gfx.Bitmap) []byte {
	dst := make([]byte, TiledSize(src.W, src.H))
	TileInto(dst, src)
	return dst
}

// TileInto is Tile into a caller-provided destination (e.g. simulated
// memory). It panics if dst is too small.
func TileInto(dst []byte, src *gfx.Bitmap) {
	need := TiledSize(src.W, src.H)
	if len(dst) < need {
		panic(fmt.Sprintf("texture: dst %d bytes, need %d", len(dst), need))
	}
	tx, _ := TilesFor(src.W, src.H)
	forEachTileRow(src.W, src.H, func(tileX, tileY, row, srcOff, n int) {
		tileIdx := tileY*tx + tileX
		dstOff := tileIdx*TileBytes + row*TileRowB
		srcY := tileY*TileH + row
		from := src.Pix[srcY*src.Stride+tileX*TileRowB:]
		copy(dst[dstOff:dstOff+n], from[:n])
	})
}

// Untile converts a tiled buffer back into a linear bitmap of size w x h.
func Untile(tiled []byte, w, h int) *gfx.Bitmap {
	dst := gfx.NewBitmap(w, h)
	tx, _ := TilesFor(w, h)
	forEachTileRow(w, h, func(tileX, tileY, row, srcOff, n int) {
		tileIdx := tileY*tx + tileX
		srcY := tileY*TileH + row
		from := tiled[tileIdx*TileBytes+row*TileRowB:]
		to := dst.Pix[srcY*dst.Stride+tileX*TileRowB:]
		copy(to[:n], from[:n])
	})
	return dst
}

// forEachTileRow visits every (tile, in-tile row) pair that holds real
// pixels, giving the linear source offset and valid byte count of that row
// segment.
func forEachTileRow(w, h int, fn func(tileX, tileY, row, srcOff, n int)) {
	tx, ty := TilesFor(w, h)
	stride := w * gfx.BytesPerPixel
	for tileY := 0; tileY < ty; tileY++ {
		for tileX := 0; tileX < tx; tileX++ {
			for row := 0; row < TileH; row++ {
				srcY := tileY*TileH + row
				if srcY >= h {
					break
				}
				srcX := tileX * TileW
				n := TileRowB
				if srcX+TileW > w {
					n = (w - srcX) * gfx.BytesPerPixel
				}
				fn(tileX, tileY, row, srcY*stride+srcX*gfx.BytesPerPixel, n)
			}
		}
	}
}

// Kernel returns the instrumented texture tiling kernel: it rasterizes a
// deterministic bitmap of the given size into simulated memory, then tiles
// it, tracing the driver's read/convert/write data movement (Figure 3's
// steps 2 and 3). repeat controls how many textures are tiled.
func Kernel(w, h, repeat int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("texture tiling %dx%d", w, h),
		Key:        fmt.Sprintf("texture %dx%d r%d", w, h, repeat),
		Fn: func(ctx *profile.Ctx) {
			for r := 0; r < repeat; r++ {
				runOnce(ctx, w, h, uint32(r+1))
			}
		},
	}
}

func runOnce(ctx *profile.Ctx, w, h int, seed uint32) {
	linear := ctx.Alloc("linear bitmap", w*h*gfx.BytesPerPixel)
	tiled := ctx.Alloc("texture tiles", TiledSize(w, h))
	src := gfx.FromPix(w, h, linear.Data)

	// Rasterization wrote the linear bitmap (step 1 in Figure 3); that
	// movement belongs to the rasterizer, so it is a separate phase here.
	ctx.SetPhase("rasterize")
	src.FillPattern(seed)
	ctx.StoreSpanV(linear, src.RowOffset(0), w*gfx.BytesPerPixel, h, src.Stride)
	ctx.SIMD(w * h / 4) // pattern generation, 4 px per vector op

	// The tiling pass itself: read each 128-byte row segment of a tile from
	// the linear bitmap (strided) and write it into the tile (sequential).
	// One span call per tile covers all its row segments.
	ctx.SetPhase("texture tiling")
	tx, ty := TilesFor(w, h)
	stride := w * gfx.BytesPerPixel
	for tileY := 0; tileY < ty; tileY++ {
		rows := TileH
		if tileY*TileH+rows > h {
			rows = h - tileY*TileH
		}
		for tileX := 0; tileX < tx; tileX++ {
			n := TileRowB
			if tileX*TileW+TileW > w {
				n = (w - tileX*TileW) * gfx.BytesPerPixel
			}
			srcOff := (tileY*TileH)*stride + tileX*TileRowB
			dstOff := (tileY*tx + tileX) * TileBytes
			ctx.CopySpanV(linear, srcOff, tiled, dstOff, n, rows, stride, TileRowB)
			ctx.Ops(4 * rows) // tile address computation: shifts, masks, adds
			for row := 0; row < rows; row++ {
				s, d := srcOff+row*stride, dstOff+row*TileRowB
				copy(tiled.Data[d:d+n], linear.Data[s:s+n])
			}
		}
	}
}
