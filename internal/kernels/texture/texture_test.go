package texture

import (
	"bytes"
	"testing"
	"testing/quick"

	"gopim/internal/gfx"
	"gopim/internal/profile"
)

func TestTileUntileBijection(t *testing.T) {
	sizes := [][2]int{{32, 32}, {64, 64}, {128, 96}, {100, 50}, {33, 31}, {1, 1}, {512, 512}}
	for _, s := range sizes {
		w, h := s[0], s[1]
		src := gfx.NewBitmap(w, h)
		src.FillPattern(uint32(w*1000 + h))
		tiled := Tile(src)
		back := Untile(tiled, w, h)
		if !bytes.Equal(back.Pix, src.Pix) {
			t.Errorf("%dx%d: Untile(Tile(x)) != x", w, h)
		}
	}
}

func TestTiledSize(t *testing.T) {
	if got := TiledSize(32, 32); got != TileBytes {
		t.Errorf("TiledSize(32,32) = %d, want %d", got, TileBytes)
	}
	if got := TiledSize(33, 32); got != 2*TileBytes {
		t.Errorf("TiledSize(33,32) = %d, want %d", got, 2*TileBytes)
	}
	if got := TiledSize(1024, 1024); got != 32*32*TileBytes {
		t.Errorf("TiledSize(1024,1024) = %d, want %d", got, 32*32*TileBytes)
	}
}

func TestTileLayoutContiguity(t *testing.T) {
	// Pixel (x,y) inside tile (tx,ty) must land at a predictable offset.
	src := gfx.NewBitmap(64, 64)
	src.Set(33, 2, gfx.Color{R: 0xAB}) // tile (1,0), row 2, in-tile x=1
	tiled := Tile(src)
	off := 1*TileBytes + 2*TileRowB + 1*gfx.BytesPerPixel
	if tiled[off] != 0xAB {
		t.Errorf("pixel (33,2) not at expected tiled offset %d", off)
	}
}

func TestTileIntoTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TileInto with short dst did not panic")
		}
	}()
	TileInto(make([]byte, 10), gfx.NewBitmap(64, 64))
}

// Property: tiling is a bijection for arbitrary small sizes.
func TestQuickBijection(t *testing.T) {
	f := func(w8, h8 uint8, seed uint32) bool {
		w := int(w8)%97 + 1
		h := int(h8)%97 + 1
		src := gfx.NewBitmap(w, h)
		src.FillPattern(seed)
		back := Untile(Tile(src), w, h)
		return bytes.Equal(back.Pix, src.Pix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKernelProfile(t *testing.T) {
	total, phases := profile.Run(profile.SoC(), Kernel(512, 512, 1))
	tiling, ok := phases["texture tiling"]
	if !ok {
		t.Fatalf("no texture tiling phase; got %v", keys(phases))
	}
	bitmapBytes := uint64(512 * 512 * gfx.BytesPerPixel)
	// Tiling reads the bitmap and writes the tiles: at least 2x the bitmap
	// in memory traffic (the 1 MiB bitmap misses the 64 KiB L1 on the
	// strided read and the tiles stream out through writebacks).
	if tiling.Mem.Total() < bitmapBytes {
		t.Errorf("tiling moved %d bytes to memory; expected at least the bitmap size %d", tiling.Mem.Total(), bitmapBytes)
	}
	if total.Instructions() == 0 {
		t.Error("no instructions recorded")
	}
	// The paper's criterion: tiling is memory-intensive (MPKI > 10).
	if mpki := tiling.LLCMPKI(); mpki < 10 {
		t.Errorf("texture tiling LLC MPKI = %.1f, want > 10 (PIM target criterion)", mpki)
	}
}

func TestKernelRepeatScales(t *testing.T) {
	one, _ := profile.Run(profile.SoC(), Kernel(128, 128, 1))
	three, _ := profile.Run(profile.SoC(), Kernel(128, 128, 3))
	if three.Instructions() <= 2*one.Instructions() {
		t.Errorf("3 repeats executed %d instructions vs %d for 1; expected ~3x", three.Instructions(), one.Instructions())
	}
}

func keys(m map[string]profile.Profile) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
