package cache

import (
	"gopim/internal/dram"
)

// MemorySink receives line-granularity traffic that misses the whole cache
// hierarchy (demand fills and writebacks). Implementations are DRAM models.
type MemorySink interface {
	// ReadLine records a demand fill of one cache line from memory.
	ReadLine(addr uint64)
	// WriteLine records a writeback of one cache line to memory.
	WriteLine(addr uint64)
}

// Hierarchy models a one- or two-level cache in front of a memory sink and
// implements mem.Tracer, so it can be attached directly to an instrumented
// kernel. L2 may be nil (the PIM core has only an L1; a PIM accelerator's
// scratchpad buffer is modelled as its L1).
//
// The hierarchy is inclusive-enough for traffic purposes: L1 misses look up
// L2; L2 misses fetch from memory; dirty evictions propagate downward.
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	Mem MemorySink

	// rowMeter holds Mem's concrete type when it is the standard
	// *dram.RowMeter, so the per-line access path calls it directly
	// instead of through interface dispatch. Behaviour is identical.
	rowMeter *dram.RowMeter

	lineSize uint64
}

// NewHierarchy wires l1 (required), l2 (optional) and sink (required).
func NewHierarchy(l1, l2 *Cache, sink MemorySink) *Hierarchy {
	if l1 == nil || sink == nil {
		panic("cache: hierarchy needs an L1 and a memory sink")
	}
	h := &Hierarchy{L1: l1, L2: l2, Mem: sink, lineSize: uint64(l1.cfg.LineSize)}
	h.rowMeter, _ = sink.(*dram.RowMeter)
	return h
}

// Load implements mem.Tracer.
func (h *Hierarchy) Load(addr uint64, n int) { h.span(addr, n, false) }

// Store implements mem.Tracer.
func (h *Hierarchy) Store(addr uint64, n int) { h.span(addr, n, true) }

// LoadSpan records `rows` reads of rowBytes each: the first at addr, each
// subsequent one stride bytes later. It is exactly equivalent to the loop
//
//	for r := 0; r < rows; r++ { h.Load(addr + r*stride, rowBytes) }
//
// — same line events in the same order, so all modeled statistics are
// bit-identical — but costs one call for a whole rectangle (a bitmap rect,
// a texture tile, a packed panel), which matters in kernels that would
// otherwise issue one call per row or per element.
func (h *Hierarchy) LoadSpan(addr uint64, rowBytes, rows int, stride uint64) {
	for r := 0; r < rows; r++ {
		h.span(addr, rowBytes, false)
		addr += stride
	}
}

// StoreSpan is LoadSpan for writes.
func (h *Hierarchy) StoreSpan(addr uint64, rowBytes, rows int, stride uint64) {
	for r := 0; r < rows; r++ {
		h.span(addr, rowBytes, true)
		addr += stride
	}
}

func (h *Hierarchy) span(addr uint64, n int, write bool) {
	if n <= 0 {
		return
	}
	// Align to this hierarchy's own line size (cache.New enforces a power
	// of two), not the global mem.LineSize: for 128 B lines a 64 B-aligned
	// start would walk misaligned line addresses. Identical at 64 B.
	mask := h.lineSize - 1
	first := addr &^ mask
	last := (addr + uint64(n) - 1) &^ mask
	for line := first; ; line += h.lineSize {
		h.access(line, write)
		if line == last {
			break
		}
	}
}

func (h *Hierarchy) access(line uint64, write bool) {
	hit, wb, wbAddr := h.L1.Access(line, write)
	if !hit {
		h.fill(line, wb, wbAddr)
	}
}

// fill handles an L1 miss: propagate the evicted dirty line (if any)
// downward, then fetch the demanded line from L2 or memory. A writeback
// can only accompany a miss, so hit handling never reaches here.
func (h *Hierarchy) fill(line uint64, wb bool, wbAddr uint64) {
	if wb {
		// Dirty L1 eviction: install in L2 (or write to memory directly).
		if h.L2 != nil {
			_, wb2, wb2Addr := h.L2.Access(wbAddr, true)
			if wb2 {
				h.writeLine(wb2Addr)
			}
		} else {
			h.writeLine(wbAddr)
		}
	}
	if h.L2 == nil {
		h.readLine(line)
		return
	}
	hit2, wb2, wb2Addr := h.L2.Access(line, false)
	if wb2 {
		h.writeLine(wb2Addr)
	}
	if !hit2 {
		h.readLine(line)
	}
}

func (h *Hierarchy) readLine(addr uint64) {
	if h.rowMeter != nil {
		h.rowMeter.ReadLine(addr)
		return
	}
	h.Mem.ReadLine(addr)
}

func (h *Hierarchy) writeLine(addr uint64) {
	if h.rowMeter != nil {
		h.rowMeter.WriteLine(addr)
		return
	}
	h.Mem.WriteLine(addr)
}

// Reset clears both cache levels. The memory sink is left untouched.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	if h.L2 != nil {
		h.L2.Reset()
	}
}
