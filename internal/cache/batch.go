// Batched multi-config stream replay: one LineStream walk driving K cache
// hierarchies.
//
// Hierarchy.ReplayStream prices one hardware config per walk, so a K-config
// sweep decodes every RLE run, re-derives the per-run bookkeeping, and
// touches memory K times. HierarchySet amortizes all of that: the outer loop
// decodes each run exactly once, and the inner loop drives the configs
// config-major — each config's tag words are walked for the whole run before
// the next config's, instead of interleaving configs per access — which
// keeps the hot tag/lastUse arrays of one cache in cache while they are
// being scanned.
//
// The second, larger lever is L1 sharing. An L1's state evolution under a
// line-access sequence depends only on its geometry (sets, ways, line size),
// never on what sits below it — Hierarchy.fill consumes the L1's outcome
// (miss + optional writeback) without reading L1 state. So hierarchies whose
// L1s have the same geometry and start in the same state evolve their L1s
// through byte-identical states forever. HierarchySet groups such members,
// walks one lead L1 per group, fans each miss's fill out to every member's
// own L2/memory, and copies the lead's final L1 state onto the other members
// when the walk returns (callers read L1 stats only between walks, at phase
// boundaries). A typical sweep family — one L1 geometry against many LLC
// geometries — then pays the L1 tag scan once for the whole family.
package cache

// HierarchySet replays compiled line streams into K hierarchies at once.
// All hierarchies must share one line size (compiled streams are
// per-line-size); build one set per line-size group. The set holds live
// references: between ReplayStreamBatch calls every member hierarchy is in
// exactly the state K independent ReplayStream walks would have left it in,
// so stats can be read (and phases snapshotted) as usual.
type HierarchySet struct {
	groups []l1Group
}

// l1Group is a set of hierarchies whose L1s share geometry and state.
// lead is members[0].L1: it is the only L1 walked during a batch replay;
// the other members' L1s are brought up to date by syncState afterwards.
type l1Group struct {
	lead    *Cache
	members []*Hierarchy
}

// NewHierarchySet groups hs for batched replay. It panics if the
// hierarchies do not share one line size or hs is empty, since config sets
// are assembled programmatically (mirroring cache.New's contract).
// Hierarchies whose L1s share geometry but not current state fall into
// separate groups — each group's walk is then exactly the serial walk, so
// grouping is always sound, just faster when states coincide (the common
// case: freshly built replay contexts start from all-zero state).
func NewHierarchySet(hs []*Hierarchy) *HierarchySet {
	if len(hs) == 0 {
		panic("cache: HierarchySet needs at least one hierarchy")
	}
	s := &HierarchySet{}
	for _, h := range hs {
		if h.lineSize != hs[0].lineSize {
			panic("cache: HierarchySet hierarchies must share one line size")
		}
		joined := false
		for gi := range s.groups {
			g := &s.groups[gi]
			if sameGeometry(g.lead, h.L1) && sameState(g.lead, h.L1) {
				g.members = append(g.members, h)
				joined = true
				break
			}
		}
		if !joined {
			s.groups = append(s.groups, l1Group{lead: h.L1, members: []*Hierarchy{h}})
		}
	}
	return s
}

// Groups returns how many distinct L1 groups the set holds (for tests and
// diagnostics: 1 means the whole set shares a single L1 walk).
func (s *HierarchySet) Groups() int { return len(s.groups) }

// ReplayStreamBatch drives one compiled line stream through every member
// hierarchy, leaving each in the byte-identical state of an independent
// Hierarchy.ReplayStream walk. Each RLE run is decoded once and applied
// config-major: the full run against group 0's caches, then group 1's, and
// so on — run decode and per-run bookkeeping are paid per run, not per
// (run, config).
func (s *HierarchySet) ReplayStreamBatch(ls *LineStream) {
	prog := ls.prog
	for i := 0; i+1 < len(prog); i += 2 {
		w0, addr := prog[i], prog[i+1]
		n := w0 >> 33
		delta := int64(int32(uint32(w0 >> 1)))
		write := w0&1 != 0
		for gi := range s.groups {
			g := &s.groups[gi]
			if delta == 0 {
				g.accessRepeat(addr, write, n)
			} else {
				g.accessRun(addr, write, n, delta)
			}
		}
	}
	s.syncState()
}

// syncState copies each group lead's L1 state onto the other members,
// restoring the invariant that every member hierarchy individually looks
// serially replayed. Runs once per stream, not per run.
func (s *HierarchySet) syncState() {
	for gi := range s.groups {
		g := &s.groups[gi]
		for _, h := range g.members[1:] {
			h.L1.copyStateFrom(g.lead)
		}
	}
}

// fill fans one L1 miss's consequences out to every member's own lower
// levels. Group members share L1 behaviour by construction, so the same
// (miss, writeback) outcome applies to each; L2 contents and memory traffic
// stay fully per-config.
func (g *l1Group) fill(line uint64, wb bool, wbAddr uint64) {
	for _, h := range g.members {
		h.fill(line, wb, wbAddr)
	}
}

// accessRepeat is Hierarchy.accessRepeat against the group: the lead L1
// absorbs the n accesses in O(1), and a first-access miss fills every
// member.
func (g *l1Group) accessRepeat(addr uint64, write bool, n uint64) {
	hit, wb, wbAddr := g.lead.AccessRepeat(addr, write, n)
	if !hit {
		g.fill(addr, wb, wbAddr)
	}
}

// accessRun mirrors Hierarchy.accessRun exactly — same hoisted stats and
// tick handling, same scan, same tick-wrap fallback — with the single
// difference that misses fill every group member instead of one hierarchy.
func (g *l1Group) accessRun(addr uint64, write bool, n uint64, delta int64) {
	l1 := g.lead
	if l1.tick+n < l1.tick {
		// The LRU clock would wrap inside the run (needs 2^64 prior
		// accesses): take the per-access path, which renormalizes.
		for ; n > 0; n-- {
			hit, wb, wbAddr := l1.Access(addr, write)
			if !hit {
				g.fill(addr, wb, wbAddr)
			}
			addr += uint64(delta)
		}
		return
	}
	l1.stats.Accesses += n
	if write {
		l1.stats.Writes += n
	} else {
		l1.stats.Reads += n
	}
	tick := l1.tick
	setMask := uint64(l1.sets - 1)
	ways := l1.ways
	for ; n > 0; n-- {
		tick++
		line := addr >> l1.lineBits
		want := line | tagValid
		base := int(line&setMask) * ways
		tags := l1.tags[base : base+ways]
		lastUse := l1.lastUse[base : base+ways]
		victim := 0
		hit := false
		for i, t := range tags {
			if t&^uint64(tagDirty) == want {
				lastUse[i] = tick
				if write {
					tags[i] |= tagDirty
				}
				l1.mru = base + i
				l1.stats.Hits++
				hit = true
				break
			}
			if t&tagValid == 0 {
				victim = i
			} else if tags[victim]&tagValid != 0 && lastUse[i] < lastUse[victim] {
				victim = i
			}
		}
		if !hit {
			l1.stats.Misses++
			var wb bool
			var wbAddr uint64
			if t := tags[victim]; t&(tagValid|tagDirty) == tagValid|tagDirty {
				wb = true
				wbAddr = (t & tagLine) << l1.lineBits
				l1.stats.Writebacks++
			}
			newTag := want
			if write {
				newTag |= tagDirty
			}
			tags[victim] = newTag
			lastUse[victim] = tick
			l1.mru = base + victim
			l1.tick = tick // fill never reads L1 state, but keep it coherent
			g.fill(addr, wb, wbAddr)
		}
		addr += uint64(delta)
	}
	l1.tick = tick
}
