// Package cache implements the set-associative cache models used by the
// workload characterization pipeline: a private L1 per core and a shared L2
// (the SoC's last-level cache), both write-back and write-allocate with LRU
// replacement, plus a Hierarchy that splits byte spans into line-sized events
// and forwards misses to a memory sink.
//
// The models are performance models, not functional ones: they track which
// lines are resident, not the data in them (kernels compute on real host
// memory separately).
package cache

import (
	"fmt"
	"sort"

	"gopim/internal/mem"
)

// Config describes a single cache.
type Config struct {
	Name     string // e.g. "L1D"
	Size     int    // total capacity in bytes
	Ways     int    // associativity
	LineSize int    // line size in bytes; 0 means mem.LineSize
}

// Key returns a string uniquely identifying the configuration, for use in
// memoization keys (the trace cache keys replay results by hardware).
func (c Config) Key() string {
	return fmt.Sprintf("%s/%d/%d/%d", c.Name, c.Size, c.Ways, c.LineSize)
}

// Stats aggregates the events observed by one cache.
type Stats struct {
	Accesses   uint64 // total line-granularity accesses
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
	Reads      uint64 // read accesses (subset of Accesses)
	Writes     uint64 // write accesses (subset of Accesses)
}

// MissRate returns Misses/Accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per kilo-instruction for the given instruction count.
func (s Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

// Tag-word flag bits. Line addresses occupy the low 62 bits of a tag word
// (a full 64-bit address shifted right by lineBits always fits), leaving
// the top two for state: a zero tag word is an empty way, and folding
// valid/dirty into the tag keeps the hit scan to a single array.
const (
	tagValid = 1 << 63
	tagDirty = 1 << 62
	tagLine  = tagDirty - 1
)

// Cache is a single set-associative write-back, write-allocate cache with
// LRU replacement. It is not safe for concurrent use; concurrent simulation
// gives each unit of work its own cache instance (see internal/par).
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets*ways entries; tagValid | tagDirty | line address
	lastUse  []uint64
	// tick is the LRU clock. It increments once per access; on the (in
	// practice unreachable) wrap to zero the lastUse values are compacted
	// order-preservingly so LRU decisions survive 2^64 accesses.
	tick uint64
	// mru is the line index of the most recent hit or fill. Consecutive
	// sub-line accesses to the same 64 B line — the common case in
	// byte-wise kernels like blitting and LZO — short-circuit here and
	// skip the set scan. Pure fast path: stats and LRU state advance
	// exactly as a scan hit would.
	mru   int
	stats Stats
}

// New builds a cache from cfg. It panics on a malformed configuration, since
// configurations are compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = mem.LineSize
	}
	if cfg.Size <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Size / cfg.LineSize
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: %s capacity %d not divisible into %d ways", cfg.Name, cfg.Size, cfg.Ways))
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s set count %d is not a power of two", cfg.Name, sets))
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache: %s line size %d is not a power of two", cfg.Name, cfg.LineSize))
	}
	var lineBits uint
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: lineBits,
		tags:     make([]uint64, n),
		lastUse:  make([]uint64, n),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.tick = 0
	c.mru = 0
	c.stats = Stats{}
}

// Access looks up the line containing addr, allocating it on a miss.
// It returns whether the access hit and, if a dirty line was evicted, its
// address (wbAddr) with writeback=true.
func (c *Cache) Access(addr uint64, write bool) (hit bool, writeback bool, wbAddr uint64) {
	line := addr >> c.lineBits
	c.bumpTick()
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	want := line | tagValid

	// MRU filter: a repeat of the last-touched line needs no set scan.
	// Tag words hold full line addresses, so a match implies a set match.
	if m := c.mru; c.tags[m]&^uint64(tagDirty) == want {
		c.lastUse[m] = c.tick
		if write {
			c.tags[m] |= tagDirty
		}
		c.stats.Hits++
		return true, false, 0
	}

	base := (int(line) & (c.sets - 1)) * c.ways
	tags := c.tags[base : base+c.ways]

	// Hit path: scan tags only, tracking the victim (the last empty way,
	// else least recently used) as the original combined loop did.
	lastUse := c.lastUse[base : base+c.ways]
	victim := 0
	for i, t := range tags {
		if t&^uint64(tagDirty) == want {
			lastUse[i] = c.tick
			if write {
				tags[i] |= tagDirty
			}
			c.mru = base + i
			c.stats.Hits++
			return true, false, 0
		}
		if t&tagValid == 0 {
			victim = i
		} else if tags[victim]&tagValid != 0 && lastUse[i] < lastUse[victim] {
			victim = i
		}
	}

	// Miss: allocate, possibly writing back the LRU victim.
	c.stats.Misses++
	if t := tags[victim]; t&(tagValid|tagDirty) == tagValid|tagDirty {
		writeback = true
		wbAddr = (t & tagLine) << c.lineBits
		c.stats.Writebacks++
	}
	newTag := want
	if write {
		newTag |= tagDirty
	}
	tags[victim] = newTag
	lastUse[victim] = c.tick
	c.mru = base + victim
	return false, writeback, wbAddr
}

// AccessRepeat applies n consecutive accesses to the line containing addr
// in O(1), returning what the first of them returned. It is equivalent to
// calling Access n times: after the first access the line is resident and
// most-recently used with nothing intervening, so accesses 2..n are MRU
// hits — each advances the LRU clock, refreshes the line's recency (only
// the final tick survives), and counts one hit; the dirty bit was already
// settled by the first access. Bulk same-line repeats are the dominant
// pattern of byte-wise kernels (LZO matching, bool-coder output), which is
// what makes compiled trace replay fast.
func (c *Cache) AccessRepeat(addr uint64, write bool, n uint64) (hit bool, writeback bool, wbAddr uint64) {
	hit, writeback, wbAddr = c.Access(addr, write)
	if n <= 1 {
		return hit, writeback, wbAddr
	}
	rest := n - 1
	if c.tick+rest < c.tick {
		// The LRU clock would wrap mid-bulk (needs 2^64 prior accesses):
		// take the literal loop, whose bumpTick renormalizes at the wrap.
		for ; rest > 0; rest-- {
			c.Access(addr, write)
		}
		return hit, writeback, wbAddr
	}
	c.tick += rest
	c.stats.Accesses += rest
	c.stats.Hits += rest
	if write {
		c.stats.Writes += rest
	} else {
		c.stats.Reads += rest
	}
	c.lastUse[c.mru] = c.tick
	return hit, writeback, wbAddr
}

// bumpTick advances the LRU clock, renormalizing recency state if the
// uint64 wraps. Long parallel sweeps push far more accesses through one
// cache instance than before, so the wrap is guarded rather than assumed
// away: without it, a post-wrap tick of 0 would make freshly-used lines
// look least-recently used and silently corrupt victim selection.
func (c *Cache) bumpTick() {
	c.tick++
	if c.tick != 0 {
		return
	}
	c.renormalizeLRU()
}

// renormalizeLRU compacts lastUse values to 1..n preserving their relative
// order, and restarts the clock above them. Costs O(lines log lines) once
// per 2^64 accesses.
func (c *Cache) renormalizeLRU() {
	order := make([]int, 0, len(c.lastUse))
	for i := range c.lastUse {
		if c.tags[i]&tagValid != 0 {
			order = append(order, i)
		} else {
			c.lastUse[i] = 0
		}
	}
	sort.Slice(order, func(a, b int) bool { return c.lastUse[order[a]] < c.lastUse[order[b]] })
	for rank, i := range order {
		c.lastUse[i] = uint64(rank) + 1
	}
	c.tick = uint64(len(order)) + 1
}

// sameGeometry reports whether two caches index and tag lines identically,
// i.e. whether the same access sequence drives both through the same state
// transitions. Capacity split (sets, ways) and line size are what matter;
// the config name and the byte capacity it implies are irrelevant.
func sameGeometry(a, b *Cache) bool {
	return a.sets == b.sets && a.ways == b.ways && a.lineBits == b.lineBits
}

// sameState reports whether two caches of the same geometry are in
// byte-identical simulation state: tags, recency, clock, MRU index and
// counters. Two same-geometry caches in the same state stay in the same
// state under any shared access sequence — the invariant HierarchySet's
// lead-cache sharing rests on.
func sameState(a, b *Cache) bool {
	if a.tick != b.tick || a.mru != b.mru || a.stats != b.stats {
		return false
	}
	for i, t := range a.tags {
		if t != b.tags[i] {
			return false
		}
	}
	for i, u := range a.lastUse {
		if u != b.lastUse[i] {
			return false
		}
	}
	return true
}

// copyStateFrom makes c's simulation state byte-identical to src's. Both
// caches must share a geometry (the caller guarantees it); the config is
// left untouched.
func (c *Cache) copyStateFrom(src *Cache) {
	copy(c.tags, src.tags)
	copy(c.lastUse, src.lastUse)
	c.tick = src.tick
	c.mru = src.mru
	c.stats = src.stats
}

// Contains reports whether the line holding addr is resident. It does not
// disturb LRU state or counters; it exists for tests.
func (c *Cache) Contains(addr uint64) bool {
	want := addr>>c.lineBits | tagValid
	base := (int(addr>>c.lineBits) & (c.sets - 1)) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i]&^uint64(tagDirty) == want {
			return true
		}
	}
	return false
}

// ResidentLines returns how many lines are currently valid (for tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, t := range c.tags {
		if t&tagValid != 0 {
			n++
		}
	}
	return n
}
