// Package cache implements the set-associative cache models used by the
// workload characterization pipeline: a private L1 per core and a shared L2
// (the SoC's last-level cache), both write-back and write-allocate with LRU
// replacement, plus a Hierarchy that splits byte spans into line-sized events
// and forwards misses to a memory sink.
//
// The models are performance models, not functional ones: they track which
// lines are resident, not the data in them (kernels compute on real host
// memory separately).
package cache

import (
	"fmt"
	"sort"

	"gopim/internal/mem"
)

// Config describes a single cache.
type Config struct {
	Name     string // e.g. "L1D"
	Size     int    // total capacity in bytes
	Ways     int    // associativity
	LineSize int    // line size in bytes; 0 means mem.LineSize
}

// Key returns a string uniquely identifying the configuration, for use in
// memoization keys (the trace cache keys replay results by hardware).
func (c Config) Key() string {
	return fmt.Sprintf("%s/%d/%d/%d", c.Name, c.Size, c.Ways, c.LineSize)
}

// Stats aggregates the events observed by one cache.
type Stats struct {
	Accesses   uint64 // total line-granularity accesses
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions
	Reads      uint64 // read accesses (subset of Accesses)
	Writes     uint64 // write accesses (subset of Accesses)
}

// MissRate returns Misses/Accesses, or 0 when idle.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per kilo-instruction for the given instruction count.
func (s Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) / float64(instructions) * 1000
}

// Cache is a single set-associative write-back, write-allocate cache with
// LRU replacement. It is not safe for concurrent use; concurrent simulation
// gives each unit of work its own cache instance (see internal/par).
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets*ways entries; line address (already shifted)
	valid    []bool
	dirty    []bool
	lastUse  []uint64
	// tick is the LRU clock. It increments once per access; on the (in
	// practice unreachable) wrap to zero the lastUse values are compacted
	// order-preservingly so LRU decisions survive 2^64 accesses.
	tick uint64
	// mru is the line index of the most recent hit or fill. Consecutive
	// sub-line accesses to the same 64 B line — the common case in
	// byte-wise kernels like blitting and LZO — short-circuit here and
	// skip the set scan. Pure fast path: stats and LRU state advance
	// exactly as a scan hit would.
	mru   int
	stats Stats
}

// New builds a cache from cfg. It panics on a malformed configuration, since
// configurations are compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.LineSize == 0 {
		cfg.LineSize = mem.LineSize
	}
	if cfg.Size <= 0 || cfg.Ways <= 0 || cfg.LineSize <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Size / cfg.LineSize
	if lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: %s capacity %d not divisible into %d ways", cfg.Name, cfg.Size, cfg.Ways))
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s set count %d is not a power of two", cfg.Name, sets))
	}
	var lineBits uint
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	n := sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: lineBits,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		lastUse:  make([]uint64, n),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	c.tick = 0
	c.mru = 0
	c.stats = Stats{}
}

// Access looks up the line containing addr, allocating it on a miss.
// It returns whether the access hit and, if a dirty line was evicted, its
// address (wbAddr) with writeback=true.
func (c *Cache) Access(addr uint64, write bool) (hit bool, writeback bool, wbAddr uint64) {
	line := addr >> c.lineBits
	c.bumpTick()
	c.stats.Accesses++
	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}

	// MRU filter: a repeat of the last-touched line needs no set scan.
	// tags hold full line addresses, so a tag match implies a set match.
	if m := c.mru; c.valid[m] && c.tags[m] == line {
		c.lastUse[m] = c.tick
		if write {
			c.dirty[m] = true
		}
		c.stats.Hits++
		return true, false, 0
	}

	set := int(line) & (c.sets - 1)
	base := set * c.ways

	// Hit path.
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.lastUse[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.mru = i
			c.stats.Hits++
			return true, false, 0
		}
		if !c.valid[i] {
			victim = i
		} else if c.valid[victim] && c.lastUse[i] < c.lastUse[victim] {
			victim = i
		}
	}

	// Miss: allocate, possibly writing back the LRU victim.
	c.stats.Misses++
	if c.valid[victim] && c.dirty[victim] {
		writeback = true
		wbAddr = c.tags[victim] << c.lineBits
		c.stats.Writebacks++
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write
	c.lastUse[victim] = c.tick
	c.mru = victim
	return false, writeback, wbAddr
}

// bumpTick advances the LRU clock, renormalizing recency state if the
// uint64 wraps. Long parallel sweeps push far more accesses through one
// cache instance than before, so the wrap is guarded rather than assumed
// away: without it, a post-wrap tick of 0 would make freshly-used lines
// look least-recently used and silently corrupt victim selection.
func (c *Cache) bumpTick() {
	c.tick++
	if c.tick != 0 {
		return
	}
	c.renormalizeLRU()
}

// renormalizeLRU compacts lastUse values to 1..n preserving their relative
// order, and restarts the clock above them. Costs O(lines log lines) once
// per 2^64 accesses.
func (c *Cache) renormalizeLRU() {
	order := make([]int, 0, len(c.lastUse))
	for i := range c.lastUse {
		if c.valid[i] {
			order = append(order, i)
		} else {
			c.lastUse[i] = 0
		}
	}
	sort.Slice(order, func(a, b int) bool { return c.lastUse[order[a]] < c.lastUse[order[b]] })
	for rank, i := range order {
		c.lastUse[i] = uint64(rank) + 1
	}
	c.tick = uint64(len(order)) + 1
}

// Contains reports whether the line holding addr is resident. It does not
// disturb LRU state or counters; it exists for tests.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// ResidentLines returns how many lines are currently valid (for tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
