package cache

import (
	"math/rand"
	"testing"

	"gopim/internal/dram"
)

// batchConfigSets enumerates the config-set shapes batched replay must
// cover: a single config, a same-L1 family against different L2s (one
// shared group), mixed L1 geometries (several groups, some singleton), and
// members with and without an L2.
func batchConfigSets() [][]struct {
	l1 Config
	l2 *Config
} {
	type hc = struct {
		l1 Config
		l2 *Config
	}
	l2 := func(size, ways int) *Config {
		return &Config{Name: "LLC", Size: size, Ways: ways}
	}
	return [][]hc{
		// Singleton set: the batch walk degenerates to a serial walk.
		{{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(256<<10, 8)}},
		// One L1 family fanned over four different L2s — a single group.
		{
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(128<<10, 8)},
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(256<<10, 8)},
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(512<<10, 8)},
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(256<<10, 16)},
		},
		// Mixed L1 geometries incl. a no-L2 member (PIM-style) and a
		// duplicate geometry under a different name (still one group).
		{
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(256<<10, 8)},
			{l1: Config{Name: "PIM-L1", Size: 32 << 10, Ways: 4}, l2: nil},
			{l1: Config{Name: "PIM-Buf", Size: 32 << 10, Ways: 8}, l2: nil},
			{l1: Config{Name: "other-name", Size: 64 << 10, Ways: 4}, l2: nil},
			{l1: Config{Name: "L1D", Size: 64 << 10, Ways: 4}, l2: l2(512<<10, 8)},
		},
	}
}

// TestReplayStreamBatchMatchesSerial is the tentpole equivalence gate at
// the cache layer: for random access sequences split across several
// streams (phase boundaries), ReplayStreamBatch must leave every member
// hierarchy — L1, L2, and row meter — in the byte-identical state of an
// independent ReplayStream walk per config.
func TestReplayStreamBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for si, set := range batchConfigSets() {
		for trial := 0; trial < 12; trial++ {
			// Several streams per trial: state (incl. the lead-L1 sync)
			// must carry correctly across ReplayStreamBatch calls.
			streams := make([]LineStream, 1+rng.Intn(4))
			for i := range streams {
				var b StreamBuilder
				for _, a := range randomLineSequence(rng, 500+rng.Intn(1500)) {
					b.Access(a.addr, a.write)
				}
				streams[i] = b.Finish()
			}

			newH := func(i int) *Hierarchy {
				var l2 *Cache
				if set[i].l2 != nil {
					l2 = New(*set[i].l2)
				}
				return NewHierarchy(New(set[i].l1), l2, dram.NewRowMeter())
			}

			batched := make([]*Hierarchy, len(set))
			serial := make([]*Hierarchy, len(set))
			for i := range set {
				batched[i], serial[i] = newH(i), newH(i)
			}
			hs := NewHierarchySet(batched)
			for i := range streams {
				hs.ReplayStreamBatch(&streams[i])
				for _, h := range serial {
					h.ReplayStream(&streams[i])
				}
				// Every member must be fully synced after every call, not
				// just at the end: phase snapshots read stats between
				// streams.
				for k := range set {
					if !equalCacheState(batched[k].L1, serial[k].L1) {
						t.Fatalf("set %d trial %d stream %d config %d: L1 state diverged", si, trial, i, k)
					}
					if serial[k].L2 != nil && !equalCacheState(batched[k].L2, serial[k].L2) {
						t.Fatalf("set %d trial %d stream %d config %d: L2 state diverged", si, trial, i, k)
					}
					mb := batched[k].Mem.(*dram.RowMeter)
					ms := serial[k].Mem.(*dram.RowMeter)
					if mb.Traffic() != ms.Traffic() || mb.RowStats() != ms.RowStats() {
						t.Fatalf("set %d trial %d stream %d config %d: memory traffic diverged:\nbatch  %+v %+v\nserial %+v %+v",
							si, trial, i, k, mb.Traffic(), mb.RowStats(), ms.Traffic(), ms.RowStats())
					}
				}
			}
		}
	}
}

// TestReplayStreamBatchRandomGeometry fuzzes geometries themselves: random
// L1/L2 shapes, grouped however NewHierarchySet decides, must still match
// the serial walk exactly.
func TestReplayStreamBatchRandomGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sizes := []int{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	ways := []int{2, 4, 8}
	for trial := 0; trial < 15; trial++ {
		k := 2 + rng.Intn(6)
		l1s := make([]Config, k)
		l2s := make([]*Config, k)
		for i := 0; i < k; i++ {
			l1s[i] = Config{Name: "L1", Size: sizes[rng.Intn(len(sizes))], Ways: ways[rng.Intn(len(ways))]}
			if rng.Intn(2) == 0 {
				l2s[i] = &Config{Name: "LLC", Size: sizes[rng.Intn(len(sizes))] * 8, Ways: 8}
			}
		}
		var b StreamBuilder
		for _, a := range randomLineSequence(rng, 3000) {
			b.Access(a.addr, a.write)
		}
		s := b.Finish()

		newH := func(i int) *Hierarchy {
			var l2 *Cache
			if l2s[i] != nil {
				l2 = New(*l2s[i])
			}
			return NewHierarchy(New(l1s[i]), l2, dram.NewRowMeter())
		}
		batched := make([]*Hierarchy, k)
		for i := range batched {
			batched[i] = newH(i)
		}
		NewHierarchySet(batched).ReplayStreamBatch(&s)
		for i := 0; i < k; i++ {
			ref := newH(i)
			ref.ReplayStream(&s)
			if !equalCacheState(batched[i].L1, ref.L1) {
				t.Fatalf("trial %d config %d (%+v): L1 state diverged", trial, i, l1s[i])
			}
			if ref.L2 != nil && !equalCacheState(batched[i].L2, ref.L2) {
				t.Fatalf("trial %d config %d: L2 state diverged", trial, i)
			}
			mb := batched[i].Mem.(*dram.RowMeter)
			mr := ref.Mem.(*dram.RowMeter)
			if mb.Traffic() != mr.Traffic() || mb.RowStats() != mr.RowStats() {
				t.Fatalf("trial %d config %d: memory traffic diverged", trial, i)
			}
		}
	}
}

// TestHierarchySetGrouping pins the grouping rules: same geometry + same
// state share a group regardless of config name or what sits below the L1;
// different geometry — or same geometry in different state — do not.
func TestHierarchySetGrouping(t *testing.T) {
	mk := func(cfg Config, l2 *Config) *Hierarchy {
		var l2c *Cache
		if l2 != nil {
			l2c = New(*l2)
		}
		return NewHierarchy(New(cfg), l2c, dram.NewRowMeter())
	}
	a := mk(Config{Name: "L1D", Size: 64 << 10, Ways: 4}, &Config{Name: "LLC", Size: 256 << 10, Ways: 8})
	b := mk(Config{Name: "other", Size: 64 << 10, Ways: 4}, nil)
	c := mk(Config{Name: "PIM-L1", Size: 32 << 10, Ways: 4}, nil)
	if got := NewHierarchySet([]*Hierarchy{a, b, c}).Groups(); got != 2 {
		t.Fatalf("fresh {64K/4, 64K/4, 32K/4}: groups = %d, want 2", got)
	}

	// Warm one of the same-geometry pair: states differ, groups split.
	d := mk(Config{Name: "L1D", Size: 64 << 10, Ways: 4}, nil)
	d.access(0x1000, false)
	e := mk(Config{Name: "L1D", Size: 64 << 10, Ways: 4}, nil)
	if got := NewHierarchySet([]*Hierarchy{d, e}).Groups(); got != 2 {
		t.Fatalf("warm+fresh same geometry: groups = %d, want 2", got)
	}

	// Identically warmed states re-merge.
	f := mk(Config{Name: "L1D", Size: 64 << 10, Ways: 4}, nil)
	f.access(0x1000, false)
	if got := NewHierarchySet([]*Hierarchy{d, f}).Groups(); got != 1 {
		t.Fatalf("identically warmed: groups = %d, want 1", got)
	}
}

// TestHierarchySetPanics pins the constructor contract.
func TestHierarchySetPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty", func() { NewHierarchySet(nil) })
	expectPanic("mixed line sizes", func() {
		a := NewHierarchy(New(Config{Name: "a", Size: 64 << 10, Ways: 4}), nil, dram.NewRowMeter())
		b := NewHierarchy(New(Config{Name: "b", Size: 64 << 10, Ways: 4, LineSize: 128}), nil, dram.NewRowMeter())
		NewHierarchySet([]*Hierarchy{a, b})
	})
}

// TestSpanHonorsLineSize pins the line-size alignment fix: a 128 B-line
// hierarchy must split a span into 128 B-aligned line accesses (previously
// the walk aligned to the global 64 B line size and could loop forever).
func TestSpanHonorsLineSize(t *testing.T) {
	cfg := Config{Name: "L1", Size: 64 << 10, Ways: 4, LineSize: 128}
	h := NewHierarchy(New(cfg), nil, dram.NewRowMeter())
	h.Load(192, 200) // bytes 192..391 -> lines 128, 256, 384 at 128 B granularity
	st := h.L1.Stats()
	if st.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", st.Accesses)
	}
	if !h.L1.Contains(128) || !h.L1.Contains(256) || !h.L1.Contains(384) {
		t.Fatalf("expected lines 128, 256 and 384 resident")
	}
}
