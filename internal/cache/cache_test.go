package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gopim/internal/mem"
)

func small() *Cache {
	// 8 sets x 2 ways x 64B lines = 1 KiB.
	return New(Config{Name: "T", Size: 1024, Ways: 2})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	hit, wb, _ := c.Access(0x1000, false)
	if hit || wb {
		t.Fatalf("first access: hit=%v wb=%v, want cold miss", hit, wb)
	}
	hit, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access to same line missed")
	}
	hit, _, _ = c.Access(0x1004, true)
	if !hit {
		t.Fatal("access within same line missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 accesses / 2 hits / 1 miss", s)
	}
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", s.Reads, s.Writes)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Three lines mapping to the same set (stride = sets*lineSize = 512B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU, b is LRU
	c.Access(d, false) // must evict b
	if !c.Contains(a) {
		t.Error("a evicted; LRU should have evicted b")
	}
	if c.Contains(b) {
		t.Error("b still resident; it was LRU")
	}
	if !c.Contains(d) {
		t.Error("d not resident after allocation")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	c.Access(0, true) // dirty
	c.Access(512, false)
	_, wb, wbAddr := c.Access(1024, false) // evicts line 0 (LRU, dirty)
	if !wb {
		t.Fatal("expected writeback of dirty LRU line")
	}
	if wbAddr != 0 {
		t.Errorf("writeback address = %#x, want 0", wbAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(512, false)
	_, wb, _ := c.Access(1024, false)
	if wb {
		t.Error("clean eviction produced a writeback")
	}
}

func TestResetClears(t *testing.T) {
	c := small()
	c.Access(0, true)
	c.Reset()
	if c.ResidentLines() != 0 {
		t.Error("lines resident after Reset")
	}
	if c.Stats() != (Stats{}) {
		t.Errorf("stats not zeroed: %+v", c.Stats())
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("hit after Reset")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := New(Config{Name: "T", Size: 4096, Ways: 4})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Access(uint64(rng.Intn(1<<20))&^63, rng.Intn(2) == 0)
		if got := c.ResidentLines(); got > 4096/64 {
			t.Fatalf("resident lines %d exceeds capacity %d", got, 4096/64)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 100, Misses: 25}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
	if got := s.MPKI(1000); got != 25 {
		t.Errorf("MPKI = %v, want 25", got)
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.MPKI(0) != 0 {
		t.Error("zero stats should yield zero rates")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []Config{
		{Name: "zero", Size: 0, Ways: 1},
		{Name: "ways", Size: 1024, Ways: 0},
		{Name: "nonpow2", Size: 3 * 64, Ways: 1}, // 3 sets
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: hits+misses == accesses and writebacks <= misses, under random
// access streams.
func TestStatInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		c := New(Config{Name: "Q", Size: 2048, Ways: 2})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			c.Access(uint64(rng.Intn(1<<16)), rng.Intn(2) == 0)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses &&
			s.Reads+s.Writes == s.Accesses &&
			s.Writebacks <= s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ---- Hierarchy tests ----

type sink struct {
	reads, writes []uint64
}

func (s *sink) ReadLine(a uint64)  { s.reads = append(s.reads, a) }
func (s *sink) WriteLine(a uint64) { s.writes = append(s.writes, a) }

func TestHierarchySpanSplitting(t *testing.T) {
	s := &sink{}
	h := NewHierarchy(New(Config{Name: "L1", Size: 1024, Ways: 2}), nil, s)
	h.Load(10, 120) // bytes 10..129 touch lines 0, 64 and 128
	if len(s.reads) != 3 {
		t.Fatalf("got %d memory reads, want 3", len(s.reads))
	}
	if s.reads[0] != 0 || s.reads[1] != 64 || s.reads[2] != 128 {
		t.Errorf("read line addresses = %v, want [0 64 128]", s.reads)
	}
}

func TestHierarchyL2Filters(t *testing.T) {
	s := &sink{}
	l1 := New(Config{Name: "L1", Size: 1024, Ways: 2})
	l2 := New(Config{Name: "L2", Size: 64 << 10, Ways: 8})
	h := NewHierarchy(l1, l2, s)

	// Touch 2KiB: misses L1 (1KiB) partially but fits in L2.
	for off := 0; off < 2048; off += 64 {
		h.Load(uint64(off), 64)
	}
	memReads := len(s.reads)
	// Re-touch: everything hits in L2 even where L1 misses.
	for off := 0; off < 2048; off += 64 {
		h.Load(uint64(off), 64)
	}
	if len(s.reads) != memReads {
		t.Errorf("second pass reached memory (%d new reads); L2 should absorb it", len(s.reads)-memReads)
	}
}

func TestHierarchyDirtyEvictionReachesMemory(t *testing.T) {
	s := &sink{}
	l1 := New(Config{Name: "L1", Size: 1024, Ways: 2})
	h := NewHierarchy(l1, nil, s)
	// Write 4 KiB streaming: with a 1 KiB L1, dirty lines must be written back.
	for off := 0; off < 4096; off += 64 {
		h.Store(uint64(off), 64)
	}
	if len(s.writes) == 0 {
		t.Fatal("no writebacks reached memory despite streaming stores beyond L1 capacity")
	}
}

func TestHierarchyZeroLengthIgnored(t *testing.T) {
	s := &sink{}
	h := NewHierarchy(New(Config{Name: "L1", Size: 1024, Ways: 2}), nil, s)
	h.Load(0, 0)
	h.Store(0, -1)
	if h.L1.Stats().Accesses != 0 {
		t.Error("zero/negative length spans produced accesses")
	}
}

func TestHierarchyNeedsL1AndSink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHierarchy(nil, nil, nil) did not panic")
		}
	}()
	NewHierarchy(nil, nil, nil)
}

// Streaming through a working set larger than L1+L2 must produce memory
// traffic close to the touched footprint.
func TestHierarchyStreamingTraffic(t *testing.T) {
	s := &sink{}
	l1 := New(Config{Name: "L1", Size: 64 << 10, Ways: 4})
	l2 := New(Config{Name: "L2", Size: 2 << 20, Ways: 8})
	h := NewHierarchy(l1, l2, s)
	const footprint = 8 << 20
	for off := 0; off < footprint; off += mem.LineSize {
		h.Load(uint64(off), mem.LineSize)
	}
	gotBytes := len(s.reads) * mem.LineSize
	if gotBytes != footprint {
		t.Errorf("memory read traffic = %d bytes, want %d (pure streaming)", gotBytes, footprint)
	}
}
