package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"gopim/internal/dram"
)

// testConfigs returns the cache geometries the simulator actually uses.
func testConfigs() []Config {
	return []Config{
		{Name: "L1D", Size: 64 << 10, Ways: 4},
		{Name: "PIM-L1", Size: 32 << 10, Ways: 4},
		{Name: "PIM-Buf", Size: 32 << 10, Ways: 8},
	}
}

// equalCacheState compares the complete internal state of two caches —
// tags (valid/dirty included), recency, clock, and counters.
func equalCacheState(a, b *Cache) bool {
	return reflect.DeepEqual(a.tags, b.tags) &&
		reflect.DeepEqual(a.lastUse, b.lastUse) &&
		a.tick == b.tick && a.mru == b.mru && a.stats == b.stats
}

// TestAccessRepeatMatchesLoop drives a random warm-up into two identical
// caches, then applies AccessRepeat to one and the equivalent Access loop
// to the other: every piece of internal state must match afterwards.
func TestAccessRepeatMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range testConfigs() {
		bulk, loop := New(cfg), New(cfg)
		for trial := 0; trial < 200; trial++ {
			for i := 0; i < 50; i++ {
				addr := uint64(rng.Intn(1 << 20))
				write := rng.Intn(2) == 0
				bulk.Access(addr, write)
				loop.Access(addr, write)
			}
			addr := uint64(rng.Intn(1 << 20))
			write := rng.Intn(2) == 0
			n := uint64(1 + rng.Intn(1000))
			h1, wb1, a1 := bulk.AccessRepeat(addr, write, n)
			var h2, wb2 bool
			var a2 uint64
			for i := uint64(0); i < n; i++ {
				h, wb, a := loop.Access(addr, write)
				if i == 0 {
					h2, wb2, a2 = h, wb, a
				}
			}
			if h1 != h2 || wb1 != wb2 || a1 != a2 {
				t.Fatalf("%s trial %d: AccessRepeat returned (%v,%v,%#x), loop (%v,%v,%#x)",
					cfg.Name, trial, h1, wb1, a1, h2, wb2, a2)
			}
			if !equalCacheState(bulk, loop) {
				t.Fatalf("%s trial %d: state diverged after AccessRepeat(%#x, %v, %d)",
					cfg.Name, trial, addr, write, n)
			}
		}
	}
}

// replayReference drives the same line-access sequence through a hierarchy
// one access at a time — the path ReplayStream must be indistinguishable
// from.
func replayReference(h *Hierarchy, accs []lineAccess) {
	for _, a := range accs {
		h.access(a.addr, a.write)
	}
}

type lineAccess struct {
	addr  uint64
	write bool
}

// randomLineSequence generates line-aligned accesses biased toward the
// patterns the builder compresses: same-line repeats, ascending and
// descending constant-stride walks, and random jumps, with read/write
// flips throughout.
func randomLineSequence(rng *rand.Rand, n int) []lineAccess {
	var accs []lineAccess
	addr := uint64(rng.Intn(1<<14)) &^ 63
	for len(accs) < n {
		write := rng.Intn(2) == 0
		switch rng.Intn(4) {
		case 0: // repeat run
			reps := 1 + rng.Intn(40)
			for i := 0; i < reps; i++ {
				accs = append(accs, lineAccess{addr, write})
			}
		case 1: // ascending walk
			steps := 1 + rng.Intn(40)
			for i := 0; i < steps; i++ {
				accs = append(accs, lineAccess{addr, write})
				addr += 64
			}
		case 2: // descending walk
			steps := 1 + rng.Intn(40)
			for i := 0; i < steps && addr >= 64*uint64(steps); i++ {
				accs = append(accs, lineAccess{addr, write})
				addr -= 64
			}
		default: // jump
			addr = uint64(rng.Intn(1<<22)) &^ 63
			accs = append(accs, lineAccess{addr, write})
		}
	}
	return accs
}

// TestReplayStreamMatchesPerAccessPath builds a LineStream from random
// access sequences and requires ReplayStream to leave the L1, L2, and row
// meter in exactly the state the per-access path produces.
func TestReplayStreamMatchesPerAccessPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l2cfg := Config{Name: "LLC", Size: 256 << 10, Ways: 8}
	for _, cfg := range testConfigs() {
		for _, withL2 := range []bool{false, true} {
			for trial := 0; trial < 20; trial++ {
				accs := randomLineSequence(rng, 2000)

				var b StreamBuilder
				for _, a := range accs {
					b.Access(a.addr, a.write)
				}
				s := b.Finish()
				if got := s.Len(); got != uint64(len(accs)) {
					t.Fatalf("%s: stream Len = %d, want %d", cfg.Name, got, len(accs))
				}

				newH := func() *Hierarchy {
					var l2 *Cache
					if withL2 {
						l2 = New(l2cfg)
					}
					return NewHierarchy(New(cfg), l2, dram.NewRowMeter())
				}
				hs, hr := newH(), newH()
				hs.ReplayStream(&s)
				replayReference(hr, accs)

				if !equalCacheState(hs.L1, hr.L1) {
					t.Fatalf("%s (L2=%v) trial %d: L1 state diverged", cfg.Name, withL2, trial)
				}
				if withL2 && !equalCacheState(hs.L2, hr.L2) {
					t.Fatalf("%s (L2=%v) trial %d: L2 state diverged", cfg.Name, withL2, trial)
				}
				ms := hs.Mem.(*dram.RowMeter)
				mr := hr.Mem.(*dram.RowMeter)
				if ms.Traffic() != mr.Traffic() || ms.RowStats() != mr.RowStats() {
					t.Fatalf("%s (L2=%v) trial %d: memory traffic diverged:\nstream %+v %+v\nloop   %+v %+v",
						cfg.Name, withL2, trial, ms.Traffic(), ms.RowStats(), mr.Traffic(), mr.RowStats())
				}
			}
		}
	}
}

// TestStreamBuilderEncoding checks the RLE forms directly: repeats collapse
// to one delta-0 run, constant strides to one stride run, and write-flag
// flips or stride breaks start new runs.
func TestStreamBuilderEncoding(t *testing.T) {
	var b StreamBuilder
	for i := 0; i < 10; i++ {
		b.Access(0x1000, false)
	}
	s := b.Finish()
	if s.Runs() != 1 || s.Len() != 10 {
		t.Errorf("repeat: runs=%d len=%d, want 1/10", s.Runs(), s.Len())
	}

	b = StreamBuilder{}
	for i := uint64(0); i < 16; i++ {
		b.Access(0x2000+64*i, true)
	}
	s = b.Finish()
	if s.Runs() != 1 || s.Len() != 16 {
		t.Errorf("stride: runs=%d len=%d, want 1/16", s.Runs(), s.Len())
	}

	b = StreamBuilder{}
	b.Access(0x3000, false)
	b.Access(0x3000, true) // write flip breaks the run
	b.Access(0x3040, true)
	b.Access(0x3100, true) // stride break (64 then 192)
	s = b.Finish()
	if s.Runs() != 3 || s.Len() != 4 {
		t.Errorf("breaks: runs=%d len=%d, want 3/4", s.Runs(), s.Len())
	}

	// Descending walks encode as negative deltas.
	b = StreamBuilder{}
	for i := 0; i < 8; i++ {
		b.Access(0x4000-64*uint64(i), false)
	}
	s = b.Finish()
	if s.Runs() != 1 || s.Len() != 8 {
		t.Errorf("descending: runs=%d len=%d, want 1/8", s.Runs(), s.Len())
	}
}

// TestStreamBuilderRunLengthCap seeds a pending run at the encoding's count
// limit and verifies the next access starts a fresh run instead of
// overflowing the 31-bit count field.
func TestStreamBuilderRunLengthCap(t *testing.T) {
	var b StreamBuilder
	b.Access(0x1000, false)
	b.Access(0x1000, false)
	b.n = maxRunLen // simulate a run at the cap (2^31-1 accesses)
	b.Access(0x1000, false)
	s := b.Finish()
	if s.Runs() != 2 {
		t.Fatalf("runs = %d, want 2 (capped run + fresh run)", s.Runs())
	}
	if got := s.Len(); got != maxRunLen+1 {
		t.Fatalf("len = %d, want %d", got, uint64(maxRunLen)+1)
	}
}
