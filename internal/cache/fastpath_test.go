package cache

import (
	"math/rand"
	"testing"

	"gopim/internal/dram"
)

// refCache is an independent set-associative LRU model used to check that
// the MRU fast path and the tick-wrap renormalization never change
// observable behaviour. It keeps each set as a recency-ordered list, so it
// has no MRU shortcut and no finite clock to wrap.
type refCache struct {
	sets     int
	ways     int
	lineBits uint
	lists    [][]refLine // per set, most-recent first
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRefCache(cfg Config) *refCache {
	c := New(cfg) // reuse geometry validation
	return &refCache{
		sets:     c.sets,
		ways:     c.ways,
		lineBits: c.lineBits,
		lists:    make([][]refLine, c.sets),
	}
}

func (r *refCache) access(addr uint64, write bool) (hit, writeback bool, wbAddr uint64) {
	line := addr >> r.lineBits
	set := int(line) & (r.sets - 1)
	list := r.lists[set]
	for i, l := range list {
		if l.tag == line {
			l.dirty = l.dirty || write
			r.lists[set] = append([]refLine{l}, append(append([]refLine{}, list[:i]...), list[i+1:]...)...)
			return true, false, 0
		}
	}
	if len(list) == r.ways {
		victim := list[len(list)-1]
		list = list[:len(list)-1]
		if victim.dirty {
			writeback = true
			wbAddr = victim.tag << r.lineBits
		}
	}
	r.lists[set] = append([]refLine{{tag: line, dirty: write}}, list...)
	return false, writeback, wbAddr
}

// randomStream drives cache and reference with the same accesses and fails
// on the first divergence in (hit, writeback, wbAddr) or final stats.
func randomStream(t *testing.T, c *Cache, seed int64, accesses int) {
	t.Helper()
	ref := newRefCache(c.Config())
	rng := rand.New(rand.NewSource(seed))
	var hits, misses, wbs uint64
	for i := 0; i < accesses; i++ {
		var addr uint64
		switch rng.Intn(4) {
		case 0:
			// Repeat-heavy: sub-line neighbours of the previous access
			// exercise the MRU filter.
			addr = uint64(rng.Intn(256))
		case 1:
			addr = uint64(rng.Intn(4)) * 512 // same-set conflicts
		default:
			addr = uint64(rng.Intn(1 << 14))
		}
		write := rng.Intn(3) == 0
		hit, wb, wbAddr := c.Access(addr, write)
		rHit, rWb, rWbAddr := ref.access(addr, write)
		if hit != rHit || wb != rWb || wbAddr != rWbAddr {
			t.Fatalf("access %d (addr %#x write %v): got (%v %v %#x), reference (%v %v %#x)",
				i, addr, write, hit, wb, wbAddr, rHit, rWb, rWbAddr)
		}
		if hit {
			hits++
		} else {
			misses++
		}
		if wb {
			wbs++
		}
	}
	s := c.Stats()
	if s.Hits != hits || s.Misses != misses || s.Writebacks != wbs {
		t.Fatalf("stats %+v disagree with observed %d hits / %d misses / %d writebacks",
			s, hits, misses, wbs)
	}
}

func TestAccessMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		randomStream(t, small(), seed, 20000)
	}
}

func TestAccessMatchesReferenceAcrossTickWrap(t *testing.T) {
	c := small()
	// Park the clock just below the wrap so the stream crosses the
	// renormalization mid-run.
	c.tick = ^uint64(0) - 500
	ref := newRefCache(c.Config())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 13))
		write := rng.Intn(3) == 0
		hit, wb, wbAddr := c.Access(addr, write)
		rHit, rWb, rWbAddr := ref.access(addr, write)
		if hit != rHit || wb != rWb || wbAddr != rWbAddr {
			t.Fatalf("access %d (addr %#x write %v) near tick wrap: got (%v %v %#x), reference (%v %v %#x)",
				i, addr, write, hit, wb, wbAddr, rHit, rWb, rWbAddr)
		}
	}
	if c.tick > 1<<32 {
		t.Fatalf("tick %d did not wrap/renormalize", c.tick)
	}
}

func TestTickWrapPreservesLRUOrder(t *testing.T) {
	c := small()
	// Three lines in set 0 of the 8-set cache (stride 512), two ways.
	a, b, d, e := uint64(0), uint64(512), uint64(1024), uint64(1536)
	c.Access(b, false)
	c.tick = ^uint64(0) - 1
	c.Access(a, false) // a now MRU at tick = max
	c.Access(d, false) // clock wraps here; must still evict b, not a
	if !c.Contains(a) {
		t.Error("a evicted across tick wrap; it was MRU")
	}
	if c.Contains(b) {
		t.Error("b survived; it was LRU at the wrap")
	}
	c.Access(e, false) // and recency must keep working after the wrap
	if !c.Contains(d) {
		t.Error("d evicted; a was older")
	}
	if c.Contains(a) {
		t.Error("a survived second eviction; it was LRU after the wrap")
	}
}

// twoHierarchies builds identical two-level hierarchies with row-meter
// sinks for equivalence tests.
func twoHierarchies() (*Hierarchy, *dram.RowMeter, *Hierarchy, *dram.RowMeter) {
	mk := func() (*Hierarchy, *dram.RowMeter) {
		meter := dram.NewRowMeter()
		l1 := New(Config{Name: "L1", Size: 1 << 10, Ways: 2})
		l2 := New(Config{Name: "L2", Size: 4 << 10, Ways: 4})
		return NewHierarchy(l1, l2, meter), meter
	}
	ha, ma := mk()
	hb, mb := mk()
	return ha, ma, hb, mb
}

func TestSpanMatchesPerRowLoop(t *testing.T) {
	ha, ma, hb, mb := twoHierarchies()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1 << 15))
		rowBytes := 1 + rng.Intn(300)
		rows := 1 + rng.Intn(40)
		stride := uint64(rng.Intn(512))
		write := rng.Intn(2) == 0

		if write {
			ha.StoreSpan(addr, rowBytes, rows, stride)
		} else {
			ha.LoadSpan(addr, rowBytes, rows, stride)
		}
		a := addr
		for r := 0; r < rows; r++ {
			if write {
				hb.Store(a, rowBytes)
			} else {
				hb.Load(a, rowBytes)
			}
			a += stride
		}

		if ha.L1.Stats() != hb.L1.Stats() {
			t.Fatalf("iter %d: L1 stats diverge: span %+v, loop %+v", i, ha.L1.Stats(), hb.L1.Stats())
		}
		if ha.L2.Stats() != hb.L2.Stats() {
			t.Fatalf("iter %d: L2 stats diverge: span %+v, loop %+v", i, ha.L2.Stats(), hb.L2.Stats())
		}
		if ma.Traffic() != mb.Traffic() || ma.RowStats() != mb.RowStats() {
			t.Fatalf("iter %d: DRAM stats diverge: span %+v/%+v, loop %+v/%+v",
				i, ma.Traffic(), ma.RowStats(), mb.Traffic(), mb.RowStats())
		}
	}
}
