package cache

import "fmt"

// LineStream is a compiled, hardware-config-independent program of
// line-granularity cache accesses. Which lines a recorded kernel touches,
// in which order, and with which read/write mix is a pure function of the
// trace geometry and the line size — it does not depend on cache capacity
// or associativity — so a trace can be compiled to a LineStream once and
// replayed against any number of cache hierarchies (Hierarchy.ReplayStream).
//
// The program is run-length encoded as two-word runs:
//
//	w0: count<<33 | uint32(deltaBytes)<<1 | write
//	w1: line-aligned start address
//
// A run issues count accesses, the address advancing by deltaBytes (a
// signed 32-bit byte delta, normally ±lineSize) after each one. delta == 0
// is the repeat form — count consecutive accesses to one line — which the
// replay walker applies in O(1) via Cache.AccessRepeat; delta != 0 is the
// stride form covering sequential or strided line walks.
type LineStream struct {
	prog []uint64
}

// Maximum run length: the count field has 31 bits. The builder splits
// longer runs, so this is an encoding detail, not a caller-visible limit.
const maxRunLen = 1<<31 - 1

// Len returns the total number of line accesses the stream issues.
func (s *LineStream) Len() uint64 {
	var n uint64
	for i := 0; i+1 < len(s.prog); i += 2 {
		n += s.prog[i] >> 33
	}
	return n
}

// Runs returns the number of encoded runs (for tests and size accounting).
func (s *LineStream) Runs() int { return len(s.prog) / 2 }

// Words returns the size of the encoded program in 8-byte words.
func (s *LineStream) Words() int { return len(s.prog) }

// StreamBuilder assembles a LineStream from a sequence of line accesses,
// greedily collapsing consecutive accesses with the same write flag:
// repeats of one line extend a delta-0 run, and constant-stride line walks
// extend a stride run. The zero value is ready to use.
type StreamBuilder struct {
	prog []uint64

	// Pending run state. n == 0 means no pending run; delta is only
	// meaningful once n >= 2.
	start uint64
	last  uint64
	delta int64
	n     uint64
	write bool
}

// Access appends one access to the line containing addr. addr must be
// line-aligned (the compiler expands spans to line addresses).
func (b *StreamBuilder) Access(addr uint64, write bool) {
	if b.n == 0 {
		b.begin(addr, write)
		return
	}
	if write == b.write && b.n < maxRunLen {
		if b.n == 1 {
			d := int64(addr) - int64(b.start)
			if d == int64(int32(d)) {
				b.delta, b.last, b.n = d, addr, 2
				return
			}
		} else if addr == b.last+uint64(b.delta) {
			b.last, b.n = addr, b.n+1
			return
		}
	}
	b.flush()
	b.begin(addr, write)
}

func (b *StreamBuilder) begin(addr uint64, write bool) {
	b.start, b.last, b.n, b.write = addr, addr, 1, write
}

func (b *StreamBuilder) flush() {
	if b.n == 0 {
		return
	}
	var d uint64
	if b.n >= 2 {
		d = uint64(uint32(int32(b.delta)))
	}
	var w uint64
	if b.write {
		w = 1
	}
	b.prog = append(b.prog, b.n<<33|d<<1|w, b.start)
	b.n = 0
}

// Finish seals and returns the stream. The builder is reset and may be
// reused for the next stream.
func (b *StreamBuilder) Finish() LineStream {
	b.flush()
	s := LineStream{prog: b.prog}
	b.prog = nil
	return s
}

// ReplayStream drives a compiled line stream through the hierarchy,
// producing exactly the per-line events of issuing each encoded access via
// the Load/Store path — same stats, same LRU and row-buffer state — with
// the span-splitting and per-event dispatch already compiled away. Repeat
// runs (delta 0) apply in O(1); stride runs walk a tight per-line loop
// with the stats bookkeeping hoisted out.
func (h *Hierarchy) ReplayStream(s *LineStream) {
	prog := s.prog
	for i := 0; i+1 < len(prog); i += 2 {
		w0, addr := prog[i], prog[i+1]
		n := w0 >> 33
		delta := int64(int32(uint32(w0 >> 1)))
		write := w0&1 != 0
		if delta == 0 {
			h.accessRepeat(addr, write, n)
		} else {
			h.accessRun(addr, write, n, delta)
		}
	}
}

// accessRepeat issues n consecutive accesses to one line. The first access
// runs the full path; the remaining n-1 are guaranteed L1 hits (the line
// was just touched and nothing intervened), applied in bulk.
func (h *Hierarchy) accessRepeat(addr uint64, write bool, n uint64) {
	hit, wb, wbAddr := h.L1.AccessRepeat(addr, write, n)
	if !hit {
		h.fill(addr, wb, wbAddr)
	}
}

// accessRun issues n accesses starting at addr, advancing delta bytes per
// access. It computes exactly what n successive Access calls would — same
// stats, LRU, dirty, and fill events — with the run-invariant bookkeeping
// hoisted: the read/write tally and tick range are applied in bulk, and the
// MRU filter is skipped (it is a pure shortcut of the scan hit, and within
// a run consecutive accesses touch distinct lines).
func (h *Hierarchy) accessRun(addr uint64, write bool, n uint64, delta int64) {
	l1 := h.L1
	if l1.tick+n < l1.tick {
		// The LRU clock would wrap inside the run (needs 2^64 prior
		// accesses): take the per-access path, which renormalizes.
		for ; n > 0; n-- {
			hit, wb, wbAddr := l1.Access(addr, write)
			if !hit {
				h.fill(addr, wb, wbAddr)
			}
			addr += uint64(delta)
		}
		return
	}
	l1.stats.Accesses += n
	if write {
		l1.stats.Writes += n
	} else {
		l1.stats.Reads += n
	}
	tick := l1.tick
	setMask := uint64(l1.sets - 1)
	ways := l1.ways
	for ; n > 0; n-- {
		tick++
		line := addr >> l1.lineBits
		want := line | tagValid
		base := int(line&setMask) * ways
		tags := l1.tags[base : base+ways]
		lastUse := l1.lastUse[base : base+ways]
		victim := 0
		hit := false
		for i, t := range tags {
			if t&^uint64(tagDirty) == want {
				lastUse[i] = tick
				if write {
					tags[i] |= tagDirty
				}
				l1.mru = base + i
				l1.stats.Hits++
				hit = true
				break
			}
			if t&tagValid == 0 {
				victim = i
			} else if tags[victim]&tagValid != 0 && lastUse[i] < lastUse[victim] {
				victim = i
			}
		}
		if !hit {
			l1.stats.Misses++
			var wb bool
			var wbAddr uint64
			if t := tags[victim]; t&(tagValid|tagDirty) == tagValid|tagDirty {
				wb = true
				wbAddr = (t & tagLine) << l1.lineBits
				l1.stats.Writebacks++
			}
			newTag := want
			if write {
				newTag |= tagDirty
			}
			tags[victim] = newTag
			lastUse[victim] = tick
			l1.mru = base + victim
			l1.tick = tick // fill never reads L1 state, but keep it coherent
			h.fill(addr, wb, wbAddr)
		}
		addr += uint64(delta)
	}
	l1.tick = tick
}

// String summarizes the stream for diagnostics.
func (s *LineStream) String() string {
	return fmt.Sprintf("linestream{%d runs, %d accesses}", s.Runs(), s.Len())
}
