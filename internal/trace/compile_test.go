package trace

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gopim/internal/mem"
	"gopim/internal/profile"
)

// randomKernel builds a deterministic pseudo-random kernel from seed: a
// stream of phase changes, counter bumps, and single/span/copy/blend
// accesses with geometry drawn to hit the compiler's corners — same-line
// repeats (stride 0), overlapping rows (stride < rowBytes), sub-line and
// multi-line rows, and backwards-written rectangles via descending offsets.
// Re-running the kernel replays the identical instrumentation stream, so it
// is a valid recording subject.
func randomKernel(seed int64) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("random-%d", seed),
		Fn: func(ctx *profile.Ctx) {
			rng := rand.New(rand.NewSource(seed))
			const bufSize = 1 << 16
			bufs := []*mem.Buffer{
				ctx.Alloc("a", bufSize),
				ctx.Alloc("b", bufSize),
				ctx.Alloc("c", bufSize),
			}
			phases := []string{"alpha", "beta", "gamma"}
			pick := func() *mem.Buffer { return bufs[rng.Intn(len(bufs))] }
			// A span must stay in bounds: off + rowBytes + (rows-1)*stride
			// <= bufSize. Draw geometry first, then a legal offset.
			geom := func() (off, rowBytes, rows, stride int) {
				rowBytes = 1 + rng.Intn(260)
				rows = 1 + rng.Intn(16)
				stride = rng.Intn(2 * rowBytes) // 0, overlapping, and gapped
				span := rowBytes + (rows-1)*stride
				off = rng.Intn(bufSize - span)
				return off, rowBytes, rows, stride
			}
			steps := 150 + rng.Intn(100)
			for i := 0; i < steps; i++ {
				switch rng.Intn(13) {
				case 0:
					ctx.SetPhase(phases[rng.Intn(len(phases))])
				case 1:
					ctx.Ops(rng.Intn(1000))
				case 2:
					ctx.SIMD(rng.Intn(500))
				case 3:
					ctx.Refs(rng.Intn(200))
				case 4:
					n := 1 + rng.Intn(300)
					ctx.Load(pick(), rng.Intn(bufSize-n), n)
				case 5:
					n := 1 + rng.Intn(300)
					ctx.Store(pick(), rng.Intn(bufSize-n), n)
				case 6:
					n := 1 + rng.Intn(300)
					ctx.LoadV(pick(), rng.Intn(bufSize-n), n)
				case 7:
					n := 1 + rng.Intn(300)
					ctx.StoreV(pick(), rng.Intn(bufSize-n), n)
				case 8:
					off, rowBytes, rows, stride := geom()
					ctx.LoadSpan(pick(), off, rowBytes, rows, stride)
				case 9:
					off, rowBytes, rows, stride := geom()
					ctx.StoreSpan(pick(), off, rowBytes, rows, stride)
				case 10:
					off, rowBytes, rows, stride := geom()
					ctx.LoadSpanV(pick(), off, rowBytes, rows, stride)
				case 11:
					off, rowBytes, rows, stride := geom()
					ctx.StoreSpanV(pick(), off, rowBytes, rows, stride)
				default:
					srcOff, rowBytes, rows, srcStride := geom()
					dstSpan := rowBytes + (rows-1)*srcStride
					dstOff := rng.Intn(bufSize - dstSpan)
					if rng.Intn(2) == 0 {
						ctx.CopySpanV(pick(), srcOff, pick(), dstOff, rowBytes, rows, srcStride, srcStride)
					} else {
						ctx.BlendSpanV(pick(), srcOff, pick(), dstOff, rowBytes, rows, srcStride, srcStride)
					}
				}
			}
		},
	}
}

// TestCompiledReplayRandomGeometry is the tentpole's property test: for
// randomized trace geometry, the compiled line-stream engine, the reference
// interpreter, and direct execution must agree bit-for-bit on every
// hardware config — totals, per-phase maps, cache stats, and the
// event-order-sensitive row-buffer counters.
func TestCompiledReplayRandomGeometry(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			k := randomKernel(seed)
			rec := NewRecorder(k.Name())
			recTotal, recPhases := profile.Record(profile.SoC(), k, rec)
			tr := rec.Finish()

			directTotal, directPhases := profile.Run(profile.SoC(), k)
			if recTotal != directTotal || !reflect.DeepEqual(recPhases, directPhases) {
				t.Fatalf("recording perturbed the profile")
			}

			for _, hw := range hardwareConfigs() {
				wantTotal, wantPhases := profile.Run(hw, k)
				interpTotal, interpPhases := tr.ReplayInterp(hw)
				compTotal, compPhases := tr.Replay(hw)
				if interpTotal != wantTotal {
					t.Errorf("%s: interp total diverges from direct:\ninterp %+v\ndirect %+v", hw.Name, interpTotal, wantTotal)
				}
				if compTotal != wantTotal {
					t.Errorf("%s: compiled total diverges from direct:\ncompiled %+v\ndirect   %+v", hw.Name, compTotal, wantTotal)
				}
				if compTotal.Rows != wantTotal.Rows {
					t.Errorf("%s: compiled row-buffer stats diverge: compiled %+v direct %+v", hw.Name, compTotal.Rows, wantTotal.Rows)
				}
				if !reflect.DeepEqual(interpPhases, wantPhases) {
					t.Errorf("%s: interp phase map diverges", hw.Name)
				}
				if !reflect.DeepEqual(compPhases, wantPhases) {
					t.Errorf("%s: compiled phase map diverges:\ncompiled %+v\ndirect   %+v", hw.Name, compPhases, wantPhases)
				}
			}

			if w := tr.CompiledWords(64); w == 0 {
				t.Errorf("compiled stream is empty for a non-trivial trace")
			}
		})
	}
}

// TestCompileMemoized verifies that compilation happens once per line size
// and is shared across replays and hardware configs.
func TestCompileMemoized(t *testing.T) {
	k := randomKernel(42)
	rec := NewRecorder(k.Name())
	profile.Record(profile.SoC(), k, rec)
	tr := rec.Finish()

	c1 := tr.compile(64)
	tr.Replay(profile.SoC())
	tr.Replay(profile.PIMCore())
	if c2 := tr.compile(64); c2 != c1 {
		t.Errorf("compile(64) rebuilt: %p then %p", c1, c2)
	}
}
