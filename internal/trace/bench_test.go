package trace

import (
	"testing"

	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

// BenchmarkTraceReplay measures replaying a recorded texture-tiling trace
// into a fresh PIM-core hierarchy, against BenchmarkDirectRun as the
// re-execution baseline the cache avoids.
func BenchmarkTraceReplay(b *testing.B) {
	k := texture.Kernel(512, 512, 1)
	rec := NewRecorder(k.Name())
	profile.Record(profile.SoC(), k, rec)
	tr := rec.Finish()
	b.ReportMetric(float64(tr.Words()*8), "trace-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Replay(profile.PIMCore())
	}
}

// BenchmarkTraceReplayInterp replays the same trace through the reference
// interpreter engine, isolating what the compiled line-stream form saves.
func BenchmarkTraceReplayInterp(b *testing.B) {
	k := texture.Kernel(512, 512, 1)
	rec := NewRecorder(k.Name())
	profile.Record(profile.SoC(), k, rec)
	tr := rec.Finish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ReplayInterp(profile.PIMCore())
	}
}

// BenchmarkDirectRun is the corresponding direct execution of the same
// kernel on the same hardware.
func BenchmarkDirectRun(b *testing.B) {
	k := texture.Kernel(512, 512, 1)
	for i := 0; i < b.N; i++ {
		profile.Run(profile.PIMCore(), k)
	}
}
