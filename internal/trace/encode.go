// Binary trace-store format: the serialization half of the persistent
// content-addressed store (store.go).
//
// An entry is a fixed 24-byte header followed by a variable payload:
//
//	 0: 4  magic "GPTR"
//	 4: 8  format version (uint32 LE)
//	 8:16  payload length in bytes (uint64 LE)
//	16:24  FNV-64a hash of the payload (uint64 LE)
//
//	payload:
//	  content key      uvarint length + bytes
//	  kernel name      uvarint length + bytes
//	  phase names      uvarint count, then uvarint length + bytes each
//	  buffer bases     uvarint count, then uvarint each
//	  event stream     uvarint word count, then 8-byte LE words
//
// The payload hash makes any single-bit corruption detectable: FNV-1a
// multiplies by an odd (invertible mod 2^64) prime after each byte, so two
// payloads that first differ at byte i can never re-converge to the same
// state. Header corruption is caught structurally — magic, version, and
// payload-length mismatches each fail decoding on their own — so decode
// rejects every truncation and every bit flip (this exhaustive property is
// tested in encode_test.go). Compiled per-line-size forms are deliberately
// not serialized: they are cheap to re-lower relative to recording, and
// keeping them out keeps entries hardware-plan-independent; the versioned
// header leaves room to add them as a new section under a version bump.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// storeFormatVersion is the on-disk trace format version. Bump it for any
// layout change: entries live under a version-qualified directory, so a
// bump invalidates every old entry cleanly (the old directory is reported
// as stale by Store.Verify and removable with -prune). The storever lint
// analyzer requires both encodeTrace and decodeTrace to reference this
// constant, so a format change cannot ship half-bumped.
const storeFormatVersion = 1

const (
	storeMagic     = "GPTR"
	storeHeaderLen = 24
)

// encodeTrace serializes the trace and its content key into a store entry.
func encodeTrace(key string, t *Trace) []byte {
	n := storeHeaderLen + 2*binary.MaxVarintLen64 + len(key) + len(t.Kernel)
	for _, p := range t.phases {
		n += binary.MaxVarintLen64 + len(p)
	}
	n += (2+len(t.bases))*binary.MaxVarintLen64 + 8*len(t.events)
	buf := make([]byte, storeHeaderLen, n)

	buf = appendString(buf, key)
	buf = appendString(buf, t.Kernel)
	buf = binary.AppendUvarint(buf, uint64(len(t.phases)))
	for _, p := range t.phases {
		buf = appendString(buf, p)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.bases)))
	for _, b := range t.bases {
		buf = binary.AppendUvarint(buf, b)
	}
	buf = binary.AppendUvarint(buf, uint64(len(t.events)))
	for _, w := range t.events {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}

	payload := buf[storeHeaderLen:]
	h := fnv.New64a()
	h.Write(payload)
	copy(buf[0:4], storeMagic)
	binary.LittleEndian.PutUint32(buf[4:8], storeFormatVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:24], h.Sum64())
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeTrace parses a store entry, verifying the magic, format version,
// payload length, and integrity hash before trusting any field. Any
// corruption — truncation, a flipped bit anywhere, a stale format — is an
// error; callers treat errors as a cache miss, never a crash.
func decodeTrace(data []byte) (key string, t *Trace, err error) {
	if len(data) < storeHeaderLen {
		return "", nil, fmt.Errorf("trace store entry: %d bytes, shorter than the %d-byte header", len(data), storeHeaderLen)
	}
	if string(data[0:4]) != storeMagic {
		return "", nil, fmt.Errorf("trace store entry: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != storeFormatVersion {
		return "", nil, fmt.Errorf("trace store entry: format version %d, want %d", v, storeFormatVersion)
	}
	payload := data[storeHeaderLen:]
	if n := binary.LittleEndian.Uint64(data[8:16]); n != uint64(len(payload)) {
		return "", nil, fmt.Errorf("trace store entry: payload length %d, header says %d", len(payload), n)
	}
	h := fnv.New64a()
	h.Write(payload)
	if sum := binary.LittleEndian.Uint64(data[16:24]); sum != h.Sum64() {
		return "", nil, fmt.Errorf("trace store entry: integrity hash mismatch")
	}

	d := decoder{buf: payload}
	key = d.string()
	t = &Trace{Kernel: d.string()}
	// Zero-length sections stay nil, mirroring what a Recorder builds.
	if n := d.count(len(payload)); n > 0 {
		t.phases = make([]string, n)
		for i := range t.phases {
			t.phases[i] = d.string()
		}
	}
	if n := d.count(len(payload)); n > 0 {
		t.bases = make([]uint64, n)
		for i := range t.bases {
			t.bases[i] = d.uvarint()
		}
	}
	if n := d.count(len(payload)/8 + 1); n > 0 {
		t.events = make([]uint64, n)
		for i := range t.events {
			t.events[i] = d.word()
		}
	}
	if d.err != nil {
		return "", nil, fmt.Errorf("trace store entry: %w", d.err)
	}
	if len(d.buf) != 0 {
		return "", nil, fmt.Errorf("trace store entry: %d trailing bytes after event stream", len(d.buf))
	}
	return key, t, nil
}

// decoder is a cursor over the payload with sticky error handling: after
// the first malformed field every further read returns zero values, and
// decodeTrace reports the recorded error once at the end.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%s", msg)
	}
	d.buf = nil
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a uvarint element count, rejecting values that could not
// possibly fit in the remaining payload (so a corrupt count cannot drive a
// huge allocation before the trailing-bytes check fails).
func (d *decoder) count(max int) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(max) {
		d.fail("element count exceeds payload size")
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	// Bound the length against the buffer that remains AFTER the varint is
	// consumed: measuring before it would accept a length that overruns the
	// payload by up to the varint's own width and panic on the slice below.
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("string length exceeds payload size")
	}
	if d.err != nil {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) word() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated event stream")
		return 0
	}
	w := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return w
}
