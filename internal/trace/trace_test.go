package trace

import (
	"reflect"
	"testing"

	"gopim/internal/browser"
	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/nn"
	"gopim/internal/profile"
	"gopim/internal/qgemm"
	"gopim/internal/vp9"
)

// hardwareConfigs returns the three hardware configurations every kernel is
// evaluated on.
func hardwareConfigs() []profile.Hardware {
	return []profile.Hardware{profile.SoC(), profile.PIMCore(), profile.PIMAcc()}
}

// testClip builds a tiny coded clip once for the vp9 kernel families.
var testClip = func() *vp9.CodedClip {
	clip, err := vp9.CodeClip(128, 128, 2, 30, 7)
	if err != nil {
		panic(err)
	}
	return clip
}()

// familyKernels returns one representative kernel per registered kernel
// family: texture, blit, lzo (compress + decompress), qgemm, vp9, browser.
func familyKernels() map[string]profile.Kernel {
	return map[string]profile.Kernel{
		"texture":        texture.Kernel(256, 256, 2),
		"blit":           blit.Kernel(256, 8, 3),
		"lzo-compress":   browser.CompressKernel(16, 9),
		"lzo-decompress": browser.DecompressKernel(16, 9),
		"qgemm-pack":     qgemm.PackKernel(96, 96, 96, 2),
		"qgemm-quant":    qgemm.QuantizeKernel(96, 96, 96, 2),
		"nn-layer":       nn.LayerKernel(nn.ResNetV2152().Layers[0], 64),
		"vp9-subpel":     vp9.SubPelKernel(testClip),
		"vp9-deblock":    vp9.DeblockKernel(testClip),
		"vp9-me":         vp9.MEKernel(testClip),
		"vp9-decode":     vp9.DecodeKernel(testClip),
		"vp9-encode":     vp9.EncodeKernel(testClip),
		"browser-scroll": browser.ScrollKernel(browser.GoogleDocs(), 1),
		"browser-load":   browser.LoadKernel(browser.GoogleDocs()),
	}
}

// TestReplayEquivalence is the tentpole's correctness gate: for every kernel
// family, record once and replay on all three hardware configs, and require
// the replay to match a direct profile.Run bit-for-bit — totals, per-phase
// maps, and the event-order-sensitive row-buffer stats.
func TestReplayEquivalence(t *testing.T) {
	for name, k := range familyKernels() {
		t.Run(name, func(t *testing.T) {
			rec := NewRecorder(k.Name())
			recTotal, recPhases := profile.Record(profile.SoC(), k, rec)
			tr := rec.Finish()

			// The recording run itself must be unperturbed by the sink.
			directTotal, directPhases := profile.Run(profile.SoC(), k)
			if recTotal != directTotal {
				t.Fatalf("recording perturbed the profile:\nrecorded %+v\ndirect   %+v", recTotal, directTotal)
			}
			if !reflect.DeepEqual(recPhases, directPhases) {
				t.Fatalf("recording perturbed the phase map")
			}

			for _, hw := range hardwareConfigs() {
				wantTotal, wantPhases := profile.Run(hw, k)
				engines := []struct {
					name   string
					replay func(profile.Hardware) (profile.Profile, map[string]profile.Profile)
				}{
					{"compiled", tr.Replay},
					{"interp", tr.ReplayInterp},
				}
				for _, e := range engines {
					gotTotal, gotPhases := e.replay(hw)
					if gotTotal != wantTotal {
						t.Errorf("%s/%s: replay total diverges:\nreplay %+v\ndirect %+v", hw.Name, e.name, gotTotal, wantTotal)
					}
					if gotTotal.Rows != wantTotal.Rows {
						t.Errorf("%s/%s: row-buffer stats diverge: replay %+v direct %+v", hw.Name, e.name, gotTotal.Rows, wantTotal.Rows)
					}
					if !reflect.DeepEqual(gotPhases, wantPhases) {
						t.Errorf("%s/%s: replay phase map diverges:\nreplay %+v\ndirect %+v", hw.Name, e.name, gotPhases, wantPhases)
					}
				}
			}
		})
	}
}

// TestCacheSingleExecution verifies the memoization contract: one recording
// per kernel key, one replay per additional hardware config, hits after
// that, and results identical to direct runs throughout.
func TestCacheSingleExecution(t *testing.T) {
	c := NewCache()
	k := texture.Kernel(256, 256, 1)
	for round := 0; round < 2; round++ {
		for _, hw := range hardwareConfigs() {
			gotTotal, gotPhases := c.Profile(hw, k)
			wantTotal, wantPhases := profile.Run(hw, k)
			if gotTotal != wantTotal || !reflect.DeepEqual(gotPhases, wantPhases) {
				t.Fatalf("round %d %s: cached result diverges from direct run", round, hw.Name)
			}
		}
	}
	s := c.Stats()
	if s.Records != 1 {
		t.Errorf("Records = %d, want 1 (kernel must execute once)", s.Records)
	}
	if s.Replays != 2 {
		t.Errorf("Replays = %d, want 2 (one per additional hardware config)", s.Replays)
	}
	if s.Hits != 3 {
		t.Errorf("Hits = %d, want 3 (second round fully memoized)", s.Hits)
	}
}

// TestCacheConcurrentSingleFlight hammers one kernel from many goroutines:
// the kernel must still execute exactly once and every caller must see the
// same result.
func TestCacheConcurrentSingleFlight(t *testing.T) {
	c := NewCache()
	k := blit.Kernel(128, 4, 1)
	hws := hardwareConfigs()
	wantTotal, _ := profile.Run(hws[0], k)

	const goroutines = 16
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			total, _ := c.Profile(hws[g%len(hws)], k)
			if g%len(hws) == 0 && total != wantTotal {
				errs <- &mismatchError{}
				return
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal("concurrent caller saw a divergent profile")
		}
	}
	if s := c.Stats(); s.Records != 1 {
		t.Errorf("Records = %d, want 1 under concurrency", s.Records)
	}
}

type mismatchError struct{}

func (*mismatchError) Error() string { return "profile mismatch" }

// TestCacheBypassesUnkeyedKernels: kernels without a cache key run directly
// every time.
func TestCacheBypassesUnkeyedKernels(t *testing.T) {
	c := NewCache()
	runs := 0
	k := profile.KernelFunc{KernelName: "unkeyed", Fn: func(ctx *profile.Ctx) {
		runs++
		ctx.Ops(1)
	}}
	c.Profile(profile.SoC(), k)
	c.Profile(profile.SoC(), k)
	if runs != 2 {
		t.Errorf("unkeyed kernel ran %d times, want 2 (no memoization)", runs)
	}
	if s := c.Stats(); s.Misses != 2 || s.Records != 0 {
		t.Errorf("stats = %+v, want 2 misses and no records", s)
	}
}

// TestNilCacheFallsThrough: a nil *Cache is a valid "no caching" handle.
func TestNilCacheFallsThrough(t *testing.T) {
	var c *Cache
	k := texture.Kernel(64, 64, 1)
	gotTotal, _ := c.Profile(profile.SoC(), k)
	wantTotal, _ := profile.Run(profile.SoC(), k)
	if gotTotal != wantTotal {
		t.Error("nil cache diverges from direct run")
	}
}

// TestCachePhasesAreIsolated: callers mutating a returned phase map must not
// corrupt later requests.
func TestCachePhasesAreIsolated(t *testing.T) {
	c := NewCache()
	k := texture.Kernel(64, 64, 1)
	_, first := c.Profile(profile.SoC(), k)
	for name := range first {
		delete(first, name)
	}
	_, second := c.Profile(profile.SoC(), k)
	if len(second) == 0 {
		t.Error("mutating a returned phase map corrupted the cache")
	}
}

// TestHardwareKeyNormalizesDefaults: explicit default widths share an entry
// with zero-valued ones, and different geometries do not collide.
func TestHardwareKeyNormalizesDefaults(t *testing.T) {
	a := profile.PIMCore()
	b := profile.PIMCore()
	b.ScalarRef, b.VectorRef = 8, 16
	if HardwareKey(a) != HardwareKey(b) {
		t.Error("default-width hardware keys should match")
	}
	if HardwareKey(profile.SoC()) == HardwareKey(profile.PIMCore()) {
		t.Error("distinct hardware configs must not collide")
	}
}
