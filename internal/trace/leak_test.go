package trace

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestSaveAsyncLeaksNoGoroutines pins the write-through contract: after
// Wait returns, every SaveAsync goroutine has exited, across enough
// writes to cycle the bounded writer pool several times. Runs in -short
// mode — the settle check is the cheap gate for leaks the race job
// cannot see.
func TestSaveAsyncLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := randomTrace(rand.New(rand.NewSource(11)), "kern")
	for i := 0; i < 4*storeSaveConcurrency; i++ {
		st.SaveAsync(fmt.Sprintf("leak-key-%d", i), tr)
	}
	st.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle after Wait: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}

	if got := st.Stats().Saves; got != int64(4*storeSaveConcurrency) {
		t.Fatalf("saves = %d, want %d", got, 4*storeSaveConcurrency)
	}
}
