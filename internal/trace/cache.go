package trace

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
	"gopim/internal/profile"
)

// HardwareKey returns a memoization key capturing everything about hw that
// can influence a profile: cache geometry and the scalar/vector reference
// widths (with the Ctx defaults applied, so a zero width and its default
// share an entry). The name is deliberately excluded — it never reaches the
// models.
func HardwareKey(hw profile.Hardware) string {
	scalar, vector := hw.ScalarRef, hw.VectorRef
	if scalar == 0 {
		scalar = 8
	}
	if vector == 0 {
		vector = 16
	}
	l2 := "-"
	if hw.L2 != nil {
		l2 = hw.L2.Key()
	}
	return fmt.Sprintf("%s|%s|s%d|v%d", hw.L1.Key(), l2, scalar, vector)
}

// Stats reports what a Cache has done so far.
type Stats struct {
	Requests  int64 // all Profile requests, hit or not
	Records   int64 // kernel executions (trace captures)
	Replays   int64 // trace replays against a new hardware config
	Hits      int64 // requests served from memoized state (a (kernel, hardware) result, or a resident trace for TraceFor)
	Misses    int64 // requests that fell through to direct execution (no key)
	StoreHits int64 // traces loaded from the persistent store instead of recorded
	Evictions int64 // traces evicted by the in-memory size bound (Limit)
}

// Engine selects how a Cache replays traces.
type Engine int

// Replay engines. The compiled line-stream engine is the default (zero
// value); the interpreter is the reference implementation kept for the
// end-to-end equivalence gate (`pimsim -replay=interp`).
const (
	EngineCompiled Engine = iota
	EngineInterp
)

// Cache memoizes kernel profiles at two levels: each keyed kernel executes
// (and records its trace) once per process, and each (kernel, hardware)
// pair replays once — later requests return the memoized result. Kernels
// without a cache key (profile.KeyOf == "") always execute directly, as do
// all kernels when the cache pointer is nil.
//
// Cache is safe for concurrent use; in-flight recordings and replays are
// single-flight, so concurrent experiment runners asking for the same
// kernel block on one execution instead of duplicating it.
type Cache struct {
	// Engine selects the replay engine for cache-mediated replays. Set it
	// before sharing the cache across goroutines; both engines produce
	// bit-identical profiles, and compiled replays of one trace share a
	// single compiled stream across all hardware configs.
	Engine Engine

	// Store, when non-nil, is the persistent content-addressed trace
	// store consulted on every trace miss before falling back to direct
	// execution, and written through (asynchronously) on every recording,
	// so cold processes start as warm as the store's contents. Set it
	// before sharing the cache across goroutines. Replays are bit-identical
	// whether a trace was recorded or loaded, so the store never changes
	// output — only how fast it is produced.
	Store *Store

	// Limit, when positive, bounds the in-memory bytes of recorded trace
	// streams (Trace.MemBytes); the least-recently-used traces are evicted
	// once the bound is exceeded. Memoized per-hardware results survive
	// eviction, and a re-requested evicted trace falls back to the Store
	// (when attached) before re-recording. Zero means unlimited — the
	// previous behavior. Set it before sharing the cache across goroutines.
	Limit int64

	// Obs, when non-nil, receives phase-timing spans (kernel record, trace
	// replay) from cache-mediated work; the cache's own counters are exported
	// separately via MetricsInto. Nil (the default) costs a branch per phase.
	// Set it before sharing the cache across goroutines.
	Obs *obs.Registry

	mu      sync.Mutex
	traces  map[string]*traceEntry
	results map[string]*resultEntry
	lru     *list.List // *traceEntry, front = most recently used
	bytes   int64      // sum of admitted entries' bytes

	requests, records, replays, hits, misses, storeHits, evictions atomic.Int64
}

type traceEntry struct {
	key   string
	once  sync.Once
	trace *Trace

	// LRU accounting, guarded by Cache.mu: elem is non-nil only while the
	// entry is admitted (recorded or loaded, and not yet evicted).
	bytes int64
	elem  *list.Element

	// The recording run is a full profile.Run in its own right; its result
	// is kept so the first-requested hardware config costs no extra replay.
	// Traces loaded from the persistent store leave hwKey empty: every
	// hardware config replays.
	hwKey  string
	prof   profile.Profile
	phases map[string]profile.Profile
}

type resultEntry struct {
	once   sync.Once
	prof   profile.Profile
	phases map[string]profile.Profile
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		traces:  map[string]*traceEntry{},
		results: map[string]*resultEntry{},
	}
}

// Stats returns a snapshot of the cache's activity counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Requests:  c.requests.Load(),
		Records:   c.records.Load(),
		Replays:   c.replays.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		StoreHits: c.storeHits.Load(),
		Evictions: c.evictions.Load(),
	}
}

// MetricsInto implements obs.Source, exporting the cache's counters (and
// current resident bytes) into registry snapshots — the same atomics Stats
// reads, with no extra hot-path accounting.
func (c *Cache) MetricsInto(emit func(name string, value int64)) {
	emit("requests", c.requests.Load())
	emit("records", c.records.Load())
	emit("replays", c.replays.Load())
	emit("hits", c.hits.Load())
	emit("misses", c.misses.Load())
	emit("store_hits", c.storeHits.Load())
	emit("evictions", c.evictions.Load())
	emit("mem_bytes", c.MemBytes())
}

// MemBytes returns the bytes of recorded trace streams currently held in
// memory (the quantity Limit bounds).
func (c *Cache) MemBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Profile returns profile.Run(hw, kernel), executing the kernel at most
// once across all hardware configs and memoizing per-hardware replay
// results. The returned phase map is a private copy.
func (c *Cache) Profile(hw profile.Hardware, kernel profile.Kernel) (profile.Profile, map[string]profile.Profile) {
	key := profile.KeyOf(kernel)
	if c == nil || key == "" {
		if c != nil {
			c.requests.Add(1)
			c.misses.Add(1)
		}
		return profile.Run(hw, kernel)
	}
	c.requests.Add(1)
	hwKey := HardwareKey(hw)

	c.mu.Lock()
	re, ok := c.results[key+"\x00"+hwKey]
	if !ok {
		re = &resultEntry{}
		c.results[key+"\x00"+hwKey] = re
	}
	te, ok := c.traces[key]
	if !ok {
		te = &traceEntry{key: key}
		c.traces[key] = te
	}
	if te.elem != nil {
		c.lru.MoveToFront(te.elem)
	}
	c.mu.Unlock()

	first := false
	re.once.Do(func() {
		first = true
		te.once.Do(func() {
			if t, ok := c.Store.Load(key); ok {
				te.trace = t
				c.storeHits.Add(1)
			} else {
				sp := c.Obs.Span("phase.record")
				rec := NewRecorder(kernel.Name())
				te.prof, te.phases = profile.Record(hw, kernel, rec)
				te.trace = rec.Finish()
				sp.End()
				te.hwKey = hwKey
				c.records.Add(1)
				c.Store.SaveAsync(key, te.trace)
			}
			te.trace.Obs = c.Obs
			c.admit(te)
		})
		if te.hwKey == hwKey {
			re.prof, re.phases = te.prof, te.phases
			return
		}
		if c.Engine == EngineInterp {
			sp := c.Obs.Span("phase.replay.interp")
			re.prof, re.phases = te.trace.ReplayInterp(hw)
			sp.End()
		} else {
			sp := c.Obs.Span("phase.replay.compiled")
			re.prof, re.phases = te.trace.Replay(hw)
			sp.End()
		}
		c.replays.Add(1)
	})
	if !first {
		c.hits.Add(1)
	}
	return re.prof, clonePhases(re.phases)
}

// TraceFor returns the kernel's recorded trace, executing the kernel at
// most once across the process (and not at all when the persistent store
// already holds it). It is the entry point for batch-replay consumers — the
// design-space explorer prices hundreds of hardware configs against one
// trace via Trace.ReplayBatch, where memoizing per-(kernel, hardware)
// results in the cache would only bloat it. The recording slot is shared
// with Profile: whichever asks first records, single-flight. Unkeyed
// kernels (or a nil cache) record a fresh trace on every call — there is no
// identity to memoize on.
func (c *Cache) TraceFor(kernel profile.Kernel) *Trace {
	key := profile.KeyOf(kernel)
	if c == nil || key == "" {
		if c != nil {
			c.requests.Add(1)
			c.misses.Add(1)
		}
		rec := NewRecorder(kernel.Name())
		profile.Record(profile.SoC(), kernel, rec)
		return rec.Finish()
	}
	c.requests.Add(1)

	c.mu.Lock()
	te, ok := c.traces[key]
	if !ok {
		te = &traceEntry{key: key}
		c.traces[key] = te
	}
	if te.elem != nil {
		c.lru.MoveToFront(te.elem)
	}
	c.mu.Unlock()

	first := false
	te.once.Do(func() {
		first = true
		if t, ok := c.Store.Load(key); ok {
			te.trace = t
			c.storeHits.Add(1)
		} else {
			hw := profile.SoC()
			sp := c.Obs.Span("phase.record")
			rec := NewRecorder(kernel.Name())
			te.prof, te.phases = profile.Record(hw, kernel, rec)
			te.trace = rec.Finish()
			sp.End()
			te.hwKey = HardwareKey(hw)
			c.records.Add(1)
			c.Store.SaveAsync(key, te.trace)
		}
		te.trace.Obs = c.Obs
		c.admit(te)
	})
	if !first {
		c.hits.Add(1)
	}
	return te.trace
}

// admit enters a freshly recorded or loaded trace into the LRU accounting
// and enforces Limit by evicting from the cold end. The admitting entry
// itself is never evicted (a single oversized trace still gets used), and
// entries still recording are not in the LRU list yet, so single-flight is
// preserved. Eviction drops only the trace stream — memoized per-hardware
// results stay — and a later request for an evicted key re-enters through
// the Store fallback or a re-recording.
func (c *Cache) admit(te *traceEntry) {
	te.bytes = te.trace.MemBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru == nil {
		c.lru = list.New()
	}
	te.elem = c.lru.PushFront(te)
	c.bytes += te.bytes
	if c.Limit <= 0 {
		return
	}
	for c.bytes > c.Limit && c.lru.Len() > 1 {
		old := c.lru.Back().Value.(*traceEntry)
		if old == te {
			break
		}
		c.lru.Remove(old.elem)
		old.elem = nil
		delete(c.traces, old.key)
		c.bytes -= old.bytes
		c.evictions.Add(1)
	}
}

// Runner adapts the cache to the profile.Runner signature.
func (c *Cache) Runner() profile.Runner { return c.Profile }

func clonePhases(m map[string]profile.Profile) map[string]profile.Profile {
	out := make(map[string]profile.Profile, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
