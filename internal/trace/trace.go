// Package trace implements capture-once / replay-many kernel profiling.
//
// A kernel's instrumentation stream — phase markers, Ops/SIMD/Refs counter
// deltas, and the scalar/vector load/store/span/copy/blend events it issues
// against simulated buffers — is a pure function of the kernel's inputs; only
// the memory hierarchy it is measured against differs between hardware
// configurations. Recording the stream once and replaying it into a fresh
// cache hierarchy + row meter therefore reproduces profile.Run's
// (Profile, per-phase) result bit-identically, at a fraction of the cost of
// re-executing the kernel's functional work (DCT/entropy coding, LZO matching,
// GEMM arithmetic, ...).
//
// The trace is a compact append-only []uint64 event stream. Event layouts
// (the opcode lives in the low 8 bits of the first word):
//
//	phase:  1 word   op | phaseIndex<<8
//	count:  4 words  op; ops; simd; refs        (coalesced counter deltas)
//	span:   3 words  op | bufID<<8 | rowBytes<<32; off; rows | stride<<32
//	span2:  5 words  op | srcID<<8 | dstID<<32; srcOff; dstOff;
//	                 rowBytes | rows<<32; srcStride | dstStride<<32
//
// Buffer identity is interned: the recorder assigns dense ids on first use
// and stores each buffer's base address, so the replayer can re-issue the
// events against synthetic buffers without materializing any data. Traces
// record raw byte geometry, never derived reference counts: MemRefs depends
// on the replay hardware's scalar/vector reference widths and is recomputed
// by profile.Ctx during replay.
package trace

import (
	"fmt"
	"sync"

	"gopim/internal/mem"
	"gopim/internal/obs"
	"gopim/internal/profile"
)

// Opcodes. Access events use 2 + profile.AccessOp.
const (
	opPhase = 0
	opCount = 1
	opSpan0 = 2 // opSpan0 + AccessOp for OpLoad..OpBlendV
)

// Field-width limits of the packed encoding. All are far above anything the
// simulator produces (the largest standard-scale buffer is tens of MB); the
// recorder panics rather than silently truncating if one is ever exceeded.
const (
	maxID = 1 << 24 // buffer id width (span and span2 events alike)
	max32 = 1 << 32
)

// Trace is one kernel's recorded instrumentation stream.
type Trace struct {
	// Kernel is the kernel's report name (not the cache key).
	Kernel string

	// Obs, when non-nil, receives compile and batch-replay phase spans.
	// trace.Cache sets it while the trace is still private to the recording
	// single-flight; set it before sharing a hand-built Trace.
	Obs *obs.Registry

	events []uint64
	phases []string // interned phase names, indexed by phase events
	bases  []uint64 // buffer id -> base address in the recording Space

	// Replay-many state, interned on first use and shared by all replays:
	// the compiled line-stream form per line size, and the interpreter's
	// synthetic buffer handles (stateless, so sharing is safe).
	mu         sync.Mutex
	compiledBy map[uint64]*compiledEntry
	bufsOnce   sync.Once
	replayBufs []*mem.Buffer
}

// Words returns the size of the encoded event stream in 8-byte words.
func (t *Trace) Words() int { return len(t.events) }

// MemBytes returns the in-memory footprint of the recorded stream — events,
// buffer bases, and phase names. Compiled per-line-size forms are excluded:
// they are derived data, re-lowerable from the stream, and their lifetime
// follows the Trace's. This is the per-entry size the Cache's Limit bounds.
func (t *Trace) MemBytes() int64 {
	n := int64(len(t.events)+len(t.bases)) * 8
	for _, p := range t.phases {
		n += int64(len(p))
	}
	return n
}

// Recorder implements profile.TraceSink, building a Trace. Consecutive
// Count events are coalesced into the pending counters and flushed as a
// single event at the next phase transition (counter order within a phase is
// immaterial: counters commute with memory events, which only touch the
// hierarchy). Use via profile.Record, then call Finish.
type Recorder struct {
	t        *Trace
	bufIDs   map[*mem.Buffer]uint64
	phaseIDs map[string]uint64

	pOps, pSIMD, pRefs uint64
}

// NewRecorder returns a recorder for one execution of the named kernel.
func NewRecorder(kernel string) *Recorder {
	return &Recorder{
		t:        &Trace{Kernel: kernel},
		bufIDs:   map[*mem.Buffer]uint64{},
		phaseIDs: map[string]uint64{},
	}
}

func (r *Recorder) flushCounts() {
	if r.pOps == 0 && r.pSIMD == 0 && r.pRefs == 0 {
		return
	}
	r.t.events = append(r.t.events, opCount, r.pOps, r.pSIMD, r.pRefs)
	r.pOps, r.pSIMD, r.pRefs = 0, 0, 0
}

func (r *Recorder) bufID(b *mem.Buffer) uint64 {
	id, ok := r.bufIDs[b]
	if !ok {
		id = uint64(len(r.t.bases))
		if id >= maxID {
			panic(fmt.Sprintf("trace: kernel %q uses more than %d buffers", r.t.Kernel, maxID))
		}
		r.bufIDs[b] = id
		r.t.bases = append(r.t.bases, b.Base)
	}
	return id
}

// Phase implements profile.TraceSink.
func (r *Recorder) Phase(name string) {
	r.flushCounts()
	id, ok := r.phaseIDs[name]
	if !ok {
		id = uint64(len(r.t.phases))
		r.phaseIDs[name] = id
		r.t.phases = append(r.t.phases, name)
	}
	r.t.events = append(r.t.events, opPhase|id<<8)
}

// Count implements profile.TraceSink.
func (r *Recorder) Count(ops, simd, refs uint64) {
	r.pOps += ops
	r.pSIMD += simd
	r.pRefs += refs
}

// Span implements profile.TraceSink.
func (r *Recorder) Span(op profile.AccessOp, b *mem.Buffer, off, rowBytes, rows, stride int) {
	if off < 0 || rowBytes >= max32 || rows >= max32 || stride < 0 || stride >= max32 {
		panic(fmt.Sprintf("trace: span geometry out of range: off=%d rowBytes=%d rows=%d stride=%d", off, rowBytes, rows, stride))
	}
	r.t.events = append(r.t.events,
		uint64(opSpan0+int(op))|r.bufID(b)<<8|uint64(rowBytes)<<32,
		uint64(off),
		uint64(rows)|uint64(stride)<<32)
}

// Span2 implements profile.TraceSink.
func (r *Recorder) Span2(op profile.AccessOp, src *mem.Buffer, srcOff int, dst *mem.Buffer, dstOff int, rowBytes, rows, srcStride, dstStride int) {
	if srcOff < 0 || dstOff < 0 || rowBytes >= max32 || rows >= max32 ||
		srcStride < 0 || srcStride >= max32 || dstStride < 0 || dstStride >= max32 {
		panic(fmt.Sprintf("trace: span2 geometry out of range: rowBytes=%d rows=%d strides=%d/%d", rowBytes, rows, srcStride, dstStride))
	}
	r.t.events = append(r.t.events,
		uint64(opSpan0+int(op))|r.bufID(src)<<8|r.bufID(dst)<<32,
		uint64(srcOff),
		uint64(dstOff),
		uint64(rowBytes)|uint64(rows)<<32,
		uint64(srcStride)|uint64(dstStride)<<32)
}

// Finish flushes pending counters and returns the completed trace. The
// recorder must not be used afterwards.
func (r *Recorder) Finish() *Trace {
	r.flushCounts()
	return r.t
}

// Replay feeds the recorded stream into a fresh context for hw — a new cache
// hierarchy and row meter — and returns exactly what profile.Run(hw, kernel)
// returns, including the per-phase map. It drives the compiled line-stream
// engine (see compile.go), lowering the trace once per line size and
// reusing that form across every subsequent replay and hardware config.
// Replay is safe to call concurrently on the same Trace.
func (t *Trace) Replay(hw profile.Hardware) (profile.Profile, map[string]profile.Profile) {
	return t.replayCompiled(hw)
}

// buffers returns the interpreter's synthetic buffer handles, built once
// per Trace: they are immutable (name + base address), so every replay
// shares them instead of re-allocating and re-formatting names.
func (t *Trace) buffers() []*mem.Buffer {
	t.bufsOnce.Do(func() {
		t.replayBufs = make([]*mem.Buffer, len(t.bases))
		for i, base := range t.bases {
			t.replayBufs[i] = mem.BufferAt(fmt.Sprintf("replay%d", i), base)
		}
	})
	return t.replayBufs
}

// ReplayInterp is the reference replay engine: it interprets the packed
// span events one at a time through the live span entry points. It
// computes exactly what Replay computes — the compiled engine is defined
// (and gate-tested) against it — and remains reachable via
// `pimsim -replay=interp` so the equivalence can be checked end to end.
func (t *Trace) ReplayInterp(hw profile.Hardware) (profile.Profile, map[string]profile.Profile) {
	ctx := profile.NewCtx(hw)
	bufs := t.buffers()
	ev := t.events
	for i := 0; i < len(ev); {
		w := ev[i]
		switch op := w & 0xff; op {
		case opPhase:
			ctx.SetPhase(t.phases[w>>8])
			i++
		case opCount:
			ctx.AddCounters(ev[i+1], ev[i+2], ev[i+3])
			i += 4
		case opSpan0 + uint64(profile.OpCopyV), opSpan0 + uint64(profile.OpBlendV):
			src := bufs[w>>8&(maxID-1)]
			dst := bufs[w>>32&(maxID-1)]
			srcOff, dstOff := int(ev[i+1]), int(ev[i+2])
			rowBytes, rows := int(ev[i+3]&(max32-1)), int(ev[i+3]>>32)
			srcStride, dstStride := int(ev[i+4]&(max32-1)), int(ev[i+4]>>32)
			if op == opSpan0+uint64(profile.OpCopyV) {
				ctx.CopySpanV(src, srcOff, dst, dstOff, rowBytes, rows, srcStride, dstStride)
			} else {
				ctx.BlendSpanV(src, srcOff, dst, dstOff, rowBytes, rows, srcStride, dstStride)
			}
			i += 5
		default:
			b := bufs[w>>8&(maxID-1)]
			off := int(ev[i+1])
			rowBytes := int(w >> 32)
			rows, stride := int(ev[i+2]&(max32-1)), int(ev[i+2]>>32)
			switch profile.AccessOp(op - opSpan0) {
			case profile.OpLoad:
				ctx.LoadSpan(b, off, rowBytes, rows, stride)
			case profile.OpStore:
				ctx.StoreSpan(b, off, rowBytes, rows, stride)
			case profile.OpLoadV:
				ctx.LoadSpanV(b, off, rowBytes, rows, stride)
			case profile.OpStoreV:
				ctx.StoreSpanV(b, off, rowBytes, rows, stride)
			default:
				panic(fmt.Sprintf("trace: corrupt event opcode %d at word %d", op, i))
			}
			i += 3
		}
	}
	return ctx.Finish()
}
