package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
)

// Store is a persistent, content-addressed cache of recorded traces: the
// on-disk half of capture-once/replay-many, making a cold process as warm
// as one that already recorded everything. Entries are addressed by the
// kernel content key (the same key trace.Cache memoizes traces under —
// the recorded stream is hardware-independent, so one entry serves every
// hardware geometry) and live at
//
//	<dir>/v<storeFormatVersion>/<hh>/<sha256(key)>.trace
//
// where <hh> is the first two hex digits of the key hash. The version
// directory makes a format bump a clean invalidation: old entries are
// simply never consulted, and Verify reports (and can prune) them.
//
// A Store is a cache, never an authority: a missing, corrupt, truncated,
// or version-mismatched entry is a miss — the kernel re-records and the
// write-through repairs the entry — so no store state can crash a run or
// change its output (gated byte-for-byte in scripts/check.sh).
//
// Store is safe for concurrent use, including by multiple processes
// sharing one directory: writers stage entries in a temp file and
// atomically rename them into place.
type Store struct {
	root string // as given to OpenStore
	dir  string // version-qualified entry root

	// Obs, when non-nil, receives load/save phase spans (the store's own
	// counters are exported via MetricsInto). Set it before sharing the
	// store across goroutines.
	Obs *obs.Registry

	wg sync.WaitGroup
	// sem bounds concurrent background writers: a sweep can issue one
	// SaveAsync per kernel in a burst, and an unbounded goroutine-per-save
	// fan-out would stack thousands of writers against the same disk.
	sem chan struct{}

	hits, misses, saves, saveErrors, corrupt atomic.Int64
}

const storeEntryExt = ".trace"

// storeSaveConcurrency is the maximum number of in-flight SaveAsync
// writers per store.
const storeSaveConcurrency = 8

// versionDirRx matches version-qualified entry directories under the root.
var versionDirRx = regexp.MustCompile(`^v[0-9]+$`)

// OpenStore opens (creating if needed) a trace store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	vdir := filepath.Join(dir, fmt.Sprintf("v%d", storeFormatVersion))
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("opening trace store: %w", err)
	}
	return &Store{root: dir, dir: vdir, sem: make(chan struct{}, storeSaveConcurrency)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// entryPath returns the content-addressed path for key.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name+storeEntryExt)
}

// StoreStats reports what a Store has done so far.
type StoreStats struct {
	Hits       int64 // loads served from disk
	Misses     int64 // loads that found no entry
	Corrupt    int64 // loads that found an undecodable or mismatched entry
	Saves      int64 // entries written
	SaveErrors int64 // write attempts that failed (entry left absent/old)
}

// Stats returns a snapshot of the store's activity counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Corrupt:    s.corrupt.Load(),
		Saves:      s.saves.Load(),
		SaveErrors: s.saveErrors.Load(),
	}
}

// MetricsInto implements obs.Source, exporting the store's counters into
// registry snapshots — the same atomics Stats reads.
func (s *Store) MetricsInto(emit func(name string, value int64)) {
	st := s.Stats()
	emit("hits", st.Hits)
	emit("misses", st.Misses)
	emit("corrupt", st.Corrupt)
	emit("saves", st.Saves)
	emit("save_errors", st.SaveErrors)
}

// Load returns the stored trace for key, or ok == false on any miss —
// absent entry, unreadable file, corrupt or version-mismatched contents,
// or an entry whose recorded key does not match (a hash filed under the
// wrong name). A nil store always misses.
func (s *Store) Load(key string) (*Trace, bool) {
	if s == nil {
		return nil, false
	}
	defer s.Obs.Span("phase.store.load").End()
	data, err := os.ReadFile(s.entryPath(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	gotKey, t, err := decodeTrace(data)
	if err != nil || gotKey != key {
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return t, true
}

// SaveAsync writes the trace for key through to disk on a background
// goroutine, so recording runs never wait on I/O; Wait blocks until all
// pending writes land. Failures only bump SaveErrors — the store stays a
// best-effort cache. A nil store ignores the write.
func (s *Store) SaveAsync(key string, t *Trace) {
	if s == nil {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if s.sem != nil {
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
		}
		defer s.Obs.Span("phase.store.save").End()
		if err := s.save(key, t); err != nil {
			s.saveErrors.Add(1)
			return
		}
		s.saves.Add(1)
	}()
}

// save stages the encoded entry in a temp file and renames it into place,
// so readers (and concurrent writers) never observe a partial entry.
func (s *Store) save(key string, t *Trace) error {
	path := s.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	_, werr := f.Write(encodeTrace(key, t))
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(f.Name(), path)
	}
	if werr != nil {
		os.Remove(f.Name())
		return werr
	}
	return nil
}

// Wait blocks until every SaveAsync issued so far has finished.
func (s *Store) Wait() {
	if s != nil {
		s.wg.Wait()
	}
}

// VerifyIssue is one defective store file found by Verify.
type VerifyIssue struct {
	Path   string
	Reason string
}

// VerifyReport summarizes a store integrity sweep.
type VerifyReport struct {
	OK        int           // intact entries
	Bytes     int64         // total bytes across intact entries
	Issues    []VerifyIssue // corrupt, misfiled, or stray files
	StaleDirs []string      // entry directories for other format versions
}

// Verify decodes every entry under the current format version, checking
// magic, version, integrity hash, and that each entry is filed under its
// own key's hash; it also reports stale version directories left behind by
// format bumps and stray files (e.g. temp files from a crashed writer).
// With prune set, defective files and stale directories are deleted.
// Directory listings are sorted, so reports are deterministic.
func (s *Store) Verify(prune bool) (VerifyReport, error) {
	var rep VerifyReport

	ents, err := os.ReadDir(s.root)
	if err != nil {
		return rep, fmt.Errorf("trace store verify: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() && versionDirRx.MatchString(e.Name()) && filepath.Join(s.root, e.Name()) != s.dir {
			rep.StaleDirs = append(rep.StaleDirs, filepath.Join(s.root, e.Name()))
		}
	}

	err = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if !strings.HasSuffix(path, storeEntryExt) {
			rep.Issues = append(rep.Issues, VerifyIssue{Path: path, Reason: "stray file (not a store entry)"})
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			rep.Issues = append(rep.Issues, VerifyIssue{Path: path, Reason: rerr.Error()})
			return nil
		}
		key, _, derr := decodeTrace(data)
		if derr != nil {
			s.corrupt.Add(1)
			rep.Issues = append(rep.Issues, VerifyIssue{Path: path, Reason: derr.Error()})
			return nil
		}
		if want := s.entryPath(key); want != path {
			s.corrupt.Add(1)
			rep.Issues = append(rep.Issues, VerifyIssue{Path: path, Reason: "entry filed under the wrong key hash"})
			return nil
		}
		rep.OK++
		rep.Bytes += int64(len(data))
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("trace store verify: %w", err)
	}

	if prune {
		for _, issue := range rep.Issues {
			if rmErr := os.Remove(issue.Path); rmErr != nil && err == nil {
				err = rmErr
			}
		}
		for _, dir := range rep.StaleDirs {
			if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
				err = rmErr
			}
		}
	}
	return rep, err
}
