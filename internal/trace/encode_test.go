package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"gopim/internal/mem"
	"gopim/internal/profile"
)

// randomTrace drives a Recorder with a random but well-formed event mix —
// phases, counter deltas, single- and two-buffer spans over a random buffer
// set — mirroring what real kernels emit.
func randomTrace(rng *rand.Rand, kernel string) *Trace {
	rec := NewRecorder(kernel)
	bufs := make([]*mem.Buffer, 1+rng.Intn(4))
	for i := range bufs {
		bufs[i] = mem.BufferAt(fmt.Sprintf("b%d", i), uint64(rng.Intn(1<<30)))
	}
	buf := func() *mem.Buffer { return bufs[rng.Intn(len(bufs))] }
	for i, n := 0, rng.Intn(200); i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			rec.Phase(fmt.Sprintf("phase%d", rng.Intn(5)))
		case 1:
			rec.Count(uint64(rng.Intn(1000)), uint64(rng.Intn(100)), uint64(rng.Intn(50)))
		case 2:
			op := profile.AccessOp(rng.Intn(4)) // OpLoad..OpStoreV
			rec.Span(op, buf(), rng.Intn(4096), 1+rng.Intn(256), 1+rng.Intn(8), rng.Intn(512))
		case 3:
			op := profile.OpCopyV
			if rng.Intn(2) == 0 {
				op = profile.OpBlendV
			}
			rec.Span2(op, buf(), rng.Intn(4096), buf(), rng.Intn(4096),
				1+rng.Intn(256), 1+rng.Intn(8), rng.Intn(512), rng.Intn(512))
		}
	}
	return rec.Finish()
}

// tracesEqual compares every serialized field of two traces.
func tracesEqual(a, b *Trace) bool {
	return a.Kernel == b.Kernel &&
		reflect.DeepEqual(a.events, b.events) &&
		reflect.DeepEqual(a.phases, b.phases) &&
		reflect.DeepEqual(a.bases, b.bases)
}

// TestEncodeRoundTrip is the format's property test: across randomized
// traces and keys, decode(encode(t)) must reproduce the key and every
// recorded field exactly, including the empty trace.
func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("kernel key %d | geom %d", i, rng.Intn(1000))
		tr := randomTrace(rng, fmt.Sprintf("kern%d", i))
		data := encodeTrace(key, tr)
		gotKey, got, err := decodeTrace(data)
		if err != nil {
			t.Fatalf("seed %d: decode failed: %v", i, err)
		}
		if gotKey != key {
			t.Fatalf("seed %d: key round-tripped to %q, want %q", i, gotKey, key)
		}
		if !tracesEqual(tr, got) {
			t.Fatalf("seed %d: trace fields did not round-trip\noriginal: %d events %d phases %d bases\ndecoded:  %d events %d phases %d bases",
				i, len(tr.events), len(tr.phases), len(tr.bases),
				len(got.events), len(got.phases), len(got.bases))
		}
		if tr.MemBytes() != got.MemBytes() {
			t.Fatalf("seed %d: MemBytes changed across round trip: %d -> %d", i, tr.MemBytes(), got.MemBytes())
		}
	}
}

// TestDecodeDetectsEveryBitFlip flips every single bit of an encoded entry
// — header and payload alike — and requires decode to reject each variant.
// The FNV-1a payload hash guarantees this for the payload (the per-byte
// multiply by an odd prime is invertible, so differing states never
// re-converge), and the header fields are each checked structurally.
func TestDecodeDetectsEveryBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := randomTrace(rng, "bitflip")
	const key = "bitflip | key"
	data := encodeTrace(key, tr)
	if len(data) > 1<<16 {
		t.Fatalf("fixture trace too large for exhaustive sweep: %d bytes", len(data))
	}
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(data))
			copy(mut, data)
			mut[i] ^= 1 << bit
			if gotKey, _, err := decodeTrace(mut); err == nil && gotKey == key {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
		}
	}
}

// TestDecodeDetectsTruncation cuts the entry at every length (and extends
// it by a byte); every variant must fail to decode.
func TestDecodeDetectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := encodeTrace("trunc | key", randomTrace(rng, "trunc"))
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := decodeTrace(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(data))
		}
	}
	if _, _, err := decodeTrace(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("a trailing extra byte went undetected")
	}
}

// TestDecodeRejectsOversizedStringLength feeds decode a crafted entry whose
// header (magic, version, length, FNV hash) is fully consistent but whose
// payload declares a string longer than the bytes that remain after the
// length varint. The hash check cannot catch this — FNV-64a is trivially
// computable, so an attacker (or a colliding corruption) can always forge a
// matching header — and decode must fail cleanly rather than panic slicing
// past the payload.
func TestDecodeRejectsOversizedStringLength(t *testing.T) {
	for _, payload := range [][]byte{
		{0x05, 'a', 'b', 'c', 'd'}, // length 5, 4 bytes remain post-varint
		{0x01},                     // length 1, nothing remains
		{0xff, 0x01},               // two-byte varint (127+... = 255), 0 remain
	} {
		data := make([]byte, storeHeaderLen+len(payload))
		copy(data[storeHeaderLen:], payload)
		h := fnv.New64a()
		h.Write(payload)
		copy(data[0:4], storeMagic)
		binary.LittleEndian.PutUint32(data[4:8], storeFormatVersion)
		binary.LittleEndian.PutUint64(data[8:16], uint64(len(payload)))
		binary.LittleEndian.PutUint64(data[16:24], h.Sum64())
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("payload % x: decode panicked: %v", payload, r)
				}
			}()
			if _, _, err := decodeTrace(data); err == nil {
				t.Fatalf("payload % x: oversized string length went undetected", payload)
			}
		}()
	}
}

// TestDecodeRejectsForeignVersion patches the header's version field; the
// decoder must reject the entry before looking at the payload, so a format
// bump cleanly invalidates old entries.
func TestDecodeRejectsForeignVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := encodeTrace("ver | key", randomTrace(rng, "ver"))
	for _, v := range []uint32{0, storeFormatVersion + 1, ^uint32(0)} {
		mut := make([]byte, len(data))
		copy(mut, data)
		binary.LittleEndian.PutUint32(mut[4:8], v)
		if _, _, err := decodeTrace(mut); err == nil {
			t.Fatalf("foreign format version %d went undetected", v)
		}
	}
}
