package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

// TestStoreSaveLoad round-trips traces through a store directory and
// checks the activity counters.
func TestStoreSaveLoad(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	traces := map[string]*Trace{}
	for i := 0; i < 5; i++ {
		key := strings.Repeat("k", i+1) + " | key"
		traces[key] = randomTrace(rng, "kern")
		st.SaveAsync(key, traces[key])
	}
	st.Wait()
	for key, want := range traces {
		got, ok := st.Load(key)
		if !ok {
			t.Fatalf("Load(%q) missed after save", key)
		}
		if !tracesEqual(want, got) {
			t.Fatalf("Load(%q) returned a different trace", key)
		}
	}
	if _, ok := st.Load("absent | key"); ok {
		t.Fatal("Load of an absent key hit")
	}
	s := st.Stats()
	if s.Saves != 5 || s.Hits != 5 || s.Misses != 1 || s.Corrupt != 0 || s.SaveErrors != 0 {
		t.Fatalf("stats = %+v, want 5 saves / 5 hits / 1 miss", s)
	}
}

// TestStoreNilSafe: a nil store must behave as an always-missing cache.
func TestStoreNilSafe(t *testing.T) {
	var st *Store
	if _, ok := st.Load("k"); ok {
		t.Fatal("nil store Load hit")
	}
	st.SaveAsync("k", &Trace{})
	st.Wait()
	if s := st.Stats(); s != (StoreStats{}) {
		t.Fatalf("nil store stats = %+v", s)
	}
}

// storeEntries returns the store's entry files, sorted.
func storeEntries(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "v*", "*", "*"+storeEntryExt))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no store entries under %s (err %v)", dir, err)
	}
	return paths
}

// flipByte XORs one payload byte of the file.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x5a
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreLoadTreatsCorruptionAsMiss: a damaged entry must read as a
// miss (never an error, never a wrong trace), counted as corrupt.
func TestStoreLoadTreatsCorruptionAsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const key = "corrupt | key"
	st.SaveAsync(key, randomTrace(rand.New(rand.NewSource(11)), "kern"))
	st.Wait()
	path := storeEntries(t, dir)[0]
	flipByte(t, path, storeHeaderLen+3)
	if _, ok := st.Load(key); ok {
		t.Fatal("Load returned a corrupt entry")
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt == 1", s)
	}
}

// TestStoreVerifyDetectsEveryInjectedCorruption seeds a store, injects one
// of each corruption class — truncation, bit flip, version rewrite, a
// misfiled entry, a stray temp file, a stale version directory — and
// requires Verify to report every one of them and prune to restore a clean
// store.
func TestStoreVerifyDetectsEveryInjectedCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	keys := []string{"a | key", "b | key", "c | key", "d | key", "e | key"}
	for _, key := range keys {
		st.SaveAsync(key, randomTrace(rng, "kern"))
	}
	st.Wait()
	if rep, err := st.Verify(false); err != nil || rep.OK != len(keys) || len(rep.Issues) != 0 || len(rep.StaleDirs) != 0 {
		t.Fatalf("fresh store not clean: report %+v err %v", rep, err)
	}

	paths := storeEntries(t, dir)
	if err := os.Truncate(paths[0], 10); err != nil { // truncated file
		t.Fatal(err)
	}
	flipByte(t, paths[1], storeHeaderLen+1) // bit-flipped payload
	flipByte(t, paths[2], 5)                // wrong format version field
	misfiled := filepath.Join(filepath.Dir(paths[3]), "00"+strings.Repeat("ab", 31)+storeEntryExt)
	if err := os.Rename(paths[3], misfiled); err != nil { // filed under the wrong hash
		t.Fatal(err)
	}
	stray := filepath.Join(filepath.Dir(paths[4]), "tmp-crashed-writer")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil { // crashed-writer leftover
		t.Fatal(err)
	}
	staleDir := filepath.Join(dir, "v0")
	if err := os.MkdirAll(staleDir, 0o755); err != nil { // pre-bump format dir
		t.Fatal(err)
	}

	rep, err := st.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 1 {
		t.Errorf("OK = %d, want 1 (only the untouched entry)", rep.OK)
	}
	if len(rep.Issues) != 5 {
		t.Errorf("Issues = %d, want 5 (truncated, flipped, version, misfiled, stray):\n%+v", len(rep.Issues), rep.Issues)
	}
	if len(rep.StaleDirs) != 1 || rep.StaleDirs[0] != staleDir {
		t.Errorf("StaleDirs = %v, want [%s]", rep.StaleDirs, staleDir)
	}

	if _, err := st.Verify(true); err != nil {
		t.Fatalf("prune failed: %v", err)
	}
	rep, err = st.Verify(false)
	if err != nil || rep.OK != 1 || len(rep.Issues) != 0 || len(rep.StaleDirs) != 0 {
		t.Fatalf("store not clean after prune: report %+v err %v", rep, err)
	}
}

// TestCacheStoreColdStart is the cross-process contract: a fresh cache
// sharing a packed store must serve every kernel from disk — zero
// recordings — with results bit-identical to direct execution, and a
// corrupted store must degrade to re-recording, repairing itself through
// the write-behind.
func TestCacheStoreColdStart(t *testing.T) {
	dir := t.TempDir()
	k := texture.Kernel(256, 256, 1)
	hws := hardwareConfigs()

	// Process 1: record and write through.
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache()
	c1.Store = st1
	c1.Profile(hws[0], k)
	st1.Wait()
	if s := c1.Stats(); s.Records != 1 || s.StoreHits != 0 {
		t.Fatalf("recording process stats = %+v", s)
	}

	// Process 2: cold start against the packed store.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache()
	c2.Store = st2
	for _, hw := range hws {
		gotTotal, gotPhases := c2.Profile(hw, k)
		wantTotal, wantPhases := profile.Run(hw, k)
		if gotTotal != wantTotal || !reflect.DeepEqual(gotPhases, wantPhases) {
			t.Fatalf("%s: store-loaded profile diverges from direct run", hw.Name)
		}
	}
	if s := c2.Stats(); s.Records != 0 || s.StoreHits != 1 {
		t.Fatalf("cold-start stats = %+v, want 0 records / 1 store hit", s)
	}

	// Process 3: every entry corrupted — graceful miss, re-record, repair.
	for _, path := range storeEntries(t, dir) {
		flipByte(t, path, storeHeaderLen+2)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3 := NewCache()
	c3.Store = st3
	gotTotal, _ := c3.Profile(hws[0], k)
	wantTotal, _ := profile.Run(hws[0], k)
	if gotTotal != wantTotal {
		t.Fatal("profile diverges after store corruption")
	}
	if s := c3.Stats(); s.Records != 1 || s.StoreHits != 0 {
		t.Fatalf("corrupted-store stats = %+v, want re-record", s)
	}
	st3.Wait()
	if rep, err := st3.Verify(false); err != nil || len(rep.Issues) != 0 || rep.OK != 1 {
		t.Fatalf("write-through did not repair the corrupt entry: report %+v err %v", rep, err)
	}
}

// TestCacheLimitEviction exercises the bounded in-memory cache: admitting
// past Limit evicts the least-recently-used trace, memoized per-hardware
// results survive, and an evicted kernel needed on a new hardware config
// falls back to the store instead of re-executing.
func TestCacheLimitEviction(t *testing.T) {
	k1 := texture.Kernel(256, 256, 1)
	k2 := texture.Kernel(128, 128, 1)
	hws := hardwareConfigs()

	c := NewCache()
	c.Limit = 1 // evict everything but the newest trace
	c.Profile(hws[0], k1)
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("admitting under a fresh cache evicted: %+v", s)
	}
	before := c.MemBytes()
	c.Profile(hws[0], k2) // k1's trace is now LRU and over budget
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 eviction", s)
	}
	// Only k2's (smaller) trace should remain accounted.
	if after := c.MemBytes(); after >= before {
		t.Fatalf("accounting did not shrink on eviction: %d -> %d bytes", before, after)
	}

	// The memoized (k1, hws[0]) result survives eviction: a repeat request
	// is a hit, not a re-execution.
	recs := c.Stats().Records
	c.Profile(hws[0], k1)
	if s := c.Stats(); s.Records != recs {
		t.Fatalf("repeat request re-executed an evicted kernel: %+v", s)
	}

	// A new hardware config needs the trace back; without a store that
	// means one re-recording, with results still exact.
	gotTotal, _ := c.Profile(hws[1], k1)
	wantTotal, _ := profile.Run(hws[1], k1)
	if gotTotal != wantTotal {
		t.Fatal("re-recorded profile diverges from direct run")
	}
	if s := c.Stats(); s.Records != recs+1 {
		t.Fatalf("stats = %+v, want one re-recording for the evicted trace", s)
	}

	// With a store attached, the same fallback is a disk load instead.
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCache()
	cs.Limit = 1
	cs.Store = st
	cs.Profile(hws[0], k1)
	st.Wait() // k1's trace is on disk before it can be evicted
	cs.Profile(hws[0], k2)
	if s := cs.Stats(); s.Evictions != 1 {
		t.Fatalf("store-backed stats = %+v, want 1 eviction", s)
	}
	gotTotal, _ = cs.Profile(hws[1], k1)
	if gotTotal != wantTotal {
		t.Fatal("store-reloaded profile diverges from direct run")
	}
	if s := cs.Stats(); s.Records != 2 || s.StoreHits != 1 {
		t.Fatalf("store-backed stats = %+v, want the eviction refilled from disk (1 store hit, no third record)", s)
	}
	st.Wait() // drain async write-through before TempDir cleanup removes the store dir
}

// TestCacheUnlimitedByDefault: Limit zero must preserve the historical
// grow-without-bound behavior — no evictions ever.
func TestCacheUnlimitedByDefault(t *testing.T) {
	c := NewCache()
	for i := 1; i <= 4; i++ {
		c.Profile(hardwareConfigs()[0], texture.Kernel(64*i, 64, 1))
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("unlimited cache evicted: %+v", s)
	}
	if c.MemBytes() == 0 {
		t.Fatal("accounting not tracking admitted traces")
	}
}
