// Compiled line-stream replay: the fast half of capture-once/replay-many.
//
// A trace's effect on a replay context splits cleanly in two:
//
//   - The line-granularity cache access sequence. Which lines a span
//     touches, in which order, read or write, is a pure function of the
//     recorded geometry and the line size — capacity and associativity
//     never enter — so it is identical for every hardware config sharing a
//     line size.
//   - The counters. Ops/SIMD and explicit Refs are hardware-independent
//     sums; span-derived MemRefs depend only on the replaying hardware's
//     scalar/vector reference widths and the span's (rowBytes, rows).
//
// compile therefore lowers the packed span events once per line size into
// per-phase segments: a run-length-encoded cache.LineStream (consecutive
// same-line accesses collapse to repeat triples, constant-stride line
// walks to stride runs), pre-summed hardware-independent counters, and
// span-ref groups aggregated by (rowBytes, width class). Replaying a
// segment is then SetPhase + AddCounters + O(groups) ref pricing +
// Hierarchy.ReplayStream — the per-event decode switch, buffer
// translation, and per-row line splitting all happen exactly once per
// trace instead of once per replay. Counters commute with memory events
// inside a phase (they only meet at phase-boundary snapshots), so moving
// them to the segment head is exact.
package trace

import (
	"fmt"
	"sync"

	"gopim/internal/cache"
	"gopim/internal/mem"
	"gopim/internal/profile"
)

// compiled is one trace lowered for one line size.
type compiled struct {
	segs []segment
}

// segment covers the events between two phase transitions.
type segment struct {
	phase           string
	ops, simd, refs uint64 // hardware-independent counter sums
	scalar, vector  []refGroup
	stream          cache.LineStream
}

// refGroup aggregates the rows of every span in a segment sharing one
// rowBytes, so replay prices MemRefs per group instead of per event.
type refGroup struct{ rowBytes, rows uint64 }

// addRows accumulates into the group for rowBytes. Segments see a handful
// of distinct row widths, so a linear scan beats a map and keeps
// first-use order (deterministic: it derives from the trace).
func addRows(groups []refGroup, rowBytes, rows uint64) []refGroup {
	for i := range groups {
		if groups[i].rowBytes == rowBytes {
			groups[i].rows += rows
			return groups
		}
	}
	return append(groups, refGroup{rowBytes, rows})
}

// compiledEntry memoizes one line size's compilation with single-flight
// semantics, mirroring trace.Cache's once-per-key pattern.
type compiledEntry struct {
	once sync.Once
	c    *compiled
}

// compile lowers the trace for lineSize, memoizing on the Trace so every
// hardware config with that line size — and every replay — shares one
// compilation. Safe for concurrent use.
func (t *Trace) compile(lineSize uint64) *compiled {
	t.mu.Lock()
	if t.compiledBy == nil {
		t.compiledBy = map[uint64]*compiledEntry{}
	}
	e, ok := t.compiledBy[lineSize]
	if !ok {
		e = &compiledEntry{}
		t.compiledBy[lineSize] = e
	}
	t.mu.Unlock()
	e.once.Do(func() {
		sp := t.Obs.Span("phase.compile")
		e.c = t.compileOnce(lineSize)
		sp.End()
	})
	return e.c
}

// compileOnce walks the packed event stream once, expanding spans to line
// accesses in exactly the order the interpreter (and the live span entry
// points) issue them.
func (t *Trace) compileOnce(lineSize uint64) *compiled {
	c := &compiled{segs: []segment{{phase: ""}}}
	seg := &c.segs[0]
	var b cache.StreamBuilder

	// span mirrors Hierarchy.span: first..last aligned to the compilation's
	// line size (not the global 64 B mem.LineSize — at 128 B lines a 64 B
	// alignment would emit misaligned line addresses), stepped by the line
	// size. Identical at 64 B.
	mask := lineSize - 1
	span := func(addr uint64, n int, write bool) {
		first := addr &^ mask
		last := (addr + uint64(n) - 1) &^ mask
		for line := first; line <= last; line += lineSize {
			b.Access(line, write)
		}
	}

	ev := t.events
	for i := 0; i < len(ev); {
		w := ev[i]
		switch op := w & 0xff; op {
		case opPhase:
			seg.stream = b.Finish()
			c.segs = append(c.segs, segment{phase: t.phases[w>>8]})
			seg = &c.segs[len(c.segs)-1]
			i++
		case opCount:
			seg.ops += ev[i+1]
			seg.simd += ev[i+2]
			seg.refs += ev[i+3]
			i += 4
		case opSpan0 + uint64(profile.OpCopyV), opSpan0 + uint64(profile.OpBlendV):
			sa := t.bases[w>>8&(maxID-1)] + ev[i+1]
			da := t.bases[w>>32&(maxID-1)] + ev[i+2]
			rowBytes, rows := int(ev[i+3]&(max32-1)), int(ev[i+3]>>32)
			srcStride, dstStride := ev[i+4]&(max32-1), ev[i+4]>>32
			perRow := uint64(2)
			blend := op == opSpan0+uint64(profile.OpBlendV)
			if blend {
				perRow = 3
			}
			seg.vector = addRows(seg.vector, uint64(rowBytes), perRow*uint64(rows))
			for r := 0; r < rows; r++ {
				span(sa, rowBytes, false)
				if blend {
					span(da, rowBytes, false)
				}
				span(da, rowBytes, true)
				sa += srcStride
				da += dstStride
			}
			i += 5
		default:
			addr := t.bases[w>>8&(maxID-1)] + ev[i+1]
			rowBytes := int(w >> 32)
			rows, stride := int(ev[i+2]&(max32-1)), ev[i+2]>>32
			var write, vector bool
			switch profile.AccessOp(op - opSpan0) {
			case profile.OpLoad:
			case profile.OpStore:
				write = true
			case profile.OpLoadV:
				vector = true
			case profile.OpStoreV:
				write, vector = true, true
			default:
				panic(fmt.Sprintf("trace: corrupt event opcode %d at word %d", op, i))
			}
			if vector {
				seg.vector = addRows(seg.vector, uint64(rowBytes), uint64(rows))
			} else {
				seg.scalar = addRows(seg.scalar, uint64(rowBytes), uint64(rows))
			}
			for r := 0; r < rows; r++ {
				span(addr, rowBytes, write)
				addr += stride
			}
			i += 3
		}
	}
	seg.stream = b.Finish()
	return c
}

// replayCompiled drives the compiled form through a fresh context.
func (t *Trace) replayCompiled(hw profile.Hardware) (profile.Profile, map[string]profile.Profile) {
	ls := hw.L1.LineSize
	if ls == 0 {
		ls = mem.LineSize
	}
	c := t.compile(uint64(ls))
	ctx := profile.NewCtx(hw)
	for i := range c.segs {
		seg := &c.segs[i]
		ctx.SetPhase(seg.phase)
		ctx.AddCounters(seg.ops, seg.simd, seg.refs)
		for _, g := range seg.scalar {
			ctx.AddSpanRefs(g.rowBytes, g.rows, false)
		}
		for _, g := range seg.vector {
			ctx.AddSpanRefs(g.rowBytes, g.rows, true)
		}
		ctx.ReplayLines(&seg.stream)
	}
	return ctx.Finish()
}

// CompiledTrace is a handle on one trace lowered for one line size — the
// unit a multi-config sweep shares: every hardware config with that line
// size replays the same segments and the same line streams. Obtain one via
// Trace.Compiled; the zero value is not usable.
type CompiledTrace struct {
	t        *Trace
	c        *compiled
	lineSize uint64
}

// Compiled returns the trace lowered for lineSize, compiling it on first
// use (memoized on the Trace, single-flight, shared by every replay).
func (t *Trace) Compiled(lineSize uint64) CompiledTrace {
	return CompiledTrace{t: t, c: t.compile(lineSize), lineSize: lineSize}
}

// LineSize returns the line size this compilation was lowered for.
func (ct CompiledTrace) LineSize() uint64 { return ct.lineSize }

// BatchResult is one hardware config's replay outcome.
type BatchResult struct {
	Profile profile.Profile
	Phases  map[string]profile.Profile
}

// ReplayBatch replays the compiled trace against all of hws in one walk:
// per segment it fans the pre-summed counters and span-ref groups out to
// every config's context and then drives the segment's line stream through
// all K hierarchies via the batched stream walker (profile.CtxBatch /
// cache.HierarchySet), decoding each RLE run once instead of once per
// config. Results are index-aligned with hws and byte-identical to K
// independent Trace.Replay calls.
//
// Every config's line size must equal the compilation's (that is the
// sharing contract); ReplayBatch panics otherwise, mirroring the cache
// layer's constructor checks.
func (ct CompiledTrace) ReplayBatch(hws []profile.Hardware) []BatchResult {
	for _, hw := range hws {
		ls := hw.L1.LineSize
		if ls == 0 {
			ls = mem.LineSize
		}
		if uint64(ls) != ct.lineSize {
			panic(fmt.Sprintf("trace: ReplayBatch config line size %d != compiled line size %d", ls, ct.lineSize))
		}
	}
	defer ct.t.Obs.Span("phase.replay.batch").End()
	batch := profile.NewCtxBatch(hws)
	for i := range ct.c.segs {
		seg := &ct.c.segs[i]
		batch.SetPhase(seg.phase)
		batch.AddCounters(seg.ops, seg.simd, seg.refs)
		for _, g := range seg.scalar {
			batch.AddSpanRefs(g.rowBytes, g.rows, false)
		}
		for _, g := range seg.vector {
			batch.AddSpanRefs(g.rowBytes, g.rows, true)
		}
		batch.ReplayLines(&seg.stream)
	}
	profs, phases := batch.Finish()
	out := make([]BatchResult, len(hws))
	for i := range out {
		out[i] = BatchResult{Profile: profs[i], Phases: phases[i]}
	}
	return out
}

// ReplayBatch replays the trace against all of hws, which must share one
// line size, in a single batched walk (see CompiledTrace.ReplayBatch).
// Callers with mixed line sizes group configs by line size and call once
// per group.
func (t *Trace) ReplayBatch(hws []profile.Hardware) []BatchResult {
	if len(hws) == 0 {
		return nil
	}
	ls := hws[0].L1.LineSize
	if ls == 0 {
		ls = mem.LineSize
	}
	return t.Compiled(uint64(ls)).ReplayBatch(hws)
}

// CompiledWords returns the size in 8-byte words of the compiled line
// streams for lineSize (compiling if needed) — for tests and size
// accounting alongside Trace.Words.
func (t *Trace) CompiledWords(lineSize uint64) int {
	c := t.compile(lineSize)
	n := 0
	for i := range c.segs {
		n += c.segs[i].stream.Words()
	}
	return n
}
