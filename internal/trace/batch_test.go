package trace

import (
	"os"
	"reflect"
	"testing"

	"gopim/internal/browser"
	"gopim/internal/cache"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

// sweepL2Family returns the K=8 same-line-size config family the tentpole's
// headline number is measured on: one L1 geometry (the SoC's 64 kB 4-way)
// fanned over eight LLC geometries — the shape a cache-geometry sweep
// produces, and the one batched replay accelerates most (a single shared
// L1 group).
func sweepL2Family() []profile.Hardware {
	var hws []profile.Hardware
	for _, ways := range []int{8, 16} {
		for _, size := range []int{1 << 20, 2 << 20, 4 << 20, 8 << 20} {
			l2 := cache.Config{Name: "LLC", Size: size, Ways: ways}
			hws = append(hws, profile.Hardware{
				Name: "sweep",
				L1:   cache.Config{Name: "L1D", Size: 64 << 10, Ways: 4},
				L2:   &l2,
			})
		}
	}
	return hws
}

// mixedConfigSet exercises the general case: several L1 groups, members
// with and without an L2, and differing reference widths.
func mixedConfigSet() []profile.Hardware {
	soc := profile.SoC()
	pim := profile.PIMCore()
	acc := profile.PIMAcc()
	wide := profile.PIMCore()
	wide.VectorRef = 32
	l2 := cache.Config{Name: "LLC", Size: 1 << 20, Ways: 8}
	return []profile.Hardware{
		soc, pim, acc, wide,
		{Name: "small", L1: cache.Config{Name: "L1", Size: 16 << 10, Ways: 4}, L2: &l2},
		soc, // duplicate config: must price identically to its twin
	}
}

func recordedTexture(b testing.TB, w, h int) *Trace {
	k := texture.Kernel(w, h, 1)
	rec := NewRecorder(k.Name())
	profile.Record(profile.SoC(), k, rec)
	return rec.Finish()
}

// TestReplayBatchMatchesReplay is the trace-layer equivalence gate:
// ReplayBatch must return, per config, exactly what an independent
// Trace.Replay returns — profile and per-phase map.
func TestReplayBatchMatchesReplay(t *testing.T) {
	tr := recordedTexture(t, 256, 256)
	for name, hws := range map[string][]profile.Hardware{
		"l2family": sweepL2Family(),
		"mixed":    mixedConfigSet(),
	} {
		got := tr.ReplayBatch(hws)
		if len(got) != len(hws) {
			t.Fatalf("%s: %d results for %d configs", name, len(got), len(hws))
		}
		for i, hw := range hws {
			wantProf, wantPhases := tr.Replay(hw)
			if got[i].Profile != wantProf {
				t.Errorf("%s config %d (%s): batch profile diverged:\nbatch  %+v\nserial %+v",
					name, i, HardwareKey(hw), got[i].Profile, wantProf)
			}
			if !reflect.DeepEqual(got[i].Phases, wantPhases) {
				t.Errorf("%s config %d (%s): batch phase map diverged", name, i, HardwareKey(hw))
			}
		}
	}
}

// TestReplayBatchWideLines covers the 128 B-line path end to end: configs
// compiled and replayed at a non-default line size must match their serial
// replays (which share the same compilation).
func TestReplayBatchWideLines(t *testing.T) {
	tr := recordedTexture(t, 256, 256)
	l2 := cache.Config{Name: "LLC", Size: 2 << 20, Ways: 8, LineSize: 128}
	hws := []profile.Hardware{
		{Name: "wide", L1: cache.Config{Name: "L1D", Size: 64 << 10, Ways: 4, LineSize: 128}, L2: &l2},
		{Name: "wide-pim", L1: cache.Config{Name: "PIM-L1", Size: 32 << 10, Ways: 4, LineSize: 128}},
	}
	got := tr.ReplayBatch(hws)
	for i, hw := range hws {
		wantProf, wantPhases := tr.Replay(hw)
		if got[i].Profile != wantProf || !reflect.DeepEqual(got[i].Phases, wantPhases) {
			t.Errorf("config %d (%s): 128 B batch replay diverged from serial", i, HardwareKey(hw))
		}
	}
	// 128 B lines halve the event count of sequential walks but move 128
	// bytes per event: traffic must be accounted at the hierarchy's line
	// size, not the global 64 B default.
	if got[0].Profile.Mem.Total() == 0 {
		t.Fatalf("wide-line config saw no memory traffic")
	}
}

// TestReplayBatchPanicsOnMixedLineSizes pins the grouping contract.
func TestReplayBatchPanicsOnMixedLineSizes(t *testing.T) {
	tr := recordedTexture(t, 64, 64)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for mixed line sizes in one batch")
		}
	}()
	tr.ReplayBatch([]profile.Hardware{
		{Name: "a", L1: cache.Config{Name: "L1", Size: 64 << 10, Ways: 4}},
		{Name: "b", L1: cache.Config{Name: "L1", Size: 64 << 10, Ways: 4, LineSize: 128}},
	})
}

// TestTraceForRecordsOnce checks TraceFor's memoization: one kernel
// execution across any number of calls, shared with Profile's slot.
func TestTraceForRecordsOnce(t *testing.T) {
	c := NewCache()
	k := texture.Kernel(64, 64, 1)
	tr1 := c.TraceFor(k)
	tr2 := c.TraceFor(k)
	if tr1 != tr2 {
		t.Fatalf("TraceFor returned distinct traces for one keyed kernel")
	}
	if got := c.Stats().Records; got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
	// Profile must reuse the recording TraceFor made, not re-record.
	c.Profile(profile.PIMCore(), k)
	if got := c.Stats().Records; got != 1 {
		t.Fatalf("records after Profile = %d, want 1", got)
	}
	// Unkeyed kernels have no identity to memoize on: fresh trace per call.
	unkeyed := profile.KernelFunc{KernelName: "anon", Fn: func(ctx *profile.Ctx) {
		b := ctx.Alloc("b", 4096)
		ctx.Load(b, 0, 4096)
	}}
	u1, u2 := c.TraceFor(unkeyed), c.TraceFor(unkeyed)
	if u1 == u2 {
		t.Fatalf("TraceFor memoized an unkeyed kernel")
	}
}

// batchSerialOps returns the two operations the ≥2x acceptance criterion
// compares: one batched walk of the K=8 sweep family vs K independent
// serial replays of the same compiled trace.
//
// The trace is Chrome tab compression: an L1-resident kernel (~88% L1 hit
// rate), so the serial path spends most of each pass re-walking the same L1
// — the work one shared lead-L1 walk amortizes across the family. Streaming
// kernels with ~100% L1 miss rates (texture tiling at this scale) are
// bounded by per-config L2/DRAM modelling instead, which no walk sharing
// can remove; their batch win is the decode/bookkeeping hoist only.
func batchSerialOps(tb testing.TB) (batch, serial func()) {
	k := browser.CompressKernel(128, 9)
	rec := NewRecorder(k.Name())
	profile.Record(profile.SoC(), k, rec)
	tr := rec.Finish()
	hws := sweepL2Family()
	tr.Compiled(64) // lower once up front; both paths share the compilation
	batch = func() { tr.ReplayBatch(hws) }
	serial = func() {
		for _, hw := range hws {
			tr.Replay(hw)
		}
	}
	return batch, serial
}

// BenchmarkTraceReplayBatch measures one batched walk pricing the K=8
// same-line-size sweep family — the headline configs-per-walk number.
// Compare against BenchmarkTraceReplaySerial8.
func BenchmarkTraceReplayBatch(b *testing.B) {
	batch, _ := batchSerialOps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch()
	}
}

// BenchmarkTraceReplaySerial8 prices the same 8 configs as 8 independent
// ReplayStream walks — the path a sweep paid before batched replay.
func BenchmarkTraceReplaySerial8(b *testing.B) {
	_, serial := batchSerialOps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial()
	}
}

// TestBatchReplaySpeedup is the perf acceptance gate: batched replay of the
// K=8 family must be at least 2x faster than 8 serial replays. Timing gates
// are load-sensitive, so it only runs when GOPIM_PERF_GATE is set
// (scripts/check.sh sets it).
func TestBatchReplaySpeedup(t *testing.T) {
	if os.Getenv("GOPIM_PERF_GATE") == "" {
		t.Skip("set GOPIM_PERF_GATE=1 to run the batched-replay perf gate")
	}
	batch, serial := batchSerialOps(t)
	rb := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch()
		}
	})
	rs := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial()
		}
	})
	speedup := float64(rs.NsPerOp()) / float64(rb.NsPerOp())
	t.Logf("batch %d ns/op, serial %d ns/op: %.2fx", rb.NsPerOp(), rs.NsPerOp(), speedup)
	if speedup < 2 {
		t.Fatalf("batched replay speedup %.2fx < 2x (batch %d ns/op, serial-8 %d ns/op)",
			speedup, rb.NsPerOp(), rs.NsPerOp())
	}
}
