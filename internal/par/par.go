// Package par provides the bounded worker pool used to parallelize the
// experiment pipeline. All fan-out in this codebase follows one rule: each
// unit of work owns its model state (mem.Space, cache.Hierarchy, energy
// accumulators) and writes only to its own index of a result slice, so a
// parallel run computes bit-identical results to a serial one.
//
// Workers(0) resolves to GOMAXPROCS, and ForEach/Map with workers <= 1 run
// inline in index order — that degenerate case IS the serial reference
// path, not an approximation of it.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gopim/internal/obs"
)

// obsReg is the registry worker busy/idle time is reported to, nil (no
// accounting at all) by default. Package-level because ForEach call sites
// are spread across the tree and threading a registry through each would
// dwarf the feature; an atomic pointer keeps SetObs safe at any time.
var obsReg atomic.Pointer[obs.Registry]

// SetObs directs worker-utilization metrics (par.worker.busy_ns /
// par.worker.idle_ns) at r; nil turns accounting off. The inline serial
// path is timed too (busy only — one worker never idles), so a run on a
// single-core host (where ForEach degrades to the inline path) still
// reports a real, nonzero utilization instead of the 0/0 ratio the pr8
// bench records carried. Timing never feeds results: the serial path's
// output stays bit-identical with accounting on or off.
func SetObs(r *obs.Registry) { obsReg.Store(r) }

// Workers resolves a worker-count override: values > 0 are used as given,
// anything else (0 or negative) means GOMAXPROCS.
func Workers(override int) int {
	if override > 0 {
		return override
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines (capped at GOMAXPROCS: extra goroutines cannot run
// concurrently anyway and their scheduling overhead is measurable).
// Indices are handed out through a shared counter in chunks of
// several indices — about four chunks per worker — so uneven work items
// still balance across workers while small, uniform items don't pay a
// counter handoff each: with tiny units the per-index atomic (and the cache
// line it bounces) used to cost more than the work itself. With workers <= 1
// (or n == 1) it runs inline, in index order, on the calling goroutine.
//
// A panic in fn propagates to the caller after all workers have stopped,
// matching the behaviour of the same panic in a serial loop.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	// Goroutines beyond the schedulable parallelism can't run concurrently;
	// they only add scheduler handoffs (BenchmarkParMap showed workers=8
	// trailing workers=1 on a single-core host for exactly this reason), so
	// cap at GOMAXPROCS — on one core that lands in the inline serial path.
	// Capping changes nothing about results: each index still writes only
	// its own slot, so any worker count is bit-identical.
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers <= 1 || n == 1 {
		if reg := obsReg.Load(); reg != nil {
			busy := reg.Counter("par.worker.busy_ns")
			t0 := obs.Now()
			for i := 0; i < n; i++ {
				fn(i)
			}
			busy.Add(obs.Since(t0))
			return
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	// Resolve the utilization counters once per ForEach, not per chunk: when
	// observability is off (the default) workers pay a single nil check, and
	// when it is on the hot loop does two clock reads per chunk plus a local
	// add — the shared counters are only touched once per worker, at exit.
	var busyCtr, idleCtr *obs.Counter
	if reg := obsReg.Load(); reg != nil {
		busyCtr = reg.Counter("par.worker.busy_ns")
		idleCtr = reg.Counter("par.worker.idle_ns")
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicOne sync.Once
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var workerStart, busyNS int64
			if busyCtr != nil {
				workerStart = obs.Now()
				defer func() {
					busyCtr.Add(busyNS)
					idleCtr.Add(obs.Since(workerStart) - busyNS)
				}()
			}
			defer func() {
				if r := recover(); r != nil {
					panicOne.Do(func() { panicked = r })
					// Drain remaining indices so sibling workers exit
					// promptly instead of starting doomed work.
					next.Store(int64(n))
				}
			}()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				if busyCtr != nil {
					t0 := obs.Now()
					for i := start; i < end; i++ {
						fn(i)
					}
					busyNS += obs.Since(t0)
					continue
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map runs fn(i) for every i in [0, n) on a bounded pool and collects the
// results into an index-addressed slice: out[i] is always fn(i), whatever
// order the pool ran them in.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
