package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"gopim/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-1); got != want {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out := Map(workers, 50, func(i int) int { return i * i })
		if len(out) != 50 {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("ForEach ran fn for n <= 0")
	}
}

func TestSerialPathIsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

// TestForEachCapsWorkersAtGOMAXPROCS pins the oversubscription fix: with
// one schedulable core, any worker count degenerates to the inline serial
// path, observable through its in-order execution guarantee.
func TestForEachCapsWorkersAtGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	var order []int
	ForEach(8, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("capped ForEach not inline/in order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 indices", len(order))
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 42 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForEachWorkerAccounting pins the utilization metrics on both paths:
// with a registry attached and enough schedulable parallelism to escape the
// inline path, every worker reports busy time; and the inline serial path
// (GOMAXPROCS=1) reports busy time too — no idle — so a single-core run
// derives utilization 1 instead of the 0/0 ratio pr8's bench recorded.
func TestForEachWorkerAccounting(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	reg := obs.NewRegistry()
	SetObs(reg)
	defer SetObs(nil)

	var sum atomic.Int64
	ForEach(4, 64, func(i int) {
		acc := 0
		for j := 0; j < 20000; j++ {
			acc += j ^ i
		}
		sum.Add(int64(acc))
	})

	snap := reg.Snapshot()
	if snap.Counters["par.worker.busy_ns"] <= 0 {
		t.Error("pooled ForEach recorded no busy time")
	}
	if snap.Counters["par.worker.idle_ns"] < 0 {
		t.Error("negative idle time")
	}

	runtime.GOMAXPROCS(1)
	ForEach(4, 16, func(i int) {
		acc := 0
		for j := 0; j < 20000; j++ {
			acc += j ^ i
		}
		sum.Add(int64(acc))
	})
	after := reg.Snapshot()
	if after.Counters["par.worker.busy_ns"] <= snap.Counters["par.worker.busy_ns"] {
		t.Error("inline serial path recorded no busy time")
	}
	if after.Counters["par.worker.idle_ns"] != snap.Counters["par.worker.idle_ns"] {
		t.Error("inline serial path recorded idle time (one worker never idles)")
	}
	_ = sum.Load()
}
