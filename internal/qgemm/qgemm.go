// Package qgemm is a from-scratch quantized GEMM library modelled on
// gemmlowp, the low-precision matrix library TensorFlow Mobile builds on
// (paper §5). It provides the full pipeline the paper analyzes:
//
//   - Quantize: 32-bit floats → 8-bit integers (two passes: min/max scan,
//     then conversion) — Figure 8's steps 1–2.
//   - Pack/Unpack: reorder matrix chunks into the kernel's cache-friendly
//     panel layout and back — the "packing" PIM target.
//   - GEMM: uint8 × uint8 → int32 with a small fixed-size micro-kernel.
//   - Requantize: the int32 result matrix → 8-bit — Figure 8's steps 3–4.
package qgemm

import "fmt"

// QParams is an affine quantization: real = Min + Scale*q.
type QParams struct {
	Min   float32
	Scale float32
}

// Dequant returns the real value of quantized level q.
func (p QParams) Dequant(q uint8) float32 { return p.Min + p.Scale*float32(q) }

// Quantize converts a float32 tensor to uint8 levels. It scans src twice —
// once for the min/max range, once to convert — exactly the data movement
// pattern the paper identifies (§5.3).
func Quantize(src []float32) ([]uint8, QParams) {
	dst := make([]uint8, len(src))
	p := QuantizeInto(dst, src)
	return dst, p
}

// QuantizeInto is Quantize into a caller-provided destination.
func QuantizeInto(dst []uint8, src []float32) QParams {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("qgemm: dst %d < src %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		return QParams{Scale: 1}
	}
	// Pass 1: min/max scan.
	lo, hi := src[0], src[0]
	for _, v := range src[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	p := QParams{Min: lo, Scale: (hi - lo) / 255}
	if p.Scale == 0 {
		p.Scale = 1
	}
	// Pass 2: convert each element.
	inv := 1 / p.Scale
	for i, v := range src {
		q := int32((v-lo)*inv + 0.5)
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = uint8(q)
	}
	return p
}

// Dequantize expands quantized levels back to float32.
func Dequantize(src []uint8, p QParams) []float32 {
	out := make([]float32, len(src))
	for i, q := range src {
		out[i] = p.Dequant(q)
	}
	return out
}

// Requantize converts a GEMM result matrix (int32 accumulators) to uint8,
// again with a min/max scan followed by a conversion pass (the
// re-quantization step of Figure 8).
func Requantize(src []int32) ([]uint8, QParams) {
	dst := make([]uint8, len(src))
	p := RequantizeInto(dst, src)
	return dst, p
}

// RequantizeInto is Requantize into a caller-provided destination.
func RequantizeInto(dst []uint8, src []int32) QParams {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("qgemm: dst %d < src %d", len(dst), len(src)))
	}
	if len(src) == 0 {
		return QParams{Scale: 1}
	}
	lo, hi := src[0], src[0]
	for _, v := range src[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := float32(hi - lo)
	scale := span / 255
	if scale == 0 {
		scale = 1
	}
	inv := 1 / scale
	for i, v := range src {
		q := int32(float32(v-lo)*inv + 0.5)
		if q < 0 {
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = uint8(q)
	}
	return QParams{Min: float32(lo), Scale: scale}
}

// Matrix is a row-major uint8 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []uint8
}

// NewMatrix allocates a zeroed matrix.
func NewMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("qgemm: bad matrix %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]uint8, rows*cols)}
}

// At returns element (r, c).
func (m Matrix) At(r, c int) uint8 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m Matrix) Set(r, c int, v uint8) { m.Data[r*m.Cols+c] = v }
