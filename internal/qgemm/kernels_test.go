package qgemm

import (
	"testing"

	"gopim/internal/profile"
)

func TestPackKernelProfile(t *testing.T) {
	total, phases := profile.Run(profile.SoC(), PackKernel(256, 256, 256, 1))
	p, ok := phases["packing"]
	if !ok {
		t.Fatal("no packing phase")
	}
	if p.Mem.Total() == 0 {
		t.Error("packing produced no memory traffic")
	}
	// Packing reads each matrix once and writes the packed copy: traffic
	// should be at least the matrices' footprint once they exceed caches.
	if total.Instructions() == 0 {
		t.Error("no instructions")
	}
	// Data movement should dominate packing energy (paper: 82.1%).
	if p.MemRefs == 0 || p.Ops == 0 {
		t.Errorf("packing refs/ops = %d/%d; both must be nonzero", p.MemRefs, p.Ops)
	}
}

func TestPackKernelChunksScale(t *testing.T) {
	one, _ := profile.Run(profile.SoC(), PackKernel(64, 64, 64, 1))
	four, _ := profile.Run(profile.SoC(), PackKernel(64, 64, 64, 4))
	if four.Instructions() <= 3*one.Instructions() {
		t.Errorf("4 chunks = %d instr vs 1 chunk %d; expected ~4x", four.Instructions(), one.Instructions())
	}
}

func TestQuantizeKernelProfile(t *testing.T) {
	// 768x768 float32 (2.25 MiB) exceeds the 2 MiB LLC, so both scan
	// passes reach memory — the behaviour the paper reports for large
	// matrices.
	_, phases := profile.Run(profile.SoC(), QuantizeKernel(768, 768, 768, 1))
	p, ok := phases["quantization"]
	if !ok {
		t.Fatal("no quantization phase")
	}
	footprint := uint64(768*768*4) * 2 // f32 input + i32 result
	if p.Mem.BytesRead < footprint*3/2 {
		t.Errorf("quantization read %d bytes from memory, want >= %d (both matrices scanned twice, beyond LLC)",
			p.Mem.BytesRead, footprint*3/2)
	}
	if p.SIMDOps == 0 {
		t.Error("quantization recorded no SIMD conversion work")
	}
}

func TestQuantizeKernelMPKI(t *testing.T) {
	// The paper's criterion: quantization at realistic matrix sizes is
	// memory-intensive (MPKI > 10).
	_, phases := profile.Run(profile.SoC(), QuantizeKernel(768, 768, 768, 1))
	p := phases["quantization"]
	if mpki := p.LLCMPKI(); mpki < 10 {
		t.Errorf("quantization LLC MPKI = %.1f, want > 10", mpki)
	}
}

func TestQuantizeKernelSmallMatrixCacheResident(t *testing.T) {
	// A 128x128 matrix set fits in the LLC: the second scan must not reach
	// memory, so total reads stay near one footprint.
	_, phases := profile.Run(profile.SoC(), QuantizeKernel(128, 128, 128, 1))
	p := phases["quantization"]
	footprint := uint64(128*128*4) * 2
	if p.Mem.BytesRead > footprint*3/2 {
		t.Errorf("cache-resident quantization read %d bytes, want <= %d", p.Mem.BytesRead, footprint*3/2)
	}
}
