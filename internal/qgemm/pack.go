package qgemm

import "fmt"

// Micro-kernel geometry, as in gemmlowp's small fixed-size kernels: the
// inner kernel multiplies an MR-row LHS panel by an NR-column RHS panel.
const (
	MR = 4 // rows per LHS panel
	NR = 4 // columns per RHS panel
)

// PackedLHS holds the left-hand matrix reordered into row panels: panel i
// holds rows [i*MR, i*MR+MR) interleaved by depth, so the kernel streams it
// sequentially. Ragged edges are zero-padded.
type PackedLHS struct {
	Rows, Depth int
	Panels      int
	Data        []uint8 // Panels * Depth * MR bytes
}

// PackedRHS holds the right-hand matrix reordered into column panels.
type PackedRHS struct {
	Depth, Cols int
	Panels      int
	Data        []uint8 // Panels * Depth * NR bytes
}

// PackLHS reorders lhs (Rows x Depth) into panel layout.
func PackLHS(lhs Matrix) PackedLHS {
	panels := (lhs.Rows + MR - 1) / MR
	p := PackedLHS{Rows: lhs.Rows, Depth: lhs.Cols, Panels: panels, Data: make([]uint8, panels*lhs.Cols*MR)}
	PackLHSInto(p.Data, lhs)
	return p
}

// PackLHSInto packs lhs into dst, which must hold PackedLHSSize(lhs) bytes.
func PackLHSInto(dst []uint8, lhs Matrix) {
	need := PackedLHSSize(lhs.Rows, lhs.Cols)
	if len(dst) < need {
		panic(fmt.Sprintf("qgemm: packed LHS dst %d < %d", len(dst), need))
	}
	panels := (lhs.Rows + MR - 1) / MR
	depth := lhs.Cols
	for panel := 0; panel < panels; panel++ {
		base := panel * depth * MR
		for k := 0; k < depth; k++ {
			for r := 0; r < MR; r++ {
				row := panel*MR + r
				var v uint8
				if row < lhs.Rows {
					v = lhs.Data[row*depth+k]
				}
				dst[base+k*MR+r] = v
			}
		}
	}
}

// PackedLHSSize returns the packed byte size of a rows x depth LHS.
func PackedLHSSize(rows, depth int) int {
	return ((rows + MR - 1) / MR) * depth * MR
}

// PackRHS reorders rhs (Depth x Cols) into panel layout. Reading the source
// column-wise gives packing its cache-unfriendly access pattern (§5.3).
func PackRHS(rhs Matrix) PackedRHS {
	panels := (rhs.Cols + NR - 1) / NR
	p := PackedRHS{Depth: rhs.Rows, Cols: rhs.Cols, Panels: panels, Data: make([]uint8, panels*rhs.Rows*NR)}
	PackRHSInto(p.Data, rhs)
	return p
}

// PackRHSInto packs rhs into dst, which must hold PackedRHSSize bytes.
func PackRHSInto(dst []uint8, rhs Matrix) {
	need := PackedRHSSize(rhs.Rows, rhs.Cols)
	if len(dst) < need {
		panic(fmt.Sprintf("qgemm: packed RHS dst %d < %d", len(dst), need))
	}
	panels := (rhs.Cols + NR - 1) / NR
	depth := rhs.Rows
	for panel := 0; panel < panels; panel++ {
		base := panel * depth * NR
		for k := 0; k < depth; k++ {
			for c := 0; c < NR; c++ {
				col := panel*NR + c
				var v uint8
				if col < rhs.Cols {
					v = rhs.Data[k*rhs.Cols+col]
				}
				dst[base+k*NR+c] = v
			}
		}
	}
}

// PackedRHSSize returns the packed byte size of a depth x cols RHS.
func PackedRHSSize(depth, cols int) int {
	return ((cols + NR - 1) / NR) * depth * NR
}

// UnpackLHS restores the original row-major matrix from packed layout
// (the "unpacking" step applied to result chunks in gemmlowp; exercised
// here on LHS panels so the pair is a proven bijection).
func UnpackLHS(p PackedLHS) Matrix {
	m := NewMatrix(p.Rows, p.Depth)
	for panel := 0; panel < p.Panels; panel++ {
		base := panel * p.Depth * MR
		for k := 0; k < p.Depth; k++ {
			for r := 0; r < MR; r++ {
				row := panel*MR + r
				if row < p.Rows {
					m.Data[row*p.Depth+k] = p.Data[base+k*MR+r]
				}
			}
		}
	}
	return m
}

// UnpackResultInto converts a panel-ordered int32 result (as the micro-
// kernel produces it: per (rowPanel, colPanel) an MRxNR block) into a
// row-major int32 matrix. rows x cols give the logical result size.
func UnpackResultInto(dst []int32, panelled []int32, rows, cols int) {
	rowPanels := (rows + MR - 1) / MR
	colPanels := (cols + NR - 1) / NR
	if len(dst) < rows*cols {
		panic(fmt.Sprintf("qgemm: unpack dst %d < %d", len(dst), rows*cols))
	}
	if len(panelled) < rowPanels*colPanels*MR*NR {
		panic(fmt.Sprintf("qgemm: panelled src %d < %d", len(panelled), rowPanels*colPanels*MR*NR))
	}
	for rp := 0; rp < rowPanels; rp++ {
		for cp := 0; cp < colPanels; cp++ {
			block := (rp*colPanels + cp) * MR * NR
			for r := 0; r < MR; r++ {
				row := rp*MR + r
				if row >= rows {
					break
				}
				for c := 0; c < NR; c++ {
					col := cp*NR + c
					if col >= cols {
						break
					}
					dst[row*cols+col] = panelled[block+r*NR+c]
				}
			}
		}
	}
}
