package qgemm

import "fmt"

// GEMM computes C = (A - lhsZero) x (B - rhsZero) over packed operands,
// writing a row-major int32 result. A is Rows x Depth, B is Depth x Cols.
// Zero points implement the affine quantization scheme: a quantized level q
// represents the real value Min + Scale*q, and gemmlowp folds the offsets
// into the integer kernel the same way.
func GEMM(lhs PackedLHS, rhs PackedRHS, lhsZero, rhsZero int32) []int32 {
	if lhs.Depth != rhs.Depth {
		panic(fmt.Sprintf("qgemm: depth mismatch %d vs %d", lhs.Depth, rhs.Depth))
	}
	panelled := gemmPanels(lhs, rhs, lhsZero, rhsZero)
	out := make([]int32, lhs.Rows*rhs.Cols)
	UnpackResultInto(out, panelled, lhs.Rows, rhs.Cols)
	return out
}

// GEMMPanels runs the micro-kernel over every panel pair, producing the
// panel-ordered result (one MRxNR block per (rowPanel, colPanel)) that
// UnpackResultInto restores to row-major order. Callers that account the
// unpack step separately (the TensorFlow pipeline) use this directly.
func GEMMPanels(lhs PackedLHS, rhs PackedRHS, lhsZero, rhsZero int32) []int32 {
	if lhs.Depth != rhs.Depth {
		panic(fmt.Sprintf("qgemm: depth mismatch %d vs %d", lhs.Depth, rhs.Depth))
	}
	return gemmPanels(lhs, rhs, lhsZero, rhsZero)
}

// gemmPanels runs the micro-kernel over every panel pair, producing the
// panel-ordered result (one MRxNR block per (rowPanel, colPanel)).
func gemmPanels(lhs PackedLHS, rhs PackedRHS, lhsZero, rhsZero int32) []int32 {
	out := make([]int32, lhs.Panels*rhs.Panels*MR*NR)
	depth := lhs.Depth
	for rp := 0; rp < lhs.Panels; rp++ {
		a := lhs.Data[rp*depth*MR:]
		for cp := 0; cp < rhs.Panels; cp++ {
			b := rhs.Data[cp*depth*NR:]
			block := out[(rp*rhs.Panels+cp)*MR*NR:]
			microKernel(block[:MR*NR], a, b, depth, lhsZero, rhsZero)
		}
	}
	return out
}

// microKernel accumulates one MRxNR block: acc[r][c] += (a[k][r]-za)*(b[k][c]-zb).
func microKernel(acc []int32, a, b []uint8, depth int, za, zb int32) {
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	var c20, c21, c22, c23 int32
	var c30, c31, c32, c33 int32
	for k := 0; k < depth; k++ {
		a0 := int32(a[k*MR+0]) - za
		a1 := int32(a[k*MR+1]) - za
		a2 := int32(a[k*MR+2]) - za
		a3 := int32(a[k*MR+3]) - za
		b0 := int32(b[k*NR+0]) - zb
		b1 := int32(b[k*NR+1]) - zb
		b2 := int32(b[k*NR+2]) - zb
		b3 := int32(b[k*NR+3]) - zb
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// GEMMReference is a naive row-major reference multiply used by tests.
func GEMMReference(lhs, rhs Matrix, lhsZero, rhsZero int32) []int32 {
	if lhs.Cols != rhs.Rows {
		panic(fmt.Sprintf("qgemm: depth mismatch %d vs %d", lhs.Cols, rhs.Rows))
	}
	out := make([]int32, lhs.Rows*rhs.Cols)
	for r := 0; r < lhs.Rows; r++ {
		for c := 0; c < rhs.Cols; c++ {
			var acc int32
			for k := 0; k < lhs.Cols; k++ {
				acc += (int32(lhs.At(r, k)) - lhsZero) * (int32(rhs.At(k, c)) - rhsZero)
			}
			out[r*rhs.Cols+c] = acc
		}
	}
	return out
}
