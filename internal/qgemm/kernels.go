package qgemm

import (
	"fmt"
	"math/rand"

	"gopim/internal/mem"
	"gopim/internal/profile"
)

// PackKernel returns the instrumented matrix packing PIM target: packing an
// M x K LHS and a K x N RHS into panel layout, then unpacking an M x N
// result back to row-major order, repeated for each GEMM chunk — the data
// reorganization work gemmlowp performs around every kernel invocation.
func PackKernel(m, k, n, chunks int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("packing %dx%dx%d", m, k, n),
		Key:        fmt.Sprintf("qgemm-pack %dx%dx%d c%d", m, k, n, chunks),
		Fn: func(ctx *profile.Ctx) {
			for c := 0; c < chunks; c++ {
				packOnce(ctx, m, k, n, int64(c+1))
			}
		},
	}
}

func packOnce(ctx *profile.Ctx, m, k, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	lhsBuf := ctx.Alloc("lhs", m*k)
	rhsBuf := ctx.Alloc("rhs", k*n)
	lhsPacked := ctx.Alloc("lhs packed", PackedLHSSize(m, k))
	rhsPacked := ctx.Alloc("rhs packed", PackedRHSSize(k, n))
	resPanels := ctx.Alloc("result panels", ((m+MR-1)/MR)*((n+NR-1)/NR)*MR*NR*4)
	resOut := ctx.Alloc("result", m*n*4)

	ctx.SetPhase("generate")
	rng.Read(lhsBuf.Data)
	rng.Read(rhsBuf.Data)
	ctx.StoreV(lhsBuf, 0, m*k)
	ctx.StoreV(rhsBuf, 0, k*n)

	ctx.SetPhase("packing")
	lhs := Matrix{Rows: m, Cols: k, Data: lhsBuf.Data}
	PackLHSInto(lhsPacked.Data, lhs)
	lhsPanels := (m + MR - 1) / MR
	for panel := 0; panel < lhsPanels; panel++ {
		rows := MR
		if panel*MR+rows > m {
			rows = m - panel*MR
		}
		ctx.LoadSpanV(lhsBuf, panel*MR*k, k, rows, k)
		ctx.StoreV(lhsPacked, panel*k*MR, k*MR)
		ctx.Ops(k) // interleaving index arithmetic
	}

	rhs := Matrix{Rows: k, Cols: n, Data: rhsBuf.Data}
	PackRHSInto(rhsPacked.Data, rhs)
	TraceRHSPack(ctx, rhsBuf, rhsPacked, k, n)

	// Unpack a result chunk (int32) back into row-major order.
	panelled := make([]int32, ((m+MR-1)/MR)*((n+NR-1)/NR)*MR*NR)
	for i := range panelled {
		panelled[i] = int32(i)
	}
	flat := make([]int32, m*n)
	UnpackResultInto(flat, panelled, m, n)
	rowPanels := (m + MR - 1) / MR
	colPanels := (n + NR - 1) / NR
	for rp := 0; rp < rowPanels; rp++ {
		rows := MR
		if rp*MR+rows > m {
			rows = m - rp*MR
		}
		for cp := 0; cp < colPanels; cp++ {
			ctx.LoadV(resPanels, (rp*colPanels+cp)*MR*NR*4, MR*NR*4)
			ctx.StoreSpan(resOut, (rp*MR*n+cp*NR)*4, NR*4, rows, n*4)
			ctx.Ops(MR)
		}
	}
}

// QuantizeKernel returns the instrumented quantization PIM target: the
// float32 input matrix quantization before Conv2D plus the int32 result
// re-quantization after it, for an M x K input and M x N result, repeated
// per Conv2D invocation (Figure 8).
func QuantizeKernel(m, k, n, convs int) profile.Kernel {
	return profile.KernelFunc{
		KernelName: fmt.Sprintf("quantization %dx%dx%d", m, k, n),
		Key:        fmt.Sprintf("qgemm-quant %dx%dx%d c%d", m, k, n, convs),
		Fn: func(ctx *profile.Ctx) {
			for c := 0; c < convs; c++ {
				quantizeOnce(ctx, m, k, n, int64(c+1))
			}
		},
	}
}

func quantizeOnce(ctx *profile.Ctx, m, k, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))

	inF := ctx.Alloc("input f32", m*k*4)
	inQ := ctx.Alloc("input u8", m*k)
	resI := ctx.Alloc("result i32", m*n*4)
	resQ := ctx.Alloc("result u8", m*n)

	ctx.SetPhase("generate")
	src := make([]float32, m*k)
	for i := range src {
		src[i] = rng.Float32()*16 - 8
	}
	ctx.StoreV(inF, 0, m*k*4)

	ctx.SetPhase("quantization")
	TraceQuantScans(ctx, inF, inQ, m*k, 4)
	QuantizeInto(inQ.Data, src)

	acc := make([]int32, m*n)
	for i := range acc {
		acc[i] = rng.Int31() - 1<<30
	}
	ctx.SetPhase("generate")
	ctx.StoreV(resI, 0, m*n*4)

	ctx.SetPhase("quantization")
	TraceQuantScans(ctx, resI, resQ, m*n, 4)
	RequantizeInto(resQ.Data, acc)
}

// TraceRHSPack records the access pattern of packing a k x n row-major
// matrix into column panels. Like gemmlowp, the packer works on
// depth-blocked chunks small enough to stay cache-resident, so the matrix
// streams from DRAM once even though each chunk is read once per panel
// (strided, NR bytes at a time — the cache-hostile inner pattern the paper
// calls out).
func TraceRHSPack(ctx *profile.Ctx, rhsBuf, rhsPacked *mem.Buffer, k, n int) {
	rhsPanels := (n + NR - 1) / NR
	// Chunks of ~16 KiB stay resident in any L1 (CPU or PIM core), as in
	// gemmlowp's L1-blocked packing.
	blockRows := 16 << 10 / maxInt(n, 1)
	if blockRows < 1 {
		blockRows = 1
	}
	for k0 := 0; k0 < k; k0 += blockRows {
		k1 := k0 + blockRows
		if k1 > k {
			k1 = k
		}
		for panel := 0; panel < rhsPanels; panel++ {
			ctx.LoadSpan(rhsBuf, k0*n+panel*NR, NR, k1-k0, n)
			ctx.StoreV(rhsPacked, panel*k*NR+k0*NR, (k1-k0)*NR)
			ctx.Ops(k1 - k0)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TraceQuantScans records quantization's two full scans over a matrix of
// elems elements of elemSize bytes: the min/max pass and the conversion
// pass writing one byte per element (Figure 8's steps 1 and 2).
func TraceQuantScans(ctx *profile.Ctx, src, dst *mem.Buffer, elems, elemSize int) {
	const chunk = 4096
	bytes := elems * elemSize
	// Pass 1: min/max scan.
	for off := 0; off < bytes; off += chunk {
		n := chunk
		if bytes-off < n {
			n = bytes - off
		}
		ctx.LoadV(src, off, n)
		ctx.SIMD(n / elemSize / 4 * 2) // min and max lanes
	}
	// Pass 2: convert each element, writing one byte per element.
	for off := 0; off < bytes; off += chunk {
		n := chunk
		if bytes-off < n {
			n = bytes - off
		}
		ctx.LoadV(src, off, n)
		ctx.StoreV(dst, off/elemSize, n/elemSize)
		ctx.SIMD(n / elemSize) // subtract, scale, round, clamp per lane group
	}
}
