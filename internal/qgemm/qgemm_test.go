package qgemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rows, cols int, seed int64) Matrix {
	m := NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(m.Data)
	return m
}

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]float32, 1000)
	for i := range src {
		src[i] = rng.Float32()*200 - 100
	}
	q, p := Quantize(src)
	back := Dequantize(q, p)
	for i := range src {
		if err := math.Abs(float64(back[i] - src[i])); err > float64(p.Scale)*0.51 {
			t.Fatalf("element %d: error %.4f exceeds scale/2 = %.4f", i, err, p.Scale/2)
		}
	}
}

func TestQuantizeEdgeCases(t *testing.T) {
	if q, p := Quantize(nil); len(q) != 0 || p.Scale != 1 {
		t.Error("empty input mishandled")
	}
	q, p := Quantize([]float32{5, 5, 5})
	for _, v := range q {
		if p.Dequant(v) != 5 {
			t.Errorf("constant input: dequant = %v, want 5", p.Dequant(v))
		}
	}
	// Extremes map to 0 and 255.
	q, _ = Quantize([]float32{-3, 7})
	if q[0] != 0 || q[1] != 255 {
		t.Errorf("extremes = %v, want [0 255]", q)
	}
}

func TestQuantizeIntoShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	QuantizeInto(make([]uint8, 1), make([]float32, 5))
}

func TestRequantizeRange(t *testing.T) {
	src := []int32{-1000, 0, 500, 1000}
	q, p := Requantize(src)
	if q[0] != 0 || q[3] != 255 {
		t.Errorf("extremes = %v, want q[0]=0 q[3]=255", q)
	}
	// Monotone: larger accumulators never get smaller levels.
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Errorf("requantize not monotone: %v", q)
		}
	}
	if p.Scale <= 0 {
		t.Errorf("scale = %v, want positive", p.Scale)
	}
	if _, p := Requantize([]int32{7}); p.Scale != 1 {
		t.Error("constant requantize should use scale 1")
	}
}

func TestPackUnpackLHSBijection(t *testing.T) {
	for _, sz := range [][2]int{{4, 4}, {8, 16}, {5, 7}, {1, 1}, {13, 3}, {64, 128}} {
		m := randMatrix(sz[0], sz[1], int64(sz[0]*100+sz[1]))
		packed := PackLHS(m)
		back := UnpackLHS(packed)
		if back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("%v: size changed", sz)
		}
		for i := range m.Data {
			if m.Data[i] != back.Data[i] {
				t.Fatalf("%v: byte %d differs", sz, i)
			}
		}
	}
}

func TestPackedSizes(t *testing.T) {
	if got := PackedLHSSize(5, 7); got != 2*7*MR {
		t.Errorf("PackedLHSSize(5,7) = %d, want %d", got, 2*7*MR)
	}
	if got := PackedRHSSize(7, 5); got != 2*7*NR {
		t.Errorf("PackedRHSSize(7,5) = %d, want %d", got, 2*7*NR)
	}
}

func TestGEMMMatchesReference(t *testing.T) {
	cases := [][3]int{{4, 4, 4}, {8, 8, 8}, {5, 7, 3}, {1, 9, 1}, {16, 32, 12}, {33, 17, 21}}
	for _, c := range cases {
		m, k, n := c[0], c[1], c[2]
		lhs := randMatrix(m, k, int64(m))
		rhs := randMatrix(k, n, int64(n))
		got := GEMM(PackLHS(lhs), PackRHS(rhs), 12, 7)
		want := GEMMReference(lhs, rhs, 12, 7)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: element %d = %d, want %d", c, i, got[i], want[i])
			}
		}
	}
}

func TestGEMMDepthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("depth mismatch did not panic")
		}
	}()
	GEMM(PackLHS(NewMatrix(4, 5)), PackRHS(NewMatrix(6, 4)), 0, 0)
}

// Property: packed GEMM equals reference GEMM for arbitrary small shapes.
func TestQuickGEMM(t *testing.T) {
	f := func(m8, k8, n8 uint8, za, zb uint8, seed int64) bool {
		m := int(m8)%12 + 1
		k := int(k8)%12 + 1
		n := int(n8)%12 + 1
		lhs := randMatrix(m, k, seed)
		rhs := randMatrix(k, n, seed+1)
		got := GEMM(PackLHS(lhs), PackRHS(rhs), int32(za), int32(zb))
		want := GEMMReference(lhs, rhs, int32(za), int32(zb))
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: quantize/dequantize error is bounded by the scale.
func TestQuickQuantizeError(t *testing.T) {
	f := func(vals []float32) bool {
		src := make([]float32, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e6 {
				src = append(src, v)
			}
		}
		q, p := Quantize(src)
		back := Dequantize(q, p)
		for i := range src {
			if math.Abs(float64(back[i]-src[i])) > float64(p.Scale)*0.51+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 99)
	if m.At(2, 3) != 99 {
		t.Error("Set/At mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewMatrix(-1, 2)
}
