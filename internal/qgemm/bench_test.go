package qgemm

import (
	"math/rand"
	"testing"
)

func BenchmarkGEMM256(b *testing.B) {
	lhs := randMatrixB(256, 256, 1)
	rhs := randMatrixB(256, 256, 2)
	pl := PackLHS(lhs)
	pr := PackRHS(rhs)
	macs := int64(256 * 256 * 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GEMMPanels(pl, pr, 12, 9)
	}
	b.ReportMetric(float64(macs*int64(b.N))/b.Elapsed().Seconds()/1e9, "GMAC/s")
}

func BenchmarkPackRHS(b *testing.B) {
	m := randMatrixB(512, 512, 3)
	dst := make([]uint8, PackedRHSSize(512, 512))
	b.SetBytes(512 * 512)
	for i := 0; i < b.N; i++ {
		PackRHSInto(dst, m)
	}
}

func BenchmarkPackLHS(b *testing.B) {
	m := randMatrixB(512, 512, 4)
	dst := make([]uint8, PackedLHSSize(512, 512))
	b.SetBytes(512 * 512)
	for i := 0; i < b.N; i++ {
		PackLHSInto(dst, m)
	}
}

func BenchmarkQuantize(b *testing.B) {
	src := make([]float32, 1<<18)
	rng := rand.New(rand.NewSource(5))
	for i := range src {
		src[i] = rng.Float32()*8 - 4
	}
	dst := make([]uint8, len(src))
	b.SetBytes(int64(len(src) * 4))
	for i := 0; i < b.N; i++ {
		QuantizeInto(dst, src)
	}
}

func BenchmarkRequantize(b *testing.B) {
	src := make([]int32, 1<<18)
	rng := rand.New(rand.NewSource(6))
	for i := range src {
		src[i] = rng.Int31() - 1<<30
	}
	dst := make([]uint8, len(src))
	b.SetBytes(int64(len(src) * 4))
	for i := 0; i < b.N; i++ {
		RequantizeInto(dst, src)
	}
}

func randMatrixB(rows, cols int, seed int64) Matrix {
	m := NewMatrix(rows, cols)
	rand.New(rand.NewSource(seed)).Read(m.Data)
	return m
}
