package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gopim"
	"gopim/experiments"
	"gopim/internal/obs"
	"gopim/internal/trace"
)

// cliRunReference renders the named experiments exactly the way
// `pimsim run <names...>` prints them: serial, no cache — the simplest
// possible pipeline, which every other configuration is gated
// byte-identical to.
func cliRunReference(t *testing.T, names []string) []byte {
	t.Helper()
	res, err := experiments.RunNamed(experiments.Options{Scale: gopim.Quick, Workers: 1, Traces: trace.NewCache()}, names)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		fmt.Fprintf(&buf, "==== %s ====\n", r.Name)
		if err := experiments.Render(&buf, r.Name, r.Data); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		fmt.Fprintln(&buf)
	}
	return buf.Bytes()
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", j.ID, err)
	}
}

func TestSpecNormalize(t *testing.T) {
	bad := []JobSpec{
		{},
		{Kind: "nope"},
		{Kind: "run", Scale: "huge"},
		{Kind: "run", Experiments: []string{"fig999"}},
		{Kind: "explore", Mode: "random"},
		{Kind: "explore", Mode: "spiral"},
		{Kind: "explore", Format: "xml"},
	}
	for i, sp := range bad {
		if err := sp.normalize(); err == nil {
			t.Errorf("case %d: normalize(%+v) accepted a bad spec", i, sp)
		}
	}
	sp := JobSpec{Kind: "run"}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	if sp.Scale != "quick" || len(sp.Experiments) != len(experiments.Names()) {
		t.Errorf("run defaults not filled: %+v", sp)
	}
	xp := JobSpec{Kind: "explore"}
	if err := xp.normalize(); err != nil {
		t.Fatal(err)
	}
	if xp.Mode != "grid" || xp.Format != "text" {
		t.Errorf("explore defaults not filled: %+v", xp)
	}
}

func TestRunJobMatchesCLI(t *testing.T) {
	names := []string{"fig1", "table1", "fig6"}
	want := cliRunReference(t, names)

	s := NewServer(Config{Traces: trace.NewCache()})
	defer s.Close()
	j, err := s.Submit(JobSpec{Kind: "run", Experiments: names, Tenant: "cli-diff"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	got, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job result diverges from CLI output\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

func TestExploreJobMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("explore sweep reference is slow; covered in the full suite")
	}
	res, err := experiments.Explore(experiments.Options{Scale: gopim.Quick, Workers: 1, Traces: trace.NewCache()},
		experiments.ExploreOptions{Mode: "random", N: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiments.RenderExplore(&want, res, "csv"); err != nil {
		t.Fatal(err)
	}

	s := NewServer(Config{Traces: trace.NewCache()})
	defer s.Close()
	j, err := s.Submit(JobSpec{Kind: "explore", Mode: "random", N: 2, Seed: 7, Format: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	got, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("explore job diverges from CLI output\n got: %q...\nwant: %q...",
			clip(got), clip(want.Bytes()))
	}
}

func clip(b []byte) string {
	if len(b) > 120 {
		b = b[:120]
	}
	return string(b)
}

// TestConcurrentMixedTenantDeterminism is the PR's core guarantee: N
// goroutines submit overlapping sweeps as different tenants against one
// server, and (a) every response is byte-identical to the serial CLI
// reference for its spec, (b) the shared cache + single-flight memo
// execute each kernel exactly once — the obs report's kernel_executions
// equals the number of unique kernels (= cache records), and (c) each
// unique cell is computed exactly once, with every duplicate request
// either coalesced onto the in-flight computation or served from the
// memo. Run under -race in CI.
func TestConcurrentMixedTenantDeterminism(t *testing.T) {
	all := experiments.Names()
	subsets := [][]string{
		all[:8],
		all[4:12],
		all[:8], // duplicate of subset 0 — must coalesce or memo-hit
		all[6:14],
		all[4:12], // duplicate of subset 1
		all[2:10],
	}
	refs := map[string][]byte{}
	for _, names := range subsets {
		k := strings.Join(names, ",")
		if _, ok := refs[k]; !ok {
			refs[k] = cliRunReference(t, names)
		}
	}

	reg := obs.NewRegistry()
	s := NewServer(Config{JobWorkers: 4, QueueCap: 32, Traces: trace.NewCache(), Reg: reg})
	defer s.Close()

	jobs := make([]*Job, len(subsets))
	var wg sync.WaitGroup
	for i := range subsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(JobSpec{
				Kind:        "run",
				Experiments: subsets[i],
				Tenant:      fmt.Sprintf("tenant-%d", i),
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("job %d was not admitted", i)
		}
		waitDone(t, j)
		got, err := j.Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if want := refs[strings.Join(subsets[i], ",")]; !bytes.Equal(got, want) {
			t.Errorf("tenant %d result diverges from serial CLI reference (%d vs %d bytes)",
				i, len(got), len(want))
		}
	}

	rep := obs.BuildReport(reg, obs.RunMeta{Command: "serve", Workers: 4}, 1, nil)
	records := rep.Metrics.Counters[obs.PrefixTraceCache+"records"]
	if records <= 0 {
		t.Fatalf("shared cache recorded no kernels")
	}
	if rep.Derived.KernelExecutions != records {
		t.Errorf("kernel executions %d != unique kernels %d: some kernel ran more than once (or ran unkeyed)",
			rep.Derived.KernelExecutions, records)
	}

	uniqueCells := map[string]bool{}
	totalCells := 0
	for _, names := range subsets {
		for _, n := range names {
			uniqueCells["run|quick|"+n] = true
			totalCells++
		}
	}
	c := rep.Metrics.Counters
	if got := c["serve.cells.computed"]; got != int64(len(uniqueCells)) {
		t.Errorf("cells computed = %d, want %d (one per unique cell)", got, len(uniqueCells))
	}
	if got := c["serve.cells.requests"]; got != int64(totalCells) {
		t.Errorf("cell requests = %d, want %d", got, totalCells)
	}
	dedup := c["serve.cells.coalesced"] + c["serve.cells.memo_hits"]
	if want := int64(totalCells - len(uniqueCells)); dedup != want {
		t.Errorf("coalesced(%d) + memo_hits(%d) = %d, want %d duplicates deduped",
			c["serve.cells.coalesced"], c["serve.cells.memo_hits"], dedup, want)
	}
}

// newIdleServer builds a Server with no runner pool, so admission
// mechanics can be tested deterministically: queued jobs stay queued.
func newIdleServer(queueCap int) *Server {
	root, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:    Config{JobWorkers: 1, QueueCap: queueCap, MemoLimit: 8, JobHistory: 8},
		traces: trace.NewCache(),
		memo:   newMemo(8),
		root:   root,
		stop:   stop,
		queue:  make(chan *Job, queueCap),
		quit:   make(chan struct{}),
		jobs:   map[string]*Job{},
	}
}

// drainIdle settles an idle server's accounting so the test leaks nothing.
func drainIdle(s *Server) {
	for {
		select {
		case j := <-s.queue:
			j.finish(StateCanceled, context.Canceled)
			s.jobsWG.Done()
		default:
			s.stop()
			return
		}
	}
}

func TestSubmitBackpressure(t *testing.T) {
	s := newIdleServer(2)
	defer drainIdle(s)
	sp := JobSpec{Kind: "run", Experiments: []string{"fig1"}}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(sp); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(sp); err != ErrQueueFull {
		t.Fatalf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("rejected job left residue: %d jobs registered, want 2", got)
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	if _, err := s.Submit(sp); err != ErrClosed {
		t.Fatalf("submit after close: err = %v, want ErrClosed", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newIdleServer(4)
	defer drainIdle(s)
	j, err := s.Submit(JobSpec{Kind: "run", Experiments: []string{"fig1"}})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	// Run it the way the pool would: a cancelled queued job finishes
	// canceled without computing anything.
	<-s.queue
	s.runJob(j)
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("Result() on a canceled job returned no error")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := newMemo(2)
	root := context.Background()

	e1, kind := m.acquire(root, "k")
	if kind != acquireStart {
		t.Fatalf("first acquire = %v, want start", kind)
	}
	e2, kind := m.acquire(root, "k")
	if kind != acquireCoalesced || e2 != e1 {
		t.Fatalf("second acquire = %v (same entry: %v), want coalesced on the same entry", kind, e1 == e2)
	}
	m.complete(e1, []byte("out"), nil)
	out, err, ok := m.result(e1)
	if !ok || err != nil || string(out) != "out" {
		t.Fatalf("result = %q, %v, %v", out, err, ok)
	}
	if _, kind := m.acquire(root, "k"); kind != acquireMemoHit {
		t.Fatalf("post-completion acquire = %v, want memo hit", kind)
	}

	// Last waiter leaving an in-flight entry cancels its computation and
	// removes it, so the next request starts fresh.
	ew, kind := m.acquire(root, "w")
	if kind != acquireStart {
		t.Fatalf("acquire w = %v, want start", kind)
	}
	m.release(ew)
	if ew.ctx.Err() == nil {
		t.Fatal("abandoned entry's context not cancelled")
	}
	m.complete(ew, nil, ew.ctx.Err())
	if _, _, ok := m.result(ew); ok {
		t.Fatal("abandoned entry reported a usable result")
	}
	if _, kind := m.acquire(root, "w"); kind != acquireStart {
		t.Fatalf("re-acquire after abandon = %v, want a fresh start", kind)
	}

	// Completed entries are bounded: limit 2, oldest evicted first.
	for _, k := range []string{"a", "b", "c"} {
		e, _ := m.acquire(root, k)
		m.complete(e, []byte(k), nil)
	}
	if _, kind := m.acquire(root, "a"); kind != acquireStart {
		t.Fatalf("evicted key acquire = %v, want start", kind)
	}
}

// TestCloseDrainsAndSettles pins graceful shutdown: Close waits for every
// admitted job, and after it returns no server goroutine survives — the
// leak gate for the runner pool, cell computations, and store writers.
func TestCloseDrainsAndSettles(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		s := NewServer(Config{Traces: trace.NewCache()})
		var jobs []*Job
		for i := 0; i < 3; i++ {
			j, err := s.Submit(JobSpec{Kind: "run", Experiments: []string{"fig1", "fig6"}})
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
		s.Close()
		for i, j := range jobs {
			if st := j.Status(); st.State != StateDone {
				t.Errorf("after Close, job %d state = %s, want done (Close must drain admitted jobs)", i, st.State)
			}
		}
		if _, err := s.Submit(JobSpec{Kind: "run"}); err != ErrClosed {
			t.Errorf("submit after Close: err = %v, want ErrClosed", err)
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle after Close: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPAPI(t *testing.T) {
	names := []string{"fig1", "table1"}
	want := cliRunReference(t, names)

	reg := obs.NewRegistry()
	s := NewServer(Config{Traces: trace.NewCache(), Reg: reg})
	api, err := ServeAPI("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := api.Close(); err != nil {
			t.Errorf("api close: %v", err)
		}
		s.Close()
	}()
	base := "http://" + api.Addr()

	// Bad submissions map to 400.
	for _, body := range []string{"{not json", `{"kind":"run","experiments":["fig999"]}`, `{"kind":"run","bogus":1}`} {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	spec, _ := json.Marshal(JobSpec{Kind: "run", Experiments: names, Tenant: "http-test"})
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST /jobs: status %d, id %q", resp.StatusCode, st.ID)
	}

	// Stream the job: chunk records then a done record; the concatenated
	// chunks are the CLI bytes.
	resp, err = http.Get(base + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	var final streamRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec streamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if rec.Done {
			final = rec
			break
		}
		if rec.Chunk == nil {
			t.Fatalf("stream record with neither chunk nor done: %q", sc.Text())
		}
		streamed.WriteString(rec.Chunk.Output)
	}
	resp.Body.Close()
	if final.State != StateDone {
		t.Fatalf("final stream state = %q, want done", final.State)
	}
	if !bytes.Equal(streamed.Bytes(), want) {
		t.Errorf("streamed chunks diverge from CLI output (%d vs %d bytes)", streamed.Len(), len(want))
	}

	// Poll endpoints after completion.
	resp, err = http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got.Bytes(), want) {
		t.Errorf("GET result: status %d, %d bytes; want 200 with %d CLI-identical bytes",
			resp.StatusCode, got.Len(), len(want))
	}

	for path, wantCode := range map[string]int{
		"/jobs":             http.StatusOK,
		"/jobs/" + st.ID:    http.StatusOK,
		"/jobs/nope":        http.StatusNotFound,
		"/jobs/nope/result": http.StatusNotFound,
		"/healthz":          http.StatusOK,
		"/metrics":          http.StatusOK,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
	}

	// Cancel is accepted for any live job id (here: already done — a no-op).
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("DELETE job: status %d, want 202", resp.StatusCode)
	}
}
