package serve

import (
	"context"
	"sync"
)

// memo is the cross-request single-flight layer: one entry per cell key,
// covering both in-flight computations (so identical cells from different
// jobs — different tenants — coalesce onto one goroutine) and a bounded
// LRU of completed results (so a sweep re-submitted after its first job
// finished is served from memory without recomputing). It extends
// trace.Cache's per-kernel sync.Once single-flight up to the
// experiment/pricing layer: trace.Cache dedupes the kernel walk, memo
// dedupes everything above it — profiling, pricing, rendering.
//
// In-flight entries are reference counted by their waiters. When the last
// waiter abandons an entry (its job was cancelled), the computation's
// context is cancelled too — work nobody is waiting for stops in bounded
// time instead of finishing into a result nobody reads. Completed entries
// hold no references and are evicted oldest-first past limit; in-flight
// entries are never evicted.
type memo struct {
	limit int

	mu      sync.Mutex
	entries map[string]*memoEntry
	order   []string // completed keys, oldest first (MRU at the end)
}

// acquireKind classifies what acquire found, for the server's
// coalescing metrics.
type acquireKind int

const (
	acquireStart     acquireKind = iota // new entry; caller must start the computation
	acquireCoalesced                    // joined another request's in-flight computation
	acquireMemoHit                      // completed result served from the memo
)

// memoEntry is one cell computation's lifecycle. done closes exactly once,
// when the computation finishes or is abandoned; out/err/canceled are
// immutable after that.
type memoEntry struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// Guarded by memo.mu.
	refs     int // waiters, while in flight
	inflight bool
	canceled bool
	out      []byte
	err      error
}

func newMemo(limit int) *memo {
	return &memo{limit: limit, entries: map[string]*memoEntry{}}
}

// acquire returns the entry for key, creating it if absent. The caller
// holds one reference on an in-flight entry and must balance it with
// release (or let complete settle it). The speculative child context is
// built before taking the lock so no context machinery runs under it; when
// the key already exists the unused cancel is released on return.
func (m *memo) acquire(root context.Context, key string) (*memoEntry, acquireKind) {
	ctx, cancel := context.WithCancel(root)
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		kind := acquireMemoHit
		if e.inflight {
			e.refs++
			kind = acquireCoalesced
		} else {
			m.touchLocked(key)
		}
		m.mu.Unlock()
		cancel()
		return e, kind
	}
	e := &memoEntry{
		key:      key,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		refs:     1,
		inflight: true,
	}
	m.entries[key] = e
	m.mu.Unlock()
	return e, acquireStart
}

// release drops one waiter's reference. When the last waiter leaves an
// entry still in flight, the computation is abandoned: cancelled, removed
// from the map (a later request for the key starts fresh), and marked so
// complete discards its result. Releasing a completed entry is a no-op.
func (m *memo) release(e *memoEntry) {
	m.mu.Lock()
	if !e.inflight {
		m.mu.Unlock()
		return
	}
	e.refs--
	if e.refs > 0 {
		m.mu.Unlock()
		return
	}
	e.canceled = true
	delete(m.entries, e.key)
	m.mu.Unlock()
	e.cancel()
}

// complete publishes a finished computation's result and wakes waiters. A
// computation whose context died (all waiters gone, or server shutdown)
// is discarded rather than memoized — its error is circumstantial, not a
// property of the spec, and must not poison later requests. Deterministic
// failures (bad spec reaching compute, render errors) are memoized like
// successes: recomputing them would yield the same bytes.
func (m *memo) complete(e *memoEntry, out []byte, err error) {
	abandoned := err != nil && e.ctx.Err() != nil
	m.mu.Lock()
	if e.canceled {
		m.mu.Unlock()
		close(e.done)
		return
	}
	if abandoned {
		e.canceled = true
		delete(m.entries, e.key)
		m.mu.Unlock()
		close(e.done)
		e.cancel()
		return
	}
	e.inflight = false
	e.refs = 0
	e.out, e.err = out, err
	m.order = append(m.order, e.key)
	for m.limit > 0 && len(m.order) > m.limit {
		delete(m.entries, m.order[0])
		m.order = m.order[1:]
	}
	m.mu.Unlock()
	close(e.done)
	e.cancel()
}

// result reads a settled entry after its done channel closed. ok is false
// when the computation was abandoned — the caller retries (its own
// context permitting) with a fresh acquire.
func (m *memo) result(e *memoEntry) (out []byte, err error, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e.canceled {
		return nil, nil, false
	}
	return e.out, e.err, true
}

// touchLocked moves a completed key to the MRU end of the eviction order.
func (m *memo) touchLocked(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(append(m.order[:i:i], m.order[i+1:]...), key)
			return
		}
	}
}

// len reports how many entries (in-flight + completed) the memo holds.
func (m *memo) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
