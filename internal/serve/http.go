package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// API is the HTTP surface over a Server — the pimsimd wire protocol:
//
//	POST   /jobs             submit a JobSpec; 202 + Status on admission,
//	                         400 bad spec, 429 queue full, 503 shutting down
//	GET    /jobs             list jobs in submission order
//	GET    /jobs/{id}        poll one job's Status
//	GET    /jobs/{id}/result the job's result bytes (text/plain) once done;
//	                         409 while still queued/running
//	GET    /jobs/{id}/stream incremental results as JSON lines: one record
//	                         per completed chunk as it lands, then a final
//	                         done record with the terminal state
//	DELETE /jobs/{id}        cancel a job
//	GET    /metrics          live registry snapshot (same schema as the
//	                         obs server pimsim -serve-metrics exposes)
//	GET    /healthz          liveness
//
// It reuses obs.Server's lifecycle discipline: every handler is counted,
// and Close drains them after tearing down connections, so shutdown never
// strands a handler goroutine mid-write.
type API struct {
	s        *Server
	addr     net.Addr
	listener net.Listener
	srv      *http.Server
	done     chan struct{}
	handlers sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	serveErr error
}

// ServeAPI binds addr (host:port; port 0 picks a free port) and serves s.
// The listener is bound synchronously: a non-error return means the API
// is reachable at Addr().
func ServeAPI(addr string, s *Server) (*API, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: api listener: %w", err)
	}
	a := &API{
		s:        s,
		addr:     ln.Addr(),
		listener: ln,
		done:     make(chan struct{}),
	}
	a.srv = &http.Server{Handler: a.tracked(a.mux())}
	go func() {
		defer close(a.done)
		err := a.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			a.mu.Lock()
			a.serveErr = err
			a.mu.Unlock()
		}
	}()
	return a, nil
}

// Addr returns the API's resolved listen address.
func (a *API) Addr() string {
	if a == nil {
		return ""
	}
	return a.addr.String()
}

// Close stops the listener and drains in-flight handlers. It does not
// close the underlying Server — callers close the API first (no new
// requests), then the Server (drain jobs).
func (a *API) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	err := a.srv.Close()
	<-a.done
	a.handlers.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	if err == nil {
		err = a.serveErr
	}
	return err
}

func (a *API) tracked(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		a.handlers.Add(1)
		defer a.handlers.Done()
		h.ServeHTTP(w, r)
	})
}

func (a *API) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", a.handleSubmit)
	mux.HandleFunc("GET /jobs", a.handleList)
	mux.HandleFunc("GET /jobs/{id}", a.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", a.handleResult)
	mux.HandleFunc("GET /jobs/{id}/stream", a.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", a.handleCancel)
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /healthz", a.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Headers are out; an encode error means the client went away.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	j, err := a.s.Submit(sp)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": a.s.Jobs()})
}

// job resolves the {id} path value, writing the 404 on failure.
func (a *API) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := a.s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := a.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (a *API) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	out, err := j.Result()
	if err != nil {
		st, _, _, _ := j.snapshot(0)
		code := http.StatusConflict // still queued/running
		if st == StateFailed || st == StateCanceled {
			code = http.StatusInternalServerError
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// streamRecord is one line of a /stream response: a chunk as it
// completes, or the final record (done=true) carrying the terminal state.
type streamRecord struct {
	Chunk *Chunk   `json:"chunk,omitempty"`
	Done  bool     `json:"done,omitempty"`
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`
}

func (a *API) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	for {
		st, chunks, jerr, updated := j.snapshot(seq)
		for i := range chunks {
			if err := enc.Encode(streamRecord{Chunk: &chunks[i]}); err != nil {
				return // client went away
			}
			seq++
		}
		if st == StateDone || st == StateFailed || st == StateCanceled {
			rec := streamRecord{Done: true, State: st}
			if jerr != nil {
				rec.Error = jerr.Error()
			}
			_ = enc.Encode(rec)
			if fl != nil {
				fl.Flush()
			}
			return
		}
		if fl != nil {
			fl.Flush()
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := a.s.Registry()
	if reg == nil {
		writeError(w, http.StatusNotFound, errors.New("serve: no metrics registry attached"))
		return
	}
	writeJSON(w, http.StatusOK, reg.Snapshot())
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
