// Package serve is pimsimd's job engine: simulation-as-a-service over the
// gopim experiment and design-space sweep layers. One Server owns one
// shared trace.Cache (optionally backed by a persistent trace.Store), so
// every admitted job — every tenant — replays against the same warm
// kernel traces; above that, a cross-request single-flight memo coalesces
// identical sweep cells from concurrent jobs onto one computation.
//
// Admission is bounded on top of internal/par's worker model: a fixed
// runner pool executes jobs, a bounded queue absorbs bursts, and a full
// queue rejects immediately (HTTP 429 at the API) instead of accepting
// unbounded work. Each job carries a context.Context threaded through
// experiments.RunNamedCtx/ExploreCtx, so cancelling a job — or losing
// interest in a coalesced cell — stops the sweep in bounded time.
//
// The contract that makes coalescing safe is determinism: a job's result
// bytes are identical to the matching `pimsim run`/`pimsim explore`
// stdout for the same spec, regardless of which request actually computed
// them. scripts/check.sh gates that byte identity.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"gopim/internal/obs"
	"gopim/internal/trace"
)

// Errors the API layer maps to HTTP statuses.
var (
	// ErrQueueFull rejects a submission when the admission queue is at
	// capacity (HTTP 429): backpressure instead of unbounded buffering.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed rejects submissions during and after shutdown (HTTP 503).
	ErrClosed = errors.New("serve: server closed")
	// ErrNoJob reports an unknown job id (HTTP 404).
	ErrNoJob = errors.New("serve: no such job")
)

// Config sizes a Server. Zero values select the defaults.
type Config struct {
	// JobWorkers is the number of concurrent job runners (default 2).
	// Each runner executes one job's cells sequentially, in spec order,
	// so a job's chunks stream in CLI order.
	JobWorkers int
	// Workers bounds each cell computation's internal parallelism
	// (experiments.Options.Workers; default 0 = GOMAXPROCS). The server's
	// total compute budget is roughly JobWorkers x Workers.
	Workers int
	// QueueCap bounds the admission queue (default 16). Submissions
	// beyond running+queued capacity fail with ErrQueueFull.
	QueueCap int
	// MemoLimit bounds completed cells retained for reuse (default 256
	// cells; a full quick run sweep is 23).
	MemoLimit int
	// JobHistory bounds finished jobs retained for polling (default 64).
	// Oldest finished jobs are forgotten first; running and queued jobs
	// are never dropped.
	JobHistory int
	// Traces is the shared warm cache. Nil gets a fresh unbounded cache;
	// attach a Store-backed cache to start warm from disk.
	Traces *trace.Cache
	// Reg receives server metrics and is shared with every computation.
	// Nil metrics are dropped (obs's nil-safe contract).
	Reg *obs.Registry
}

func (c *Config) fill() {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16
	}
	if c.MemoLimit <= 0 {
		c.MemoLimit = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 64
	}
}

// Server runs sweep jobs against one shared trace cache. Create with
// NewServer, submit with Submit, stop with Close (which drains admitted
// jobs before returning).
type Server struct {
	cfg    Config
	reg    *obs.Registry
	traces *trace.Cache
	memo   *memo

	root context.Context
	stop context.CancelFunc

	queue     chan *Job
	quit      chan struct{}
	runnersWG sync.WaitGroup // runner pool goroutines
	jobsWG    sync.WaitGroup // admitted jobs not yet finished
	cellsWG   sync.WaitGroup // in-flight cell computations

	mu     sync.Mutex
	closed bool
	nextID int64
	jobs   map[string]*Job
	order  []string // submission order, for listing and history trim
}

// NewServer builds and starts a server: the runner pool is live on
// return. The caller owns cfg.Traces' underlying store lifecycle beyond
// Close's flush (Close waits for pending async store writes).
func NewServer(cfg Config) *Server {
	cfg.fill()
	if cfg.Traces == nil {
		cfg.Traces = trace.NewCache()
	}
	if cfg.Reg != nil {
		cfg.Traces.Obs = cfg.Reg
		cfg.Reg.AddSource(obs.PrefixTraceCache, cfg.Traces)
		if cfg.Traces.Store != nil {
			cfg.Traces.Store.Obs = cfg.Reg
			cfg.Reg.AddSource(obs.PrefixTraceStore, cfg.Traces.Store)
		}
	}
	root, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Reg,
		traces: cfg.Traces,
		memo:   newMemo(cfg.MemoLimit),
		root:   root,
		stop:   stop,
		queue:  make(chan *Job, cfg.QueueCap),
		quit:   make(chan struct{}),
		jobs:   map[string]*Job{},
	}
	for i := 0; i < cfg.JobWorkers; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	return s
}

// Registry returns the server's metrics registry (possibly nil).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Submit validates, registers and enqueues a job. It never blocks: a full
// queue fails fast with ErrQueueFull, a closed server with ErrClosed, a
// bad spec with the validation error. On success the job is admitted —
// Close will wait for it.
func (s *Server) Submit(sp JobSpec) (*Job, error) {
	s.reg.Counter("serve.jobs.submitted").Add(1)
	if err := sp.normalize(); err != nil {
		s.reg.Counter("serve.jobs.invalid").Add(1)
		return nil, err
	}
	// Build the job (cells, context) outside the lock — closure
	// construction is cheap but has a deep call graph, and the critical
	// section should only cover the registration bookkeeping.
	j := newJob(s.root, "", sp, s.cells(sp))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.cancel()
		return nil, ErrClosed
	}
	s.nextID++
	j.ID = fmt.Sprintf("job-%d", s.nextID)
	id := j.ID
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.trimHistoryLocked()
	s.jobsWG.Add(1)
	s.mu.Unlock()

	select {
	case s.queue <- j:
	default:
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		s.jobsWG.Done()
		j.cancel()
		s.reg.Counter("serve.jobs.rejected").Add(1)
		return nil, ErrQueueFull
	}
	s.reg.Counter("serve.jobs.accepted").Add(1)
	s.reg.Gauge("serve.queue.depth").Set(int64(len(s.queue)))
	return j, nil
}

// trimHistoryLocked forgets the oldest finished jobs beyond JobHistory.
// Jobs still queued or running don't count against the budget and are
// never dropped.
func (s *Server) trimHistoryLocked() {
	finished := 0
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			if st := j.Status().State; st == StateDone || st == StateFailed || st == StateCanceled {
				finished++
			}
		}
	}
	if finished <= s.cfg.JobHistory {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		st := j.Status().State
		if finished > s.cfg.JobHistory && (st == StateDone || st == StateFailed || st == StateCanceled) {
			delete(s.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// Job returns a registered job by id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	return j, nil
}

// Jobs lists registered jobs in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// runner is one job-pool goroutine: it drains the admission queue until
// Close signals quit (which only happens after every admitted job ran).
func (s *Server) runner() {
	defer s.runnersWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.reg.Gauge("serve.queue.depth").Set(int64(len(s.queue)))
			s.runJob(j)
		case <-s.quit:
			return
		}
	}
}

// runJob executes one job's cells sequentially in spec order — chunks
// stream in the same order the CLI prints, and the concatenation is the
// CLI's stdout byte for byte. Cancellation is checked between cells and
// observed inside them via the job context.
func (s *Server) runJob(j *Job) {
	defer s.jobsWG.Done()
	running := s.reg.Gauge("serve.jobs.running")
	running.Add(1)
	defer running.Add(-1)
	span := s.reg.Span("serve.phase.job")
	defer span.End()

	if err := j.ctx.Err(); err != nil {
		s.reg.Counter("serve.jobs.canceled").Add(1)
		j.finish(StateCanceled, err)
		return
	}
	j.setState(StateRunning)
	for i := range j.cells {
		out, err := s.computeCell(j, j.cells[i])
		if err != nil {
			if j.ctx.Err() != nil {
				s.reg.Counter("serve.jobs.canceled").Add(1)
				j.finish(StateCanceled, err)
			} else {
				s.reg.Counter("serve.jobs.failed").Add(1)
				j.finish(StateFailed, err)
			}
			return
		}
		j.appendChunk(j.cells[i].name, out)
	}
	s.reg.Counter("serve.jobs.completed").Add(1)
	j.finish(StateDone, nil)
}

// computeCell resolves one cell through the single-flight memo: start the
// computation if this request is first, join it if another request is
// already running it, or reuse the memoized bytes. If the joined
// computation is abandoned under us (possible only transiently — our own
// reference protects an entry we wait on), retry with a fresh acquire.
func (s *Server) computeCell(j *Job, c cell) ([]byte, error) {
	requests := s.reg.Counter("serve.cells.requests")
	for {
		requests.Add(1)
		e, kind := s.memo.acquire(s.root, c.key)
		switch kind {
		case acquireStart:
			s.reg.Counter("serve.cells.computed").Add(1)
			s.startCompute(e, c)
		case acquireCoalesced:
			s.reg.Counter("serve.cells.coalesced").Add(1)
		case acquireMemoHit:
			s.reg.Counter("serve.cells.memo_hits").Add(1)
		}
		select {
		case <-e.done:
		case <-j.ctx.Done():
			s.memo.release(e)
			return nil, j.ctx.Err()
		}
		out, err, ok := s.memo.result(e)
		if ok {
			s.memo.release(e)
			return out, err
		}
		// Abandoned: the computation died with the server root context
		// (shutdown) — or a cancellation race we can recover from. Our
		// own context decides whether to retry.
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// startCompute runs a cell computation on its own goroutine under the
// entry's context (cancelled when the last waiter leaves, not when any
// one job does). complete always runs and always closes e.done, so every
// waiter — and Close's cellsWG — is released on all paths.
func (s *Server) startCompute(e *memoEntry, c cell) {
	s.cellsWG.Add(1)
	go func() {
		defer s.cellsWG.Done()
		out, err := s.timedCompute(e, c)
		s.memo.complete(e, out, err)
	}()
}

// timedCompute runs one cell computation under its phase span.
func (s *Server) timedCompute(e *memoEntry, c cell) ([]byte, error) {
	span := s.reg.Span("serve.phase.cell")
	defer span.End()
	return c.compute(e.ctx)
}

// Close shuts the server down gracefully: stop admitting, let every
// admitted job finish (drain), then tear down the runner pool, join cell
// goroutines, and flush pending persistent-store writes. Safe to call
// once; concurrent Submits during Close fail with ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.jobsWG.Wait() // every admitted job reached a terminal state
	close(s.quit)   // queue is empty now; release the runners
	s.runnersWG.Wait()
	s.cellsWG.Wait() // cell goroutines complete() even when abandoned
	s.stop()         // release the root context
	s.traces.Store.Wait()
}
