package serve

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"

	"gopim"
	"gopim/experiments"
)

// JobSpec is one client request: an experiment sweep (kind "run") or a
// design-space sweep (kind "explore") at a scale. The zero values of the
// optional fields select the CLI defaults, so a spec and its pimsim
// command line describe the same computation — and the job's result bytes
// are gated identical to that command's stdout.
type JobSpec struct {
	// Kind is "run" (paper experiments) or "explore" (design-space sweep).
	Kind string `json:"kind"`
	// Scale is "quick" (default) or "standard".
	Scale string `json:"scale,omitempty"`
	// Experiments lists run-job experiment names (empty = all, in sorted
	// order — exactly `pimsim run all`).
	Experiments []string `json:"experiments,omitempty"`
	// Mode is the explore sweep mode: grid (default), random, or paper.
	Mode string `json:"mode,omitempty"`
	// N and Seed parameterize explore -mode random.
	N    int   `json:"n,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Format is the explore output format: text (default), csv, or json.
	Format string `json:"format,omitempty"`
	// Tenant is an optional client label. It never influences results —
	// identical specs from different tenants coalesce onto one
	// computation; the label only shows up in job status output.
	Tenant string `json:"tenant,omitempty"`
}

// normalize validates the spec and fills defaults in place.
func (sp *JobSpec) normalize() error {
	switch sp.Kind {
	case "run", "explore":
	case "":
		return fmt.Errorf("spec: missing kind (want run or explore)")
	default:
		return fmt.Errorf("spec: unknown kind %q (want run or explore)", sp.Kind)
	}
	switch sp.Scale {
	case "":
		sp.Scale = "quick"
	case "quick", "standard":
	default:
		return fmt.Errorf("spec: unknown scale %q (want quick or standard)", sp.Scale)
	}
	if sp.Kind == "run" {
		if len(sp.Experiments) == 0 {
			sp.Experiments = experiments.Names()
		}
		for _, name := range sp.Experiments {
			if _, ok := experiments.RunnerFor(name); !ok {
				return fmt.Errorf("spec: unknown experiment %q (known: %s)",
					name, strings.Join(experiments.Names(), ", "))
			}
		}
		return nil
	}
	switch sp.Mode {
	case "":
		sp.Mode = "grid"
	case "grid", "paper":
	case "random":
		if sp.N <= 0 {
			return fmt.Errorf("spec: explore random mode needs n > 0 (got %d)", sp.N)
		}
	default:
		return fmt.Errorf("spec: unknown explore mode %q (want grid, random or paper)", sp.Mode)
	}
	switch sp.Format {
	case "":
		sp.Format = "text"
	case "text", "csv", "json":
	default:
		return fmt.Errorf("spec: unknown explore format %q (want text, csv or json)", sp.Format)
	}
	return nil
}

// scale returns the spec's gopim.Scale (normalize ran first).
func (sp JobSpec) scale() gopim.Scale {
	if sp.Scale == "standard" {
		return gopim.Standard
	}
	return gopim.Quick
}

// cell is one unit of coalescable work: a cache key identifying the
// computation and the function producing its bytes. Identical cells from
// different jobs — different tenants — share one computation through the
// server's memo, so the cell key must capture everything that can change
// the bytes: kind, scale, and the experiment or sweep parameters. Worker
// counts and the replay engine are deliberately excluded: results are
// bit-identical across both (gated in scripts/check.sh).
type cell struct {
	name    string // chunk label in job results
	key     string
	compute func(context.Context) ([]byte, error)
}

// cells expands a normalized spec into its work units: one cell per
// experiment for run jobs (so two jobs overlapping on fig1 share fig1's
// computation even if the rest of their sweeps differ), one cell for an
// explore sweep.
func (s *Server) cells(sp JobSpec) []cell {
	if sp.Kind == "run" {
		out := make([]cell, len(sp.Experiments))
		for i, name := range sp.Experiments {
			out[i] = cell{
				name:    name,
				key:     "run|" + sp.Scale + "|" + name,
				compute: s.runCellCompute(name, sp),
			}
		}
		return out
	}
	key := fmt.Sprintf("explore|%s|%s|n=%d|seed=%d|fmt=%s", sp.Scale, sp.Mode, sp.N, sp.Seed, sp.Format)
	return []cell{{name: "explore", key: key, compute: s.exploreCellCompute(sp)}}
}

// options builds the experiment options for one cell computation: the
// server's shared trace cache (the cross-request warm state), its worker
// bound, and its metrics registry.
func (s *Server) options(sp JobSpec) experiments.Options {
	return experiments.Options{
		Scale:   sp.scale(),
		Workers: s.cfg.Workers,
		Traces:  s.traces,
		Obs:     s.reg,
	}
}

// runCellCompute renders one experiment exactly the way `pimsim run`
// prints it: a ==== name ==== header, the table, a trailing blank line.
// Concatenating a job's chunks therefore reproduces the CLI's stdout
// byte for byte (the smoke gate in scripts/check.sh diffs them).
func (s *Server) runCellCompute(name string, sp JobSpec) func(context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		res, err := experiments.RunNamedCtx(ctx, s.options(sp), []string{name})
		if err != nil {
			return nil, err
		}
		r := res[0]
		if r.Err != nil {
			return nil, fmt.Errorf("%s: %w", name, r.Err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "==== %s ====\n", name)
		if err := experiments.Render(&buf, name, r.Data); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(&buf)
		return buf.Bytes(), nil
	}
}

// exploreCellCompute runs a design-space sweep and renders it exactly
// like `pimsim explore` stdout.
func (s *Server) exploreCellCompute(sp JobSpec) func(context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		res, err := experiments.ExploreCtx(ctx, s.options(sp),
			experiments.ExploreOptions{Mode: sp.Mode, N: sp.N, Seed: sp.Seed})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := experiments.RenderExplore(&buf, res, sp.Format); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: Queued -> Running -> one of Done, Failed, Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Chunk is one completed unit of a job's output, in CLI order.
type Chunk struct {
	Seq    int    `json:"seq"`
	Name   string `json:"name"`
	Output string `json:"output"`
}

// Job is one admitted request working through the server.
type Job struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	cells  []cell
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	state   JobState
	chunks  []Chunk
	err     error
	updated chan struct{} // closed-and-renewed on every state/chunk change
	done    chan struct{} // closed once the job reaches a terminal state
}

// newJob builds an admitted job under the server's root context.
func newJob(root context.Context, id string, sp JobSpec, cells []cell) *Job {
	ctx, cancel := context.WithCancel(root)
	return &Job{
		ID:      id,
		Spec:    sp,
		cells:   cells,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		updated: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// broadcastLocked renews the update channel; the caller closes the
// returned previous channel after unlocking (a channel op under the lock
// would convoy readers — and the lockheld analyzer forbids it).
func (j *Job) broadcastLocked() chan struct{} {
	prev := j.updated
	j.updated = make(chan struct{})
	return prev
}

// setState moves the job to a non-terminal state.
func (j *Job) setState(st JobState) {
	j.mu.Lock()
	j.state = st
	prev := j.broadcastLocked()
	j.mu.Unlock()
	close(prev)
}

// appendChunk publishes one completed cell's output.
func (j *Job) appendChunk(name string, out []byte) {
	j.mu.Lock()
	j.chunks = append(j.chunks, Chunk{Seq: len(j.chunks), Name: name, Output: string(out)})
	prev := j.broadcastLocked()
	j.mu.Unlock()
	close(prev)
}

// finish moves the job to a terminal state and releases its context.
func (j *Job) finish(st JobState, err error) {
	j.mu.Lock()
	j.state = st
	j.err = err
	prev := j.broadcastLocked()
	j.mu.Unlock()
	close(prev)
	close(j.done)
	j.cancel()
}

// Cancel asks the job to stop; the runner observes the context and
// finishes it as canceled. Canceling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// snapshot returns the job's current state under its lock: state, chunks
// completed so far, the terminal error, and the channel to wait on for
// the next change.
func (j *Job) snapshot(fromSeq int) (JobState, []Chunk, error, chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var newChunks []Chunk
	if fromSeq < len(j.chunks) {
		newChunks = append(newChunks, j.chunks[fromSeq:]...)
	}
	return j.state, newChunks, j.err, j.updated
}

// Status is a job's poll/list view.
type Status struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Kind        string   `json:"kind"`
	Scale       string   `json:"scale"`
	Tenant      string   `json:"tenant,omitempty"`
	ChunksDone  int      `json:"chunks_done"`
	ChunksTotal int      `json:"chunks_total"`
	Error       string   `json:"error,omitempty"`
}

// Status returns the job's current poll view.
func (j *Job) Status() Status {
	st, chunks, err, _ := j.snapshot(0)
	s := Status{
		ID:          j.ID,
		State:       st,
		Kind:        j.Spec.Kind,
		Scale:       j.Spec.Scale,
		Tenant:      j.Spec.Tenant,
		ChunksDone:  len(chunks),
		ChunksTotal: len(j.cells),
	}
	if err != nil {
		s.Error = err.Error()
	}
	return s
}

// Result returns the job's concatenated output bytes once it is done.
// The bytes are the job's contract: identical to the matching pimsim
// command's stdout for the same spec.
func (j *Job) Result() ([]byte, error) {
	st, chunks, err, _ := j.snapshot(0)
	switch st {
	case StateDone:
		var buf bytes.Buffer
		for _, c := range chunks {
			buf.WriteString(c.Output)
		}
		return buf.Bytes(), nil
	case StateFailed, StateCanceled:
		if err == nil {
			err = fmt.Errorf("job %s %s", j.ID, st)
		}
		return nil, err
	default:
		return nil, fmt.Errorf("job %s still %s", j.ID, st)
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
