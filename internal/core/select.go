package core

import (
	"sort"

	"gopim/internal/profile"
)

// Candidate is one workload function evaluated against the paper's PIM
// target criteria (§3.2): it must (1) be among the top energy consumers,
// (2) have data movement that is a significant fraction of workload energy,
// (3) be memory-intensive (LLC MPKI > 10), and (4) have data movement as the
// single largest component of its own energy.
type Candidate struct {
	Function string

	// EnergyFraction is the function's share of total workload energy.
	EnergyFraction float64
	// MovementFraction is the share of *workload* energy spent on this
	// function's data movement.
	MovementFraction float64
	// OwnMovementFraction is the share of the function's own energy spent
	// on data movement.
	OwnMovementFraction float64
	// MPKI is the function's LLC misses per kilo-instruction.
	MPKI float64

	// Criterion outcomes.
	SignificantEnergy   bool
	SignificantMovement bool
	MemoryIntensive     bool
	MovementDominant    bool
}

// Qualifies reports whether all four criteria hold.
func (c Candidate) Qualifies() bool {
	return c.SignificantEnergy && c.SignificantMovement && c.MemoryIntensive && c.MovementDominant
}

// Criteria parameterizes candidate selection.
type Criteria struct {
	// MinEnergyFraction is the minimum share of workload energy a function
	// must consume to be "a top energy consumer".
	MinEnergyFraction float64
	// MinMovementFraction is the minimum share of workload energy the
	// function's data movement must account for.
	MinMovementFraction float64
	// MinMPKI is the paper's memory-intensity threshold.
	MinMPKI float64
}

// DefaultCriteria mirrors the paper's thresholds (MPKI > 10; "significant"
// interpreted as 5% of workload energy).
func DefaultCriteria() Criteria {
	return Criteria{MinEnergyFraction: 0.05, MinMovementFraction: 0.03, MinMPKI: 10}
}

// IdentifyCandidates applies the paper's selection methodology to the
// per-function profiles of a workload run on the SoC, returning candidates
// sorted by descending energy share.
func (e *Evaluator) IdentifyCandidates(phases map[string]profile.Profile, crit Criteria) []Candidate {
	var total float64
	perFunc := make(map[string]struct {
		energy   float64
		movement float64
		mpki     float64
	}, len(phases))
	for name, p := range phases {
		b := e.CPUPhaseEnergy(p)
		perFunc[name] = struct {
			energy   float64
			movement float64
			mpki     float64
		}{b.Total(), b.DataMovement(), p.LLCMPKI()}
		total += b.Total()
	}
	if total == 0 {
		return nil
	}
	out := make([]Candidate, 0, len(phases))
	for name, f := range perFunc {
		c := Candidate{
			Function:            name,
			EnergyFraction:      f.energy / total,
			MovementFraction:    f.movement / total,
			MPKI:                f.mpki,
			SignificantEnergy:   f.energy/total >= crit.MinEnergyFraction,
			SignificantMovement: f.movement/total >= crit.MinMovementFraction,
			MemoryIntensive:     f.mpki > crit.MinMPKI,
		}
		if f.energy > 0 {
			c.OwnMovementFraction = f.movement / f.energy
		}
		c.MovementDominant = c.OwnMovementFraction > 0.5
		//lint:ignore nondeterm out is fully sorted below with a Function-name tiebreak
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyFraction != out[j].EnergyFraction {
			return out[i].EnergyFraction > out[j].EnergyFraction
		}
		return out[i].Function < out[j].Function
	})
	return out
}
