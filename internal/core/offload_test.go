package core

import (
	"testing"

	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

func planTargets() []Target {
	// Working sets exceed the 2 MiB LLC, as real PIM targets do.
	return []Target{
		{Name: "tiling", Workload: "Chrome", Kernel: texture.Kernel(1024, 1024, 1),
			Phases: []string{"texture tiling"}, AccArea: 0.25, AccUnits: 4},
		{Name: "blitting", Workload: "Chrome", Kernel: blit.Kernel(1024, 16, 1),
			Phases: []string{"color blitting"}, AccArea: 0.25, AccUnits: 4},
		{Name: "huge-accelerator", Workload: "Demo", Kernel: texture.Kernel(1024, 512, 1),
			Phases: []string{"texture tiling"}, AccArea: 9.0, AccUnits: 4},
	}
}

func TestPlanOffloadRespectsBudget(t *testing.T) {
	ev := NewEvaluator()
	plan := ev.PlanOffload(planTargets(), 3.5)
	if plan.AreaUsedMM2 > plan.BudgetMM2 {
		t.Fatalf("plan uses %.2f mm² of a %.2f mm² budget", plan.AreaUsedMM2, plan.BudgetMM2)
	}
	if plan.AreaUsedMM2 < PIMCoreArea {
		t.Error("the fallback PIM core must always be provisioned")
	}
	byName := map[string]OffloadChoice{}
	for _, c := range plan.Choices {
		byName[c.Target.Name] = c
	}
	// The 9 mm² accelerator cannot fit; its target falls back to the core.
	if byName["huge-accelerator"].Mode != PIMCore {
		t.Error("oversized accelerator was selected despite the budget")
	}
	// The small, high-benefit accelerators fit.
	if byName["tiling"].Mode != PIMAcc {
		t.Error("tiling accelerator (0.25 mm²) should fit easily")
	}
	if plan.Accelerated() < 1 {
		t.Error("no accelerators selected at all")
	}
}

func TestPlanOffloadTinyBudget(t *testing.T) {
	ev := NewEvaluator()
	// Budget only covers the PIM core: everything falls back to it.
	plan := ev.PlanOffload(planTargets(), PIMCoreArea+0.01)
	if plan.Accelerated() != 0 {
		t.Errorf("%d accelerators selected with no area for them", plan.Accelerated())
	}
	for _, c := range plan.Choices {
		if c.Mode != PIMCore {
			t.Errorf("%s: mode %v, want PIM-Core fallback", c.Target.Name, c.Mode)
		}
		if c.SavingsPJ <= 0 {
			t.Errorf("%s: fallback savings %.0f pJ; the PIM core should still win", c.Target.Name, c.SavingsPJ)
		}
	}
}

func TestPlanOffloadSavingsPositive(t *testing.T) {
	ev := NewEvaluator()
	plan := ev.PlanOffload(planTargets(), 3.5)
	if plan.TotalSavingsPJ() <= 0 {
		t.Error("plan saves no energy")
	}
	// A larger budget can never reduce total savings.
	small := ev.PlanOffload(planTargets(), 1.0)
	if plan.TotalSavingsPJ() < small.TotalSavingsPJ()-1e-6 {
		t.Errorf("bigger budget saved less: %.0f < %.0f", plan.TotalSavingsPJ(), small.TotalSavingsPJ())
	}
}

func TestPlanOffloadDeterministicOrder(t *testing.T) {
	ev := NewEvaluator()
	plan := ev.PlanOffload(planTargets(), 3.5)
	for i := 1; i < len(plan.Choices); i++ {
		if plan.Choices[i-1].Target.Name > plan.Choices[i].Target.Name {
			t.Fatal("choices not sorted by target name")
		}
	}
}

// Verify the profile phases the planner depends on behave sanely when a
// target lists no phase filter (whole-kernel evaluation).
func TestEvaluateWholeKernel(t *testing.T) {
	ev := NewEvaluator()
	res := ev.Evaluate(Target{
		Name: "whole", Workload: "Demo",
		Kernel:  profile.KernelFunc{KernelName: "k", Fn: func(ctx *profile.Ctx) { ctx.Ops(100) }},
		AccArea: 0.1,
	})
	if res.ByMode[CPUOnly].Profile.Ops != 100 {
		t.Error("whole-kernel profile not captured")
	}
}
