package core

import "sort"

// Offload planning (paper §8.1): the software interface marks offloadable
// regions; something must still decide which PIM targets get fixed-function
// accelerators, because the logic layer's area budget is shared. The paper
// sizes each accelerator against a single vault's budget; a device vendor
// building one SoC must fit the *set* of accelerators they ship. This
// planner makes that call: accelerators are chosen by energy-savings-per-
// area until the budget runs out, and everything else falls back to the
// general-purpose PIM core (which runs any target).

// OffloadChoice records the planned execution mode for one target.
type OffloadChoice struct {
	Target Target
	Mode   Mode
	// SavingsPJ is the modelled energy saving vs CPU-only for one kernel
	// execution, in pJ; BaselinePJ is the CPU-only energy it is measured
	// against.
	SavingsPJ  float64
	BaselinePJ float64
	// AreaMM2 is the logic area this choice consumes (0 when falling back
	// to the shared PIM core).
	AreaMM2 float64
}

// OffloadPlan is the outcome of planning.
type OffloadPlan struct {
	Choices []OffloadChoice
	// AreaUsedMM2 includes the PIM core (always present as the fallback)
	// plus every selected accelerator.
	AreaUsedMM2 float64
	// BudgetMM2 is the area limit the plan was built against.
	BudgetMM2 float64
}

// PlanOffload evaluates every target and packs fixed-function accelerators
// into the given logic-area budget (mm²), by descending energy savings per
// mm². Targets that do not earn an accelerator run on the PIM core, which
// is always provisioned first. Evaluations are returned through the plan
// so callers do not pay for them twice.
func (e *Evaluator) PlanOffload(targets []Target, budgetMM2 float64) OffloadPlan {
	type scored struct {
		t       Target
		res     Result
		accGain float64 // accelerator savings beyond the PIM core's
	}
	var items []scored
	for _, t := range targets {
		res := e.Evaluate(t)
		coreE := res.ByMode[PIMCore].Energy.Total()
		accE := res.ByMode[PIMAcc].Energy.Total()
		items = append(items, scored{t: t, res: res, accGain: coreE - accE})
	}
	// Most additional savings per mm² first.
	sort.Slice(items, func(i, j int) bool {
		return items[i].accGain/items[i].t.AccArea > items[j].accGain/items[j].t.AccArea
	})

	plan := OffloadPlan{BudgetMM2: budgetMM2, AreaUsedMM2: PIMCoreArea}
	for _, it := range items {
		cpuE := it.res.ByMode[CPUOnly].Energy.Total()
		choice := OffloadChoice{Target: it.t, Mode: PIMCore, BaselinePJ: cpuE,
			SavingsPJ: cpuE - it.res.ByMode[PIMCore].Energy.Total()}
		if it.accGain > 0 && plan.AreaUsedMM2+it.t.AccArea <= budgetMM2 {
			choice.Mode = PIMAcc
			choice.SavingsPJ = cpuE - it.res.ByMode[PIMAcc].Energy.Total()
			choice.AreaMM2 = it.t.AccArea
			plan.AreaUsedMM2 += it.t.AccArea
		}
		plan.Choices = append(plan.Choices, choice)
	}
	// Deterministic presentation order.
	sort.Slice(plan.Choices, func(i, j int) bool {
		return plan.Choices[i].Target.Name < plan.Choices[j].Target.Name
	})
	return plan
}

// TotalSavingsPJ sums the plan's modelled savings.
func (p OffloadPlan) TotalSavingsPJ() float64 {
	var total float64
	for _, c := range p.Choices {
		total += c.SavingsPJ
	}
	return total
}

// Accelerated returns how many targets received fixed-function logic.
func (p OffloadPlan) Accelerated() int {
	n := 0
	for _, c := range p.Choices {
		if c.Mode == PIMAcc {
			n++
		}
	}
	return n
}
