package core

import (
	"testing"

	"gopim/internal/energy"
	"gopim/internal/kernels/blit"
	"gopim/internal/kernels/texture"
	"gopim/internal/profile"
)

func TestModeString(t *testing.T) {
	if CPUOnly.String() != "CPU-Only" || PIMCore.String() != "PIM-Core" || PIMAcc.String() != "PIM-Acc" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode formatting wrong")
	}
}

func TestAreaFeasibility(t *testing.T) {
	frac, ok := AreaFeasible(PIMCoreArea)
	if !ok {
		t.Fatal("the PIM core must fit the vault budget")
	}
	// Paper §3.3: PIM core needs no more than 9.4% of the per-vault area.
	if frac > 0.10 {
		t.Errorf("PIM core uses %.1f%% of vault area, paper says <=9.4%%", frac*100)
	}
	if _, ok := AreaFeasible(10.0); ok {
		t.Error("10mm² should not fit a 3.5mm² vault budget")
	}
}

// TestTextureTilingEvaluation checks the paper's headline claims for the
// texture tiling PIM target (§4.2.2, Figure 18) at shape level.
func TestTextureTilingEvaluation(t *testing.T) {
	ev := NewEvaluator()
	res := ev.Evaluate(Target{
		Name:     "Texture Tiling",
		Workload: "Chrome",
		Kernel:   texture.Kernel(1024, 1024, 1),
		Phases:   []string{"texture tiling"},
		AccArea:  0.25,
		AccUnits: 4,
	})

	cpu := res.ByMode[CPUOnly]
	tile := cpu.Phases["texture tiling"]
	tileE := ev.CPUPhaseEnergy(tile)
	compute := 1 - tileE.DataMovementFraction()
	t.Logf("texture tiling: compute fraction %.1f%% (paper: 18.5%%), MPKI %.1f", compute*100, tile.LLCMPKI())
	if compute > 0.40 || compute < 0.05 {
		t.Errorf("tiling compute fraction = %.1f%%, want 5-40%% (paper: 18.5%%)", compute*100)
	}

	eCore := res.EnergyReduction(PIMCore)
	eAcc := res.EnergyReduction(PIMAcc)
	sCore := res.Speedup(PIMCore)
	sAcc := res.Speedup(PIMAcc)
	t.Logf("energy reduction: PIM-Core %.1f%%, PIM-Acc %.1f%% (paper avg browser kernels: 51.3%% / 61.0%%)", eCore*100, eAcc*100)
	t.Logf("speedup: PIM-Core %.2fx, PIM-Acc %.2fx (paper avg browser kernels: 1.6x / 2.0x)", sCore, sAcc)

	if eCore < 0.30 || eCore > 0.75 {
		t.Errorf("PIM-Core energy reduction %.1f%% outside 30-75%%", eCore*100)
	}
	if eAcc <= eCore {
		t.Errorf("PIM-Acc reduction (%.1f%%) must exceed PIM-Core (%.1f%%)", eAcc*100, eCore*100)
	}
	if sCore < 1.1 {
		t.Errorf("PIM-Core speedup %.2fx; PIM must not lose performance (paper criterion)", sCore)
	}
	if sAcc < sCore {
		t.Errorf("PIM-Acc (%.2fx) slower than PIM-Core (%.2fx)", sAcc, sCore)
	}
}

func TestColorBlittingEvaluation(t *testing.T) {
	ev := NewEvaluator()
	res := ev.Evaluate(Target{
		Name:     "Color Blitting",
		Workload: "Chrome",
		Kernel:   blit.Kernel(1024, 24, 1),
		AccArea:  0.25,
		AccUnits: 4,
	})
	cpu := res.ByMode[CPUOnly]
	dm := cpu.Energy.DataMovementFraction()
	t.Logf("color blitting: data movement %.1f%% of energy (paper: 63.9%%)", dm*100)
	if dm < 0.45 || dm > 0.90 {
		t.Errorf("blitting data movement fraction %.1f%%, want 45-90%% (paper: 63.9%%)", dm*100)
	}
	if res.EnergyReduction(PIMCore) <= 0 {
		t.Error("PIM-Core must reduce blitting energy")
	}
	if res.Speedup(PIMAcc) < res.Speedup(PIMCore) {
		t.Error("PIM-Acc should not be slower than PIM-Core")
	}
}

func TestCandidateIdentification(t *testing.T) {
	ev := NewEvaluator()
	_, phases := profile.Run(profile.SoC(), texture.Kernel(512, 512, 1))
	cands := ev.IdentifyCandidates(phases, DefaultCriteria())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 (rasterize + tiling)", len(cands))
	}
	var tiling *Candidate
	for i := range cands {
		if cands[i].Function == "texture tiling" {
			tiling = &cands[i]
		}
	}
	if tiling == nil {
		t.Fatal("texture tiling not among candidates")
	}
	if !tiling.MemoryIntensive {
		t.Errorf("texture tiling MPKI = %.1f, should exceed 10", tiling.MPKI)
	}
	if !tiling.Qualifies() {
		t.Errorf("texture tiling fails criteria: %+v", *tiling)
	}
}

func TestIdentifyCandidatesEmpty(t *testing.T) {
	ev := NewEvaluator()
	if got := ev.IdentifyCandidates(nil, DefaultCriteria()); got != nil {
		t.Errorf("empty phases produced candidates: %v", got)
	}
}

func TestCoherenceOverheadSmall(t *testing.T) {
	m := DefaultCoherence()
	p := profile.Profile{}
	p.Mem.BytesRead = 4 << 20
	c := m.Overhead(p)
	if c.Bytes >= p.Mem.Total()/10 {
		t.Errorf("coherence traffic %d bytes is not small relative to %d", c.Bytes, p.Mem.Total())
	}
	if c.Messages < 2 {
		t.Error("must at least count launch+retire messages")
	}
	if c.OffChipEnergy(energy.Default()) <= 0 {
		t.Error("coherence energy should be positive")
	}
}

func TestEnergyBreakdownComponents(t *testing.T) {
	ev := NewEvaluator()
	var p profile.Profile
	p.Ops = 1000
	p.MemRefs = 500
	p.LLC.Accesses = 100
	p.Mem.BytesRead = 64000

	b := ev.CPUEnergy(p, 1e-6)
	if b.CPU == 0 || b.L1 == 0 || b.LLC == 0 || b.DRAM == 0 || b.Interconnect == 0 || b.MemCtrl == 0 {
		t.Errorf("CPU breakdown has zero components: %+v", b)
	}
	if b.PIM != 0 {
		t.Error("CPU breakdown must not have PIM energy")
	}

	pc := ev.PIMCoreEnergy(p, 1e-6, Coherence{})
	if pc.CPU != 0 || pc.PIM == 0 {
		t.Errorf("PIM-Core breakdown wrong: %+v", pc)
	}
	if pc.LLC != 0 || pc.MemCtrl != 0 {
		t.Error("PIM path must not pay LLC or off-chip memory controller energy")
	}
	if pc.DRAM >= b.DRAM {
		t.Error("in-stack DRAM access must be cheaper than off-chip")
	}

	pa := ev.PIMAccEnergy(p, 1e-6, Coherence{})
	if pa.PIM >= pc.PIM {
		t.Error("accelerator compute should cost less than PIM-core compute")
	}
}
