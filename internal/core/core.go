// Package core implements the paper's primary contribution: identifying PIM
// target functions in consumer workloads (§3.2), modelling the two kinds of
// in-memory logic that can execute them — a general-purpose PIM core and
// fixed-function PIM accelerators (§3.3) — checking their area feasibility
// against the logic-layer budget of 3D-stacked memory, accounting the
// CPU↔PIM coherence traffic of fine-grained offloading (§8.2), and
// evaluating energy and runtime of each execution mode (§10).
package core

import (
	"fmt"

	"gopim/internal/dram"
	"gopim/internal/energy"
	"gopim/internal/obs"
	"gopim/internal/profile"
	"gopim/internal/timing"
	"gopim/internal/trace"
)

// Mode selects where a PIM target executes.
type Mode int

// Execution modes evaluated by the paper.
const (
	CPUOnly Mode = iota
	PIMCore
	PIMAcc
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CPUOnly:
		return "CPU-Only"
	case PIMCore:
		return "PIM-Core"
	case PIMAcc:
		return "PIM-Acc"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all execution modes in presentation order.
var Modes = []Mode{CPUOnly, PIMCore, PIMAcc}

// PIMCoreArea is the logic-layer area of one PIM core in mm² (paper §3.3,
// from the ARM Cortex-R8 footprint).
const PIMCoreArea = 0.33

// Target describes one PIM target function: an instrumented kernel plus the
// properties of its in-memory implementation.
type Target struct {
	Name     string // e.g. "Texture Tiling"
	Workload string // e.g. "Chrome"

	// Kernel performs the target's real work under instrumentation.
	Kernel profile.Kernel

	// Phases restricts the evaluation to the listed kernel phases; kernels
	// often have setup phases (e.g. rasterizing the bitmap that tiling will
	// consume) that belong to a different part of the workload. Empty means
	// the whole kernel.
	Phases []string

	// Vaults is the number of vault PIM cores the target's data
	// parallelism can use (paper: one PIM core per vault). 0 means 4.
	Vaults int

	// AccArea is the area of one fixed-function accelerator in mm²
	// (paper §§4–7 report these per target).
	AccArea float64
	// AccUnits is the number of in-memory logic units in the accelerator
	// (paper: four for the browser and TensorFlow targets). 0 means 4.
	AccUnits int
}

func (t Target) vaults() int {
	if t.Vaults <= 0 {
		return 4
	}
	return t.Vaults
}

func (t Target) accUnits() int {
	if t.AccUnits <= 0 {
		return 4
	}
	return t.AccUnits
}

// Evaluation is the modelled outcome of running a target in one mode.
type Evaluation struct {
	Mode    Mode
	Profile profile.Profile
	Phases  map[string]profile.Profile
	Energy  energy.Breakdown
	Seconds float64
}

// Result groups the evaluations of one target across modes.
type Result struct {
	Target Target
	ByMode map[Mode]Evaluation
}

// EnergyReduction returns the fractional energy reduction of mode vs
// CPU-only (0.55 means 55% lower).
func (r Result) EnergyReduction(mode Mode) float64 {
	base := r.ByMode[CPUOnly].Energy.Total()
	if base == 0 {
		return 0
	}
	return 1 - r.ByMode[mode].Energy.Total()/base
}

// Speedup returns runtime(CPU-only)/runtime(mode).
func (r Result) Speedup(mode Mode) float64 {
	t := r.ByMode[mode].Seconds
	if t == 0 {
		return 0
	}
	return r.ByMode[CPUOnly].Seconds / t
}

// Evaluator turns kernel profiles into energy and time under a parameter
// set. The zero value is not usable; use NewEvaluator.
type Evaluator struct {
	Params    energy.Params
	Coherence CoherenceModel

	// Traces, when non-nil, is a shared capture-once/replay-many kernel
	// trace cache: each keyed kernel executes once and every further
	// (kernel, hardware) profile is replayed from its trace, bit-identical
	// to a direct run. Nil profiles every kernel directly. When the cache
	// carries a persistent trace.Store, "once" stretches across processes:
	// previously recorded kernels load from disk instead of executing.
	Traces *trace.Cache

	// Obs, when non-nil, times EvaluateProfiles (the pricing arithmetic)
	// under the "phase.price" span. Pricing never touches the memory-system
	// models, so the span measures pure arithmetic.
	Obs *obs.Registry
}

// NewEvaluator returns an evaluator with the default parameters.
func NewEvaluator() *Evaluator {
	return &Evaluator{Params: energy.Default(), Coherence: DefaultCoherence()}
}

// run profiles kernel on hw through the trace cache when one is attached.
func (e *Evaluator) run(hw profile.Hardware, kernel profile.Kernel) (profile.Profile, map[string]profile.Profile) {
	if e.Traces != nil {
		return e.Traces.Profile(hw, kernel)
	}
	return profile.Run(hw, kernel)
}

// Evaluate profiles the target's kernel on the SoC and on PIM hardware and
// models all three execution modes.
func (e *Evaluator) Evaluate(t Target) Result {
	cpuTotal, cpuPhases := e.run(profile.SoC(), t.Kernel)
	pimTotal, pimPhases := e.run(profile.PIMCore(), t.Kernel)
	accTotal, accPhases := e.run(profile.PIMAcc(), t.Kernel)

	res := e.EvaluateProfiles(t,
		SelectPhases(cpuTotal, cpuPhases, t.Phases),
		SelectPhases(pimTotal, pimPhases, t.Phases),
		SelectPhases(accTotal, accPhases, t.Phases))

	// Re-attach the full per-phase maps, which only kernel execution knows.
	for mode, phases := range map[Mode]map[string]profile.Profile{
		CPUOnly: cpuPhases, PIMCore: pimPhases, PIMAcc: accPhases,
	} {
		ev := res.ByMode[mode]
		ev.Phases = phases
		res.ByMode[mode] = ev
	}
	return res
}

// EvaluateProfiles is the pricing-only half of Evaluate: given the target's
// phase-selected profiles on the three hardware configs, it models energy
// and runtime of each execution mode. It performs no kernel execution or
// replay, which lets the design-space explorer price many hardware designs
// against profiles obtained from one batched trace walk. The arithmetic —
// including the coherence overhead computed from the PIM-core profile and
// shared with the accelerator mode — is exactly Evaluate's, so results with
// equal profiles are bit-identical. The returned Evaluations carry no
// per-phase maps.
func (e *Evaluator) EvaluateProfiles(t Target, cpuProf, pimProf, accProf profile.Profile) Result {
	defer e.Obs.Span("phase.price").End()
	res := Result{Target: t, ByMode: map[Mode]Evaluation{}}

	cpuSec := timing.SoC().Seconds(cpuProf)
	res.ByMode[CPUOnly] = Evaluation{
		Mode:    CPUOnly,
		Profile: cpuProf,
		Energy:  e.CPUEnergy(cpuProf, cpuSec),
		Seconds: cpuSec,
	}

	coh := e.Coherence.Overhead(pimProf)
	coreSec := timing.PIMCore(t.vaults()).Seconds(pimProf) + coh.Latency
	res.ByMode[PIMCore] = Evaluation{
		Mode:    PIMCore,
		Profile: pimProf,
		Energy:  e.PIMCoreEnergy(pimProf, coreSec, coh),
		Seconds: coreSec,
	}

	accSec := timing.PIMAcc(t.accUnits()).Seconds(accProf) + coh.Latency
	res.ByMode[PIMAcc] = Evaluation{
		Mode:    PIMAcc,
		Profile: accProf,
		Energy:  e.PIMAccEnergy(accProf, accSec, coh),
		Seconds: accSec,
	}
	return res
}

// SelectPhases restricts a kernel profile to the named phases (the
// evaluation scope of a target), or returns the total when names is empty.
func SelectPhases(total profile.Profile, phases map[string]profile.Profile, names []string) profile.Profile {
	if len(names) == 0 {
		return total
	}
	var out profile.Profile
	for _, n := range names {
		out = out.Add(phases[n])
	}
	return out
}

// CPUEnergy models a profile executed for seconds by the SoC cores over the
// off-chip memory path.
func (e *Evaluator) CPUEnergy(p profile.Profile, seconds float64) energy.Breakdown {
	pp := e.Params
	total := float64(p.Mem.Total())
	return energy.Breakdown{
		CPU:          float64(p.Instructions())*pp.CPUInstr + seconds*pp.CPUStaticW*1e12,
		L1:           float64(p.MemRefs) * pp.L1Ref,
		LLC:          float64(p.LLC.Accesses) * pp.L2Access,
		Interconnect: total * pp.InterconnectByte,
		MemCtrl:      total * pp.MemCtrlByte,
		DRAM:         total*pp.DRAMByte + float64(p.Rows.RowOpens)*pp.RowActivate,
	}
}

// CPUPhaseEnergy models one phase of a CPU run, deriving the phase's
// runtime from its own profile.
func (e *Evaluator) CPUPhaseEnergy(p profile.Profile) energy.Breakdown {
	return e.CPUEnergy(p, timing.SoC().Seconds(p))
}

// PIMCoreEnergy models a profile executed by PIM cores inside the stack.
func (e *Evaluator) PIMCoreEnergy(p profile.Profile, seconds float64, coh Coherence) energy.Breakdown {
	pp := e.Params
	total := float64(p.Mem.Total())
	return energy.Breakdown{
		PIM:          float64(p.Instructions())*pp.PIMCoreInstr + seconds*pp.PIMCoreStaticW*1e12,
		L1:           float64(p.MemRefs) * pp.L1Ref,
		Interconnect: total*pp.StackLinkByte + coh.OffChipEnergy(pp),
		DRAM:         total*pp.StackDRAMByte + float64(p.Rows.RowOpens)*pp.StackRowActivate,
	}
}

// PIMAccEnergy models a profile executed by a fixed-function accelerator.
// SIMD instructions expand to their scalar-equivalent operation count;
// address generation and control are part of the datapath and carry no
// separate instruction cost.
func (e *Evaluator) PIMAccEnergy(p profile.Profile, seconds float64, coh Coherence) energy.Breakdown {
	pp := e.Params
	total := float64(p.Mem.Total())
	ops := float64(p.Ops) + 4*float64(p.SIMDOps)
	return energy.Breakdown{
		PIM:          ops*pp.PIMAccOp + seconds*pp.PIMAccStaticW*1e12,
		L1:           float64(p.MemRefs) * pp.PIMBufRef,
		Interconnect: total*pp.StackLinkByte + coh.OffChipEnergy(pp),
		DRAM:         total*pp.StackDRAMByte + float64(p.Rows.RowOpens)*pp.StackRowActivate,
	}
}

// Coherence quantifies the CPU↔PIM coordination cost of one offloaded
// kernel execution under the paper's fine-grained PIM-side-directory scheme.
type Coherence struct {
	Messages uint64  // directory messages exchanged
	Bytes    uint64  // bytes crossing the off-chip channel
	Latency  float64 // serial launch/completion latency in seconds
}

// OffChipEnergy returns the energy of the coherence traffic over the
// off-chip path.
func (c Coherence) OffChipEnergy(p energy.Params) float64 {
	return float64(c.Bytes) * (p.InterconnectByte + p.MemCtrlByte)
}

// CoherenceModel estimates coherence overhead from a kernel profile.
// The paper's scheme keeps a PIM-side directory so that only offload
// launch/retire messages and genuinely shared lines cross the channel.
type CoherenceModel struct {
	// MessageBytes is the size of one coherence/launch message.
	MessageBytes int
	// SharedFraction is the fraction of the kernel's memory traffic whose
	// lines are also touched by the CPU around the offload boundary and
	// therefore need directory messages.
	SharedFraction float64
	// LaunchLatency is the fixed cost of dispatching a PIM kernel and
	// observing its completion.
	LaunchLatency float64
}

// DefaultCoherence returns the model used by all experiments.
func DefaultCoherence() CoherenceModel {
	return CoherenceModel{
		MessageBytes:   8,
		SharedFraction: 0.01,
		LaunchLatency:  2e-6,
	}
}

// Overhead estimates the coherence cost of offloading a kernel with
// profile p.
func (m CoherenceModel) Overhead(p profile.Profile) Coherence {
	shared := uint64(float64(p.Mem.Total()) * m.SharedFraction)
	msgs := shared/64 + 2 // one message per shared line, plus launch+retire
	return Coherence{
		Messages: msgs,
		Bytes:    msgs * uint64(m.MessageBytes),
		Latency:  m.LaunchLatency,
	}
}

// AreaFeasible reports whether logic of the given area fits the per-vault
// logic-layer budget, returning the fraction of the budget it uses.
func AreaFeasible(areaMM2 float64) (fraction float64, ok bool) {
	fraction = areaMM2 / dram.VaultAreaBudget
	return fraction, areaMM2 <= dram.VaultAreaBudget
}
