// Package dram models the two memory systems of the evaluated platform: the
// baseline LPDDR3 channel behind the SoC, and an HMC/HBM-like 3D-stacked
// cube whose logic layer hosts the PIM logic. The models account traffic
// (bytes moved per direction) and expose the bandwidth/latency parameters
// consumed by the timing model.
package dram

import "gopim/internal/mem"

// Geometry of the evaluated 3D-stacked memory (paper Table 1).
const (
	// CubeCapacity is the capacity of one 3D-stacked cube.
	CubeCapacity = 2 << 30
	// VaultsPerCube is the number of vertical vaults per cube; each vault
	// hosts one PIM core or one PIM accelerator.
	VaultsPerCube = 16
	// InternalBandwidth is the bandwidth available to the logic layer.
	InternalBandwidth = 256e9 // bytes/s
	// ChannelBandwidth is the off-chip bandwidth available to the SoC.
	ChannelBandwidth = 32e9 // bytes/s
)

// Latencies seen by a requester, in seconds. Off-chip requests pay the
// channel crossing; logic-layer requests see only the internal access time.
const (
	OffChipLatency  = 80e-9
	InternalLatency = 45e-9
)

// Traffic accumulates byte counts moved to and from a memory device.
type Traffic struct {
	BytesRead    uint64
	BytesWritten uint64
}

// Total returns read plus written bytes.
func (t Traffic) Total() uint64 { return t.BytesRead + t.BytesWritten }

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.BytesRead += other.BytesRead
	t.BytesWritten += other.BytesWritten
}

// Meter is a cache.MemorySink that counts line-granularity traffic.
type Meter struct {
	t Traffic
	// line is the bytes one line event moves; 0 means mem.LineSize, so the
	// zero value keeps the historical 64 B accounting. Hierarchies with
	// wider lines (the design-space explorer sweeps 128 B) attach a meter
	// built with the matching line size, or every event under-counts.
	line uint64
}

// NewMeter returns a zeroed traffic meter.
func NewMeter() *Meter { return &Meter{} }

func (m *Meter) lineBytes() uint64 {
	if m.line == 0 {
		return mem.LineSize
	}
	return m.line
}

// ReadLine implements cache.MemorySink.
func (m *Meter) ReadLine(addr uint64) { m.t.BytesRead += m.lineBytes() }

// WriteLine implements cache.MemorySink.
func (m *Meter) WriteLine(addr uint64) { m.t.BytesWritten += m.lineBytes() }

// Traffic returns the accumulated counts.
func (m *Meter) Traffic() Traffic { return m.t }

// Reset zeroes the counters.
func (m *Meter) Reset() { m.t = Traffic{} }

// VaultAreaBudget is the logic-layer area available per vault for new PIM
// logic, in mm² (paper §3.3: 50–60 mm² per cube, ~3.5–4.4 mm² per vault).
// We use the conservative lower bound.
const VaultAreaBudget = 3.5

// CubeAreaBudget is the total logic-layer area available per cube, mm².
const CubeAreaBudget = 50.0
