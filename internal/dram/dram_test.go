package dram

import (
	"testing"

	"gopim/internal/mem"
)

func TestMeterCountsLines(t *testing.T) {
	m := NewMeter()
	m.ReadLine(0)
	m.ReadLine(64)
	m.WriteLine(128)
	tr := m.Traffic()
	if tr.BytesRead != 2*mem.LineSize {
		t.Errorf("BytesRead = %d, want %d", tr.BytesRead, 2*mem.LineSize)
	}
	if tr.BytesWritten != mem.LineSize {
		t.Errorf("BytesWritten = %d, want %d", tr.BytesWritten, mem.LineSize)
	}
	if tr.Total() != 3*mem.LineSize {
		t.Errorf("Total = %d", tr.Total())
	}
	m.Reset()
	if m.Traffic().Total() != 0 {
		t.Error("Reset did not clear the meter")
	}
}

func TestTrafficAdd(t *testing.T) {
	a := Traffic{BytesRead: 10, BytesWritten: 5}
	a.Add(Traffic{BytesRead: 1, BytesWritten: 2})
	if a.BytesRead != 11 || a.BytesWritten != 7 {
		t.Errorf("Add = %+v", a)
	}
}

func TestGeometryConstants(t *testing.T) {
	// Paper Table 1 values.
	if CubeCapacity != 2<<30 {
		t.Error("cube capacity should be 2 GB")
	}
	if VaultsPerCube != 16 {
		t.Error("16 vaults per cube")
	}
	if InternalBandwidth/ChannelBandwidth != 8 {
		t.Errorf("internal/off-chip bandwidth ratio = %.1f, want 8 (256/32 GB/s)",
			InternalBandwidth/ChannelBandwidth)
	}
	if InternalLatency >= OffChipLatency {
		t.Error("logic-layer latency must be below off-chip latency")
	}
	// Per-vault budget consistent with the cube-level budget (§3.3).
	if VaultAreaBudget*VaultsPerCube > CubeAreaBudget+10 {
		t.Errorf("per-vault budgets (%.1f x %d) exceed the cube budget (%.1f)",
			VaultAreaBudget, VaultsPerCube, CubeAreaBudget)
	}
}
