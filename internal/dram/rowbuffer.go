package dram

// Row-buffer model: DRAM accesses that hit an open row cost much less than
// ones that must activate a new row. The meter variant below tracks per-
// bank open rows, giving the row-buffer locality statistics that separate
// streaming kernels (texture tiling's tile writes) from scattered ones
// (motion compensation's reference fetches), and letting the energy model
// charge activations separately.

// Bank geometry for the modelled LPDDR3/stacked devices.
const (
	// RowSize is the DRAM page (row) size per bank.
	RowSize = 2048
	// BankCount is the number of banks interleaved at row granularity.
	BankCount = 8
)

// RowStats counts row-buffer behaviour.
type RowStats struct {
	Accesses uint64 // line-granularity accesses
	RowHits  uint64 // served from an open row
	RowOpens uint64 // activations (misses + first touches)
}

// HitRate returns RowHits/Accesses, or 0 when idle.
func (s RowStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// RowMeter is a cache.MemorySink that, in addition to byte counts, tracks
// row-buffer hits and activations across BankCount banks.
type RowMeter struct {
	Meter
	rows  RowStats
	open  [BankCount]uint64
	valid [BankCount]bool
}

// NewRowMeter returns a zeroed row-aware traffic meter.
func NewRowMeter() *RowMeter { return &RowMeter{} }

// NewRowMeterLine returns a zeroed row-aware meter whose byte accounting
// charges lineBytes per line event (0 means mem.LineSize). Attach it to
// hierarchies whose line size differs from the 64 B default.
func NewRowMeterLine(lineBytes int) *RowMeter {
	m := &RowMeter{}
	m.line = uint64(lineBytes)
	return m
}

// ReadLine implements cache.MemorySink.
func (m *RowMeter) ReadLine(addr uint64) {
	m.Meter.ReadLine(addr)
	m.touch(addr)
}

// WriteLine implements cache.MemorySink.
func (m *RowMeter) WriteLine(addr uint64) {
	m.Meter.WriteLine(addr)
	m.touch(addr)
}

func (m *RowMeter) touch(addr uint64) {
	row := addr / RowSize
	bank := int(row % BankCount) // rows interleave across banks
	m.rows.Accesses++
	if m.valid[bank] && m.open[bank] == row {
		m.rows.RowHits++
		return
	}
	m.rows.RowOpens++
	m.open[bank] = row
	m.valid[bank] = true
}

// RowStats returns the accumulated row-buffer counters.
func (m *RowMeter) RowStats() RowStats { return m.rows }

// Reset zeroes counters and closes all rows.
func (m *RowMeter) Reset() {
	m.Meter.Reset()
	m.rows = RowStats{}
	for i := range m.valid {
		m.valid[i] = false
	}
}
