package dram

import (
	"math/rand"
	"testing"

	"gopim/internal/mem"
)

func TestRowMeterStreamingHitsRows(t *testing.T) {
	m := NewRowMeter()
	// Stream 4 rows' worth of lines sequentially: within each row, every
	// access after the first hits the open row.
	for addr := uint64(0); addr < 4*RowSize; addr += mem.LineSize {
		m.ReadLine(addr)
	}
	st := m.RowStats()
	linesPerRow := uint64(RowSize / mem.LineSize)
	if st.RowOpens != 4 {
		t.Errorf("opens = %d, want 4 (one per row)", st.RowOpens)
	}
	if st.RowHits != 4*(linesPerRow-1) {
		t.Errorf("hits = %d, want %d", st.RowHits, 4*(linesPerRow-1))
	}
	if hr := st.HitRate(); hr < 0.9 {
		t.Errorf("streaming hit rate %.2f, want > 0.9", hr)
	}
	// Byte accounting still works through the embedded meter.
	if m.Traffic().BytesRead != 4*RowSize {
		t.Errorf("bytes read = %d", m.Traffic().BytesRead)
	}
}

func TestRowMeterRandomThrashesRows(t *testing.T) {
	m := NewRowMeter()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		m.ReadLine(uint64(rng.Intn(1<<28)) &^ (mem.LineSize - 1))
	}
	if hr := m.RowStats().HitRate(); hr > 0.1 {
		t.Errorf("random access hit rate %.2f, want near 0", hr)
	}
}

func TestRowMeterBankInterleaving(t *testing.T) {
	m := NewRowMeter()
	// Alternate between two rows in *different* banks: both stay open.
	a := uint64(0)       // row 0 -> bank 0
	b := uint64(RowSize) // row 1 -> bank 1
	for i := 0; i < 100; i++ {
		m.ReadLine(a)
		m.ReadLine(b)
	}
	st := m.RowStats()
	if st.RowOpens != 2 {
		t.Errorf("opens = %d, want 2 (banks hold both rows open)", st.RowOpens)
	}
	// Alternate between two rows in the *same* bank: every access misses.
	m.Reset()
	a = 0
	b = uint64(RowSize * BankCount) // same bank, different row
	for i := 0; i < 100; i++ {
		m.ReadLine(a)
		m.ReadLine(b)
	}
	st = m.RowStats()
	if st.RowHits != 0 {
		t.Errorf("same-bank conflict produced %d hits, want 0", st.RowHits)
	}
}

func TestRowMeterReset(t *testing.T) {
	m := NewRowMeter()
	m.WriteLine(0)
	m.Reset()
	if m.RowStats().Accesses != 0 || m.Traffic().Total() != 0 {
		t.Error("Reset incomplete")
	}
	m.ReadLine(0)
	if m.RowStats().RowOpens != 1 {
		t.Error("row left open across Reset")
	}
}
