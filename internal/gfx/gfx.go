// Package gfx provides the raster types shared by the Chrome browser
// kernels: 32-bit RGBA bitmaps, rectangles, and deterministic synthetic
// content generators used in place of real web page pixels.
package gfx

import "fmt"

// BytesPerPixel is the size of one RGBA pixel.
const BytesPerPixel = 4

// Color is a non-premultiplied RGBA color.
type Color struct {
	R, G, B, A uint8
}

// Bitmap is a linear, row-major 32-bit RGBA raster. Stride is in bytes and
// is at least W*BytesPerPixel; Pix holds H*Stride bytes.
type Bitmap struct {
	W, H   int
	Stride int
	Pix    []byte
}

// NewBitmap allocates a tightly-packed bitmap.
func NewBitmap(w, h int) *Bitmap {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("gfx: bad bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, Stride: w * BytesPerPixel, Pix: make([]byte, w*h*BytesPerPixel)}
}

// FromPix wraps an existing pixel slice (e.g. simulated memory) as a
// tightly-packed bitmap. len(pix) must be at least w*h*4.
func FromPix(w, h int, pix []byte) *Bitmap {
	need := w * h * BytesPerPixel
	if len(pix) < need {
		panic(fmt.Sprintf("gfx: pixel slice %d too small for %dx%d (%d)", len(pix), w, h, need))
	}
	return &Bitmap{W: w, H: h, Stride: w * BytesPerPixel, Pix: pix[:need]}
}

// At returns the pixel at (x, y).
func (b *Bitmap) At(x, y int) Color {
	i := y*b.Stride + x*BytesPerPixel
	return Color{b.Pix[i], b.Pix[i+1], b.Pix[i+2], b.Pix[i+3]}
}

// Set writes the pixel at (x, y).
func (b *Bitmap) Set(x, y int, c Color) {
	i := y*b.Stride + x*BytesPerPixel
	b.Pix[i], b.Pix[i+1], b.Pix[i+2], b.Pix[i+3] = c.R, c.G, c.B, c.A
}

// RowOffset returns the byte offset of the first pixel of row y.
func (b *Bitmap) RowOffset(y int) int { return y * b.Stride }

// Rect is an axis-aligned rectangle; Max is exclusive.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// Dx returns the width.
func (r Rect) Dx() int { return r.MaxX - r.MinX }

// Dy returns the height.
func (r Rect) Dy() int { return r.MaxY - r.MinY }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Clip returns r intersected with the bounds of b.
func (r Rect) Clip(b *Bitmap) Rect {
	if r.MinX < 0 {
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MinY = 0
	}
	if r.MaxX > b.W {
		r.MaxX = b.W
	}
	if r.MaxY > b.H {
		r.MaxY = b.H
	}
	return r
}

// FillPattern writes a deterministic position-dependent pattern into the
// whole bitmap, so that data-movement tests can verify content survives
// reorganization (tiling, blitting) bit-exactly.
func (b *Bitmap) FillPattern(seed uint32) {
	for y := 0; y < b.H; y++ {
		row := b.Pix[y*b.Stride:]
		for x := 0; x < b.W; x++ {
			v := pixelHash(uint32(x), uint32(y), seed)
			i := x * BytesPerPixel
			row[i] = byte(v)
			row[i+1] = byte(v >> 8)
			row[i+2] = byte(v >> 16)
			row[i+3] = 0xFF
		}
	}
}

func pixelHash(x, y, seed uint32) uint32 {
	h := x*0x9E3779B1 ^ y*0x85EBCA77 ^ seed*0xC2B2AE3D
	h ^= h >> 15
	h *= 0x27D4EB2F
	h ^= h >> 13
	return h
}
