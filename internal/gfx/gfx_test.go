package gfx

import "testing"

func TestBitmapSetAt(t *testing.T) {
	b := NewBitmap(8, 4)
	c := Color{R: 1, G: 2, B: 3, A: 4}
	b.Set(7, 3, c)
	if got := b.At(7, 3); got != c {
		t.Errorf("At(7,3) = %+v, want %+v", got, c)
	}
	if got := b.At(0, 0); got != (Color{}) {
		t.Errorf("At(0,0) = %+v, want zero", got)
	}
}

func TestNewBitmapBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitmap(-1, 2) did not panic")
		}
	}()
	NewBitmap(-1, 2)
}

func TestFromPix(t *testing.T) {
	pix := make([]byte, 100*BytesPerPixel)
	b := FromPix(10, 10, pix)
	b.Set(5, 5, Color{R: 9})
	if pix[5*b.Stride+5*BytesPerPixel] != 9 {
		t.Error("FromPix does not share backing storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromPix with short slice did not panic")
		}
	}()
	FromPix(10, 11, pix)
}

func TestRect(t *testing.T) {
	r := Rect{MinX: 2, MinY: 3, MaxX: 10, MaxY: 7}
	if r.Dx() != 8 || r.Dy() != 4 {
		t.Errorf("Dx/Dy = %d/%d, want 8/4", r.Dx(), r.Dy())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{MinX: 5, MaxX: 5, MinY: 0, MaxY: 1}).Empty() {
		t.Error("zero-width rect not empty")
	}
	b := NewBitmap(8, 8)
	clipped := Rect{MinX: -4, MinY: -4, MaxX: 100, MaxY: 100}.Clip(b)
	if clipped != (Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}) {
		t.Errorf("Clip = %+v", clipped)
	}
}

func TestFillPatternDeterministic(t *testing.T) {
	a := NewBitmap(16, 16)
	b := NewBitmap(16, 16)
	a.FillPattern(42)
	b.FillPattern(42)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pattern not deterministic at byte %d", i)
		}
	}
	c := NewBitmap(16, 16)
	c.FillPattern(43)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical patterns")
	}
}

func TestRowOffset(t *testing.T) {
	b := NewBitmap(10, 10)
	if b.RowOffset(3) != 3*b.Stride {
		t.Errorf("RowOffset(3) = %d, want %d", b.RowOffset(3), 3*b.Stride)
	}
}
