package workloads

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCodecThroughPublicAPI(t *testing.T) {
	cfg := CodecConfig{Width: 96, Height: 64, QIndex: 20}
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	synth := NewSynth(96, 64, 2, 5)
	for i := 0; i < 3; i++ {
		src := synth.Frame(i)
		data, recon, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Y, recon.Y) {
			t.Fatalf("frame %d: decode mismatch", i)
		}
		if p := PSNR(src, got); p < 25 {
			t.Errorf("frame %d PSNR %.1f too low", i, p)
		}
	}
}

func TestQuantGEMMThroughPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lhs := NewQuantMatrix(5, 7)
	rhs := NewQuantMatrix(7, 3)
	rng.Read(lhs.Data)
	rng.Read(rhs.Data)
	out := QuantGEMM(lhs, rhs, 3, 4)
	if len(out) != 15 {
		t.Fatalf("result has %d elements, want 15", len(out))
	}
	// Spot check one element against a direct dot product.
	var want int32
	for k := 0; k < 7; k++ {
		want += (int32(lhs.At(1, k)) - 3) * (int32(rhs.At(k, 2)) - 4)
	}
	if out[1*3+2] != want {
		t.Errorf("element (1,2) = %d, want %d", out[1*3+2], want)
	}
}

func TestQuantizeRoundTripPublicAPI(t *testing.T) {
	src := []float32{-1, 0, 0.5, 2.5}
	q, p := Quantize(src)
	back := Dequantize(q, p)
	for i := range src {
		d := back[i] - src[i]
		if d < 0 {
			d = -d
		}
		if d > p.Scale {
			t.Errorf("element %d error %f exceeds scale %f", i, d, p.Scale)
		}
	}
	if _, rp := Requantize([]int32{-5, 0, 5}); rp.Scale <= 0 {
		t.Error("requantize scale must be positive")
	}
}

func TestConv2DPublicAPI(t *testing.T) {
	input := make([]uint8, 8*8*2)
	rand.New(rand.NewSource(2)).Read(input)
	w := NewQuantMatrix(3*3*2, 4)
	rand.New(rand.NewSource(3)).Read(w.Data)
	out := Conv2D(input, 8, 8, 2, w, 3, 1, 10, 7)
	if len(out) != 8*8*4 {
		t.Fatalf("conv output %d elements, want %d", len(out), 8*8*4)
	}
}

func TestNetworkTablesPublicAPI(t *testing.T) {
	for _, net := range []Network{VGG19(), ResNetV2152(), InceptionResNetV2(), ResidualGRU()} {
		if net.Name == "" || len(net.Layers) == 0 {
			t.Errorf("network %q incomplete", net.Name)
		}
		if net.MACs(1) == 0 {
			t.Errorf("%s has zero MACs", net.Name)
		}
	}
}

func TestZRAMPublicAPI(t *testing.T) {
	pool := NewZRAMPool()
	mem := TabMemory(128<<10, 7)
	pool.SwapOut(1, mem)
	got, err := pool.SwapIn(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mem) {
		t.Error("ZRAM round trip corrupted memory")
	}
	res, err := RunSwitchSession(6, 2, 64<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOut == 0 {
		t.Error("no swap traffic in session")
	}
}

func TestLZOPublicAPI(t *testing.T) {
	src := bytes.Repeat([]byte("public api "), 500)
	comp := LZOCompress(src)
	out, err := LZODecompress(comp, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Error("LZO round trip failed")
	}
	if len(comp) >= len(src)/2 {
		t.Errorf("repetitive text compressed only to %d/%d", len(comp), len(src))
	}
}

func TestScrollPagesPublicAPI(t *testing.T) {
	if len(ScrollPages()) != 6 {
		t.Error("expected the paper's six pages")
	}
}
