// Package workloads exposes the consumer-workload implementations behind
// the PIM study as a usable library surface: the VP9-class codec, the
// quantized inference stack, the Chrome-like browser models, and the LZO
// compressor. Everything here is real, tested code — the same
// implementations the experiments profile.
package workloads

import (
	"gopim/internal/browser"
	"gopim/internal/lzo"
	"gopim/internal/nn"
	"gopim/internal/qgemm"
	"gopim/internal/video"
	"gopim/internal/vp9"
)

// ---- Video: frames, synthetic clips, and the VP9-class codec ----

type (
	// Frame is a YUV 4:2:0 picture.
	Frame = video.Frame
	// Synth generates deterministic synthetic video.
	Synth = video.Synth
	// CodecConfig parameterizes an encoder/decoder pair.
	CodecConfig = vp9.Config
	// Encoder compresses frames.
	Encoder = vp9.Encoder
	// Decoder decompresses bitstreams produced by Encoder.
	Decoder = vp9.Decoder
	// CodecStats aggregates codec work counters.
	CodecStats = vp9.Stats
)

// NewFrame allocates a zeroed YUV 4:2:0 frame.
func NewFrame(w, h int) *Frame { return video.NewFrame(w, h) }

// NewSynth returns a synthetic video generator.
func NewSynth(w, h, objects int, seed uint32) *Synth { return video.NewSynth(w, h, objects, seed) }

// PSNR returns luma peak signal-to-noise ratio in dB.
func PSNR(want, got *Frame) float64 { return video.PSNR(want, got) }

// NewEncoder returns a video encoder.
func NewEncoder(cfg CodecConfig) (*Encoder, error) { return vp9.NewEncoder(cfg) }

// NewDecoder returns a video decoder.
func NewDecoder(cfg CodecConfig) (*Decoder, error) { return vp9.NewDecoder(cfg) }

// ---- Machine learning: quantized GEMM and network tables ----

type (
	// QuantMatrix is a row-major uint8 matrix.
	QuantMatrix = qgemm.Matrix
	// QuantParams is an affine quantization (real = Min + Scale*q).
	QuantParams = qgemm.QParams
	// Network is a neural network described as a stack of GEMM shapes.
	Network = nn.Network
	// NetLayer is one layer of a Network.
	NetLayer = nn.Layer
)

// Quantize converts float32 values to uint8 levels (two-pass min/max scan
// then conversion, as TensorFlow Mobile does).
func Quantize(src []float32) ([]uint8, QuantParams) { return qgemm.Quantize(src) }

// Dequantize expands levels back to float32.
func Dequantize(src []uint8, p QuantParams) []float32 { return qgemm.Dequantize(src, p) }

// Requantize converts int32 GEMM accumulators to uint8.
func Requantize(src []int32) ([]uint8, QuantParams) { return qgemm.Requantize(src) }

// NewQuantMatrix allocates a zeroed matrix.
func NewQuantMatrix(rows, cols int) QuantMatrix { return qgemm.NewMatrix(rows, cols) }

// QuantGEMM multiplies two uint8 matrices (with zero points) through the
// full packed pipeline, returning int32 accumulators in row-major order.
func QuantGEMM(lhs, rhs QuantMatrix, lhsZero, rhsZero int32) []int32 {
	return qgemm.GEMM(qgemm.PackLHS(lhs), qgemm.PackRHS(rhs), lhsZero, rhsZero)
}

// Conv2D performs a quantized 2-D convolution (im2col + packed GEMM) over
// an NHWC uint8 feature map with SAME padding, returning int32 accumulators
// of shape outH*outW x outC.
func Conv2D(input []uint8, h, w, c int, weights QuantMatrix, filter, stride int, inZero, wZero int32) []int32 {
	return nn.Conv2D(input, h, w, c, weights, filter, stride, inZero, wZero)
}

// The paper's four evaluated networks (layer shape tables).
func VGG19() Network             { return nn.VGG19() }
func ResNetV2152() Network       { return nn.ResNetV2152() }
func InceptionResNetV2() Network { return nn.InceptionResNetV2() }
func ResidualGRU() Network       { return nn.ResidualGRU() }

// ---- Browser: page specs, tab switching, ZRAM ----

type (
	// PageSpec describes a synthetic web page's content mix.
	PageSpec = browser.PageSpec
	// ZRAMPool is the compressed tab swap space.
	ZRAMPool = browser.ZRAMPool
	// SwitchResult is the outcome of a tab-switching session.
	SwitchResult = browser.SwitchResult
)

// ScrollPages returns the six-page scrolling set of the paper's Figure 1.
func ScrollPages() []PageSpec { return browser.ScrollPages() }

// NewZRAMPool returns an empty compressed swap pool.
func NewZRAMPool() *ZRAMPool { return browser.NewZRAMPool() }

// TabMemory generates a tab's process memory image.
func TabMemory(footprint int, seed int64) []byte { return browser.TabMemory(footprint, seed) }

// RunSwitchSession simulates opening and switching between tabs with ZRAM
// compression of inactive tabs (the paper's Figure 4 experiment).
func RunSwitchSession(nTabs, residentBudget, footprint int, seed int64) (SwitchResult, error) {
	return browser.RunSwitchSession(nTabs, residentBudget, footprint, seed)
}

// ---- Compression ----

// LZOCompress compresses src with the LZO1X-style algorithm ZRAM uses.
func LZOCompress(src []byte) []byte { return lzo.Compress(src) }

// LZODecompress expands a block produced by LZOCompress; maxLen bounds the
// output size.
func LZODecompress(src []byte, maxLen int) ([]byte, error) { return lzo.Decompress(src, maxLen) }
