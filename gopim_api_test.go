package gopim_test

import (
	"testing"

	"gopim"
)

func TestTargetsCoverAllWorkloads(t *testing.T) {
	targets := gopim.Targets(gopim.Quick)
	if len(targets) != 9 {
		t.Fatalf("got %d targets, want 9 (paper §§4-7)", len(targets))
	}
	workloads := map[string]int{}
	names := map[string]bool{}
	for _, tgt := range targets {
		workloads[tgt.Workload]++
		if names[tgt.Name] {
			t.Errorf("duplicate target %q", tgt.Name)
		}
		names[tgt.Name] = true
		if tgt.Kernel == nil {
			t.Errorf("%s has no kernel", tgt.Name)
		}
		if tgt.AccArea <= 0 {
			t.Errorf("%s has no accelerator area", tgt.Name)
		}
		if frac, ok := gopim.AreaFeasible(tgt.AccArea); !ok || frac > 1 {
			t.Errorf("%s accelerator (%.2f mm²) not feasible", tgt.Name, tgt.AccArea)
		}
	}
	want := map[string]int{"Chrome": 4, "TensorFlow": 2, "Video Playback": 2, "Video Capture": 1}
	for wl, n := range want {
		if workloads[wl] != n {
			t.Errorf("%s has %d targets, want %d", wl, workloads[wl], n)
		}
	}
}

func TestEvalClipCached(t *testing.T) {
	a := gopim.EvalClip(gopim.Quick)
	b := gopim.EvalClip(gopim.Quick)
	if a != b {
		t.Error("EvalClip must cache the encoded clip per scale")
	}
	if len(a.Frames) == 0 || len(a.Streams) != len(a.Frames) {
		t.Error("clip incomplete")
	}
}

func TestRunKernelPublicAPI(t *testing.T) {
	k := gopim.KernelFunc{
		KernelName: "smoke",
		Fn: func(ctx *gopim.Ctx) {
			buf := ctx.Alloc("buf", 1<<20)
			ctx.SetPhase("stream")
			for off := 0; off < buf.Len(); off += 4096 {
				ctx.LoadV(buf, off, 4096)
			}
			ctx.Ops(1000)
		},
	}
	prof, phases := gopim.RunKernel(gopim.SoC(), k)
	if prof.Instructions() == 0 {
		t.Fatal("no instructions recorded through the public API")
	}
	if _, ok := phases["stream"]; !ok {
		t.Fatal("phase missing")
	}
	// The same kernel on PIM hardware sees no LLC.
	pimProf, _ := gopim.RunKernel(gopim.PIMCoreHW(), k)
	if pimProf.LLC.Accesses != 0 {
		t.Error("PIM hardware should have no LLC")
	}
}

func TestEvaluatePublicAPI(t *testing.T) {
	k := gopim.KernelFunc{
		KernelName: "streaming copy",
		Fn: func(ctx *gopim.Ctx) {
			src := ctx.Alloc("src", 8<<20)
			dst := ctx.Alloc("dst", 8<<20)
			for off := 0; off < src.Len(); off += 4096 {
				ctx.LoadV(src, off, 4096)
				ctx.StoreV(dst, off, 4096)
			}
		},
	}
	res := gopim.Evaluate(gopim.Target{Name: "copy", Workload: "demo", Kernel: k, AccArea: 0.1})
	if len(res.ByMode) != 3 {
		t.Fatalf("got %d modes", len(res.ByMode))
	}
	// A pure streaming copy is the ideal PIM case: both PIM modes must win
	// on energy and time.
	for _, mode := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
		if res.EnergyReduction(mode) <= 0 {
			t.Errorf("%s: no energy win on a pure copy", mode)
		}
		if res.Speedup(mode) <= 1 {
			t.Errorf("%s: no speedup on a pure copy", mode)
		}
	}
}

func TestDefaultEnergyParams(t *testing.T) {
	p := gopim.DefaultEnergyParams()
	if p.CPUInstr <= 0 || p.DRAMByte <= 0 {
		t.Error("default parameters incomplete")
	}
}
