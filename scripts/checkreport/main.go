// Command checkreport validates a pimsim run report (the -report JSON):
// schema version, structural sanity of the metrics snapshot, and — with
// -warm — the warm-store invariants CI keeps continuously true: a run
// served entirely from a packed persistent trace store must hit the store
// 100% of the time and execute zero kernels (PR 6's "cold ≈ warm" claim).
//
// Usage:
//
//	go run ./scripts/checkreport [-warm] report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gopim/internal/obs"
)

func main() {
	warm := flag.Bool("warm", false, "assert warm-store invariants: 100% store hit rate, zero kernel executions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: checkreport [-warm] <report.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("parsing %s: %v", path, err)
	}

	var problems []string
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if rep.Version != obs.ReportVersion {
		bad("version %d, want %d", rep.Version, obs.ReportVersion)
	}
	if rep.Meta.Command == "" {
		bad("meta.command is empty")
	}
	if rep.Meta.Workers < 1 {
		bad("meta.workers %d, want >= 1", rep.Meta.Workers)
	}
	if rep.WallNS <= 0 {
		bad("wall_ns %d, want > 0", rep.WallNS)
	}
	if rep.Metrics.Counters == nil || rep.Metrics.Gauges == nil {
		bad("metrics snapshot is missing counter/gauge maps")
	}
	for name, v := range rep.Metrics.Counters {
		if v < 0 {
			bad("counter %s is negative: %d", name, v)
		}
	}
	// The report is written after the run quiesces, so each histogram's
	// buckets must exactly account for its count, in ascending bound order.
	for name, h := range rep.Metrics.Histograms {
		var inBuckets int64
		prev := int64(-1)
		for _, b := range h.Buckets {
			inBuckets += b.Count
			if b.Count <= 0 {
				bad("histogram %s has empty bucket le=%d", name, b.Le)
			}
			if b.Le <= prev {
				bad("histogram %s buckets not in ascending le order", name)
			}
			prev = b.Le
		}
		if inBuckets != h.Count {
			bad("histogram %s buckets sum to %d, count is %d", name, inBuckets, h.Count)
		}
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"trace_cache_hit_rate", rep.Derived.TraceCacheHitRate},
		{"store_hit_rate", rep.Derived.StoreHitRate},
		{"worker_utilization", rep.Derived.WorkerUtilization},
	} {
		if r.v < 0 || r.v > 1 {
			bad("derived %s %.4f outside [0, 1]", r.name, r.v)
		}
	}
	if rep.Derived.KernelExecutions < 0 {
		bad("derived kernel_executions is negative: %d", rep.Derived.KernelExecutions)
	}
	// Worker utilization must be real whenever the pool ran: par.ForEach
	// times every path (including the single-core inline one), so a report
	// with busy time but a zero ratio means the accounting broke again —
	// the pr8 records carried worker_utilization: 0 for exactly that gap.
	if busy := rep.Metrics.Counters["par.worker.busy_ns"]; busy > 0 && rep.Derived.WorkerUtilization <= 0 {
		bad("worker pool was busy %d ns but derived worker_utilization is %.4f, want > 0", busy, rep.Derived.WorkerUtilization)
	}
	if _, ok := rep.Metrics.Counters["par.worker.busy_ns"]; !ok && rep.Meta.Command == "run" {
		bad("run report has no par.worker.busy_ns counter: worker accounting never reached the registry")
	}

	if *warm {
		hits := rep.Metrics.Counters[obs.PrefixTraceStore+"hits"]
		if hits <= 0 {
			bad("warm run loaded nothing from the trace store (%d hits)", hits)
		}
		if rep.Derived.StoreHitRate != 1 {
			bad("warm store hit rate %.4f, want 1.0", rep.Derived.StoreHitRate)
		}
		if rep.Derived.KernelExecutions != 0 {
			bad("warm run executed %d kernels, want 0", rep.Derived.KernelExecutions)
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "checkreport: %s: %s\n", path, p)
		}
		os.Exit(1)
	}
	mode := "report"
	if *warm {
		mode = "warm report"
	}
	fmt.Fprintf(os.Stderr, "checkreport: %s: valid %s (v%d, %s, %d counters, %d histograms)\n",
		path, mode, rep.Version, rep.Meta.Command, len(rep.Metrics.Counters), len(rep.Metrics.Histograms))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkreport: "+format+"\n", args...)
	os.Exit(1)
}
