#!/bin/sh
# Full verification gate: vet, build, and the complete test suite under the
# race detector. The determinism tests in experiments/ run three full
# experiment sweeps, so give the suite a generous timeout.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race -timeout 45m ./...
