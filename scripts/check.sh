#!/bin/sh
# Full verification gate: static analysis first (it fails in seconds,
# before the expensive sweeps), then vet, build, and the complete test
# suite under the race detector. The determinism tests in experiments/
# run three full experiment sweeps, so give the suite a generous timeout.
set -eux

cd "$(dirname "$0")/.."

# Static invariants (internal/lint): the stderr summary line reports
# analyzer count and files scanned; nonzero exit means findings. The lint
# pass builds a module-wide call graph, so gate its wall time too — if it
# creeps past 30 seconds it has stopped being the cheap first check this
# script depends on (see also BenchmarkGopimlint in internal/lint).
lint_start=$(date +%s)
go run ./cmd/gopimlint ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -ge 30 ]; then
	echo "check.sh: gopimlint took ${lint_elapsed}s (budget: 30s); profile the analyzers before merging" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race -timeout 45m ./...

# Replay-equivalence gate: record+replay must match direct execution
# bit-for-bit for every kernel family on every hardware config.
go test -race -count=1 -run 'TestReplayEquivalence|TestCache' ./internal/trace

# Batched-replay equivalence gate: one multi-config stream walk must be
# byte-identical to K independent serial walks, at both layers.
go test -race -count=1 -run 'TestReplayStreamBatch|TestReplayBatch|TestHierarchySet' ./internal/cache ./internal/trace

# Batched-replay perf gate: pricing the K=8 sweep family in one walk must
# be at least 2x faster than 8 serial replays (no -race: it times).
GOPIM_PERF_GATE=1 go test -count=1 -run TestBatchReplaySpeedup -v ./internal/trace

# Explorer equivalence gate: `explore -mode paper` must reproduce the
# paper pipeline (Evaluator.Evaluate) exactly from batch-replayed traces.
go test -race -count=1 -run TestExplorePaperConfigsMatchEvaluate ./experiments

# End-to-end trace-cache gate: the full default-scale sweep must render
# byte-identical output with the kernel trace cache on and off, and — with
# it on — through both replay engines (the compiled line-stream engine and
# the reference interpreter). -tracestore=off pins these three runs to the
# pure in-memory paths.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/pimsim" ./cmd/pimsim
"$tmpdir/pimsim" -tracestore=off -tracecache=off run all > "$tmpdir/off.txt"
"$tmpdir/pimsim" -tracestore=off -tracecache=on -replay=compiled run all > "$tmpdir/on.txt"
"$tmpdir/pimsim" -tracestore=off -tracecache=on -replay=interp run all > "$tmpdir/interp.txt"
cmp "$tmpdir/off.txt" "$tmpdir/on.txt"
cmp "$tmpdir/on.txt" "$tmpdir/interp.txt"

# Explore smoke: a seeded random sweep renders in all three formats, and
# its output is byte-identical across worker counts.
"$tmpdir/pimsim" -tracestore=off explore -mode random -n 40 -seed 7 > "$tmpdir/explore.txt"
"$tmpdir/pimsim" -tracestore=off -workers 4 explore -mode random -n 40 -seed 7 > "$tmpdir/explore-w4.txt"
cmp "$tmpdir/explore.txt" "$tmpdir/explore-w4.txt"
"$tmpdir/pimsim" -tracestore=off explore -mode random -n 40 -seed 7 -format csv > /dev/null
"$tmpdir/pimsim" -tracestore=off explore -mode random -n 40 -seed 7 -format json > /dev/null

# Persistent trace-store gate: pack a store, then require byte-identical
# output from a cold process reading it, a clean `trace verify`, and — after
# corrupting every entry — a verify that fails plus a run that falls back to
# re-recording with output still byte-identical.
store="$tmpdir/store"
"$tmpdir/pimsim" -tracestore="$store" trace pack
"$tmpdir/pimsim" -tracestore="$store" trace verify
"$tmpdir/pimsim" -tracestore="$store" run all > "$tmpdir/store.txt"
cmp "$tmpdir/off.txt" "$tmpdir/store.txt"
for f in "$store"/v*/*/*.trace; do truncate -s -3 "$f"; done
if "$tmpdir/pimsim" -tracestore="$store" trace verify > /dev/null; then
	echo "check.sh: trace verify missed injected corruption" >&2
	exit 1
fi
"$tmpdir/pimsim" -tracestore="$store" run all > "$tmpdir/corrupt.txt"
cmp "$tmpdir/off.txt" "$tmpdir/corrupt.txt"
# The corrupted run's write-through must have repaired the store.
"$tmpdir/pimsim" -tracestore="$store" trace verify

# Observability gate: -stats, -report, and a live -metrics-addr listener
# must leave stdout byte-identical to a plain run; the stats breakdown goes
# to stderr; and the warm-store report must validate (100% store hit rate,
# zero kernel executions — checkreport -warm).
"$tmpdir/pimsim" -tracestore="$store" run all -stats -report "$tmpdir/report.json" -metrics-addr 127.0.0.1:0 \
	> "$tmpdir/obs.txt" 2> "$tmpdir/obs.log"
cmp "$tmpdir/off.txt" "$tmpdir/obs.txt"
grep -q '== pimsim run report' "$tmpdir/obs.log"
go run ./scripts/checkreport -warm "$tmpdir/report.json"

# Same identity for the explorer: a swept -stats run renders byte-identical
# output and a valid (cold: no store attached) report.
"$tmpdir/pimsim" -tracestore=off explore -mode random -n 40 -seed 7 -stats -report "$tmpdir/explore-report.json" \
	> "$tmpdir/explore-obs.txt" 2> /dev/null
cmp "$tmpdir/explore.txt" "$tmpdir/explore-obs.txt"
go run ./scripts/checkreport "$tmpdir/explore-report.json"

# pimsimd gate (simulation-as-a-service): K concurrent identical sweep
# submissions over HTTP against the packed store must return bytes
# identical to `pimsim run all`, execute each kernel at most once
# (obs-report-verified: kernel_executions == unique kernels — zero on this
# warm store), coalesce every duplicate cell onto one computation, answer
# /healthz mid-flight, and drain in-flight jobs on graceful shutdown with
# no goroutine left behind.
go run ./scripts/servesmoke -ref "$tmpdir/off.txt" -store "$store"
