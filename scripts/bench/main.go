// Command bench runs the repository's key micro-benchmarks plus timed
// end-to-end `pimsim run all` passes — trace cache off, trace cache on,
// and a cold process reading a pre-packed persistent trace store — and
// appends the results as one record to BENCH_trace.json. The file is a JSON array —
// a perf trajectory — so successive PRs can compare records and catch
// regressions.
//
// Usage (from the repo root, or via scripts/bench.sh):
//
//	go run ./scripts/bench [-label name] [-scale quick|standard] [-out BENCH_trace.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"gopim/internal/obs"
)

// Record is one point of the performance trajectory.
type Record struct {
	Label      string             `json:"label"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	Scale      string             `json:"scale"`
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
	RunAll     RunAll             `json:"run_all"`
	Explore    *Explore           `json:"explore,omitempty"`
	Obs        *ObsStats          `json:"obs,omitempty"`
	Serve      *ServeStats        `json:"serve,omitempty"`
}

// ServeStats times the pimsimd service path against the same packed
// store: K concurrent identical `run all` sweeps submitted over HTTP to
// one warm server. JobsPerSec is submit-to-completion throughput across
// the batch; CoalesceHitRate is the fraction of cell requests served
// without computing (coalesced onto an in-flight computation or answered
// from the memo) — (K-1)/K when cross-request single-flight works.
// Omitted from records predating the serve layer.
type ServeStats struct {
	Jobs            int     `json:"jobs"`
	WallMS          int64   `json:"wall_ms"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	CellRequests    int64   `json:"cell_requests"`
	CellsComputed   int64   `json:"cells_computed"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	OutputIdentical bool    `json:"output_identical"`
}

// ObsStats is what the observability layer's run reports say about the
// timed passes: the instrumented repeat of the cache-on run (its wall time
// bounds the -stats/-report overhead), the trace-cache and store headline
// hit rates, and pool utilization. Omitted from records predating the obs
// layer.
type ObsStats struct {
	// RunAllObsMS repeats the tracecache-on run with -stats/-report
	// enabled; OverheadPct is its cost relative to the plain run (the
	// layer's budget is <= 2%, though single-run noise can exceed it).
	RunAllObsMS int64   `json:"run_all_obs_ms"`
	OverheadPct float64 `json:"overhead_pct"`
	// TraceCacheHitRate and WorkerUtilization come from the instrumented
	// cache-on run's report.
	TraceCacheHitRate float64 `json:"trace_cache_hit_rate"`
	WorkerUtilization float64 `json:"worker_utilization"`
	// StoreColdHitRate is the store hit rate of the first process reading
	// the freshly packed store; StoreWarmHitRate is a second pass over the
	// same store. Both must be 1.0 — KernelExecutionsCold doubles as the
	// warm-store assertion (0 means no kernel ran).
	StoreColdHitRate     float64 `json:"store_cold_hit_rate"`
	StoreWarmHitRate     float64 `json:"store_warm_hit_rate"`
	KernelExecutionsCold int64   `json:"kernel_executions_cold"`
}

// Explore times a full `pimsim explore -mode grid` sweep against the
// packed trace store: every design priced by batched trace replay, no
// kernel execution. ConfigsPerSec is the sweep's headline throughput.
// Omitted from records predating the explorer.
type Explore struct {
	Configs       int     `json:"configs"`
	MS            int64   `json:"ms"`
	ConfigsPerSec float64 `json:"configs_per_sec"`
}

// RunAll is the end-to-end wall-clock comparison that the trace cache is
// judged by. ColdStoreMS times a fresh process reading a pre-packed
// persistent trace store — the cold-start cost the store exists to
// eliminate (omitted from records predating the store).
type RunAll struct {
	TraceCacheOffMS int64   `json:"tracecache_off_ms"`
	TraceCacheOnMS  int64   `json:"tracecache_on_ms"`
	ColdStoreMS     int64   `json:"cold_store_ms,omitempty"`
	Speedup         float64 `json:"speedup"`
	OutputIdentical bool    `json:"output_identical"`
}

// benchLine parses `go test -bench` result lines. Sub-benchmark names are
// kept verbatim (including any GOMAXPROCS suffix) so records stay
// comparable within one machine's trajectory.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark[\w/=-]+)\s+\d+\s+([\d.]+) ns/op`)

func main() {
	label := flag.String("label", "HEAD", "record label (e.g. a PR number or git rev)")
	scale := flag.String("scale", "quick", "pimsim -scale for the end-to-end timing")
	out := flag.String("out", "BENCH_trace.json", "trajectory file to append to")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime for the micro-benchmarks")
	flag.Parse()

	rec := Record{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  goVersion(),
		Scale:      *scale,
		Benchmarks: map[string]float64{},
	}

	// Micro-benchmarks named by the perf PR: hierarchy span walks, the
	// worker pool, trace replay, and the SWAR SAD primitive. Each pattern
	// runs -count=3 and the record keeps the per-benchmark minimum:
	// same-commit replay timings on a noisy box vary by ~50% run to run
	// (the pr7->pr8 "drift" in this file's history was exactly that), and
	// min-of-N is the standard way to read through scheduler noise toward
	// the code's actual cost.
	for _, b := range []struct{ pkg, pattern string }{
		{".", "BenchmarkHierarchySpan"},
		{".", "BenchmarkParMap"},
		{"./internal/trace", "BenchmarkTraceReplay|BenchmarkDirectRun"},
		{"./internal/vp9", "BenchmarkSWARSAD|BenchmarkScalarSAD"},
		{"./internal/obs", "BenchmarkSpan|BenchmarkCounterAdd|BenchmarkHistogramObserve"},
	} {
		fmt.Fprintf(os.Stderr, "bench: go test -bench %s -count=3 %s\n", b.pattern, b.pkg)
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", b.pattern, "-benchtime", *benchtime, "-count=3", b.pkg)
		outB, err := cmd.CombinedOutput()
		if err != nil {
			fatalf("benchmark %s failed: %v\n%s", b.pattern, err, outB)
		}
		for _, m := range benchLine.FindAllStringSubmatch(string(outB), -1) {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				fatalf("parsing %q: %v", m[0], err)
			}
			if prev, ok := rec.Benchmarks[m[1]]; !ok || ns < prev {
				rec.Benchmarks[m[1]] = ns
			}
		}
	}

	// End-to-end: pimsim run all with the trace cache off, then on, byte
	// comparing the rendered output.
	tmp, err := os.MkdirTemp("", "pimsim-bench")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "pimsim")
	if outB, err := exec.Command("go", "build", "-o", bin, "./cmd/pimsim").CombinedOutput(); err != nil {
		fatalf("building pimsim: %v\n%s", err, outB)
	}
	offMS, offOut := timedRun(bin, *scale, "off", "-tracestore=off")
	onMS, onOut := timedRun(bin, *scale, "on", "-tracestore=off")

	// Repeat the cache-on run with full instrumentation (-stats, -report):
	// the wall-time delta bounds the observability overhead, and the report
	// supplies the trace-cache hit rate and worker utilization.
	obsOnReport := filepath.Join(tmp, "obs-on.json")
	obsOnMS, obsOnOut := timedRun(bin, *scale, "on", "-tracestore=off", "-stats", "-report", obsOnReport)

	// Cold-start with a packed persistent store: pack (untimed), then time
	// a fresh process that loads every trace from disk instead of
	// executing kernels.
	storeDir := filepath.Join(tmp, "store")
	fmt.Fprintf(os.Stderr, "bench: %s -scale %s -tracestore=%s trace pack\n", bin, *scale, storeDir)
	if outB, err := exec.Command(bin, "-scale", *scale, "-tracestore="+storeDir, "trace", "pack").CombinedOutput(); err != nil {
		fatalf("pimsim trace pack: %v\n%s", err, outB)
	}
	coldMS, coldOut := timedRun(bin, *scale, "on", "-tracestore="+storeDir)

	// Two instrumented passes over the packed store: the first is a cold
	// process (every trace loads from disk), the second a warm repeat.
	// Their reports carry the store hit rates the trajectory records.
	storeColdReport := filepath.Join(tmp, "store-cold.json")
	_, storeColdOut := timedRun(bin, *scale, "on", "-tracestore="+storeDir, "-report", storeColdReport)
	storeWarmReport := filepath.Join(tmp, "store-warm.json")
	_, storeWarmOut := timedRun(bin, *scale, "on", "-tracestore="+storeDir, "-report", storeWarmReport)

	// Design-space sweep from the same packed store: the whole grid is
	// priced from batch-replayed traces, so this times replay + pricing
	// with zero kernel executions.
	exArgs := []string{"-scale", *scale, "-tracestore=" + storeDir, "explore", "-mode", "grid"}
	fmt.Fprintf(os.Stderr, "bench: %s %s\n", bin, strings.Join(exArgs, " "))
	exStart := time.Now()
	exOut, err := exec.Command(bin, exArgs...).Output()
	if err != nil {
		fatalf("pimsim explore: %v", err)
	}
	exMS := time.Since(exStart).Milliseconds()
	configs := 0
	if m := regexp.MustCompile(`^explore \(grid\): (\d+) design points`).FindSubmatch(exOut); m != nil {
		configs, _ = strconv.Atoi(string(m[1]))
	}
	if configs == 0 {
		fatalf("explore output has no design-point header:\n%s", exOut)
	}
	rec.Explore = &Explore{Configs: configs, MS: exMS}
	if exMS > 0 {
		rec.Explore.ConfigsPerSec = float64(configs) / (float64(exMS) / 1000)
	}

	// pimsimd service path against the same packed store: K concurrent
	// identical sweeps over HTTP, timed submit-to-completion, verified
	// byte-identical to the direct run, coalescing read from /metrics.
	rec.Serve = serveBench(tmp, storeDir, 4, offOut)

	rec.RunAll = RunAll{
		TraceCacheOffMS: offMS,
		TraceCacheOnMS:  onMS,
		ColdStoreMS:     coldMS,
		OutputIdentical: string(offOut) == string(onOut) && string(offOut) == string(coldOut) &&
			string(offOut) == string(obsOnOut) && string(offOut) == string(storeColdOut) &&
			string(offOut) == string(storeWarmOut),
	}
	if onMS > 0 {
		rec.RunAll.Speedup = float64(offMS) / float64(onMS)
	}
	if !rec.RunAll.OutputIdentical {
		fatalf("run all output differs across -tracecache=off, -tracecache=on, a packed -tracestore, and instrumented (-stats/-report) repeats")
	}

	obsOn := readReport(obsOnReport)
	storeCold := readReport(storeColdReport)
	storeWarm := readReport(storeWarmReport)
	rec.Obs = &ObsStats{
		RunAllObsMS:          obsOnMS,
		TraceCacheHitRate:    obsOn.Derived.TraceCacheHitRate,
		WorkerUtilization:    obsOn.Derived.WorkerUtilization,
		StoreColdHitRate:     storeCold.Derived.StoreHitRate,
		StoreWarmHitRate:     storeWarm.Derived.StoreHitRate,
		KernelExecutionsCold: storeCold.Derived.KernelExecutions,
	}
	if onMS > 0 {
		rec.Obs.OverheadPct = (float64(obsOnMS) - float64(onMS)) / float64(onMS) * 100
	}

	// Append to the trajectory.
	var records []Record
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			fatalf("parsing existing %s: %v", *out, err)
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("bench: run all %s scale: %d ms (cache off) -> %d ms (cache on) -> %d ms (cold, packed store), %.2fx, output identical; obs on: %d ms (%+.1f%%), cache hit %.1f%%, store cold/warm hit %.0f%%/%.0f%%, workers %.1f%% busy; explore %d configs in %d ms (%.0f configs/s); serve %d jobs in %d ms (%.2f jobs/s, %.0f%% coalesced); %d benchmarks -> %s\n",
		*scale, offMS, onMS, coldMS, rec.RunAll.Speedup,
		rec.Obs.RunAllObsMS, rec.Obs.OverheadPct, rec.Obs.TraceCacheHitRate*100,
		rec.Obs.StoreColdHitRate*100, rec.Obs.StoreWarmHitRate*100, rec.Obs.WorkerUtilization*100,
		rec.Explore.Configs, rec.Explore.MS, rec.Explore.ConfigsPerSec,
		rec.Serve.Jobs, rec.Serve.WallMS, rec.Serve.JobsPerSec, rec.Serve.CoalesceHitRate*100,
		len(rec.Benchmarks), *out)
}

// serveBench builds pimsimd, serves the packed store, and times jobs
// concurrent identical `run all` sweeps over HTTP end to end. Results
// must be byte-identical to ref (the direct `pimsim run all` output);
// divergence is fatal, like every other identity in this harness.
func serveBench(tmp, storeDir string, jobs int, ref []byte) *ServeStats {
	bin := filepath.Join(tmp, "pimsimd")
	if outB, err := exec.Command("go", "build", "-o", bin, "./cmd/pimsimd").CombinedOutput(); err != nil {
		fatalf("building pimsimd: %v\n%s", err, outB)
	}
	fmt.Fprintf(os.Stderr, "bench: %s -addr 127.0.0.1:0 -tracestore=%s (%d concurrent jobs)\n", bin, storeDir, jobs)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-tracestore="+storeDir, "-job-workers", strconv.Itoa(jobs))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatalf("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("starting pimsimd: %v", err)
	}
	// The startup banner carries the resolved address; keep draining
	// stderr afterwards so the child never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	addrRE := regexp.MustCompile(`serving on http://(\S+)`)
	var addr string
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		fatalf("pimsimd printed no listen address")
	}
	//lint:ignore goroleak drains the child's stderr; exits when the pipe closes at cmd.Wait
	go func() {
		for sc.Scan() {
		}
	}()
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()

	base := "http://" + addr
	start := time.Now()
	ids := make([]string, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], errs[i] = submitJob(base, fmt.Sprintf(`{"kind":"run","tenant":"bench-%d"}`, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fatalf("serve submit %d: %v", i, err)
		}
	}
	identical := true
	for _, id := range ids {
		out, err := pollJobResult(base, id)
		if err != nil {
			fatalf("serve job %s: %v", id, err)
		}
		identical = identical && string(out) == string(ref)
	}
	wallMS := time.Since(start).Milliseconds()
	if !identical {
		fatalf("pimsimd job results differ from direct `pimsim run all` output")
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatalf("serve metrics: %v", err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		fatalf("parsing /metrics: %v", err)
	}
	st := &ServeStats{
		Jobs:            jobs,
		WallMS:          wallMS,
		CellRequests:    snap.Counters["serve.cells.requests"],
		CellsComputed:   snap.Counters["serve.cells.computed"],
		OutputIdentical: identical,
	}
	if wallMS > 0 {
		st.JobsPerSec = float64(jobs) / (float64(wallMS) / 1000)
	}
	if st.CellRequests > 0 {
		deduped := snap.Counters["serve.cells.coalesced"] + snap.Counters["serve.cells.memo_hits"]
		st.CoalesceHitRate = float64(deduped) / float64(st.CellRequests)
	}
	return st
}

// submitJob POSTs a job spec to pimsimd and returns the admitted id.
func submitJob(base, spec string) (string, error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /jobs: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// pollJobResult polls a pimsimd job to completion and returns its bytes.
func pollJobResult(base, id string) ([]byte, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			resp, err := http.Get(base + "/jobs/" + id + "/result")
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				return nil, fmt.Errorf("GET result: status %d", resp.StatusCode)
			}
			return io.ReadAll(resp.Body)
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 5m", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// readReport parses a run report written by -report.
func readReport(path string) *obs.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("reading run report: %v", err)
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("parsing run report %s: %v", path, err)
	}
	if rep.Version != obs.ReportVersion {
		fatalf("run report %s has version %d, want %d", path, rep.Version, obs.ReportVersion)
	}
	return &rep
}

func timedRun(bin, scale, tracecache string, extra ...string) (int64, []byte) {
	args := append([]string{"-scale", scale, "-tracecache=" + tracecache}, extra...)
	args = append(args, "run", "all")
	fmt.Fprintf(os.Stderr, "bench: %s %s\n", bin, strings.Join(args, " "))
	start := time.Now()
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		fatalf("pimsim run all (tracecache=%s %s): %v", tracecache, strings.Join(extra, " "), err)
	}
	return time.Since(start).Milliseconds(), out
}

func goVersion() string {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "unknown"
	}
	return string(out[:len(out)-1])
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
