// Command servesmoke is the pimsimd end-to-end gate: it stands a serve
// engine + HTTP API up in-process (against a packed trace store when
// -store is given), submits K concurrent identical sweep jobs as distinct
// tenants over the wire, polls them to completion, and asserts the
// service contract:
//
//   - every response is byte-identical to the `pimsim run all` reference
//     output (-ref), regardless of which tenant's request computed it;
//   - no kernel executed more than once across all K jobs (the shared
//     cache + single-flight memo: kernel_executions == cache records,
//     and with a warm store both are zero);
//   - each unique sweep cell was computed exactly once, every duplicate
//     request coalesced or memo-served;
//   - /healthz answers while jobs are in flight;
//   - graceful shutdown drains: a job submitted right before Close still
//     finishes done, and after Close no server goroutine survives
//     (NumGoroutine settles back to the pre-server baseline).
//
// Usage: go run ./scripts/servesmoke -ref out.txt [-store DIR] [-jobs K]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gopim/experiments"
	"gopim/internal/obs"
	"gopim/internal/serve"
	"gopim/internal/trace"
)

func main() {
	refPath := flag.String("ref", "", "`file` holding the serial `pimsim run all` reference output (required)")
	storeDir := flag.String("store", "", "packed trace store `directory` (empty = no store, cold cache)")
	jobs := flag.Int("jobs", 3, "concurrent identical sweep submissions")
	flag.Parse()
	if *refPath == "" {
		fatalf("usage: servesmoke -ref <reference output file> [-store DIR] [-jobs K]")
	}
	ref, err := os.ReadFile(*refPath)
	if err != nil {
		fatalf("%v", err)
	}

	base := runtime.NumGoroutine()
	cache := trace.NewCache()
	if *storeDir != "" {
		st, err := trace.OpenStore(*storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		cache.Store = st
	}
	reg := obs.NewRegistry()
	srv := serve.NewServer(serve.Config{JobWorkers: *jobs, QueueCap: 2 * *jobs, Traces: cache, Reg: reg})
	api, err := serve.ServeAPI("127.0.0.1:0", srv)
	if err != nil {
		fatalf("%v", err)
	}
	baseURL := "http://" + api.Addr()

	// K identical sweeps from K tenants, submitted concurrently.
	ids := make([]string, *jobs)
	var wg sync.WaitGroup
	var submitErrs sync.Map
	for i := 0; i < *jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := submit(baseURL, fmt.Sprintf(`{"kind":"run","tenant":"tenant-%d"}`, i))
			if err != nil {
				submitErrs.Store(i, err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	submitErrs.Range(func(k, v any) bool { fatalf("submit %v: %v", k, v); return false })

	// /healthz must answer while the sweeps are in flight.
	if err := getJSONField(baseURL+"/healthz", "status", "ok"); err != nil {
		fatalf("healthz during jobs: %v", err)
	}

	for i, id := range ids {
		out, err := pollResult(baseURL, id)
		if err != nil {
			fatalf("job %s: %v", id, err)
		}
		if !bytes.Equal(out, ref) {
			fatalf("tenant %d result (%d bytes) is not byte-identical to the pimsim run all reference (%d bytes)",
				i, len(out), len(ref))
		}
	}

	// Single-flight accounting, from the same registry /metrics serves.
	rep := obs.BuildReport(reg, obs.RunMeta{Command: "serve", Workers: *jobs}, 1, nil)
	c := rep.Metrics.Counters
	records := c[obs.PrefixTraceCache+"records"]
	if rep.Derived.KernelExecutions != records {
		fatalf("kernel executions %d != unique kernels recorded %d: a kernel ran more than once",
			rep.Derived.KernelExecutions, records)
	}
	if *storeDir != "" && rep.Derived.KernelExecutions != 0 {
		fatalf("warm-store serve executed %d kernels, want 0", rep.Derived.KernelExecutions)
	}
	unique := int64(len(experiments.Names()))
	total := int64(*jobs) * unique
	if got := c["serve.cells.computed"]; got != unique {
		fatalf("cells computed = %d, want %d (one per unique cell)", got, unique)
	}
	if got := c["serve.cells.requests"]; got != total {
		fatalf("cell requests = %d, want %d", got, total)
	}
	if dedup := c["serve.cells.coalesced"] + c["serve.cells.memo_hits"]; dedup != total-unique {
		fatalf("coalesced+memo_hits = %d, want %d duplicate requests deduped", dedup, total-unique)
	}

	// Graceful shutdown drains in-flight work: submit a job that is NOT
	// already memoized, close immediately, and require it to have finished
	// done (not canceled) once Close returns.
	drainID, err := submit(baseURL, `{"kind":"explore","mode":"random","n":1,"seed":3,"tenant":"drain"}`)
	if err != nil {
		fatalf("drain submit: %v", err)
	}
	if err := api.Close(); err != nil {
		fatalf("api close: %v", err)
	}
	srv.Close()
	j, err := srv.Job(drainID)
	if err != nil {
		fatalf("drain job lookup: %v", err)
	}
	if st := j.Status(); st.State != serve.StateDone {
		fatalf("after Close, drain job state = %s, want done: shutdown did not drain in-flight jobs", st.State)
	}

	// Leak gate: every server goroutine (runners, cells, HTTP, store
	// writers) must have exited.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			fatalf("goroutines did not settle after Close: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Fprintf(os.Stderr,
		"servesmoke: %d tenants byte-identical to reference; %d unique cells computed once (%d requests, %d deduped); kernel executions %d == records %d; drain + goroutine settle ok\n",
		*jobs, unique, total, total-unique, rep.Derived.KernelExecutions, records)
}

// submit POSTs a job spec and returns the admitted job id.
func submit(baseURL, spec string) (string, error) {
	resp, err := http.Post(baseURL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /jobs: status %d: %s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if st.ID == "" {
		return "", fmt.Errorf("POST /jobs: empty job id")
	}
	return st.ID, nil
}

// pollResult polls /jobs/{id} until the job settles, then fetches the
// result bytes — the poll-style client the stream endpoint is the push
// alternative to.
func pollResult(baseURL, id string) ([]byte, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := http.Get(baseURL + "/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done":
			resp, err := http.Get(baseURL + "/jobs/" + id + "/result")
			if err != nil {
				return nil, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET result: status %d", resp.StatusCode)
			}
			return io.ReadAll(resp.Body)
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 5m", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// getJSONField GETs url and checks one string field of the JSON body.
func getJSONField(url, field, want string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return err
	}
	if got, _ := m[field].(string); got != want {
		return fmt.Errorf("%s = %q, want %q", field, got, want)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}
