#!/bin/sh
# Performance trajectory: run the key micro-benchmarks (hierarchy spans,
# worker pool, trace replay, SWAR SAD) plus timed end-to-end
# `pimsim run all` passes — trace cache off, on, and cold with a packed
# persistent trace store (run_all.cold_store_ms) — appending one record to
# BENCH_trace.json. Pass -label/-scale/-out through to the harness, e.g.
#
#	scripts/bench.sh -label pr2 -scale quick
set -eu

cd "$(dirname "$0")/.."

exec go run ./scripts/bench "$@"
