// Command vp9tool exercises the VP9-class codec on synthetic video:
// it encodes a clip, decodes it back, verifies the reconstruction, and
// reports rate, quality, and the work counters that drive the paper's
// hardware traffic model.
//
// Usage:
//
//	vp9tool [-w 640] [-h 384] [-frames 8] [-q 28] [-seed 7] [-traffic]
package main

import (
	"flag"
	"fmt"
	"os"

	"gopim/internal/video"
	"gopim/internal/vp9"
)

func main() {
	width := flag.Int("w", 640, "frame width (multiple of 16)")
	height := flag.Int("h", 384, "frame height (multiple of 16)")
	frames := flag.Int("frames", 8, "frames to encode")
	qIndex := flag.Int("q", 28, "quantizer index (0-63, higher = smaller/worse)")
	seed := flag.Uint("seed", 7, "synthetic content seed")
	traffic := flag.Bool("traffic", false, "also print the hardware traffic model (Figures 12/16)")
	flag.Parse()

	if err := run(*width, *height, *frames, *qIndex, uint32(*seed), *traffic); err != nil {
		fmt.Fprintln(os.Stderr, "vp9tool:", err)
		os.Exit(1)
	}
}

func run(w, h, frames, qIndex int, seed uint32, traffic bool) error {
	cfg := vp9.Config{Width: w, Height: h, QIndex: qIndex}
	enc, err := vp9.NewEncoder(cfg)
	if err != nil {
		return err
	}
	dec, err := vp9.NewDecoder(cfg)
	if err != nil {
		return err
	}

	synth := video.NewSynth(w, h, 4, seed)
	rawFrame := w * h * 3 / 2
	fmt.Printf("encoding %d frames of %dx%d synthetic video (raw %d B/frame, q=%d)\n",
		frames, w, h, rawFrame, qIndex)

	var totalBytes int
	for i := 0; i < frames; i++ {
		src := synth.Frame(i)
		data, recon, err := enc.Encode(src)
		if err != nil {
			return err
		}
		decoded, err := dec.Decode(data)
		if err != nil {
			return fmt.Errorf("frame %d: decode: %w", i, err)
		}
		if !framesEqual(decoded, recon) {
			return fmt.Errorf("frame %d: decoder output does not match encoder reconstruction", i)
		}
		totalBytes += len(data)
		fmt.Printf("  frame %2d: %6d B (%.2fx), PSNR %.1f dB\n",
			i, len(data), float64(rawFrame)/float64(len(data)), video.PSNR(src, recon))
	}

	st := enc.Stats
	fmt.Printf("\ntotals: %d B (%.3f bits/px), %d intra MBs, %d inter MBs\n",
		totalBytes, float64(totalBytes)*8/float64(w*h*frames), st.IntraMBs, st.InterMBs)
	fmt.Printf("motion estimation: %d SADs, %.1f reference px/px\n",
		st.ME.SADs, float64(st.ME.RefPixelsRead)/float64(w*h*frames))
	fmt.Printf("motion compensation: %d blocks (%d sub-pel), %.2f reference px/px\n",
		st.MC.Blocks, st.MC.SubPelBlocks,
		float64(st.MC.RefPixelsRead)/float64(st.MC.PixelsProduced+1))
	fmt.Printf("deblocking: %d edges checked, %d filtered\n",
		st.Deblock.EdgesChecked, st.Deblock.EdgesFiltered)

	if traffic {
		clip, err := vp9.CodeClip(w, h, minInt(frames, 4), qIndex, seed)
		if err != nil {
			return err
		}
		p := vp9.MeasureHWParams(clip)
		fmt.Printf("\nhardware model parameters: ref %.2f px/px, ME window %.2f px/px, %.2f bits/px, frame compression ratio %.2f\n",
			p.RefPxPerPx, p.MEWindowPxPerPx, p.BitsPerPixel, p.CompressionRatio)
		for _, comp := range []bool{false, true} {
			d := vp9.HWDecodeTraffic(video.HDWidth, video.HDHeight, comp, p)
			e := vp9.HWEncodeTraffic(video.HDWidth, video.HDHeight, comp, p)
			fmt.Printf("HD decode traffic (compression=%v): %.1f MB/frame; encode: %.1f MB/frame\n",
				comp, vp9.TotalTraffic(d)/1e6, vp9.TotalTraffic(e)/1e6)
		}
	}
	return nil
}

func framesEqual(a, b *video.Frame) bool {
	if len(a.Y) != len(b.Y) {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	for i := range a.U {
		if a.U[i] != b.U[i] || a.V[i] != b.V[i] {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
