// Command pimsim regenerates the paper's tables and figures and prints
// them as text tables.
//
// Usage:
//
//	pimsim [-scale quick|standard] [-workers N] [experiment ...]
//	pimsim [-scale quick|standard] [-workers N] run [all | experiment ...]
//
// With no arguments it runs every experiment serially. The `run`
// subcommand computes the selected experiments (or all of them)
// concurrently on up to N workers and then prints the reports in the same
// order and format as the serial path — the output is byte-identical.
// Experiment names are the figure/table IDs from DESIGN.md: table1, fig1,
// fig2, fig4, fig6, fig7, fig10, fig11, fig12, fig15, fig16, fig18,
// fig19, fig20, fig21, areas, headline, ablation, battery, targets,
// tabswitch, plan, pageload.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gopim"
	"gopim/experiments"
	"gopim/internal/trace"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: quick or standard")
	workersFlag := flag.Int("workers", 0, "max concurrent workers (0 = GOMAXPROCS, 1 = serial)")
	traceFlag := flag.String("tracecache", "on", "kernel trace cache: on (capture once, replay per config) or off (direct execution)")
	replayFlag := flag.String("replay", "compiled", "trace replay engine: compiled (line-stream) or interp (reference interpreter); output is byte-identical")
	flag.Usage = usage
	flag.Parse()

	var scale gopim.Scale
	switch *scaleFlag {
	case "quick":
		scale = gopim.Quick
	case "standard":
		scale = gopim.Standard
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	var engine trace.Engine
	switch *replayFlag {
	case "compiled":
		engine = trace.EngineCompiled
	case "interp":
		engine = trace.EngineInterp
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown replay engine %q (want compiled or interp)\n", *replayFlag)
		os.Exit(2)
	}
	opts := experiments.Options{Scale: scale, Workers: *workersFlag}
	switch *traceFlag {
	case "on":
		opts.Traces = trace.NewCache()
		opts.Traces.Engine = engine
	case "off":
		// Direct execution: the reference path, byte-identical by design.
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown tracecache mode %q (want on or off)\n", *traceFlag)
		os.Exit(2)
	}

	names := flag.Args()
	parallel := false
	if len(names) > 0 && names[0] == "run" {
		parallel = true
		names = names[1:]
		if len(names) == 1 && names[0] == "all" {
			names = nil
		}
	}
	if len(names) == 0 {
		names = experiments.Names()
	}

	if parallel {
		results, err := experiments.RunNamed(opts, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %v (known: %s)\n", err, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		for _, r := range results {
			fmt.Printf("==== %s ====\n", r.Name)
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", r.Name, r.Err)
				os.Exit(1)
			}
			if err := experiments.Render(os.Stdout, r.Name, r.Data); err != nil {
				fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", r.Name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}

	for _, name := range names {
		runner, ok := experiments.RunnerFor(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "pimsim: unknown experiment %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", name)
		data, err := runner.Compute(opts)
		if err == nil {
			err = runner.Render(os.Stdout, data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pimsim [-scale quick|standard] [-workers N] [run] [experiment ...]\nexperiments: %s\n",
		strings.Join(experiments.Names(), ", "))
}
