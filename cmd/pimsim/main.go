// Command pimsim regenerates the paper's tables and figures and prints
// them as text tables.
//
// Usage:
//
//	pimsim [-scale quick|standard] [-workers N] [experiment ...]
//	pimsim [-scale quick|standard] [-workers N] run [all | experiment ...]
//	pimsim [flags] explore [-mode grid|random|paper] [-n N] [-seed S] [-format text|csv|json]
//	pimsim trace pack
//	pimsim trace verify [-prune]
//	pimsim [flags] run all -stats -report r.json -metrics-addr host:port
//
// With no arguments it runs every experiment serially. The `run`
// subcommand computes the selected experiments (or all of them)
// concurrently on up to N workers and then prints the reports in the same
// order and format as the serial path — the output is byte-identical.
// Experiment names are the figure/table IDs from DESIGN.md: table1, fig1,
// fig2, fig4, fig6, fig7, fig10, fig11, fig12, fig15, fig16, fig18,
// fig19, fig20, fig21, areas, headline, ablation, battery, targets,
// tabswitch, plan, pageload.
//
// The `explore` subcommand sweeps the hardware design space — cache
// geometry, line size, memory timing, PIM engine width, accelerator
// efficiency — pricing every design from batch-replayed kernel traces
// (each kernel executes, or loads from the store, exactly once) and
// printing each workload's Pareto frontier over energy, runtime and PIM
// logic area. -mode grid sweeps the full 1026-point factorial grid,
// -mode random samples -n points from the same axes at -seed, and -mode
// paper prices the paper's three design points through the exact paper
// pipeline (the sweep's equivalence anchor).
//
// Recorded kernel traces persist across processes in a content-addressed
// store (default: $GOPIM_TRACE_DIR, else <user cache dir>/gopim/traces;
// -tracestore selects another directory or `off`). `trace pack` pre-warms
// the store by running every keyed kernel once; `trace verify` checks
// every entry's format version and integrity hash (and with -prune
// deletes defective entries and stale-version directories). A corrupt or
// stale entry is always treated as a cache miss and re-recorded — output
// is byte-identical with the store on, off, or damaged.
//
// Observability (run and explore, accepted globally or after the
// subcommand): -stats prints a run breakdown to stderr — phase timing
// histograms (record, compile, replay, store I/O, pricing), trace cache
// and store hit rates, worker utilization, the slowest experiments;
// -report writes the same data plus derived headline ratios as a
// versioned JSON run report (scripts/checkreport validates it);
// -metrics-addr serves live JSON snapshots over HTTP at /metrics and
// /healthz while the run is in flight. None of it touches stdout: output
// stays byte-identical with observability on or off (gated in
// scripts/check.sh, enforced statically by the obsout analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gopim"
	"gopim/experiments"
	"gopim/internal/obs"
	"gopim/internal/par"
	"gopim/internal/trace"
)

// obsConfig carries the observability flags (-stats, -report,
// -metrics-addr). They are accepted both globally and after the run/explore
// subcommands — `pimsim run all -stats -report r.json` is the documented
// invocation — with the post-subcommand value winning. All observability
// output goes to stderr, the report file, or the HTTP listener; stdout is
// byte-identical with these flags on or off (gated in scripts/check.sh).
type obsConfig struct {
	stats   bool   // print a human-readable run breakdown to stderr
	report  string // write a versioned JSON run report to this path
	metrics string // serve live JSON snapshots on this host:port
}

func (oc obsConfig) enabled() bool {
	return oc.stats || oc.report != "" || oc.metrics != ""
}

// register adds the observability flags to fs with oc as defaults, so a
// subcommand FlagSet inherits the global values.
func (oc *obsConfig) register(fs *flag.FlagSet) {
	fs.BoolVar(&oc.stats, "stats", oc.stats, "print a run breakdown (phase timings, cache/store/worker metrics) to stderr")
	fs.StringVar(&oc.report, "report", oc.report, "write a versioned JSON run report to this `file`")
	fs.StringVar(&oc.metrics, "metrics-addr", oc.metrics, "serve live metrics snapshots as JSON on this `host:port` (/metrics, /healthz)")
}

// setupObs builds the metrics registry when any observability flag is set
// (nil otherwise — the no-op path), threads it through the engine layers,
// and starts the metrics listener. Callers must pair it with finishObs.
func setupObs(oc obsConfig, opts *experiments.Options) (*obs.Registry, *obs.Server) {
	if !oc.enabled() {
		return nil, nil
	}
	reg := obs.NewRegistry()
	opts.Obs = reg
	par.SetObs(reg)
	if opts.Traces != nil {
		opts.Traces.Obs = reg
		reg.AddSource(obs.PrefixTraceCache, opts.Traces)
		if opts.Traces.Store != nil {
			opts.Traces.Store.Obs = reg
			reg.AddSource(obs.PrefixTraceStore, opts.Traces.Store)
		}
	}
	var srv *obs.Server
	if oc.metrics != "" {
		var err error
		srv, err = obs.Serve(oc.metrics, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pimsim: serving metrics on http://%s/metrics\n", srv.Addr())
	}
	return reg, srv
}

// finishObs emits the end-of-run report (stderr text and/or JSON file) and
// shuts the metrics listener down — after the report, so a live poller can
// still grab the final state. No-op when setupObs returned nil.
func finishObs(reg *obs.Registry, srv *obs.Server, oc obsConfig, meta obs.RunMeta, wallNS int64, times []obs.ExperimentTime) {
	if reg == nil {
		return
	}
	rep := obs.BuildReport(reg, meta, wallNS, times)
	if oc.stats {
		rep.WriteText(os.Stderr)
	}
	var reportErr error
	if oc.report != "" {
		reportErr = rep.WriteFile(oc.report)
	}
	// Shut the listener down before any error exit: bailing out above the
	// Close used to strand the serve goroutine and its handlers.
	srv.Close()
	par.SetObs(nil)
	if reportErr != nil {
		fmt.Fprintf(os.Stderr, "pimsim: %v\n", reportErr)
		os.Exit(1)
	}
}

// parseInterleaved parses args with fs, allowing flags and positionals to
// interleave (stock flag parsing stops at the first positional): each round
// consumes leading flags, then shifts one positional. Returns the
// positionals in order.
func parseInterleaved(fs *flag.FlagSet, args []string) []string {
	var pos []string
	for {
		fs.Parse(args)
		args = fs.Args()
		if len(args) == 0 {
			return pos
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: quick or standard")
	workersFlag := flag.Int("workers", 0, "max concurrent workers (0 = GOMAXPROCS, 1 = serial)")
	traceFlag := flag.String("tracecache", "on", "kernel trace cache: on (capture once, replay per config) or off (direct execution)")
	limitFlag := flag.Int64("tracecache-limit", -1, "in-memory trace cache bound in bytes (0 = unlimited; -1 = default: unlimited for runs, 512 MiB for explore)")
	replayFlag := flag.String("replay", "compiled", "trace replay engine: compiled (line-stream) or interp (reference interpreter); output is byte-identical")
	storeFlag := flag.String("tracestore", "auto", "persistent trace store directory: auto ($GOPIM_TRACE_DIR or the user cache dir), off, or a path")
	pruneFlag := flag.Bool("prune", false, "with `trace verify`: delete corrupt entries and stale-version directories")
	var oc obsConfig
	oc.register(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()

	var scale gopim.Scale
	switch *scaleFlag {
	case "quick":
		scale = gopim.Quick
	case "standard":
		scale = gopim.Standard
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	var engine trace.Engine
	switch *replayFlag {
	case "compiled":
		engine = trace.EngineCompiled
	case "interp":
		engine = trace.EngineInterp
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown replay engine %q (want compiled or interp)\n", *replayFlag)
		os.Exit(2)
	}
	opts := experiments.Options{Scale: scale, Workers: *workersFlag}

	names := flag.Args()
	if len(names) > 0 && names[0] == "trace" {
		traceCommand(names[1:], opts, engine, *storeFlag, *pruneFlag)
		return
	}

	if len(names) > 0 && names[0] == "explore" {
		exploreCommand(names[1:], opts, engine, *replayFlag, *storeFlag, *limitFlag, oc)
		return
	}

	// The observability flags are also accepted after `run` (and between
	// experiment names): re-parse the remaining arguments interleaved, with
	// the global values as defaults.
	runFS := flag.NewFlagSet("run", flag.ExitOnError)
	oc.register(runFS)
	runFS.Usage = usage
	names = parseInterleaved(runFS, names)

	switch *traceFlag {
	case "on":
		opts.Traces = trace.NewCache()
		opts.Traces.Engine = engine
		opts.Traces.Store = openStore(*storeFlag, false)
		if *limitFlag > 0 {
			opts.Traces.Limit = *limitFlag
		}
	case "off":
		// Direct execution: the reference path, byte-identical by design.
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown tracecache mode %q (want on or off)\n", *traceFlag)
		os.Exit(2)
	}

	parallel := false
	if len(names) > 0 && names[0] == "run" {
		parallel = true
		names = names[1:]
		if len(names) == 1 && names[0] == "all" {
			names = nil
		}
	}
	if len(names) == 0 {
		names = experiments.Names()
	}

	reg, srv := setupObs(oc, &opts)
	meta := obs.RunMeta{
		Command:      "run",
		Scale:        *scaleFlag,
		ReplayEngine: *replayFlag,
		Workers:      par.Workers(opts.Workers),
	}
	runStart := obs.Now()
	var times []obs.ExperimentTime

	if parallel {
		results, err := experiments.RunNamed(opts, names)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %v (known: %s)\n", err, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		for _, r := range results {
			fmt.Printf("==== %s ====\n", r.Name)
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", r.Name, r.Err)
				os.Exit(1)
			}
			if err := experiments.Render(os.Stdout, r.Name, r.Data); err != nil {
				fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", r.Name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		if reg != nil {
			for _, r := range results {
				times = append(times, obs.ExperimentTime{Name: r.Name, WallNS: r.WallNS})
			}
		}
		waitStore(opts)
		finishObs(reg, srv, oc, meta, obs.Since(runStart), times)
		return
	}

	for _, name := range names {
		runner, ok := experiments.RunnerFor(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "pimsim: unknown experiment %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", name)
		start := obs.Now()
		data, err := runner.Compute(opts)
		if reg != nil {
			times = append(times, obs.ExperimentTime{Name: name, WallNS: obs.Since(start)})
		}
		if err == nil {
			err = runner.Render(os.Stdout, data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	waitStore(opts)
	finishObs(reg, srv, oc, meta, obs.Since(runStart), times)
}

// waitStore lets pending asynchronous store writes land before exit, so a
// run's recordings are never lost to a fast shutdown.
func waitStore(opts experiments.Options) {
	if opts.Traces != nil {
		opts.Traces.Store.Wait()
	}
}

// storeDir resolves the -tracestore flag to a directory, or ok == false
// when the store is disabled (explicitly, or because auto resolution found
// no usable cache directory).
func storeDir(flagVal string) (string, bool) {
	switch flagVal {
	case "off":
		return "", false
	case "auto":
		if dir := os.Getenv("GOPIM_TRACE_DIR"); dir != "" {
			return dir, true
		}
		base, err := os.UserCacheDir()
		if err != nil {
			return "", false
		}
		return filepath.Join(base, "gopim", "traces"), true
	default:
		return flagVal, true
	}
}

// openStore opens the resolved store, or returns nil when disabled. An
// unusable auto-resolved directory degrades to no store (the cache is an
// optimization); an explicitly requested one is an error — unless require
// is set, in which case a disabled store is an error too (the trace
// subcommands are meaningless without one).
func openStore(flagVal string, require bool) *trace.Store {
	dir, ok := storeDir(flagVal)
	if !ok {
		if require {
			fmt.Fprintln(os.Stderr, "pimsim: this command needs a trace store, but -tracestore is off (or no cache directory was found)")
			os.Exit(2)
		}
		return nil
	}
	st, err := trace.OpenStore(dir)
	if err != nil {
		if require || flagVal != "auto" {
			fmt.Fprintf(os.Stderr, "pimsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pimsim: trace store disabled: %v\n", err)
		return nil
	}
	return st
}

// traceCommand implements `pimsim trace pack` and `pimsim trace verify`.
// The -prune flag is parsed here with a dedicated FlagSet, so it works
// before or after the subcommand name (`trace -prune verify` and
// `trace verify -prune`) as well as globally (`pimsim -prune trace verify`
// — the global value seeds the default).
func traceCommand(args []string, opts experiments.Options, engine trace.Engine, storeFlag string, prune bool) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	pruneSub := fs.Bool("prune", prune, "with verify: delete corrupt entries and stale-version directories")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "pimsim: usage: pimsim trace pack | pimsim trace verify [-prune]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	args = fs.Args()
	if len(args) > 1 {
		sub := args[0]
		fs.Parse(args[1:])
		args = append([]string{sub}, fs.Args()...)
	}
	prune = *pruneSub
	if len(args) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	st := openStore(storeFlag, true)
	switch args[0] {
	case "pack":
		c := trace.NewCache()
		c.Engine = engine
		c.Store = st
		opts.Traces = c
		if err := experiments.Warm(opts); err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: trace pack: %v\n", err)
			os.Exit(1)
		}
		st.Wait()
		cs, ss := c.Stats(), st.Stats()
		fmt.Printf("trace pack: %d kernels recorded, %d already stored, %d entries written (%d write errors) in %s\n",
			cs.Records, cs.StoreHits, ss.Saves, ss.SaveErrors, st.Dir())
		if ss.SaveErrors > 0 {
			os.Exit(1)
		}
	case "verify":
		rep, err := st.Verify(prune)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: trace verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace verify: %d entries ok (%d bytes) in %s\n", rep.OK, rep.Bytes, st.Dir())
		ss := st.Stats()
		fmt.Printf("trace verify: store stats: %d hits, %d misses, %d corrupt, %d saves, %d save errors\n",
			ss.Hits, ss.Misses, ss.Corrupt, ss.Saves, ss.SaveErrors)
		for _, dir := range rep.StaleDirs {
			action := "found"
			if prune {
				action = "pruned"
			}
			fmt.Printf("trace verify: %s stale format-version directory %s\n", action, dir)
		}
		for _, issue := range rep.Issues {
			action := "bad entry"
			if prune {
				action = "pruned bad entry"
			}
			fmt.Printf("trace verify: %s %s: %s\n", action, issue.Path, issue.Reason)
		}
		if len(rep.Issues) > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown trace subcommand %q (want pack or verify)\n", args[0])
		os.Exit(2)
	}
}

// exploreCommand implements `pimsim explore`: a design-space sweep priced
// from batch-replayed kernel traces. The trace cache is always on here —
// capture-once/replay-many is the sweep's entire economy — with the
// in-memory bound defaulted to 512 MiB (a sweep touches every kernel, so
// an unbounded cache would peak at the sum of all trace streams).
func exploreCommand(args []string, opts experiments.Options, engine trace.Engine, engineName, storeFlag string, limit int64, oc obsConfig) {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	mode := fs.String("mode", "grid", "sweep mode: grid (full factorial), random (sample -n points), or paper (the paper's three designs)")
	n := fs.Int("n", 1024, "with -mode random: number of design points to sample")
	seed := fs.Int64("seed", 1, "with -mode random: sampling seed (equal seeds give identical sweeps)")
	format := fs.String("format", "text", "output format: text (Pareto frontiers), csv (every row), or json")
	oc.register(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "pimsim: usage: pimsim [flags] explore [-mode grid|random|paper] [-n N] [-seed S] [-format text|csv|json]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fs.Usage()
		os.Exit(2)
	}

	opts.Traces = trace.NewCache()
	opts.Traces.Engine = engine
	opts.Traces.Store = openStore(storeFlag, false)
	if limit >= 0 {
		opts.Traces.Limit = limit
	} else {
		opts.Traces.Limit = 512 << 20
	}

	reg, srv := setupObs(oc, &opts)
	runStart := obs.Now()

	res, err := experiments.Explore(opts, experiments.ExploreOptions{Mode: *mode, N: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimsim: %v\n", err)
		os.Exit(2)
	}
	if err := experiments.RenderExplore(os.Stdout, res, *format); err != nil {
		fmt.Fprintf(os.Stderr, "pimsim: %v\n", err)
		os.Exit(2)
	}
	waitStore(opts)
	finishObs(reg, srv, oc, obs.RunMeta{
		Command:      "explore",
		Scale:        scaleName(opts.Scale),
		ReplayEngine: engineName,
		Workers:      par.Workers(opts.Workers),
		Configs:      res.Configs,
	}, obs.Since(runStart), nil)
}

// scaleName renders a scale for run reports.
func scaleName(s gopim.Scale) string {
	if s == gopim.Standard {
		return "standard"
	}
	return "quick"
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pimsim [flags] [run] [experiment ...]
       pimsim [flags] explore [-mode grid|random|paper] [-n N] [-seed S] [-format text|csv|json]
       pimsim [flags] trace pack     (pre-warm the persistent trace store)
       pimsim [flags] trace verify   (check store integrity; -prune to clean)
observability (stdout stays byte-identical; breakdowns go to stderr):
       pimsim run all -stats -report r.json -metrics-addr host:port
experiments: %s
`, strings.Join(experiments.Names(), ", "))
	flag.PrintDefaults()
}
