// Command pimsim regenerates the paper's tables and figures and prints
// them as text tables.
//
// Usage:
//
//	pimsim [-scale quick|standard] [experiment ...]
//
// With no arguments it runs every experiment. Experiment names are the
// figure/table IDs from DESIGN.md: table1, fig1, fig2, fig4, fig6, fig7,
// fig10, fig11, fig12, fig15, fig16, fig18, fig19, fig20, fig21, areas,
// headline.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"gopim"
	"gopim/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "input scale: quick or standard")
	flag.Usage = usage
	flag.Parse()

	var scale gopim.Scale
	switch *scaleFlag {
	case "quick":
		scale = gopim.Quick
	case "standard":
		scale = gopim.Standard
	default:
		fmt.Fprintf(os.Stderr, "pimsim: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	opts := experiments.Options{Scale: scale}

	names := flag.Args()
	if len(names) == 0 {
		names = allExperiments()
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pimsim: unknown experiment %q (known: %s)\n",
				name, strings.Join(allExperiments(), ", "))
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", name)
		if err := run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "pimsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pimsim [-scale quick|standard] [experiment ...]\nexperiments: %s\n",
		strings.Join(allExperiments(), ", "))
}

var runners = map[string]func(experiments.Options) error{
	"table1":    runTable1,
	"fig1":      runFig1,
	"fig2":      runFig2,
	"fig4":      runFig4,
	"fig6":      func(o experiments.Options) error { return runTF("energy", experiments.Fig6(o)) },
	"fig7":      func(o experiments.Options) error { return runTF("time", experiments.Fig7(o)) },
	"fig10":     runFig10,
	"fig11":     runFig11,
	"fig12":     runFig12,
	"fig15":     runFig15,
	"fig16":     runFig16,
	"fig18":     runFig18,
	"fig19":     runFig19,
	"fig20":     runFig20,
	"fig21":     runFig21,
	"areas":     runAreas,
	"headline":  runHeadline,
	"ablation":  runAblation,
	"battery":   runBattery,
	"targets":   runTargets,
	"tabswitch": runTabSwitch,
	"plan":      runPlan,
	"pageload":  runPageLoad,
}

func allExperiments() []string {
	names := make([]string, 0, len(runners))
	for n := range runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func runTable1(experiments.Options) error {
	w := table()
	fmt.Fprintln(w, "Component\tConfiguration")
	for _, r := range experiments.Table1() {
		fmt.Fprintf(w, "%s\t%s\n", r.Component, r.Value)
	}
	return w.Flush()
}

func runFig1(o experiments.Options) error {
	fmt.Println("Energy breakdown for page scrolling (paper Figure 1)")
	w := table()
	fmt.Fprintln(w, "Page\tTexture Tiling\tColor Blitting\tOther")
	for _, r := range experiments.Fig1(o) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.Page, pct(r.TextureTiling), pct(r.ColorBlitting), pct(r.Other))
	}
	return w.Flush()
}

func runFig2(o experiments.Options) error {
	fmt.Println("Google Docs scrolling energy (paper Figure 2)")
	res := experiments.Fig2(o)
	w := table()
	fmt.Fprintln(w, "Function\tCPU\tL1\tLLC\tInterconnect\tMemCtrl\tDRAM\tTotal")
	var names []string
	for n := range res.ByPhase {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := res.ByPhase[n]
		fmt.Fprintf(w, "%s\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\n",
			n, b.CPU, b.L1, b.LLC, b.Interconnect, b.MemCtrl, b.DRAM, b.Total())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("data movement: %s of total energy (paper: 77%%)\n", pct(res.DataMovementFraction))
	fmt.Printf("tiling+blitting data movement: %s of total (paper: 37.7%%)\n", pct(res.TilingBlittingMovementFraction))
	fmt.Printf("LLC MPKI: %.1f (paper: 21.4 average)\n", res.LLCMPKI)
	return nil
}

func runFig4(o experiments.Options) error {
	fmt.Println("ZRAM swap traffic while switching tabs (paper Figure 4)")
	res, err := experiments.Fig4(o)
	if err != nil {
		return err
	}
	fmt.Printf("total swapped out: %.2f GB (paper: 11.7 GB), in: %.2f GB (paper: 7.8 GB)\n",
		res.TotalOutGB, res.TotalInGB)
	fmt.Printf("peak rates: out %.0f MB/s (paper: 201), in %.0f MB/s (paper: 227)\n",
		res.PeakOutMBs, res.PeakInMBs)
	fmt.Printf("LZO compression ratio: %.2f\n", res.CompressRatio)
	scale := 1
	for _, s := range res.Samples {
		if s.OutBytes > scale {
			scale = s.OutBytes
		}
		if s.InBytes > scale {
			scale = s.InBytes
		}
	}
	const cols = 40
	fmt.Printf("timeline (each char = %.1f MB/s; o=swap-out i=swap-in):\n", float64(scale)/1e6/cols)
	for _, s := range res.Samples {
		if s.OutBytes == 0 && s.InBytes == 0 {
			continue
		}
		fmt.Printf("  t=%3ds %s%s\n", s.Second,
			strings.Repeat("o", s.OutBytes*cols/scale),
			strings.Repeat("i", s.InBytes*cols/scale))
	}
	return nil
}

func runTF(kind string, rows []experiments.TFRow) error {
	fmt.Printf("TensorFlow Mobile inference %s breakdown (paper Figures 6/7)\n", kind)
	w := table()
	fmt.Fprintln(w, "Network\tPacking\tQuantization\tConv2D+MatMul\tOther")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", r.Network, pct(r.Packing), pct(r.Quantization), pct(r.GEMM), pct(r.Other))
	}
	return w.Flush()
}

func runFig10(o experiments.Options) error {
	fmt.Println("VP9 software decoder energy by function (paper Figure 10)")
	fr, err := experiments.Fig10(o)
	if err != nil {
		return err
	}
	w := table()
	for _, f := range fr {
		fmt.Fprintf(w, "%s\t%s\n", f.Name, pct(f.Fraction))
	}
	return w.Flush()
}

func runFig11(o experiments.Options) error {
	fmt.Println("VP9 software decoder energy by component (paper Figure 11)")
	res, err := experiments.Fig11(o)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "Function\tCPU\tL1\tLLC\tInterconnect\tMemCtrl\tDRAM")
	var names []string
	for n := range res.ByPhase {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := res.ByPhase[n]
		fmt.Fprintf(w, "%s\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\n", n, b.CPU, b.L1, b.LLC, b.Interconnect, b.MemCtrl, b.DRAM)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("data movement: %s (paper at 4K: 63.5%%); sub-pel share of movement: %s\n",
		pct(res.DataMovementFraction), pct(res.SubPelMovementShare))
	return nil
}

func hwTraffic(rows []experiments.HWTrafficRow) error {
	w := table()
	fmt.Fprintln(w, "Config\tCategory\tMB/frame")
	for _, r := range rows {
		comp := "no compression"
		if r.Compressed {
			comp = "with compression"
		}
		for _, it := range r.Items {
			fmt.Fprintf(w, "%s (%s)\t%s\t%.2f\n", r.Resolution, comp, it.Name, it.Bytes/1e6)
		}
		fmt.Fprintf(w, "%s (%s)\tTOTAL\t%.2f\n", r.Resolution, comp, r.TotalMB)
	}
	return w.Flush()
}

func runFig12(o experiments.Options) error {
	fmt.Println("VP9 hardware decoder off-chip traffic (paper Figure 12)")
	rows, err := experiments.Fig12(o)
	if err != nil {
		return err
	}
	return hwTraffic(rows)
}

func runFig15(o experiments.Options) error {
	fmt.Println("VP9 software encoder energy by function (paper Figure 15)")
	fr, err := experiments.Fig15(o)
	if err != nil {
		return err
	}
	w := table()
	for _, f := range fr {
		fmt.Fprintf(w, "%s\t%s\n", f.Name, pct(f.Fraction))
	}
	return w.Flush()
}

func runFig16(o experiments.Options) error {
	fmt.Println("VP9 hardware encoder off-chip traffic (paper Figure 16)")
	rows, err := experiments.Fig16(o)
	if err != nil {
		return err
	}
	return hwTraffic(rows)
}

func runFig18(o experiments.Options) error {
	fmt.Println("Browser kernels: energy and runtime by execution mode (paper Figure 18)")
	w := table()
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy\tNorm. Runtime\tSavings\tSpeedup")
	for _, r := range experiments.Fig18(o) {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%s\t%.2fx\n",
			r.Kernel, r.Mode, r.NormEnergy, r.NormRuntime, pct(r.EnergySavings), r.Speedup)
	}
	return w.Flush()
}

func runFig19(o experiments.Options) error {
	fmt.Println("TensorFlow kernels: energy and end-to-end speedup (paper Figure 19)")
	energies, speedups := experiments.Fig19(o)
	w := table()
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy")
	for _, e := range energies {
		fmt.Fprintf(w, "%s\t%s\t%.2f\n", e.Kernel, e.Mode, e.Normalized)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = table()
	fmt.Fprintln(w, "GEMM ops\tMode\tSpeedup")
	for _, s := range speedups {
		fmt.Fprintf(w, "%d\t%s\t%.2fx\n", s.GEMMOps, s.Mode, s.Speedup)
	}
	return w.Flush()
}

func runFig20(o experiments.Options) error {
	fmt.Println("Video kernels: energy and runtime by execution mode (paper Figure 20)")
	rows, err := experiments.Fig20(o)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy\tNorm. Runtime\tSavings\tSpeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%s\t%.2fx\n",
			r.Kernel, r.Mode, r.NormEnergy, r.NormRuntime, pct(r.EnergySavings), r.Speedup)
	}
	return w.Flush()
}

func runFig21(o experiments.Options) error {
	fmt.Println("VP9 hardware codec energy (paper Figure 21, one HD frame)")
	rows, err := experiments.Fig21(o)
	if err != nil {
		return err
	}
	modeName := map[int]string{0: "VP9", 1: "PIM-Core", 2: "PIM-Acc"}
	w := table()
	fmt.Fprintln(w, "Codec\tDesign\tCompression\tEnergy (mJ)")
	for _, r := range rows {
		comp := "off"
		if r.Compressed {
			comp = "on"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\n", r.Codec, modeName[int(r.Mode)], comp, r.EnergyMJ)
	}
	return w.Flush()
}

func runAreas(experiments.Options) error {
	fmt.Println("PIM logic area feasibility (paper §§3.3-7)")
	w := table()
	fmt.Fprintln(w, "Logic\tArea (mm²)\tVault budget used\tFeasible")
	for _, r := range experiments.Areas() {
		fmt.Fprintf(w, "%s\t%.2f\t%s\t%v\n", r.Logic, r.AreaMM2, pct(r.BudgetFraction), r.Feasible)
	}
	return w.Flush()
}

func runAblation(o experiments.Options) error {
	fmt.Println("Design-space ablations (texture tiling target)")
	w := table()
	fmt.Fprintln(w, "Vault PIM cores\tSpeedup vs CPU")
	for _, r := range experiments.AblationVaults(o) {
		fmt.Fprintf(w, "%d\t%.2fx\n", r.Vaults, r.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = table()
	fmt.Fprintln(w, "Logic-layer bandwidth\tSpeedup vs CPU")
	for _, r := range experiments.AblationBandwidth(o) {
		fmt.Fprintf(w, "%.0f GB/s\t%.2fx\n", r.GBs, r.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = table()
	fmt.Fprintln(w, "CPU-shared lines\tCoherence energy overhead")
	for _, r := range experiments.AblationCoherence(o) {
		fmt.Fprintf(w, "%s\t%s\n", pct(r.SharedFraction), pct(r.EnergyOverhead))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = table()
	fmt.Fprintln(w, "Accelerator efficiency vs CPU\tEnergy reduction")
	for _, r := range experiments.AblationAccEfficiency(o) {
		fmt.Fprintf(w, "%.0fx\t%s\n", r.EfficiencyX, pct(r.EnergyReduction))
	}
	return w.Flush()
}

func runBattery(o experiments.Options) error {
	fmt.Println("Battery-life projection from PIM-Acc energy reductions (paper §1 motivation)")
	w := table()
	fmt.Fprintln(w, "Scenario\tWorkload power share\tPIM-Acc reduction\tBattery life")
	for _, r := range experiments.BatteryLife(o) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2fx\n", r.Scenario, pct(r.Share), pct(r.Reduction), r.LifeExtension)
	}
	return w.Flush()
}

func runPageLoad(o experiments.Options) error {
	fmt.Println("Page load: CPU vs GPU rasterization (paper §4.2.2)")
	w := table()
	fmt.Fprintln(w, "Page\tCPU raster (ms)\tGPU raster (ms)\tGPU/CPU")
	for _, r := range experiments.PageLoad(o) {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2fx\n", r.Page, r.CPUMillis, r.GPUMillis, r.GPUSlowdown)
	}
	return w.Flush()
}

func runTargets(o experiments.Options) error {
	fmt.Println("PIM target characterization (paper §3.2 criteria)")
	w := table()
	fmt.Fprintln(w, "Target\tWorkload\tLLC MPKI\tMovement share\tTraffic (MB)\tMemory-intensive\tMovement-dominant")
	for _, r := range experiments.TargetStats(o) {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%s\t%.1f\t%v\t%v\n",
			r.Name, r.Workload, r.LLCMPKI, pct(r.MovementFraction), r.TrafficMB, r.MemoryIntensive, r.MovementDominant)
	}
	return w.Flush()
}

func runTabSwitch(o experiments.Options) error {
	fmt.Println("Tab restore latency: decompressing one 4 MiB tab (paper §4.3)")
	w := table()
	fmt.Fprintln(w, "Mode\tLatency (ms)")
	for _, r := range experiments.TabSwitchLatency(o) {
		fmt.Fprintf(w, "%s\t%.2f\n", r.Mode, r.Millis)
	}
	return w.Flush()
}

func runPlan(o experiments.Options) error {
	fmt.Println("Per-vault accelerator provisioning plan (§8.1, 3.5 mm² budget)")
	res := experiments.Plan(o)
	w := table()
	fmt.Fprintln(w, "Target\tPlanned logic\tArea (mm²)\tEnergy savings")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t-%s\n", r.Target, r.Mode, r.AreaMM2, pct(r.SavingsPC))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("area used: %.2f of %.2f mm² (%d accelerators + the PIM core)\n",
		res.AreaUsedMM2, res.BudgetMM2, res.Accelerated)
	return nil
}

func runHeadline(o experiments.Options) error {
	fmt.Println("Headline averages across all PIM targets (paper §1/§12)")
	res := experiments.Headline(o)
	fmt.Printf("data movement share of CPU-only energy: %s (paper: 62.7%%)\n", pct(res.AvgDataMovementFraction))
	for _, m := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
		fmt.Printf("%s: energy -%s, speedup %.2fx avg / %.2fx max\n",
			m, pct(res.AvgEnergyReduction[m]), res.AvgSpeedup[m], res.MaxSpeedup[m])
	}
	fmt.Println("(paper: PIM-Core -49.1% / 1.45x avg, up to 2.2x; PIM-Acc -55.4% / 1.54x avg, up to 2.5x)")
	w := table()
	fmt.Fprintln(w, "Target\tWorkload\tDM frac\tPIM-Core ΔE\tPIM-Acc ΔE\tPIM-Core speedup\tPIM-Acc speedup")
	for _, r := range res.PerTarget {
		fmt.Fprintf(w, "%s\t%s\t%s\t-%s\t-%s\t%.2fx\t%.2fx\n",
			r.Target.Name, r.Target.Workload,
			pct(r.ByMode[gopim.CPUOnly].Energy.DataMovementFraction()),
			pct(r.EnergyReduction(gopim.PIMCore)), pct(r.EnergyReduction(gopim.PIMAcc)),
			r.Speedup(gopim.PIMCore), r.Speedup(gopim.PIMAcc))
	}
	return w.Flush()
}
