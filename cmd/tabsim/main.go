// Command tabsim runs the paper's tab-switching experiment (§4.3,
// Figure 4): open N tabs, scroll each, switch through them, compressing
// inactive tabs into a ZRAM pool with LZO, and print the per-second swap
// traffic timeline.
//
// Usage:
//
//	tabsim [-tabs 50] [-resident 12] [-footprint-mb 4] [-seed 2024]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gopim/internal/browser"
)

func main() {
	tabs := flag.Int("tabs", 50, "number of tabs to open and switch through")
	resident := flag.Int("resident", 12, "tabs kept uncompressed in memory")
	footprintMB := flag.Int("footprint-mb", 4, "memory footprint per tab, MiB")
	seed := flag.Int64("seed", 2024, "content seed")
	flag.Parse()

	res, err := browser.RunSwitchSession(*tabs, *resident, *footprintMB<<20, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tabsim:", err)
		os.Exit(1)
	}

	fmt.Printf("tabs: %d (resident budget %d, %d MiB each)\n", *tabs, *resident, *footprintMB)
	fmt.Printf("swapped out: %.2f GB, swapped in: %.2f GB (paper: 11.7 / 7.8 GB over 50 tabs)\n",
		float64(res.TotalOut)/1e9, float64(res.TotalIn)/1e9)
	fmt.Printf("LZO compression ratio: %.2f\n", res.CompressRatio)

	var peakOut, peakIn int
	for _, s := range res.Samples {
		if s.OutBytes > peakOut {
			peakOut = s.OutBytes
		}
		if s.InBytes > peakIn {
			peakIn = s.InBytes
		}
	}
	fmt.Printf("peak rates: out %.0f MB/s, in %.0f MB/s (paper: up to 201 / 227 MB/s)\n\n",
		float64(peakOut)/1e6, float64(peakIn)/1e6)

	// ASCII timeline, one row per second with activity.
	scale := peakOut
	if peakIn > scale {
		scale = peakIn
	}
	if scale == 0 {
		return
	}
	const cols = 50
	fmt.Printf("timeline (each column = %.1f MB/s; # = swap-out, * = swap-in)\n", float64(scale)/1e6/cols)
	for _, s := range res.Samples {
		if s.OutBytes == 0 && s.InBytes == 0 {
			continue
		}
		out := s.OutBytes * cols / scale
		in := s.InBytes * cols / scale
		fmt.Printf("t=%4ds |%-*s|%-*s|\n", s.Second, cols, strings.Repeat("#", out), cols, strings.Repeat("*", in))
	}
}
