// Command pimsimd serves gopim simulations as a service: a long-lived
// process holding one warm trace.Cache (optionally backed by the
// persistent content-addressed store) that many clients submit sweep jobs
// against over HTTP/JSON. Where `pimsim run` pays the kernel-execution
// cost per process, pimsimd pays it once per unique kernel across all
// tenants: identical sweep cells from concurrent requests coalesce onto
// one in-flight computation (internal/serve's single-flight memo), and
// completed cells are served from memory.
//
// The wire contract is determinism: a job's result bytes are identical to
// the matching `pimsim run`/`pimsim explore` stdout for the same spec —
// scripts/check.sh gates the byte-for-byte diff. Admission is bounded: a
// fixed job-runner pool, a bounded queue, and 429 when the queue is full.
//
//	pimsimd -addr 127.0.0.1:7077
//	curl -s -X POST localhost:7077/jobs -d '{"kind":"run","experiments":["fig1"]}'
//	curl -s localhost:7077/jobs/job-1/result
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id}[/result|/stream],
// DELETE /jobs/{id}, GET /metrics, GET /healthz. SIGINT/SIGTERM shut down
// gracefully: stop admitting, drain in-flight jobs, flush store writes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"gopim/internal/obs"
	"gopim/internal/par"
	"gopim/internal/serve"
	"gopim/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen `host:port` (port 0 picks a free port)")
	storeFlag := flag.String("tracestore", "auto", "persistent trace store: auto, off, or a `directory`")
	jobWorkers := flag.Int("job-workers", 2, "concurrent job runners")
	workers := flag.Int("workers", 0, "worker bound inside each job's sweep (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue-cap", 16, "admission queue capacity (full queue = HTTP 429)")
	memoLimit := flag.Int("memo-limit", 256, "completed sweep cells retained for reuse")
	cacheLimit := flag.Int64("cache-limit", 0, "trace cache budget in bytes (0 = unbounded)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pimsimd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cache := trace.NewCache()
	cache.Store = openStore(*storeFlag)
	if *cacheLimit > 0 {
		cache.Limit = *cacheLimit
	}

	reg := obs.NewRegistry()
	par.SetObs(reg)
	defer par.SetObs(nil)

	srv := serve.NewServer(serve.Config{
		JobWorkers: *jobWorkers,
		Workers:    *workers,
		QueueCap:   *queueCap,
		MemoLimit:  *memoLimit,
		Traces:     cache,
		Reg:        reg,
	})
	api, err := serve.ServeAPI(*addr, srv)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimsimd: %v\n", err)
		os.Exit(1)
	}
	store := "off"
	if cache.Store != nil {
		store = cache.Store.Dir()
	}
	fmt.Fprintf(os.Stderr, "pimsimd: serving on http://%s (trace store: %s, job workers: %d, queue: %d)\n",
		api.Addr(), store, *jobWorkers, *queueCap)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "pimsimd: shutting down: draining in-flight jobs")
	// API first (no new requests), then the job engine (drains admitted
	// jobs and flushes pending store writes).
	if err := api.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "pimsimd: api close: %v\n", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "pimsimd: drained")
}

// openStore resolves and opens the persistent trace store, mirroring
// pimsim's -tracestore semantics: auto prefers $GOPIM_TRACE_DIR, then the
// user cache dir; an unusable auto store degrades to none (the store is
// an optimization), an explicit one must open.
func openStore(flagVal string) *trace.Store {
	var dir string
	switch flagVal {
	case "off":
		return nil
	case "auto":
		dir = os.Getenv("GOPIM_TRACE_DIR")
		if dir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				return nil
			}
			dir = filepath.Join(base, "gopim", "traces")
		}
	default:
		dir = flagVal
	}
	st, err := trace.OpenStore(dir)
	if err != nil {
		if flagVal != "auto" {
			fmt.Fprintf(os.Stderr, "pimsimd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pimsimd: trace store disabled: %v\n", err)
		return nil
	}
	return st
}
