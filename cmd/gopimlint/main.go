// Command gopimlint runs the simulator's static invariant checks
// (internal/lint) over the module and prints findings in the canonical
// file:line:col: [analyzer] message format. It exits 0 when the tree is
// clean, 1 when any finding survives //lint:ignore suppression, and 2
// when the tree fails to load or type-check.
//
// Usage:
//
//	gopimlint [./...]
//
// The only accepted pattern is the whole module ("./..." or no
// argument): the analyzers encode cross-package invariants, so partial
// runs would give a false sense of cleanliness.
package main

import (
	"fmt"
	"os"

	"gopim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		if a != "./..." {
			fmt.Fprintf(os.Stderr, "usage: gopimlint [./...]  (unrecognized argument %q)\n", a)
			return 2
		}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	analyzers := lint.Analyzers()
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	fmt.Fprintf(os.Stderr, "gopimlint: %d analyzers over %d files in %d packages: %d finding(s)\n",
		len(analyzers), lint.FileCount(pkgs), len(pkgs), len(diags))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
