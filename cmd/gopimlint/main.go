// Command gopimlint runs the simulator's static invariant checks
// (internal/lint) over the module and prints findings in the canonical
// file:line:col: [analyzer] message format. It exits 0 when the tree is
// clean, 1 when any finding survives //lint:ignore suppression, and 2
// when the tree fails to load or type-check.
//
// Usage:
//
//	gopimlint [-json] [-workers N] [./...]
//	gopimlint -annotate report.json
//
// -json replaces the human-readable finding lines on stdout with a
// machine-readable JSON array (the summary stays on stderr). -annotate
// converts a saved -json report into GitHub Actions ::error annotations —
// the CI path that surfaces findings inline on pull requests without
// re-analyzing the tree. -workers bounds the analysis worker pool
// (default: GOMAXPROCS).
//
// The only accepted package pattern is the whole module ("./..." or no
// argument): the analyzers encode cross-package invariants — puritypath's
// reachability closure, goroleak's module-wide WaitGroup facts — so
// partial runs would give a false sense of cleanliness.
package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"

	"gopim/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprint(os.Stderr, "usage: gopimlint [-json] [-workers N] [./...]\n"+
		"       gopimlint -annotate report.json\n")
	return 2
}

func run(args []string) int {
	jsonOut := false
	workers := runtime.GOMAXPROCS(0)
	var annotate string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-json":
			jsonOut = true
		case "-annotate":
			i++
			if i >= len(args) {
				return usage()
			}
			annotate = args[i]
		case "-workers":
			i++
			if i >= len(args) {
				return usage()
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "gopimlint: -workers wants a positive integer, got %q\n", args[i])
				return 2
			}
			workers = n
		case "./...":
			// the whole module — the only accepted pattern
		default:
			fmt.Fprintf(os.Stderr, "gopimlint: unrecognized argument %q\n", a)
			return usage()
		}
	}

	if annotate != "" {
		return runAnnotate(annotate)
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	analyzers := lint.Analyzers()
	diags := lint.RunAnalyzersParallel(pkgs, analyzers, workers)
	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	fmt.Fprintf(os.Stderr, "gopimlint: %d analyzers over %d files in %d packages: %d finding(s)\n",
		len(analyzers), lint.FileCount(pkgs), len(pkgs), len(diags))
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runAnnotate converts a saved -json report into GitHub annotations.
func runAnnotate(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	defer f.Close()
	diags, err := lint.ReadJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		root = ""
	}
	if err := lint.WriteGitHub(os.Stdout, diags, root); err != nil {
		fmt.Fprintf(os.Stderr, "gopimlint: %v\n", err)
		return 2
	}
	return 0
}
