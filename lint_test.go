package gopim_test

import (
	"os/exec"
	"strings"
	"testing"

	"gopim/internal/lint"
)

// TestStaticInvariants runs every analyzer over the whole module; the
// tree must be clean (real exceptions carry //lint:ignore directives
// with reasons). This is the same gate cmd/gopimlint enforces, wired
// into `go test ./...` so it cannot be forgotten.
func TestStaticInvariants(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.Analyzers()
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	t.Logf("%d analyzers over %d files in %d packages", len(analyzers), lint.FileCount(pkgs), len(pkgs))
}

// TestGoVet keeps the tree `go vet` clean.
func TestGoVet(t *testing.T) {
	out, err := exec.Command("go", "vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet failed:\n%s", out)
	}
}

// TestGofmt keeps every file gofmt-formatted.
func TestGofmt(t *testing.T) {
	out, err := exec.Command("gofmt", "-l", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("gofmt -l failed:\n%s", out)
	}
	if files := strings.TrimSpace(string(out)); files != "" {
		t.Errorf("files not gofmt-formatted:\n%s", files)
	}
}
