// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each iteration
// regenerates the figure's data from scratch and reports the figure's
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benches run at Quick scale so the full
// sweep finishes on a laptop; run cmd/pimsim -scale standard for the
// larger working sets.
package gopim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gopim"
	"gopim/experiments"
	"gopim/internal/cache"
	"gopim/internal/dram"
	"gopim/internal/par"
)

var benchOpts = experiments.Options{Scale: gopim.Quick}

func BenchmarkFig1Scrolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(benchOpts)
		avg := rows[len(rows)-1]
		b.ReportMetric((avg.TextureTiling+avg.ColorBlitting)*100, "tiling+blit_%")
	}
}

func BenchmarkFig2DocsBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(benchOpts)
		b.ReportMetric(res.DataMovementFraction*100, "data_movement_%")
		b.ReportMetric(res.LLCMPKI, "MPKI")
	}
}

func BenchmarkFig4TabSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PeakOutMBs, "peak_out_MB/s")
		b.ReportMetric(res.TotalOutGB, "swapped_out_GB")
	}
}

func BenchmarkFig6TFEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchOpts)
		avg := rows[len(rows)-1]
		b.ReportMetric((avg.Packing+avg.Quantization)*100, "pack+quant_%")
	}
}

func BenchmarkFig7TFTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchOpts)
		avg := rows[len(rows)-1]
		b.ReportMetric((avg.Packing+avg.Quantization)*100, "pack+quant_time_%")
	}
}

func BenchmarkFig10SWDecode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr, err := experiments.Fig10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fr {
			if f.Name == "MC: Sub-Pixel Interpolation" {
				b.ReportMetric(f.Fraction*100, "subpel_%")
			}
		}
	}
}

func BenchmarkFig11SWDecodeComponents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DataMovementFraction*100, "data_movement_%")
	}
}

func BenchmarkFig12HWDecodeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var hd, k4 float64
		for _, r := range rows {
			if r.Compressed {
				continue
			}
			if r.Resolution == "HD" {
				hd = r.TotalMB
			} else {
				k4 = r.TotalMB
			}
		}
		b.ReportMetric(k4/hd, "4K/HD_ratio")
	}
}

func BenchmarkFig15SWEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr, err := experiments.Fig15(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fr {
			if f.Name == "Motion Estimation" {
				b.ReportMetric(f.Fraction*100, "ME_%")
			}
		}
	}
}

func BenchmarkFig16HWEncodeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Resolution == "HD" && !r.Compressed {
				var ref, total float64
				for _, it := range r.Items {
					total += it.Bytes
					if it.Name == "Reference Frame" {
						ref = it.Bytes
					}
				}
				b.ReportMetric(ref/total*100, "ref_share_%")
			}
		}
	}
}

func BenchmarkFig18BrowserKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig18(benchOpts)
		var acc float64
		n := 0.0
		for _, r := range rows {
			if r.Mode == gopim.PIMAcc {
				acc += r.EnergySavings
				n++
			}
		}
		b.ReportMetric(acc/n*100, "PIM-Acc_savings_%")
	}
}

func BenchmarkFig19TFKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, speedups := experiments.Fig19(benchOpts)
		for _, s := range speedups {
			if s.GEMMOps == 16 && s.Mode == gopim.PIMAcc {
				b.ReportMetric(s.Speedup, "16GEMM_PIM-Acc_x")
			}
		}
	}
}

func BenchmarkFig20VideoKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig20(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Kernel == "Motion Estimation" && r.Mode == gopim.PIMAcc {
				b.ReportMetric(r.Speedup, "ME_PIM-Acc_x")
			}
		}
	}
}

func BenchmarkFig21HWEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig21(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var base, acc float64
		for _, r := range rows {
			if r.Codec == "decoder" && r.Compressed {
				switch int(r.Mode) {
				case 0:
					base = r.EnergyMJ
				case 2:
					acc = r.EnergyMJ
				}
			}
		}
		b.ReportMetric((1-acc/base)*100, "decoder_PIM-Acc_savings_%")
	}
}

func BenchmarkHeadlineAverages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Headline(benchOpts)
		b.ReportMetric(res.AvgDataMovementFraction*100, "data_movement_%")
		b.ReportMetric(res.AvgEnergyReduction[gopim.PIMAcc]*100, "PIM-Acc_savings_%")
		b.ReportMetric(res.AvgSpeedup[gopim.PIMAcc], "PIM-Acc_speedup_x")
	}
}

func BenchmarkPageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.PageLoad(benchOpts)
		for _, r := range rows {
			if r.Page == "Google Docs" {
				b.ReportMetric(r.GPUSlowdown, "docs_GPU_slowdown_x")
			}
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := experiments.AblationVaults(benchOpts)
		b.ReportMetric(v[4].Speedup, "16vault_speedup_x")
		c := experiments.AblationCoherence(benchOpts)
		b.ReportMetric(c[1].EnergyOverhead*100, "coherence_1pct_overhead_%")
	}
}

func BenchmarkBatteryLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.BatteryLife(benchOpts)
		b.ReportMetric(rows[0].LifeExtension, "browsing_battery_x")
	}
}

func BenchmarkTargetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TargetStats(benchOpts)
		var mpki float64
		for _, r := range rows {
			mpki += r.LLCMPKI / float64(len(rows))
		}
		b.ReportMetric(mpki, "avg_MPKI")
	}
}

// BenchmarkHierarchySpan tracks the per-access cost of the cache hierarchy
// on the span mixes the instrumented kernels produce: sequential sub-line
// spans (byte-wise kernels like LZO and blitting, where consecutive
// accesses stay within one 64 B line), strided row walks (texture tiling),
// and scattered line-sized touches (motion compensation).
func BenchmarkHierarchySpan(b *testing.B) {
	newHier := func() *cache.Hierarchy {
		l1 := cache.New(cache.Config{Name: "L1D", Size: 64 << 10, Ways: 4})
		l2 := cache.New(cache.Config{Name: "LLC", Size: 2 << 20, Ways: 8})
		return cache.NewHierarchy(l1, l2, dram.NewRowMeter())
	}
	const footprint = 8 << 20
	b.Run("sequential-subline", func(b *testing.B) {
		h := newHier()
		var addr uint64
		for i := 0; i < b.N; i++ {
			h.Load(addr%footprint, 4)
			addr += 4
		}
	})
	b.Run("strided-rows", func(b *testing.B) {
		h := newHier()
		const stride, rowB = 4096, 128
		var row uint64
		for i := 0; i < b.N; i++ {
			h.Load((row*stride+uint64(i%32)*rowB)%footprint, rowB)
			if i%32 == 31 {
				row++
			}
		}
	})
	b.Run("random-lines", func(b *testing.B) {
		h := newHier()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			h.Load(uint64(rng.Intn(footprint)), 64)
		}
	})
	// Whole-rectangle entry point vs. the per-row loop it replaces.
	b.Run("span-batched-rows", func(b *testing.B) {
		h := newHier()
		const stride, rowB, rows = 4096, 128, 32
		var base uint64
		for i := 0; i < b.N; i++ {
			h.LoadSpan(base%footprint, rowB, rows, stride)
			base += rows * stride
		}
	})
}

// BenchmarkParMap tracks the fixed overhead of the bounded worker pool on
// small CPU-bound units, per worker count. On multi-core hosts the >1
// worker cases show the fan-out win; on a single-core host every case now
// collapses to the inline serial path, because ForEach caps workers at
// GOMAXPROCS — before that cap, workers-8 trailed workers-1 here by pure
// goroutine-scheduling overhead, with no result difference to show for it.
func BenchmarkParMap(b *testing.B) {
	work := func(i int) uint64 {
		h := uint64(i) + 0x9e3779b97f4a7c15
		for j := 0; j < 1000; j++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
		}
		return h
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				par.Map(workers, 64, work)
			}
		})
	}
}
