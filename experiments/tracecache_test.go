package experiments

import (
	"bytes"
	"testing"

	"gopim"
	"gopim/internal/trace"
)

// TestRunAllTraceCacheMatchesDirect is the end-to-end memoization gate: the
// full experiment sweep with a shared kernel trace cache must render
// byte-identical reports to the direct-execution path, and the cache must
// actually be exercised (records and replays both non-zero).
func TestRunAllTraceCacheMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment sweeps; skipped with -short")
	}
	c := trace.NewCache()
	cached := RunAllSerial(Options{Scale: gopim.Quick, Traces: c})
	direct := RunAllSerial(Options{Scale: gopim.Quick})

	if len(cached) != len(direct) {
		t.Fatalf("result counts differ: %d cached / %d direct", len(cached), len(direct))
	}
	rc, rd := renderResults(t, cached), renderResults(t, direct)
	for name, text := range rc {
		if !bytes.Equal(text, rd[name]) {
			t.Errorf("%s: rendered output differs with the trace cache on:\ncached:\n%s\ndirect:\n%s",
				name, text, rd[name])
		}
	}

	s := c.Stats()
	if s.Records == 0 || s.Replays == 0 {
		t.Errorf("trace cache unused during run all: stats %+v", s)
	}
	// The sweep evaluates each keyed kernel on multiple hardware configs
	// across many experiments; memoization must collapse those to hits.
	if s.Hits <= s.Records {
		t.Errorf("expected more hits than recordings, got %+v", s)
	}
}
