package experiments

import (
	"bytes"
	"testing"

	"gopim"
	"gopim/internal/trace"
)

// TestRunAllTraceCacheMatchesDirect is the end-to-end memoization gate: the
// full experiment sweep with a shared kernel trace cache must render
// byte-identical reports to the direct-execution path, and the cache must
// actually be exercised (records and replays both non-zero).
func TestRunAllTraceCacheMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment sweeps; skipped with -short")
	}
	c := trace.NewCache()
	cached := RunAllSerial(Options{Scale: gopim.Quick, Traces: c})
	direct := RunAllSerial(Options{Scale: gopim.Quick})

	if len(cached) != len(direct) {
		t.Fatalf("result counts differ: %d cached / %d direct", len(cached), len(direct))
	}
	rc, rd := renderResults(t, cached), renderResults(t, direct)
	for name, text := range rc {
		if !bytes.Equal(text, rd[name]) {
			t.Errorf("%s: rendered output differs with the trace cache on:\ncached:\n%s\ndirect:\n%s",
				name, text, rd[name])
		}
	}

	s := c.Stats()
	if s.Records == 0 || s.Replays == 0 {
		t.Errorf("trace cache unused during run all: stats %+v", s)
	}
	// The sweep evaluates each keyed kernel on multiple hardware configs
	// across many experiments; memoization must collapse those to hits.
	if s.Hits <= s.Records {
		t.Errorf("expected more hits than recordings, got %+v", s)
	}
}

// TestRunAllReplayEnginesMatch is the end-to-end replay-engine gate: the
// full experiment sweep must render byte-identical reports whether the
// trace cache replays through the compiled line-stream engine or the
// reference interpreter.
func TestRunAllReplayEnginesMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment sweeps; skipped with -short")
	}
	compiledCache := trace.NewCache() // Engine zero value is EngineCompiled
	interpCache := trace.NewCache()
	interpCache.Engine = trace.EngineInterp

	compiled := RunAllSerial(Options{Scale: gopim.Quick, Traces: compiledCache})
	interp := RunAllSerial(Options{Scale: gopim.Quick, Traces: interpCache})
	if len(compiled) != len(interp) {
		t.Fatalf("result counts differ: %d compiled / %d interp", len(compiled), len(interp))
	}
	rc, ri := renderResults(t, compiled), renderResults(t, interp)
	for name, text := range rc {
		if !bytes.Equal(text, ri[name]) {
			t.Errorf("%s: rendered output differs between replay engines:\ncompiled:\n%s\ninterp:\n%s",
				name, text, ri[name])
		}
	}

	// Both sweeps must actually have replayed traces for the comparison to
	// mean anything.
	if s := compiledCache.Stats(); s.Replays == 0 {
		t.Errorf("compiled sweep performed no replays: stats %+v", s)
	}
	if s := interpCache.Stats(); s.Replays == 0 {
		t.Errorf("interp sweep performed no replays: stats %+v", s)
	}
}
