package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"gopim"
	"gopim/internal/obs"
	"gopim/internal/par"
	"gopim/internal/trace"
)

// TestRunAllObsOutputIdentical is the observability ground-rule gate at the
// experiments layer: a fully instrumented run — registry attached to the
// options, the trace cache, and the worker pool — must render byte-identical
// reports to a plain run, while the registry actually collects phase
// timings, cache counters, worker time, and per-experiment wall times.
// A representative subset keeps the package under the go-test timeout;
// check.sh gates the full sweep end-to-end by comparing pimsim binaries.
func TestRunAllObsOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two experiment runs; skipped with -short")
	}
	names := []string{"fig1", "fig2", "fig7", "fig18", "headline"}

	plain, err := RunNamed(Options{Scale: gopim.Quick, Workers: 1, Traces: trace.NewCache()}, names)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	par.SetObs(reg)
	defer par.SetObs(nil)
	c := trace.NewCache()
	c.Obs = reg
	reg.AddSource(obs.PrefixTraceCache, c)
	instrumented, err := RunNamed(Options{Scale: gopim.Quick, Workers: 4, Traces: c, Obs: reg}, names)
	if err != nil {
		t.Fatal(err)
	}

	rp, ri := renderResults(t, plain), renderResults(t, instrumented)
	for name, text := range rp {
		if !bytes.Equal(text, ri[name]) {
			t.Errorf("%s: rendered output differs with observability attached:\nplain:\n%s\ninstrumented:\n%s",
				name, text, ri[name])
		}
	}

	for _, r := range instrumented {
		if r.WallNS <= 0 {
			t.Errorf("experiment %s has no wall time recorded", r.Name)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{"phase.record", "phase.replay.compiled"} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}
	if snap.Counters[obs.PrefixTraceCache+"requests"] == 0 {
		t.Error("trace cache source exported no requests")
	}
	// The inline serial path (worker cap = GOMAXPROCS = 1) is deliberately
	// instrumentation-free; pooled-path accounting is covered by
	// internal/par's own obs test.
	if runtime.GOMAXPROCS(0) > 1 && snap.Counters["par.worker.busy_ns"] <= 0 {
		t.Error("worker pool recorded no busy time")
	}

	rep := obs.BuildReport(reg, obs.RunMeta{Command: "test", Scale: "quick", Workers: 4}, 1, nil)
	if hr := rep.Derived.TraceCacheHitRate; hr <= 0 || hr > 1 {
		t.Errorf("trace cache hit rate %.4f outside (0, 1]", hr)
	}
	if rep.Derived.KernelExecutions == 0 {
		t.Error("cold sweep reports zero kernel executions")
	}
}
