package experiments

import (
	"testing"

	"gopim"
)

func TestTargetStatsCriteria(t *testing.T) {
	if testing.Short() {
		t.Skip("full target sweep (~18s, minutes under -race); skipped with -short")
	}
	rows := TargetStats(quick)
	if len(rows) != 9 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-24s MPKI %6.1f movement %5.1f%% traffic %7.1f MB", r.Name, r.LLCMPKI, r.MovementFraction*100, r.TrafficMB)
		// The paper selected these targets *because* they pass the MPKI
		// criterion. Exceptions at Quick scale: ME is compute-heavy (the
		// paper admits it as the most compute-intensive target), and the
		// sub-pel kernel's 720p-class reference frames partially fit the
		// LLC (at the paper's 4K they cannot).
		switch r.Name {
		case "Motion Estimation", "Sub-Pixel Interpolation":
		default:
			if !r.MemoryIntensive {
				t.Errorf("%s: MPKI %.1f <= 10; fails the paper's §3.2 criterion", r.Name, r.LLCMPKI)
			}
		}
		if r.TrafficMB <= 0 {
			t.Errorf("%s: no traffic", r.Name)
		}
	}
}

func TestTabSwitchLatency(t *testing.T) {
	rows := TabSwitchLatency(quick)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	by := map[gopim.Mode]float64{}
	for _, r := range rows {
		by[r.Mode] = r.Millis
		if r.Millis <= 0 {
			t.Errorf("%s: non-positive latency", r.Mode)
		}
		t.Logf("tab restore on %s: %.2f ms", r.Mode, r.Millis)
	}
	if by[gopim.PIMAcc] >= by[gopim.CPUOnly] {
		t.Error("PIM-Acc should restore tabs faster than the CPU")
	}
}

func TestPlanFitsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full planning sweep (~17s, minutes under -race); skipped with -short")
	}
	res := Plan(quick)
	if res.AreaUsedMM2 > res.BudgetMM2 {
		t.Fatalf("plan area %.2f exceeds budget %.2f", res.AreaUsedMM2, res.BudgetMM2)
	}
	if res.Accelerated == 0 {
		t.Error("no accelerators provisioned within 3.5 mm²")
	}
	// The ME accelerator is the big one (1.24 mm²); with all the small
	// 0.12-0.25 mm² accelerators it may or may not fit, but the total must
	// include the PIM core.
	if res.AreaUsedMM2 < gopim.PIMCoreArea {
		t.Error("PIM core missing from the plan")
	}
	for _, r := range res.Rows {
		if r.Mode == gopim.PIMAcc && r.AreaMM2 <= 0 {
			t.Errorf("%s accelerated with no area", r.Target)
		}
		if r.SavingsPC <= 0 {
			t.Errorf("%s: plan chose a mode with no savings", r.Target)
		}
		t.Logf("%-24s -> %-8s (%.2f mm², -%.0f%%)", r.Target, r.Mode, r.AreaMM2, r.SavingsPC*100)
	}
}
