package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"gopim"
	"gopim/internal/vp9"
)

// The renderers format each experiment's payload exactly the way the
// pimsim tool has always printed it; cmd/pimsim calls them through
// Runner.Render for both the serial and the `run all` path.

func tab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func renderTable1(out io.Writer, data any) error {
	w := tab(out)
	fmt.Fprintln(w, "Component\tConfiguration")
	for _, r := range data.([]Table1Row) {
		fmt.Fprintf(w, "%s\t%s\n", r.Component, r.Value)
	}
	return w.Flush()
}

func renderFig1(out io.Writer, data any) error {
	fmt.Fprintln(out, "Energy breakdown for page scrolling (paper Figure 1)")
	w := tab(out)
	fmt.Fprintln(w, "Page\tTexture Tiling\tColor Blitting\tOther")
	for _, r := range data.([]Fig1Row) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", r.Page, pct(r.TextureTiling), pct(r.ColorBlitting), pct(r.Other))
	}
	return w.Flush()
}

func renderFig2(out io.Writer, data any) error {
	fmt.Fprintln(out, "Google Docs scrolling energy (paper Figure 2)")
	res := data.(Fig2Result)
	w := tab(out)
	fmt.Fprintln(w, "Function\tCPU\tL1\tLLC\tInterconnect\tMemCtrl\tDRAM\tTotal")
	for _, n := range sortedKeys(res.ByPhase) {
		b := res.ByPhase[n]
		fmt.Fprintf(w, "%s\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\n",
			n, b.CPU, b.L1, b.LLC, b.Interconnect, b.MemCtrl, b.DRAM, b.Total())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "data movement: %s of total energy (paper: 77%%)\n", pct(res.DataMovementFraction))
	fmt.Fprintf(out, "tiling+blitting data movement: %s of total (paper: 37.7%%)\n", pct(res.TilingBlittingMovementFraction))
	fmt.Fprintf(out, "LLC MPKI: %.1f (paper: 21.4 average)\n", res.LLCMPKI)
	return nil
}

func renderFig4(out io.Writer, data any) error {
	fmt.Fprintln(out, "ZRAM swap traffic while switching tabs (paper Figure 4)")
	res := data.(Fig4Result)
	fmt.Fprintf(out, "total swapped out: %.2f GB (paper: 11.7 GB), in: %.2f GB (paper: 7.8 GB)\n",
		res.TotalOutGB, res.TotalInGB)
	fmt.Fprintf(out, "peak rates: out %.0f MB/s (paper: 201), in %.0f MB/s (paper: 227)\n",
		res.PeakOutMBs, res.PeakInMBs)
	fmt.Fprintf(out, "LZO compression ratio: %.2f\n", res.CompressRatio)
	scale := 1
	for _, s := range res.Samples {
		if s.OutBytes > scale {
			scale = s.OutBytes
		}
		if s.InBytes > scale {
			scale = s.InBytes
		}
	}
	const cols = 40
	fmt.Fprintf(out, "timeline (each char = %.1f MB/s; o=swap-out i=swap-in):\n", float64(scale)/1e6/cols)
	for _, s := range res.Samples {
		if s.OutBytes == 0 && s.InBytes == 0 {
			continue
		}
		fmt.Fprintf(out, "  t=%3ds %s%s\n", s.Second,
			strings.Repeat("o", s.OutBytes*cols/scale),
			strings.Repeat("i", s.InBytes*cols/scale))
	}
	return nil
}

func renderTF(out io.Writer, kind string, rows []TFRow) error {
	fmt.Fprintf(out, "TensorFlow Mobile inference %s breakdown (paper Figures 6/7)\n", kind)
	w := tab(out)
	fmt.Fprintln(w, "Network\tPacking\tQuantization\tConv2D+MatMul\tOther")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", r.Network, pct(r.Packing), pct(r.Quantization), pct(r.GEMM), pct(r.Other))
	}
	return w.Flush()
}

func renderFig6(out io.Writer, data any) error { return renderTF(out, "energy", data.([]TFRow)) }
func renderFig7(out io.Writer, data any) error { return renderTF(out, "time", data.([]TFRow)) }

func renderFractions(out io.Writer, title string, fr []PhaseFraction) error {
	fmt.Fprintln(out, title)
	w := tab(out)
	for _, f := range fr {
		fmt.Fprintf(w, "%s\t%s\n", f.Name, pct(f.Fraction))
	}
	return w.Flush()
}

func renderFig10(out io.Writer, data any) error {
	return renderFractions(out, "VP9 software decoder energy by function (paper Figure 10)", data.([]PhaseFraction))
}

func renderFig11(out io.Writer, data any) error {
	fmt.Fprintln(out, "VP9 software decoder energy by component (paper Figure 11)")
	res := data.(Fig11Result)
	w := tab(out)
	fmt.Fprintln(w, "Function\tCPU\tL1\tLLC\tInterconnect\tMemCtrl\tDRAM")
	for _, n := range sortedKeys(res.ByPhase) {
		b := res.ByPhase[n]
		fmt.Fprintf(w, "%s\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\t%.2g\n", n, b.CPU, b.L1, b.LLC, b.Interconnect, b.MemCtrl, b.DRAM)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "data movement: %s (paper at 4K: 63.5%%); sub-pel share of movement: %s\n",
		pct(res.DataMovementFraction), pct(res.SubPelMovementShare))
	return nil
}

func renderHWTraffic(out io.Writer, title string, rows []HWTrafficRow) error {
	fmt.Fprintln(out, title)
	w := tab(out)
	fmt.Fprintln(w, "Config\tCategory\tMB/frame")
	for _, r := range rows {
		comp := "no compression"
		if r.Compressed {
			comp = "with compression"
		}
		for _, it := range r.Items {
			fmt.Fprintf(w, "%s (%s)\t%s\t%.2f\n", r.Resolution, comp, it.Name, it.Bytes/1e6)
		}
		fmt.Fprintf(w, "%s (%s)\tTOTAL\t%.2f\n", r.Resolution, comp, r.TotalMB)
	}
	return w.Flush()
}

func renderFig12(out io.Writer, data any) error {
	return renderHWTraffic(out, "VP9 hardware decoder off-chip traffic (paper Figure 12)", data.([]HWTrafficRow))
}

func renderFig15(out io.Writer, data any) error {
	return renderFractions(out, "VP9 software encoder energy by function (paper Figure 15)", data.([]PhaseFraction))
}

func renderFig16(out io.Writer, data any) error {
	return renderHWTraffic(out, "VP9 hardware encoder off-chip traffic (paper Figure 16)", data.([]HWTrafficRow))
}

func renderFig18(out io.Writer, data any) error {
	fmt.Fprintln(out, "Browser kernels: energy and runtime by execution mode (paper Figure 18)")
	w := tab(out)
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy\tNorm. Runtime\tSavings\tSpeedup")
	for _, r := range data.([]Fig18Row) {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%s\t%.2fx\n",
			r.Kernel, r.Mode, r.NormEnergy, r.NormRuntime, pct(r.EnergySavings), r.Speedup)
	}
	return w.Flush()
}

func renderFig19(out io.Writer, data any) error {
	fmt.Fprintln(out, "TensorFlow kernels: energy and end-to-end speedup (paper Figure 19)")
	res := data.(Fig19Result)
	w := tab(out)
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy")
	for _, e := range res.Energies {
		fmt.Fprintf(w, "%s\t%s\t%.2f\n", e.Kernel, e.Mode, e.Normalized)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = tab(out)
	fmt.Fprintln(w, "GEMM ops\tMode\tSpeedup")
	for _, s := range res.Speedups {
		fmt.Fprintf(w, "%d\t%s\t%.2fx\n", s.GEMMOps, s.Mode, s.Speedup)
	}
	return w.Flush()
}

func renderFig20(out io.Writer, data any) error {
	fmt.Fprintln(out, "Video kernels: energy and runtime by execution mode (paper Figure 20)")
	w := tab(out)
	fmt.Fprintln(w, "Kernel\tMode\tNorm. Energy\tNorm. Runtime\tSavings\tSpeedup")
	for _, r := range data.([]Fig20Row) {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%s\t%.2fx\n",
			r.Kernel, r.Mode, r.NormEnergy, r.NormRuntime, pct(r.EnergySavings), r.Speedup)
	}
	return w.Flush()
}

func renderFig21(out io.Writer, data any) error {
	fmt.Fprintln(out, "VP9 hardware codec energy (paper Figure 21, one HD frame)")
	modeName := map[vp9.HWEnergyMode]string{vp9.HWBaseline: "VP9", vp9.HWPIMCore: "PIM-Core", vp9.HWPIMAcc: "PIM-Acc"}
	w := tab(out)
	fmt.Fprintln(w, "Codec\tDesign\tCompression\tEnergy (mJ)")
	for _, r := range data.([]Fig21Row) {
		comp := "off"
		if r.Compressed {
			comp = "on"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\n", r.Codec, modeName[r.Mode], comp, r.EnergyMJ)
	}
	return w.Flush()
}

func renderAreas(out io.Writer, data any) error {
	fmt.Fprintln(out, "PIM logic area feasibility (paper §§3.3-7)")
	w := tab(out)
	fmt.Fprintln(w, "Logic\tArea (mm²)\tVault budget used\tFeasible")
	for _, r := range data.([]AreaRow) {
		fmt.Fprintf(w, "%s\t%.2f\t%s\t%v\n", r.Logic, r.AreaMM2, pct(r.BudgetFraction), r.Feasible)
	}
	return w.Flush()
}

func renderAblation(out io.Writer, data any) error {
	fmt.Fprintln(out, "Design-space ablations (texture tiling target)")
	res := data.(AblationResult)
	w := tab(out)
	fmt.Fprintln(w, "Vault PIM cores\tSpeedup vs CPU")
	for _, r := range res.Vaults {
		fmt.Fprintf(w, "%d\t%.2fx\n", r.Vaults, r.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = tab(out)
	fmt.Fprintln(w, "Logic-layer bandwidth\tSpeedup vs CPU")
	for _, r := range res.Bandwidth {
		fmt.Fprintf(w, "%.0f GB/s\t%.2fx\n", r.GBs, r.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = tab(out)
	fmt.Fprintln(w, "CPU-shared lines\tCoherence energy overhead")
	for _, r := range res.Coherence {
		fmt.Fprintf(w, "%s\t%s\n", pct(r.SharedFraction), pct(r.EnergyOverhead))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w = tab(out)
	fmt.Fprintln(w, "Accelerator efficiency vs CPU\tEnergy reduction")
	for _, r := range res.AccEfficiency {
		fmt.Fprintf(w, "%.0fx\t%s\n", r.EfficiencyX, pct(r.EnergyReduction))
	}
	return w.Flush()
}

func renderBattery(out io.Writer, data any) error {
	fmt.Fprintln(out, "Battery-life projection from PIM-Acc energy reductions (paper §1 motivation)")
	w := tab(out)
	fmt.Fprintln(w, "Scenario\tWorkload power share\tPIM-Acc reduction\tBattery life")
	for _, r := range data.([]BatteryRow) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.2fx\n", r.Scenario, pct(r.Share), pct(r.Reduction), r.LifeExtension)
	}
	return w.Flush()
}

func renderPageLoad(out io.Writer, data any) error {
	fmt.Fprintln(out, "Page load: CPU vs GPU rasterization (paper §4.2.2)")
	w := tab(out)
	fmt.Fprintln(w, "Page\tCPU raster (ms)\tGPU raster (ms)\tGPU/CPU")
	for _, r := range data.([]PageLoadRow) {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2fx\n", r.Page, r.CPUMillis, r.GPUMillis, r.GPUSlowdown)
	}
	return w.Flush()
}

func renderTargets(out io.Writer, data any) error {
	fmt.Fprintln(out, "PIM target characterization (paper §3.2 criteria)")
	w := tab(out)
	fmt.Fprintln(w, "Target\tWorkload\tLLC MPKI\tMovement share\tTraffic (MB)\tMemory-intensive\tMovement-dominant")
	for _, r := range data.([]TargetStatsRow) {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%s\t%.1f\t%v\t%v\n",
			r.Name, r.Workload, r.LLCMPKI, pct(r.MovementFraction), r.TrafficMB, r.MemoryIntensive, r.MovementDominant)
	}
	return w.Flush()
}

func renderTabSwitch(out io.Writer, data any) error {
	fmt.Fprintln(out, "Tab restore latency: decompressing one 4 MiB tab (paper §4.3)")
	w := tab(out)
	fmt.Fprintln(w, "Mode\tLatency (ms)")
	for _, r := range data.([]TabLatencyRow) {
		fmt.Fprintf(w, "%s\t%.2f\n", r.Mode, r.Millis)
	}
	return w.Flush()
}

func renderPlan(out io.Writer, data any) error {
	fmt.Fprintln(out, "Per-vault accelerator provisioning plan (§8.1, 3.5 mm² budget)")
	res := data.(PlanResult)
	w := tab(out)
	fmt.Fprintln(w, "Target\tPlanned logic\tArea (mm²)\tEnergy savings")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t-%s\n", r.Target, r.Mode, r.AreaMM2, pct(r.SavingsPC))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "area used: %.2f of %.2f mm² (%d accelerators + the PIM core)\n",
		res.AreaUsedMM2, res.BudgetMM2, res.Accelerated)
	return nil
}

func renderHeadline(out io.Writer, data any) error {
	fmt.Fprintln(out, "Headline averages across all PIM targets (paper §1/§12)")
	res := data.(HeadlineResult)
	fmt.Fprintf(out, "data movement share of CPU-only energy: %s (paper: 62.7%%)\n", pct(res.AvgDataMovementFraction))
	for _, m := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
		fmt.Fprintf(out, "%s: energy -%s, speedup %.2fx avg / %.2fx max\n",
			m, pct(res.AvgEnergyReduction[m]), res.AvgSpeedup[m], res.MaxSpeedup[m])
	}
	fmt.Fprintln(out, "(paper: PIM-Core -49.1% / 1.45x avg, up to 2.2x; PIM-Acc -55.4% / 1.54x avg, up to 2.5x)")
	w := tab(out)
	fmt.Fprintln(w, "Target\tWorkload\tDM frac\tPIM-Core ΔE\tPIM-Acc ΔE\tPIM-Core speedup\tPIM-Acc speedup")
	for _, r := range res.PerTarget {
		fmt.Fprintf(w, "%s\t%s\t%s\t-%s\t-%s\t%.2fx\t%.2fx\n",
			r.Target.Name, r.Target.Workload,
			pct(r.ByMode[gopim.CPUOnly].Energy.DataMovementFraction()),
			pct(r.EnergyReduction(gopim.PIMCore)), pct(r.EnergyReduction(gopim.PIMAcc)),
			r.Speedup(gopim.PIMCore), r.Speedup(gopim.PIMAcc))
	}
	return w.Flush()
}
