package experiments

import (
	"gopim"
	"gopim/internal/mem"
	"gopim/internal/par"
)

// TargetStatsRow characterizes one PIM target against the paper's §3.2
// selection criteria.
type TargetStatsRow struct {
	Name             string
	Workload         string
	LLCMPKI          float64 // criterion: > 10
	MovementFraction float64 // criterion: data movement dominates its energy
	TrafficMB        float64
	Instructions     uint64
	MemoryIntensive  bool
	MovementDominant bool
}

// TargetStats profiles every PIM target on the SoC and reports the
// §3.2 criteria values: all of the paper's targets must be memory-intensive
// (LLC MPKI > 10) and movement-dominated.
func TargetStats(o Options) []TargetStatsRow {
	ev := o.evaluator()
	targets := gopim.Targets(o.Scale)
	return par.Map(o.workers(), len(targets), func(i int) TargetStatsRow {
		t := targets[i]
		res := ev.Evaluate(t)
		cpu := res.ByMode[gopim.CPUOnly]
		row := TargetStatsRow{
			Name:             t.Name,
			Workload:         t.Workload,
			LLCMPKI:          cpu.Profile.LLCMPKI(),
			MovementFraction: cpu.Energy.DataMovementFraction(),
			TrafficMB:        float64(cpu.Profile.Mem.Total()) / 1e6,
			Instructions:     cpu.Profile.Instructions(),
		}
		row.MemoryIntensive = row.LLCMPKI > 10
		row.MovementDominant = row.MovementFraction > 0.5
		return row
	})
}

// TabLatencyRow is the modelled latency of restoring one compressed tab.
type TabLatencyRow struct {
	Mode   gopim.Mode
	Millis float64
}

// TabSwitchLatency models the user-visible cost of switching to a
// compressed tab: the decompression of its pages (the paper reports
// compression/decompression as 14.2% of tab switching time, §4.3.1). With
// PIM, the decompressed lines additionally stay in DRAM, so the CPU's
// demand misses do not pay the decompression on the critical path; here we
// report just the decompression latency per mode.
func TabSwitchLatency(o Options) []TabLatencyRow {
	ev := o.evaluator()
	var target gopim.Target
	for _, t := range gopim.Targets(o.Scale) {
		if t.Name == "Decompression" {
			target = t
			break
		}
	}
	res := ev.Evaluate(target)
	// Normalize per tab: the kernel decompresses `pages` pages; a 4 MiB tab
	// is 1024 pages.
	kernelPages := float64(res.ByMode[gopim.CPUOnly].Profile.Mem.BytesWritten) / mem.PageSize
	if kernelPages < 1 {
		kernelPages = 1
	}
	perTab := 1024.0 / kernelPages
	var rows []TabLatencyRow
	for _, m := range gopim.Modes {
		rows = append(rows, TabLatencyRow{Mode: m, Millis: res.ByMode[m].Seconds * perTab * 1e3})
	}
	return rows
}

// PlanRow is one line of the accelerator provisioning plan.
type PlanRow struct {
	Target    string
	Mode      gopim.Mode
	AreaMM2   float64
	SavingsPC float64 // savings vs CPU-only, percent of that target's energy
}

// PlanResult is the area-budgeted offload plan.
type PlanResult struct {
	Rows        []PlanRow
	AreaUsedMM2 float64
	BudgetMM2   float64
	Accelerated int
}

// Plan builds the per-vault accelerator provisioning plan (§8.1): which
// targets earn fixed-function logic within the 3.5 mm² budget, and which
// fall back to the shared PIM core.
func Plan(o Options) PlanResult {
	ev := o.evaluator()
	plan := ev.PlanOffload(gopim.Targets(o.Scale), timingBudget())
	out := PlanResult{
		AreaUsedMM2: plan.AreaUsedMM2,
		BudgetMM2:   plan.BudgetMM2,
		Accelerated: plan.Accelerated(),
	}
	for _, c := range plan.Choices {
		row := PlanRow{
			Target:  c.Target.Name,
			Mode:    c.Mode,
			AreaMM2: c.AreaMM2,
		}
		if c.BaselinePJ > 0 {
			row.SavingsPC = c.SavingsPJ / c.BaselinePJ
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func timingBudget() float64 { return 3.5 }
