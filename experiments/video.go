package experiments

import (
	"gopim"
	"gopim/internal/energy"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/video"
	"gopim/internal/vp9"
)

func videoClip(o Options) (*vp9.CodedClip, error) {
	return gopim.EvalClip(o.Scale), nil
}

// Fig10 reproduces Figure 10: the VP9 software decoder's energy by
// function.
func Fig10(o Options) ([]PhaseFraction, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	ev := o.evaluator()
	_, phases := o.run(profile.SoC(), vp9.DecodeKernel(clip))
	order := []string{vp9.PhaseSubPel, vp9.PhaseOtherMC, vp9.PhaseDeblock, vp9.PhaseEntropy, vp9.PhaseInvXfrm}
	return fractionsOf(ev, phases, order, "Other"), nil
}

// Fig11Result is Figure 11: the decoder's energy split by hardware
// component for each function, plus the total data movement share.
type Fig11Result struct {
	ByPhase              map[string]energy.Breakdown
	Total                energy.Breakdown
	DataMovementFraction float64 // paper: 63.5%
	SubPelMovementShare  float64 // sub-pel share of all data movement
}

// Fig11 reproduces Figure 11.
func Fig11(o Options) (Fig11Result, error) {
	clip, err := videoClip(o)
	if err != nil {
		return Fig11Result{}, err
	}
	ev := o.evaluator()
	_, phases := o.run(profile.SoC(), vp9.DecodeKernel(clip))
	res := Fig11Result{ByPhase: map[string]energy.Breakdown{}}
	for _, name := range sortedPhaseNames(phases) {
		b := ev.CPUPhaseEnergy(phases[name])
		res.ByPhase[name] = b
		res.Total = res.Total.Add(b)
	}
	res.DataMovementFraction = res.Total.DataMovementFraction()
	if dm := res.Total.DataMovement(); dm > 0 {
		res.SubPelMovementShare = res.ByPhase[vp9.PhaseSubPel].DataMovement() / dm
	}
	return res, nil
}

// Fig15 reproduces Figure 15: the VP9 software encoder's energy by
// function.
func Fig15(o Options) ([]PhaseFraction, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	ev := o.evaluator()
	_, phases := o.run(profile.SoC(), vp9.EncodeKernel(clip))
	order := []string{vp9.PhaseME, vp9.PhaseIntraPred, vp9.PhaseTransform, vp9.PhaseQuant, vp9.PhaseDeblock}
	return fractionsOf(ev, phases, order, "Other"), nil
}

// HWTrafficRow is one bar of Figures 12/16: per-frame off-chip traffic by
// category for one (resolution, compression) configuration.
type HWTrafficRow struct {
	Resolution string
	Compressed bool
	Items      []vp9.TrafficItem
	TotalMB    float64
}

func hwRows(workers int, p vp9.HWParams, model func(w, h int, c bool, p vp9.HWParams) []vp9.TrafficItem) []HWTrafficRow {
	configs := []struct {
		name string
		w, h int
		comp bool
	}{
		{"HD", video.HDWidth, video.HDHeight, true},
		{"HD", video.HDWidth, video.HDHeight, false},
		{"4K", video.K4Width, video.K4Height, true},
		{"4K", video.K4Width, video.K4Height, false},
	}
	return par.Map(workers, len(configs), func(i int) HWTrafficRow {
		c := configs[i]
		items := model(c.w, c.h, c.comp, p)
		return HWTrafficRow{
			Resolution: c.name, Compressed: c.comp, Items: items,
			TotalMB: vp9.TotalTraffic(items) / 1e6,
		}
	})
}

// Fig12 reproduces Figure 12: hardware decoder off-chip traffic.
func Fig12(o Options) ([]HWTrafficRow, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	return hwRows(o.workers(), vp9.MeasureHWParams(clip), vp9.HWDecodeTraffic), nil
}

// Fig16 reproduces Figure 16: hardware encoder off-chip traffic.
func Fig16(o Options) ([]HWTrafficRow, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	return hwRows(o.workers(), vp9.MeasureHWParams(clip), vp9.HWEncodeTraffic), nil
}

// Fig20Row is one bar pair of Figure 20: a software video kernel under one
// execution mode.
type Fig20Row struct {
	Kernel        string
	Mode          gopim.Mode
	NormEnergy    float64
	NormRuntime   float64
	Energy        gopim.Breakdown
	Speedup       float64
	EnergySavings float64
}

// Fig20 reproduces Figure 20: energy and runtime of sub-pixel
// interpolation, the deblocking filter, and motion estimation under
// CPU-only, PIM-core and PIM-accelerator execution.
func Fig20(o Options) ([]Fig20Row, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	_ = clip // targets share the cached evaluation clip
	ev := o.evaluator()
	var targets []gopim.Target
	for _, t := range gopim.Targets(o.Scale) {
		if t.Workload == "Video Playback" || t.Workload == "Video Capture" {
			targets = append(targets, t)
		}
	}
	perTarget := par.Map(o.workers(), len(targets), func(i int) []Fig20Row {
		t := targets[i]
		res := ev.Evaluate(t)
		base := res.ByMode[gopim.CPUOnly]
		var out []Fig20Row
		for _, mode := range gopim.Modes {
			e := res.ByMode[mode]
			out = append(out, Fig20Row{
				Kernel: t.Name, Mode: mode,
				NormEnergy:    e.Energy.Total() / base.Energy.Total(),
				NormRuntime:   e.Seconds / base.Seconds,
				Energy:        e.Energy,
				Speedup:       res.Speedup(mode),
				EnergySavings: res.EnergyReduction(mode),
			})
		}
		return out
	})
	var rows []Fig20Row
	for _, r := range perTarget {
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig21Row is one bar of Figure 21: hardware codec energy for one
// (codec, mode, compression) configuration.
type Fig21Row struct {
	Codec      string // "decoder" or "encoder"
	Mode       vp9.HWEnergyMode
	Compressed bool
	EnergyMJ   float64
	Breakdown  gopim.Breakdown
}

// Fig21 reproduces Figure 21: total energy of the hardware VP9 decoder and
// encoder under the baseline, PIM-core, and PIM-accelerator designs, with
// and without lossless frame compression, for one HD frame.
func Fig21(o Options) ([]Fig21Row, error) {
	clip, err := videoClip(o)
	if err != nil {
		return nil, err
	}
	p := vp9.MeasureHWParams(clip)
	params := energy.Default()
	const decodeOpsPerPixel = 12 // MC filters + deblock datapath
	const encodeOpsPerPixel = 30 // ME SADs dominate

	var rows []Fig21Row
	for _, comp := range []bool{false, true} {
		for _, mode := range []vp9.HWEnergyMode{vp9.HWBaseline, vp9.HWPIMCore, vp9.HWPIMAcc} {
			items := vp9.HWDecodeTraffic(video.HDWidth, video.HDHeight, comp, p)
			b := vp9.HWEnergy(items, video.HDWidth, video.HDHeight, mode, params, decodeOpsPerPixel)
			rows = append(rows, Fig21Row{Codec: "decoder", Mode: mode, Compressed: comp, EnergyMJ: b.Total() / 1e9, Breakdown: b})

			items = vp9.HWEncodeTraffic(video.HDWidth, video.HDHeight, comp, p)
			b = vp9.HWEnergy(items, video.HDWidth, video.HDHeight, mode, params, encodeOpsPerPixel)
			rows = append(rows, Fig21Row{Codec: "encoder", Mode: mode, Compressed: comp, EnergyMJ: b.Total() / 1e9, Breakdown: b})
		}
	}
	return rows, nil
}
