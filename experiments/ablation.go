package experiments

import (
	"gopim"
	"gopim/internal/core"
	"gopim/internal/energy"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/timing"
)

// Ablation studies for the design choices DESIGN.md calls out. Each sweep
// profiles a representative PIM target once and re-evaluates the analytic
// models across one design axis, isolating that axis's contribution.

// ablationProfiles profiles the texture tiling target (the paper's first
// and most-discussed PIM target) once per hardware flavor.
func ablationProfiles(o Options) (cpu, pim profile.Profile, t gopim.Target) {
	for _, cand := range gopim.Targets(o.Scale) {
		if cand.Name == "Texture Tiling" {
			t = cand
			break
		}
	}
	// The two hardware flavors profile independently.
	hws := []profile.Hardware{profile.SoC(), profile.PIMCore()}
	sel := par.Map(o.workers(), len(hws), func(i int) profile.Profile {
		_, phases := o.run(hws[i], t.Kernel)
		var s profile.Profile
		for _, name := range t.Phases {
			s = s.Add(phases[name])
		}
		return s
	})
	return sel[0], sel[1], t
}

// VaultRow is one point of the vault-count sweep.
type VaultRow struct {
	Vaults  int
	Speedup float64 // vs CPU-only
}

// AblationVaults sweeps how many vault PIM cores the target's data
// parallelism uses. Scaling is near-linear while each added core brings
// both compute and memory-level parallelism; it flattens once the cores
// collectively saturate the logic layer's 256 GB/s (the 32/64 points model
// a hypothetical second cube to expose the ceiling).
func AblationVaults(o Options) []VaultRow {
	cpuProf, pimProf, _ := ablationProfiles(o)
	cpuSec := timing.SoC().Seconds(cpuProf)
	vaults := []int{1, 2, 4, 8, 16, 32, 64}
	return par.Map(o.workers(), len(vaults), func(i int) VaultRow {
		sec := timing.PIMCore(vaults[i]).Seconds(pimProf)
		return VaultRow{Vaults: vaults[i], Speedup: cpuSec / sec}
	})
}

// BandwidthRow is one point of the internal-bandwidth sweep.
type BandwidthRow struct {
	GBs     float64 // logic-layer bandwidth
	Speedup float64
}

// AblationBandwidth sweeps the 3D stack's logic-layer bandwidth, holding
// everything else at Table 1 values. The paper's 256 GB/s sits on the flat
// part of the curve for most targets — latency and compute, not raw
// bandwidth, bound them.
func AblationBandwidth(o Options) []BandwidthRow {
	cpuProf, pimProf, _ := ablationProfiles(o)
	cpuSec := timing.SoC().Seconds(cpuProf)
	gbsPoints := []float64{32, 64, 128, 256, 512}
	return par.Map(o.workers(), len(gbsPoints), func(i int) BandwidthRow {
		e := timing.PIMCore(4)
		e.Bandwidth = gbsPoints[i] * 1e9
		return BandwidthRow{GBs: gbsPoints[i], Speedup: cpuSec / e.Seconds(pimProf)}
	})
}

// CoherenceRow is one point of the coherence-cost sweep.
type CoherenceRow struct {
	SharedFraction float64
	EnergyOverhead float64 // coherence energy / kernel PIM energy
}

// AblationCoherence sweeps the fraction of a kernel's lines that are
// CPU-shared and need directory messages (§8.2): the paper's fine-grained
// scheme assumes this is small; the sweep shows when it would stop being
// negligible.
func AblationCoherence(o Options) []CoherenceRow {
	_, pimProf, _ := ablationProfiles(o)
	ev := core.NewEvaluator()
	fracs := []float64{0, 0.01, 0.05, 0.1, 0.25, 0.5}
	return par.Map(o.workers(), len(fracs), func(i int) CoherenceRow {
		m := core.DefaultCoherence()
		m.SharedFraction = fracs[i]
		coh := m.Overhead(pimProf)
		sec := timing.PIMCore(4).Seconds(pimProf) + coh.Latency
		base := ev.PIMCoreEnergy(pimProf, sec, core.Coherence{}).Total()
		withCoh := ev.PIMCoreEnergy(pimProf, sec, coh).Total()
		return CoherenceRow{SharedFraction: fracs[i], EnergyOverhead: withCoh/base - 1}
	})
}

// EfficiencyRow is one point of the accelerator-efficiency sweep.
type EfficiencyRow struct {
	EfficiencyX     float64 // accelerator ops-per-joule advantage over the CPU
	EnergyReduction float64 // vs CPU-only
}

// AblationAccEfficiency sweeps the fixed-function accelerator's efficiency
// assumption (the paper conservatively uses 20x over the CPU, §3.1). For
// these data-intensive targets the answer saturates quickly: once compute
// energy is small, only data movement remains, which is the paper's point.
func AblationAccEfficiency(o Options) []EfficiencyRow {
	cpuProf, pimProf, t := ablationProfiles(o)
	ev := core.NewEvaluator()
	cpuSec := timing.SoC().Seconds(cpuProf)
	base := ev.CPUEnergy(cpuProf, cpuSec).Total()
	accSec := timing.PIMAcc(4).Seconds(pimProf)
	_ = t
	xs := []float64{5, 10, 20, 40, 80}
	return par.Map(o.workers(), len(xs), func(i int) EfficiencyRow {
		params := energy.Default()
		params.PIMAccOp = params.CPUInstr / xs[i]
		ev2 := &core.Evaluator{Params: params, Coherence: core.DefaultCoherence()}
		total := ev2.PIMAccEnergy(pimProf, accSec, core.Coherence{}).Total()
		return EfficiencyRow{EfficiencyX: xs[i], EnergyReduction: 1 - total/base}
	})
}

// BatteryRow is one line of the battery-life projection.
type BatteryRow struct {
	Scenario      string
	Share         float64 // workload share of device power
	Reduction     float64 // PIM-Acc energy reduction for that workload
	LifeExtension float64 // battery-life multiplier
}

// BatteryLife converts the headline PIM-Acc energy reductions into
// battery-life extensions for usage scenarios dominated by each workload
// (the paper's §1 motivation). Share is the fraction of whole-device power
// attributable to the modelled SoC+memory activity in that scenario.
func BatteryLife(o Options) []BatteryRow {
	head := Headline(o)
	perWorkload := map[string][]float64{}
	for _, r := range head.PerTarget {
		perWorkload[r.Target.Workload] = append(perWorkload[r.Target.Workload], r.EnergyReduction(gopim.PIMAcc))
	}
	scenario := func(name, workload string, share float64) BatteryRow {
		var sum float64
		rs := perWorkload[workload]
		for _, v := range rs {
			sum += v
		}
		red := 0.0
		if len(rs) > 0 {
			red = sum / float64(len(rs))
		}
		return BatteryRow{
			Scenario: name, Share: share, Reduction: red,
			LifeExtension: energy.LifeExtension(share, red),
		}
	}
	return []BatteryRow{
		scenario("web browsing", "Chrome", 0.5),
		scenario("on-device inference", "TensorFlow", 0.6),
		scenario("video playback", "Video Playback", 0.4),
		scenario("video capture", "Video Capture", 0.5),
	}
}
