package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gopim"
	"gopim/internal/trace"
)

// corruptStore flips one payload byte in every entry of a trace store, so
// every load must fail its integrity check.
func corruptStore(t *testing.T, dir string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "v*", "*", "*.trace"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no store entries under %s (err %v)", dir, err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x5a
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunAllTraceStoreMatches is the end-to-end persistence gate: the full
// experiment sweep must render byte-identical reports whether traces are
// recorded fresh (packing the store as a side effect), loaded cold from
// the packed store with zero kernel executions, or requested from a store
// whose every entry has been corrupted (graceful miss, re-record).
func TestRunAllTraceStoreMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("three full experiment sweeps; skipped with -short")
	}
	dir := t.TempDir()

	// Sweep 1 packs the store while producing the reference output.
	st1, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := trace.NewCache()
	c1.Store = st1
	packed := RunAllSerial(Options{Scale: gopim.Quick, Traces: c1})
	st1.Wait()
	if s := c1.Stats(); s.Records == 0 || s.StoreHits != 0 {
		t.Fatalf("packing sweep stats = %+v, want fresh recordings only", s)
	}
	if s := st1.Stats(); s.Saves == 0 || s.SaveErrors != 0 {
		t.Fatalf("packing sweep store stats = %+v, want clean write-through", s)
	}

	// Sweep 2 is the cold-start: a fresh cache over the packed store must
	// execute no kernels at all.
	st2, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := trace.NewCache()
	c2.Store = st2
	cold := RunAllSerial(Options{Scale: gopim.Quick, Traces: c2})
	if s := c2.Stats(); s.Records != 0 || s.StoreHits == 0 {
		t.Fatalf("cold sweep stats = %+v, want store hits and zero recordings", s)
	}

	// Sweep 3 runs against a fully corrupted store: every entry must read
	// as a miss and re-record, with output unchanged.
	corruptStore(t, dir)
	st3, err := trace.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c3 := trace.NewCache()
	c3.Store = st3
	corrupted := RunAllSerial(Options{Scale: gopim.Quick, Traces: c3})
	st3.Wait()
	if s := c3.Stats(); s.Records == 0 || s.StoreHits != 0 {
		t.Fatalf("corrupted sweep stats = %+v, want graceful fallback to recording", s)
	}

	rp, rc, rx := renderResults(t, packed), renderResults(t, cold), renderResults(t, corrupted)
	for name, text := range rp {
		if !bytes.Equal(text, rc[name]) {
			t.Errorf("%s: rendered output differs between packing and cold-store sweeps", name)
		}
		if !bytes.Equal(text, rx[name]) {
			t.Errorf("%s: rendered output differs between packing and corrupted-store sweeps", name)
		}
	}
}
