package experiments

import (
	"testing"

	"gopim/internal/browser"
	"gopim/internal/profile"
)

func TestLoadKernelPhases(t *testing.T) {
	_, phases := profile.Run(profile.SoC(), browser.LoadKernel(browser.GoogleDocs()))
	for _, want := range browser.LoadPhases {
		if _, ok := phases[want]; !ok {
			t.Errorf("missing load phase %q", want)
		}
	}
	if phases[browser.PhaseBlitting].Mem.Total() == 0 {
		t.Error("first-viewport rasterization moved no data")
	}
	if phases[browser.PhaseParse].Ops == 0 {
		t.Error("parsing did no work")
	}
}

func TestPageLoadGPURasterHurtsTextPages(t *testing.T) {
	rows := PageLoad(quick)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]PageLoadRow{}
	for _, r := range rows {
		byName[r.Page] = r
		t.Logf("%-16s CPU %.2f ms, GPU %.2f ms (%.2fx)", r.Page, r.CPUMillis, r.GPUMillis, r.GPUSlowdown)
		if r.CPUMillis <= 0 || r.GPUMillis <= 0 {
			t.Errorf("%s: non-positive load time", r.Page)
		}
	}
	// Paper §4.2.2: GPU rasterization slows text-heavy pages (up to 24.9%),
	// which is why Chrome ships CPU rasterization by default.
	docs := byName["Google Docs"]
	if docs.GPUSlowdown <= 1.0 {
		t.Errorf("Google Docs (75%% text): GPU raster %.2fx; should be slower than CPU raster", docs.GPUSlowdown)
	}
	if docs.GPUSlowdown > 1.6 {
		t.Errorf("Google Docs GPU slowdown %.2fx implausibly large (paper: up to 1.25x)", docs.GPUSlowdown)
	}
	// The animation page (15% text, big fills) should suffer less than the
	// text-heavy Docs page — or even benefit.
	anim := byName["Animation"]
	if anim.GPUSlowdown >= docs.GPUSlowdown {
		t.Errorf("animation page GPU slowdown (%.2fx) should be below Docs' (%.2fx)",
			anim.GPUSlowdown, docs.GPUSlowdown)
	}
}

func TestPageLoadFractionsSum(t *testing.T) {
	for _, r := range PageLoad(quick) {
		var sum float64
		for _, f := range r.Phases {
			sum += f.Fraction
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: load phase fractions sum to %.3f", r.Page, sum)
		}
	}
}
