package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"gopim"
	"gopim/internal/trace"
)

// renderResults renders every experiment's payload and returns the bytes
// keyed by name, failing on runner errors.
func renderResults(t *testing.T, results []RunResult) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		var buf bytes.Buffer
		if err := Render(&buf, r.Name, r.Data); err != nil {
			t.Fatalf("render %s: %v", r.Name, err)
		}
		out[r.Name] = buf.Bytes()
	}
	return out
}

// TestRunAllDeterministic is the concurrency regression gate: the parallel
// engine must produce results bit-identical to itself across runs and to
// the serial reference path, for every experiment. Each run gets its own
// fresh trace cache — the production `run all` shape, where workers race
// on single-flight recording and concurrent replays — which keeps the
// three full sweeps inside the per-package test timeout on one core;
// cached-vs-direct equivalence is TestRunAllTraceCacheMatchesDirect's job.
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full experiment sweeps; skipped with -short")
	}
	par1 := RunAll(Options{Scale: gopim.Quick, Workers: 8, Traces: trace.NewCache()})
	par2 := RunAll(Options{Scale: gopim.Quick, Workers: 8, Traces: trace.NewCache()})
	serial := RunAllSerial(Options{Scale: gopim.Quick, Traces: trace.NewCache()})

	if len(par1) != len(par2) || len(par1) != len(serial) {
		t.Fatalf("result counts differ: %d / %d / %d", len(par1), len(par2), len(serial))
	}
	for i := range par1 {
		if par1[i].Name != par2[i].Name || par1[i].Name != serial[i].Name {
			t.Fatalf("result %d order differs: %q / %q / %q", i, par1[i].Name, par2[i].Name, serial[i].Name)
		}
	}

	// Payload-level comparison. HeadlineResult embeds kernel closures in
	// PerTarget (funcs never DeepEqual); its numbers are covered by the
	// rendered-bytes comparison below plus its aggregate maps here.
	for i := range par1 {
		name := par1[i].Name
		a, b, s := par1[i].Data, par2[i].Data, serial[i].Data
		if name == "headline" {
			ha, hb, hs := a.(HeadlineResult), b.(HeadlineResult), s.(HeadlineResult)
			for _, pair := range [][2]HeadlineResult{{ha, hb}, {ha, hs}} {
				x, y := pair[0], pair[1]
				if !reflect.DeepEqual(x.AvgEnergyReduction, y.AvgEnergyReduction) ||
					!reflect.DeepEqual(x.AvgSpeedup, y.AvgSpeedup) ||
					!reflect.DeepEqual(x.MaxSpeedup, y.MaxSpeedup) ||
					x.AvgDataMovementFraction != y.AvgDataMovementFraction {
					t.Errorf("headline aggregates diverge between runs")
				}
			}
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two parallel runs diverge", name)
		}
		if !reflect.DeepEqual(a, s) {
			t.Errorf("%s: parallel run diverges from serial reference", name)
		}
	}

	// Byte-level comparison of the rendered reports (covers headline's
	// PerTarget too).
	ra, rb, rs := renderResults(t, par1), renderResults(t, par2), renderResults(t, serial)
	for name, text := range ra {
		if !bytes.Equal(text, rb[name]) {
			t.Errorf("%s: rendered output differs between parallel runs", name)
		}
		if !bytes.Equal(text, rs[name]) {
			t.Errorf("%s: rendered output differs from serial reference:\nparallel:\n%s\nserial:\n%s",
				name, text, rs[name])
		}
	}
}

// TestRunNamedUnknown checks the fast failure path.
func TestRunNamedUnknown(t *testing.T) {
	if _, err := RunNamed(Options{Scale: gopim.Quick}, []string{"fig999"}); err == nil {
		t.Fatal("RunNamed accepted an unknown experiment name")
	}
}

// TestNamesMatchRegistry pins the registry/name invariants the CLI relies
// on: sorted, unique, and every name resolvable.
func TestNamesMatchRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d names for %d runners", len(names), len(registry))
	}
	seen := map[string]bool{}
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Errorf("names not sorted/unique at %q", n)
		}
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		r, ok := RunnerFor(n)
		if !ok || r.Compute == nil || r.Render == nil {
			t.Errorf("runner %q incomplete", n)
		}
	}
}
