package experiments

import (
	"testing"

	"gopim"
	"gopim/internal/vp9"
)

var quick = Options{Scale: gopim.Quick}

func TestFig1Shape(t *testing.T) {
	rows := Fig1(quick)
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 6 pages + AVG", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Page != "AVG" {
		t.Fatal("last row must be the average")
	}
	t.Logf("Fig1 AVG: tiling %.1f%% + blitting %.1f%% = %.1f%% (paper: 41.9%%)",
		avg.TextureTiling*100, avg.ColorBlitting*100, (avg.TextureTiling+avg.ColorBlitting)*100)
	// Paper: tiling+blitting are a significant share (41.9%) of scroll
	// energy on average.
	if combined := avg.TextureTiling + avg.ColorBlitting; combined < 0.25 || combined > 0.68 {
		t.Errorf("tiling+blitting = %.1f%% of scroll energy, want 25-68%% (paper: 41.9%%)", combined*100)
	}
	for _, r := range rows {
		if s := r.TextureTiling + r.ColorBlitting + r.Other; s < 0.99 || s > 1.01 {
			t.Errorf("%s: fractions sum to %.3f", r.Page, s)
		}
	}
	// The animation page should blit more than the text pages.
	byName := map[string]Fig1Row{}
	for _, r := range rows {
		byName[r.Page] = r
	}
	// The animation page repaints continuously: its combined raster share
	// (tiling+blitting) must exceed the text-heavy Docs page's.
	animShare := byName["Animation"].TextureTiling + byName["Animation"].ColorBlitting
	docsShare := byName["Google Docs"].TextureTiling + byName["Google Docs"].ColorBlitting
	if animShare <= docsShare {
		t.Errorf("animation raster share %.1f%% <= docs %.1f%%", animShare*100, docsShare*100)
	}
}

func TestFig2Shape(t *testing.T) {
	res := Fig2(quick)
	t.Logf("Fig2: data movement %.1f%% (paper 77%%); tiling+blitting movement %.1f%% (paper 37.7%%); MPKI %.1f (paper 21.4)",
		res.DataMovementFraction*100, res.TilingBlittingMovementFraction*100, res.LLCMPKI)
	if res.DataMovementFraction < 0.55 || res.DataMovementFraction > 0.9 {
		t.Errorf("data movement fraction %.1f%%, want 55-90%% (paper: 77%%)", res.DataMovementFraction*100)
	}
	if res.TilingBlittingMovementFraction < 0.2 || res.TilingBlittingMovementFraction > 0.6 {
		t.Errorf("tiling+blitting movement %.1f%% of total, want 20-60%% (paper: 37.7%%)", res.TilingBlittingMovementFraction*100)
	}
	if res.LLCMPKI < 5 {
		t.Errorf("scrolling MPKI %.1f too low (paper: 21.4)", res.LLCMPKI)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig4: out %.2f GB in %.2f GB, peaks %.0f/%.0f MB/s, ratio %.2f",
		res.TotalOutGB, res.TotalInGB, res.PeakOutMBs, res.PeakInMBs, res.CompressRatio)
	if res.TotalOut == 0 || res.TotalIn == 0 {
		t.Fatal("no swap traffic")
	}
	if res.PeakOutMBs <= 0 || res.PeakInMBs <= 0 {
		t.Error("no peak rates recorded")
	}
}

func TestFig6And7Shape(t *testing.T) {
	for name, rows := range map[string][]TFRow{"Fig6": Fig6(quick), "Fig7": Fig7(quick)} {
		if len(rows) != 5 {
			t.Fatalf("%s: %d rows, want 4 networks + AVG", name, len(rows))
		}
		avg := rows[len(rows)-1]
		t.Logf("%s AVG: packing %.1f%% quant %.1f%% gemm %.1f%% other %.1f%%",
			name, avg.Packing*100, avg.Quantization*100, avg.GEMM*100, avg.Other*100)
		// Paper Fig 6: packing+quantization ~39.3% of energy on average;
		// Fig 7: ~27.4% of time. Both must be a substantial minority.
		overhead := avg.Packing + avg.Quantization
		if overhead < 0.15 || overhead > 0.6 {
			t.Errorf("%s: packing+quantization = %.1f%%, want 15-60%%", name, overhead*100)
		}
		if avg.GEMM < 0.3 {
			t.Errorf("%s: GEMM share %.1f%% too small", name, avg.GEMM*100)
		}
		for _, r := range rows {
			if s := r.Packing + r.Quantization + r.GEMM + r.Other; s < 0.99 || s > 1.01 {
				t.Errorf("%s %s: fractions sum to %.3f", name, r.Network, s)
			}
		}
	}
}

func TestFig6ResNetQuantExceedsVGG(t *testing.T) {
	rows := Fig6(quick)
	byName := map[string]TFRow{}
	for _, r := range rows {
		byName[r.Network] = r
	}
	// Paper §5.3: ResNet's 156 Conv2D ops make quantization a bigger share
	// than VGG's 19.
	if byName["ResNet-V2-152"].Quantization <= byName["VGG-19"].Quantization {
		t.Errorf("ResNet quantization share (%.1f%%) should exceed VGG's (%.1f%%)",
			byName["ResNet-V2-152"].Quantization*100, byName["VGG-19"].Quantization*100)
	}
}

func TestFig10Shape(t *testing.T) {
	fr, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, f := range fr {
		by[f.Name] = f.Fraction
		t.Logf("Fig10 %-28s %.1f%%", f.Name, f.Fraction*100)
	}
	// Paper: sub-pel 37.5%, deblocking 29.7%; both dominate entropy and
	// inverse transform.
	if by[vp9.PhaseSubPel] < by[vp9.PhaseEntropy] || by[vp9.PhaseSubPel] < by[vp9.PhaseInvXfrm] {
		t.Error("sub-pel interpolation should dominate entropy/inverse-transform energy")
	}
	if by[vp9.PhaseDeblock] < by[vp9.PhaseInvXfrm] {
		t.Error("deblocking should exceed inverse transform energy")
	}
	if by[vp9.PhaseSubPel] < 0.2 || by[vp9.PhaseSubPel] > 0.6 {
		t.Errorf("sub-pel fraction %.1f%%, want 20-60%% (paper: 37.5%%)", by[vp9.PhaseSubPel]*100)
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig11: data movement %.1f%% (paper 63.5%%), sub-pel share of movement %.1f%% (paper 42.6%% of total)",
		res.DataMovementFraction*100, res.SubPelMovementShare*100)
	// The paper's 63.5%% is measured decoding 4K, where nothing fits the
	// LLC; the Quick clip is 720p-class, where the LLC legitimately absorbs
	// part of the reconstruction traffic, so the floor is lower here (the
	// Standard-scale benches report the larger-frame value).
	if res.DataMovementFraction < 0.25 || res.DataMovementFraction > 0.85 {
		t.Errorf("decoder data movement %.1f%%, want 25-85%% (paper at 4K: 63.5%%)", res.DataMovementFraction*100)
	}
	if res.SubPelMovementShare < 0.2 {
		t.Errorf("sub-pel movement share %.1f%% too small", res.SubPelMovementShare*100)
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (HD/4K x compression)", len(rows))
	}
	find := func(res string, comp bool) HWTrafficRow {
		for _, r := range rows {
			if r.Resolution == res && r.Compressed == comp {
				return r
			}
		}
		t.Fatalf("missing row %s comp=%v", res, comp)
		return HWTrafficRow{}
	}
	hdN, hdC := find("HD", false), find("HD", true)
	k4N := find("4K", false)
	t.Logf("Fig12: HD %.1f MB (comp %.1f), 4K %.1f MB; 4K/HD = %.1f (paper 4.6)",
		hdN.TotalMB, hdC.TotalMB, k4N.TotalMB, k4N.TotalMB/hdN.TotalMB)
	if hdC.TotalMB >= hdN.TotalMB {
		t.Error("compression did not reduce HD traffic")
	}
	if r := k4N.TotalMB / hdN.TotalMB; r < 3.5 || r > 6.5 {
		t.Errorf("4K/HD traffic ratio %.1f, want ~4.6", r)
	}
	// Reference frame dominates.
	if hdN.Items[0].Name != vp9.CatReferenceFrame || hdN.Items[0].Bytes < 0.4*hdN.TotalMB*1e6 {
		t.Error("reference frame traffic should dominate HD decode")
	}
}

func TestFig15Shape(t *testing.T) {
	fr, err := Fig15(quick)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, f := range fr {
		by[f.Name] = f.Fraction
		t.Logf("Fig15 %-20s %.1f%%", f.Name, f.Fraction*100)
	}
	// Paper: ME is the single largest consumer (39.6%).
	me := by[vp9.PhaseME]
	for name, f := range by {
		if name != vp9.PhaseME && f > me {
			t.Errorf("%s (%.1f%%) exceeds motion estimation (%.1f%%)", name, f*100, me*100)
		}
	}
	if me < 0.25 || me > 0.6 {
		t.Errorf("ME fraction %.1f%%, want 25-60%% (paper: 39.6%%)", me*100)
	}
}

func TestFig16Shape(t *testing.T) {
	rows, err := Fig16(quick)
	if err != nil {
		t.Fatal(err)
	}
	var hd HWTrafficRow
	for _, r := range rows {
		if r.Resolution == "HD" && !r.Compressed {
			hd = r
		}
	}
	var ref, total float64
	for _, it := range hd.Items {
		total += it.Bytes
		if it.Name == vp9.CatReferenceFrame {
			ref = it.Bytes
		}
	}
	t.Logf("Fig16: HD reference share %.1f%% (paper 65.1%%), total %.1f MB", ref/total*100, total/1e6)
	if frac := ref / total; frac < 0.4 || frac > 0.85 {
		t.Errorf("encoder reference share %.1f%%, want 40-85%% (paper: 65.1%%)", frac*100)
	}
}

func TestFig18Shape(t *testing.T) {
	rows := Fig18(quick)
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 4 kernels x 3 modes", len(rows))
	}
	var coreE, accE, coreS, accS float64
	n := 0.0
	for _, r := range rows {
		if r.Mode == gopim.CPUOnly {
			if r.NormEnergy != 1 || r.NormRuntime != 1 {
				t.Errorf("%s CPU-only not normalized to 1", r.Kernel)
			}
			continue
		}
		if r.Mode == gopim.PIMCore {
			coreE += r.EnergySavings
			coreS += r.Speedup
			n++
		} else {
			accE += r.EnergySavings
			accS += r.Speedup
		}
	}
	coreE, accE, coreS, accS = coreE/n, accE/n, coreS/n, accS/n
	t.Logf("Fig18 avg: PIM-Core -%.1f%% energy %.2fx; PIM-Acc -%.1f%% energy %.2fx (paper: 51.3%%/1.6x, 61.0%%/2.0x)",
		coreE*100, coreS, accE*100, accS)
	if coreE < 0.3 || coreE > 0.75 {
		t.Errorf("PIM-Core browser energy savings %.1f%%, want 30-75%% (paper: 51.3%%)", coreE*100)
	}
	if accE <= coreE {
		t.Error("PIM-Acc savings must exceed PIM-Core")
	}
	if coreS < 1.1 || accS < coreS {
		t.Errorf("speedups: core %.2fx acc %.2fx; want core > 1.1 and acc >= core", coreS, accS)
	}
}

func TestFig19Shape(t *testing.T) {
	energies, speedups := Fig19(quick)
	if len(energies) != 6 {
		t.Fatalf("got %d energy rows, want 2 kernels x 3 modes", len(energies))
	}
	for _, e := range energies {
		if e.Mode != gopim.CPUOnly && e.Normalized >= 1 {
			t.Errorf("%s %s: normalized energy %.2f >= 1", e.Kernel, e.Mode, e.Normalized)
		}
	}
	// Paper: speedup grows with the number of GEMM operations.
	get := func(ops int, m gopim.Mode) float64 {
		for _, s := range speedups {
			if s.GEMMOps == ops && s.Mode == m {
				return s.Speedup
			}
		}
		t.Fatalf("missing speedup %d/%v", ops, m)
		return 0
	}
	for _, m := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
		s1, s16 := get(1, m), get(16, m)
		t.Logf("Fig19 %s: 1 GEMM %.2fx, 16 GEMMs %.2fx (paper: 1.13x->1.57x core, 1.17x->1.98x acc)", m, s1, s16)
		// A single GEMM pays the un-overlapped pipeline prologue, so it may
		// hover near break-even; steady state must clearly win.
		if s1 < 0.9 {
			t.Errorf("%s: 1-GEMM speedup %.2f < 0.9", m, s1)
		}
		if s16 <= s1 {
			t.Errorf("%s: speedup should grow with GEMM count (%.2f -> %.2f)", m, s1, s16)
		}
		if s16 < 1.2 {
			t.Errorf("%s: 16-GEMM speedup %.2f < 1.2 (paper: 1.57x/1.98x)", m, s16)
		}
	}
	if get(16, gopim.PIMAcc) < get(16, gopim.PIMCore) {
		t.Error("PIM-Acc should not be slower than PIM-Core at 16 GEMMs")
	}
}

func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full energy sweep (~17s, minutes under -race); skipped with -short")
	}
	rows, err := Fig20(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 3 kernels x 3 modes", len(rows))
	}
	by := map[string]map[gopim.Mode]Fig20Row{}
	for _, r := range rows {
		if by[r.Kernel] == nil {
			by[r.Kernel] = map[gopim.Mode]Fig20Row{}
		}
		by[r.Kernel][r.Mode] = r
		if r.Mode != gopim.CPUOnly {
			t.Logf("Fig20 %-24s %s: -%.1f%% energy, %.2fx", r.Kernel, r.Mode, r.EnergySavings*100, r.Speedup)
		}
	}
	// Paper: ME gains little from PIM-Core (1.13x) but a lot from PIM-Acc
	// (2.1x), because it is the most compute-intensive target.
	me := by["Motion Estimation"]
	if me[gopim.PIMAcc].Speedup <= me[gopim.PIMCore].Speedup {
		t.Error("ME: PIM-Acc should clearly beat PIM-Core")
	}
	// All video kernels must save energy in both PIM modes (paper: 46.8%
	// core, 66.6% acc on average).
	for k, modes := range by {
		for _, m := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
			if modes[m].EnergySavings <= 0 {
				t.Errorf("%s %s: no energy savings", k, m)
			}
		}
		if modes[gopim.PIMAcc].EnergySavings <= modes[gopim.PIMCore].EnergySavings {
			t.Errorf("%s: PIM-Acc savings should exceed PIM-Core", k)
		}
	}
}

func TestFig21Shape(t *testing.T) {
	rows, err := Fig21(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 2 codecs x 3 modes x 2 compression", len(rows))
	}
	get := func(codec string, m vp9.HWEnergyMode, comp bool) float64 {
		for _, r := range rows {
			if r.Codec == codec && r.Mode == m && r.Compressed == comp {
				return r.EnergyMJ
			}
		}
		t.Fatalf("missing row %s/%v/%v", codec, m, comp)
		return 0
	}
	for _, codec := range []string{"decoder", "encoder"} {
		base := get(codec, vp9.HWBaseline, true)
		core := get(codec, vp9.HWPIMCore, true)
		acc := get(codec, vp9.HWPIMAcc, true)
		t.Logf("Fig21 %s (comp): VP9 %.3f mJ, PIM-Core %.3f, PIM-Acc %.3f", codec, base, core, acc)
		// Paper: PIM-Acc cuts decoder energy 75.1%, encoder 69.8%; PIM-Core
		// with compression costs *more* than the VP9 baseline (+63.4% dec).
		if acc >= base {
			t.Errorf("%s: PIM-Acc (%.3f) not below baseline (%.3f)", codec, acc, base)
		}
		if core <= acc {
			t.Errorf("%s: PIM-Core (%.3f) should exceed PIM-Acc (%.3f)", codec, core, acc)
		}
		// PIM-Acc without compression beats baseline with compression.
		if accNo := get(codec, vp9.HWPIMAcc, false); accNo >= base {
			t.Errorf("%s: PIM-Acc w/o compression (%.3f) should beat baseline w/ compression (%.3f)", codec, accNo, base)
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full headline sweep (~17s, minutes under -race); skipped with -short")
	}
	res := Headline(quick)
	t.Logf("Headline: DM %.1f%% (paper 62.7%%); PIM-Core -%.1f%% / %.2fx (paper 49.1%%/1.45x); PIM-Acc -%.1f%% / %.2fx (paper 55.4%%/1.54x); max %.2fx/%.2fx (paper 2.2x/2.5x)",
		res.AvgDataMovementFraction*100,
		res.AvgEnergyReduction[gopim.PIMCore]*100, res.AvgSpeedup[gopim.PIMCore],
		res.AvgEnergyReduction[gopim.PIMAcc]*100, res.AvgSpeedup[gopim.PIMAcc],
		res.MaxSpeedup[gopim.PIMCore], res.MaxSpeedup[gopim.PIMAcc])
	if res.AvgDataMovementFraction < 0.45 || res.AvgDataMovementFraction > 0.9 {
		t.Errorf("avg data movement %.1f%%, want 45-90%% (paper: 62.7%%)", res.AvgDataMovementFraction*100)
	}
	if r := res.AvgEnergyReduction[gopim.PIMCore]; r < 0.3 || r > 0.75 {
		t.Errorf("PIM-Core avg energy reduction %.1f%%, want 30-75%% (paper: 49.1%%)", r*100)
	}
	if res.AvgEnergyReduction[gopim.PIMAcc] <= res.AvgEnergyReduction[gopim.PIMCore] {
		t.Error("PIM-Acc must save more energy than PIM-Core on average")
	}
	if res.AvgSpeedup[gopim.PIMCore] < 1.1 {
		t.Errorf("PIM-Core avg speedup %.2fx < 1.1x (paper: +44.6%%)", res.AvgSpeedup[gopim.PIMCore])
	}
	if res.MaxSpeedup[gopim.PIMAcc] < 1.8 {
		t.Errorf("PIM-Acc max speedup %.2fx < 1.8x (paper: up to 2.5x)", res.MaxSpeedup[gopim.PIMAcc])
	}
}

func TestAreasAllFeasible(t *testing.T) {
	rows := Areas()
	if len(rows) < 7 {
		t.Fatalf("only %d area rows", len(rows))
	}
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("%s (%.2f mm²) does not fit the vault budget", r.Logic, r.AreaMM2)
		}
		if r.Logic == "PIM Core (Cortex-R8-class)" && r.BudgetFraction > 0.10 {
			t.Errorf("PIM core uses %.1f%% of the vault budget, paper says <= 9.4%%", r.BudgetFraction*100)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) < 4 {
		t.Fatal("Table 1 incomplete")
	}
	for _, r := range rows {
		if r.Component == "" || r.Value == "" {
			t.Error("empty Table 1 row")
		}
	}
}
