package experiments

import (
	"gopim"
	"gopim/internal/browser"
	"gopim/internal/energy"
	"gopim/internal/par"
	"gopim/internal/profile"
)

// Fig1Row is one page's scrolling energy breakdown (paper Figure 1).
type Fig1Row struct {
	Page          string
	TextureTiling float64
	ColorBlitting float64
	Other         float64
}

// Fig1 reproduces Figure 1: the fraction of total scrolling energy spent
// on texture tiling, color blitting, and everything else, for the six test
// pages plus the average.
func Fig1(o Options) []Fig1Row {
	frames := 4
	if o.Scale == gopim.Standard {
		frames = 12
	}
	ev := o.evaluator()
	pages := browser.ScrollPages()
	// Each page's kernel owns its address space and hierarchy, so pages
	// profile concurrently; the average is reduced serially in page order.
	rows := par.Map(o.workers(), len(pages), func(i int) Fig1Row {
		_, phases := o.run(profile.SoC(), browser.ScrollKernel(pages[i], frames))
		fr := fractionsOf(ev, phases, []string{browser.PhaseTiling, browser.PhaseBlitting}, "Other")
		return Fig1Row{Page: pages[i].Name, TextureTiling: fr[0].Fraction, ColorBlitting: fr[1].Fraction, Other: fr[2].Fraction}
	})
	var avg Fig1Row
	for _, row := range rows {
		avg.TextureTiling += row.TextureTiling / float64(len(pages))
		avg.ColorBlitting += row.ColorBlitting / float64(len(pages))
		avg.Other += row.Other / float64(len(pages))
	}
	avg.Page = "AVG"
	return append(rows, avg)
}

// Fig2Result is the Google Docs scrolling breakdown (paper Figure 2): per
// hardware component, split by function, plus the data movement summary.
type Fig2Result struct {
	// ByPhase maps function -> component breakdown.
	ByPhase map[string]energy.Breakdown
	// Total is the sum over functions.
	Total energy.Breakdown
	// DataMovementFraction is the share of total energy spent moving data
	// (paper: 77% for Google Docs).
	DataMovementFraction float64
	// TilingBlittingMovementFraction is the share of total system energy
	// that is data movement caused by texture tiling + color blitting
	// (paper: 37.7%).
	TilingBlittingMovementFraction float64
	// LLCMPKI is the whole-workload miss rate (paper: 21.4 average).
	LLCMPKI float64
}

// Fig2 reproduces Figure 2 for the Google Docs page.
func Fig2(o Options) Fig2Result {
	frames := 4
	if o.Scale == gopim.Standard {
		frames = 12
	}
	ev := o.evaluator()
	total, phases := o.run(profile.SoC(), browser.ScrollKernel(browser.GoogleDocs(), frames))

	res := Fig2Result{ByPhase: map[string]energy.Breakdown{}}
	for _, name := range sortedPhaseNames(phases) {
		b := ev.CPUPhaseEnergy(phases[name])
		res.ByPhase[name] = b
		res.Total = res.Total.Add(b)
	}
	res.DataMovementFraction = res.Total.DataMovementFraction()
	moving := res.ByPhase[browser.PhaseTiling].DataMovement() + res.ByPhase[browser.PhaseBlitting].DataMovement()
	if t := res.Total.Total(); t > 0 {
		res.TilingBlittingMovementFraction = moving / t
	}
	res.LLCMPKI = total.LLCMPKI()
	return res
}

// Fig4Result is the ZRAM swap timeline (paper Figure 4).
type Fig4Result struct {
	browser.SwitchResult
	PeakOutMBs float64 // peak swap-out rate, MB/s (paper: up to 201)
	PeakInMBs  float64 // peak swap-in rate, MB/s (paper: up to 227)
	TotalOutGB float64 // paper: 11.7 GB over the session
	TotalInGB  float64 // paper: 7.8 GB
}

// Fig4 reproduces Figure 4: per-second data swapped to and from ZRAM while
// opening and switching between tabs.
func Fig4(o Options) (Fig4Result, error) {
	nTabs, budget, footprint := 12, 4, 1<<20
	if o.Scale == gopim.Standard {
		nTabs, budget, footprint = 50, 12, 4<<20
	}
	sw, err := browser.RunSwitchSession(nTabs, budget, footprint, 2024)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{SwitchResult: sw}
	for _, s := range sw.Samples {
		if mb := float64(s.OutBytes) / 1e6; mb > res.PeakOutMBs {
			res.PeakOutMBs = mb
		}
		if mb := float64(s.InBytes) / 1e6; mb > res.PeakInMBs {
			res.PeakInMBs = mb
		}
	}
	res.TotalOutGB = float64(sw.TotalOut) / 1e9
	res.TotalInGB = float64(sw.TotalIn) / 1e9
	return res, nil
}
