// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each runner returns
// typed rows; the cmd/pimsim tool prints them as paper-style tables, and
// EXPERIMENTS.md records paper-vs-measured values.
//
// Runners accept an Options value selecting the input scale: Quick inputs
// finish in seconds for tests; Standard inputs use working sets that
// exceed the LLC the way the paper's native inputs do and are meant for
// the benchmark harness.
package experiments

import (
	"sort"

	"gopim"
	"gopim/internal/core"
	"gopim/internal/profile"
	"gopim/internal/timing"
)

// Options parameterizes all experiment runners.
type Options struct {
	Scale gopim.Scale
}

// PhaseFraction is one slice of a stacked-bar figure.
type PhaseFraction struct {
	Name     string
	Fraction float64
}

// fractionsOf converts per-phase profiles into energy fractions over the
// listed phases, folding everything else into an "Other" entry if catchAll
// is non-empty.
func fractionsOf(ev *core.Evaluator, phases map[string]profile.Profile, order []string, catchAll string) []PhaseFraction {
	total := 0.0
	per := map[string]float64{}
	for name, p := range phases {
		e := ev.CPUPhaseEnergy(p).Total()
		per[name] = e
		total += e
	}
	if total == 0 {
		return nil
	}
	out := make([]PhaseFraction, 0, len(order)+1)
	used := 0.0
	for _, name := range order {
		out = append(out, PhaseFraction{Name: name, Fraction: per[name] / total})
		used += per[name]
	}
	if catchAll != "" {
		rest := (total - used) / total
		if rest < 0 {
			rest = 0
		}
		out = append(out, PhaseFraction{Name: catchAll, Fraction: rest})
	}
	return out
}

// timeFractionsOf is fractionsOf for execution time.
func timeFractionsOf(phases map[string]profile.Profile, order []string, catchAll string) []PhaseFraction {
	eng := timing.SoC()
	total := 0.0
	per := map[string]float64{}
	for name, p := range phases {
		t := eng.Seconds(p)
		per[name] = t
		total += t
	}
	if total == 0 {
		return nil
	}
	out := make([]PhaseFraction, 0, len(order)+1)
	used := 0.0
	for _, name := range order {
		out = append(out, PhaseFraction{Name: name, Fraction: per[name] / total})
		used += per[name]
	}
	if catchAll != "" {
		rest := (total - used) / total
		if rest < 0 {
			rest = 0
		}
		out = append(out, PhaseFraction{Name: catchAll, Fraction: rest})
	}
	return out
}

func sortedPhaseNames(phases map[string]profile.Profile) []string {
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
