// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each runner returns
// typed rows; the cmd/pimsim tool prints them as paper-style tables, and
// EXPERIMENTS.md records paper-vs-measured values.
//
// Runners accept an Options value selecting the input scale: Quick inputs
// finish in seconds for tests; Standard inputs use working sets that
// exceed the LLC the way the paper's native inputs do and are meant for
// the benchmark harness.
package experiments

import (
	"sort"

	"gopim"
	"gopim/internal/core"
	"gopim/internal/obs"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/timing"
	"gopim/internal/trace"
)

// Options parameterizes all experiment runners.
type Options struct {
	Scale gopim.Scale
	// Workers bounds the concurrency of runners that fan out independent
	// units of work (pages, networks, targets, sweep points). Zero means
	// GOMAXPROCS; 1 forces the serial reference path. Results are
	// bit-identical at any worker count.
	Workers int
	// Traces, when non-nil, is the capture-once/replay-many kernel trace
	// cache shared by every runner in a sweep: each keyed kernel executes
	// once per process and all further (kernel, hardware) profiles replay
	// its trace, bit-identical to direct execution. Nil profiles every
	// kernel directly (the reference path). Attaching a trace.Store to the
	// cache extends capture-once across processes: traces recorded by an
	// earlier run (or `pimsim trace pack`) load from disk instead of
	// executing, making a cold sweep nearly as fast as a warm one.
	Traces *trace.Cache
	// Obs, when non-nil, receives per-experiment wall times (RunNamed) and
	// pricing spans. It never influences results — observability output goes
	// to stderr/files only, and stdout stays byte-identical with it on or
	// off (gated in scripts/check.sh).
	Obs *obs.Registry
}

// workers resolves the effective worker count.
func (o Options) workers() int { return par.Workers(o.Workers) }

// run profiles a kernel through the shared trace cache; with no cache
// attached it is exactly profile.Run.
func (o Options) run(hw profile.Hardware, k profile.Kernel) (profile.Profile, map[string]profile.Profile) {
	return o.Traces.Profile(hw, k)
}

// evaluator returns a default evaluator wired to the shared trace cache.
func (o Options) evaluator() *core.Evaluator {
	ev := core.NewEvaluator()
	ev.Traces = o.Traces
	ev.Obs = o.Obs
	return ev
}

// PhaseFraction is one slice of a stacked-bar figure.
type PhaseFraction struct {
	Name     string
	Fraction float64
}

// phaseFractions converts per-phase profiles into fractions of the metric
// over the listed phases, folding everything else into an "Other" entry if
// catchAll is non-empty. The total is accumulated in sorted phase order so
// the float sum does not depend on map iteration order.
func phaseFractions(phases map[string]profile.Profile, metric func(profile.Profile) float64, order []string, catchAll string) []PhaseFraction {
	total := 0.0
	per := map[string]float64{}
	for _, name := range sortedPhaseNames(phases) {
		v := metric(phases[name])
		per[name] = v
		total += v
	}
	if total == 0 {
		return nil
	}
	out := make([]PhaseFraction, 0, len(order)+1)
	used := 0.0
	for _, name := range order {
		out = append(out, PhaseFraction{Name: name, Fraction: per[name] / total})
		used += per[name]
	}
	if catchAll != "" {
		rest := (total - used) / total
		if rest < 0 {
			rest = 0
		}
		out = append(out, PhaseFraction{Name: catchAll, Fraction: rest})
	}
	return out
}

// fractionsOf is phaseFractions over CPU energy.
func fractionsOf(ev *core.Evaluator, phases map[string]profile.Profile, order []string, catchAll string) []PhaseFraction {
	return phaseFractions(phases, func(p profile.Profile) float64 {
		return ev.CPUPhaseEnergy(p).Total()
	}, order, catchAll)
}

// timeFractionsOf is phaseFractions over execution time.
func timeFractionsOf(phases map[string]profile.Profile, order []string, catchAll string) []PhaseFraction {
	eng := timing.SoC()
	return phaseFractions(phases, eng.Seconds, order, catchAll)
}

func sortedPhaseNames(phases map[string]profile.Profile) []string {
	return sortedKeys(phases)
}

// sortedKeys is the one blessed way to iterate a string-keyed map
// deterministically: collect, sort, then range the slice.
func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		//lint:ignore nondeterm keys are fully sorted before any use
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
