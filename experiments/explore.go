// Design-space exploration: price many hardware designs per stream walk.
//
// The paper evaluates three fixed design points (the baseline SoC, a
// per-vault PIM core, per-target PIM accelerators). Explore generalizes
// that evaluation into a sweep over cache geometry, line size, memory
// timing, engine width and accelerator efficiency: every kernel executes
// (or loads from the persistent store) exactly once, each distinct cache
// geometry is priced by replaying the kernel's trace, and geometries
// sharing a line size replay together through one batched stream walk
// (trace.CompiledTrace.ReplayBatch), so a thousand-design sweep costs a
// handful of trace walks instead of a thousand kernel executions.
//
// Engine and energy knobs (IPC, units, latency, bandwidth, accelerator
// efficiency) never touch the memory-system profile, so they multiply the
// design space for free: points are priced from the replayed profiles with
// plain arithmetic. The output is, per workload, the swept points and
// their Pareto frontier over (energy, runtime, PIM logic area).
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"gopim"
	"gopim/internal/cache"
	"gopim/internal/core"
	"gopim/internal/mem"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/timing"
	"gopim/internal/trace"
)

// ExploreOptions selects what the explorer sweeps.
type ExploreOptions struct {
	// Mode is "grid" (the fixed factorial sweep), "random" (N points
	// sampled from the same axes) or "paper" (the paper's three design
	// points, priced through core.EvaluateProfiles — the equivalence
	// anchor for the sweep machinery).
	Mode string
	// N is the number of points in random mode.
	N int
	// Seed seeds random mode; equal seeds give identical sweeps.
	Seed int64
}

// Design-point kinds, matching core.Mode presentation names.
const (
	KindCPU  = "CPU-Only"
	KindCore = "PIM-Core"
	KindAcc  = "PIM-Acc"
)

// DesignPoint is one hardware design: a cache geometry (which determines
// the replayed memory-system profile) plus engine and energy knobs (which
// only change how that profile is priced).
type DesignPoint struct {
	ID   int
	Kind string // KindCPU, KindCore or KindAcc

	// Geometry. L2 fields are zero for PIM kinds (no shared LLC inside
	// the stack); L1 is the accelerator's scratchpad buffer for KindAcc.
	L1Size   int
	L1Ways   int
	L2Size   int
	L2Ways   int
	LineSize int

	// Engine knobs.
	Units        int     // SoC cores / vault PIM cores / accelerator units
	IPC          float64 // sustained instructions per cycle per unit
	Eff          float64 // KindAcc: ops-per-joule advantage over the CPU core
	MemLatencyNS float64 // line fetch latency seen by the engine
	BandwidthGBs float64 // memory channel ceiling
}

// hardware returns the memory system the point's profile is replayed on.
// Names mirror the paper configs so trace.HardwareKey dedups identically.
func (p DesignPoint) hardware() profile.Hardware {
	l1 := cache.Config{Size: p.L1Size, Ways: p.L1Ways, LineSize: p.LineSize}
	switch p.Kind {
	case KindCPU:
		l1.Name = "L1D"
		l2 := cache.Config{Name: "LLC", Size: p.L2Size, Ways: p.L2Ways, LineSize: p.LineSize}
		return profile.Hardware{Name: KindCPU, L1: l1, L2: &l2}
	case KindCore:
		l1.Name = "PIM-L1"
		return profile.Hardware{Name: KindCore, L1: l1}
	default:
		l1.Name = "PIM-Buf"
		return profile.Hardware{Name: KindAcc, L1: l1}
	}
}

// engine returns the timing model pricing the point: the paper engine of
// its kind with the point's width, latency and bandwidth knobs applied.
func (p DesignPoint) engine() timing.Engine {
	var e timing.Engine
	switch p.Kind {
	case KindCPU:
		e = timing.SoC()
	case KindCore:
		e = timing.PIMCore(p.Units)
	default:
		e = timing.PIMAcc(p.Units)
	}
	e.IPC = p.IPC
	e.MemLatency = p.MemLatencyNS * 1e-9
	e.Bandwidth = p.BandwidthGBs * 1e9
	return e
}

// sramMM2 is the explorer's SRAM area proxy, anchored so the paper's
// 32 kB PIM structures cost 0.05 mm² and area scales linearly with
// capacity (CACTI-class SRAM at these sizes is capacity-dominated).
func sramMM2(bytes int) float64 {
	return 0.05 * float64(bytes) / float64(32<<10)
}

// areaMM2 returns the point's PIM logic-layer area proxy for a workload's
// targets. CPU designs add no in-memory logic. PIM cores are shared by
// every target of the workload (one core per used vault), so they count
// once; accelerators are per target, scaled from the paper's reported
// area by the unit count, so they sum.
func (p DesignPoint) areaMM2(targets []gopim.Target) float64 {
	sramDelta := sramMM2(p.L1Size) - sramMM2(32<<10)
	switch p.Kind {
	case KindCPU:
		return 0
	case KindCore:
		return float64(p.Units) * (gopim.PIMCoreArea + sramDelta)
	default:
		a := 0.0
		for _, t := range targets {
			units := t.AccUnits
			if units <= 0 {
				units = 4
			}
			a += t.AccArea*float64(p.Units)/float64(units) + sramDelta
		}
		return a
	}
}

// paperPoints returns the paper's three design points (Table 1 and §3.3):
// the anchor configurations every sweep axis varies around.
func paperPoints() []DesignPoint {
	return []DesignPoint{
		{Kind: KindCPU, L1Size: 64 << 10, L1Ways: 4, L2Size: 2 << 20, L2Ways: 8,
			LineSize: mem.LineSize, Units: 1, IPC: 2, MemLatencyNS: 80, BandwidthGBs: 32},
		{Kind: KindCore, L1Size: 32 << 10, L1Ways: 4,
			LineSize: mem.LineSize, Units: 4, IPC: 1, MemLatencyNS: 45, BandwidthGBs: 256},
		{Kind: KindAcc, L1Size: 32 << 10, L1Ways: 8,
			LineSize: mem.LineSize, Units: 4, IPC: 4, Eff: 20, MemLatencyNS: 45, BandwidthGBs: 256},
	}
}

// Sweep axes. Every combination appears in grid mode; random mode samples
// each axis independently. Geometry axes multiply replay work (each
// distinct geometry is one replay slot in a batched walk); knob axes are
// free (pricing arithmetic only).
var (
	cpuL1   = []cache.Config{{Size: 32 << 10, Ways: 4}, {Size: 64 << 10, Ways: 4}, {Size: 64 << 10, Ways: 8}}
	cpuL2   = []int{1 << 20, 2 << 20, 4 << 20}
	cpuLat  = []float64{60, 80, 100}
	cpuBW   = []float64{25.6, 32, 38.4}
	coreL1  = []cache.Config{{Size: 16 << 10, Ways: 4}, {Size: 32 << 10, Ways: 4}, {Size: 64 << 10, Ways: 4}, {Size: 32 << 10, Ways: 8}}
	accBuf  = []int{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	accEff  = []float64{5, 10, 20, 40}
	pimBW   = []float64{128, 256, 512}
	pimLat  = []float64{45, 60}
	lines   = []int{64, 128}
	pimUnit = []int{2, 4, 8}
	coreIPC = []float64{1, 2}
)

// gridPoints enumerates the full factorial sweep: 162 CPU + 288 PIM-core
// + 576 PIM-accelerator designs (1026 points over 34 cache geometries).
func gridPoints() []DesignPoint {
	var pts []DesignPoint
	for _, l1 := range cpuL1 {
		for _, l2 := range cpuL2 {
			for _, line := range lines {
				for _, lat := range cpuLat {
					for _, bw := range cpuBW {
						pts = append(pts, DesignPoint{Kind: KindCPU,
							L1Size: l1.Size, L1Ways: l1.Ways, L2Size: l2, L2Ways: 8, LineSize: line,
							Units: 1, IPC: 2, MemLatencyNS: lat, BandwidthGBs: bw})
					}
				}
			}
		}
	}
	for _, l1 := range coreL1 {
		for _, line := range lines {
			for _, units := range pimUnit {
				for _, ipc := range coreIPC {
					for _, bw := range pimBW {
						for _, lat := range pimLat {
							pts = append(pts, DesignPoint{Kind: KindCore,
								L1Size: l1.Size, L1Ways: l1.Ways, LineSize: line,
								Units: units, IPC: ipc, MemLatencyNS: lat, BandwidthGBs: bw})
						}
					}
				}
			}
		}
	}
	for _, buf := range accBuf {
		for _, line := range lines {
			for _, units := range pimUnit {
				for _, eff := range accEff {
					for _, bw := range pimBW {
						for _, lat := range pimLat {
							pts = append(pts, DesignPoint{Kind: KindAcc,
								L1Size: buf, L1Ways: 8, LineSize: line,
								Units: units, IPC: 4, Eff: eff, MemLatencyNS: lat, BandwidthGBs: bw})
						}
					}
				}
			}
		}
	}
	return pts
}

// randomPoints samples n designs from the grid axes, reproducibly from
// seed (a local generator: equal seeds give equal sweeps at any worker
// count).
func randomPoints(n int, seed int64) []DesignPoint {
	rng := rand.New(rand.NewSource(seed))
	pickI := func(vals []int) int { return vals[rng.Intn(len(vals))] }
	pickF := func(vals []float64) float64 { return vals[rng.Intn(len(vals))] }
	pts := make([]DesignPoint, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			l1 := cpuL1[rng.Intn(len(cpuL1))]
			pts = append(pts, DesignPoint{Kind: KindCPU,
				L1Size: l1.Size, L1Ways: l1.Ways, L2Size: pickI(cpuL2), L2Ways: 8, LineSize: pickI(lines),
				Units: 1, IPC: 2, MemLatencyNS: pickF(cpuLat), BandwidthGBs: pickF(cpuBW)})
		case 1:
			l1 := coreL1[rng.Intn(len(coreL1))]
			pts = append(pts, DesignPoint{Kind: KindCore,
				L1Size: l1.Size, L1Ways: l1.Ways, LineSize: pickI(lines),
				Units: pickI(pimUnit), IPC: pickF(coreIPC), MemLatencyNS: pickF(pimLat), BandwidthGBs: pickF(pimBW)})
		default:
			pts = append(pts, DesignPoint{Kind: KindAcc,
				L1Size: pickI(accBuf), L1Ways: 8, LineSize: pickI(lines),
				Units: pickI(pimUnit), IPC: 4, Eff: pickF(accEff), MemLatencyNS: pickF(pimLat), BandwidthGBs: pickF(pimBW)})
		}
	}
	return pts
}

// ExploreRow is one (workload, design point) outcome.
type ExploreRow struct {
	Workload string
	Point    DesignPoint
	EnergyPJ float64 // summed over the workload's targets
	Seconds  float64 // summed over the workload's targets
	AreaMM2  float64 // PIM logic-layer area proxy
	Pareto   bool    // on the workload's (energy, time, area) frontier
}

// ExploreResult is one sweep's full output.
type ExploreResult struct {
	Mode       string
	Configs    int // design points priced
	Geometries int // distinct cache geometries replayed
	BatchWalks int // batched stream walks ((target, line size) units)
	Workloads  []string
	Rows       []ExploreRow // grouped by workload, point-ID order
}

// Explore sweeps the design space: one kernel execution (or store load)
// per target, one batched trace walk per (target, line size), one replay
// slot per distinct cache geometry, and pure arithmetic per design point.
// Output is deterministic and independent of Options.Workers.
func Explore(o Options, x ExploreOptions) (*ExploreResult, error) {
	return ExploreCtx(context.Background(), o, x)
}

// explorePoints enumerates the sweep's design points for a mode.
func explorePoints(x ExploreOptions) ([]DesignPoint, error) {
	var points []DesignPoint
	switch x.Mode {
	case "grid":
		points = gridPoints()
	case "random":
		if x.N <= 0 {
			return nil, fmt.Errorf("explore: random mode needs N > 0 (got %d)", x.N)
		}
		points = randomPoints(x.N, x.Seed)
	case "paper":
		points = paperPoints()
	default:
		return nil, fmt.Errorf("explore: unknown mode %q (want grid, random or paper)", x.Mode)
	}
	for i := range points {
		points[i].ID = i
	}
	return points, nil
}

// exploreWorkloads returns workload presentation order and per-workload
// target indices, from the canonical Targets order.
func exploreWorkloads(targets []gopim.Target) ([]string, map[string][]int) {
	var workloads []string
	wTargets := map[string][]int{}
	for ti, t := range targets {
		if _, ok := wTargets[t.Workload]; !ok {
			workloads = append(workloads, t.Workload)
		}
		wTargets[t.Workload] = append(wTargets[t.Workload], ti)
	}
	return workloads, wTargets
}

// dedupGeometries maps points onto distinct cache geometries in
// first-occurrence order: pointHW[i] indexes hws.
func dedupGeometries(points []DesignPoint) (hws []profile.Hardware, pointHW []int) {
	hwIdx := map[string]int{}
	pointHW = make([]int, len(points))
	for i, p := range points {
		hw := p.hardware()
		key := trace.HardwareKey(hw)
		idx, ok := hwIdx[key]
		if !ok {
			idx = len(hws)
			hws = append(hws, hw)
			hwIdx[key] = idx
		}
		pointHW[i] = idx
	}
	return hws, pointHW
}

// hwGroup is one same-line-size geometry group: its members share one
// compiled program and one batched walk per target.
type hwGroup struct {
	line int
	idxs []int
}

// lineGroups groups geometry indices by line size, in first-occurrence
// order.
func lineGroups(hws []profile.Hardware) []hwGroup {
	var groups []hwGroup
	for i, hw := range hws {
		line := hw.L1.LineSize
		if line == 0 {
			line = mem.LineSize
		}
		gi := -1
		for j := range groups {
			if groups[j].line == line {
				gi = j
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, hwGroup{line: line})
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}
	return groups
}

// makeProfMatrix allocates the [target][geometry] profile matrix the
// batched walks fill.
func makeProfMatrix(nTargets, nHW int) [][]profile.Profile {
	prof := make([][]profile.Profile, nTargets)
	for ti := range prof {
		prof[ti] = make([]profile.Profile, nHW)
	}
	return prof
}

// replayGroup prices one (target, line-size group) unit: one batched
// stream walk fills the group's prof slots for the target.
func replayGroup(tr *trace.Trace, target gopim.Target, g hwGroup, hws []profile.Hardware, prof []profile.Profile) {
	ghws := make([]profile.Hardware, len(g.idxs))
	for j, hi := range g.idxs {
		ghws[j] = hws[hi]
	}
	res := tr.ReplayBatch(ghws)
	for j, hi := range g.idxs {
		prof[hi] = core.SelectPhases(res[j].Profile, res[j].Phases, target.Phases)
	}
}

// ExploreCtx is Explore under a cancellation context: the trace-recording
// and batched-replay fan-outs check ctx before each unit of work, so a
// cancelled sweep (a pimsimd job whose client went away) stops in bounded
// time. A cancelled sweep returns ctx's error and no result; a sweep that
// completes is bit-identical to Explore.
func ExploreCtx(ctx context.Context, o Options, x ExploreOptions) (*ExploreResult, error) {
	points, err := explorePoints(x)
	if err != nil {
		return nil, err
	}

	targets := gopim.Targets(o.Scale)
	tc := o.Traces
	if tc == nil {
		// The sweep's whole economy is capture-once/replay-many: a private
		// cache still executes each kernel once within this call.
		tc = trace.NewCache()
	}

	workloads, wTargets := exploreWorkloads(targets)

	// Record (or load) each target's trace exactly once, in parallel. A
	// cancelled unit records nothing; the post-fan-out ctx check bails
	// before any nil trace is replayed.
	traces := par.Map(o.workers(), len(targets), func(i int) *trace.Trace {
		if ctx.Err() != nil {
			return nil
		}
		return tc.TraceFor(targets[i].Kernel)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Dedup geometries in first-occurrence order and group them by line
	// size: each group shares one compiled program and one batched walk.
	hws, pointHW := dedupGeometries(points)
	groups := lineGroups(hws)

	// Live sweep progress: totals as gauges, completed walks as a counter a
	// -metrics-addr poller watches tick up mid-run.
	o.Obs.Gauge("explore.configs").Set(int64(len(points)))
	o.Obs.Gauge("explore.geometries").Set(int64(len(hws)))
	o.Obs.Gauge("explore.batch_walks_total").Set(int64(len(targets) * len(groups)))
	walksDone := o.Obs.Counter("explore.batch_walks_done")

	// Replay every (target, line-size group) unit: one batched stream walk
	// prices the whole group. Units write disjoint prof slots, so the
	// fan-out is bit-identical at any worker count.
	prof := makeProfMatrix(len(targets), len(hws))
	par.ForEach(o.workers(), len(targets)*len(groups), func(u int) {
		if ctx.Err() != nil {
			return
		}
		ti, gi := u/len(groups), u%len(groups)
		replayGroup(traces[ti], targets[ti], groups[gi], hws, prof[ti])
		walksDone.Add(1)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	priceSpan := o.Obs.Span("phase.price")
	res := priceSweep(o, x, points, targets, workloads, wTargets, hws, pointHW, len(groups), prof)
	priceSpan.End()
	return res, nil
}

// priceSweep prices every (workload, point) row from the replayed profiles
// and marks each workload's Pareto frontier. Pure arithmetic — it finishes
// in milliseconds, so it runs to completion even under a cancelled ctx
// (the expensive record/replay fan-outs above it are the cancellation
// points).
func priceSweep(o Options, x ExploreOptions, points []DesignPoint, targets []gopim.Target,
	workloads []string, wTargets map[string][]int,
	hws []profile.Hardware, pointHW []int, nGroups int, prof [][]profile.Profile) *ExploreResult {
	ev := o.evaluator()
	// The sweep times all pricing as one span; the evaluator's own per-call
	// phase.price span (paper mode routes through EvaluateProfiles) would
	// double-count inside it.
	ev.Obs = nil

	// Paper mode prices through core.EvaluateProfiles — the exact paper
	// pipeline on the batch-replayed profiles — so its rows reproduce
	// Evaluator.Evaluate bit for bit (the sweep machinery's ground truth).
	var paper []core.Result
	if x.Mode == "paper" {
		paper = make([]core.Result, len(targets))
		for ti, t := range targets {
			paper[ti] = ev.EvaluateProfiles(t,
				prof[ti][pointHW[0]], prof[ti][pointHW[1]], prof[ti][pointHW[2]])
		}
	}

	res := &ExploreResult{
		Mode:       x.Mode,
		Configs:    len(points),
		Geometries: len(hws),
		BatchWalks: len(targets) * nGroups,
		Workloads:  workloads,
	}
	for _, w := range workloads {
		start := len(res.Rows)
		wts := make([]gopim.Target, 0, len(wTargets[w]))
		for _, ti := range wTargets[w] {
			wts = append(wts, targets[ti])
		}
		for pi, p := range points {
			row := ExploreRow{Workload: w, Point: p}
			if x.Mode == "paper" {
				mode := kindMode(p.Kind)
				for _, ti := range wTargets[w] {
					e := paper[ti].ByMode[mode]
					row.EnergyPJ += e.Energy.Total()
					row.Seconds += e.Seconds
				}
				row.AreaMM2 = paperArea(p.Kind, wts)
			} else {
				eng := p.engine()
				for _, ti := range wTargets[w] {
					e, s := pricePoint(ev, p, eng, prof[ti][pointHW[pi]])
					row.EnergyPJ += e
					row.Seconds += s
				}
				row.AreaMM2 = p.areaMM2(wts)
			}
			res.Rows = append(res.Rows, row)
		}
		markPareto(res.Rows[start:])
	}
	return res
}

// pricePoint models one target's profile on one design point. The
// arithmetic mirrors core.EvaluateProfiles per kind, with two sweep
// generalizations: the engine carries the point's knobs, and a PIM-Acc
// point's coherence overhead comes from its own profile (a sweep point is
// a single design, with no companion PIM-core run to borrow it from; at
// the paper geometry the difference is nil — use paper mode for exact
// paper numbers). Accelerator op energy derives from the efficiency knob:
// Eff is the ops-per-joule advantage over the CPU core, the paper's "20x"
// (§3.1).
func pricePoint(ev *core.Evaluator, p DesignPoint, eng timing.Engine, prof profile.Profile) (energyPJ, seconds float64) {
	switch p.Kind {
	case KindCPU:
		sec := eng.Seconds(prof)
		return ev.CPUEnergy(prof, sec).Total(), sec
	case KindCore:
		coh := ev.Coherence.Overhead(prof)
		sec := eng.Seconds(prof) + coh.Latency
		return ev.PIMCoreEnergy(prof, sec, coh).Total(), sec
	default:
		coh := ev.Coherence.Overhead(prof)
		sec := eng.Seconds(prof) + coh.Latency
		evAcc := *ev
		evAcc.Params.PIMAccOp = evAcc.Params.CPUInstr / p.Eff
		return evAcc.PIMAccEnergy(prof, sec, coh).Total(), sec
	}
}

// kindMode maps a design-point kind to its core.Mode.
func kindMode(kind string) core.Mode {
	switch kind {
	case KindCPU:
		return core.CPUOnly
	case KindCore:
		return core.PIMCore
	default:
		return core.PIMAcc
	}
}

// paperArea returns the paper's reported PIM areas for a workload: four
// PIM cores (§3.3), or the sum of the targets' accelerator areas (§§4–7).
func paperArea(kind string, targets []gopim.Target) float64 {
	switch kind {
	case KindCPU:
		return 0
	case KindCore:
		return 4 * gopim.PIMCoreArea
	default:
		a := 0.0
		for _, t := range targets {
			a += t.AccArea
		}
		return a
	}
}

// markPareto flags the rows on the (energy, time, area) Pareto frontier:
// rows no other row beats on one objective without losing on another.
// Designs with exactly equal outcomes (knob axes that don't bind, e.g.
// bandwidth on a compute-bound workload) are represented by their
// lowest-ID member only, so the frontier lists distinct outcomes.
func markPareto(rows []ExploreRow) {
	for i := range rows {
		dominated := false
		for j := range rows {
			if i == j {
				continue
			}
			if dominates(rows[j], rows[i]) || (j < i && sameOutcome(rows[j], rows[i])) {
				dominated = true
				break
			}
		}
		rows[i].Pareto = !dominated
	}
}

// sameOutcome reports exact equality on every objective.
func sameOutcome(a, b ExploreRow) bool {
	return a.EnergyPJ == b.EnergyPJ && a.Seconds == b.Seconds && a.AreaMM2 == b.AreaMM2
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(a, b ExploreRow) bool {
	if a.EnergyPJ > b.EnergyPJ || a.Seconds > b.Seconds || a.AreaMM2 > b.AreaMM2 {
		return false
	}
	return a.EnergyPJ < b.EnergyPJ || a.Seconds < b.Seconds || a.AreaMM2 < b.AreaMM2
}

// sizeStr renders a power-of-two byte count compactly (64K, 2M).
func sizeStr(bytes int) string {
	if bytes >= 1<<20 && bytes%(1<<20) == 0 {
		return fmt.Sprintf("%dM", bytes>>20)
	}
	return fmt.Sprintf("%dK", bytes>>10)
}

// geometry renders the point's cache geometry for tables.
func (p DesignPoint) geometry() string {
	switch p.Kind {
	case KindCPU:
		return fmt.Sprintf("L1 %s/%d L2 %s/%d", sizeStr(p.L1Size), p.L1Ways, sizeStr(p.L2Size), p.L2Ways)
	case KindCore:
		return fmt.Sprintf("L1 %s/%d", sizeStr(p.L1Size), p.L1Ways)
	default:
		return fmt.Sprintf("buf %s/%d", sizeStr(p.L1Size), p.L1Ways)
	}
}

// RenderExplore writes a sweep result as a text report (per-workload
// Pareto frontiers), CSV (every row, with a pareto column) or JSON (the
// full ExploreResult). Output is deterministic for a given result.
func RenderExplore(w io.Writer, r *ExploreResult, format string) error {
	switch format {
	case "text":
		return renderExploreText(w, r)
	case "csv":
		return renderExploreCSV(w, r)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	default:
		return fmt.Errorf("explore: unknown format %q (want text, csv or json)", format)
	}
}

func renderExploreText(w io.Writer, r *ExploreResult) error {
	if _, err := fmt.Fprintf(w, "explore (%s): %d design points over %d cache geometries, %d batched trace walks\n",
		r.Mode, r.Configs, r.Geometries, r.BatchWalks); err != nil {
		return err
	}
	for _, wl := range r.Workloads {
		var rows []ExploreRow
		for _, row := range r.Rows {
			if row.Workload == wl && row.Pareto {
				rows = append(rows, row)
			}
		}
		fmt.Fprintf(w, "\n%s: %d Pareto-optimal designs\n", wl, len(rows))
		tw := tab(w)
		fmt.Fprintln(tw, "id\tkind\tgeometry\tline\tunits\tipc\teff\tlat(ns)\tbw(GB/s)\tenergy(mJ)\ttime(ms)\tarea(mm2)")
		for _, row := range rows {
			p := row.Point
			eff := "-"
			if p.Kind == KindAcc {
				eff = fmt.Sprintf("%gx", p.Eff)
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%d\t%g\t%s\t%g\t%g\t%.3f\t%.3f\t%.3f\n",
				p.ID, p.Kind, p.geometry(), p.LineSize, p.Units, p.IPC, eff,
				p.MemLatencyNS, p.BandwidthGBs,
				row.EnergyPJ*1e-9, row.Seconds*1e3, row.AreaMM2)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func renderExploreCSV(w io.Writer, r *ExploreResult) error {
	if _, err := fmt.Fprintln(w, "workload,id,kind,l1_size,l1_ways,l2_size,l2_ways,line,units,ipc,eff,lat_ns,bw_gbs,energy_mj,time_ms,area_mm2,pareto"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		p := row.Point
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%d,%d,%d,%d,%d,%g,%g,%g,%g,%.6f,%.6f,%.4f,%t\n",
			row.Workload, p.ID, p.Kind, p.L1Size, p.L1Ways, p.L2Size, p.L2Ways, p.LineSize,
			p.Units, p.IPC, p.Eff, p.MemLatencyNS, p.BandwidthGBs,
			row.EnergyPJ*1e-9, row.Seconds*1e3, row.AreaMM2, row.Pareto); err != nil {
			return err
		}
	}
	return nil
}
