package experiments

import (
	"bytes"
	"sync"
	"testing"

	"gopim"
	"gopim/internal/trace"
)

// exploreCache is one trace cache shared by every explore test: kernel
// recording dominates these tests' cost, and capture-once is exactly the
// property under test, so all sweeps here draw on one recording of each
// target. Each test can still assert Records == len(targets): the count
// must stay there no matter how many sweeps have run.
var (
	exploreCacheOnce sync.Once
	exploreCacheVal  *trace.Cache
)

func exploreCache() *trace.Cache {
	exploreCacheOnce.Do(func() { exploreCacheVal = trace.NewCache() })
	return exploreCacheVal
}

// TestExplorePaperConfigsMatchEvaluate is the full-pipeline equivalence
// gate: the explorer's paper mode — kernels recorded once, profiles
// obtained via batched trace replay, pricing via core.EvaluateProfiles —
// must reproduce Evaluator.Evaluate exactly, per workload and mode.
func TestExplorePaperConfigsMatchEvaluate(t *testing.T) {
	opts := Options{Scale: gopim.Quick, Workers: 4, Traces: exploreCache()}
	res, err := Explore(opts, ExploreOptions{Mode: "paper"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs != 3 {
		t.Fatalf("paper mode priced %d configs, want 3", res.Configs)
	}

	// Ground truth: the paper pipeline, target by target, sharing the same
	// trace cache (so kernels still execute only once across both paths).
	ev := opts.evaluator()
	want := map[string]map[string][2]float64{} // workload -> kind -> {energy, seconds}
	for _, tgt := range gopim.Targets(opts.Scale) {
		r := ev.Evaluate(tgt)
		if want[tgt.Workload] == nil {
			want[tgt.Workload] = map[string][2]float64{}
		}
		for _, mode := range gopim.Modes {
			e := r.ByMode[mode]
			acc := want[tgt.Workload][mode.String()]
			acc[0] += e.Energy.Total()
			acc[1] += e.Seconds
			want[tgt.Workload][mode.String()] = acc
		}
	}

	if len(res.Rows) != 3*len(res.Workloads) {
		t.Fatalf("%d rows for %d workloads", len(res.Rows), len(res.Workloads))
	}
	for _, row := range res.Rows {
		w := want[row.Workload][row.Point.Kind]
		if row.EnergyPJ != w[0] || row.Seconds != w[1] {
			t.Errorf("%s/%s: explore (%.6g pJ, %.6g s) != Evaluate (%.6g pJ, %.6g s)",
				row.Workload, row.Point.Kind, row.EnergyPJ, row.Seconds, w[0], w[1])
		}
	}

	// Across every sweep sharing this cache, each target's kernel must
	// have executed exactly once.
	if got, n := opts.Traces.Stats().Records, len(gopim.Targets(opts.Scale)); got != int64(n) {
		t.Errorf("records = %d, want %d (one per target)", got, n)
	}
}

// TestExploreGridCount pins the acceptance floor: the grid sweep prices at
// least 1000 designs, across every workload, and every design appears in
// every workload's rows.
func TestExploreGridCount(t *testing.T) {
	pts := gridPoints()
	if len(pts) < 1000 {
		t.Fatalf("grid has %d points, want >= 1000", len(pts))
	}
	// Geometry axes stay small — that is the economics the sweep relies
	// on: 1026 designs over a few dozen replayed geometries.
	seen := map[string]bool{}
	for _, p := range pts {
		seen[trace.HardwareKey(p.hardware())] = true
	}
	if len(seen) > 64 {
		t.Errorf("grid spans %d geometries; axes should keep this a few dozen", len(seen))
	}
}

// TestExploreRandomDeterministic checks that a seeded random sweep is
// reproducible and worker-independent down to the rendered bytes, in every
// output format.
func TestExploreRandomDeterministic(t *testing.T) {
	x := ExploreOptions{Mode: "random", N: 40, Seed: 7}
	r1, err := Explore(Options{Scale: gopim.Quick, Workers: 1, Traces: exploreCache()}, x)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Explore(Options{Scale: gopim.Quick, Workers: 4, Traces: exploreCache()}, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "csv", "json"} {
		var b1, b4 bytes.Buffer
		if err := RenderExplore(&b1, r1, format); err != nil {
			t.Fatal(err)
		}
		if err := RenderExplore(&b4, r4, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
			t.Errorf("%s output differs between workers=1 and workers=4", format)
		}
		if b1.Len() == 0 {
			t.Errorf("%s output is empty", format)
		}
	}
}

// TestExploreGridSweep runs a real (quick-scale) grid sweep end to end and
// checks its structural invariants: every (workload, point) priced, finite
// positive outcomes, a non-trivial Pareto frontier, and kernel execution
// bounded by the target count no matter how many designs were priced.
func TestExploreGridSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid sweep at quick scale is a bench-sized test")
	}
	tc := exploreCache()
	opts := Options{Scale: gopim.Quick, Traces: tc}
	res, err := Explore(opts, ExploreOptions{Mode: "grid"})
	if err != nil {
		t.Fatal(err)
	}
	targets := gopim.Targets(opts.Scale)
	if want := res.Configs * len(res.Workloads); len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	if got := tc.Stats().Records; got != int64(len(targets)) {
		t.Errorf("grid sweep executed %d kernels, want %d (capture once)", got, len(targets))
	}
	pareto := 0
	for _, row := range res.Rows {
		if row.EnergyPJ <= 0 || row.Seconds <= 0 {
			t.Fatalf("%s point %d: non-positive outcome (%g pJ, %g s)",
				row.Workload, row.Point.ID, row.EnergyPJ, row.Seconds)
		}
		if row.Pareto {
			pareto++
		}
	}
	if pareto == 0 || pareto == len(res.Rows) {
		t.Errorf("pareto frontier has %d of %d rows; expected a strict subset", pareto, len(res.Rows))
	}
}
