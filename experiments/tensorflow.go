package experiments

import (
	"gopim"
	"gopim/internal/core"
	"gopim/internal/nn"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/qgemm"
	"gopim/internal/timing"
)

// TFRow is one network's inference breakdown (paper Figures 6 and 7).
type TFRow struct {
	Network      string
	Packing      float64
	Quantization float64
	GEMM         float64 // Conv2D + MatMul
	Other        float64
}

func tfScale(o Options) int {
	if o.Scale == gopim.Standard {
		return 8
	}
	return 16
}

// Fig6 reproduces Figure 6: energy breakdown of inference per network,
// plus the average row.
func Fig6(o Options) []TFRow {
	return tfBreakdown(o, func(ev *core.Evaluator, phases map[string]profile.Profile) []PhaseFraction {
		return fractionsOf(ev, phases, []string{nn.PhasePacking, nn.PhaseQuant, nn.PhaseGEMM}, "Other")
	})
}

// Fig7 reproduces Figure 7: execution time breakdown of inference per
// network.
func Fig7(o Options) []TFRow {
	return tfBreakdown(o, func(_ *core.Evaluator, phases map[string]profile.Profile) []PhaseFraction {
		return timeFractionsOf(phases, []string{nn.PhasePacking, nn.PhaseQuant, nn.PhaseGEMM}, "Other")
	})
}

func tfBreakdown(o Options, split func(*core.Evaluator, map[string]profile.Profile) []PhaseFraction) []TFRow {
	ev := o.evaluator()
	nets := nn.Evaluated()
	// Networks profile independently; the average is reduced serially.
	rows := par.Map(o.workers(), len(nets), func(i int) TFRow {
		_, phases := nn.NetworkProfileWith(o.run, nets[i], profile.SoC(), tfScale(o))
		fr := split(ev, phases)
		return TFRow{Network: nets[i].Name, Packing: fr[0].Fraction, Quantization: fr[1].Fraction, GEMM: fr[2].Fraction, Other: fr[3].Fraction}
	})
	var avg TFRow
	n := float64(len(nets))
	for _, row := range rows {
		avg.Packing += row.Packing / n
		avg.Quantization += row.Quantization / n
		avg.GEMM += row.GEMM / n
		avg.Other += row.Other / n
	}
	avg.Network = "AVG"
	return append(rows, avg)
}

// Fig19Energy is the energy side of Figure 19: the packing and
// quantization kernels under each execution mode.
type Fig19Energy struct {
	Kernel string
	Mode   gopim.Mode
	// Normalized is energy relative to CPU-only.
	Normalized float64
	Energy     gopim.Breakdown
}

// Fig19Speedup is the performance side of Figure 19: end-to-end speedup
// of inference as the number of GEMM operations grows, when packing and
// quantization run on PIM logic concurrently with the CPU's GEMM.
type Fig19Speedup struct {
	GEMMOps int
	Mode    gopim.Mode
	Speedup float64
}

// Fig19 reproduces Figure 19.
func Fig19(o Options) ([]Fig19Energy, []Fig19Speedup) {
	// Matrices must exceed the LLC for the kernels to show their paper
	// behaviour; 768x768 float32 is 2.25 MiB.
	dim := 768
	if o.Scale == gopim.Standard {
		dim = 1024
	}
	ev := o.evaluator()

	packT := gopim.Target{Name: "Packing", Workload: "TensorFlow",
		Kernel: qgemm.PackKernel(dim, dim, dim, 1), Phases: []string{"packing"}, AccArea: 0.25}
	quantT := gopim.Target{Name: "Quantization", Workload: "TensorFlow",
		Kernel: qgemm.QuantizeKernel(dim, dim, dim, 1), Phases: []string{"quantization"}, AccArea: 0.25}

	targets := []gopim.Target{packT, quantT}
	evaluated := par.Map(o.workers(), len(targets), func(i int) gopim.Result {
		return ev.Evaluate(targets[i])
	})
	var energies []Fig19Energy
	for i, res := range evaluated {
		base := res.ByMode[gopim.CPUOnly].Energy.Total()
		for _, mode := range gopim.Modes {
			e := res.ByMode[mode]
			energies = append(energies, Fig19Energy{
				Kernel: targets[i].Name, Mode: mode,
				Normalized: e.Energy.Total() / base,
				Energy:     e.Energy,
			})
		}
	}

	// Per-GEMM-operation times come from a whole-network profile (ResNet,
	// the conv-heaviest network), so the compute-to-preprocessing ratio
	// matches the measured Figure 7 time breakdown. One "GEMM operation"
	// is the network's per-Conv2D average.
	net := nn.ResNetV2152()
	convs := float64(net.Convs())
	hws := []profile.Hardware{profile.SoC(), profile.PIMCore()}
	netPhases := par.Map(o.workers(), len(hws), func(i int) map[string]profile.Profile {
		_, phases := nn.NetworkProfileWith(o.run, net, hws[i], tfScale(o))
		return phases
	})
	cpuPhases, pimPhases := netPhases[0], netPhases[1]
	soc := timing.SoC()
	tGEMM := soc.Seconds(cpuPhases[nn.PhaseGEMM]) / convs
	cpuPackQuant := (soc.Seconds(cpuPhases[nn.PhasePacking]) + soc.Seconds(cpuPhases[nn.PhaseQuant])) / convs

	pimPQ := map[gopim.Mode]float64{
		gopim.PIMCore: (timing.PIMCore(4).Seconds(pimPhases[nn.PhasePacking]) +
			timing.PIMCore(4).Seconds(pimPhases[nn.PhaseQuant])) / convs,
		gopim.PIMAcc: (timing.PIMAcc(4).Seconds(pimPhases[nn.PhasePacking]) +
			timing.PIMAcc(4).Seconds(pimPhases[nn.PhaseQuant])) / convs,
	}

	var speedups []Fig19Speedup
	for _, ops := range []int{1, 4, 16} {
		n := float64(ops)
		baseline := n * (tGEMM + cpuPackQuant)
		for _, mode := range gopim.Modes {
			var t float64
			if mode == gopim.CPUOnly {
				t = baseline
			} else {
				// PIM logic packs/quantizes chunk i+1 while the CPU runs
				// GEMM on chunk i: the longer of the two pipelines wins,
				// with one un-overlapped prologue.
				pq := pimPQ[mode]
				per := tGEMM
				if pq > per {
					per = pq
				}
				t = n*per + pq
			}
			speedups = append(speedups, Fig19Speedup{GEMMOps: ops, Mode: mode, Speedup: baseline / t})
		}
	}
	return energies, speedups
}
