package experiments

import (
	"gopim/internal/browser"
	"gopim/internal/par"
	"gopim/internal/profile"
	"gopim/internal/timing"
)

// PageLoadRow is one page's load-time analysis.
type PageLoadRow struct {
	Page string
	// Phases is the CPU-raster load broken down by pipeline stage
	// (energy fractions).
	Phases []PhaseFraction
	// CPUMillis is the modelled CPU-rasterized load time.
	CPUMillis float64
	// GPUMillis swaps the raster stage for the GPU estimate.
	GPUMillis float64
	// GPUSlowdown is GPU/CPU total load time; above 1 means GPU raster
	// hurts (the paper measured up to +24.9% on text-heavy pages).
	GPUSlowdown float64
}

// PageLoad analyzes loading each test page with CPU rasterization
// (instrumented) and GPU rasterization (analytic), reproducing §4.2.2's
// observation that GPU rasterization slows text-heavy page loads — the
// reason PIM-assisted texture tiling beats moving rasterization to the GPU.
func PageLoad(o Options) []PageLoadRow {
	ev := o.evaluator()
	soc := timing.SoC()
	pages := browser.ScrollPages()
	return par.Map(o.workers(), len(pages), func(i int) PageLoadRow {
		page := pages[i]
		_, phases := o.run(profile.SoC(), browser.LoadKernel(page))
		var total, raster float64
		for _, name := range sortedPhaseNames(phases) {
			t := soc.Seconds(phases[name])
			total += t
			if name == browser.PhaseBlitting {
				raster = t
			}
		}
		gpu := total - raster + browser.GPURasterEstimate(page)
		return PageLoadRow{
			Page:        page.Name,
			Phases:      fractionsOf(ev, phases, browser.LoadPhases[:4], "Other"),
			CPUMillis:   total * 1e3,
			GPUMillis:   gpu * 1e3,
			GPUSlowdown: gpu / total,
		}
	})
}
