package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"gopim/internal/obs"
	"gopim/internal/par"
)

// Runner is one experiment: a pure computation producing a typed payload,
// and a renderer that formats that payload as the pimsim text report.
// Compute functions are safe to run concurrently with each other; Render
// never recomputes, so rendering N precomputed payloads in name order
// produces output byte-identical to running the experiments serially.
type Runner struct {
	Name    string
	Compute func(Options) (any, error)
	Render  func(io.Writer, any) error
}

// Fig19Result bundles Figure 19's two halves into one payload.
type Fig19Result struct {
	Energies []Fig19Energy
	Speedups []Fig19Speedup
}

// AblationResult bundles the four design-space sweeps into one payload.
type AblationResult struct {
	Vaults        []VaultRow
	Bandwidth     []BandwidthRow
	Coherence     []CoherenceRow
	AccEfficiency []EfficiencyRow
}

// registry lists every experiment. Names are the figure/table IDs from
// DESIGN.md; Runners() serves them in sorted-name order.
var registry = []Runner{
	{"ablation", computeAblation, renderAblation},
	{"areas", computeAreas, renderAreas},
	{"battery", computeBattery, renderBattery},
	{"fig1", computeFig1, renderFig1},
	{"fig2", computeFig2, renderFig2},
	{"fig4", computeFig4, renderFig4},
	{"fig6", computeFig6, renderFig6},
	{"fig7", computeFig7, renderFig7},
	{"fig10", computeFig10, renderFig10},
	{"fig11", computeFig11, renderFig11},
	{"fig12", computeFig12, renderFig12},
	{"fig15", computeFig15, renderFig15},
	{"fig16", computeFig16, renderFig16},
	{"fig18", computeFig18, renderFig18},
	{"fig19", computeFig19, renderFig19},
	{"fig20", computeFig20, renderFig20},
	{"fig21", computeFig21, renderFig21},
	{"headline", computeHeadline, renderHeadline},
	{"pageload", computePageLoad, renderPageLoad},
	{"plan", computePlan, renderPlan},
	{"table1", computeTable1, renderTable1},
	{"tabswitch", computeTabSwitch, renderTabSwitch},
	{"targets", computeTargets, renderTargets},
}

func computeFig1(o Options) (any, error)      { return Fig1(o), nil }
func computeFig2(o Options) (any, error)      { return Fig2(o), nil }
func computeFig4(o Options) (any, error)      { return Fig4(o) }
func computeFig6(o Options) (any, error)      { return Fig6(o), nil }
func computeFig7(o Options) (any, error)      { return Fig7(o), nil }
func computeFig10(o Options) (any, error)     { return Fig10(o) }
func computeFig11(o Options) (any, error)     { return Fig11(o) }
func computeFig12(o Options) (any, error)     { return Fig12(o) }
func computeFig15(o Options) (any, error)     { return Fig15(o) }
func computeFig16(o Options) (any, error)     { return Fig16(o) }
func computeFig18(o Options) (any, error)     { return Fig18(o), nil }
func computeFig20(o Options) (any, error)     { return Fig20(o) }
func computeFig21(o Options) (any, error)     { return Fig21(o) }
func computeAreas(Options) (any, error)       { return Areas(), nil }
func computeBattery(o Options) (any, error)   { return BatteryLife(o), nil }
func computeHeadline(o Options) (any, error)  { return Headline(o), nil }
func computePageLoad(o Options) (any, error)  { return PageLoad(o), nil }
func computePlan(o Options) (any, error)      { return Plan(o), nil }
func computeTable1(Options) (any, error)      { return Table1(), nil }
func computeTabSwitch(o Options) (any, error) { return TabSwitchLatency(o), nil }
func computeTargets(o Options) (any, error)   { return TargetStats(o), nil }

func computeFig19(o Options) (any, error) {
	energies, speedups := Fig19(o)
	return Fig19Result{Energies: energies, Speedups: speedups}, nil
}

func computeAblation(o Options) (any, error) {
	return AblationResult{
		Vaults:        AblationVaults(o),
		Bandwidth:     AblationBandwidth(o),
		Coherence:     AblationCoherence(o),
		AccEfficiency: AblationAccEfficiency(o),
	}, nil
}

// Names returns every experiment name in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for _, r := range registry {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}

// RunnerFor returns the named experiment's runner.
func RunnerFor(name string) (Runner, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// RunResult is one experiment's outcome from RunAll / RunNamed.
type RunResult struct {
	Name string
	Data any
	Err  error
	// WallNS is the experiment's compute wall time, recorded only when
	// o.Obs is attached (0 otherwise). It never feeds rendering — the
	// determinism gates compare Data and rendered bytes.
	WallNS int64
}

// RunNamed computes the named experiments concurrently (bounded by
// o.Workers) and returns results in the given order. Unknown names fail
// before any work starts.
func RunNamed(o Options, names []string) ([]RunResult, error) {
	return RunNamedCtx(context.Background(), o, names)
}

// RunNamedCtx is RunNamed under a cancellation context: each experiment
// checks ctx before computing, so a cancelled sweep (a pimsimd job whose
// client went away) stops in bounded time instead of finishing work it no
// longer owns. A cancelled run returns ctx's error and no results; a run
// that completes is bit-identical to RunNamed — cancellation either stops
// the sweep or changes nothing.
func RunNamedCtx(ctx context.Context, o Options, names []string) ([]RunResult, error) {
	rs := make([]Runner, len(names))
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, ok := RunnerFor(name)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		rs[i] = r
	}
	results := par.Map(o.workers(), len(rs), func(i int) RunResult {
		if err := ctx.Err(); err != nil {
			return RunResult{Name: rs[i].Name, Err: err}
		}
		if o.Obs == nil {
			data, err := rs[i].Compute(o)
			return RunResult{Name: rs[i].Name, Data: data, Err: err}
		}
		start := obs.Now()
		data, err := rs[i].Compute(o)
		return RunResult{Name: rs[i].Name, Data: data, Err: err, WallNS: obs.Since(start)}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// RunAll computes every experiment concurrently, in sorted-name order.
func RunAll(o Options) []RunResult {
	res, err := RunNamed(o, Names())
	if err != nil {
		panic(err) // unreachable: Names() only lists registered runners
	}
	return res
}

// RunAllCtx is RunAll under a cancellation context (see RunNamedCtx).
func RunAllCtx(ctx context.Context, o Options) ([]RunResult, error) {
	return RunNamedCtx(ctx, o, Names())
}

// Warm computes every experiment and discards the payloads, returning the
// first failure. Its point is the side effect: with a trace cache (and
// persistent store) attached to o, one Warm pass records every keyed
// kernel the full sweep touches — `pimsim trace pack` uses it to pre-warm
// the on-disk store so later cold processes replay instead of executing.
func Warm(o Options) error {
	for _, r := range RunAll(o) {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}

// RunAllSerial is RunAll pinned to one worker: the serial reference used by
// the determinism tests.
func RunAllSerial(o Options) []RunResult {
	o.Workers = 1
	return RunAll(o)
}

// Render formats a RunAll payload with the named experiment's renderer.
func Render(w io.Writer, name string, data any) error {
	r, ok := RunnerFor(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	return r.Render(w, data)
}
