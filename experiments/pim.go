package experiments

import (
	"gopim"
	"gopim/internal/dram"
	"gopim/internal/par"
)

// Fig18Row is one bar pair of Figure 18: a browser kernel under one
// execution mode.
type Fig18Row struct {
	Kernel        string
	Mode          gopim.Mode
	NormEnergy    float64
	NormRuntime   float64
	Energy        gopim.Breakdown
	Speedup       float64
	EnergySavings float64
}

// Fig18 reproduces Figure 18: energy and runtime of the four Chrome
// kernels (texture tiling, color blitting, compression, decompression)
// under CPU-only, PIM-core and PIM-accelerator execution.
func Fig18(o Options) []Fig18Row {
	ev := o.evaluator()
	var targets []gopim.Target
	for _, t := range gopim.Targets(o.Scale) {
		if t.Workload == "Chrome" {
			targets = append(targets, t)
		}
	}
	perTarget := par.Map(o.workers(), len(targets), func(i int) []Fig18Row {
		t := targets[i]
		res := ev.Evaluate(t)
		base := res.ByMode[gopim.CPUOnly]
		var out []Fig18Row
		for _, mode := range gopim.Modes {
			e := res.ByMode[mode]
			out = append(out, Fig18Row{
				Kernel: t.Name, Mode: mode,
				NormEnergy:    e.Energy.Total() / base.Energy.Total(),
				NormRuntime:   e.Seconds / base.Seconds,
				Energy:        e.Energy,
				Speedup:       res.Speedup(mode),
				EnergySavings: res.EnergyReduction(mode),
			})
		}
		return out
	})
	var rows []Fig18Row
	for _, r := range perTarget {
		rows = append(rows, r...)
	}
	return rows
}

// AreaRow is one line of the area feasibility analysis (§§3.3–7).
type AreaRow struct {
	Logic          string
	AreaMM2        float64
	BudgetFraction float64
	Feasible       bool
}

// Areas reproduces the paper's per-target accelerator area analysis: every
// piece of PIM logic must fit the per-vault logic layer budget.
func Areas() []AreaRow {
	rows := []AreaRow{{Logic: "PIM Core (Cortex-R8-class)", AreaMM2: gopim.PIMCoreArea}}
	seen := map[string]bool{}
	for _, t := range gopim.Targets(gopim.Quick) {
		name := t.Name + " accelerator"
		if seen[name] {
			continue
		}
		seen[name] = true
		rows = append(rows, AreaRow{Logic: name, AreaMM2: t.AccArea})
	}
	for i := range rows {
		rows[i].BudgetFraction, rows[i].Feasible = gopim.AreaFeasible(rows[i].AreaMM2)
	}
	return rows
}

// HeadlineResult aggregates the paper's headline claims (§1, §12).
type HeadlineResult struct {
	// PerTarget holds each PIM target's evaluation.
	PerTarget []gopim.Result
	// AvgEnergyReduction is the mean energy reduction per mode across all
	// targets (paper: PIM-Core 49.1%, PIM-Acc 55.4%).
	AvgEnergyReduction map[gopim.Mode]float64
	// AvgSpeedup is the mean speedup per mode (paper: PIM-Core 44.6%
	// improvement, PIM-Acc 54.2%; up to 2.2x / 2.5x).
	AvgSpeedup map[gopim.Mode]float64
	// MaxSpeedup is the best single-kernel speedup per mode.
	MaxSpeedup map[gopim.Mode]float64
	// AvgDataMovementFraction is the average share of CPU-only energy
	// spent on data movement across targets (paper: 62.7% across
	// workloads).
	AvgDataMovementFraction float64
}

// Headline evaluates every PIM target and aggregates the paper's headline
// averages.
func Headline(o Options) HeadlineResult {
	ev := o.evaluator()
	res := HeadlineResult{
		AvgEnergyReduction: map[gopim.Mode]float64{},
		AvgSpeedup:         map[gopim.Mode]float64{},
		MaxSpeedup:         map[gopim.Mode]float64{},
	}
	targets := gopim.Targets(o.Scale)
	// Targets evaluate concurrently; the averages are reduced serially in
	// target order so float accumulation stays deterministic.
	res.PerTarget = par.Map(o.workers(), len(targets), func(i int) gopim.Result {
		return ev.Evaluate(targets[i])
	})
	for _, r := range res.PerTarget {
		for _, mode := range []gopim.Mode{gopim.PIMCore, gopim.PIMAcc} {
			res.AvgEnergyReduction[mode] += r.EnergyReduction(mode) / float64(len(targets))
			s := r.Speedup(mode)
			res.AvgSpeedup[mode] += s / float64(len(targets))
			if s > res.MaxSpeedup[mode] {
				res.MaxSpeedup[mode] = s
			}
		}
		res.AvgDataMovementFraction += r.ByMode[gopim.CPUOnly].Energy.DataMovementFraction() / float64(len(targets))
	}
	return res
}

// Table1Row is one line of the platform configuration table.
type Table1Row struct {
	Component string
	Value     string
}

// Table1 reproduces the paper's Table 1: the evaluated system
// configuration as modelled by this library.
func Table1() []Table1Row {
	return []Table1Row{
		{"SoC", "4 OoO cores, 8-wide issue; L1 I/D: 64 kB private, 4-way; L2: 2 MB shared, 8-way; MESI"},
		{"PIM Core", "1 core per vault, 1-wide issue, 4-wide SIMD, 32 kB private 4-way L1"},
		{"3D-Stacked Memory", "2 GB cube, 16 vaults; internal bandwidth 256 GB/s; off-chip channel 32 GB/s"},
		{"Baseline Memory", "LPDDR3, 2 GB, FR-FCFS scheduler"},
		{"Per-vault PIM area budget", "3.5 mm² (50-60 mm² per cube logic layer)"},
	}
}

// VaultBudget re-exports the modelled per-vault area budget for reports.
const VaultBudget = dram.VaultAreaBudget
